// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark per experiment; see DESIGN.md §4 for the index), plus
// micro-benchmarks of the core building blocks. The per-experiment benches
// run on a reduced configuration so `go test -bench=.` stays tractable; use
// cmd/pawbench for full-scale numbers.
package paw

import (
	"fmt"
	"testing"

	"paw/internal/bench"
	"paw/internal/blockstore"
	"paw/internal/colstore"
	"paw/internal/dataset"
	"paw/internal/knn"
	"paw/internal/workload"
)

// benchConfig is the reduced configuration for per-experiment benchmarks.
func benchConfig() bench.Config {
	c := bench.DefaultConfig()
	c.TPCHRows = 24_000
	c.OSMRows = 20_000
	c.NumQueries = 40
	c.MaxLBQueries = 20
	return c
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := benchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(cfg)
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// One benchmark per table/figure of the paper (DESIGN.md §4).

func BenchmarkTable2Construction(b *testing.B)  { runExperiment(b, "table2") }
func BenchmarkTable4DefaultDelta0(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkFig15Scalability(b *testing.B)    { runExperiment(b, "fig15") }
func BenchmarkFig16Dimensions(b *testing.B)     { runExperiment(b, "fig16") }
func BenchmarkFig17QueryRange(b *testing.B)     { runExperiment(b, "fig17") }
func BenchmarkFig18WorkloadSize(b *testing.B)   { runExperiment(b, "fig18") }
func BenchmarkFig19Delta(b *testing.B)          { runExperiment(b, "fig19") }
func BenchmarkFig20Distribution(b *testing.B)   { runExperiment(b, "fig20") }
func BenchmarkFig21SkewParams(b *testing.B)     { runExperiment(b, "fig21") }
func BenchmarkFig22aUnknownDelta(b *testing.B)  { runExperiment(b, "fig22a") }
func BenchmarkFig22bRandomMix(b *testing.B)     { runExperiment(b, "fig22b") }
func BenchmarkFig23Plugins(b *testing.B)        { runExperiment(b, "fig23") }
func BenchmarkFig24Delta0Sweeps(b *testing.B)   { runExperiment(b, "fig24") }
func BenchmarkFig25Delta0Plugins(b *testing.B)  { runExperiment(b, "fig25") }
func BenchmarkAblationAlpha(b *testing.B)       { runExperiment(b, "ablation_alpha") }
func BenchmarkAblationMultiGroup(b *testing.B)  { runExperiment(b, "ablation_multigroup") }
func BenchmarkAblationBeam(b *testing.B)        { runExperiment(b, "ablation_beam") }
func BenchmarkBaselineMaxSkip(b *testing.B)     { runExperiment(b, "baseline_maxskip") }
func BenchmarkBaselineAdaptive(b *testing.B)    { runExperiment(b, "baseline_adaptive") }
func BenchmarkScenariosTableI(b *testing.B)     { runExperiment(b, "scenarios") }

// BenchmarkFig13Fig14Layouts builds the three case-study layouts of
// Figures 13–14 (2-d TPC-H); rendering them is cmd/pawviz's job.
func BenchmarkFig13Fig14Layouts(b *testing.B) {
	data := GenerateTPCH(24_000, 42).Project(2).Normalize()
	hist := UniformWorkload(data.Domain(), 12, 43)
	delta := FractionOfDomain(data.Domain(), 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range []Method{MethodPAW, MethodQdTree, MethodKdTree} {
			if _, err := Build(data, hist, Options{Method: m, MinRows: 24, SampleRows: 2400, Delta: delta}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Micro-benchmarks of the building blocks.

func benchBuild(b *testing.B, m Method) {
	data := GenerateTPCH(120_000, 1).Project(4).Normalize()
	hist := UniformWorkload(data.Domain(), 50, 2)
	delta := FractionOfDomain(data.Domain(), 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(data, hist, Options{
			Method: m, MinRows: 20, SampleRows: 12_000, Delta: delta, SkipRouting: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildPAW(b *testing.B)    { benchBuild(b, MethodPAW) }
func BenchmarkBuildQdTree(b *testing.B) { benchBuild(b, MethodQdTree) }
func BenchmarkBuildKdTree(b *testing.B) { benchBuild(b, MethodKdTree) }

func BenchmarkRouteFullDataset(b *testing.B) {
	data := GenerateTPCH(120_000, 3).Project(4).Normalize()
	hist := UniformWorkload(data.Domain(), 50, 4)
	l, err := Build(data, hist, Options{
		MinRows: 20, SampleRows: 12_000,
		Delta: FractionOfDomain(data.Domain(), 0.01), SkipRouting: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Route(data)
	}
}

func BenchmarkQueryCost(b *testing.B) {
	data := GenerateTPCH(60_000, 5).Project(4).Normalize()
	hist := UniformWorkload(data.Domain(), 50, 6)
	delta := FractionOfDomain(data.Domain(), 0.01)
	l, err := Build(data, hist, Options{MinRows: 10, SampleRows: 6_000, Delta: delta})
	if err != nil {
		b.Fatal(err)
	}
	fut := FutureWorkload(hist, delta, 1, 7).Boxes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range fut {
			l.QueryCost(q, nil)
		}
	}
}

func BenchmarkDeltaSimilarityMatching(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			data := GenerateTPCH(1_000, 8).Project(4).Normalize()
			hist := UniformWorkload(data.Domain(), n, 9)
			fut := FutureWorkload(hist, 0.01, 1, 10)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := workload.AreSimilar(hist, fut, 0.0101)
				if err != nil || !ok {
					b.Fatalf("similarity broken: %v %v", ok, err)
				}
			}
		})
	}
}

func BenchmarkEstimateDelta(b *testing.B) {
	data := GenerateTPCH(1_000, 11).Project(4).Normalize()
	hist := UniformWorkload(data.Domain(), 100, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateDelta(hist); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColstoreScan(b *testing.B) {
	data := dataset.TPCHLike(100_000, 13)
	tab := colstore.FromDataset(data, nil, 4096)
	w := UniformWorkload(data.Domain(), 50, 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range w.Boxes() {
			tab.Count(q)
		}
	}
}

func BenchmarkPreciseDescriptorInstall(b *testing.B) {
	data := GenerateOSM(50_000, 10, 15).Normalize()
	hist := SkewedWorkload(data.Domain(), 30, 16)
	l, err := Build(data, hist, Options{
		MinRows: 10, SampleRows: 5_000,
		Delta: FractionOfDomain(data.Domain(), 0.01),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := InstallPreciseDescriptors(l, data, 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNNSearch(b *testing.B) {
	data := GenerateOSM(50_000, 10, 19).Normalize()
	hist := SkewedWorkload(data.Domain(), 30, 20)
	l, err := Build(data, hist, Options{
		MinRows: 16, SampleRows: 5_000,
		Delta: FractionOfDomain(data.Domain(), 0.01), DataAwareRefine: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 256})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Point{float64(i%100) / 100, float64((i*37)%100) / 100}
		if _, _, err := knn.Search(l, store, q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHungarianMinAvg(b *testing.B) {
	data := GenerateTPCH(1_000, 21).Project(4).Normalize()
	hist := UniformWorkload(data.Domain(), 100, 22)
	fut := FutureWorkload(hist, 0.01, 1, 23)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MinAvgDelta(hist, fut); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorageTunerSelect(b *testing.B) {
	data := GenerateOSM(50_000, 10, 17).Normalize()
	hist := SkewedWorkload(data.Domain(), 30, 18)
	delta := FractionOfDomain(data.Domain(), 0.01)
	l, err := Build(data, hist, Options{MinRows: 10, SampleRows: 5_000, Delta: delta})
	if err != nil {
		b.Fatal(err)
	}
	ext := hist.Extend(delta).Boxes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectExtraPartitions(l, data, ext, data.TotalBytes()/10)
	}
}
