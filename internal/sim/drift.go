package sim

import (
	"fmt"
	"math/rand"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/workload"
)

// Drifting-workload scenario family (DESIGN.md §13): deterministic query
// streams whose distribution moves over time, for driving the drift monitor
// and the migration path. Each scenario fixes a dataset, a historical
// workload QH the layout is built from, and a phased live stream; everything
// is a pure function of the scenario seed, so a failing stream reproduces
// from its name exactly like the construction scenarios above.

// DriftPhase is one segment of a drifting query stream: Queries boxes whose
// centers are drawn uniformly from Region (given in fractional domain
// coordinates) with half-extent SizeFrac × the domain extent per dimension.
type DriftPhase struct {
	Name    string
	Queries int
	// Region is the fractional sub-box of the domain the phase queries
	// live in ([0,1] per dimension).
	Region geom.Box
	// SizeFrac is the query half-extent as a fraction of the domain extent.
	SizeFrac float64
	// Replay, when set, ignores Region/SizeFrac and replays historical
	// queries instead, each offset by up to Jitter × the domain extent per
	// dimension — live traffic that stays within the variance scope as
	// long as Jitter is below δ.
	Replay bool
	// ReplaySubset restricts Replay to the first k historical queries
	// (0 = all): a hotspot concentrating on part of QH.
	ReplaySubset int
	// Jitter is the Replay offset bound as a fraction of the domain extent.
	Jitter float64
}

// DriftScenario is one deterministic drifting-workload setting.
type DriftScenario struct {
	Name string
	Seed int64
	// Data is the dataset the layout under drift serves.
	Data *dataset.Dataset
	// Hist is the historical workload QH the initial layout is built from.
	Hist workload.Workload
	// Delta is the declared variance scope δ (absolute units).
	Delta float64
	// Phases is the live stream, played in order. Later phases may leave
	// QH's region (out-of-scope drift) or stay inside it (in-scope noise).
	Phases []DriftPhase
	// ExpectDrift declares whether the stream leaves the variance scope —
	// the assertion a monitor test makes about the whole stream.
	ExpectDrift bool
}

// frac returns the fractional 2-d box {lo0,lo1}–{hi0,hi1}.
func frac(lo0, lo1, hi0, hi1 float64) geom.Box {
	return geom.Box{Lo: geom.Point{lo0, lo1}, Hi: geom.Point{hi0, hi1}}
}

// DriftScenarios returns the deterministic drifting-workload family: a
// sudden shift out of the historical region, a gradual sweep across the
// domain, a hotspot that concentrates inside the historical region
// (in-scope), and jitter within δ (in-scope). The in-scope members pin down
// the monitor's false-positive behavior, the out-of-scope members its
// detection.
func DriftScenarios(baseSeed int64) []DriftScenario {
	out := make([]DriftScenario, 0, 4)
	for i, shape := range []struct {
		name        string
		histRegion  geom.Box
		phases      []DriftPhase
		expectDrift bool
	}{
		{
			name:       "sudden-shift",
			histRegion: frac(0, 0, 0.45, 1),
			phases: []DriftPhase{
				{Name: "steady", Queries: 64, Region: frac(0, 0, 0.45, 1), SizeFrac: 0.08},
				{Name: "shifted", Queries: 64, Region: frac(0.6, 0.1, 0.95, 0.9), SizeFrac: 0.03},
			},
			expectDrift: true,
		},
		{
			name:       "gradual-sweep",
			histRegion: frac(0, 0, 0.45, 1),
			phases: []DriftPhase{
				{Name: "steady", Queries: 48, Region: frac(0, 0, 0.45, 1), SizeFrac: 0.08},
				{Name: "edge", Queries: 32, Region: frac(0.35, 0, 0.65, 1), SizeFrac: 0.05},
				{Name: "far", Queries: 48, Region: frac(0.6, 0, 0.95, 1), SizeFrac: 0.03},
			},
			expectDrift: true,
		},
		{
			name:       "in-scope-hotspot",
			histRegion: frac(0, 0, 0.45, 1),
			phases: []DriftPhase{
				{Name: "steady", Queries: 48, Replay: true, Jitter: 0.01},
				{Name: "hotspot", Queries: 64, Replay: true, ReplaySubset: 5, Jitter: 0.01},
			},
			expectDrift: false,
		},
		{
			name:       "in-scope-jitter",
			histRegion: frac(0, 0, 0.45, 1),
			phases: []DriftPhase{
				{Name: "steady", Queries: 96, Replay: true, Jitter: 0.015},
			},
			expectDrift: false,
		},
	} {
		seed := baseSeed + int64(i)*211
		data := dataset.Uniform(2400+i*400, 2, seed)
		dom := data.Domain()
		hist := workload.Uniform(scaleFrac(dom, shape.histRegion), workload.Defaults(30, seed+1))
		sc := DriftScenario{
			Name:        fmt.Sprintf("drift-%s", shape.name),
			Seed:        seed,
			Data:        data,
			Hist:        hist,
			Delta:       0.02 * minExtent(dom),
			Phases:      shape.phases,
			ExpectDrift: shape.expectDrift,
		}
		out = append(out, sc)
	}
	return out
}

// scaleFrac maps a fractional box onto the domain.
func scaleFrac(dom, f geom.Box) geom.Box {
	lo := make(geom.Point, dom.Dims())
	hi := make(geom.Point, dom.Dims())
	for d := 0; d < dom.Dims(); d++ {
		ext := dom.Hi[d] - dom.Lo[d]
		fl, fh := 0.0, 1.0
		if d < f.Dims() {
			fl, fh = f.Lo[d], f.Hi[d]
		}
		lo[d] = dom.Lo[d] + fl*ext
		hi[d] = dom.Lo[d] + fh*ext
	}
	return geom.Box{Lo: lo, Hi: hi}
}

// Stream materialises the scenario's live query boxes, phase by phase in
// order — a pure function of the scenario seed.
func (s DriftScenario) Stream() []geom.Box {
	rng := rand.New(rand.NewSource(s.Seed + 7))
	dom := s.Data.Domain()
	var out []geom.Box
	for _, ph := range s.Phases {
		if ph.Replay {
			pool := len(s.Hist)
			if ph.ReplaySubset > 0 && ph.ReplaySubset < pool {
				pool = ph.ReplaySubset
			}
			for i := 0; i < ph.Queries; i++ {
				src := s.Hist[rng.Intn(pool)].Box
				lo := make(geom.Point, dom.Dims())
				hi := make(geom.Point, dom.Dims())
				for d := 0; d < dom.Dims(); d++ {
					ext := dom.Hi[d] - dom.Lo[d]
					off := (rng.Float64()*2 - 1) * ph.Jitter * ext
					lo[d], hi[d] = src.Lo[d]+off, src.Hi[d]+off
				}
				out = append(out, geom.Box{Lo: lo, Hi: hi})
			}
			continue
		}
		region := scaleFrac(dom, ph.Region)
		for i := 0; i < ph.Queries; i++ {
			lo := make(geom.Point, dom.Dims())
			hi := make(geom.Point, dom.Dims())
			for d := 0; d < dom.Dims(); d++ {
				ext := dom.Hi[d] - dom.Lo[d]
				half := ph.SizeFrac * ext / 2
				c := region.Lo[d] + rng.Float64()*(region.Hi[d]-region.Lo[d])
				lo[d], hi[d] = c-half, c+half
			}
			out = append(out, geom.Box{Lo: lo, Hi: hi})
		}
	}
	return out
}

// PhaseOffsets returns the index into Stream() where each phase starts,
// plus the total length as a final element — so a driver can segment the
// stream back into named phases.
func (s DriftScenario) PhaseOffsets() []int {
	out := make([]int, 0, len(s.Phases)+1)
	n := 0
	for _, ph := range s.Phases {
		out = append(out, n)
		n += ph.Queries
	}
	return append(out, n)
}
