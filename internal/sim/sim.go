// Package sim is the deterministic simulation harness for the invariant
// oracles (internal/invariant): a seeded scenario generator that enumerates
// datasets × workloads × δ × policies Ψ(α), builds layouts with every
// builder (PAW, Qd-tree, k-d tree, beam) at chosen parallelism, and hands
// each sealed layout plus its construction inputs to the oracle suite.
//
// Everything is a pure function of the scenario seed: the same seed yields
// the same dataset, sample, workload, layout and probe decisions, so a
// failing (scenario, method) pair reproduces exactly from its name.
package sim

import (
	"fmt"

	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/descriptor"
	"paw/internal/geom"
	"paw/internal/invariant"
	"paw/internal/kdtree"
	"paw/internal/layout"
	"paw/internal/obs"
	"paw/internal/qdtree"
	"paw/internal/tuner"
	"paw/internal/workload"
)

// Builder method names.
const (
	MethodPAW    = "paw"
	MethodQdTree = "qd-tree"
	MethodKdTree = "kd-tree"
	MethodBeam   = "paw-beam"
)

// Methods returns every builder the harness drives.
func Methods() []string {
	return []string{MethodPAW, MethodQdTree, MethodKdTree, MethodBeam}
}

// Greedy reports whether a method accepts only strictly cost-decreasing
// splits (the strict form of the monotonicity oracle).
func Greedy(method string) bool {
	return method == MethodPAW || method == MethodQdTree
}

// Scenario is one deterministic simulation setting.
type Scenario struct {
	// Name identifies the scenario; it encodes the generator choices.
	Name string
	// Seed drives every sampled decision downstream (probes, futures).
	Seed int64
	// Data is the full dataset; Domain its MBR (the construction domain).
	Data   *dataset.Dataset
	Domain geom.Box
	// Sample are the construction sample rows.
	Sample []int
	// Hist is the historical workload QH.
	Hist workload.Workload
	// Delta is the workload-variance threshold δ (absolute units).
	Delta float64
	// MinRows is bmin in sample rows.
	MinRows int
	// Alpha is PAW's Multi-Group admission factor (Ψ(α), Eq. 4).
	Alpha float64
	// Refine enables PAW's data-aware refinement (§IV-E), exercising
	// irregular refinement subtrees.
	Refine bool
}

// Scenarios generates n deterministic scenarios from a base seed. The
// generator cycles dataset families (uniform 2-d/3-d, TPC-H-like,
// OSM-like), workload shapes (uniform, skewed), δ as a fraction of the
// domain extent (0, 1%, 3%), bmin and α, so a small n already covers every
// combination the oracles treat differently.
func Scenarios(n int, baseSeed int64) []Scenario {
	out := make([]Scenario, 0, n)
	for i := 0; i < n; i++ {
		seed := baseSeed + int64(i)*101
		rows := 1500 + (i%4)*400

		var data *dataset.Dataset
		var family string
		switch i % 4 {
		case 0:
			data, family = dataset.Uniform(rows, 2, seed), "uni2"
		case 1:
			data, family = dataset.TPCHLike(rows, seed), "tpch"
		case 2:
			data, family = dataset.OSMLike(rows, 6, seed), "osm"
		default:
			data, family = dataset.Uniform(rows, 3, seed), "uni3"
		}
		domain := data.Domain()

		nq := 12 + (i%3)*6
		spec := workload.Spec{Kind: workload.KindUniform, GenParams: workload.Defaults(nq, seed+1)}
		shape := "uniW"
		if i%2 == 1 {
			spec.Kind, shape = workload.KindSkewed, "skewW"
		}
		hist := workload.Generate(domain, spec)

		deltaFrac := []float64{0, 0.01, 0.03}[i%3]
		delta := deltaFrac * minExtent(domain)

		sc := Scenario{
			Seed:    seed,
			Data:    data,
			Domain:  domain,
			Sample:  data.Sample(min(600, rows), seed+2),
			Hist:    hist,
			Delta:   delta,
			MinRows: 20 + (i%2)*15,
			Alpha:   []float64{4, 8, 12}[i%3],
			Refine:  i%2 == 1,
		}
		sc.Name = fmt.Sprintf("s%02d-%s-%s-d%.0f%%-b%d-a%g", i, family, shape,
			deltaFrac*100, sc.MinRows, sc.Alpha)
		if sc.Refine {
			sc.Name += "-refine"
		}
		out = append(out, sc)
	}
	return out
}

// Build constructs (and routes) the scenario's layout with the given method
// at the given parallelism. Identical inputs must yield byte-identical
// layouts at any parallelism — the harness asserts this via layout.Digest.
func Build(sc Scenario, method string, parallelism int) *layout.Layout {
	return BuildObserved(sc, method, parallelism, nil)
}

// BuildObserved is Build with construction telemetry attached to reg (nil
// disables it, making this identical to Build). Telemetry is strictly
// observational: the digest oracle asserts layouts are byte-identical with
// it on or off.
func BuildObserved(sc Scenario, method string, parallelism int, reg *obs.Registry) *layout.Layout {
	var l *layout.Layout
	switch method {
	case MethodPAW:
		l = core.Build(sc.Data, sc.Sample, sc.Domain, sc.Hist, core.Params{
			MinRows: sc.MinRows, Alpha: sc.Alpha, Delta: sc.Delta,
			DataAwareRefine: sc.Refine, Parallelism: parallelism, Obs: reg,
		})
	case MethodQdTree:
		l = qdtree.Build(sc.Data, sc.Sample, sc.Domain, sc.Hist.Extend(sc.Delta).Boxes(),
			qdtree.Params{MinRows: sc.MinRows, Parallelism: parallelism, Obs: reg})
	case MethodKdTree:
		l = kdtree.Build(sc.Data, sc.Sample, sc.Domain,
			kdtree.Params{MinRows: sc.MinRows, Parallelism: parallelism, Obs: reg})
	case MethodBeam:
		l = core.BuildBeam(sc.Data, sc.Sample, sc.Domain, sc.Hist, core.BeamParams{
			Params: core.Params{
				MinRows: sc.MinRows, Alpha: sc.Alpha, Delta: sc.Delta,
				Parallelism: parallelism, Obs: reg,
			},
			Width: 2, Branch: 2,
		})
	default:
		panic(fmt.Sprintf("sim: unknown method %q", method))
	}
	l.RouteParallel(sc.Data, parallelism)
	return l
}

// Inputs assembles the oracle inputs for a scenario/method pair.
func Inputs(sc Scenario, method string) invariant.Inputs {
	return invariant.Inputs{
		Data:    sc.Data,
		Rows:    sc.Sample,
		Domain:  sc.Domain,
		Hist:    sc.Hist,
		Delta:   sc.Delta,
		MinRows: sc.MinRows,
		Greedy:  Greedy(method),
		Seed:    sc.Seed,
	}
}

// Check builds the scenario with the method at the given parallelism and
// runs the full oracle suite, optionally with precise descriptors installed
// (withPrecise) and the storage tuner exercised (tunerBudget > 0).
func Check(sc Scenario, method string, parallelism int, withPrecise bool, tunerBudget int64) error {
	l := Build(sc, method, parallelism)
	if withPrecise {
		if _, err := descriptor.Install(l, sc.Data, descriptor.AllRows(sc.Data.NumRows()), 4); err != nil {
			return fmt.Errorf("sim: precise install: %w", err)
		}
	}
	if err := invariant.Check(l, Inputs(sc, method)); err != nil {
		return err
	}
	if tunerBudget > 0 {
		queries := sc.Hist.Extend(sc.Delta).Boxes()
		extras := tuner.Select(l, sc.Data, queries, tunerBudget)
		if err := invariant.CheckTuner(l, sc.Data, queries, extras, tunerBudget); err != nil {
			return err
		}
	}
	return nil
}

func minExtent(b geom.Box) float64 {
	m := b.Hi[0] - b.Lo[0]
	for d := 1; d < b.Dims(); d++ {
		if e := b.Hi[d] - b.Lo[d]; e < m {
			m = e
		}
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
