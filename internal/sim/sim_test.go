package sim

import (
	"testing"
)

// scenarioCount returns the simulation breadth: -short still covers ≥ 20
// seeded scenarios (the acceptance floor), full mode widens the sweep.
func scenarioCount(t *testing.T) int {
	if testing.Short() {
		return 21
	}
	return 36
}

// TestInvariantsAllBuilders is the harness's main gate: every builder, on
// every seeded scenario, must produce a layout that satisfies the full
// oracle suite. Every third scenario additionally installs precise
// descriptors (exercising the §V-A soundness oracle) and every fourth runs
// the storage tuner against a tenth of the layout size (§V-B oracle).
func TestInvariantsAllBuilders(t *testing.T) {
	for i, sc := range Scenarios(scenarioCount(t), 42) {
		sc, i := sc, i
		for _, method := range Methods() {
			method := method
			t.Run(sc.Name+"/"+method, func(t *testing.T) {
				t.Parallel()
				withPrecise := i%3 == 0
				var budget int64
				if i%4 == 0 {
					budget = sc.Data.TotalBytes() / 10
				}
				if err := Check(sc, method, 4, withPrecise, budget); err != nil {
					t.Fatalf("invariants violated: %v", err)
				}
			})
		}
	}
}

// TestParallelDeterminism asserts the byte-identity contract of parallel
// construction: for every builder, the layout built at parallelism 1 and at
// parallelism 4 (construction and routing) encode to the same digest.
func TestParallelDeterminism(t *testing.T) {
	n := 6
	if testing.Short() {
		n = 4
	}
	for _, sc := range Scenarios(n, 1337) {
		sc := sc
		for _, method := range Methods() {
			method := method
			t.Run(sc.Name+"/"+method, func(t *testing.T) {
				t.Parallel()
				serial, err := Build(sc, method, 1).Digest()
				if err != nil {
					t.Fatalf("digest(serial): %v", err)
				}
				parallel, err := Build(sc, method, 4).Digest()
				if err != nil {
					t.Fatalf("digest(parallel): %v", err)
				}
				if serial != parallel {
					t.Fatalf("parallel build diverged from serial: %s vs %s", parallel, serial)
				}
			})
		}
	}
}

// TestScenariosDeterministic guards the harness itself: scenario generation
// is a pure function of (n, seed).
func TestScenariosDeterministic(t *testing.T) {
	a := Scenarios(8, 7)
	b := Scenarios(8, 7)
	if len(a) != len(b) {
		t.Fatalf("lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Seed != b[i].Seed || a[i].Delta != b[i].Delta {
			t.Fatalf("scenario %d diverges: %+v vs %+v", i, a[i], b[i])
		}
		da, err := Build(a[i], MethodPAW, 2).Digest()
		if err != nil {
			t.Fatal(err)
		}
		db, err := Build(b[i], MethodPAW, 2).Digest()
		if err != nil {
			t.Fatal(err)
		}
		if da != db {
			t.Fatalf("scenario %d: same inputs, different layouts", i)
		}
	}
}
