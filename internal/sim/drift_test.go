package sim

import (
	"testing"

	"paw/internal/workload"
)

// The drifting-workload family must be deterministic, well-formed, and
// honest about its ExpectDrift labels: the final phase of an out-of-scope
// scenario must estimate δ′ > δ against QH, and an in-scope scenario must
// stay within δ for its whole stream.

func TestDriftScenariosDeterministic(t *testing.T) {
	a, b := DriftScenarios(42), DriftScenarios(42)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("family sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		sa, sb := a[i].Stream(), b[i].Stream()
		if len(sa) != len(sb) {
			t.Fatalf("%s: stream lengths differ", a[i].Name)
		}
		for j := range sa {
			if !sa[j].Equal(sb[j]) {
				t.Fatalf("%s: query %d differs across runs", a[i].Name, j)
			}
		}
	}
}

func TestDriftScenariosWellFormed(t *testing.T) {
	for _, sc := range DriftScenarios(42) {
		stream := sc.Stream()
		offs := sc.PhaseOffsets()
		if offs[len(offs)-1] != len(stream) {
			t.Fatalf("%s: offsets claim %d queries, stream has %d", sc.Name, offs[len(offs)-1], len(stream))
		}
		dom := sc.Data.Domain()
		for i, b := range stream {
			if b.Dims() != dom.Dims() {
				t.Fatalf("%s: query %d has %d dims, domain %d", sc.Name, i, b.Dims(), dom.Dims())
			}
			if !b.Intersects(dom) {
				t.Fatalf("%s: query %d (%v) misses the domain entirely", sc.Name, i, b)
			}
		}
		if len(sc.Hist) == 0 {
			t.Fatalf("%s: empty historical workload", sc.Name)
		}
	}
}

func TestDriftScenariosHonorExpectDrift(t *testing.T) {
	for _, sc := range DriftScenarios(42) {
		stream := sc.Stream()
		offs := sc.PhaseOffsets()
		// The last phase is the stream's steady state: its δ′ against QH
		// decides whether the scenario left the variance scope.
		last := stream[offs[len(offs)-2]:]
		live := make(workload.Workload, len(last))
		for i, b := range last {
			live[i] = workload.Query{Box: b, Seq: int64(i)}
		}
		est := workload.DirectedDelta(sc.Hist, live)
		if sc.ExpectDrift && est <= sc.Delta {
			t.Errorf("%s: labeled drifting but final phase δ′=%g <= δ=%g", sc.Name, est, sc.Delta)
		}
		if !sc.ExpectDrift && est > sc.Delta {
			t.Errorf("%s: labeled in-scope but final phase δ′=%g > δ=%g", sc.Name, est, sc.Delta)
		}
	}
}
