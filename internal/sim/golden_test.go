package sim

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"paw/internal/dataset"
	"paw/internal/workload"
)

// goldenScenario is the pinned end-to-end configuration: it is deliberately
// independent of Scenarios() so widening the simulation sweep never
// invalidates the committed digests.
func goldenScenario() Scenario {
	data := dataset.TPCHLike(2000, 7)
	domain := data.Domain()
	hist := workload.Generate(domain, workload.Spec{
		Kind:      workload.KindSkewed,
		GenParams: workload.Defaults(20, 8),
	})
	return Scenario{
		Name:    "golden",
		Seed:    7,
		Data:    data,
		Domain:  domain,
		Sample:  data.Sample(500, 9),
		Hist:    hist,
		Delta:   0.01 * minExtent(domain),
		MinRows: 25,
		Alpha:   8,
		Refine:  true,
	}
}

const goldenFile = "testdata/golden_digests.txt"

// TestGoldenLayoutDigests is the end-to-end regression gate: fixed-seed
// dataset + workload → build → seal → route → encode, compared against the
// digests committed under testdata/. Any change to construction, sealing or
// serialisation that alters even one byte of any builder's output fails
// here and must be an intentional, reviewed regeneration:
//
//	UPDATE_GOLDEN=1 go test ./internal/sim -run TestGoldenLayoutDigests
//
// The digests pin amd64/IEEE-754 evaluation order; Go does not fuse
// floating-point operations differently between runs on one platform, so
// the test is stable wherever CI runs it.
func TestGoldenLayoutDigests(t *testing.T) {
	sc := goldenScenario()
	got := make(map[string]string, len(Methods()))
	for _, method := range Methods() {
		d, err := Build(sc, method, 2).Digest()
		if err != nil {
			t.Fatalf("%s: digest: %v", method, err)
		}
		got[method] = d
	}

	if os.Getenv("UPDATE_GOLDEN") != "" {
		writeGolden(t, got)
		t.Logf("regenerated %s", goldenFile)
		return
	}

	want := readGolden(t)
	for _, method := range Methods() {
		w, ok := want[method]
		if !ok {
			t.Errorf("%s: no golden digest committed (run with UPDATE_GOLDEN=1)", method)
			continue
		}
		if got[method] != w {
			t.Errorf("%s: layout digest drifted\n  got  %s\n  want %s\n"+
				"If the construction change is intentional, regenerate with UPDATE_GOLDEN=1.",
				method, got[method], w)
		}
	}
}

func readGolden(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open(goldenFile)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	defer f.Close()
	out := make(map[string]string)
	scan := bufio.NewScanner(f)
	for scan.Scan() {
		line := strings.TrimSpace(scan.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		out[fields[0]] = fields[1]
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func writeGolden(t *testing.T, digests map[string]string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("# SHA-256 digests of the golden end-to-end layouts (see TestGoldenLayoutDigests).\n")
	b.WriteString("# Regenerate with: UPDATE_GOLDEN=1 go test ./internal/sim -run TestGoldenLayoutDigests\n")
	methods := make([]string, 0, len(digests))
	for m := range digests {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	for _, m := range methods {
		fmt.Fprintf(&b, "%s %s\n", m, digests[m])
	}
	if err := os.WriteFile(goldenFile, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}
