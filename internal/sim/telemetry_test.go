package sim

import (
	"testing"

	"paw/internal/obs"
)

// TestTelemetryPreservesDigests is the determinism contract for the
// observability layer: construction telemetry observes the build, it never
// feeds it. Every (scenario, method) pair must produce a byte-identical
// layout digest with a live registry attached and with telemetry disabled,
// at both serial and parallel construction.
func TestTelemetryPreservesDigests(t *testing.T) {
	for _, sc := range Scenarios(4, 991) {
		for _, method := range Methods() {
			sc, method := sc, method
			t.Run(sc.Name+"/"+method, func(t *testing.T) {
				t.Parallel()
				base, err := Build(sc, method, 1).Digest()
				if err != nil {
					t.Fatal(err)
				}
				for _, par := range []int{1, 4} {
					reg := obs.New()
					d, err := BuildObserved(sc, method, par, reg).Digest()
					if err != nil {
						t.Fatal(err)
					}
					if d != base {
						t.Errorf("digest with telemetry (parallelism=%d) = %s, want %s", par, d, base)
					}
					// The registry must actually have observed the build —
					// a silently detached instrument would make this test
					// vacuous.
					snap := reg.Snapshot()
					if len(snap.Counters) == 0 && len(snap.Timers) == 0 {
						t.Error("telemetry registry recorded nothing during the build")
					}
				}
			})
		}
	}
}
