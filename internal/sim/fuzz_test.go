package sim

import (
	"testing"
)

// FuzzInvariants drives the oracle suite from fuzzed scenario coordinates:
// the fuzzer picks a seed, a scenario shape and a builder, and any layout
// the builders produce must satisfy every invariant. A crash here is either
// a builder bug or an over-strict oracle — both are real findings.
func FuzzInvariants(f *testing.F) {
	f.Add(int64(42), uint8(0), uint8(0))
	f.Add(int64(7), uint8(1), uint8(1))
	f.Add(int64(1337), uint8(5), uint8(2))
	f.Add(int64(-3), uint8(11), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, shape, methodPick uint8) {
		idx := int(shape % 12)
		sc := Scenarios(idx+1, seed)[idx]
		method := Methods()[int(methodPick)%len(Methods())]
		withPrecise := shape%3 == 0
		var budget int64
		if shape%4 == 0 {
			budget = sc.Data.TotalBytes() / 10
		}
		if err := Check(sc, method, 2, withPrecise, budget); err != nil {
			t.Fatalf("seed=%d shape=%d method=%s: %v", seed, shape, method, err)
		}
	})
}
