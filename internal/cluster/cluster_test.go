package cluster

import (
	"testing"

	"paw/internal/blockstore"
	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/kdtree"
	"paw/internal/layout"
	"paw/internal/workload"
)

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func setup(t *testing.T) (*Cluster, *layout.Layout, *dataset.Dataset) {
	t.Helper()
	data := dataset.Uniform(6000, 2, 1)
	l := kdtree.Build(data, allRows(6000), data.Domain(), kdtree.Params{MinRows: 300})
	s := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 128})
	return New(Defaults(), s, l), l, data
}

func TestQueryBasics(t *testing.T) {
	c, l, data := setup(t)
	q := geom.Box{Lo: geom.Point{0.2, 0.2}, Hi: geom.Point{0.4, 0.4}}
	r, err := c.Query(q, l.PartitionsFor(q))
	if err != nil {
		t.Fatal(err)
	}
	if want := data.CountInBox(q, nil); r.Rows != want {
		t.Errorf("rows = %d, want %d", r.Rows, want)
	}
	if r.Elapsed <= Defaults().NetworkRTT {
		t.Errorf("elapsed %v suspiciously small", r.Elapsed)
	}
	if r.BytesScanned > r.BytesNominal {
		t.Errorf("scanned %d above nominal %d", r.BytesScanned, r.BytesNominal)
	}
	// Empty partition list: only the network round trip.
	r, err = c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Elapsed != Defaults().NetworkRTT || r.Rows != 0 {
		t.Errorf("empty scan: %+v", r)
	}
}

func TestCachingSpeedsUpRepeats(t *testing.T) {
	data := dataset.Uniform(4000, 2, 2)
	l := kdtree.Build(data, allRows(4000), data.Domain(), kdtree.Params{MinRows: 500})
	s := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 128})
	cfg := Defaults()
	cfg.CacheBytes = data.TotalBytes() // everything fits
	c := New(cfg, s, l)
	q := geom.Box{Lo: geom.Point{0.1, 0.1}, Hi: geom.Point{0.9, 0.9}}
	ids := l.PartitionsFor(q)
	cold, err := c.Query(q, ids)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.Query(q, ids)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 {
		t.Errorf("cold run had %d cache hits", cold.CacheHits)
	}
	if warm.CacheHits != len(ids) {
		t.Errorf("warm run hit %d of %d partitions", warm.CacheHits, len(ids))
	}
	if warm.Elapsed >= cold.Elapsed {
		t.Errorf("warm %v not faster than cold %v", warm.Elapsed, cold.Elapsed)
	}
}

func TestCacheEviction(t *testing.T) {
	lru := newLRU(100)
	if lru.touch(1, 60) {
		t.Error("first touch must miss")
	}
	if lru.touch(2, 60) { // evicts 1
		t.Error("second insert must miss")
	}
	if lru.touch(1, 60) {
		t.Error("1 must have been evicted")
	}
	if !lru.touch(1, 60) {
		t.Error("1 must now hit")
	}
	// Oversized object is never cached.
	if lru.touch(3, 200) {
		t.Error("oversized object must miss")
	}
	if lru.touch(3, 200) {
		t.Error("oversized object must keep missing")
	}
	// LRU order: touch 1 (hit), insert 4 small, then 1 stays.
	lru2 := newLRU(100)
	lru2.touch(10, 50)
	lru2.touch(11, 50)
	lru2.touch(10, 50) // 10 now most recent
	lru2.touch(12, 50) // evicts 11
	if !lru2.touch(10, 50) {
		t.Error("10 must survive (was most recent)")
	}
	if lru2.touch(11, 50) {
		t.Error("11 must have been evicted")
	}
}

func TestMoreWorkersFaster(t *testing.T) {
	data := dataset.Uniform(8000, 2, 3)
	l := kdtree.Build(data, allRows(8000), data.Domain(), kdtree.Params{MinRows: 250})
	s := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 128})
	q := data.Domain() // scan everything
	cfg1 := Defaults()
	cfg1.Workers = 1
	cfg1.CacheBytes = 0
	cfg8 := cfg1
	cfg8.Workers = 8
	t1, err := New(cfg1, s, l).Query(q, l.PartitionsFor(q))
	if err != nil {
		t.Fatal(err)
	}
	t8, err := New(cfg8, s, l).Query(q, l.PartitionsFor(q))
	if err != nil {
		t.Fatal(err)
	}
	if t8.Elapsed >= t1.Elapsed {
		t.Errorf("8 workers (%v) not faster than 1 (%v)", t8.Elapsed, t1.Elapsed)
	}
}

func TestRunWorkload(t *testing.T) {
	c, l, data := setup(t)
	w := workload.Uniform(data.Domain(), workload.Defaults(20, 4))
	avg, err := c.RunWorkload(w.Boxes(), func(q geom.Box) []layout.ID { return l.PartitionsFor(q) })
	if err != nil {
		t.Fatal(err)
	}
	if avg.Elapsed <= 0 || avg.BytesNominal <= 0 {
		t.Errorf("averages look wrong: %+v", avg)
	}
	empty, err := c.RunWorkload(nil, nil)
	if err != nil || empty.Elapsed != 0 {
		t.Errorf("empty workload: %+v, %v", empty, err)
	}
}

// TestSubLinearEndToEnd reproduces the Fig. 15 observation: when the nominal
// I/O cost is extremely high, end-to-end time grows sub-linearly thanks to
// row-group pruning and caching.
func TestSubLinearEndToEnd(t *testing.T) {
	data := dataset.Uniform(8000, 2, 5)
	l := kdtree.Build(data, allRows(8000), data.Domain(), kdtree.Params{MinRows: 500})
	s := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 64})
	cfg := Defaults()
	cfg.CacheBytes = data.TotalBytes() / 2
	c := New(cfg, s, l)

	small := geom.Box{Lo: geom.Point{0.4, 0.4}, Hi: geom.Point{0.45, 0.45}}
	huge := data.Domain()
	rs, err := c.Query(small, l.PartitionsFor(small))
	if err != nil {
		t.Fatal(err)
	}
	rh, err := c.Query(huge, l.PartitionsFor(huge))
	if err != nil {
		t.Fatal(err)
	}
	ioRatio := float64(rh.BytesNominal) / float64(rs.BytesNominal)
	timeRatio := float64(rh.Elapsed) / float64(rs.Elapsed)
	if timeRatio >= ioRatio {
		t.Errorf("time ratio %.1f not sub-linear vs I/O ratio %.1f", timeRatio, ioRatio)
	}
}

func TestWorkerNormalization(t *testing.T) {
	data := dataset.Uniform(500, 2, 6)
	l := kdtree.Build(data, allRows(500), data.Domain(), kdtree.Params{MinRows: 100})
	s := blockstore.Materialize(l, data, blockstore.Config{})
	c := New(Config{Workers: 0}, s, l) // normalised to 1
	if _, err := c.Query(data.Domain(), l.PartitionsFor(data.Domain())); err != nil {
		t.Fatal(err)
	}
}
