// Package cluster is a discrete simulator of the paper's evaluation platform
// — a 4-node Spark cluster over HDFS — used to reproduce end-to-end query
// response times (Fig. 15b, Table IV). Partitions are placed round-robin on
// workers; a query's elapsed time is the network round trip plus the slowest
// worker's scan time, where each partition scan pays a seek and then streams
// the row groups that survive SMA pruning at disk or cache throughput.
//
// The simulator reproduces the paper's qualitative observation that
// end-to-end time grows sub-linearly in I/O cost: row-group pruning and the
// per-worker LRU cache absorb a growing share of nominally scanned bytes.
package cluster

import (
	"time"

	"paw/internal/blockstore"
	"paw/internal/geom"
	"paw/internal/layout"
)

// Config describes the simulated cluster. The defaults mirror the paper's
// testbed shape: 4 nodes, HDD-class scan throughput, LAN latency.
type Config struct {
	// Workers is the number of storage/compute nodes.
	Workers int
	// DiskMBps is the sequential scan throughput of one worker's disk.
	DiskMBps float64
	// CacheMBps is the scan throughput for partitions resident in the
	// worker's cache.
	CacheMBps float64
	// KernelMBps caps effective scan throughput at the CPU decode-kernel
	// rate of the vectorized columnar scan: even a cache-resident partition
	// cannot stream faster than the kernels evaluate encoded bytes. Zero
	// disables the cap (pure I/O model).
	KernelMBps float64
	// SeekLatency is paid once per partition scanned.
	SeekLatency time.Duration
	// NetworkRTT is paid once per query (master round trip).
	NetworkRTT time.Duration
	// CacheBytes is each worker's cache capacity (LRU over partitions).
	CacheBytes int64
}

// Defaults returns a configuration shaped like the paper's 4-node cluster.
// Datasets in this repository are scaled 1/1000, so scan throughputs are
// scaled by the same factor: a simulated scan of the scaled dataset then
// takes as long as a real scan of the paper's dataset would, keeping the
// end-to-end time axis comparable to Fig. 15b and Table IV.
func Defaults() Config {
	return Config{
		Workers:     4,
		DiskMBps:    0.150, // 150 MB/s HDD, scaled 1/1000
		CacheMBps:   2.5,   // ~2.5 GB/s memory scan, scaled 1/1000
		KernelMBps:  4.0,   // ~4.05 GB/s measured full-decode kernel rate (BENCH_scan.json decode_mb_per_sec), scaled 1/1000
		SeekLatency: 8 * time.Millisecond,
		NetworkRTT:  2 * time.Millisecond,
		CacheBytes:  1 << 22, // 4 MB/worker ≈ 16 GB RAM scaled 1/1000 (most of the dataset fits in aggregate cache, as on the paper's testbed)
	}
}

// Cluster simulates query execution against a materialised store.
type Cluster struct {
	cfg       Config
	store     *blockstore.Store
	placement map[layout.ID]int
	caches    []*lruCache
}

// New builds a cluster over the store, placing the layout's partitions
// round-robin.
func New(cfg Config, store *blockstore.Store, l *layout.Layout) *Cluster {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	placement := make(map[layout.ID]int, len(l.Parts))
	for i, p := range l.Parts {
		placement[p.ID] = i % cfg.Workers
	}
	return NewWithPlacement(cfg, store, placement)
}

// NewWithPlacement builds a cluster with an explicit partition-to-worker
// assignment (see the placement package for a workload-aware optimiser).
// Worker indices outside [0, Workers) are clamped into range by modulo.
func NewWithPlacement(cfg Config, store *blockstore.Store, placement map[layout.ID]int) *Cluster {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	c := &Cluster{cfg: cfg, store: store, placement: make(map[layout.ID]int, len(placement))}
	for id, w := range placement {
		c.placement[id] = ((w % cfg.Workers) + cfg.Workers) % cfg.Workers
	}
	c.caches = make([]*lruCache, cfg.Workers)
	for i := range c.caches {
		c.caches[i] = newLRU(cfg.CacheBytes)
	}
	return c
}

// Result reports one query's simulated execution.
type Result struct {
	// Rows is the number of matching records returned.
	Rows int
	// BytesScanned is the total payload read after row-group pruning.
	BytesScanned int64
	// BytesNominal is the total size of the partitions the master selected
	// (the paper's I/O cost, Eq. 1).
	BytesNominal int64
	// Elapsed is the simulated end-to-end response time.
	Elapsed time.Duration
	// CacheHits counts partitions served from worker caches.
	CacheHits int
}

// Query executes the query against the given partition list (as produced by
// the master's router) and returns simulated statistics.
func (c *Cluster) Query(q geom.Box, ids []layout.ID) (Result, error) {
	var res Result
	perWorker := make([]time.Duration, c.cfg.Workers)
	for _, id := range ids {
		w := c.placement[id]
		p, err := c.store.Partition(id)
		if err != nil {
			return res, err
		}
		st, err := c.store.ScanPartition(id, q)
		if err != nil {
			return res, err
		}
		res.Rows += st.Matched
		res.BytesScanned += st.BytesRead
		res.BytesNominal += p.Bytes()

		throughput := c.cfg.DiskMBps
		if c.caches[w].touch(id, p.Bytes()) {
			throughput = c.cfg.CacheMBps
			res.CacheHits++
		}
		if c.cfg.KernelMBps > 0 && throughput > c.cfg.KernelMBps {
			throughput = c.cfg.KernelMBps
		}
		scan := time.Duration(float64(st.BytesRead) / (throughput * 1e6) * float64(time.Second))
		perWorker[w] += c.cfg.SeekLatency + scan
	}
	slowest := time.Duration(0)
	for _, t := range perWorker {
		if t > slowest {
			slowest = t
		}
	}
	res.Elapsed = c.cfg.NetworkRTT + slowest
	return res, nil
}

// RunWorkload executes every query and returns the average result.
func (c *Cluster) RunWorkload(queries []geom.Box, route func(geom.Box) []layout.ID) (avg Result, err error) {
	if len(queries) == 0 {
		return Result{}, nil
	}
	var sum Result
	for _, q := range queries {
		r, err := c.Query(q, route(q))
		if err != nil {
			return Result{}, err
		}
		sum.Rows += r.Rows
		sum.BytesScanned += r.BytesScanned
		sum.BytesNominal += r.BytesNominal
		sum.Elapsed += r.Elapsed
		sum.CacheHits += r.CacheHits
	}
	n := len(queries)
	return Result{
		Rows:         sum.Rows / n,
		BytesScanned: sum.BytesScanned / int64(n),
		BytesNominal: sum.BytesNominal / int64(n),
		Elapsed:      sum.Elapsed / time.Duration(n),
		CacheHits:    sum.CacheHits / n,
	}, nil
}

// lruCache is a byte-budgeted LRU over partition IDs.
type lruCache struct {
	capacity int64
	used     int64
	order    []layout.ID // least recent first
	sizes    map[layout.ID]int64
}

func newLRU(capacity int64) *lruCache {
	return &lruCache{capacity: capacity, sizes: make(map[layout.ID]int64)}
}

// touch records an access and reports whether it was a hit. Misses insert
// the partition, evicting least-recently-used entries as needed; partitions
// larger than the capacity are never cached.
func (c *lruCache) touch(id layout.ID, size int64) bool {
	if _, ok := c.sizes[id]; ok {
		// Move to the back (most recent).
		for i, x := range c.order {
			if x == id {
				c.order = append(append(c.order[:i:i], c.order[i+1:]...), id)
				break
			}
		}
		return true
	}
	if size > c.capacity {
		return false
	}
	for c.used+size > c.capacity && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		c.used -= c.sizes[victim]
		delete(c.sizes, victim)
	}
	c.sizes[id] = size
	c.used += size
	c.order = append(c.order, id)
	return false
}
