// Package sma implements small materialized aggregates (Moerkotte, VLDB'98):
// per-block min/max/count/sum statistics kept for every dimension, used to
// prune blocks that cannot contain query results (§II-B). The min-max
// aggregate is the pruning predicate used by the columnar row-group store.
package sma

import (
	"math"

	"paw/internal/dataset"
	"paw/internal/geom"
)

// Aggregates holds the per-dimension statistics of one block of records.
type Aggregates struct {
	Count         int64
	Min, Max, Sum []float64
}

// Compute builds aggregates over the given rows of data (all rows when rows
// is nil).
func Compute(data *dataset.Dataset, rows []int) Aggregates {
	dims := data.Dims()
	a := Aggregates{
		Min: make([]float64, dims),
		Max: make([]float64, dims),
		Sum: make([]float64, dims),
	}
	for d := 0; d < dims; d++ {
		a.Min[d] = math.Inf(1)
		a.Max[d] = math.Inf(-1)
	}
	visit := func(i int) {
		a.Count++
		for d := 0; d < dims; d++ {
			v := data.At(i, d)
			if v < a.Min[d] {
				a.Min[d] = v
			}
			if v > a.Max[d] {
				a.Max[d] = v
			}
			a.Sum[d] += v
		}
	}
	if rows == nil {
		for i := 0; i < data.NumRows(); i++ {
			visit(i)
		}
	} else {
		for _, i := range rows {
			visit(i)
		}
	}
	return a
}

// Empty reports whether the block holds no records.
func (a Aggregates) Empty() bool { return a.Count == 0 }

// CanPrune reports whether the min-max envelope proves the block holds no
// record inside q, so the block can be skipped.
func (a Aggregates) CanPrune(q geom.Box) bool {
	if a.Empty() {
		return true
	}
	for d := range a.Min {
		if a.Max[d] < q.Lo[d] || a.Min[d] > q.Hi[d] {
			return true
		}
	}
	return false
}

// DimCovered reports whether the block's envelope on dimension d lies
// entirely inside the query's range on d: every record in the block then
// satisfies the predicate on d, so a columnar scan can skip evaluating that
// column (the covered-column shortcut of the vectorized kernels).
func (a Aggregates) DimCovered(d int, q geom.Box) bool {
	return a.Min[d] >= q.Lo[d] && a.Max[d] <= q.Hi[d]
}

// MBR returns the min-max envelope as a box. It panics on an empty block.
func (a Aggregates) MBR() geom.Box {
	if a.Empty() {
		panic("sma: MBR of empty aggregates")
	}
	lo := make(geom.Point, len(a.Min))
	hi := make(geom.Point, len(a.Max))
	copy(lo, a.Min)
	copy(hi, a.Max)
	return geom.Box{Lo: lo, Hi: hi}
}

// Mean returns the per-dimension mean values. It panics on an empty block.
func (a Aggregates) Mean() []float64 {
	if a.Empty() {
		panic("sma: mean of empty aggregates")
	}
	out := make([]float64, len(a.Sum))
	for d, s := range a.Sum {
		out[d] = s / float64(a.Count)
	}
	return out
}

// Merge combines two aggregates into the aggregates of the union block.
func Merge(x, y Aggregates) Aggregates {
	if x.Empty() {
		return y
	}
	if y.Empty() {
		return x
	}
	out := Aggregates{
		Count: x.Count + y.Count,
		Min:   make([]float64, len(x.Min)),
		Max:   make([]float64, len(x.Max)),
		Sum:   make([]float64, len(x.Sum)),
	}
	for d := range x.Min {
		out.Min[d] = math.Min(x.Min[d], y.Min[d])
		out.Max[d] = math.Max(x.Max[d], y.Max[d])
		out.Sum[d] = x.Sum[d] + y.Sum[d]
	}
	return out
}
