package sma

import (
	"math"
	"testing"

	"paw/internal/dataset"
	"paw/internal/geom"
)

func data3() *dataset.Dataset {
	return dataset.MustNew([]string{"x", "y"}, [][]float64{{1, 5, 3}, {10, 20, 30}})
}

func TestCompute(t *testing.T) {
	a := Compute(data3(), nil)
	if a.Count != 3 {
		t.Errorf("count = %d", a.Count)
	}
	if a.Min[0] != 1 || a.Max[0] != 5 || a.Sum[0] != 9 {
		t.Errorf("dim0 stats: %v %v %v", a.Min[0], a.Max[0], a.Sum[0])
	}
	if a.Min[1] != 10 || a.Max[1] != 30 || a.Sum[1] != 60 {
		t.Errorf("dim1 stats: %v %v %v", a.Min[1], a.Max[1], a.Sum[1])
	}
	m := a.Mean()
	if m[0] != 3 || m[1] != 20 {
		t.Errorf("mean = %v", m)
	}
}

func TestComputeSubset(t *testing.T) {
	a := Compute(data3(), []int{0, 2})
	if a.Count != 2 || a.Min[0] != 1 || a.Max[0] != 3 {
		t.Errorf("subset stats wrong: %+v", a)
	}
}

func TestCanPrune(t *testing.T) {
	a := Compute(data3(), nil)
	cases := []struct {
		q    geom.Box
		want bool
	}{
		{geom.Box{Lo: geom.Point{6, 0}, Hi: geom.Point{9, 100}}, true},   // right of max x
		{geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{0.5, 100}}, true}, // left of min x
		{geom.Box{Lo: geom.Point{0, 31}, Hi: geom.Point{10, 40}}, true},  // above max y
		{geom.Box{Lo: geom.Point{2, 15}, Hi: geom.Point{4, 25}}, false},  // overlaps envelope
		{geom.Box{Lo: geom.Point{5, 30}, Hi: geom.Point{6, 31}}, false},  // touches corner
	}
	for _, c := range cases {
		if got := a.CanPrune(c.q); got != c.want {
			t.Errorf("CanPrune(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestEmpty(t *testing.T) {
	a := Compute(data3(), []int{})
	if !a.Empty() {
		t.Error("no rows must be empty")
	}
	if !a.CanPrune(geom.UnitBox(2)) {
		t.Error("empty block prunes everything")
	}
	defer func() {
		if recover() == nil {
			t.Error("MBR of empty aggregates must panic")
		}
	}()
	a.MBR()
}

func TestMBR(t *testing.T) {
	a := Compute(data3(), nil)
	want := geom.Box{Lo: geom.Point{1, 10}, Hi: geom.Point{5, 30}}
	if !a.MBR().Equal(want) {
		t.Errorf("MBR = %v, want %v", a.MBR(), want)
	}
}

func TestMerge(t *testing.T) {
	d := data3()
	x := Compute(d, []int{0})
	y := Compute(d, []int{1, 2})
	m := Merge(x, y)
	full := Compute(d, nil)
	if m.Count != full.Count {
		t.Errorf("merged count = %d", m.Count)
	}
	for dim := 0; dim < 2; dim++ {
		if m.Min[dim] != full.Min[dim] || m.Max[dim] != full.Max[dim] {
			t.Errorf("merged min/max mismatch on dim %d", dim)
		}
		if math.Abs(m.Sum[dim]-full.Sum[dim]) > 1e-12 {
			t.Errorf("merged sum mismatch on dim %d", dim)
		}
	}
	// Merging with empty is the identity.
	e := Compute(d, []int{})
	if got := Merge(x, e); got.Count != x.Count {
		t.Error("merge with empty must be identity")
	}
	if got := Merge(e, y); got.Count != y.Count {
		t.Error("merge with empty must be identity")
	}
}
