package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// CostRecordSchema versions the JSONL cost-record format. Bump on any
// field-semantics change; consumers (the future partition advisor's training
// pipeline) dispatch on it.
const CostRecordSchema = "paw/cost-record/v1"

// CostRecord is one measured query execution: the layout and query-shape
// features on the left-hand side of a cost model and the measured stage
// costs on the right. One record is emitted per sampled trace (the sampling
// rate is the volume knob), serialized as one JSON line.
type CostRecord struct {
	Schema  string `json:"schema"`
	TraceID uint64 `json:"trace_id"`
	// UnixNs is the query's start on the master clock.
	UnixNs int64 `json:"unix_ns"`
	SQL    string `json:"sql,omitempty"`

	// Layout features.
	Epoch            uint64 `json:"epoch"`
	LayoutPartitions int    `json:"layout_partitions"`
	Dims             int    `json:"dims"`

	// Query shape.
	Ranges            int `json:"ranges"`
	PartitionsTouched int `json:"partitions_touched"`
	Workers           int `json:"workers"`

	// Measured outcome.
	Rows         int   `json:"rows"`
	BytesRead    int64 `json:"bytes_read"`
	BytesSkipped int64 `json:"bytes_skipped"`
	Cached       bool  `json:"cached,omitempty"`
	Partial      bool  `json:"partial,omitempty"`
	NextView     bool  `json:"next_view,omitempty"`

	// Stage costs in nanoseconds. Zero stages did not run (e.g. a cache hit
	// never routes or scatters).
	TotalNs   int64 `json:"total_ns"`
	RouteNs   int64 `json:"route_ns"`
	ScatterNs int64 `json:"scatter_ns"`
}

// CostLog appends schema-versioned JSONL cost records to a writer. The nil
// *CostLog drops records, so callers thread it unconditionally. Writes are
// buffered; call Flush (or Close) before reading the output.
type CostLog struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer
	enc *json.Encoder
}

// NewCostLog wraps w. If w is also an io.Closer, Close closes it.
func NewCostLog(w io.Writer) *CostLog {
	bw := bufio.NewWriter(w)
	l := &CostLog{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		l.c = c
	}
	return l
}

// Record appends one record, stamping the schema. No-op on nil.
func (l *CostLog) Record(rec CostRecord) {
	if l == nil {
		return
	}
	rec.Schema = CostRecordSchema
	l.mu.Lock()
	_ = l.enc.Encode(&rec)
	l.mu.Unlock()
}

// Flush drains the buffer to the underlying writer. No-op on nil.
func (l *CostLog) Flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bw.Flush()
}

// Close flushes and closes the underlying writer when it is closable.
func (l *CostLog) Close() error {
	if l == nil {
		return nil
	}
	err := l.Flush()
	if l.c != nil {
		if cerr := l.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
