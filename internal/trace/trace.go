// Package trace is the per-query distributed tracing substrate of the PAW
// stack (DESIGN.md §14): a zero-dependency, sampling span recorder that is
// allocation-free when disabled, with spans that cross the master↔worker
// wire so one trace covers a query end to end — admission, plan cache,
// routing, scatter, per-worker RPCs (retries and failovers included) and the
// per-partition scan kernels on every touched worker.
//
// Design constraints, mirroring internal/obs:
//
//   - Allocation-free when disabled. A nil *Tracer samples nothing, a nil *T
//     records nothing, and the zero SpanRef drops every annotation — code
//     instrumented against a disabled tracer compiles down to nil checks
//     (asserted by BenchmarkDisabledTracer with testing.AllocsPerRun == 0).
//   - Cheap when enabled but unsampled. The non-sampled path is one atomic
//     add per query; only sampled queries pay for span assembly.
//   - Lock-cheap assembly. A trace is private to its query: spans append
//     under the trace's own mutex (contended only by that query's scatter
//     goroutines), and completed traces land in a fixed-capacity ring buffer
//     under the tracer's mutex — two short critical sections per query.
//   - Typed attributes. Span annotations are (Key, int64) pairs from a fixed
//     enum, so wire encoding is positional and rendering needs no per-span
//     string table.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Key identifies one typed span attribute. Values are wire format (encoded
// as a single byte): append new keys at the end, never reorder.
type Key uint8

const (
	KeyNone Key = iota
	// KeyWorker is the worker index an RPC targeted.
	KeyWorker
	// KeyPartition is the partition ID of one scan span.
	KeyPartition
	// KeyPartitions counts the partitions a span covers.
	KeyPartitions
	// KeyEpoch is the layout epoch the span executed under.
	KeyEpoch
	// KeyNextView marks a query double-routed onto the incoming migration
	// view (1) rather than the installed epoch (DESIGN.md §13).
	KeyNextView
	// KeyRows counts matched rows.
	KeyRows
	// KeyRowsDecoded counts materialized rows.
	KeyRowsDecoded
	// KeyBytesRead / KeyBytesSkipped follow colstore.ScanStats byte
	// accounting: encoded payload decoded vs proven skippable.
	KeyBytesRead
	KeyBytesSkipped
	// KeyGroupsRead / KeyGroupsSkipped / KeyGroupsZoneSkipped count row
	// groups evaluated, pruned, and the zone-map subset of the pruned.
	KeyGroupsRead
	KeyGroupsSkipped
	KeyGroupsZoneSkipped
	// KeyEncRaw..KeyEncFOR count column chunks decoded per physical
	// encoding — the scan's encoding mix.
	KeyEncRaw
	KeyEncDict
	KeyEncRLE
	KeyEncFOR
	// KeyShared marks work answered by attaching to an identical in-flight
	// scan (shared-flight coalescing) instead of running a kernel pass.
	KeyShared
	// KeyCacheHit marks a result served from the master's result cache.
	KeyCacheHit
	// KeyPlanCacheHit marks a routing plan served from the descriptor cache.
	KeyPlanCacheHit
	// KeyAttempt is the zero-based retry attempt of one RPC.
	KeyAttempt
	// KeyFailoverRound is the scatter failover round (> 0: replica retry).
	KeyFailoverRound
	// KeyRange is the index of one routed range within its plan.
	KeyRange
	// KeyRanges counts the routed ranges (sub-queries) of a plan.
	KeyRanges
	// KeyError marks a failed span (1).
	KeyError
	// KeyPartial marks a query answered from surviving partitions only.
	KeyPartial
)

// String names the key for rendering and JSON exposure.
func (k Key) String() string {
	switch k {
	case KeyWorker:
		return "worker"
	case KeyPartition:
		return "partition"
	case KeyPartitions:
		return "partitions"
	case KeyEpoch:
		return "epoch"
	case KeyNextView:
		return "next_view"
	case KeyRows:
		return "rows"
	case KeyRowsDecoded:
		return "rows_decoded"
	case KeyBytesRead:
		return "bytes_read"
	case KeyBytesSkipped:
		return "bytes_skipped"
	case KeyGroupsRead:
		return "groups_read"
	case KeyGroupsSkipped:
		return "groups_skipped"
	case KeyGroupsZoneSkipped:
		return "groups_zone_skipped"
	case KeyEncRaw:
		return "enc_raw"
	case KeyEncDict:
		return "enc_dict"
	case KeyEncRLE:
		return "enc_rle"
	case KeyEncFOR:
		return "enc_for"
	case KeyShared:
		return "shared"
	case KeyCacheHit:
		return "cache_hit"
	case KeyPlanCacheHit:
		return "plan_cache_hit"
	case KeyAttempt:
		return "attempt"
	case KeyFailoverRound:
		return "failover_round"
	case KeyRange:
		return "range"
	case KeyRanges:
		return "ranges"
	case KeyError:
		return "error"
	case KeyPartial:
		return "partial"
	default:
		return "unknown"
	}
}

// Attr is one typed span annotation.
type Attr struct {
	K Key
	V int64
}

// Span is one recorded operation. IDs are trace-local and dense (the root is
// 1); Parent 0 means "no parent" — on the wire it means "attach to the
// requesting span" (see T.Attach). Spans cross the master↔worker protocol
// verbatim, so the field set is the wire schema.
type Span struct {
	ID     uint32
	Parent uint32
	Name   string
	// Start is the span's start in Unix nanoseconds on the recording host's
	// clock (spans from different hosts share a trace but not a clock; only
	// durations are comparable across hosts).
	Start int64
	// Dur is the span's duration in nanoseconds (0 until ended).
	Dur int64
	Attrs []Attr
}

// T is one in-flight trace. The nil *T records nothing — every method is a
// no-op — so untraced queries thread a nil trace through the serving path at
// the cost of nil checks only.
type T struct {
	id uint64

	mu    sync.Mutex
	spans []Span
	next  uint32
}

// localBase seeds process-locally unique trace IDs: the wall clock at init
// (so IDs differ across restarts) plus an atomic counter (so they differ
// within one).
var (
	localBase = uint64(time.Now().UnixNano())
	localSeq  atomic.Uint64
)

// NewLocal starts a trace outside any Tracer: forced traces (EXPLAIN on a
// master with tracing disabled) and worker-side trace fragments. The trace
// is never retained anywhere; its spans travel in the response that wanted
// them.
func NewLocal() *T {
	return &T{id: localBase + localSeq.Add(1)}
}

// ID returns the trace ID (0 on nil).
func (t *T) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// SpanRef addresses one started span of one trace. The zero SpanRef is a
// valid no-op (its trace is nil); as a parent it means "no parent".
type SpanRef struct {
	t     *T
	idx   int
	id    uint32
	start time.Time
}

// Start records the start of a named span under parent (the zero SpanRef
// roots the span) and returns its reference. No-op on nil.
func (t *T) Start(name string, parent SpanRef) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	now := time.Now()
	t.mu.Lock()
	t.next++
	id := t.next
	idx := len(t.spans)
	t.spans = append(t.spans, Span{ID: id, Parent: parent.id, Name: name, Start: now.UnixNano()})
	t.mu.Unlock()
	return SpanRef{t: t, idx: idx, id: id, start: now}
}

// Int annotates the span with one typed attribute. No-op on the zero ref.
func (s SpanRef) Int(k Key, v int64) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	sp := &s.t.spans[s.idx]
	sp.Attrs = append(sp.Attrs, Attr{K: k, V: v})
	s.t.mu.Unlock()
}

// End closes the span, fixing its duration. No-op on the zero ref.
func (s SpanRef) End() {
	if s.t == nil {
		return
	}
	d := int64(time.Since(s.start))
	s.t.mu.Lock()
	s.t.spans[s.idx].Dur = d
	s.t.mu.Unlock()
}

// Attach merges a remote span fragment (worker-local IDs starting at 1,
// Parent 0 meaning "attach to the requesting span") under parent: IDs are
// offset past the trace's own, parents are remapped, and clock fields pass
// through untouched (remote clocks are not ours to fix). No-op on nil.
func (t *T) Attach(parent SpanRef, spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	offset := t.next
	maxID := uint32(0)
	for _, sp := range spans {
		if sp.ID > maxID {
			maxID = sp.ID
		}
		sp.ID += offset
		if sp.Parent == 0 {
			sp.Parent = parent.id
		} else {
			sp.Parent += offset
		}
		// The attrs slice is shared with the decoded response; spans are
		// read-only from here, so sharing is safe.
		t.spans = append(t.spans, sp)
	}
	t.next = offset + maxID
	t.mu.Unlock()
}

// Spans returns a copy of the spans recorded so far (nil on nil).
func (t *T) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	return out
}

// Finished is one completed trace as stored in the tracer's ring buffer and
// exposed over /traces.
type Finished struct {
	ID uint64 `json:"trace_id"`
	// Root is the root span's name.
	Root string `json:"root"`
	// Start/DurNs mirror the root span.
	Start int64 `json:"start_unix_ns"`
	DurNs int64 `json:"dur_ns"`
	Spans []Span `json:"spans"`
}

// Exemplar links one latency-histogram bucket to the last sampled trace that
// landed in it — the bridge from a p99 bucket to a concrete trace ID.
type Exemplar struct {
	// LeNs is the bucket's inclusive upper bound in nanoseconds (the last
	// bucket's bound is +Inf, rendered as 0 here with Overflow true).
	LeNs     float64 `json:"le_ns"`
	Overflow bool    `json:"overflow,omitempty"`
	Count    int64   `json:"count"`
	TraceID  uint64  `json:"trace_id"`
	DurNs    int64   `json:"dur_ns"`
}

// Config tunes a Tracer.
type Config struct {
	// SampleEvery samples one query trace in every N (1: every query;
	// 0: only forced traces, e.g. EXPLAIN).
	SampleEvery int
	// Capacity bounds the ring buffer of retained traces (default 64).
	Capacity int
	// Buckets are the exemplar histogram bounds in nanoseconds (default
	// obs.LatencyBuckets-compatible bounds; pass explicitly to match a
	// registry's latency histogram).
	Buckets []float64
}

// Tracer owns the sampling decision, the ring of recent traces and the
// latency exemplars. The nil *Tracer is fully disabled: Sample returns nil
// and Finish drops the trace.
type Tracer struct {
	every uint64
	n     atomic.Uint64
	seq   atomic.Uint64
	base  uint64

	mu        sync.Mutex
	ring      []Finished
	pos       int
	count     int
	bounds    []float64
	exemplars []Exemplar
	// sink, when set, sees every finished trace (the cost-record feed).
	sink func(*Finished)
}

// defaultLatencyBounds mirror obs.LatencyBuckets (1µs .. 10s) so exemplars
// line up with the query-latency histogram without an obs dependency cycle.
func defaultLatencyBounds() []float64 {
	return []float64{
		1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5,
		1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7, 1e8, 2.5e8, 5e8, 1e9, 1e10,
	}
}

// New builds a tracer. Zero config fields fall back to their defaults.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	bounds := cfg.Buckets
	if len(bounds) == 0 {
		bounds = defaultLatencyBounds()
	}
	tr := &Tracer{
		every:     uint64(cfg.SampleEvery),
		base:      localBase + uint64(localSeq.Add(1))<<32,
		ring:      make([]Finished, cfg.Capacity),
		bounds:    bounds,
		exemplars: make([]Exemplar, len(bounds)+1),
	}
	for i, b := range bounds {
		tr.exemplars[i].LeNs = b
	}
	tr.exemplars[len(bounds)].Overflow = true
	return tr
}

// SetSink installs (or, with nil, removes) the finished-trace hook — the
// cost-record feed. The hook runs synchronously under the tracer mutex; it
// must be cheap and must not call back into the tracer.
func (tr *Tracer) SetSink(f func(*Finished)) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.sink = f
	tr.mu.Unlock()
}

// Sample decides whether this query is traced: every SampleEvery-th query
// is, forced queries (EXPLAIN) always are. The untraced path costs one
// atomic add and allocates nothing; nil tracers sample nothing (forced
// traces on a disabled tracer are the caller's job, via NewLocal).
func (tr *Tracer) Sample(force bool) *T {
	if tr == nil {
		return nil
	}
	if !force {
		if tr.every == 0 {
			return nil
		}
		if tr.n.Add(1)%tr.every != 0 {
			return nil
		}
	}
	return &T{id: tr.base + tr.seq.Add(1)}
}

// Finish seals a trace: the root span's duration indexes the exemplar
// buckets, and the trace lands in the ring (evicting the oldest). Traces
// whose root span never ended are timed as the max ended span. Nil tracers
// and nil traces no-op.
func (tr *Tracer) Finish(t *T) {
	if tr == nil || t == nil {
		return
	}
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	if len(spans) == 0 {
		return
	}
	f := Finished{ID: t.id, Root: spans[0].Name, Start: spans[0].Start, DurNs: spans[0].Dur, Spans: spans}
	if f.DurNs == 0 {
		for _, sp := range spans {
			if sp.Dur > f.DurNs {
				f.DurNs = sp.Dur
			}
		}
	}
	tr.mu.Lock()
	tr.ring[tr.pos] = f
	tr.pos = (tr.pos + 1) % len(tr.ring)
	if tr.count < len(tr.ring) {
		tr.count++
	}
	bi := len(tr.bounds)
	for i, b := range tr.bounds {
		if float64(f.DurNs) <= b {
			bi = i
			break
		}
	}
	ex := &tr.exemplars[bi]
	ex.Count++
	ex.TraceID = f.ID
	ex.DurNs = f.DurNs
	if tr.sink != nil {
		tr.sink(&f)
	}
	tr.mu.Unlock()
}

// Traces returns the retained traces, newest first.
func (tr *Tracer) Traces() []Finished {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]Finished, 0, tr.count)
	for i := 0; i < tr.count; i++ {
		out = append(out, tr.ring[(tr.pos-1-i+len(tr.ring)*2)%len(tr.ring)])
	}
	return out
}

// Get returns the retained trace with the given ID.
func (tr *Tracer) Get(id uint64) (Finished, bool) {
	if tr == nil {
		return Finished{}, false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for i := 0; i < tr.count; i++ {
		f := tr.ring[(tr.pos-1-i+len(tr.ring)*2)%len(tr.ring)]
		if f.ID == id {
			return f, true
		}
	}
	return Finished{}, false
}

// Exemplars returns the latency exemplars (buckets with no samples have
// Count 0).
func (tr *Tracer) Exemplars() []Exemplar {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]Exemplar(nil), tr.exemplars...)
}
