package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteTree renders spans as an EXPLAIN ANALYZE tree: one line per span with
// its duration and attributes, children indented under their parent in
// start order. Orphan spans (parent never recorded — a worker fragment whose
// request span was lost) root themselves. The output is stable for a given
// span list.
func WriteTree(w io.Writer, traceID uint64, spans []Span) {
	if len(spans) == 0 {
		fmt.Fprintln(w, "(no spans)")
		return
	}
	fmt.Fprintf(w, "trace %016x (%d spans)\n", traceID, len(spans))
	byID := make(map[uint32]bool, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = true
	}
	children := make(map[uint32][]Span)
	var roots []Span
	for _, sp := range spans {
		if sp.Parent == 0 || !byID[sp.Parent] {
			roots = append(roots, sp)
			continue
		}
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	order := func(s []Span) {
		sort.SliceStable(s, func(i, j int) bool {
			if s[i].Start != s[j].Start {
				return s[i].Start < s[j].Start
			}
			return s[i].ID < s[j].ID
		})
	}
	order(roots)
	for k := range children {
		order(children[k])
	}
	var walk func(sp Span, depth int)
	walk = func(sp Span, depth int) {
		fmt.Fprintf(w, "%s%s  %v%s\n", strings.Repeat("  ", depth), sp.Name,
			time.Duration(sp.Dur).Round(time.Microsecond), formatAttrs(sp.Attrs))
		for _, c := range children[sp.ID] {
			walk(c, depth+1)
		}
	}
	for _, sp := range roots {
		walk(sp, 0)
	}
}

// formatAttrs renders attributes as "  [k=v k=v]" (empty for none).
func formatAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("  [")
	for i, a := range attrs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", a.K, a.V)
	}
	b.WriteByte(']')
	return b.String()
}
