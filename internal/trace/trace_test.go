package trace

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestNilSafety: the disabled path — nil tracer, nil trace, zero SpanRef —
// must be a no-op at every call site the serving path threads it through.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if got := tr.Sample(false); got != nil {
		t.Fatalf("nil tracer sampled: %v", got)
	}
	if got := tr.Sample(true); got != nil {
		t.Fatalf("nil tracer forced a sample: %v", got)
	}
	tr.Finish(nil)
	tr.SetSink(nil)
	if tr.Traces() != nil || tr.Exemplars() != nil {
		t.Fatal("nil tracer retained traces")
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("nil tracer found a trace")
	}

	var tq *T
	if tq.ID() != 0 {
		t.Fatal("nil trace has an ID")
	}
	ref := tq.Start("x", SpanRef{})
	ref.Int(KeyRows, 1)
	ref.End()
	tq.Attach(ref, []Span{{ID: 1, Name: "y"}})
	if tq.Spans() != nil {
		t.Fatal("nil trace recorded spans")
	}
}

// TestDisabledPathAllocs: instrumentation against a disabled tracer must not
// allocate — this is the contract that lets the serving path stay
// instrumented unconditionally.
func TestDisabledPathAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tq := tr.Sample(false)
		root := tq.Start("query", SpanRef{})
		root.Int(KeyRows, 42)
		sp := tq.Start("scatter", root)
		sp.Int(KeyPartitions, 7)
		sp.End()
		root.End()
		tr.Finish(tq)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkDisabledTracer is the perf-guard form of the allocation test.
func BenchmarkDisabledTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tq := tr.Sample(false)
		root := tq.Start("query", SpanRef{})
		root.Int(KeyRows, int64(i))
		root.End()
		tr.Finish(tq)
	}
}

// TestSpanRecording: spans get dense IDs from 1, parents link, attrs and
// durations land.
func TestSpanRecording(t *testing.T) {
	tq := NewLocal()
	if tq.ID() == 0 {
		t.Fatal("local trace has no ID")
	}
	root := tq.Start("query", SpanRef{})
	child := tq.Start("route", root)
	child.Int(KeyRanges, 3)
	child.End()
	root.End()
	spans := tq.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].ID != 1 || spans[0].Parent != 0 || spans[0].Name != "query" {
		t.Fatalf("root span wrong: %+v", spans[0])
	}
	if spans[1].ID != 2 || spans[1].Parent != 1 || spans[1].Name != "route" {
		t.Fatalf("child span wrong: %+v", spans[1])
	}
	if len(spans[1].Attrs) != 1 || spans[1].Attrs[0] != (Attr{K: KeyRanges, V: 3}) {
		t.Fatalf("child attrs wrong: %+v", spans[1].Attrs)
	}
	if spans[0].Dur <= 0 || spans[1].Dur <= 0 {
		t.Fatalf("durations not recorded: %d, %d", spans[0].Dur, spans[1].Dur)
	}
	if spans[0].Start == 0 {
		t.Fatal("start not recorded")
	}
}

// TestAttachRemap: a worker fragment (IDs from 1, Parent 0 = requesting
// span) merges under its rpc span with IDs offset past the trace's own, and
// subsequent local spans do not collide with the merged IDs.
func TestAttachRemap(t *testing.T) {
	tq := NewLocal()
	root := tq.Start("query", SpanRef{})
	rpc := tq.Start("rpc", root) // ID 2
	remote := []Span{
		{ID: 1, Parent: 0, Name: "worker_batch"},
		{ID: 2, Parent: 1, Name: "scan", Attrs: []Attr{{K: KeyPartition, V: 7}}},
		{ID: 3, Parent: 1, Name: "scan"},
	}
	tq.Attach(rpc, remote)
	after := tq.Start("post", root)
	after.End()
	rpc.End()
	root.End()

	spans := tq.Spans()
	if len(spans) != 6 {
		t.Fatalf("got %d spans, want 6", len(spans))
	}
	// Merged fragment: offset = 2 (two local spans pre-attach).
	wb, s1, s2 := spans[2], spans[3], spans[4]
	if wb.ID != 3 || wb.Parent != 2 {
		t.Fatalf("worker_batch not remapped onto rpc: %+v", wb)
	}
	if s1.ID != 4 || s1.Parent != 3 || s2.ID != 5 || s2.Parent != 3 {
		t.Fatalf("scan spans not remapped: %+v / %+v", s1, s2)
	}
	if s1.Attrs[0].V != 7 {
		t.Fatal("attrs lost in attach")
	}
	if spans[5].ID != 6 {
		t.Fatalf("post-attach span collides: %+v", spans[5])
	}
}

// TestSampling: SampleEvery=N samples exactly one in N; force overrides.
func TestSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 3})
	sampled := 0
	for i := 0; i < 30; i++ {
		if tq := tr.Sample(false); tq != nil {
			sampled++
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 30, want 10", sampled)
	}
	if tr.Sample(true) == nil {
		t.Fatal("forced sample refused")
	}

	off := New(Config{}) // SampleEvery 0: only forced
	if off.Sample(false) != nil {
		t.Fatal("unforced sample on SampleEvery=0")
	}
	if off.Sample(true) == nil {
		t.Fatal("forced sample refused on SampleEvery=0")
	}
}

// TestUniqueIDs: traces from one tracer (and local traces) get distinct IDs.
func TestUniqueIDs(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		id := tr.Sample(true).ID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %d", id)
		}
		seen[id] = true
	}
	if NewLocal().ID() == NewLocal().ID() {
		t.Fatal("local trace IDs collide")
	}
}

func finishOne(tr *Tracer, name string) uint64 {
	tq := tr.Sample(true)
	root := tq.Start(name, SpanRef{})
	root.End()
	tr.Finish(tq)
	return tq.ID()
}

// TestRingEviction: the ring retains the newest Capacity traces, newest
// first, and Get finds only the retained ones.
func TestRingEviction(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Capacity: 4})
	var ids []uint64
	for i := 0; i < 7; i++ {
		ids = append(ids, finishOne(tr, "q"))
	}
	got := tr.Traces()
	if len(got) != 4 {
		t.Fatalf("retained %d, want 4", len(got))
	}
	for i, f := range got {
		want := ids[len(ids)-1-i]
		if f.ID != want {
			t.Fatalf("trace %d: ID %d, want %d (newest first)", i, f.ID, want)
		}
	}
	if _, ok := tr.Get(ids[0]); ok {
		t.Fatal("evicted trace still found")
	}
	if f, ok := tr.Get(ids[6]); !ok || f.ID != ids[6] {
		t.Fatal("retained trace not found")
	}
}

// TestFinishRootless: a trace whose root never ended still finishes, timed
// as its longest ended span; an empty trace is dropped.
func TestFinishRootless(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	tq := tr.Sample(true)
	root := tq.Start("query", SpanRef{})
	child := tq.Start("work", root)
	time.Sleep(time.Millisecond)
	child.End()
	// root never ended
	tr.Finish(tq)
	got := tr.Traces()
	if len(got) != 1 {
		t.Fatalf("retained %d, want 1", len(got))
	}
	if got[0].DurNs <= 0 {
		t.Fatal("rootless trace has no duration")
	}

	empty := tr.Sample(true)
	tr.Finish(empty)
	if len(tr.Traces()) != 1 {
		t.Fatal("empty trace was retained")
	}
}

// TestExemplars: finished traces land in the configured buckets and link the
// bucket to the last trace ID that hit it.
func TestExemplars(t *testing.T) {
	// One giant bucket: everything lands in bucket 0 deterministically.
	tr := New(Config{SampleEvery: 1, Buckets: []float64{1e15}})
	id1 := finishOne(tr, "a")
	id2 := finishOne(tr, "b")
	ex := tr.Exemplars()
	if len(ex) != 2 { // bucket + overflow
		t.Fatalf("got %d exemplar buckets, want 2", len(ex))
	}
	if ex[0].Count != 2 {
		t.Fatalf("bucket count %d, want 2", ex[0].Count)
	}
	if ex[0].TraceID != id2 {
		t.Fatalf("exemplar trace %d, want the latest %d (first was %d)", ex[0].TraceID, id2, id1)
	}
	if !ex[1].Overflow || ex[1].Count != 0 {
		t.Fatalf("overflow bucket wrong: %+v", ex[1])
	}
}

// TestSink: the finished-trace hook sees every trace (the cost-record feed).
func TestSink(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	var got []uint64
	tr.SetSink(func(f *Finished) { got = append(got, f.ID) })
	want := finishOne(tr, "q")
	if len(got) != 1 || got[0] != want {
		t.Fatalf("sink saw %v, want [%d]", got, want)
	}
}

// TestCostLog: records serialize as schema-stamped JSONL.
func TestCostLog(t *testing.T) {
	var buf bytes.Buffer
	l := NewCostLog(&buf)
	l.Record(CostRecord{TraceID: 7, Rows: 100, BytesRead: 1 << 20, RouteNs: 5})
	l.Record(CostRecord{TraceID: 8, Cached: true})
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec CostRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Schema != CostRecordSchema {
		t.Fatalf("schema %q, want %q", rec.Schema, CostRecordSchema)
	}
	if rec.TraceID != 7 || rec.Rows != 100 || rec.BytesRead != 1<<20 || rec.RouteNs != 5 {
		t.Fatalf("record round trip lost fields: %+v", rec)
	}

	var nilLog *CostLog
	nilLog.Record(CostRecord{})
	if err := nilLog.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := nilLog.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteTree: rendering indents children under parents, roots orphans,
// and prints attributes by name.
func TestWriteTree(t *testing.T) {
	spans := []Span{
		{ID: 1, Parent: 0, Name: "query", Dur: int64(2 * time.Millisecond)},
		{ID: 2, Parent: 1, Name: "scatter", Start: 10, Dur: int64(time.Millisecond)},
		{ID: 3, Parent: 2, Name: "rpc", Start: 20, Attrs: []Attr{{K: KeyWorker, V: 1}}},
		{ID: 9, Parent: 42, Name: "orphan", Start: 30}, // parent never recorded
	}
	var buf bytes.Buffer
	WriteTree(&buf, 0xabc, spans)
	out := buf.String()
	want := []string{
		"trace 0000000000000abc (4 spans)",
		"query  2ms",
		"  scatter  1ms",
		"    rpc  0s  [worker=1]",
		"orphan  0s",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Fatalf("output missing %q:\n%s", w, out)
		}
	}

	buf.Reset()
	WriteTree(&buf, 1, nil)
	if !strings.Contains(buf.String(), "no spans") {
		t.Fatalf("empty render: %q", buf.String())
	}
}

// TestKeyStrings: every defined key renders a stable name (the wire enum and
// the rendering must agree).
func TestKeyStrings(t *testing.T) {
	for k := KeyWorker; k <= KeyPartial; k++ {
		if k.String() == "unknown" {
			t.Fatalf("key %d has no name", k)
		}
	}
	if Key(200).String() != "unknown" {
		t.Fatal("undefined key must render unknown")
	}
}

// TestHTTPHandler: /traces serves the document, ?id= serves one trace, and a
// nil tracer serves an empty document.
func TestHTTPHandler(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	id := finishOne(tr, "q")
	finishOne(tr, "r")

	h := Handler(tr)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/traces", nil))
	var doc struct {
		Traces    []Finished `json:"traces"`
		Exemplars []Exemplar `json:"exemplars"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Traces) != 2 || len(doc.Exemplars) == 0 {
		t.Fatalf("document: %d traces, %d exemplars", len(doc.Traces), len(doc.Exemplars))
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/traces?limit=1", nil))
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Traces) != 1 {
		t.Fatalf("limit=1 returned %d traces", len(doc.Traces))
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/traces?id="+strconvUint(id), nil))
	var f Finished
	if err := json.Unmarshal(rr.Body.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if f.ID != id {
		t.Fatalf("?id returned trace %d, want %d", f.ID, id)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/traces?id=999", nil))
	if rr.Code != 404 {
		t.Fatalf("missing trace: status %d, want 404", rr.Code)
	}

	rr = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/traces", nil))
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Traces) != 0 {
		t.Fatal("nil tracer served traces")
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Traces) != 2 {
		t.Fatalf("WriteJSON: %d traces, want 2", len(doc.Traces))
	}
}

func strconvUint(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
