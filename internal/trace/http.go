package trace

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
)

// tracesDocument is the /traces JSON payload: recent traces newest-first
// plus the latency exemplars linking histogram buckets to trace IDs.
type tracesDocument struct {
	Traces    []Finished `json:"traces"`
	Exemplars []Exemplar `json:"exemplars"`
}

// WriteJSON writes the same document /traces serves — recent traces
// newest-first plus exemplars — to w. A nil tracer writes an empty document.
// This is the file-artifact form of the endpoint (demo dumps, CI artifacts).
func WriteJSON(w io.Writer, tr *Tracer) error {
	doc := tracesDocument{Traces: tr.Traces(), Exemplars: tr.Exemplars()}
	if doc.Traces == nil {
		doc.Traces = []Finished{}
	}
	if doc.Exemplars == nil {
		doc.Exemplars = []Exemplar{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Handler serves the tracer's recent traces as JSON on /traces: the full
// ring with exemplars by default, a single trace with ?id=<trace_id>
// (decimal or 0x-hex), at most ?limit=N traces otherwise. A nil tracer
// serves an empty document, so the endpoint can be mounted unconditionally.
func Handler(tr *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if idStr := req.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 0, 64)
			if err != nil {
				http.Error(w, "bad trace id: "+err.Error(), http.StatusBadRequest)
				return
			}
			f, ok := tr.Get(id)
			if !ok {
				http.Error(w, "trace not found (evicted or never sampled)", http.StatusNotFound)
				return
			}
			_ = enc.Encode(f)
			return
		}
		doc := tracesDocument{Traces: tr.Traces(), Exemplars: tr.Exemplars()}
		if doc.Traces == nil {
			doc.Traces = []Finished{}
		}
		if doc.Exemplars == nil {
			doc.Exemplars = []Exemplar{}
		}
		if lim := req.URL.Query().Get("limit"); lim != "" {
			if n, err := strconv.Atoi(lim); err == nil && n >= 0 && n < len(doc.Traces) {
				doc.Traces = doc.Traces[:n]
			}
		}
		_ = enc.Encode(doc)
	})
}
