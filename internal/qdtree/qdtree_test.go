package qdtree

import (
	"math"
	"testing"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/workload"
)

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func box2(l0, l1, h0, h1 float64) geom.Box {
	return geom.Box{Lo: geom.Point{l0, l1}, Hi: geom.Point{h0, h1}}
}

func TestCutBoundaryOwnership(t *testing.T) {
	box := box2(0, 0, 10, 10)
	q := box2(3, 0, 7, 10)

	lower := CutAtLower(0, 3)
	lb, rb := lower.Apply(box)
	if lb.Intersects(q) {
		t.Error("left child of a lower-bound cut must not intersect the query")
	}
	if !rb.Intersects(q) {
		t.Error("right child must intersect the query")
	}

	upper := CutAtUpper(0, 7)
	lb, rb = upper.Apply(box)
	if rb.Intersects(q) {
		t.Error("right child of an upper-bound cut must not intersect the query")
	}
	if !lb.Intersects(q) {
		t.Error("left child must intersect the query")
	}
	// Children never overlap.
	if inter, ok := lb.Intersection(rb); ok {
		t.Errorf("children overlap: %v", inter)
	}
}

func TestCutInside(t *testing.T) {
	box := box2(0, 0, 10, 10)
	if CutAtLower(0, 0).Inside(box) {
		t.Error("cut at the box lower boundary separates nothing")
	}
	if CutAtUpper(0, 10).Inside(box) {
		t.Error("cut at the box upper boundary separates nothing")
	}
	if !CutAtLower(0, 5).Inside(box) || !CutAtUpper(1, 5).Inside(box) {
		t.Error("interior cuts must qualify")
	}
}

func TestCandidatesDedup(t *testing.T) {
	box := box2(0, 0, 10, 10)
	qs := []geom.Box{box2(2, 2, 5, 5), box2(2, 3, 5, 6)}
	cands := Candidates(box, qs)
	// Dims 0: {2 lower, 5 upper} (deduped). Dim 1: {2,3 lower, 5,6 upper}.
	if len(cands) != 6 {
		t.Errorf("candidates = %d, want 6", len(cands))
	}
}

func TestSplitRows(t *testing.T) {
	data := dataset.MustNew([]string{"x"}, [][]float64{{1, 2, 3, 4, 5}})
	c := CutAtLower(0, 3) // 3 itself goes right
	l, r := SplitRows(data, allRows(5), c)
	if len(l) != 2 || len(r) != 3 {
		t.Errorf("lower cut: left=%d right=%d, want 2/3", len(l), len(r))
	}
	c = CutAtUpper(0, 3) // 3 itself goes left
	l, r = SplitRows(data, allRows(5), c)
	if len(l) != 3 || len(r) != 2 {
		t.Errorf("upper cut: left=%d right=%d, want 3/2", len(l), len(r))
	}
}

// TestPerfectIsolation reproduces the Qd-tree's defining behaviour: for one
// query on uniform data with a small bmin, the query's region becomes its
// own partition, so the query cost approaches the result size.
func TestPerfectIsolation(t *testing.T) {
	data := dataset.Uniform(2000, 2, 1)
	q := box2(0.3, 0.3, 0.5, 0.5)
	l := Build(data, allRows(2000), data.Domain(), []geom.Box{q}, Params{MinRows: 20})
	l.Route(data)
	if err := l.Validate(data, 20); err != nil {
		t.Fatal(err)
	}
	cost := l.QueryCost(q, nil)
	lb := layout.LowerBoundBytes(data, q)
	if cost > 3*lb {
		t.Errorf("query cost %d far above lower bound %d — query not isolated", cost, lb)
	}
	// The whole-domain scan must cost the full dataset.
	full := l.QueryCost(data.Domain(), nil)
	if full != data.TotalBytes() {
		t.Errorf("domain scan cost %d, want %d", full, data.TotalBytes())
	}
}

func TestRespectsMinRows(t *testing.T) {
	data := dataset.Uniform(1000, 2, 3)
	dom := data.Domain()
	w := workload.Uniform(dom, workload.Defaults(20, 5))
	l := Build(data, allRows(1000), dom, w.Boxes(), Params{MinRows: 100})
	for _, p := range l.Parts {
		if len(p.SampleRows) < 100 {
			t.Errorf("partition %d has %d rows, below bmin", p.ID, len(p.SampleRows))
		}
	}
	l.Route(data)
	if err := l.Validate(data, 100); err != nil {
		t.Error(err)
	}
}

func TestNoQueriesNoSplit(t *testing.T) {
	data := dataset.Uniform(500, 2, 4)
	l := Build(data, allRows(500), data.Domain(), nil, Params{MinRows: 10})
	if l.NumPartitions() != 1 {
		t.Errorf("no workload must produce a single partition, got %d", l.NumPartitions())
	}
}

func TestGreedyImprovesOverUnsplit(t *testing.T) {
	data := dataset.Uniform(3000, 2, 6)
	dom := data.Domain()
	w := workload.Uniform(dom, workload.Defaults(30, 8))
	l := Build(data, allRows(3000), dom, w.Boxes(), Params{MinRows: 30})
	l.Route(data)
	// Average cost must be well below a full scan.
	ratio := l.ScanRatio(w.Boxes(), nil)
	if ratio > 0.5 {
		t.Errorf("scan ratio %v — greedy failed to improve over full scans", ratio)
	}
	if l.NumPartitions() < 5 {
		t.Errorf("expected multiple partitions, got %d", l.NumPartitions())
	}
}

// TestOverfitting reproduces Fig. 2: a Qd-tree built on QH degrades on a
// slightly shifted future workload.
func TestOverfitting(t *testing.T) {
	data := dataset.Uniform(3000, 2, 10)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(25, 11))
	delta := 0.01 // 1% of the unit domain
	fut := workload.Future(hist, delta, 1, 12)

	l := Build(data, allRows(3000), dom, hist.Boxes(), Params{MinRows: 30})
	l.Route(data)
	histRatio := l.ScanRatio(hist.Boxes(), nil)
	futRatio := l.ScanRatio(fut.Boxes(), nil)
	if futRatio < histRatio {
		t.Errorf("future workload ratio %v unexpectedly below historical %v", futRatio, histRatio)
	}
	// The degradation should be substantial (the paper's motivating
	// observation) — future queries straddle partition boundaries.
	if futRatio < histRatio*1.2 {
		t.Logf("mild overfitting only: hist=%v fut=%v", histRatio, futRatio)
	}
}

func TestCutAdjacentFloats(t *testing.T) {
	c := CutAtLower(0, 1.5)
	if c.LeftHi >= c.RightLo {
		t.Error("LeftHi must be below RightLo")
	}
	if math.Nextafter(c.LeftHi, math.Inf(1)) != c.RightLo {
		t.Error("cut bounds must be adjacent floats")
	}
}
