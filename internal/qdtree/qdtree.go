// Package qdtree implements the greedy Qd-tree of Yang et al. (SIGMOD 2020),
// the state-of-the-art workload-aware baseline the paper compares against.
// The paper's evaluation uses this deterministic greedy variant because it
// performs comparably to the reinforcement-learning variant (§VI-A).
//
// The greedy Qd-tree recursively splits the current partition at the
// candidate cut — the lower or upper boundary of some workload query on some
// dimension — that minimises the workload's I/O cost over the resulting
// children, subject to the minimum partition size bmin, and stops when no
// cut improves the cost.
package qdtree

import (
	"math"
	"sort"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/layout"
)

// Params configures the build.
type Params struct {
	// MinRows is bmin in sample rows.
	MinRows int
}

// Build constructs a greedy Qd-tree layout for the given workload over the
// sample rows of data. The returned layout is sealed but not routed.
func Build(data *dataset.Dataset, rows []int, domain geom.Box, queries []geom.Box, p Params) *layout.Layout {
	if p.MinRows < 1 {
		p.MinRows = 1
	}
	b := &builder{data: data, minRows: p.MinRows}
	root := b.split(domain, rows, queries)
	return layout.Seal("qd-tree", root, data.RowBytes())
}

type builder struct {
	data    *dataset.Dataset
	minRows int
}

// Cut is an axis-parallel split with explicit boundary ownership: records
// with value <= LeftHi go left, the rest go right. LeftHi and RightLo are
// adjacent floats, so the children's closed descriptor boxes do not overlap
// and a cut placed at a query's lower bound keeps the query fully out of the
// left child (the point of cutting there).
type Cut struct {
	Dim             int
	LeftHi, RightLo float64
}

// CutAtLower builds the cut for a query lower bound v: the boundary value
// itself belongs to the right child.
func CutAtLower(dim int, v float64) Cut {
	return Cut{Dim: dim, LeftHi: math.Nextafter(v, math.Inf(-1)), RightLo: v}
}

// CutAtUpper builds the cut for a query upper bound v: the boundary value
// itself belongs to the left child.
func CutAtUpper(dim int, v float64) Cut {
	return Cut{Dim: dim, LeftHi: v, RightLo: math.Nextafter(v, math.Inf(1))}
}

// Apply divides box into the two child boxes of the cut.
func (c Cut) Apply(box geom.Box) (left, right geom.Box) {
	left = box.Clone()
	left.Hi[c.Dim] = c.LeftHi
	right = box.Clone()
	right.Lo[c.Dim] = c.RightLo
	return left, right
}

// Inside reports whether the cut separates the interior of box at all.
func (c Cut) Inside(box geom.Box) bool {
	return c.LeftHi >= box.Lo[c.Dim] && c.RightLo <= box.Hi[c.Dim]
}

// Candidates enumerates the Qd-tree cut set for a box: cuts at the lower and
// upper values of every query on every dimension, restricted to cuts that
// actually separate the box. PAW's Axis-Parallel Split (Alg. 2) reuses this.
func Candidates(box geom.Box, queries []geom.Box) []Cut {
	var out []Cut
	seen := make(map[Cut]bool)
	add := func(c Cut) {
		if !c.Inside(box) {
			return
		}
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, q := range queries {
		for dim := range q.Lo {
			add(CutAtLower(dim, q.Lo[dim]))
			add(CutAtUpper(dim, q.Hi[dim]))
		}
	}
	return out
}

func (b *builder) split(box geom.Box, rows []int, queries []geom.Box) *layout.Node {
	if len(rows) < 2*b.minRows || len(queries) == 0 {
		return leaf(box, rows)
	}
	// Current (unsplit) cost: every intersecting query scans all rows.
	curCost := int64(len(queries)) * int64(len(rows))
	bestCut, bestCost, ok := BestCut(b.data, box, rows, queries, nil, b.minRows)
	if !ok || bestCost >= curCost {
		return leaf(box, rows)
	}
	left, right := SplitRows(b.data, rows, bestCut)
	lbox, rbox := bestCut.Apply(box)
	return &layout.Node{
		Desc: layout.NewRect(box),
		Children: []*layout.Node{
			b.split(lbox, left, clipQueries(queries, lbox)),
			b.split(rbox, right, clipQueries(queries, rbox)),
		},
	}
}

// CutCost is a candidate cut with its immediate workload cost.
type CutCost struct {
	Cut  Cut
	Cost int64
}

// BestCut finds the cost-minimising axis-parallel cut over the Qd-tree
// candidate set (query lower/upper bounds on every dimension) plus any extra
// candidate cuts, subject to both children holding at least minRows rows.
func BestCut(data *dataset.Dataset, box geom.Box, rows []int, queries []geom.Box, extra []Cut, minRows int) (Cut, int64, bool) {
	top := TopCuts(data, box, rows, queries, extra, minRows, 1)
	if len(top) == 0 {
		return Cut{}, 0, false
	}
	return top[0].Cut, top[0].Cost, true
}

// TopCuts returns the k cheapest admissible cuts (ascending by cost) over
// the Qd-tree candidate set plus the extra cuts. Beam-search construction
// uses k > 1 to branch on near-optimal alternatives.
//
// All queries must intersect box. The evaluation exploits that a cut only
// changes dimension dim: the left child intersects query q iff
// q.Lo[dim] <= LeftHi, the right child iff q.Hi[dim] >= RightLo. Sorting row
// values and query bounds once per dimension makes each candidate O(log n)
// instead of O(rows + queries).
func TopCuts(data *dataset.Dataset, box geom.Box, rows []int, queries []geom.Box, extra []Cut, minRows, k int) []CutCost {
	if k < 1 {
		k = 1
	}
	dims := box.Dims()
	total := len(rows)
	nq := len(queries)
	var top []CutCost // ascending by cost, at most k entries
	rowVals := make([]float64, total)
	qLo := make([]float64, nq)
	qHi := make([]float64, nq)
	extraByDim := make(map[int][]Cut, len(extra))
	for _, c := range extra {
		extraByDim[c.Dim] = append(extraByDim[c.Dim], c)
	}
	seen := make(map[Cut]bool)
	for dim := 0; dim < dims; dim++ {
		for i, r := range rows {
			rowVals[i] = data.At(r, dim)
		}
		sort.Float64s(rowVals)
		for i, q := range queries {
			qLo[i] = q.Lo[dim]
			qHi[i] = q.Hi[dim]
		}
		sort.Float64s(qLo)
		sort.Float64s(qHi)
		try := func(c Cut) {
			if !c.Inside(box) || seen[c] {
				return
			}
			seen[c] = true
			leftRows := countLE(rowVals, c.LeftHi)
			rightRows := total - leftRows
			if leftRows < minRows || rightRows < minRows {
				return
			}
			nQL := countLE(qLo, c.LeftHi)       // queries reaching the left child
			nQR := nq - countLT(qHi, c.RightLo) // queries reaching the right child
			cost := int64(leftRows)*int64(nQL) + int64(rightRows)*int64(nQR)
			// Insert into the bounded, sorted top list.
			if len(top) == k && cost >= top[k-1].Cost {
				return
			}
			pos := sort.Search(len(top), func(i int) bool { return top[i].Cost > cost })
			top = append(top, CutCost{})
			copy(top[pos+1:], top[pos:])
			top[pos] = CutCost{Cut: c, Cost: cost}
			if len(top) > k {
				top = top[:k]
			}
		}
		for i := 0; i < nq; i++ {
			try(CutAtLower(dim, queries[i].Lo[dim]))
			try(CutAtUpper(dim, queries[i].Hi[dim]))
		}
		for _, c := range extraByDim[dim] {
			try(c)
		}
	}
	return top
}

// countLE returns the number of sorted values <= x.
func countLE(sorted []float64, x float64) int {
	return sort.Search(len(sorted), func(i int) bool { return sorted[i] > x })
}

// countLT returns the number of sorted values < x.
func countLT(sorted []float64, x float64) int {
	return sort.Search(len(sorted), func(i int) bool { return sorted[i] >= x })
}

// SplitRows divides row indices according to the cut's boundary ownership.
func SplitRows(data *dataset.Dataset, rows []int, c Cut) (left, right []int) {
	for _, r := range rows {
		if data.At(r, c.Dim) <= c.LeftHi {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	return left, right
}

func clipQueries(queries []geom.Box, box geom.Box) []geom.Box {
	var out []geom.Box
	for _, q := range queries {
		if inter, ok := q.Intersection(box); ok {
			out = append(out, inter)
		}
	}
	return out
}

func leaf(box geom.Box, rows []int) *layout.Node {
	d := layout.NewRect(box)
	return &layout.Node{Desc: d, Part: &layout.Partition{Desc: d, SampleRows: rows}}
}
