// Package qdtree implements the greedy Qd-tree of Yang et al. (SIGMOD 2020),
// the state-of-the-art workload-aware baseline the paper compares against.
// The paper's evaluation uses this deterministic greedy variant because it
// performs comparably to the reinforcement-learning variant (§VI-A).
//
// The greedy Qd-tree recursively splits the current partition at the
// candidate cut — the lower or upper boundary of some workload query on some
// dimension — that minimises the workload's I/O cost over the resulting
// children, subject to the minimum partition size bmin, and stops when no
// cut improves the cost.
//
// Construction fans sibling subtrees out over a parbuild.Pool and reuses
// per-worker Scratch buffers in cut evaluation; the parallel build is
// deterministic (identical to the serial build) because the chosen cut of a
// node depends only on that node's rows and queries.
package qdtree

import (
	"math"
	"sort"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/obs"
	"paw/internal/parbuild"
)

// Params configures the build.
type Params struct {
	// MinRows is bmin in sample rows.
	MinRows int
	// Parallelism bounds the construction worker pool: 0 selects
	// runtime.GOMAXPROCS(0), 1 forces a serial build. The parallel build
	// produces a layout identical to the serial one.
	Parallelism int
	// Obs receives construction telemetry (layout.Metric* names): phase
	// timers, candidate-evaluation and accepted-cut counters, recursion
	// depth and parbuild pool activity. nil disables instrumentation; the
	// layout is byte-identical either way.
	Obs *obs.Registry
}

// Build constructs a greedy Qd-tree layout for the given workload over the
// sample rows of data. The returned layout is sealed but not routed.
func Build(data *dataset.Dataset, rows []int, domain geom.Box, queries []geom.Box, p Params) *layout.Layout {
	if p.MinRows < 1 {
		p.MinRows = 1
	}
	pool := parbuild.New(p.Parallelism)
	pool.Instrument(p.Obs)
	b := &builder{
		data:    data,
		minRows: p.MinRows,
		pool:    pool,
		scratch: make([]*Scratch, pool.Slots()),
		m:       newBuildMetrics(p.Obs),
	}
	sp := b.m.tConstruct.Start()
	root := b.split(domain, rows, queries, 0, pool.RootSlot())
	sp.End()
	if b.m.axisEval != nil {
		for _, sc := range b.scratch {
			if sc != nil {
				b.m.axisEval.Add(sc.TakeEvals())
			}
		}
	}
	sp = b.m.tSeal.Start()
	l := layout.Seal("qd-tree", root, data.RowBytes())
	sp.End()
	return l
}

type builder struct {
	data    *dataset.Dataset
	minRows int
	pool    *parbuild.Pool
	// scratch is indexed by worker slot; a slot is held by at most one
	// goroutine at a time, so entries need no locking.
	scratch []*Scratch
	m       buildMetrics
}

// buildMetrics is the optional construction telemetry; zero value = disabled
// (all methods no-op on nil instruments).
type buildMetrics struct {
	tConstruct, tSeal      *obs.Timer
	nodes, axisEval        *obs.Counter
	axisAccepted, terminal *obs.Counter
	maxDepth               *obs.Gauge
}

func newBuildMetrics(reg *obs.Registry) buildMetrics {
	if reg == nil {
		return buildMetrics{}
	}
	return buildMetrics{
		tConstruct:   reg.Timer(layout.MetricConstructNs),
		tSeal:        reg.Timer(layout.MetricSealNs),
		nodes:        reg.Counter(layout.MetricNodes),
		axisEval:     reg.Counter(layout.MetricAxisEvaluated),
		axisAccepted: reg.Counter(layout.MetricAxisAccepted),
		terminal:     reg.Counter(layout.MetricPolicyTerminal),
		maxDepth:     reg.Gauge(layout.MetricMaxDepth),
	}
}

func (b *builder) scratchFor(slot int) *Scratch {
	if sc := b.scratch[slot]; sc != nil {
		return sc
	}
	sc := NewScratch()
	b.scratch[slot] = sc
	return sc
}

// Cut is an axis-parallel split with explicit boundary ownership: records
// with value <= LeftHi go left, the rest go right. LeftHi and RightLo are
// adjacent floats, so the children's closed descriptor boxes do not overlap
// and a cut placed at a query's lower bound keeps the query fully out of the
// left child (the point of cutting there).
type Cut struct {
	Dim             int
	LeftHi, RightLo float64
}

// CutAtLower builds the cut for a query lower bound v: the boundary value
// itself belongs to the right child.
func CutAtLower(dim int, v float64) Cut {
	return Cut{Dim: dim, LeftHi: math.Nextafter(v, math.Inf(-1)), RightLo: v}
}

// CutAtUpper builds the cut for a query upper bound v: the boundary value
// itself belongs to the left child.
func CutAtUpper(dim int, v float64) Cut {
	return Cut{Dim: dim, LeftHi: v, RightLo: math.Nextafter(v, math.Inf(1))}
}

// Apply divides box into the two child boxes of the cut.
func (c Cut) Apply(box geom.Box) (left, right geom.Box) {
	left = box.Clone()
	left.Hi[c.Dim] = c.LeftHi
	right = box.Clone()
	right.Lo[c.Dim] = c.RightLo
	return left, right
}

// Inside reports whether the cut separates the interior of box at all.
func (c Cut) Inside(box geom.Box) bool {
	return c.LeftHi >= box.Lo[c.Dim] && c.RightLo <= box.Hi[c.Dim]
}

// Candidates enumerates the Qd-tree cut set for a box: cuts at the lower and
// upper values of every query on every dimension, restricted to cuts that
// actually separate the box. PAW's Axis-Parallel Split (Alg. 2) reuses this.
func Candidates(box geom.Box, queries []geom.Box) []Cut {
	var out []Cut
	seen := make(map[Cut]bool)
	add := func(c Cut) {
		if !c.Inside(box) {
			return
		}
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, q := range queries {
		for dim := range q.Lo {
			add(CutAtLower(dim, q.Lo[dim]))
			add(CutAtUpper(dim, q.Hi[dim]))
		}
	}
	return out
}

func (b *builder) split(box geom.Box, rows []int, queries []geom.Box, depth, slot int) *layout.Node {
	b.m.nodes.Inc()
	b.m.maxDepth.SetMax(int64(depth))
	if len(rows) < 2*b.minRows || len(queries) == 0 {
		b.m.terminal.Inc()
		return leaf(box, rows)
	}
	// Current (unsplit) cost: every intersecting query scans all rows.
	curCost := int64(len(queries)) * int64(len(rows))
	best, ok := BestCut(b.data, box, rows, queries, nil, b.minRows, b.scratchFor(slot))
	if !ok || best.Cost >= curCost {
		return leaf(box, rows)
	}
	b.m.axisAccepted.Inc()
	left, right := SplitRowsN(b.data, rows, best.Cut, best.LeftRows)
	lbox, rbox := best.Cut.Apply(box)
	node := &layout.Node{
		Desc:     layout.NewRect(box),
		Children: make([]*layout.Node, 2),
	}
	b.pool.Fan(slot, 2, func(i, s int) {
		if i == 0 {
			node.Children[0] = b.split(lbox, left, clipQueries(queries, lbox), depth+1, s)
		} else {
			node.Children[1] = b.split(rbox, right, clipQueries(queries, rbox), depth+1, s)
		}
	})
	return node
}

// Scratch holds the reusable buffers of cut evaluation: the per-dimension
// sorted row values and query bounds, and the candidate dedup set. One
// Scratch may be used by one goroutine at a time; builders keep one per
// parbuild worker slot so the hot path allocates nothing per node.
type Scratch struct {
	rowVals, qLo, qHi []float64
	seen              map[Cut]bool
	// evals counts the unique candidate cuts evaluated by TopCuts on this
	// scratch since the last TakeEvals. Plain int64 — a scratch is
	// single-goroutine by contract — so the hot path pays one increment.
	evals int64
}

// TakeEvals returns and resets the candidate-evaluation count. Builders with
// telemetry enabled drain every worker's scratch into the Alg. 2 counter
// (layout.MetricAxisEvaluated) once construction finishes.
func (sc *Scratch) TakeEvals() int64 {
	n := sc.evals
	sc.evals = 0
	return n
}

// NewScratch returns an empty scratch; buffers grow on first use and are
// retained across calls.
func NewScratch() *Scratch {
	return &Scratch{seen: make(map[Cut]bool)}
}

// Floats borrows a length-n float64 buffer from the scratch. The borrow is
// only valid until the next TopCuts/BestCut call on the same scratch;
// callers use it for short-lived per-node work (median scans, rank sorts).
func (sc *Scratch) Floats(n int) []float64 {
	sc.rowVals = growFloats(sc.rowVals, n)
	return sc.rowVals
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// CutCost is a candidate cut with its immediate workload cost and the number
// of rows its left child receives (so callers can pre-size SplitRowsN's
// outputs without rescanning).
type CutCost struct {
	Cut      Cut
	Cost     int64
	LeftRows int
}

// BestCut finds the cost-minimising axis-parallel cut over the Qd-tree
// candidate set (query lower/upper bounds on every dimension) plus any extra
// candidate cuts, subject to both children holding at least minRows rows.
// sc may be nil (a temporary scratch is allocated).
func BestCut(data *dataset.Dataset, box geom.Box, rows []int, queries []geom.Box, extra []Cut, minRows int, sc *Scratch) (CutCost, bool) {
	top := TopCuts(data, box, rows, queries, extra, minRows, 1, sc)
	if len(top) == 0 {
		return CutCost{}, false
	}
	return top[0], true
}

// TopCuts returns the k cheapest admissible cuts (ascending by cost) over
// the Qd-tree candidate set plus the extra cuts. Beam-search construction
// uses k > 1 to branch on near-optimal alternatives. sc may be nil.
//
// All queries must intersect box. The evaluation exploits that a cut only
// changes dimension dim: the left child intersects query q iff
// q.Lo[dim] <= LeftHi, the right child iff q.Hi[dim] >= RightLo. Sorting row
// values and query bounds once per dimension makes each candidate O(log n)
// instead of O(rows + queries).
func TopCuts(data *dataset.Dataset, box geom.Box, rows []int, queries []geom.Box, extra []Cut, minRows, k int, sc *Scratch) []CutCost {
	if k < 1 {
		k = 1
	}
	if sc == nil {
		sc = NewScratch()
	}
	dims := box.Dims()
	total := len(rows)
	nq := len(queries)
	top := make([]CutCost, 0, k) // ascending by cost, at most k entries
	sc.rowVals = growFloats(sc.rowVals, total)
	sc.qLo = growFloats(sc.qLo, nq)
	sc.qHi = growFloats(sc.qHi, nq)
	rowVals, qLo, qHi := sc.rowVals, sc.qLo, sc.qHi
	clear(sc.seen)
	seen := sc.seen
	for dim := 0; dim < dims; dim++ {
		col := data.Column(dim)
		for i, r := range rows {
			rowVals[i] = col[r]
		}
		sort.Float64s(rowVals)
		for i, q := range queries {
			qLo[i] = q.Lo[dim]
			qHi[i] = q.Hi[dim]
		}
		sort.Float64s(qLo)
		sort.Float64s(qHi)
		try := func(c Cut) {
			if !c.Inside(box) || seen[c] {
				return
			}
			seen[c] = true
			sc.evals++
			leftRows := countLE(rowVals, c.LeftHi)
			rightRows := total - leftRows
			if leftRows < minRows || rightRows < minRows {
				return
			}
			nQL := countLE(qLo, c.LeftHi)       // queries reaching the left child
			nQR := nq - countLT(qHi, c.RightLo) // queries reaching the right child
			cost := int64(leftRows)*int64(nQL) + int64(rightRows)*int64(nQR)
			// Insert into the bounded, sorted top list.
			if len(top) == k && cost >= top[k-1].Cost {
				return
			}
			pos := sort.Search(len(top), func(i int) bool { return top[i].Cost > cost })
			top = append(top, CutCost{})
			copy(top[pos+1:], top[pos:])
			top[pos] = CutCost{Cut: c, Cost: cost, LeftRows: leftRows}
			if len(top) > k {
				top = top[:k]
			}
		}
		for i := 0; i < nq; i++ {
			try(CutAtLower(dim, queries[i].Lo[dim]))
			try(CutAtUpper(dim, queries[i].Hi[dim]))
		}
		for _, c := range extra {
			if c.Dim == dim {
				try(c)
			}
		}
	}
	return top
}

// countLE returns the number of sorted values <= x.
func countLE(sorted []float64, x float64) int {
	return sort.Search(len(sorted), func(i int) bool { return sorted[i] > x })
}

// countLT returns the number of sorted values < x.
func countLT(sorted []float64, x float64) int {
	return sort.Search(len(sorted), func(i int) bool { return sorted[i] >= x })
}

// SplitRows divides row indices according to the cut's boundary ownership.
// When the left-child count is already known (CutCost.LeftRows), use
// SplitRowsN to skip the counting pass.
func SplitRows(data *dataset.Dataset, rows []int, c Cut) (left, right []int) {
	col := data.Column(c.Dim)
	n := 0
	for _, r := range rows {
		if col[r] <= c.LeftHi {
			n++
		}
	}
	return SplitRowsN(data, rows, c, n)
}

// SplitRowsN is SplitRows with the left-child row count known in advance,
// pre-sizing both output slices exactly so no append ever reallocates.
func SplitRowsN(data *dataset.Dataset, rows []int, c Cut, nLeft int) (left, right []int) {
	if nLeft < 0 || nLeft > len(rows) {
		nLeft = 0
	}
	col := data.Column(c.Dim)
	left = make([]int, 0, nLeft)
	right = make([]int, 0, len(rows)-nLeft)
	for _, r := range rows {
		if col[r] <= c.LeftHi {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	return left, right
}

func clipQueries(queries []geom.Box, box geom.Box) []geom.Box {
	var out []geom.Box
	for _, q := range queries {
		if inter, ok := q.Intersection(box); ok {
			out = append(out, inter)
		}
	}
	return out
}

func leaf(box geom.Box, rows []int) *layout.Node {
	d := layout.NewRect(box)
	return &layout.Node{Desc: d, Part: &layout.Partition{Desc: d, SampleRows: rows}}
}
