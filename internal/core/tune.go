package core

import (
	"fmt"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/workload"
)

// DefaultAlphaCandidates is the grid TunePolicy searches.
var DefaultAlphaCandidates = []float64{2, 4, 8, 16, 32, 64}

// TunePolicy selects the Ψ-policy constant α automatically, addressing the
// paper's third future-work question ("when more split functions are
// considered, how to automatically determine their apply conditions?", §VII)
// for the one split-function condition PAW already has.
//
// The procedure is holdout validation in the spirit of §IV-E: the historical
// workload is split into halves by timestamp; for every candidate α a layout
// is built against the older half's worst-case workload and scored on the
// newer half's extension (queries the builder never saw). The cheapest α
// wins; ties go to the larger α because Multi-Group Split is the expensive
// split (Eq. 4's rationale).
func TunePolicy(data *dataset.Dataset, rows []int, domain geom.Box, hist workload.Workload, p Params, candidates []float64) (float64, error) {
	p = p.withDefaults()
	if len(candidates) == 0 {
		candidates = DefaultAlphaCandidates
	}
	if len(hist) < 4 {
		return 0, fmt.Errorf("core: need at least 4 historical queries to tune α, have %d", len(hist))
	}
	train, valid := hist.SplitHalves()
	validQ := clipBoxes(valid.Extend(p.Delta).Boxes(), domain)

	bestAlpha := candidates[0]
	var bestCost int64 = -1
	for _, alpha := range candidates {
		params := p
		params.Alpha = alpha
		b := newBuilder(data, params)
		root := b.construct(domain, rows, clipBoxes(train.Extend(p.Delta).Boxes(), domain), 0, b.pool.RootSlot())
		cost := treeCost(root, validQ)
		if bestCost < 0 || cost < bestCost || (cost == bestCost && alpha > bestAlpha) {
			bestCost = cost
			bestAlpha = alpha
		}
	}
	return bestAlpha, nil
}
