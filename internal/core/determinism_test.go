package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"paw/internal/dataset"
	"paw/internal/kdtree"
	"paw/internal/layout"
	"paw/internal/qdtree"
	"paw/internal/workload"
)

// TestParallelBuildDeterminism is the regression gate for the concurrent
// build substrate: for every builder (PAW in all variants, Qd-tree, k-d
// tree, beam), the layout produced with Parallelism: 8 must be deep-equal —
// and byte-identical once encoded — to the serial layout, and must pass
// layout.Validate after routing the full dataset.
func TestParallelBuildDeterminism(t *testing.T) {
	type buildCase struct {
		name  string
		build func(parallelism int) *layout.Layout
	}

	tpch := dataset.TPCHLike(12_000, 101).Project(4).Normalize()
	osm := dataset.OSMLike(8_000, 6, 102).Normalize()

	var cases []buildCase
	for _, ds := range []struct {
		label string
		data  *dataset.Dataset
	}{{"tpch", tpch}, {"osm", osm}} {
		data := ds.data
		dom := data.Domain()
		rows := allRows(data.NumRows())
		hist := workload.Uniform(dom, workload.Defaults(24, 103))
		delta := 0.01 * (dom.Hi[0] - dom.Lo[0])
		minRows := 40

		cases = append(cases,
			buildCase{ds.label + "/paw", func(par int) *layout.Layout {
				return Build(data, rows, dom, hist, Params{MinRows: minRows, Delta: delta, Parallelism: par})
			}},
			buildCase{ds.label + "/paw-refine", func(par int) *layout.Layout {
				return Build(data, rows, dom, hist, Params{
					MinRows: minRows, Delta: delta, DataAwareRefine: true, Parallelism: par,
				})
			}},
			buildCase{ds.label + "/paw-rect", func(par int) *layout.Layout {
				return Build(data, rows, dom, hist, Params{
					MinRows: minRows, Delta: delta, DisableMultiGroup: true, Parallelism: par,
				})
			}},
			buildCase{ds.label + "/qd-tree", func(par int) *layout.Layout {
				return qdtree.Build(data, rows, dom, hist.Boxes(), qdtree.Params{MinRows: minRows, Parallelism: par})
			}},
			buildCase{ds.label + "/kd-tree", func(par int) *layout.Layout {
				return kdtree.Build(data, rows, dom, kdtree.Params{MinRows: minRows, Parallelism: par})
			}},
			buildCase{ds.label + "/beam", func(par int) *layout.Layout {
				return BuildBeam(data, rows, dom, hist, BeamParams{
					Params: Params{MinRows: minRows, Delta: delta, Parallelism: par},
					Width:  2, Branch: 2,
				})
			}},
		)
	}

	dataFor := func(name string) *dataset.Dataset {
		if len(name) >= 4 && name[:4] == "tpch" {
			return tpch
		}
		return osm
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			serial := c.build(1)
			parallel := c.build(8)

			if !reflect.DeepEqual(serial.Root, parallel.Root) {
				t.Fatal("parallel tree differs from serial tree")
			}
			if len(serial.Parts) != len(parallel.Parts) {
				t.Fatalf("partition counts differ: serial %d, parallel %d",
					len(serial.Parts), len(parallel.Parts))
			}
			for i := range serial.Parts {
				if !reflect.DeepEqual(serial.Parts[i], parallel.Parts[i]) {
					t.Fatalf("partition %d differs between serial and parallel build", i)
				}
			}
			var sb, pb bytes.Buffer
			if err := serial.Encode(&sb); err != nil {
				t.Fatal(err)
			}
			if err := parallel.Encode(&pb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
				t.Fatal("encoded layouts are not byte-identical")
			}

			data := dataFor(c.name)
			parallel.Route(data)
			if err := parallel.Validate(data, 0); err != nil {
				t.Fatalf("parallel layout fails validation: %v", err)
			}
		})
	}
}

// TestParallelismLevelsAgree pins the full sweep 1..8 on one PAW setting so
// a worker-count-dependent tie-break cannot sneak in at widths the pairwise
// test does not cover.
func TestParallelismLevelsAgree(t *testing.T) {
	data := dataset.OSMLike(6_000, 5, 104).Normalize()
	dom := data.Domain()
	rows := allRows(data.NumRows())
	hist := workload.Skewed(dom, workload.Defaults(20, 105))
	delta := 0.01 * (dom.Hi[0] - dom.Lo[0])

	var ref *layout.Layout
	for par := 1; par <= 8; par++ {
		l := Build(data, rows, dom, hist, Params{
			MinRows: 30, Delta: delta, DataAwareRefine: true, Parallelism: par,
		})
		if ref == nil {
			ref = l
			continue
		}
		if !reflect.DeepEqual(ref.Root, l.Root) {
			t.Fatalf("Parallelism=%d produced a different tree than Parallelism=1", par)
		}
	}
}

// TestParallelBuildRepeatable re-runs one parallel build several times: the
// goroutine schedule varies between runs, the output must not.
func TestParallelBuildRepeatable(t *testing.T) {
	data := dataset.TPCHLike(8_000, 106).Project(3).Normalize()
	dom := data.Domain()
	rows := allRows(data.NumRows())
	hist := workload.Uniform(dom, workload.Defaults(16, 107))

	build := func() string {
		l := Build(data, rows, dom, hist, Params{MinRows: 25, Delta: 0.01, Parallelism: 8})
		var b bytes.Buffer
		if err := l.Encode(&b); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%x", b.Bytes())
	}
	first := build()
	for i := 0; i < 3; i++ {
		if got := build(); got != first {
			t.Fatalf("run %d produced a different layout", i+2)
		}
	}
}
