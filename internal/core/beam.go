package core

import (
	"sort"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/qdtree"
	"paw/internal/workload"
)

// BuildBeam is the beam-search variant of PAW-Construction that the paper
// sketches as future work in §IV-D: instead of committing greedily to the
// locally cheapest split, it maintains Width candidate partial layouts and
// expands each frontier node with the Branch cheapest alternatives
// (Multi-Group Split, the top axis-parallel cuts, and "stop splitting"),
// keeping the Width globally cheapest states. Width = 1 with Branch = 1
// degenerates to the greedy Algorithm 3 (modulo tie-breaking).
//
// The search cost grows roughly linearly in Width·Branch, so the variant is
// intended for offline construction where layout quality matters more than
// build time. See the ablation_beam experiment for the measured trade-off.
type BeamParams struct {
	Params
	// Width is the beam width (number of partial layouts kept). Minimum 1.
	Width int
	// Branch is the number of split alternatives expanded per node
	// (Multi-Group Split counts as one when admissible). Minimum 1.
	Branch int
}

// BuildBeam constructs a PAW layout by beam search. The returned layout is
// sealed but not routed.
func BuildBeam(data *dataset.Dataset, rows []int, domain geom.Box, hist workload.Workload, p BeamParams) *layout.Layout {
	p.Params = p.Params.withDefaults()
	if p.Width < 1 {
		p.Width = 1
	}
	if p.Branch < 1 {
		p.Branch = 1
	}
	ext := hist.Extend(p.Delta)
	queries := clipBoxes(ext.Boxes(), domain)
	b := newBuilder(data, p.Params)

	root := &beamNode{box: domain, rows: rows, queries: queries}
	sp := b.m.tConstruct.Start()
	best := toLayoutNode(b, searchBeam(b, root, p))
	// Beam pruning can discard a trajectory whose payoff comes late, so the
	// beam result alone is not guaranteed to beat greedy Algorithm 3. Build
	// both and keep the cheaper layout under the construction cost model —
	// beam search then never loses quality, only build time.
	greedy := b.construct(domain, rows, queries, 0, b.pool.RootSlot())
	if treeCost(greedy, queries) < treeCost(best, queries) {
		best = greedy
	}
	sp.End()
	b.flushScratchStats()
	sp = b.m.tSeal.Start()
	l := layout.Seal("paw-beam", best, data.RowBytes())
	sp.End()
	return l
}

// treeCost evaluates Cost(P, Q*F) of a constructed tree in sample rows.
func treeCost(root *layout.Node, queries []geom.Box) int64 {
	var total int64
	for _, leaf := range root.Leaves() {
		n := int64(len(leaf.Part.SampleRows))
		for _, q := range queries {
			if leaf.Desc.Intersects(q) {
				total += n
			}
		}
	}
	return total
}

// beamNode is a node of a candidate partition tree under construction.
type beamNode struct {
	box     geom.Box
	rows    []int
	queries []geom.Box

	// closed marks a finalised leaf. irregular carries the descriptor for
	// irregular leaves.
	closed    bool
	irregular *layout.Irregular
	children  []*beamNode
}

// cost returns the node's contribution to the layout cost while it is a
// leaf: every intersecting query scans all its rows (irregular leaves
// intersect none of their queries by construction).
func (n *beamNode) cost() int64 {
	if n.irregular != nil {
		return 0
	}
	return int64(len(n.queries)) * int64(len(n.rows))
}

// state is one partial layout in the beam.
type state struct {
	// open nodes still eligible for splitting, in discovery order.
	open []*beamNode
	// total is the current layout cost: Σ cost over open and closed leaves.
	total int64
	// root of this state's (copy-on-write) tree.
	root *beamNode
}

// searchBeam runs the beam search and returns the best final tree root.
func searchBeam(b *builder, root *beamNode, p BeamParams) *beamNode {
	init := &state{root: root, total: root.cost()}
	if splittable(b, root) {
		init.open = []*beamNode{root}
	} else {
		root.closed = true
	}
	beam := []*state{init}
	var finished []*state
	for len(beam) > 0 {
		// Expand every surviving state concurrently: expansions are
		// independent (states share tree nodes copy-on-write only), and the
		// per-state successor lists are flattened in beam order, so the
		// successor sequence — and therefore the whole search — matches the
		// serial run exactly.
		var pending []*state
		for _, st := range beam {
			if len(st.open) == 0 {
				finished = append(finished, st)
				continue
			}
			pending = append(pending, st)
		}
		perState := make([][]*state, len(pending))
		b.pool.Fan(b.pool.RootSlot(), len(pending), func(i, slot int) {
			perState[i] = expand(b, pending[i], p, slot)
		})
		var successors []*state
		for _, succ := range perState {
			successors = append(successors, succ...)
		}
		if len(successors) == 0 {
			break
		}
		sort.Slice(successors, func(i, j int) bool { return successors[i].total < successors[j].total })
		if len(successors) > p.Width {
			successors = successors[:p.Width]
		}
		beam = successors
	}
	bestState := finished[0]
	for _, st := range finished[1:] {
		if st.total < bestState.total {
			bestState = st
		}
	}
	return bestState.root
}

// splittable mirrors the Ψ policy gate: the node is worth keeping open.
func splittable(b *builder, n *beamNode) bool {
	return len(n.queries) > 0 && len(n.rows) >= 2*b.p.MinRows
}

// expand pops the first open node of st and emits one successor per split
// alternative plus one that closes the node. slot selects the executing
// worker's scratch.
func expand(b *builder, st *state, p BeamParams, slot int) []*state {
	node := st.open[0]
	rest := st.open[1:]
	var out []*state

	// Alternative 0: close the node as-is.
	closed := cloneState(st, rest)
	out = append(out, closed)

	// Multi-Group Split, when the policy admits it.
	if !b.p.DisableMultiGroup && float64(len(node.rows)) >= b.p.Alpha*float64(b.p.MinRows) {
		if r := b.multiGroupSplit(node.box, node.rows, node.queries, slot); r != nil {
			out = append(out, applySplit(b, st, rest, node, r))
		}
	}
	// Top axis-parallel cuts.
	sc := b.scratchFor(slot)
	cuts := qdtree.TopCuts(b.data, node.box, node.rows, node.queries, b.medianCuts(node.box, node.rows, sc), b.p.MinRows, p.Branch, sc.qd)
	for _, cc := range cuts {
		left, right := qdtree.SplitRowsN(b.data, node.rows, cc.Cut, cc.LeftRows)
		lbox, rbox := cc.Cut.Apply(node.box)
		r := &splitResult{pieces: []piece{
			{desc: layout.NewRect(lbox), box: lbox, rows: left},
			{desc: layout.NewRect(rbox), box: rbox, rows: right},
		}}
		out = append(out, applySplit(b, st, rest, node, r))
	}
	return out
}

// cloneState closes the popped node in a successor that shares the tree
// (closing mutates nothing that other states observe: the node's children
// stay empty, and open-lists are per-state).
func cloneState(st *state, rest []*beamNode) *state {
	return &state{open: rest, total: st.total, root: st.root}
}

// applySplit materialises a split of node into a successor state.
//
// Tree sharing: beam states share ancestor nodes, and a node split in one
// state may be closed in another. To keep states independent, the split is
// recorded in a fresh child list on a *copy* of the node; the copy replaces
// the original in the successor's tree by path-copying from the root.
func applySplit(b *builder, st *state, rest []*beamNode, node *beamNode, r *splitResult) *state {
	newNode := &beamNode{box: node.box, rows: node.rows, queries: node.queries}
	var opened []*beamNode
	var childCost int64
	for _, pc := range r.pieces {
		child := &beamNode{box: pc.box, rows: pc.rows}
		if pc.irregular {
			ir := pc.desc.(layout.Irregular)
			child.irregular = &ir
			child.closed = true
		} else {
			child.queries = clipBoxes(node.queries, pc.box)
			if splittable(b, child) {
				opened = append(opened, child)
			} else {
				child.closed = true
			}
		}
		childCost += child.cost()
		newNode.children = append(newNode.children, child)
	}
	root, ok := replaceNode(st.root, node, newNode)
	if !ok {
		// node must be reachable; replaceNode only fails on logic errors.
		panic("core: beam state lost track of its open node")
	}
	openList := make([]*beamNode, 0, len(rest)+len(opened))
	// Rewrite stale pointers in the remaining open list: path copying may
	// have cloned ancestors, but open nodes themselves are never cloned
	// (only the split node is), so the rest list stays valid.
	openList = append(openList, rest...)
	openList = append(openList, opened...)
	return &state{
		open:  openList,
		total: st.total - node.cost() + childCost,
		root:  root,
	}
}

// replaceNode returns a tree equal to cur with target replaced by repl,
// path-copying the ancestors of target so sibling states are unaffected.
func replaceNode(cur, target, repl *beamNode) (*beamNode, bool) {
	if cur == target {
		return repl, true
	}
	for i, c := range cur.children {
		if newChild, ok := replaceNode(c, target, repl); ok {
			cp := *cur
			cp.children = append([]*beamNode(nil), cur.children...)
			cp.children[i] = newChild
			return &cp, true
		}
	}
	return nil, false
}

// toLayoutNode converts the final beam tree into a layout tree.
func toLayoutNode(b *builder, n *beamNode) *layout.Node {
	if len(n.children) == 0 {
		if n.irregular != nil {
			return &layout.Node{Desc: *n.irregular, Part: &layout.Partition{Desc: *n.irregular, SampleRows: n.rows}}
		}
		d := layout.NewRect(n.box)
		return &layout.Node{Desc: d, Part: &layout.Partition{Desc: d, SampleRows: n.rows}}
	}
	out := &layout.Node{Desc: layout.NewRect(n.box)}
	for _, c := range n.children {
		out.Children = append(out.Children, toLayoutNode(b, c))
	}
	return out
}
