package core

import (
	"testing"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/qdtree"
	"paw/internal/workload"
)

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func box2(l0, l1, h0, h1 float64) geom.Box {
	return geom.Box{Lo: geom.Point{l0, l1}, Hi: geom.Point{h0, h1}}
}

func TestGroupIntersecting(t *testing.T) {
	qs := []geom.Box{
		box2(0, 0, 2, 2),
		box2(1, 1, 3, 3), // intersects 0
		box2(5, 5, 6, 6),
		box2(5.5, 5.5, 7, 7), // intersects 2
		box2(9, 9, 10, 10),
	}
	groups := groupIntersecting(qs)
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	sizes := []int{len(groups[0]), len(groups[1]), len(groups[2])}
	if sizes[0] != 2 || sizes[1] != 2 || sizes[2] != 1 {
		t.Errorf("group sizes = %v", sizes)
	}
	// Transitivity: a chain a-b, b-c merges into one group.
	chain := []geom.Box{box2(0, 0, 2, 2), box2(1, 1, 4, 4), box2(3, 3, 5, 5)}
	groups = groupIntersecting(chain)
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Errorf("chain groups = %v", groups)
	}
	if len(groupIntersecting(nil)) != 0 {
		t.Error("no queries, no groups")
	}
}

func TestBuildBasicInvariants(t *testing.T) {
	data := dataset.Uniform(4000, 2, 1)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(20, 2))
	p := Params{MinRows: 50, Delta: 0.01}
	l := Build(data, allRows(4000), dom, hist, p)
	if l.Method != "paw" {
		t.Errorf("method = %q", l.Method)
	}
	l.Route(data)
	if err := l.Validate(data, int64(p.MinRows)); err != nil {
		t.Fatal(err)
	}
	if l.NumPartitions() < 2 {
		t.Errorf("PAW produced %d partitions", l.NumPartitions())
	}
	// Must contain at least one irregular partition on this workload.
	irr := 0
	for _, part := range l.Parts {
		if part.Desc.Kind() == layout.KindIrregular {
			irr++
		}
	}
	if irr == 0 {
		t.Error("expected at least one irregular partition")
	}
	// Costs dominate the lower bound.
	fut := workload.Future(hist, 0.01, 1, 3)
	if err := l.CheckCostDominatesLB(data, fut.Boxes()); err != nil {
		t.Error(err)
	}
}

// TestRobustToFutureWorkload is the paper's headline claim (Figs. 13–14):
// PAW built with δ stays efficient on δ-similar future workloads, while the
// Qd-tree degrades.
func TestRobustToFutureWorkload(t *testing.T) {
	data := dataset.Uniform(6000, 2, 4)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(25, 5))
	const delta = 0.01
	fut := workload.Future(hist, delta, 1, 6)

	paw := Build(data, allRows(6000), dom, hist, Params{MinRows: 60, Delta: delta})
	paw.Route(data)
	qd := qdtree.Build(data, allRows(6000), dom, hist.Boxes(), qdtree.Params{MinRows: 60})
	qd.Route(data)

	pawRatio := paw.ScanRatio(fut.Boxes(), nil)
	qdRatio := qd.ScanRatio(fut.Boxes(), nil)
	if pawRatio >= qdRatio {
		t.Errorf("PAW ratio %v not below Qd-tree ratio %v on the future workload", pawRatio, qdRatio)
	}
	t.Logf("future workload scan ratio: PAW=%.4f Qd-tree=%.4f (%.1fx)", pawRatio, qdRatio, qdRatio/pawRatio)
}

// TestFutureQueriesHitSingleGroup checks the §VI-B observation: each future
// query is highly likely to fall into a single grouped partition.
func TestFutureQueriesHitSingleGroup(t *testing.T) {
	data := dataset.Uniform(6000, 2, 7)
	dom := data.Domain()
	// Well-separated queries so extension keeps groups disjoint.
	hist := workload.Workload{
		{Box: box2(0.1, 0.1, 0.2, 0.2)},
		{Box: box2(0.5, 0.5, 0.6, 0.6)},
		{Box: box2(0.8, 0.1, 0.9, 0.2)},
		{Box: box2(0.1, 0.8, 0.2, 0.9)},
	}
	const delta = 0.01
	l := Build(data, allRows(6000), dom, hist, Params{MinRows: 50, Delta: delta})
	l.Route(data)
	fut := workload.Future(hist, delta, 5, 8)
	single := 0
	for _, q := range fut {
		if len(l.PartitionsFor(q.Box)) == 1 {
			single++
		}
	}
	if single < len(fut)*9/10 {
		t.Errorf("only %d/%d future queries hit a single partition", single, len(fut))
	}
}

func TestDeltaZeroSpecialCase(t *testing.T) {
	data := dataset.Uniform(4000, 2, 9)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(15, 10))
	l := Build(data, allRows(4000), dom, hist, Params{MinRows: 50, Delta: 0})
	l.Route(data)
	if err := l.Validate(data, 50); err != nil {
		t.Fatal(err)
	}
	// On the historical workload itself PAW must beat a full scan hugely.
	if r := l.ScanRatio(hist.Boxes(), nil); r > 0.3 {
		t.Errorf("scan ratio %v too high for δ=0", r)
	}
}

func TestDisableMultiGroup(t *testing.T) {
	data := dataset.Uniform(4000, 2, 11)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(20, 12))
	l := Build(data, allRows(4000), dom, hist, Params{MinRows: 50, Delta: 0.01, DisableMultiGroup: true})
	for _, p := range l.Parts {
		if p.Desc.Kind() == layout.KindIrregular {
			t.Fatal("DisableMultiGroup must not produce irregular partitions")
		}
	}
	l.Route(data)
	if err := l.Validate(data, 50); err != nil {
		t.Error(err)
	}
}

func TestDataAwareRefine(t *testing.T) {
	data := dataset.Uniform(8000, 2, 13)
	dom := data.Domain()
	// One focused query leaves most of the space query-free.
	hist := workload.Workload{{Box: box2(0.4, 0.4, 0.5, 0.5)}}
	base := Build(data, allRows(8000), dom, hist, Params{MinRows: 50, Delta: 0.01})
	refined := Build(data, allRows(8000), dom, hist, Params{MinRows: 50, Delta: 0.01, DataAwareRefine: true})
	if refined.NumPartitions() <= base.NumPartitions() {
		t.Errorf("refined layout has %d partitions, base %d — refinement did nothing",
			refined.NumPartitions(), base.NumPartitions())
	}
	refined.Route(data)
	if err := refined.Validate(data, 50); err != nil {
		t.Fatal(err)
	}
	// Random (unpredictable) queries must be much cheaper on the refined
	// layout.
	rnd := workload.Uniform(dom, workload.Defaults(50, 14))
	base.Route(data)
	if br, rr := base.ScanRatio(rnd.Boxes(), nil), refined.ScanRatio(rnd.Boxes(), nil); rr >= br {
		t.Errorf("refined ratio %v not below base %v on random queries", rr, br)
	}
}

func TestExpandToMin(t *testing.T) {
	data := dataset.Uniform(1000, 2, 15)
	b := newBuilder(data, Params{MinRows: 100}.withDefaults())
	dom := data.Domain()
	// A tiny query region holds almost no rows; expansion must reach 100.
	tiny := box2(0.50, 0.50, 0.51, 0.51)
	grown, ok := b.expandToMin(dom, allRows(1000), tiny, b.scratchFor(b.pool.RootSlot()))
	if !ok {
		t.Fatal("expansion failed")
	}
	if n := data.CountInBox(grown, nil); n < 100 {
		t.Errorf("expanded box holds %d rows, want >= 100", n)
	}
	if !grown.ContainsBox(tiny.Clip(dom)) {
		t.Error("expansion must contain the original region")
	}
	// Center must be preserved.
	c, g := tiny.Center(), grown.Center()
	for d := range c {
		if diff := c[d] - g[d]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("expansion moved the center: %v -> %v", c, g)
		}
	}
}

func TestExpandToMinDegenerate(t *testing.T) {
	data := dataset.Uniform(1000, 2, 16)
	b := newBuilder(data, Params{MinRows: 50}.withDefaults())
	dom := data.Domain()
	// Zero-extent query (a point lookup): radius 0 in both dims.
	pointQ := box2(0.5, 0.5, 0.5, 0.5)
	grown, ok := b.expandToMin(dom, allRows(1000), pointQ, b.scratchFor(b.pool.RootSlot()))
	if !ok {
		t.Fatal("degenerate expansion failed")
	}
	if n := data.CountInBox(grown, nil); n < 50 {
		t.Errorf("expanded degenerate box holds %d rows", n)
	}
}

func TestExpandToMinInsufficientRows(t *testing.T) {
	data := dataset.Uniform(30, 2, 17)
	b := newBuilder(data, Params{MinRows: 50}.withDefaults())
	dom := data.Domain()
	if _, ok := b.expandToMin(dom, allRows(30), box2(0.4, 0.4, 0.6, 0.6), b.scratchFor(b.pool.RootSlot())); ok {
		t.Error("expansion must fail when the parent has fewer than MinRows rows")
	}
}

func TestSmallInputsStayWhole(t *testing.T) {
	data := dataset.Uniform(80, 2, 18)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(5, 19))
	l := Build(data, allRows(80), dom, hist, Params{MinRows: 50, Delta: 0.01})
	if l.NumPartitions() != 1 {
		t.Errorf("partitions = %d, want 1 (below 2·bmin)", l.NumPartitions())
	}
}

func TestParamDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.MinRows != 1 || p.Alpha != 8 {
		t.Errorf("defaults = %+v", p)
	}
	p = Params{Alpha: 4, MinRows: 10}.withDefaults()
	if p.Alpha != 4 || p.MinRows != 10 {
		t.Errorf("explicit params overridden: %+v", p)
	}
}

// TestLemma1Dominance verifies the layout-level consequence of Lemma 1: the
// average cost of any δ-similar future workload never exceeds the average
// cost of the extended worst-case workload Q*F.
func TestLemma1Dominance(t *testing.T) {
	data := dataset.Uniform(5000, 2, 20)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(20, 21))
	const delta = 0.02
	l := Build(data, allRows(5000), dom, hist, Params{MinRows: 50, Delta: delta})
	l.Route(data)
	ext := hist.Extend(delta)
	worst := l.AvgCost(ext.Boxes(), nil)
	for seed := int64(0); seed < 5; seed++ {
		fut := workload.Future(hist, delta, 2, seed)
		if got := l.AvgCost(fut.Boxes(), nil); got > worst+1e-6 {
			t.Errorf("future workload avg cost %v exceeds worst-case %v (seed %d)", got, worst, seed)
		}
	}
}

func TestBuildOnSampleRoutesFull(t *testing.T) {
	data := dataset.Uniform(20000, 2, 22)
	dom := data.Domain()
	sample := data.Sample(2000, 23)
	hist := workload.Uniform(dom, workload.Defaults(20, 24))
	l := Build(data, sample, dom, hist, Params{MinRows: 20, Delta: 0.01})
	l.Route(data)
	if l.Unrouted != 0 {
		t.Fatalf("unrouted = %d", l.Unrouted)
	}
	var sum int64
	for _, p := range l.Parts {
		sum += p.FullRows
	}
	if sum != 20000 {
		t.Errorf("routed %d rows", sum)
	}
}

func TestSkewedWorkload(t *testing.T) {
	data := dataset.OSMLike(8000, 10, 25)
	dom := data.Domain()
	pgen := workload.Defaults(30, 26)
	hist := workload.Skewed(dom, pgen)
	l := Build(data, allRows(8000), dom, hist, Params{MinRows: 50, Delta: (dom.Hi[0] - dom.Lo[0]) * 0.01})
	l.Route(data)
	if err := l.Validate(data, 50); err != nil {
		t.Fatal(err)
	}
	fut := workload.Future(hist, (dom.Hi[0]-dom.Lo[0])*0.01, 1, 27)
	if err := l.CheckCostDominatesLB(data, fut.Boxes()); err != nil {
		t.Error(err)
	}
}
