// Package core implements PAW — Partitioning Aware of Workload variance —
// the paper's primary contribution. Construction proceeds per §IV:
//
//  1. The historical workload QH is generalised to the worst-case workload
//     Q*F by extending every query by δ in all directions (§IV-A; Lemma 1
//     proves optimising against Q*F optimises the worst case over all
//     δ-similar future workloads).
//  2. PAW-Construction (Alg. 3) recursively splits partitions, choosing at
//     every step the split function allowed by the policy Ψ (Eq. 4) that
//     minimises Cost(P', Q*F(Po)):
//     — Multi-Group Split (Alg. 1) groups mutually intersecting queries,
//     carves one grouped rectangular partition (GP) per group — expanded
//     to reach the minimum size bmin (Fig. 8) — and collects the leftover
//     records in a single irregular-shaped partition (IP);
//     — Axis-Parallel Split (Alg. 2) splits at query boundaries (the
//     Qd-tree candidate cuts) or at the median of each dimension.
//  3. Optionally (§IV-E), query-free leaves are refined data-aware, k-d
//     style, down to the finest size [bmin, 2bmin), so that PAW degrades
//     gracefully to k-d tree behaviour on fully unpredictable workloads.
//
// Construction is parallel: sibling subtrees of every split fan out over a
// bounded parbuild.Pool, and the Multi-Group row assignment sweeps row
// chunks concurrently. The result is deterministic — byte-identical to the
// serial build — because every per-node decision depends only on that
// node's rows and queries, children are assembled in declaration order, and
// chunked sweeps merge in chunk order (see internal/parbuild).
package core

import (
	"sort"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/kdtree"
	"paw/internal/layout"
	"paw/internal/obs"
	"paw/internal/parbuild"
	"paw/internal/qdtree"
	"paw/internal/workload"
)

// Params configures PAW construction.
type Params struct {
	// MinRows is bmin expressed in sample rows.
	MinRows int
	// Alpha is the Ψ-policy constant α (Eq. 4): Multi-Group Split is
	// attempted only on partitions holding at least Alpha·MinRows rows.
	// Must be > 1; defaults to 8.
	Alpha float64
	// Delta is the workload-variance threshold δ in absolute units of the
	// query space. Queries are extended by Delta on every side to form Q*F.
	// Zero reproduces the paper's §VI-G special case (exact workload).
	Delta float64
	// DataAwareRefine enables the §IV-E optimisation: leaves that intersect
	// no extended query are k-d split to the finest size so partially
	// intersecting future queries do not scan huge blocks.
	DataAwareRefine bool
	// DisableMultiGroup turns Multi-Group Split off (rectangles only).
	// Used by the ablation study; the default (false) is full PAW.
	DisableMultiGroup bool
	// Parallelism bounds the construction worker pool: 0 selects
	// runtime.GOMAXPROCS(0), 1 forces a serial build. Any value produces
	// the same layout; Parallelism only trades build time for cores.
	Parallelism int
	// Obs receives construction telemetry: per-phase timers, Alg. 1/2 split
	// statistics, Ψ(α) policy decisions, bmin expansions and parbuild pool
	// activity (metric names in internal/layout's Metric* constants). nil
	// disables instrumentation; the built layout is byte-identical either
	// way — instruments only observe, they never feed back into decisions.
	Obs *obs.Registry
}

func (p Params) withDefaults() Params {
	if p.MinRows < 1 {
		p.MinRows = 1
	}
	if p.Alpha <= 1 {
		p.Alpha = 8
	}
	return p
}

// Build constructs a PAW layout for the historical workload hist over the
// given sample rows of data. domain must cover the sample rows (typically
// the dataset MBR). The returned layout is sealed but not routed.
func Build(data *dataset.Dataset, rows []int, domain geom.Box, hist workload.Workload, p Params) *layout.Layout {
	p = p.withDefaults()
	ext := hist.Extend(p.Delta)
	// Clip the worst-case workload to the domain: the parts of extended
	// queries outside the data space contain no records and would only
	// distort group MBRs.
	queries := clipBoxes(ext.Boxes(), domain)
	b := newBuilder(data, p)
	sp := b.m.tConstruct.Start()
	root := b.construct(domain, rows, queries, 0, b.pool.RootSlot())
	sp.End()
	b.flushScratchStats()
	sp = b.m.tSeal.Start()
	l := layout.Seal("paw", root, data.RowBytes())
	sp.End()
	return l
}

// parAssignMinRows is the row count below which the Multi-Group row
// assignment sweep is not worth chunking across workers.
const parAssignMinRows = 2048

type builder struct {
	data *dataset.Dataset
	p    Params
	pool *parbuild.Pool
	// cols caches the dataset's contiguous column slices so hot loops probe
	// cols[d][r] directly instead of calling data.At per (row, dim) pair.
	cols [][]float64
	// scratch is indexed by parbuild worker slot; a slot is held by at most
	// one goroutine at a time, so entries need no locking.
	scratch []*buildScratch
	// m is the optional construction telemetry; the zero value (all-nil
	// instruments) disables it with no allocations on any path.
	m buildMetrics
}

// buildMetrics bundles the construction instruments. All fields are nil when
// telemetry is disabled; every method call then no-ops on the nil receiver.
type buildMetrics struct {
	tConstruct, tSeal, tMulti, tAxis, tRefine   *obs.Timer
	multiTried, multiAccepted                   *obs.Counter
	axisEval, axisAccepted                      *obs.Counter
	expansions, expandFail                      *obs.Counter
	policyMulti, policyAxisOnly, policyTerminal *obs.Counter
	nodes, refineCalls                          *obs.Counter
	maxDepth                                    *obs.Gauge
}

func newBuildMetrics(reg *obs.Registry) buildMetrics {
	if reg == nil {
		return buildMetrics{}
	}
	return buildMetrics{
		tConstruct:     reg.Timer(layout.MetricConstructNs),
		tSeal:          reg.Timer(layout.MetricSealNs),
		tMulti:         reg.Timer(layout.MetricMultiNs),
		tAxis:          reg.Timer(layout.MetricAxisNs),
		tRefine:        reg.Timer(layout.MetricRefineNs),
		multiTried:     reg.Counter(layout.MetricMultiTried),
		multiAccepted:  reg.Counter(layout.MetricMultiAccepted),
		axisEval:       reg.Counter(layout.MetricAxisEvaluated),
		axisAccepted:   reg.Counter(layout.MetricAxisAccepted),
		expansions:     reg.Counter(layout.MetricExpansions),
		expandFail:     reg.Counter(layout.MetricExpansionFailures),
		policyMulti:    reg.Counter(layout.MetricPolicyMultiAdmitted),
		policyAxisOnly: reg.Counter(layout.MetricPolicyAxisOnly),
		policyTerminal: reg.Counter(layout.MetricPolicyTerminal),
		nodes:          reg.Counter(layout.MetricNodes),
		refineCalls:    reg.Counter(layout.MetricRefineCalls),
		maxDepth:       reg.Gauge(layout.MetricMaxDepth),
	}
}

// buildScratch is the per-worker reusable memory of the construction hot
// paths.
type buildScratch struct {
	// qd backs qdtree cut evaluation (sorted values, bounds, dedup set).
	qd *qdtree.Scratch
	// fs is the float buffer for median scans and expansion-rank sorts.
	fs []float64
	// assign is the per-row group-index buffer of multiGroupSplit.
	assign []int32
}

func newBuilder(data *dataset.Dataset, p Params) *builder {
	pool := parbuild.New(p.Parallelism)
	pool.Instrument(p.Obs)
	cols := make([][]float64, data.Dims())
	for d := range cols {
		cols[d] = data.Column(d)
	}
	return &builder{
		data:    data,
		p:       p,
		pool:    pool,
		cols:    cols,
		scratch: make([]*buildScratch, pool.Slots()),
		m:       newBuildMetrics(p.Obs),
	}
}

// flushScratchStats folds the per-worker scratch counters (Alg. 2 candidate
// evaluations accumulated inside qdtree.TopCuts) into the registry. Called
// once after construction; a disabled build has nothing to flush.
func (b *builder) flushScratchStats() {
	if b.m.axisEval == nil {
		return
	}
	for _, sc := range b.scratch {
		if sc != nil && sc.qd != nil {
			b.m.axisEval.Add(sc.qd.TakeEvals())
		}
	}
}

func (b *builder) scratchFor(slot int) *buildScratch {
	if sc := b.scratch[slot]; sc != nil {
		return sc
	}
	sc := &buildScratch{qd: qdtree.NewScratch()}
	b.scratch[slot] = sc
	return sc
}

func (sc *buildScratch) floats(n int) []float64 {
	if cap(sc.fs) < n {
		sc.fs = make([]float64, n)
	}
	sc.fs = sc.fs[:n]
	return sc.fs
}

func (sc *buildScratch) assignBuf(n int) []int32 {
	if cap(sc.assign) < n {
		sc.assign = make([]int32, n)
	}
	sc.assign = sc.assign[:n]
	return sc.assign
}

// rowIn reports whether row r lies inside box, probing the cached column
// slices directly.
func rowIn(cols [][]float64, r int, box geom.Box) bool {
	for d, col := range cols {
		v := col[r]
		if v < box.Lo[d] || v > box.Hi[d] {
			return false
		}
	}
	return true
}

// construct is PAW-Construction (Alg. 3). queries are the extended queries
// clipped to box; rows are the sample rows inside box. depth is the
// recursion depth (telemetry only); slot identifies the executing worker's
// scratch (parbuild slot).
func (b *builder) construct(box geom.Box, rows []int, queries []geom.Box, depth, slot int) *layout.Node {
	b.m.nodes.Inc()
	b.m.maxDepth.SetMax(int64(depth))
	if len(queries) == 0 {
		return b.queryFreeLeaf(box, rows)
	}
	size := len(rows)
	tryMulti := !b.p.DisableMultiGroup && float64(size) >= b.p.Alpha*float64(b.p.MinRows)
	tryAxis := size >= 2*b.p.MinRows
	if !tryAxis {
		// Ψ(Po) = ∅: below 2·bmin nothing can be split.
		b.m.policyTerminal.Inc()
		return leaf(box, rows)
	}
	// Ψ(α) decision (Eq. 4): which split set this node is offered.
	if tryMulti {
		b.m.policyMulti.Inc()
	} else {
		b.m.policyAxisOnly.Inc()
	}

	curCost := int64(len(queries)) * int64(size)
	var best *splitResult
	bestIsMulti := false
	if tryMulti {
		sp := b.m.tMulti.Start()
		r := b.multiGroupSplit(box, rows, queries, slot)
		sp.End()
		b.m.multiTried.Inc()
		if r != nil && r.cost < curCost {
			best = r
			bestIsMulti = true
		}
	}
	spAxis := b.m.tAxis.Start()
	rAxis := b.axisSplit(box, rows, queries, slot)
	spAxis.End()
	if rAxis != nil && rAxis.cost < curCost {
		if best == nil || rAxis.cost < best.cost {
			best = rAxis
			bestIsMulti = false
		}
	}
	if best == nil {
		return leaf(box, rows)
	}
	if bestIsMulti {
		b.m.multiAccepted.Inc()
	} else {
		b.m.axisAccepted.Inc()
	}

	node := &layout.Node{
		Desc:     layout.NewRect(box),
		Children: make([]*layout.Node, len(best.pieces)),
	}
	// Sibling subtrees are independent; fan them out to free workers and
	// assemble by index so child order matches the serial build exactly.
	b.pool.Fan(slot, len(best.pieces), func(i, s int) {
		pc := best.pieces[i]
		if pc.irregular {
			// Irregular partitions terminate: they intersect no query in
			// Q*F(Po), so their cost is already 0 (§IV-D).
			node.Children[i] = b.irregularLeaf(pc, s)
		} else {
			node.Children[i] = b.construct(pc.box, pc.rows, clipBoxes(queries, pc.box), depth+1, s)
		}
	})
	return node
}

// piece is one candidate partition produced by a split function.
type piece struct {
	desc      layout.Descriptor
	box       geom.Box // recursion box for rectangular pieces
	rows      []int
	irregular bool
}

type splitResult struct {
	pieces []piece
	cost   int64
}

// computeCost evaluates Cost(P', Q*F(Po)) of the candidate pieces through
// layout.CostRows, which indexes the query set on large nodes (many groups ×
// many queries) and falls back to the quadratic loop on small ones.
func (r *splitResult) computeCost(queries []geom.Box) {
	pieces := make([]layout.Piece, len(r.pieces))
	for i, pc := range r.pieces {
		pieces[i] = layout.Piece{Desc: pc.desc, Rows: len(pc.rows)}
	}
	r.cost = layout.CostRows(pieces, queries)
}

// multiGroupSplit is Algorithm 1. It returns nil on a failed split: grouped
// partitions overlap after expansion, or the irregular remainder is below
// bmin.
func (b *builder) multiGroupSplit(box geom.Box, rows []int, queries []geom.Box, slot int) *splitResult {
	groups := groupIntersecting(queries)
	if len(groups) == 0 {
		return nil
	}
	// Build one grouped partition per group, expanding to bmin (Fig. 8).
	sc := b.scratchFor(slot)
	gpBoxes := make([]geom.Box, 0, len(groups))
	for _, g := range groups {
		member := make([]geom.Box, len(g))
		for i, qi := range g {
			member[i] = queries[qi]
		}
		gp := geom.MBR(member...)
		gp, ok := b.expandToMin(box, rows, gp, sc)
		if !ok {
			return nil
		}
		gpBoxes = append(gpBoxes, gp)
	}
	// Grouped partitions must be mutually disjoint (Alg. 1 line 7). Shared
	// boundary planes are tolerated — routing resolves record ownership —
	// but interior overlap fails the split.
	for i := range gpBoxes {
		for j := i + 1; j < len(gpBoxes); j++ {
			if inter, ok := gpBoxes[i].Intersection(gpBoxes[j]); ok && inter.Volume() > 0 {
				return nil
			}
		}
	}
	// Assign rows: first matching GP wins; the rest go to the irregular
	// partition. The sweep records a group index per row (ng = irregular)
	// so the output slices can be allocated exactly once at final size; on
	// big nodes it additionally runs chunked across workers — per-row
	// results are independent and chunks merge in order, so the outcome is
	// identical to the serial sweep.
	ng := len(gpBoxes)
	assign := sc.assignBuf(len(rows))
	counts := make([]int, ng+1)
	sweep := func(lo, hi int, counts []int) {
		for i := lo; i < hi; i++ {
			r := rows[i]
			g := ng
			for gi := range gpBoxes {
				if rowIn(b.cols, r, gpBoxes[gi]) {
					g = gi
					break
				}
			}
			assign[i] = int32(g)
			counts[g]++
		}
	}
	if b.pool.Workers() > 1 && len(rows) >= parAssignMinRows {
		chunkCounts := make([][]int, b.pool.Workers())
		nChunks := b.pool.FanChunks(slot, len(rows), parAssignMinRows/2, func(c, lo, hi, s int) {
			cc := make([]int, ng+1)
			sweep(lo, hi, cc)
			chunkCounts[c] = cc
		})
		for c := 0; c < nChunks; c++ {
			for g, n := range chunkCounts[c] {
				counts[g] += n
			}
		}
	} else {
		sweep(0, len(rows), counts)
	}
	// Size constraints: every GP and the IP must reach bmin. Checking the
	// counts before materialising the row slices keeps failed splits
	// allocation-free.
	for _, c := range counts {
		if c < b.p.MinRows {
			return nil
		}
	}
	gpRows := make([][]int, ng)
	for gi := range gpRows {
		gpRows[gi] = make([]int, 0, counts[gi])
	}
	ipRows := make([]int, 0, counts[ng])
	for i, r := range rows {
		if g := int(assign[i]); g < ng {
			gpRows[g] = append(gpRows[g], r)
		} else {
			ipRows = append(ipRows, r)
		}
	}
	ipDesc := layout.NewIrregular(box, gpBoxes)
	res := &splitResult{pieces: make([]piece, 0, ng+1)}
	for gi, gb := range gpBoxes {
		res.pieces = append(res.pieces, piece{desc: layout.NewRect(gb), box: gb, rows: gpRows[gi]})
	}
	res.pieces = append(res.pieces, piece{desc: ipDesc, rows: ipRows, irregular: true})
	res.computeCost(queries)
	return res
}

// expandToMin grows gp about its center until it holds at least MinRows of
// the parent's rows (Fig. 8): records are ranked by their relative position
// F_GP(x) and the expansion factor is the MinRows-th smallest rank. Returns
// false when even the whole parent cannot supply MinRows rows.
func (b *builder) expandToMin(box geom.Box, rows []int, gp geom.Box, sc *buildScratch) (geom.Box, bool) {
	gp = gp.Clip(box)
	inside := 0
	for _, r := range rows {
		if rowIn(b.cols, r, gp) {
			inside++
		}
	}
	if inside >= b.p.MinRows {
		return gp, true
	}
	if len(rows) < b.p.MinRows {
		b.m.expandFail.Inc()
		return gp, false
	}
	b.m.expansions.Inc()
	// Degenerate dimensions (zero radius) can never grow by scaling; give
	// them a hair of radius relative to the parent's extent so the ranking
	// remains finite.
	c := gp.Center()
	rad := gp.Radius()
	for d := range rad {
		if rad[d] == 0 {
			ext := box.Hi[d] - box.Lo[d]
			if ext == 0 {
				continue // parent degenerate too: distance 0 for all rows
			}
			rad[d] = 1e-9 * ext
		}
	}
	fs := sc.floats(len(rows))
	for i, r := range rows {
		f := 0.0
		for d := range c {
			num := b.cols[d][r] - c[d]
			if num < 0 {
				num = -num
			}
			if rad[d] > 0 {
				if q := num / rad[d]; q > f {
					f = q
				}
			} else if num > 0 {
				f = 1e308
			}
		}
		fs[i] = f
	}
	sort.Float64s(fs)
	factor := fs[b.p.MinRows-1]
	if factor < 1 {
		factor = 1
	}
	if factor >= 1e308 {
		b.m.expandFail.Inc()
		return gp, false
	}
	grown := geom.Box{Lo: make(geom.Point, len(c)), Hi: make(geom.Point, len(c))}
	for d := range c {
		grown.Lo[d] = c[d] - factor*rad[d]
		grown.Hi[d] = c[d] + factor*rad[d]
	}
	return grown.Clip(box), true
}

// axisSplit is Algorithm 2: the best axis-parallel split among the median
// of every dimension and the query-boundary cuts of the Qd-tree.
func (b *builder) axisSplit(box geom.Box, rows []int, queries []geom.Box, slot int) *splitResult {
	sc := b.scratchFor(slot)
	cc, ok := qdtree.BestCut(b.data, box, rows, queries, b.medianCuts(box, rows, sc), b.p.MinRows, sc.qd)
	if !ok {
		return nil
	}
	left, right := qdtree.SplitRowsN(b.data, rows, cc.Cut, cc.LeftRows)
	lbox, rbox := cc.Cut.Apply(box)
	return &splitResult{
		cost: cc.Cost,
		pieces: []piece{
			{desc: layout.NewRect(lbox), box: lbox, rows: left},
			{desc: layout.NewRect(rbox), box: rbox, rows: right},
		},
	}
}

// medianCuts returns one cut per dimension at the median of the rows,
// filling the scratch buffer instead of allocating and skipping degenerate
// dimensions (all values equal) before paying for a sort.
func (b *builder) medianCuts(box geom.Box, rows []int, sc *buildScratch) []qdtree.Cut {
	if len(rows) == 0 {
		return nil
	}
	var out []qdtree.Cut
	vals := sc.floats(len(rows))
	for dim := 0; dim < b.data.Dims(); dim++ {
		col := b.cols[dim]
		mn, mx := col[rows[0]], col[rows[0]]
		for i, r := range rows {
			v := col[r]
			vals[i] = v
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if mn == mx {
			continue
		}
		sort.Float64s(vals)
		m := vals[len(vals)/2]
		c := qdtree.CutAtUpper(dim, m)
		if c.Inside(box) {
			out = append(out, c)
		}
	}
	return out
}

// queryFreeLeaf finalises a partition no extended query intersects. With
// DataAwareRefine on, it is k-d split to the finest size (§IV-E).
func (b *builder) queryFreeLeaf(box geom.Box, rows []int) *layout.Node {
	if b.p.DataAwareRefine && len(rows) >= 2*b.p.MinRows {
		b.m.refineCalls.Inc()
		sp := b.m.tRefine.Start()
		n := kdtree.RefineLeaf(b.data, box, rows, b.p.MinRows, 0)
		sp.End()
		return n
	}
	return leaf(box, rows)
}

// irregularLeaf finalises an irregular piece. With DataAwareRefine on, the
// irregular region is cut data-aware into cells: the outer box is k-d split
// and every cell keeps the irregular semantics (cell minus the holes inside
// it), so partially intersecting unpredictable queries scan one small cell
// instead of the entire remainder.
func (b *builder) irregularLeaf(pc piece, slot int) *layout.Node {
	ir := pc.desc.(layout.Irregular)
	if !b.p.DataAwareRefine || len(pc.rows) < 2*b.p.MinRows {
		return &layout.Node{Desc: pc.desc, Part: &layout.Partition{Desc: pc.desc, SampleRows: pc.rows}}
	}
	b.m.refineCalls.Inc()
	sp := b.m.tRefine.Start()
	n := b.refineIrregular(ir.Outer, ir.Holes, pc.rows, 0, slot)
	sp.End()
	return n
}

func (b *builder) refineIrregular(outer geom.Box, holes []geom.Box, rows []int, depth, slot int) *layout.Node {
	desc := layout.NewIrregular(outer, holes)
	if len(rows) < 2*b.p.MinRows {
		return &layout.Node{Desc: desc, Part: &layout.Partition{Desc: desc, SampleRows: rows}}
	}
	dims := b.data.Dims()
	sc := b.scratchFor(slot)
	vals := sc.floats(len(rows))
	for off := 0; off < dims; off++ {
		dim := (depth + off) % dims
		col := b.cols[dim]
		mn, mx := col[rows[0]], col[rows[0]]
		for i, r := range rows {
			v := col[r]
			vals[i] = v
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if mn == mx {
			continue
		}
		sort.Float64s(vals)
		m := vals[len(vals)/2]
		if m == mx {
			i := sort.SearchFloat64s(vals, m) - 1
			if i < 0 {
				continue
			}
			m = vals[i]
		}
		cut := qdtree.CutAtUpper(dim, m)
		if !cut.Inside(outer) {
			continue
		}
		nLeft := sort.Search(len(vals), func(i int) bool { return vals[i] > m })
		if nLeft < b.p.MinRows || len(rows)-nLeft < b.p.MinRows {
			continue
		}
		left, right := qdtree.SplitRowsN(b.data, rows, cut, nLeft)
		lbox, rbox := cut.Apply(outer)
		node := &layout.Node{Desc: desc, Children: make([]*layout.Node, 2)}
		b.pool.Fan(slot, 2, func(i, s int) {
			if i == 0 {
				node.Children[0] = b.refineIrregular(lbox, clipBoxes(holes, lbox), left, depth+1, s)
			} else {
				node.Children[1] = b.refineIrregular(rbox, clipBoxes(holes, rbox), right, depth+1, s)
			}
		})
		return node
	}
	return &layout.Node{Desc: desc, Part: &layout.Partition{Desc: desc, SampleRows: rows}}
}

// groupIntersecting unions queries into groups of transitively intersecting
// queries (union–find), returning index groups.
func groupIntersecting(queries []geom.Box) [][]int {
	parent := make([]int, len(queries))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := range queries {
		for j := i + 1; j < len(queries); j++ {
			if queries[i].Intersects(queries[j]) {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	byRoot := make(map[int][]int)
	for i := range queries {
		r := find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	// Deterministic order: by smallest member index.
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, byRoot[r][0])
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(byRoot))
	for _, first := range roots {
		out = append(out, byRoot[find(first)])
	}
	return out
}

func clipBoxes(queries []geom.Box, box geom.Box) []geom.Box {
	var out []geom.Box
	for _, q := range queries {
		if inter, ok := q.Intersection(box); ok {
			out = append(out, inter)
		}
	}
	return out
}

func leaf(box geom.Box, rows []int) *layout.Node {
	d := layout.NewRect(box)
	return &layout.Node{Desc: d, Part: &layout.Partition{Desc: d, SampleRows: rows}}
}
