package core

import (
	"testing"

	"paw/internal/dataset"
	"paw/internal/workload"
)

func TestTunePolicyReturnsCandidate(t *testing.T) {
	data := dataset.Uniform(4000, 2, 71)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(30, 72))
	alpha, err := TunePolicy(data, allRows(4000), dom, hist, Params{MinRows: 50, Delta: 0.01}, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range DefaultAlphaCandidates {
		if alpha == c {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("tuned α = %v not among the candidates", alpha)
	}
}

func TestTunePolicyCustomGrid(t *testing.T) {
	data := dataset.Uniform(3000, 2, 73)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(20, 74))
	alpha, err := TunePolicy(data, allRows(3000), dom, hist, Params{MinRows: 50, Delta: 0.01}, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if alpha != 3 && alpha != 5 {
		t.Errorf("tuned α = %v, want 3 or 5", alpha)
	}
}

func TestTunePolicyTooFewQueries(t *testing.T) {
	data := dataset.Uniform(1000, 2, 75)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(3, 76))
	if _, err := TunePolicy(data, allRows(1000), dom, hist, Params{MinRows: 50}, nil); err == nil {
		t.Error("3 queries must be rejected")
	}
}

// TestTunePolicyValidationBeatsWorst: the tuned α's validation cost must be
// at least as good as the worst candidate's (i.e., tuning actually compared
// something — a smoke test that the holdout machinery is wired correctly).
func TestTunePolicyValidationBeatsWorst(t *testing.T) {
	data := dataset.Uniform(5000, 2, 77)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(40, 78))
	p := Params{MinRows: 40, Delta: 0.01}
	tuned, err := TunePolicy(data, allRows(5000), dom, hist, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	train, valid := hist.SplitHalves()
	validQ := clipBoxes(valid.Extend(p.Delta).Boxes(), dom)
	cost := func(alpha float64) int64 {
		params := p.withDefaults()
		params.Alpha = alpha
		b := newBuilder(data, params)
		return treeCost(b.construct(dom, allRows(5000), clipBoxes(train.Extend(p.Delta).Boxes(), dom), 0, b.pool.RootSlot()), validQ)
	}
	tunedCost := cost(tuned)
	for _, c := range DefaultAlphaCandidates {
		if cost(c) < tunedCost {
			t.Errorf("candidate α=%v beats tuned α=%v on validation", c, tuned)
		}
	}
}
