package core

import (
	"testing"

	"paw/internal/dataset"
	"paw/internal/workload"
)

func TestBuildBeamBasic(t *testing.T) {
	data := dataset.Uniform(4000, 2, 31)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(15, 32))
	l := BuildBeam(data, allRows(4000), dom, hist, BeamParams{
		Params: Params{MinRows: 50, Delta: 0.01},
		Width:  3, Branch: 2,
	})
	if l.Method != "paw-beam" {
		t.Errorf("method = %q", l.Method)
	}
	l.Route(data)
	if err := l.Validate(data, 50); err != nil {
		t.Fatal(err)
	}
	if l.NumPartitions() < 2 {
		t.Errorf("beam build produced %d partitions", l.NumPartitions())
	}
}

// TestBeamNeverWorseThanGreedy: with the same construction cost model, a
// beam of width W >= 1 explores a superset of the greedy trajectory (the
// greedy choice is always among the branch alternatives), so the final
// worst-case workload cost must not exceed greedy's.
func TestBeamNeverWorseThanGreedy(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		data := dataset.Uniform(5000, 2, 40+seed)
		dom := data.Domain()
		hist := workload.Uniform(dom, workload.Defaults(20, 50+seed))
		const delta = 0.01
		p := Params{MinRows: 60, Delta: delta}

		greedy := Build(data, allRows(5000), dom, hist, p)
		greedy.Route(data)
		beam := BuildBeam(data, allRows(5000), dom, hist, BeamParams{Params: p, Width: 4, Branch: 3})
		beam.Route(data)

		ext := hist.Extend(delta)
		g := greedy.WorkloadCost(ext.Boxes(), nil)
		b := beam.WorkloadCost(ext.Boxes(), nil)
		// The construction cost model counts sample rows while this check
		// uses routed bytes, so allow a tiny slack for rounding effects.
		if float64(b) > float64(g)*1.05 {
			t.Errorf("seed %d: beam cost %d worse than greedy %d", seed, b, g)
		}
		t.Logf("seed %d: greedy=%d beam=%d (%.2fx)", seed, g, b, float64(g)/float64(b))
	}
}

func TestBeamDegenerateWidthOne(t *testing.T) {
	data := dataset.Uniform(3000, 2, 60)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(10, 61))
	l := BuildBeam(data, allRows(3000), dom, hist, BeamParams{
		Params: Params{MinRows: 50, Delta: 0.01},
		// Zero values are normalised to 1.
	})
	l.Route(data)
	if err := l.Validate(data, 50); err != nil {
		t.Fatal(err)
	}
}

func TestBeamTinyInput(t *testing.T) {
	data := dataset.Uniform(60, 2, 62)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(5, 63))
	l := BuildBeam(data, allRows(60), dom, hist, BeamParams{
		Params: Params{MinRows: 50, Delta: 0.01}, Width: 2, Branch: 2,
	})
	if l.NumPartitions() != 1 {
		t.Errorf("tiny input must stay whole, got %d partitions", l.NumPartitions())
	}
}

// TestBeamStatesIndependent guards the copy-on-write tree sharing: building
// twice with different widths from the same inputs must not interfere.
func TestBeamStatesIndependent(t *testing.T) {
	data := dataset.Uniform(4000, 2, 64)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(15, 65))
	p := Params{MinRows: 50, Delta: 0.01}
	l1 := BuildBeam(data, allRows(4000), dom, hist, BeamParams{Params: p, Width: 4, Branch: 3})
	l2 := BuildBeam(data, allRows(4000), dom, hist, BeamParams{Params: p, Width: 4, Branch: 3})
	if l1.NumPartitions() != l2.NumPartitions() {
		t.Fatal("beam build not deterministic")
	}
	for i := range l1.Parts {
		if !l1.Parts[i].Desc.MBR().Equal(l2.Parts[i].Desc.MBR()) {
			t.Fatal("beam build not deterministic")
		}
	}
}
