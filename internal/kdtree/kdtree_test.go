package kdtree

import (
	"testing"

	"paw/internal/dataset"
)

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func TestBuildBasic(t *testing.T) {
	data := dataset.Uniform(1000, 2, 1)
	l := Build(data, allRows(1000), data.Domain(), Params{MinRows: 50})
	if l.Method != "kd-tree" {
		t.Errorf("method = %q", l.Method)
	}
	// Every leaf must satisfy [bmin, 2bmin) on the sample rows.
	for _, p := range l.Parts {
		n := len(p.SampleRows)
		if n < 50 || n >= 100 {
			t.Errorf("partition %d has %d sample rows, want [50, 100)", p.ID, n)
		}
	}
	// 1000 rows in [50,100) chunks → between 11 and 20 partitions.
	if got := l.NumPartitions(); got < 11 || got > 20 {
		t.Errorf("partitions = %d", got)
	}
	l.Route(data)
	if err := l.Validate(data, 50); err != nil {
		t.Error(err)
	}
}

func TestBuildTiny(t *testing.T) {
	data := dataset.Uniform(10, 2, 2)
	l := Build(data, allRows(10), data.Domain(), Params{MinRows: 20})
	if l.NumPartitions() != 1 {
		t.Errorf("tiny dataset must stay one partition, got %d", l.NumPartitions())
	}
	// MinRows < 1 is normalised.
	l = Build(data, allRows(10), data.Domain(), Params{MinRows: 0})
	l.Route(data)
	if l.Unrouted != 0 {
		t.Errorf("unrouted = %d", l.Unrouted)
	}
}

func TestBuildDuplicateValues(t *testing.T) {
	// All records identical on dim 0, varying on dim 1: the builder must
	// skip the degenerate dimension and still split on dim 1.
	n := 200
	c0 := make([]float64, n)
	c1 := make([]float64, n)
	for i := range c1 {
		c0[i] = 5
		c1[i] = float64(i)
	}
	data := dataset.MustNew([]string{"x", "y"}, [][]float64{c0, c1})
	l := Build(data, allRows(n), data.Domain(), Params{MinRows: 25})
	if l.NumPartitions() < 4 {
		t.Errorf("expected splits on the non-degenerate dimension, got %d partitions", l.NumPartitions())
	}
	l.Route(data)
	if err := l.Validate(data, 25); err != nil {
		t.Error(err)
	}
}

func TestBuildAllIdentical(t *testing.T) {
	// Fully degenerate data cannot be split at all.
	n := 100
	c := make([]float64, n)
	for i := range c {
		c[i] = 7
	}
	data := dataset.MustNew([]string{"x"}, [][]float64{c})
	l := Build(data, allRows(n), data.Domain(), Params{MinRows: 10})
	if l.NumPartitions() != 1 {
		t.Errorf("identical data must stay one partition, got %d", l.NumPartitions())
	}
}

func TestChildrenDoNotOverlap(t *testing.T) {
	data := dataset.Uniform(500, 3, 3)
	l := Build(data, allRows(500), data.Domain(), Params{MinRows: 30})
	parts := l.Parts
	for i := range parts {
		for j := i + 1; j < len(parts); j++ {
			bi := parts[i].Desc.MBR()
			bj := parts[j].Desc.MBR()
			if inter, ok := bi.Intersection(bj); ok && inter.Volume() > 0 {
				t.Fatalf("partitions %d and %d overlap: %v ∩ %v", i, j, bi, bj)
			}
		}
	}
}

func TestRouteMatchesSampleAssignment(t *testing.T) {
	// Building on all rows and routing the same dataset must agree with the
	// sample assignment per partition.
	data := dataset.Uniform(400, 2, 9)
	l := Build(data, allRows(400), data.Domain(), Params{MinRows: 40})
	l.Route(data)
	for _, p := range l.Parts {
		if int64(len(p.SampleRows)) != p.FullRows {
			t.Errorf("partition %d: sample %d vs routed %d", p.ID, len(p.SampleRows), p.FullRows)
		}
	}
}

func TestRefineLeaf(t *testing.T) {
	data := dataset.Uniform(300, 2, 5)
	box := data.Domain()
	node := RefineLeaf(data, box, allRows(300), 30, 0)
	leaves := node.Leaves()
	if len(leaves) < 4 {
		t.Errorf("RefineLeaf produced %d leaves", len(leaves))
	}
	for _, lf := range leaves {
		n := len(lf.Part.SampleRows)
		if n < 30 || n >= 60 {
			t.Errorf("leaf has %d rows, want [30,60)", n)
		}
		if !box.ContainsBox(lf.Desc.MBR()) {
			t.Error("leaf escapes the parent box")
		}
	}
}

func TestWorkloadIndependence(t *testing.T) {
	// The k-d tree must produce identical layouts regardless of workload —
	// it is data-aware only. (Trivially true by API; this pins the shape.)
	data := dataset.Uniform(600, 2, 8)
	l1 := Build(data, allRows(600), data.Domain(), Params{MinRows: 50})
	l2 := Build(data, allRows(600), data.Domain(), Params{MinRows: 50})
	if l1.NumPartitions() != l2.NumPartitions() {
		t.Fatal("k-d tree build not deterministic")
	}
	for i := range l1.Parts {
		if !l1.Parts[i].Desc.MBR().Equal(l2.Parts[i].Desc.MBR()) {
			t.Fatal("k-d tree build not deterministic")
		}
	}
}

func TestSubsetRows(t *testing.T) {
	// Building on a strict sample, then routing the full dataset.
	data := dataset.Uniform(2000, 2, 4)
	sample := data.Sample(500, 77)
	l := Build(data, sample, data.Domain(), Params{MinRows: 50})
	l.Route(data)
	if l.Unrouted != 0 {
		t.Fatalf("unrouted = %d", l.Unrouted)
	}
	var sum int64
	for _, p := range l.Parts {
		sum += p.FullRows
	}
	if sum != 2000 {
		t.Errorf("routed %d rows", sum)
	}
}
