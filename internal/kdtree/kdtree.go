// Package kdtree implements the data-aware baseline of the paper's
// evaluation: a standard k-d tree partitioner that chooses split dimensions
// round-robin and splits at the median, recursing until partitions reach the
// finest admissible size [bmin, 2·bmin) (§VI-A). It ignores the query
// workload entirely, which makes it robust to workload drift but inefficient
// when workloads are focused (Fig. 1c column of Table I).
//
// Construction fans sibling subtrees out over a parbuild.Pool; the parallel
// build is deterministic (identical to the serial build) because each
// subtree's median cuts depend only on that subtree's rows.
package kdtree

import (
	"math"
	"sort"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/obs"
	"paw/internal/parbuild"
)

// Params configures the build.
type Params struct {
	// MinRows is bmin expressed in sample rows: no partition may hold fewer.
	MinRows int
	// Parallelism bounds the construction worker pool: 0 selects
	// runtime.GOMAXPROCS(0), 1 forces a serial build. The parallel build
	// produces a layout identical to the serial one.
	Parallelism int
	// Obs receives construction telemetry (layout.Metric* names): phase
	// timers, node/depth counters and parbuild pool activity. nil disables
	// instrumentation; the layout is byte-identical either way.
	Obs *obs.Registry
}

// Build constructs a k-d tree layout over the given sample rows of data.
// domain must cover all sample rows (typically the dataset's MBR). The
// returned layout is sealed but not routed.
func Build(data *dataset.Dataset, rows []int, domain geom.Box, p Params) *layout.Layout {
	if p.MinRows < 1 {
		p.MinRows = 1
	}
	pool := parbuild.New(p.Parallelism)
	pool.Instrument(p.Obs)
	b := newBuilder(data, p.MinRows, pool)
	b.m = newBuildMetrics(p.Obs)
	sp := b.m.tConstruct.Start()
	root := b.split(domain, rows, 0, b.pool.RootSlot())
	sp.End()
	sp = b.m.tSeal.Start()
	l := layout.Seal("kd-tree", root, data.RowBytes())
	sp.End()
	return l
}

type builder struct {
	data    *dataset.Dataset
	minRows int
	pool    *parbuild.Pool
	// scratch holds one reusable median-sort buffer per worker slot; a slot
	// is held by at most one goroutine at a time.
	scratch [][]float64
	m       buildMetrics
}

// buildMetrics is the optional construction telemetry; zero value = disabled
// (all methods no-op on nil instruments).
type buildMetrics struct {
	tConstruct, tSeal *obs.Timer
	nodes, terminal   *obs.Counter
	maxDepth          *obs.Gauge
}

func newBuildMetrics(reg *obs.Registry) buildMetrics {
	if reg == nil {
		return buildMetrics{}
	}
	return buildMetrics{
		tConstruct: reg.Timer(layout.MetricConstructNs),
		tSeal:      reg.Timer(layout.MetricSealNs),
		nodes:      reg.Counter(layout.MetricNodes),
		terminal:   reg.Counter(layout.MetricPolicyTerminal),
		maxDepth:   reg.Gauge(layout.MetricMaxDepth),
	}
}

func newBuilder(data *dataset.Dataset, minRows int, pool *parbuild.Pool) *builder {
	return &builder{
		data:    data,
		minRows: minRows,
		pool:    pool,
		scratch: make([][]float64, pool.Slots()),
	}
}

func (b *builder) valsFor(slot, n int) []float64 {
	if cap(b.scratch[slot]) < n {
		b.scratch[slot] = make([]float64, n)
	}
	b.scratch[slot] = b.scratch[slot][:n]
	return b.scratch[slot]
}

// split recursively divides box/rows, cycling the split dimension by depth.
func (b *builder) split(box geom.Box, rows []int, depth, slot int) *layout.Node {
	b.m.nodes.Inc()
	b.m.maxDepth.SetMax(int64(depth))
	if len(rows) < 2*b.minRows {
		b.m.terminal.Inc()
		return leaf(box, rows)
	}
	dims := b.data.Dims()
	// Round-robin: try the scheduled dimension first, then the rest, in
	// case the scheduled one is degenerate (all values equal).
	for off := 0; off < dims; off++ {
		dim := (depth + off) % dims
		cut, nLeft, ok := b.medianCut(rows, dim, slot)
		if !ok {
			continue
		}
		if nLeft < b.minRows || len(rows)-nLeft < b.minRows {
			continue
		}
		left, right := partitionRows(b.data, rows, dim, cut, nLeft)
		lbox := box.Clone()
		lbox.Hi[dim] = cut
		rbox := box.Clone()
		// Children must not overlap even on the boundary plane: the cut
		// value itself belongs to the left child ("v <= cut goes left").
		rbox.Lo[dim] = math.Nextafter(cut, math.Inf(1))
		node := &layout.Node{
			Desc:     layout.NewRect(box),
			Children: make([]*layout.Node, 2),
		}
		b.pool.Fan(slot, 2, func(i, s int) {
			if i == 0 {
				node.Children[0] = b.split(lbox, left, depth+1, s)
			} else {
				node.Children[1] = b.split(rbox, right, depth+1, s)
			}
		})
		return node
	}
	return leaf(box, rows)
}

// medianCut returns the median value of rows on dim and the number of rows
// with value <= the cut. It fails when all values are equal (degenerate
// dimensions are detected during the fill, before any sorting happens).
func (b *builder) medianCut(rows []int, dim, slot int) (float64, int, bool) {
	vals := b.valsFor(slot, len(rows))
	col := b.data.Column(dim)
	mn, mx := col[rows[0]], col[rows[0]]
	for i, r := range rows {
		v := col[r]
		vals[i] = v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if mn == mx {
		return 0, 0, false
	}
	sort.Float64s(vals)
	m := vals[len(vals)/2]
	// A median equal to the maximum would put everything on one side under
	// the "v <= cut goes left" rule; shift to the largest value strictly
	// below the top to guarantee a non-trivial split.
	if m == mx {
		i := sort.SearchFloat64s(vals, m) - 1
		if i < 0 {
			return 0, 0, false
		}
		m = vals[i]
	}
	nLeft := sort.Search(len(vals), func(i int) bool { return vals[i] > m })
	return m, nLeft, true
}

// partitionRows splits row indices by the closed rule "value <= cut goes
// left", mirroring the router's first-match-wins tie-breaking. nLeft is the
// known left-side count, pre-sizing both outputs exactly.
func partitionRows(data *dataset.Dataset, rows []int, dim int, cut float64, nLeft int) (left, right []int) {
	if nLeft < 0 || nLeft > len(rows) {
		nLeft = 0
	}
	col := data.Column(dim)
	left = make([]int, 0, nLeft)
	right = make([]int, 0, len(rows)-nLeft)
	for _, r := range rows {
		if col[r] <= cut {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	return left, right
}

func leaf(box geom.Box, rows []int) *layout.Node {
	d := layout.NewRect(box)
	return &layout.Node{Desc: d, Part: &layout.Partition{Desc: d, SampleRows: rows}}
}

// RefineLeaf splits one box/row-set k-d style until pieces fall below
// 2·minRows, returning the subtree. PAW's data-aware optimisation (§IV-E)
// uses it to keep splitting query-free leaves to the finest size. The
// refinement runs serially: PAW's builder already parallelises across the
// leaves that call it.
func RefineLeaf(data *dataset.Dataset, box geom.Box, rows []int, minRows int, depth int) *layout.Node {
	b := newBuilder(data, minRows, nil)
	return b.split(box, rows, depth, b.pool.RootSlot())
}
