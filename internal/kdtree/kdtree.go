// Package kdtree implements the data-aware baseline of the paper's
// evaluation: a standard k-d tree partitioner that chooses split dimensions
// round-robin and splits at the median, recursing until partitions reach the
// finest admissible size [bmin, 2·bmin) (§VI-A). It ignores the query
// workload entirely, which makes it robust to workload drift but inefficient
// when workloads are focused (Fig. 1c column of Table I).
package kdtree

import (
	"math"
	"sort"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/layout"
)

// Params configures the build.
type Params struct {
	// MinRows is bmin expressed in sample rows: no partition may hold fewer.
	MinRows int
}

// Build constructs a k-d tree layout over the given sample rows of data.
// domain must cover all sample rows (typically the dataset's MBR). The
// returned layout is sealed but not routed.
func Build(data *dataset.Dataset, rows []int, domain geom.Box, p Params) *layout.Layout {
	if p.MinRows < 1 {
		p.MinRows = 1
	}
	b := &builder{data: data, minRows: p.MinRows}
	root := b.split(domain, rows, 0)
	return layout.Seal("kd-tree", root, data.RowBytes())
}

type builder struct {
	data    *dataset.Dataset
	minRows int
}

// split recursively divides box/rows, cycling the split dimension by depth.
func (b *builder) split(box geom.Box, rows []int, depth int) *layout.Node {
	if len(rows) < 2*b.minRows {
		return leaf(box, rows)
	}
	dims := b.data.Dims()
	// Round-robin: try the scheduled dimension first, then the rest, in
	// case the scheduled one is degenerate (all values equal).
	for off := 0; off < dims; off++ {
		dim := (depth + off) % dims
		cut, ok := b.medianCut(rows, dim)
		if !ok {
			continue
		}
		left, right := partitionRows(b.data, rows, dim, cut)
		if len(left) < b.minRows || len(right) < b.minRows {
			continue
		}
		lbox := box.Clone()
		lbox.Hi[dim] = cut
		rbox := box.Clone()
		// Children must not overlap even on the boundary plane: the cut
		// value itself belongs to the left child ("v <= cut goes left").
		rbox.Lo[dim] = math.Nextafter(cut, math.Inf(1))
		return &layout.Node{
			Desc: layout.NewRect(box),
			Children: []*layout.Node{
				b.split(lbox, left, depth+1),
				b.split(rbox, right, depth+1),
			},
		}
	}
	return leaf(box, rows)
}

// medianCut returns the median value of rows on dim. It fails when all
// values are equal (no cut can separate anything).
func (b *builder) medianCut(rows []int, dim int) (float64, bool) {
	vals := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = b.data.At(r, dim)
	}
	sort.Float64s(vals)
	if vals[0] == vals[len(vals)-1] {
		return 0, false
	}
	m := vals[len(vals)/2]
	// A median equal to the minimum would put everything on one side under
	// the "v <= cut goes left" rule only if all values <= m... shift to the
	// largest value strictly below the top to guarantee a non-trivial split.
	if m == vals[len(vals)-1] {
		// Find the largest value below the maximum.
		i := sort.SearchFloat64s(vals, m) - 1
		if i < 0 {
			return 0, false
		}
		m = vals[i]
	}
	return m, true
}

// partitionRows splits row indices by the closed rule "value <= cut goes
// left", mirroring the router's first-match-wins tie-breaking.
func partitionRows(data *dataset.Dataset, rows []int, dim int, cut float64) (left, right []int) {
	for _, r := range rows {
		if data.At(r, dim) <= cut {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	return left, right
}

func leaf(box geom.Box, rows []int) *layout.Node {
	d := layout.NewRect(box)
	return &layout.Node{Desc: d, Part: &layout.Partition{Desc: d, SampleRows: rows}}
}

// RefineLeaf splits one box/row-set k-d style until pieces fall below
// 2·minRows, returning the subtree. PAW's data-aware optimisation (§IV-E)
// uses it to keep splitting query-free leaves to the finest size.
func RefineLeaf(data *dataset.Dataset, box geom.Box, rows []int, minRows int, depth int) *layout.Node {
	b := &builder{data: data, minRows: minRows}
	return b.split(box, rows, depth)
}
