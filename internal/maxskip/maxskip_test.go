package maxskip

import (
	"testing"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/qdtree"
	"paw/internal/workload"
)

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func box2(l0, l1, h0, h1 float64) geom.Box {
	return geom.Box{Lo: geom.Point{l0, l1}, Hi: geom.Point{h0, h1}}
}

func TestBuildBasics(t *testing.T) {
	data := dataset.Uniform(3000, 2, 1)
	w := workload.Uniform(data.Domain(), workload.Defaults(20, 2))
	l := Build(data, allRows(3000), w.Boxes(), Params{MinRows: 100})
	if l.Method != "maxskip" {
		t.Errorf("method = %q", l.Method)
	}
	var sum int64
	for _, p := range l.Parts {
		if p.FullRows < 100 {
			t.Errorf("partition %d has %d rows, below bmin", p.ID, p.FullRows)
		}
		sum += p.FullRows
	}
	if sum != 3000 {
		t.Errorf("routed %d of 3000 rows", sum)
	}
	if l.TotalBytes != data.TotalBytes() {
		t.Errorf("TotalBytes = %d", l.TotalBytes)
	}
}

func TestSkipsOnHistoricalWorkload(t *testing.T) {
	data := dataset.Uniform(5000, 2, 3)
	w := workload.Uniform(data.Domain(), workload.Defaults(15, 4))
	l := Build(data, allRows(5000), w.Boxes(), Params{MinRows: 100})
	ratio := l.ScanRatio(w.Boxes(), nil)
	if ratio > 0.6 {
		t.Errorf("scan ratio %v — feature clustering skipped almost nothing", ratio)
	}
}

// TestMaxSkipOverfitsWorseThanQdTree: on the *training* workload the
// feature-vector index is near-optimal (it is essentially result-set
// partitioning), but its skipping power vanishes on drifted future queries —
// the index carries no geometric information beyond partition MBRs, which
// overlap heavily. This is the overfitting spectrum the paper's Table I
// sketches, one step beyond the Qd-tree.
func TestMaxSkipOverfitsWorseThanQdTree(t *testing.T) {
	data := dataset.Uniform(6000, 2, 5)
	dom := data.Domain()
	w := workload.Uniform(dom, workload.Defaults(25, 6))
	fut := workload.Future(w, 0.01, 1, 7)
	ms := Build(data, allRows(6000), w.Boxes(), Params{MinRows: 60})
	qd := qdtree.Build(data, allRows(6000), dom, w.Boxes(), qdtree.Params{MinRows: 60})
	qd.Route(data)

	msFut := ms.ScanRatio(fut.Boxes(), nil)
	qdFut := qd.ScanRatio(fut.Boxes(), nil)
	if msFut <= qdFut {
		t.Errorf("MaxSkip (%v) not above Qd-tree (%v) on the future workload", msFut, qdFut)
	}
	msHist := ms.ScanRatio(w.Boxes(), nil)
	if msFut < 2*msHist {
		t.Errorf("MaxSkip future ratio %v not clearly above its training ratio %v", msFut, msHist)
	}
	t.Logf("scan ratios: MaxSkip hist=%.4f fut=%.4f; Qd-tree fut=%.4f", msHist, msFut, qdFut)
}

func TestSingleQuery(t *testing.T) {
	// One query: two cells (inside/outside); merging must respect bmin.
	data := dataset.Uniform(1000, 2, 7)
	q := box2(0.4, 0.4, 0.6, 0.6)
	l := Build(data, allRows(1000), []geom.Box{q}, Params{MinRows: 10})
	if l.NumPartitions() != 2 {
		t.Fatalf("partitions = %d, want 2", l.NumPartitions())
	}
	// The query must scan only the matching partition.
	cost := l.QueryCost(q, nil)
	if cost >= data.TotalBytes() {
		t.Errorf("query scans everything (%d bytes)", cost)
	}
}

func TestNoQueries(t *testing.T) {
	data := dataset.Uniform(500, 2, 8)
	l := Build(data, allRows(500), nil, Params{MinRows: 50})
	if l.NumPartitions() != 1 {
		t.Errorf("no queries must yield one partition, got %d", l.NumPartitions())
	}
	if l.Parts[0].FullRows != 500 {
		t.Errorf("rows = %d", l.Parts[0].FullRows)
	}
}

func TestDescriptorsCoverRecords(t *testing.T) {
	data := dataset.Uniform(2000, 2, 9)
	w := workload.Uniform(data.Domain(), workload.Defaults(10, 10))
	l := Build(data, allRows(2000), w.Boxes(), Params{MinRows: 50})
	// Cost model safety: summed costs over any query must be at least the
	// lower bound (descriptors are record MBRs, so no result row escapes).
	fut := workload.Uniform(data.Domain(), workload.Defaults(30, 11))
	for _, q := range fut.Boxes() {
		if got, lb := l.QueryCost(q, nil), layout.LowerBoundBytes(data, q); got < lb {
			t.Fatalf("query %v cost %d below lower bound %d", q, got, lb)
		}
	}
}

func TestMergePenalty(t *testing.T) {
	a := cell{vec: []uint64{0b0011}, count: 10} // queries 0,1
	b := cell{vec: []uint64{0b0110}, count: 20} // queries 1,2
	// union: 0b0111 (3 queries), cost 30*3=90; individual: 10*2 + 20*2 = 60.
	if p := mergePenalty(a, b); p != 30 {
		t.Errorf("penalty = %d, want 30", p)
	}
	// Identical vectors merge free.
	c := cell{vec: []uint64{0b0011}, count: 5}
	if p := mergePenalty(a, c); p != 0 {
		t.Errorf("identical-vector penalty = %d, want 0", p)
	}
}

func TestSampleBuildRoutesFull(t *testing.T) {
	data := dataset.Uniform(8000, 2, 12)
	w := workload.Uniform(data.Domain(), workload.Defaults(15, 13))
	sample := data.Sample(800, 14)
	l := Build(data, sample, w.Boxes(), Params{MinRows: 20})
	var sum int64
	for _, p := range l.Parts {
		sum += p.FullRows
	}
	if sum != 8000 {
		t.Errorf("routed %d of 8000", sum)
	}
}
