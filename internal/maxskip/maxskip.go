// Package maxskip implements the bottom-up feature-vector clustering
// partitioner of Sun et al. (SIGMOD 2014) — the paper's reference [28] and
// the predecessor the Qd-tree was shown to beat by up to 61× (§II-A). It
// serves as an additional baseline in this reproduction.
//
// Every record is described by its binary query-incidence vector (bit j set
// iff the record matches workload query j). Records with identical vectors
// form initial cells; cells are merged bottom-up, smallest first, each time
// choosing the partner that minimises the false-scan penalty of the union
// vector, until every partition reaches the minimum size bmin.
//
// The resulting partitions are not spatially contiguous, so records are
// routed by feature vector (unknown vectors go to the nearest cell by
// Hamming distance) and the stored descriptor is the MBR of the routed
// records — the min-max pruning a real deployment would use for queries
// outside the training workload.
package maxskip

import (
	"math"
	"math/bits"
	"sort"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/layout"
)

// Params configures the build.
type Params struct {
	// MinRows is bmin in rows of the clustering input.
	MinRows int
}

// Build clusters the given rows against the workload, routes the full
// dataset by feature vector, and returns a sealed, fully routed flat layout
// whose descriptors are the per-partition record MBRs.
func Build(data *dataset.Dataset, rows []int, queries []geom.Box, p Params) *layout.Layout {
	if p.MinRows < 1 {
		p.MinRows = 1
	}
	words := (len(queries) + 63) / 64
	cells := buildCells(data, rows, queries, words)
	cells = mergeToMin(cells, words, p.MinRows, len(queries))

	// Route every record of the full dataset: exact vector match first,
	// nearest cell by Hamming distance otherwise.
	index := make(map[string]int, len(cells))
	for i, c := range cells {
		index[string(vecBytes(c.vec))] = i
	}
	members := make([][]int, len(cells))
	vec := make([]uint64, words)
	for r := 0; r < data.NumRows(); r++ {
		rowVector(data, r, queries, vec)
		ci, ok := index[string(vecBytes(vec))]
		if !ok {
			ci = nearestCell(cells, vec)
		}
		members[ci] = append(members[ci], r)
	}

	// The union feature vector of the records actually routed to each cell
	// (the clustering sample may under-approximate the cell's true vector).
	unions := make([][]uint64, len(cells))
	for ci := range cells {
		unions[ci] = make([]uint64, words)
	}
	for ci, ms := range members {
		for _, r := range ms {
			rowVector(data, r, queries, vec)
			for w := 0; w < words; w++ {
				unions[ci][w] |= vec[w]
			}
		}
	}

	// Materialise the flat layout. Empty cells (possible when the full
	// dataset routes differently than the clustering rows) are dropped.
	domain := data.Domain()
	training := make([]geom.Box, len(queries))
	for i, q := range queries {
		training[i] = q.Clone()
	}
	root := &layout.Node{Desc: layout.NewRect(domain)}
	for ci := range cells {
		if len(members[ci]) == 0 {
			continue
		}
		d := FeatureDescriptor{
			mbr:      rowsMBR(data, members[ci]),
			training: training,
			bits:     unions[ci],
		}
		part := &layout.Partition{Desc: d, FullRows: int64(len(members[ci]))}
		root.Children = append(root.Children, &layout.Node{Desc: d, Part: part})
	}
	l := layout.Seal("maxskip", root, data.RowBytes())
	l.TotalBytes = data.TotalBytes()
	return l
}

// FeatureDescriptor is the skipping index of Sun et al.: a query from the
// training workload skips the partition when the partition's union feature
// vector lacks the query's bit; any other query falls back to min-max (MBR)
// pruning. This is exactly why the approach overfits — the index says
// nothing useful about queries outside the training workload.
type FeatureDescriptor struct {
	mbr      geom.Box
	training []geom.Box
	bits     []uint64
}

// Intersects implements layout.Descriptor.
func (d FeatureDescriptor) Intersects(q geom.Box) bool {
	for j, tq := range d.training {
		if q.Equal(tq) {
			return d.bits[j/64]&(1<<uint(j%64)) != 0
		}
	}
	return d.mbr.Intersects(q)
}

// Contains implements layout.Descriptor. Feature-based partitions overlap
// spatially, so geometric containment is approximate (records are routed by
// vector, not by the tree); the MBR answer is only used by generic tooling.
func (d FeatureDescriptor) Contains(p geom.Point) bool { return d.mbr.Contains(p) }

// MBR implements layout.Descriptor.
func (d FeatureDescriptor) MBR() geom.Box { return d.mbr }

// Kind implements layout.Descriptor.
func (d FeatureDescriptor) Kind() layout.Kind { return layout.KindRect }

type cell struct {
	vec   []uint64
	count int
}

// buildCells groups rows by identical feature vectors.
func buildCells(data *dataset.Dataset, rows []int, queries []geom.Box, words int) []cell {
	byVec := make(map[string]*cell)
	vec := make([]uint64, words)
	for _, r := range rows {
		rowVector(data, r, queries, vec)
		key := string(vecBytes(vec))
		if c, ok := byVec[key]; ok {
			c.count++
			continue
		}
		cp := make([]uint64, words)
		copy(cp, vec)
		byVec[key] = &cell{vec: cp, count: 1}
	}
	out := make([]cell, 0, len(byVec))
	for _, c := range byVec {
		out = append(out, *c)
	}
	// Deterministic order: by vector bytes.
	sort.Slice(out, func(i, j int) bool {
		return string(vecBytes(out[i].vec)) < string(vecBytes(out[j].vec))
	})
	return out
}

// mergeToMin repeatedly merges the smallest undersized cell with the partner
// of minimal penalty until all cells hold at least minRows rows (or one cell
// remains). Penalty of merging A and B: the extra rows scanned because the
// union vector forces B's rows on A's queries and vice versa.
func mergeToMin(cells []cell, words, minRows, nq int) []cell {
	for len(cells) > 1 {
		// Find the smallest cell below the minimum.
		smallest := -1
		for i, c := range cells {
			if c.count < minRows && (smallest < 0 || c.count < cells[smallest].count) {
				smallest = i
			}
		}
		if smallest < 0 {
			break
		}
		best := -1
		var bestPenalty int64
		for j := range cells {
			if j == smallest {
				continue
			}
			p := mergePenalty(cells[smallest], cells[j])
			if best < 0 || p < bestPenalty {
				best, bestPenalty = j, p
			}
		}
		a, b := cells[smallest], cells[best]
		merged := cell{vec: make([]uint64, words), count: a.count + b.count}
		for w := 0; w < words; w++ {
			merged.vec[w] = a.vec[w] | b.vec[w]
		}
		// Remove the higher index first.
		i, j := smallest, best
		if i < j {
			i, j = j, i
		}
		cells = append(cells[:i], cells[i+1:]...)
		cells = append(cells[:j], cells[j+1:]...)
		cells = append(cells, merged)
	}
	return cells
}

// mergePenalty is the false-scan cost increase of unioning two cells:
// cost(A∪B) − cost(A) − cost(B), with cost(C) = rows(C) · queries(C).
func mergePenalty(a, b cell) int64 {
	qa, qb, qu := 0, 0, 0
	for w := range a.vec {
		qa += bits.OnesCount64(a.vec[w])
		qb += bits.OnesCount64(b.vec[w])
		qu += bits.OnesCount64(a.vec[w] | b.vec[w])
	}
	union := int64(a.count+b.count) * int64(qu)
	return union - int64(a.count)*int64(qa) - int64(b.count)*int64(qb)
}

// nearestCell routes a vector unseen during clustering. Cells whose vector
// is a superset of the row's are preferred (placing the row there keeps the
// skipping index exact), choosing the one with the fewest extra bits; if no
// superset exists, the Hamming-nearest cell wins.
func nearestCell(cells []cell, vec []uint64) int {
	bestSuper, bestExtra := -1, math.MaxInt
	bestAny, bestD := 0, math.MaxInt
	for i, c := range cells {
		superset := true
		extra, d := 0, 0
		for w := range vec {
			if vec[w]&^c.vec[w] != 0 {
				superset = false
			}
			extra += bits.OnesCount64(c.vec[w] &^ vec[w])
			d += bits.OnesCount64(c.vec[w] ^ vec[w])
		}
		if superset && extra < bestExtra {
			bestSuper, bestExtra = i, extra
		}
		if d < bestD {
			bestAny, bestD = i, d
		}
	}
	if bestSuper >= 0 {
		return bestSuper
	}
	return bestAny
}

// RowVector fills vec with the query-incidence bits of row r — bit j is set
// iff the row matches queries[j]. vec must hold (len(queries)+63)/64 words.
// Exported so other layers (colstore's row-group zone maps) can build the
// same feature-vector skipping index from source rows.
func RowVector(data *dataset.Dataset, r int, queries []geom.Box, vec []uint64) {
	rowVector(data, r, queries, vec)
}

// rowVector fills vec with the query-incidence bits of row r.
func rowVector(data *dataset.Dataset, r int, queries []geom.Box, vec []uint64) {
	for w := range vec {
		vec[w] = 0
	}
	for j, q := range queries {
		if data.RowInBox(r, q) {
			vec[j/64] |= 1 << uint(j%64)
		}
	}
}

func vecBytes(vec []uint64) []byte {
	out := make([]byte, len(vec)*8)
	for i, w := range vec {
		for b := 0; b < 8; b++ {
			out[i*8+b] = byte(w >> uint(8*b))
		}
	}
	return out
}

func rowsMBR(data *dataset.Dataset, rows []int) geom.Box {
	dims := data.Dims()
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for d := 0; d < dims; d++ {
		lo[d] = math.Inf(1)
		hi[d] = math.Inf(-1)
	}
	for _, r := range rows {
		for d := 0; d < dims; d++ {
			v := data.At(r, d)
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	return geom.Box{Lo: lo, Hi: hi}
}
