package drift

import (
	"context"
	"sync"
	"testing"

	"paw/internal/core"
	"paw/internal/ingest"
	"paw/internal/layout"
	"paw/internal/workload"
)

func testConfig() Config {
	return Config{
		Window:       64,
		CheckEvery:   16,
		Delta:        0.02,
		DeltaSlack:   1,
		CostFactor:   1.2,
		MinGain:      0.05,
		BuildMinRows: 10,
		MinPartRows:  128,
		MaxPartRows:  512,
		BuildSample:  1000,
		GroupRows:    256,
		Replicas:     1,
		Validate:     true,
		Seed:         42,
	}
}

// TestDriftEndToEnd is the tentpole acceptance test: a seeded drifting
// workload trips the monitor, the controller rebuilds only the drifted
// region and migrates the cluster onto the patch without stopping service,
// every query before/during/after answers exactly what the static oracle
// says, and the recovered per-query scan cost lands within 10% of a full
// offline rebuild for the same live workload.
func TestDriftEndToEnd(t *testing.T) {
	cfg := testConfig()
	tc := startDriftCluster(t, 16000, 3, cfg)
	names := tc.data.Names()

	// Phase 1 — steady traffic from the reference workload: fills the
	// window, sets the cost baseline, must not trigger.
	for i := 0; i < cfg.Window; i++ {
		tc.serve(t, boxSQL(names, tc.hist[i%len(tc.hist)].Box))
	}
	if rep, err := tc.ctl.TriggerNow(context.Background()); err != nil {
		t.Fatal(err)
	} else if rep.Triggered {
		t.Fatalf("steady traffic must not trigger: %+v", rep.Decision)
	}

	// Phase 2 — drifted traffic: small queries in the coarse right region.
	drifted := rightBoxes(cfg.Window, 99)
	var preBytes int64
	for _, b := range drifted {
		preBytes += tc.serve(t, boxSQL(names, b)).BytesScanned
	}

	// Phase 3 — trigger while concurrent clients keep querying: the
	// migration must not produce a single wrong answer.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	concurrent := rightBoxes(8, 123)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sql := boxSQL(names, concurrent[(g+i)%len(concurrent)])
				resp, err := tc.master.Query(sql)
				if err != nil {
					t.Errorf("query during migration: %v", err)
					return
				}
				if want := tc.oracleRows(t, sql); resp.Rows != want {
					t.Errorf("query during migration: %d rows, oracle says %d", resp.Rows, want)
					return
				}
			}
		}(g)
	}
	rep, err := tc.ctl.TriggerNow(context.Background())
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("trigger: %v (report %+v)", err, rep)
	}
	if !rep.Triggered || !rep.Migrated {
		t.Fatalf("drifted traffic must trigger and migrate: %+v", rep)
	}
	if rep.Epoch != 1 || tc.master.Epoch() != 1 {
		t.Fatalf("epoch = %d (master %d), want 1", rep.Epoch, tc.master.Epoch())
	}
	if rep.Added == 0 || rep.Removed == 0 || rep.Renamed == 0 {
		t.Fatalf("patch must rebuild a strict subtree: %+v", rep)
	}
	if rep.MovedBytes <= 0 {
		t.Fatal("migration must ship rebuilt payloads")
	}
	if rep.CostAfter >= rep.CostBefore {
		t.Fatalf("modeled window cost must drop: %d -> %d", rep.CostBefore, rep.CostAfter)
	}

	// Phase 4 — the same drifted queries after cutover: still exact, and
	// observed scan volume must have recovered.
	var postBytes int64
	for _, b := range drifted {
		postBytes += tc.serve(t, boxSQL(names, b)).BytesScanned
	}
	if postBytes >= preBytes/2 {
		t.Fatalf("observed scan volume did not recover: %d pre, %d post", preBytes, postBytes)
	}
	// Steady traffic still works on the patched layout (renamed partitions
	// serve via zero-copy aliases).
	for i := 0; i < 8; i++ {
		tc.serve(t, boxSQL(names, tc.hist[i].Box))
	}

	// Recovery quality: within 10% of a full offline rebuild for the live
	// workload, run through the same construction pipeline (sample build +
	// full-scale ingest maintenance) over the whole domain.
	var live workload.Workload
	for i, b := range drifted {
		live = append(live, workload.Query{Box: b, Seq: int64(i)})
	}
	offline := offlineRebuild(t, tc, live, cfg)
	liveBoxes := live.Boxes()
	got := tc.ctl.layout().AvgCost(liveBoxes, nil)
	want := offline.AvgCost(liveBoxes, nil)
	if want <= 0 {
		t.Fatalf("offline rebuild cost = %g", want)
	}
	if got > 1.10*want {
		t.Fatalf("recovered cost %.0f exceeds 110%% of offline rebuild %.0f", got, want)
	}
}

// offlineRebuild runs the controller's construction pipeline over the whole
// domain — the quality bar the incremental patch is measured against.
func offlineRebuild(t *testing.T, tc *driftCluster, live workload.Workload, cfg Config) *layout.Layout {
	t.Helper()
	all := make([]int, tc.data.NumRows())
	for i := range all {
		all[i] = i
	}
	sample := strideSample(all, cfg.BuildSample)
	built := core.Build(tc.data, sample, tc.data.Domain(), live, core.Params{
		MinRows: cfg.BuildMinRows,
		Delta:   cfg.Delta,
	})
	ing, err := ingest.New(built, nil, ingest.Params{MinRows: cfg.MinPartRows, MaxRows: cfg.MaxPartRows})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range all {
		ing.Add(tc.data.Point(r))
	}
	ing.Maintain()
	return ing.Snapshot()
}
