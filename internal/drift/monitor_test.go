package drift

import (
	"math/rand"
	"testing"

	"paw/internal/geom"
	"paw/internal/workload"
)

func box2(lo0, lo1, hi0, hi1 float64) geom.Box {
	return geom.Box{Lo: geom.Point{lo0, lo1}, Hi: geom.Point{hi0, hi1}}
}

// leftHist is a reference workload confined to the left part of the unit
// square.
func leftHist(n int, seed int64) workload.Workload {
	return workload.Uniform(box2(0, 0, 0.45, 1), workload.Defaults(n, seed))
}

// rightBoxes generates small drifted query boxes inside the right part of
// the unit square.
func rightBoxes(n int, seed int64) []geom.Box {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Box, n)
	for i := range out {
		cx := 0.6 + rng.Float64()*0.3
		cy := 0.1 + rng.Float64()*0.8
		s := 0.02 + rng.Float64()*0.03
		out[i] = box2(cx-s, cy-s, cx+s, cy+s)
	}
	return out
}

func TestMonitorNoTriggerBeforeWindowFull(t *testing.T) {
	mo := NewMonitor(leftHist(10, 1), Config{Window: 16, Delta: 0.02})
	for i := 0; i < 15; i++ {
		mo.Observe(rightBoxes(1, int64(i)), 1000, false, nil, nil)
	}
	d := mo.Evaluate()
	if d.Trigger {
		t.Fatal("monitor must not trigger before the window is full")
	}
	if d.Reason != "window not yet full" {
		t.Fatalf("reason = %q", d.Reason)
	}
}

func TestMonitorInScopeWorkloadDoesNotTrigger(t *testing.T) {
	hist := leftHist(20, 2)
	mo := NewMonitor(hist, Config{Window: 32, Delta: 0.05})
	// Live queries identical to reference queries: δ′ is 0.
	for i := 0; i < 64; i++ {
		q := hist[i%len(hist)]
		mo.Observe([]geom.Box{q.Box}, 1000, false, nil, nil)
	}
	d := mo.Evaluate()
	if d.Trigger {
		t.Fatalf("in-scope workload triggered: %+v", d)
	}
	if d.DeltaEstimate != 0 {
		t.Fatalf("replayed reference queries must estimate δ′=0, got %g", d.DeltaEstimate)
	}
}

func TestMonitorDriftWithoutRegressionDoesNotTrigger(t *testing.T) {
	mo := NewMonitor(leftHist(20, 3), Config{Window: 32, Delta: 0.02, CostFactor: 1.5})
	// Fill with steady traffic to set the baseline, then drift at the SAME
	// observed cost: out of scope, but the layout still serves it fine.
	steady := leftHist(32, 4)
	for _, q := range steady {
		mo.Observe([]geom.Box{q.Box}, 1000, false, nil, nil)
	}
	for _, b := range rightBoxes(32, 5) {
		mo.Observe([]geom.Box{b}, 1000, false, nil, nil)
	}
	d := mo.Evaluate()
	if d.Trigger {
		t.Fatalf("drift without cost regression triggered: %+v", d)
	}
	if d.DeltaEstimate <= 0.02 {
		t.Fatalf("drifted window must estimate δ′ > δ, got %g", d.DeltaEstimate)
	}
	if d.Reason != "out of scope but cost has not regressed" {
		t.Fatalf("reason = %q", d.Reason)
	}
}

func TestMonitorDriftWithRegressionTriggers(t *testing.T) {
	mo := NewMonitor(leftHist(20, 6), Config{Window: 32, Delta: 0.02, CostFactor: 1.5})
	steady := leftHist(32, 7)
	for _, q := range steady {
		mo.Observe([]geom.Box{q.Box}, 1000, false, nil, nil)
	}
	drift := rightBoxes(32, 8)
	for _, b := range drift {
		mo.Observe([]geom.Box{b}, 10000, false, nil, nil)
	}
	d := mo.Evaluate()
	if !d.Trigger {
		t.Fatalf("drifted+regressed window must trigger: %+v", d)
	}
	if d.OutOfScope == 0 {
		t.Fatal("trigger must report out-of-scope queries")
	}
	// The violated region must cover the drifted cluster and stay inside
	// the right part of the square (no steady query is out of scope).
	want := geom.MBR(drift...)
	if !d.Region.Equal(want) {
		t.Fatalf("region = %v, want MBR of drifted boxes %v", d.Region, want)
	}
	if d.Region.Lo[0] < 0.5 {
		t.Fatalf("violated region %v leaked into the steady half", d.Region)
	}
}

func TestMonitorCooldownMutes(t *testing.T) {
	mo := NewMonitor(leftHist(20, 9), Config{Window: 16, Delta: 0.01, CostFactor: 1.1})
	for _, q := range leftHist(16, 10) {
		mo.Observe([]geom.Box{q.Box}, 100, false, nil, nil)
	}
	for _, b := range rightBoxes(16, 11) {
		mo.Observe([]geom.Box{b}, 10000, false, nil, nil)
	}
	if d := mo.Evaluate(); !d.Trigger {
		t.Fatalf("precondition: should trigger, got %+v", d)
	}
	mo.MuteFor(10)
	if d := mo.Evaluate(); d.Trigger || d.Reason != "cooling down" {
		t.Fatalf("muted monitor evaluated %+v", d)
	}
	for _, b := range rightBoxes(10, 12) {
		mo.Observe([]geom.Box{b}, 10000, false, nil, nil)
	}
	if d := mo.Evaluate(); !d.Trigger {
		t.Fatalf("cooldown must expire after n observations, got %+v", d)
	}
}

func TestMonitorReanchorResetsScope(t *testing.T) {
	mo := NewMonitor(leftHist(20, 13), Config{Window: 16, Delta: 0.02, CostFactor: 1.1})
	for _, q := range leftHist(16, 14) {
		mo.Observe([]geom.Box{q.Box}, 100, false, nil, nil)
	}
	drift := rightBoxes(16, 15)
	for _, b := range drift {
		mo.Observe([]geom.Box{b}, 10000, false, nil, nil)
	}
	if d := mo.Evaluate(); !d.Trigger {
		t.Fatalf("precondition: should trigger, got %+v", d)
	}
	// Re-anchor on what was observed: the same traffic is now in scope.
	var ref workload.Workload
	for i, b := range drift {
		ref = append(ref, workload.Query{Box: b, Seq: int64(i)})
	}
	mo.Reanchor(ref)
	for _, b := range drift {
		mo.Observe([]geom.Box{b}, 10000, false, nil, nil)
	}
	d := mo.Evaluate()
	if d.Trigger {
		t.Fatalf("re-anchored monitor re-triggered on the same traffic: %+v", d)
	}
	if d.DeltaEstimate != 0 {
		t.Fatalf("δ′ = %g after re-anchor, want 0", d.DeltaEstimate)
	}
}

func TestMonitorWasteLedgerRanksOverscannedPartition(t *testing.T) {
	// Two partitions: a tiny query repeatedly hitting the big one
	// accumulates waste there and none on the other.
	data := unitData(t, 2000, 21)
	l := buildLeftLayout(t, data, leftHist(20, 22), 0.02)
	mo := NewMonitor(leftHist(20, 22), Config{Window: 32})

	q := box2(0.7, 0.4, 0.74, 0.44)
	ids := l.PartitionsFor(q)
	if len(ids) == 0 {
		t.Fatal("query must touch at least one partition")
	}
	for i := 0; i < 8; i++ {
		mo.Observe([]geom.Box{q}, 5000, false, l, ids)
	}
	top := mo.TopWaste(4)
	if len(top) == 0 {
		t.Fatal("waste ledger is empty")
	}
	if top[0].Bytes <= 0 {
		t.Fatalf("top waste = %+v, want positive", top[0])
	}
	seen := map[bool]bool{}
	for _, id := range ids {
		seen[top[0].ID == id] = true
	}
	if !seen[true] {
		t.Fatalf("top-waste partition %d is not among the touched ones %v", top[0].ID, ids)
	}
}
