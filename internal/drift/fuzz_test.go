package drift

import (
	"context"
	"math/rand"
	"testing"
)

// FuzzDriftDifferential fuzzes the live query stream the drift controller
// watches: a seeded mix of in-scope and drifted queries, with the controller
// evaluated every few queries. Whatever the monitor decides — no trigger,
// trigger-and-skip, or a full migration — every served query must return
// exactly the rows the static dataset oracle counts, including queries served
// while a migration is double-routing. This is the satellite differential for
// the tentpole: the fuzz explores workload mixes the deterministic E2E test
// does not.
func FuzzDriftDifferential(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(24))
	f.Add(int64(2), uint8(255), uint8(48))
	f.Add(int64(3), uint8(128), uint8(40))
	f.Add(int64(42), uint8(200), uint8(64))

	f.Fuzz(func(t *testing.T, seed int64, mix uint8, n uint8) {
		if n == 0 {
			t.Skip("empty stream")
		}
		cfg := Config{
			Window:       16,
			CheckEvery:   8,
			Delta:        0.02,
			DeltaSlack:   1,
			CostFactor:   1.2,
			MinGain:      0.05,
			BuildMinRows: 8,
			MinPartRows:  64,
			MaxPartRows:  256,
			BuildSample:  400,
			GroupRows:    128,
			Replicas:     1,
			Validate:     true,
			Seed:         seed,
		}
		tc := startDriftCluster(t, 3000, 2, cfg)
		names := tc.data.Names()

		rng := rand.New(rand.NewSource(seed))
		drifted := rightBoxes(32, seed+1)
		migrated := false
		for i := 0; i < int(n); i++ {
			var sql string
			if rng.Float64()*255 < float64(mix) {
				sql = boxSQL(names, drifted[rng.Intn(len(drifted))])
			} else {
				q := tc.hist[rng.Intn(len(tc.hist))]
				sql = boxSQL(names, q.Box)
			}
			tc.serve(t, sql)
			if (i+1)%cfg.CheckEvery == 0 {
				rep, err := tc.ctl.TriggerNow(context.Background())
				if err != nil {
					t.Fatalf("trigger after %d queries: %v (report %+v)", i+1, err, rep)
				}
				if rep.Migrated {
					migrated = true
				}
			}
		}
		// After any number of migrations the whole stream must still answer
		// exactly — replay both workload flavors.
		for i := 0; i < 8; i++ {
			tc.serve(t, boxSQL(names, tc.hist[i%len(tc.hist)].Box))
			tc.serve(t, boxSQL(names, drifted[i%len(drifted)]))
		}
		if migrated && tc.master.Epoch() == 0 {
			t.Fatal("controller reports a migration but the master still serves epoch 0")
		}
	})
}
