// Package drift closes the loop between the paper's variance-aware
// construction (§IV) and a serving cluster: a monitor on the master keeps a
// sliding window of live routed queries, estimates the minimal δ′ that would
// make the window similar to the historical workload the layout was built
// for (the §IV-E estimator, directed at live traffic), and — when the live
// workload has left the layout's variance scope AND observed scan cost has
// regressed past a configurable factor — rebuilds only the violated region
// of the partition tree and migrates the cluster onto the patched layout
// (layout.PatchSubtree → dist.ApplyMigration) without stopping service.
//
// The package splits into a Monitor (pure observation and decision state,
// deterministic given an observation sequence) and a Controller (the rebuild
// + migration pipeline around it). Everything the monitor decides is
// inspectable through Status, and the controller can be driven synchronously
// (TriggerNow) for deterministic tests or auto-triggered from the master's
// query observer.
package drift

import (
	"sync"

	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/workload"
)

// Config bundles the monitor and controller knobs. The zero value is
// completed by withDefaults; only Delta has no sensible default (a layout
// built with δ=0 has an empty variance scope, so any drift triggers).
type Config struct {
	// Window is the sliding-window size in observed queries.
	Window int
	// CheckEvery runs the drift decision every N observations.
	CheckEvery int
	// Delta is the layout's variance scope δ (the value the layout was
	// built with, in absolute domain units).
	Delta float64
	// DeltaSlack scales δ before comparison: the window is out of scope
	// when δ′ > Delta·DeltaSlack. Values > 1 make the trigger lazier than
	// the build-time scope.
	DeltaSlack float64
	// CostFactor is the regression gate: reorganization is considered only
	// when the window's average observed scan bytes exceed CostFactor × the
	// baseline average (the first full window after the layout was
	// installed). Out-of-scope traffic that the layout still serves cheaply
	// does not trigger.
	CostFactor float64
	// MinGain is the benefit gate: the patched layout must cut the window's
	// modeled scan cost by at least this fraction, or the migration is
	// skipped.
	MinGain float64
	// Cooldown is the number of observations after a migration (or a
	// skipped trigger) before the monitor may fire again.
	Cooldown int

	// BuildMinRows is bmin (in sample rows) for the region rebuild.
	BuildMinRows int
	// MinPartRows / MaxPartRows bound rebuilt partitions at full-data scale
	// (ingest maintenance enforces them on the replacement subtree).
	MinPartRows int
	MaxPartRows int
	// BuildSample caps the construction sample for the region rebuild.
	BuildSample int
	// GroupRows is the colstore row-group size for migrated payloads.
	GroupRows int
	// Parallelism is the rebuild's parbuild width (0 = GOMAXPROCS).
	Parallelism int
	// Replicas is the replica count for partitions added by a rebuild
	// (surviving partitions keep their old replica sets).
	Replicas int
	// Validate runs the invariant drift/cutover oracles on every patch
	// before it is applied, aborting the migration on any violation.
	Validate bool
	// Seed drives the controller's deterministic sampling and the oracle
	// probes.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 32
	}
	if c.DeltaSlack <= 0 {
		c.DeltaSlack = 1
	}
	if c.CostFactor <= 0 {
		c.CostFactor = 1.3
	}
	if c.MinGain <= 0 {
		c.MinGain = 0.05
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.Window
	}
	if c.BuildMinRows <= 0 {
		c.BuildMinRows = 8
	}
	if c.MinPartRows <= 0 {
		c.MinPartRows = 64
	}
	if c.MaxPartRows < 2*c.MinPartRows {
		c.MaxPartRows = 4 * c.MinPartRows
	}
	if c.BuildSample <= 0 {
		c.BuildSample = 2000
	}
	if c.GroupRows <= 0 {
		c.GroupRows = 512
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	return c
}

// obsEntry is one windowed query observation.
type obsEntry struct {
	boxes  []geom.Box
	bytes  int64
	cached bool
}

// Monitor is the observation half: a ring of recent routed queries plus the
// reference workload the serving layout was built for. It is pure decision
// state — it never touches the cluster — and is safe for concurrent
// Observe/Status calls.
type Monitor struct {
	cfg Config

	mu   sync.Mutex
	ref  workload.Workload // reference QH the layout's scope is anchored to
	ring []obsEntry
	next int   // ring write cursor
	full bool  // ring has wrapped at least once
	seen int64 // total observations

	// baseline is the mean observed scan bytes of the first full window
	// after the reference was (re)anchored; 0 until known.
	baseline    float64
	cooldownEnd int64 // observation count before which triggers are muted

	// waste is the AQWA-style ledger: per partition, the estimated bytes
	// scanned beyond the query/partition overlap, accumulated over the
	// window's lifetime. Purely advisory (Status/bench); reset when the
	// reference re-anchors.
	waste map[layout.ID]float64
}

// NewMonitor builds a monitor anchored to the reference workload hist (the
// workload the serving layout was built for).
func NewMonitor(hist workload.Workload, cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	return &Monitor{
		cfg:   cfg,
		ref:   hist.Clone(),
		ring:  make([]obsEntry, cfg.Window),
		waste: make(map[layout.ID]float64),
	}
}

// Observe records one served query: its routed range boxes, the scan bytes
// the response reported, and whether it was answered from the result cache.
// l, when non-nil, feeds the per-partition waste ledger; ids are the
// partitions the plan touched.
func (mo *Monitor) Observe(boxes []geom.Box, bytes int64, cached bool, l *layout.Layout, ids []layout.ID) {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	mo.ring[mo.next] = obsEntry{boxes: boxes, bytes: bytes, cached: cached}
	mo.next = (mo.next + 1) % len(mo.ring)
	if mo.next == 0 {
		mo.full = true
	}
	mo.seen++
	if mo.full && mo.baseline == 0 {
		mo.baseline = mo.windowAvgLocked()
	}
	if l != nil && len(boxes) > 0 {
		mo.accountWasteLocked(l, boxes, ids)
	}
}

// accountWasteLocked adds each touched partition's estimated overscan for
// this query: the fraction of the partition's volume the query ranges do not
// cover, times the partition's bytes. A crude geometric estimate (AQWA uses
// the same shape of ledger to rank split candidates), but it needs no data
// access and converges on the partitions the drift actually punishes.
func (mo *Monitor) accountWasteLocked(l *layout.Layout, boxes []geom.Box, ids []layout.ID) {
	for _, id := range ids {
		if int(id) < 0 || int(id) >= len(l.Parts) {
			continue
		}
		p := l.Parts[id]
		pb := p.Desc.MBR()
		pv := pb.Volume()
		if pv <= 0 {
			continue
		}
		covered := 0.0
		for _, q := range boxes {
			if inter, ok := q.Intersection(pb); ok {
				covered += inter.Volume()
			}
		}
		frac := covered / pv
		if frac > 1 {
			frac = 1
		}
		mo.waste[id] += (1 - frac) * float64(p.Bytes())
	}
}

// windowAvgLocked is the mean observed scan bytes over the current window
// (cached hits count — they are demand the layout would otherwise serve with
// real I/O at their recorded cost).
func (mo *Monitor) windowAvgLocked() float64 {
	n := mo.next
	if mo.full {
		n = len(mo.ring)
	}
	if n == 0 {
		return 0
	}
	var sum int64
	for i := 0; i < n; i++ {
		sum += mo.ring[i].bytes
	}
	return float64(sum) / float64(n)
}

// windowWorkloadLocked flattens the window's range boxes into a workload.
func (mo *Monitor) windowWorkloadLocked() workload.Workload {
	n := mo.next
	if mo.full {
		n = len(mo.ring)
	}
	var w workload.Workload
	for i := 0; i < n; i++ {
		for _, b := range mo.ring[i].boxes {
			w = append(w, workload.Query{Box: b, Seq: int64(len(w))})
		}
	}
	return w
}

// outOfScopeLocked returns the window query boxes whose distance to the
// nearest reference query exceeds the (slack-scaled) scope δ — the live
// queries the layout was provably not built for. Their MBR is the violated
// region the controller rebuilds.
func (mo *Monitor) outOfScopeLocked() []geom.Box {
	limit := mo.cfg.Delta * mo.cfg.DeltaSlack
	n := mo.next
	if mo.full {
		n = len(mo.ring)
	}
	var out []geom.Box
	for i := 0; i < n; i++ {
		for _, b := range mo.ring[i].boxes {
			q := workload.Query{Box: b}
			best := -1.0
			for _, r := range mo.ref {
				d := workload.Dist(r, q)
				if best < 0 || d < best {
					best = d
				}
			}
			if best > limit {
				out = append(out, b)
			}
		}
	}
	return out
}

// Decision is one drift evaluation: whether to trigger, why or why not, and
// the evidence.
type Decision struct {
	// Trigger is true when the live window is out of the layout's variance
	// scope and observed cost has regressed: the controller should rebuild.
	Trigger bool
	// Reason is a one-line explanation of the decision.
	Reason string
	// DeltaEstimate is δ′: the directed minimal δ that would bring the
	// window into the reference's scope.
	DeltaEstimate float64
	// WindowAvgBytes and BaselineAvgBytes are the observed-cost evidence.
	WindowAvgBytes   float64
	BaselineAvgBytes float64
	// Region is the MBR of the out-of-scope queries (zero Box when none).
	Region geom.Box
	// OutOfScope counts the window queries outside the scope.
	OutOfScope int
}

// Evaluate runs the drift decision over the current window. It is
// side-effect-free: triggering policy (cooldowns) is applied by the caller
// via MuteFor.
func (mo *Monitor) Evaluate() Decision {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	d := Decision{
		WindowAvgBytes:   mo.windowAvgLocked(),
		BaselineAvgBytes: mo.baseline,
	}
	if !mo.full {
		d.Reason = "window not yet full"
		return d
	}
	if mo.seen < mo.cooldownEnd {
		d.Reason = "cooling down"
		return d
	}
	live := mo.windowWorkloadLocked()
	d.DeltaEstimate = workload.DirectedDelta(mo.ref, live)
	if d.DeltaEstimate <= mo.cfg.Delta*mo.cfg.DeltaSlack {
		d.Reason = "window within variance scope"
		return d
	}
	oos := mo.outOfScopeLocked()
	d.OutOfScope = len(oos)
	if len(oos) == 0 {
		d.Reason = "no individual query out of scope"
		return d
	}
	d.Region = geom.MBR(oos...)
	if mo.baseline > 0 && d.WindowAvgBytes < mo.cfg.CostFactor*mo.baseline {
		d.Reason = "out of scope but cost has not regressed"
		return d
	}
	d.Trigger = true
	d.Reason = "out of scope and cost regressed"
	return d
}

// MuteFor suppresses triggers for the next n observations (cooldown after a
// migration or a rejected trigger).
func (mo *Monitor) MuteFor(n int) {
	mo.mu.Lock()
	mo.cooldownEnd = mo.seen + int64(n)
	mo.mu.Unlock()
}

// Reanchor replaces the reference workload (after a migration: the layout's
// scope is now centered on what was just observed) and resets the baseline
// and waste ledger.
func (mo *Monitor) Reanchor(ref workload.Workload) {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	mo.ref = ref.Clone()
	mo.baseline = 0
	mo.full = false
	mo.next = 0
	mo.waste = make(map[layout.ID]float64)
}

// Window returns a snapshot of the current window as a workload (for the
// controller's rebuild and benefit gate).
func (mo *Monitor) Window() workload.Workload {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return mo.windowWorkloadLocked()
}

// Seen returns the total number of observations.
func (mo *Monitor) Seen() int64 {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return mo.seen
}

// PartitionWaste is one waste-ledger entry.
type PartitionWaste struct {
	ID    layout.ID
	Bytes float64
}

// TopWaste returns the k partitions with the highest accumulated estimated
// overscan, descending.
func (mo *Monitor) TopWaste(k int) []PartitionWaste {
	mo.mu.Lock()
	out := make([]PartitionWaste, 0, len(mo.waste))
	for id, w := range mo.waste {
		out = append(out, PartitionWaste{ID: id, Bytes: w})
	}
	mo.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].Bytes > out[j-1].Bytes ||
			(out[j].Bytes == out[j-1].Bytes && out[j].ID < out[j-1].ID)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
