package drift

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"paw/internal/blockstore"
	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/dist"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/placement"
	"paw/internal/router"
	"paw/internal/workload"
)

// The test scenario used throughout this package: uniform 2-d data over the
// unit square, a historical workload confined to the left part, so the
// built layout is fine on the left and coarse on the right — and a drifted
// query cluster of small boxes on the right regresses observed cost until
// the controller rebuilds that region.

func unitData(t testing.TB, rows int, seed int64) *dataset.Dataset {
	t.Helper()
	return dataset.Uniform(rows, 2, seed)
}

// buildLeftLayout builds (and routes) a layout for the left-weighted
// reference workload.
func buildLeftLayout(t testing.TB, data *dataset.Dataset, hist workload.Workload, delta float64) *layout.Layout {
	t.Helper()
	sample := data.Sample(1500, 13)
	l := core.Build(data, sample, data.Domain(), hist, core.Params{MinRows: 20, Delta: delta})
	l.Route(data)
	return l
}

// driftCluster is a live cluster plus the drift controller under test.
type driftCluster struct {
	data    *dataset.Dataset
	hist    workload.Workload
	layout  *layout.Layout // the layout the cluster started with (epoch 0)
	oracle  *router.Master // static router over the epoch-0 layout (row oracle)
	workers []*dist.Worker
	master  *dist.Master
	ctl     *Controller

	// oracleMu/oracleRowsBySQL memoize the row oracle per statement: the
	// differential load loops over few distinct statements, and a linear
	// count per served query would dominate the test's runtime.
	oracleMu        sync.Mutex
	oracleRowsBySQL map[string]int
}

// startDriftCluster spins up workers + master over loopback TCP on the
// left-weighted scenario and attaches a drift controller (manual trigger).
func startDriftCluster(t testing.TB, rows, nWorkers int, cfg Config) *driftCluster {
	t.Helper()
	data := unitData(t, rows, 7)
	hist := workload.Uniform(box2(0, 0, 0.45, 1), workload.Defaults(30, 11))
	l := buildLeftLayout(t, data, hist, cfg.Delta)
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 256})

	place := placement.RoundRobin(l, nWorkers)
	perWorker := make([][]layout.ID, nWorkers)
	for id, w := range place {
		perWorker[w] = append(perWorker[w], id)
	}
	tc := &driftCluster{data: data, hist: hist, layout: l, oracleRowsBySQL: make(map[string]int)}
	addrs := make([]string, nWorkers)
	for w := 0; w < nWorkers; w++ {
		wk := dist.NewWorker(store, perWorker[w])
		addr, err := wk.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[w] = addr
		tc.workers = append(tc.workers, wk)
	}
	rm, err := router.NewMaster(l, data.Names())
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := router.NewMaster(l, data.Names())
	if err != nil {
		t.Fatal(err)
	}
	tc.oracle = oracle
	m, err := dist.NewMaster(rm, addrs, place)
	if err != nil {
		t.Fatal(err)
	}
	tc.master = m
	tc.ctl = New(m, data, hist, cfg)
	tc.ctl.Attach(false)
	t.Cleanup(func() {
		m.Close()
		for _, wk := range tc.workers {
			wk.Close()
		}
	})
	return tc
}

// boxSQL renders a range query box as SQL over the dataset's columns. %v on
// float64 prints the shortest round-tripping representation, so the parsed
// box equals b exactly.
func boxSQL(names []string, b geom.Box) string {
	var sb strings.Builder
	sb.WriteString("SELECT * FROM t WHERE ")
	for d, n := range names {
		if d > 0 {
			sb.WriteString(" AND ")
		}
		fmt.Fprintf(&sb, "%s >= %v AND %s <= %v", n, b.Lo[d], n, b.Hi[d])
	}
	return sb.String()
}

// oracleRows counts the rows a query must return, independently of any
// layout: the SQL is routed on the static epoch-0 router purely to recover
// its range boxes, then counted directly against the dataset.
func (tc *driftCluster) oracleRows(t testing.TB, sql string) int {
	t.Helper()
	tc.oracleMu.Lock()
	if want, ok := tc.oracleRowsBySQL[sql]; ok {
		tc.oracleMu.Unlock()
		return want
	}
	tc.oracleMu.Unlock()
	plan, err := tc.oracle.RouteSQL(sql)
	if err != nil {
		t.Fatalf("oracle route %q: %v", sql, err)
	}
	want := 0
	for _, rp := range plan.Ranges {
		want += tc.data.CountInBox(rp.Range, nil)
	}
	tc.oracleMu.Lock()
	tc.oracleRowsBySQL[sql] = want
	tc.oracleMu.Unlock()
	return want
}

// serve runs one query through the master and asserts its row count against
// the static oracle.
func (tc *driftCluster) serve(t testing.TB, sql string) dist.QueryResponse {
	t.Helper()
	resp, err := tc.master.Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	if want := tc.oracleRows(t, sql); resp.Rows != want {
		t.Fatalf("query %q: %d rows, oracle says %d", sql, resp.Rows, want)
	}
	return resp
}
