package drift

import (
	"context"
	"math"
	"testing"

	"paw/internal/obs"
)

// The drift telemetry must mirror the controller's counters and expose the
// last evaluation's evidence through gauges — and stay a no-op when no
// registry is attached.
func TestControllerMetrics(t *testing.T) {
	cfg := testConfig()
	cfg.Window = 32
	cfg.CheckEvery = 8
	tc := startDriftCluster(t, 6000, 2, cfg)
	names := tc.data.Names()
	reg := obs.New()
	tc.ctl.SetMetrics(reg)

	// Steady traffic: the check runs, nothing triggers, the gauges carry the
	// in-scope evidence.
	for i := 0; i < cfg.Window; i++ {
		tc.serve(t, boxSQL(names, tc.hist[i%len(tc.hist)].Box))
	}
	if _, err := tc.ctl.TriggerNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter(MetricDriftChecks); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricDriftChecks, got)
	}
	if got := snap.Counter(MetricDriftTriggers); got != 0 {
		t.Fatalf("%s = %d, want 0 on steady traffic", MetricDriftTriggers, got)
	}
	if got := snap.Gauge(MetricDriftWindowAvgBytes); got <= 0 {
		t.Fatalf("%s = %d, want > 0 after a full window", MetricDriftWindowAvgBytes, got)
	}
	if got := snap.Gauge(MetricDriftDeltaEstimateMicro); got > int64(cfg.Delta*cfg.DeltaSlack*1e6) {
		t.Fatalf("%s = %d exceeds the scope on replayed traffic", MetricDriftDeltaEstimateMicro, got)
	}
	if got := snap.Gauge(MetricDriftEpoch); got != 0 {
		t.Fatalf("%s = %d, want 0 before any migration", MetricDriftEpoch, got)
	}

	// Drifted traffic: the trigger fires, the migration ships payloads, the
	// epoch gauge follows the cutover.
	for _, b := range rightBoxes(cfg.Window, 99) {
		tc.serve(t, boxSQL(names, b))
	}
	rep, err := tc.ctl.TriggerNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Migrated {
		t.Fatalf("drifted traffic must migrate: %+v", rep)
	}
	snap = reg.Snapshot()
	if got := snap.Counter(MetricDriftChecks); got != 2 {
		t.Fatalf("%s = %d, want 2", MetricDriftChecks, got)
	}
	if got := snap.Counter(MetricDriftTriggers); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricDriftTriggers, got)
	}
	if got := snap.Counter(MetricDriftMigrations); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricDriftMigrations, got)
	}
	if got := snap.Counter(MetricDriftMovedBytes); got != rep.MovedBytes {
		t.Fatalf("%s = %d, want %d", MetricDriftMovedBytes, got, rep.MovedBytes)
	}
	if got := snap.Counter(MetricDriftSkips); got != 0 {
		t.Fatalf("%s = %d, want 0", MetricDriftSkips, got)
	}
	if got := snap.Gauge(MetricDriftEpoch); got != 1 {
		t.Fatalf("%s = %d, want 1 after the migration", MetricDriftEpoch, got)
	}
	if got := snap.Gauge(MetricDriftOutOfScope); got <= 0 {
		t.Fatalf("%s = %d, want > 0 on the triggering window", MetricDriftOutOfScope, got)
	}
	if got := snap.Gauge(MetricDriftDeltaEstimateMicro); got <= int64(cfg.Delta*1e6) {
		t.Fatalf("%s = %d, want > δ on drifted traffic", MetricDriftDeltaEstimateMicro, got)
	}

	// Counters() and the registry agree.
	checks, triggers, migrations, skips := tc.ctl.Counters()
	if checks != 2 || triggers != 1 || migrations != 1 || skips != 0 {
		t.Fatalf("Counters() = %d/%d/%d/%d, want 2/1/1/0", checks, triggers, migrations, skips)
	}
}

// A controller without SetMetrics must run with no-op instruments.
func TestControllerMetricsDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.Window = 16
	cfg.CheckEvery = 8
	tc := startDriftCluster(t, 3000, 1, cfg)
	names := tc.data.Names()
	for i := 0; i < cfg.Window; i++ {
		tc.serve(t, boxSQL(names, tc.hist[i%len(tc.hist)].Box))
	}
	if _, err := tc.ctl.TriggerNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if checks, _, _, _ := tc.ctl.Counters(); checks != 1 {
		t.Fatalf("checks = %d, want 1", checks)
	}
}

// δ′ is +Inf when the window shares nothing with the reference workload; the
// gauge must clamp instead of publishing the unspecified int64 conversion.
func TestPublishClampsDeltaEstimate(t *testing.T) {
	var c Controller
	reg := obs.New()
	c.SetMetrics(reg)
	ins := c.inst.Load()

	ins.publish(Report{Decision: Decision{DeltaEstimate: math.Inf(1)}})
	if got := reg.Snapshot().Gauge(MetricDriftDeltaEstimateMicro); got != math.MaxInt64 {
		t.Fatalf("Inf δ′ gauge = %d, want MaxInt64", got)
	}
	ins.publish(Report{Decision: Decision{DeltaEstimate: math.NaN()}})
	if got := reg.Snapshot().Gauge(MetricDriftDeltaEstimateMicro); got != 0 {
		t.Fatalf("NaN δ′ gauge = %d, want 0", got)
	}
	ins.publish(Report{Decision: Decision{DeltaEstimate: 0.25}})
	if got := reg.Snapshot().Gauge(MetricDriftDeltaEstimateMicro); got != 250000 {
		t.Fatalf("δ′ gauge = %d, want 250000", got)
	}
}
