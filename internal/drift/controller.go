package drift

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"

	"paw/internal/colstore"
	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/dist"
	"paw/internal/geom"
	"paw/internal/ingest"
	"paw/internal/invariant"
	"paw/internal/layout"
	"paw/internal/placement"
	"paw/internal/router"
	"paw/internal/trace"
	"paw/internal/workload"
)

// Controller is the acting half: it feeds the monitor from the master's
// query observer and, when the monitor triggers, rebuilds the violated
// region of the serving layout and migrates the cluster onto the patch.
//
// The controller holds the full dataset — this repository's 1/1000-scale
// stand-in for reading the affected partitions' rows back from the workers.
// Everything else it needs it takes from the master (current layout,
// placement, epoch) at trigger time, so a controller constructed once stays
// correct across its own migrations.
type Controller struct {
	cfg    Config
	master *dist.Master
	data   *dataset.Dataset
	mon    *Monitor
	hist   workload.Workload

	// mu serializes the trigger pipeline; the master's ApplyMigration
	// rejects overlap anyway, but one pipeline at a time keeps cur/hist
	// coherent. cur is atomic because the observer hook reads it on the
	// serving path while TriggerNow holds mu — taking mu there would
	// deadlock the migration drain against the queries it waits for.
	mu  sync.Mutex
	cur atomic.Pointer[layout.Layout]

	auto    atomic.Bool
	running atomic.Bool

	checks     atomic.Int64
	triggers   atomic.Int64
	migrations atomic.Int64
	skips      atomic.Int64

	// inst is the obs instrument set (never nil; the zero set is a no-op).
	inst atomic.Pointer[driftInstruments]

	// tracer, when set, records every migration pipeline run as a trace
	// (stage spans: rebuild, benefit gate, validate, cutover) into the same
	// ring the query traces land in. Migrations are rare, so they are always
	// sampled.
	tracer atomic.Pointer[trace.Tracer]

	lastMu sync.Mutex
	last   Report
}

// Report is the outcome of one trigger evaluation (and, when it fired, the
// migration that followed).
type Report struct {
	Decision Decision
	// Triggered is true when the monitor fired (whether or not a migration
	// followed — see SkipReason).
	Triggered bool
	// Migrated is true when a migration was applied successfully.
	Migrated bool
	// SkipReason explains a triggered-but-not-migrated outcome (benefit
	// gate, validation, conservation failure).
	SkipReason string
	// Epoch is the layout epoch after the report (unchanged when not
	// migrated).
	Epoch uint64
	// Renamed/Added/Removed are the patch diff sizes.
	Renamed, Added, Removed int
	// MovedBytes is the total payload volume shipped to workers.
	MovedBytes int64
	// CostBefore/CostAfter are the window's modeled scan cost under the old
	// and the patched layout (the benefit gate's evidence).
	CostBefore, CostAfter int64
}

// New builds a controller for a serving master. data must be the dataset the
// cluster's layout was materialised from, hist the workload the layout was
// built for (the monitor's initial reference), cfg.Delta the δ it was built
// with.
func New(m *dist.Master, data *dataset.Dataset, hist workload.Workload, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:    cfg,
		master: m,
		data:   data,
		mon:    NewMonitor(hist, cfg),
		hist:   hist.Clone(),
	}
	c.cur.Store(m.Router().Layout())
	c.inst.Store(&driftInstruments{})
	return c
}

// Monitor exposes the observation half (Status, TopWaste, Evaluate).
func (c *Controller) Monitor() *Monitor { return c.mon }

// SetTracer installs (or, with nil, removes) the tracer migration traces
// are recorded into — typically the same tracer the master samples queries
// into, so /traces interleaves both.
func (c *Controller) SetTracer(tr *trace.Tracer) { c.tracer.Store(tr) }

// Attach installs the controller as the master's query observer. With auto
// true, every cfg.CheckEvery observations the controller evaluates the
// monitor and runs the migration pipeline in a background goroutine when it
// triggers; with auto false the caller drives TriggerNow explicitly
// (deterministic tests).
func (c *Controller) Attach(auto bool) {
	c.auto.Store(auto)
	c.master.SetQueryObserver(func(ob dist.QueryObservation) {
		c.mon.Observe(ob.Ranges, ob.BytesScanned, ob.Cached, c.layout(), ob.IDs)
		if c.auto.Load() && c.mon.Seen()%int64(c.cfg.CheckEvery) == 0 {
			if c.running.CompareAndSwap(false, true) {
				go func() {
					defer c.running.Store(false)
					if _, err := c.TriggerNow(context.Background()); err != nil {
						slog.Warn("drift migration failed", "err", err)
					}
				}()
			}
		}
	})
}

// Detach removes the observer hook.
func (c *Controller) Detach() {
	c.auto.Store(false)
	c.master.SetQueryObserver(nil)
}

func (c *Controller) layout() *layout.Layout { return c.cur.Load() }

// Counters returns (checks, triggers, migrations, skips).
func (c *Controller) Counters() (int64, int64, int64, int64) {
	return c.checks.Load(), c.triggers.Load(), c.migrations.Load(), c.skips.Load()
}

// LastReport returns the most recent trigger evaluation's report.
func (c *Controller) LastReport() Report {
	c.lastMu.Lock()
	defer c.lastMu.Unlock()
	return c.last
}

func (c *Controller) setLast(r Report) {
	c.lastMu.Lock()
	c.last = r
	c.lastMu.Unlock()
	c.inst.Load().publish(r)
}

// TriggerNow evaluates the monitor and, if it fires, runs the full rebuild +
// migration pipeline synchronously. The no-trigger case returns a Report
// with Triggered false and a nil error. An error means a migration was
// attempted and failed; the master is then still serving the old placement
// (ApplyMigration has no partial cutover).
func (c *Controller) TriggerNow(ctx context.Context) (Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.checks.Add(1)
	c.inst.Load().checks.Inc()

	rep := Report{Epoch: c.master.Epoch()}
	rep.Decision = c.mon.Evaluate()
	if !rep.Decision.Trigger {
		c.setLast(rep)
		return rep, nil
	}
	rep.Triggered = true
	c.triggers.Add(1)
	c.inst.Load().triggers.Inc()

	err := c.migrate(ctx, &rep)
	if err == nil && !rep.Migrated {
		// Triggered but skipped (benefit gate): cool down so the same
		// window cannot re-trigger every CheckEvery observations.
		c.skips.Add(1)
		c.inst.Load().skips.Inc()
		c.mon.MuteFor(c.cfg.Cooldown)
	}
	c.setLast(rep)
	return rep, err
}

// migrate runs the pipeline under an always-sampled migration trace when a
// tracer is installed (migrations are rare and each one matters); the trace
// lands in the same ring as the query traces.
func (c *Controller) migrate(ctx context.Context, rep *Report) error {
	tr := c.tracer.Load()
	tm := tr.Sample(true)
	root := tm.Start("drift_migration", trace.SpanRef{})
	err := c.runMigration(ctx, rep, tm, root)
	if tm != nil {
		root.Int(trace.KeyEpoch, int64(rep.Epoch))
		root.Int(trace.KeyPartitions, int64(rep.Renamed+rep.Added))
		if err != nil {
			root.Int(trace.KeyError, 1)
		}
		root.End()
		tr.Finish(tm)
	}
	return err
}

// runMigration runs region rebuild → patch → benefit gate → (optional)
// oracle validation → migration. It mutates rep as it goes; rep.Migrated is
// set only after ApplyMigration returns.
func (c *Controller) runMigration(ctx context.Context, rep *Report, tm *trace.T, root trace.SpanRef) error {
	live := c.mon.Window()
	liveBoxes := live.Boxes()

	// The rebuild target: the smallest rectangular subtree containing every
	// out-of-scope query. Clip to the domain first — drifted queries may
	// reach outside it, where there is nothing to reorganize.
	cur := c.cur.Load()
	domain := cur.Root.Desc.MBR()
	region := rep.Decision.Region.Clip(domain)
	target := cur.SubtreeFor(region)
	if target == nil {
		return fmt.Errorf("drift: layout has no tree")
	}

	rsp := tm.Start("rebuild", root)
	newL, diff, payloadRows, err := c.rebuild(cur, target, live)
	if err != nil {
		rsp.Int(trace.KeyError, 1)
		rsp.End()
		return err
	}
	rsp.Int(trace.KeyPartitions, int64(len(diff.Added)))
	rsp.End()
	rep.Renamed, rep.Added, rep.Removed = len(diff.Renamed), len(diff.Added), len(diff.Removed)

	// Benefit gate: the patch must actually cut the live window's modeled
	// scan cost. Rebuilding for out-of-scope queries that the new layout
	// would serve no better only churns the cluster.
	rep.CostBefore = cur.WorkloadCost(liveBoxes, nil)
	rep.CostAfter = newL.WorkloadCost(liveBoxes, nil)
	if rep.CostBefore <= 0 ||
		float64(rep.CostBefore-rep.CostAfter) < c.cfg.MinGain*float64(rep.CostBefore) {
		rep.SkipReason = fmt.Sprintf("benefit gate: window cost %d → %d, below min gain %.0f%%",
			rep.CostBefore, rep.CostAfter, c.cfg.MinGain*100)
		return nil
	}

	bsp := tm.Start("build_payload", root)
	mig, moved, err := c.buildMigration(newL, diff, payloadRows)
	if err != nil {
		bsp.Int(trace.KeyError, 1)
		bsp.End()
		return err
	}
	bsp.Int(trace.KeyBytesRead, moved)
	bsp.End()

	if c.cfg.Validate {
		vsp := tm.Start("validate", root)
		if verr := invariant.CheckDrift(cur, newL, diff, c.cfg.Seed); verr != nil {
			vsp.Int(trace.KeyError, 1)
			vsp.End()
			rep.SkipReason = "drift oracle rejected the patch"
			return fmt.Errorf("drift: patch validation: %w", verr)
		}
		if verr := invariant.CheckCutover(newL, diff, migrationSteps(mig)); verr != nil {
			vsp.Int(trace.KeyError, 1)
			vsp.End()
			rep.SkipReason = "cutover oracle rejected the plan"
			return fmt.Errorf("drift: plan validation: %w", verr)
		}
		vsp.End()
	}

	csp := tm.Start("cutover", root)
	if err := c.master.ApplyMigration(ctx, mig); err != nil {
		csp.Int(trace.KeyError, 1)
		csp.End()
		return err
	}
	csp.End()
	rep.Migrated = true
	rep.Epoch = mig.Epoch
	rep.MovedBytes = moved
	c.migrations.Add(1)
	ins := c.inst.Load()
	ins.migrations.Inc()
	ins.movedBytes.Add(moved)

	// The cluster now serves the patched layout; the monitor's scope
	// re-anchors on what was actually observed, and the old reference keeps
	// the queries the rebuild did not invalidate.
	c.cur.Store(newL)
	c.hist = append(c.hist.Clone(), live...)
	c.mon.Reanchor(c.hist)
	c.mon.MuteFor(c.cfg.Cooldown)
	return nil
}

// rebuild constructs the replacement subtree for target and patches it into
// the current layout. It returns the patched layout, the diff, and the
// full-data row indices of every added partition (the migration payloads).
//
// The pipeline mirrors offline construction at region scale: a seeded
// sample of the region's rows drives core.Build over the live window (plus
// the still-relevant slice of the reference workload), then the full region
// population streams through ingest maintenance so rebuilt partitions
// respect the full-scale row bounds regardless of how the sample skewed.
func (c *Controller) rebuild(cur *layout.Layout, target *layout.Node, live workload.Workload) (*layout.Layout, layout.Diff, map[layout.ID][]int, error) {
	// Every row the cluster routes into the target subtree must come out of
	// the rebuild in exactly one new partition — the migration's row
	// population is defined by old-layout routing, not by geometry, so
	// irregular siblings keep their rows.
	all := make([]int, c.data.NumRows())
	for i := range all {
		all[i] = i
	}
	byPart := cur.RouteIndices(c.data, all)
	var regionRows []int
	for _, leaf := range target.Leaves() {
		regionRows = append(regionRows, byPart[leaf.Part.ID]...)
	}
	if len(regionRows) == 0 {
		return nil, layout.Diff{}, nil, fmt.Errorf("drift: rebuild region holds no rows")
	}

	targetBox := target.Desc.MBR()
	wl := append(live.Clip(targetBox), c.hist.Clip(targetBox)...)

	sample := strideSample(regionRows, c.cfg.BuildSample)
	built := core.Build(c.data, sample, targetBox, wl, core.Params{
		MinRows:     c.cfg.BuildMinRows,
		Delta:       c.cfg.Delta,
		Parallelism: c.cfg.Parallelism,
	})

	// Full-scale pass: stream every region row through the sample-built
	// tree and let ingest maintenance split any partition that exceeds the
	// full-data bounds. Snapshot's FullRows are then exact.
	ing, err := ingest.New(built, nil, ingest.Params{MinRows: c.cfg.MinPartRows, MaxRows: c.cfg.MaxPartRows})
	if err != nil {
		return nil, layout.Diff{}, nil, fmt.Errorf("drift: seeding region ingest: %w", err)
	}
	for _, r := range regionRows {
		ing.Add(c.data.Point(r))
	}
	ing.Maintain()
	if rej := ing.Rejected(); rej > 0 {
		// A region row the replacement cannot route would silently vanish
		// at cutover; refuse to build such a patch.
		return nil, layout.Diff{}, nil, fmt.Errorf("drift: replacement subtree rejected %d region rows", rej)
	}
	repl := ing.Snapshot()

	newL, diff, err := layout.PatchSubtree(cur, target, repl.Root)
	if err != nil {
		return nil, layout.Diff{}, nil, fmt.Errorf("drift: patching layout: %w", err)
	}

	// Row-conservation cross-check: routing the region's rows through the
	// patched layout must land them all in added partitions, with counts
	// matching what the ingest pass recorded. Any mismatch means cutover
	// would lose or invent rows — abort before anything ships.
	newByPart := newL.RouteIndices(c.data, regionRows)
	addedSet := make(map[layout.ID]bool, len(diff.Added))
	payloadRows := make(map[layout.ID][]int, len(diff.Added))
	total := 0
	for _, id := range diff.Added {
		addedSet[id] = true
		rows := newByPart[id]
		if int64(len(rows)) != newL.Parts[id].FullRows {
			return nil, layout.Diff{}, nil, fmt.Errorf("drift: partition %d routes %d rows but carries FullRows=%d",
				id, len(rows), newL.Parts[id].FullRows)
		}
		payloadRows[id] = rows
		total += len(rows)
	}
	if total != len(regionRows) {
		return nil, layout.Diff{}, nil, fmt.Errorf("drift: region rebuild conserves %d of %d rows", total, len(regionRows))
	}
	for id := range newByPart {
		if !addedSet[id] {
			return nil, layout.Diff{}, nil, fmt.Errorf("drift: region row escaped into surviving partition %d", id)
		}
	}
	return newL, diff, payloadRows, nil
}

// buildMigration turns a patched layout + diff into the master's migration
// plan: surviving partitions keep their current replica sets and move zero
// bytes; added partitions are placed round-robin from their ID and ship
// colstore payloads.
func (c *Controller) buildMigration(newL *layout.Layout, diff layout.Diff, payloadRows map[layout.ID][]int) (*dist.Migration, int64, error) {
	rm, err := router.NewMaster(newL, c.data.Names())
	if err != nil {
		return nil, 0, fmt.Errorf("drift: routing patched layout: %w", err)
	}
	curPlace := c.master.Placement()
	nWorkers := c.master.NumWorkers()
	place := make(placement.Replicated, len(newL.Parts))
	entries := make([]dist.MigrationEntry, 0, len(newL.Parts))
	for oldID, newID := range diff.Renamed {
		ws := append([]int(nil), curPlace[oldID]...)
		place[newID] = ws
		entries = append(entries, dist.MigrationEntry{
			ID:      newID,
			Workers: ws,
			ReuseID: oldID,
			Rows:    newL.Parts[newID].FullRows,
		})
	}
	var moved int64
	for _, id := range diff.Added {
		nrep := c.cfg.Replicas
		if nrep > nWorkers {
			nrep = nWorkers
		}
		ws := make([]int, 0, nrep)
		for r := 0; r < nrep; r++ {
			ws = append(ws, (int(id)+r)%nWorkers)
		}
		place[id] = ws
		var buf bytes.Buffer
		tab := colstore.FromDataset(c.data, payloadRows[id], c.cfg.GroupRows)
		if err := tab.Encode(&buf); err != nil {
			return nil, 0, fmt.Errorf("drift: encoding partition %d payload: %w", id, err)
		}
		moved += int64(buf.Len())
		entries = append(entries, dist.MigrationEntry{
			ID:      id,
			Workers: ws,
			ReuseID: -1,
			Payload: buf.Bytes(),
			Rows:    int64(len(payloadRows[id])),
		})
	}
	return &dist.Migration{
		Epoch:    c.master.Epoch() + 1,
		Router:   rm,
		Replicas: place,
		Entries:  entries,
		Renamed:  diff.Renamed,
	}, moved, nil
}

// migrationSteps projects a migration plan into the cutover oracle's view.
func migrationSteps(mig *dist.Migration) []invariant.MigrationStep {
	steps := make([]invariant.MigrationStep, 0, len(mig.Entries))
	for _, e := range mig.Entries {
		s := invariant.MigrationStep{ID: e.ID, Rows: e.Rows}
		if e.ReuseID >= 0 {
			s.Reused = true
			s.OldID = e.ReuseID
		} else {
			s.Bytes = int64(len(e.Payload))
		}
		steps = append(steps, s)
	}
	return steps
}

// strideSample picks at most k of rows with a deterministic even stride
// (rows are already in routing order, which is row order per partition).
func strideSample(rows []int, k int) []int {
	if len(rows) <= k {
		return append([]int(nil), rows...)
	}
	out := make([]int, 0, k)
	stride := float64(len(rows)) / float64(k)
	for i := 0; i < k; i++ {
		out = append(out, rows[int(float64(i)*stride)])
	}
	return out
}

// ObservationBoxes is a small helper for tests and benches: the routed
// ranges of a query against a layout router (what the master's observer
// would report).
func ObservationBoxes(rm *router.Master, sql string) ([]geom.Box, error) {
	plan, err := rm.RouteSQL(sql)
	if err != nil {
		return nil, err
	}
	out := make([]geom.Box, len(plan.Ranges))
	for i, rp := range plan.Ranges {
		out[i] = rp.Range
	}
	return out, nil
}
