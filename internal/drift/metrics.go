package drift

import (
	"math"

	"paw/internal/obs"
)

// Metric names for the drift loop. Counters mirror Controller.Counters plus
// the shipped payload volume; gauges expose the last evaluation's evidence
// (δ′, observed vs baseline cost, out-of-scope count) and the layout epoch
// the controller most recently installed, so a dashboard can watch the scope
// check without calling into the controller.
const (
	MetricDriftChecks     = "drift_checks_total"
	MetricDriftTriggers   = "drift_triggers_total"
	MetricDriftSkips      = "drift_skips_total"
	MetricDriftMigrations = "drift_migrations_total"
	MetricDriftMovedBytes = "drift_moved_bytes_total"

	// MetricDriftDeltaEstimateMicro is the last evaluation's δ′ in millionths
	// of a domain unit (gauges are integral; δ values are small fractions).
	MetricDriftDeltaEstimateMicro = "drift_delta_estimate_micro"
	MetricDriftWindowAvgBytes     = "drift_window_avg_bytes"
	MetricDriftBaselineAvgBytes   = "drift_baseline_avg_bytes"
	MetricDriftOutOfScope         = "drift_out_of_scope_queries"
	MetricDriftEpoch              = "drift_epoch"
)

// driftInstruments holds the controller's registered instruments. The zero
// value (all nil) is the disabled set — every obs instrument is a no-op on a
// nil receiver — so the controller publishes unconditionally.
type driftInstruments struct {
	checks     *obs.Counter
	triggers   *obs.Counter
	skips      *obs.Counter
	migrations *obs.Counter
	movedBytes *obs.Counter

	delta       *obs.Gauge
	windowAvg   *obs.Gauge
	baselineAvg *obs.Gauge
	outOfScope  *obs.Gauge
	epoch       *obs.Gauge
}

// SetMetrics registers the drift instruments on reg and routes the
// controller's telemetry there. Safe to call while the controller is
// attached; a nil registry disables publication (the default).
func (c *Controller) SetMetrics(reg *obs.Registry) {
	c.inst.Store(&driftInstruments{
		checks:     reg.Counter(MetricDriftChecks),
		triggers:   reg.Counter(MetricDriftTriggers),
		skips:      reg.Counter(MetricDriftSkips),
		migrations: reg.Counter(MetricDriftMigrations),
		movedBytes: reg.Counter(MetricDriftMovedBytes),

		delta:       reg.Gauge(MetricDriftDeltaEstimateMicro),
		windowAvg:   reg.Gauge(MetricDriftWindowAvgBytes),
		baselineAvg: reg.Gauge(MetricDriftBaselineAvgBytes),
		outOfScope:  reg.Gauge(MetricDriftOutOfScope),
		epoch:       reg.Gauge(MetricDriftEpoch),
	})
}

// publish pushes one evaluation's evidence to the gauges.
func (ins *driftInstruments) publish(rep Report) {
	// δ′ is +Inf when no reference query matches the window at all (the
	// estimator found no finite matching); clamp so the gauge stays sane —
	// the int64 conversion of an out-of-range float is unspecified.
	d := rep.Decision.DeltaEstimate * 1e6
	switch {
	case math.IsNaN(d) || d < 0:
		ins.delta.Set(0)
	case d >= math.MaxInt64: // float64(MaxInt64) rounds up to 2^63, so >= catches it
		ins.delta.Set(math.MaxInt64)
	default:
		ins.delta.Set(int64(d))
	}
	ins.windowAvg.Set(int64(rep.Decision.WindowAvgBytes))
	ins.baselineAvg.Set(int64(rep.Decision.BaselineAvgBytes))
	ins.outOfScope.Set(int64(rep.Decision.OutOfScope))
	ins.epoch.Set(int64(rep.Epoch))
}
