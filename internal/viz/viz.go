// Package viz renders 2-d partition layouts with query workloads, in SVG
// and ASCII — the case-study pictures of the paper's Figures 13–14:
// partition boundaries in green, query regions in red, irregular-partition
// regions tinted.
package viz

import (
	"fmt"
	"strings"

	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/workload"
)

// PartitionBoxes returns the rectangles to draw for a partition: the box of
// a rectangular descriptor, or the region decomposition of an irregular one.
func PartitionBoxes(p *layout.Partition) []geom.Box {
	switch d := p.Desc.(type) {
	case layout.Rect:
		return []geom.Box{d.Box}
	case layout.Irregular:
		var out []geom.Box
		for _, h := range d.Region().Boxes() {
			out = append(out, h.Box)
		}
		return out
	default:
		return []geom.Box{p.Desc.MBR()}
	}
}

// SVG renders the layout and workload into an SVG document of the given
// pixel size. Only the first two dimensions are drawn.
func SVG(l *layout.Layout, w workload.Workload, dom geom.Box, width, height int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	sx := func(x float64) float64 { return (x - dom.Lo[0]) / (dom.Hi[0] - dom.Lo[0]) * float64(width) }
	sy := func(y float64) float64 { return float64(height) - (y-dom.Lo[1])/(dom.Hi[1]-dom.Lo[1])*float64(height) }
	box := func(b geom.Box, stroke, fill string, sw float64) {
		if b.IsEmpty() {
			return
		}
		x, y := sx(b.Lo[0]), sy(b.Hi[1])
		bw, bh := sx(b.Hi[0])-sx(b.Lo[0]), sy(b.Lo[1])-sy(b.Hi[1])
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" stroke="%s" fill="%s" stroke-width="%.1f"/>`+"\n",
			x, y, bw, bh, stroke, fill, sw)
	}
	for _, p := range l.Parts {
		fill := "none"
		if p.Desc.Kind() == layout.KindIrregular {
			fill = "#e8f8e8"
		}
		for _, b := range PartitionBoxes(p) {
			box(b.Clip(dom), "green", fill, 1.2)
		}
	}
	for _, q := range w {
		box(q.Box.Clip(dom), "red", "none", 1.8)
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// ASCII renders the layout ('+' outlines) and workload ('#' outlines) into a
// character grid.
func ASCII(l *layout.Layout, w workload.Workload, dom geom.Box, width, height int) string {
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	cx := func(x float64) int {
		return clampInt(int((x-dom.Lo[0])/(dom.Hi[0]-dom.Lo[0])*float64(width-1)), 0, width-1)
	}
	cy := func(y float64) int {
		return clampInt(int((dom.Hi[1]-y)/(dom.Hi[1]-dom.Lo[1])*float64(height-1)), 0, height-1)
	}
	outline := func(b geom.Box, ch byte) {
		if b.IsEmpty() {
			return
		}
		x0, x1 := cx(b.Lo[0]), cx(b.Hi[0])
		y0, y1 := cy(b.Hi[1]), cy(b.Lo[1])
		for x := x0; x <= x1; x++ {
			grid[y0][x] = ch
			grid[y1][x] = ch
		}
		for y := y0; y <= y1; y++ {
			grid[y][x0] = ch
			grid[y][x1] = ch
		}
	}
	for _, p := range l.Parts {
		for _, b := range PartitionBoxes(p) {
			outline(b.Clip(dom), '+')
		}
	}
	for _, q := range w {
		outline(q.Box.Clip(dom), '#')
	}
	lines := make([]string, height)
	for i, row := range grid {
		lines[i] = string(row)
	}
	return strings.Join(lines, "\n")
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
