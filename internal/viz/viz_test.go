package viz

import (
	"strings"
	"testing"

	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/workload"
)

func buildPAW(t *testing.T) (*layout.Layout, workload.Workload, geom.Box) {
	t.Helper()
	data := dataset.Uniform(4000, 2, 1)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(10, 2))
	rows := make([]int, 4000)
	for i := range rows {
		rows[i] = i
	}
	l := core.Build(data, rows, dom, hist, core.Params{MinRows: 60, Delta: 0.01})
	l.Route(data)
	return l, hist, dom
}

func TestSVGStructure(t *testing.T) {
	l, hist, dom := buildPAW(t)
	svg := SVG(l, hist, dom, 400, 400)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not a well-formed SVG document")
	}
	greens := strings.Count(svg, `stroke="green"`)
	reds := strings.Count(svg, `stroke="red"`)
	if greens < l.NumPartitions() {
		t.Errorf("drew %d partition rects for %d partitions", greens, l.NumPartitions())
	}
	if reds != len(hist) {
		t.Errorf("drew %d query rects for %d queries", reds, len(hist))
	}
	// Irregular partitions get the tinted fill.
	irr := 0
	for _, p := range l.Parts {
		if p.Desc.Kind() == layout.KindIrregular {
			irr++
		}
	}
	if irr > 0 && !strings.Contains(svg, "#e8f8e8") {
		t.Error("irregular partitions must be tinted")
	}
}

func TestASCIIStructure(t *testing.T) {
	l, hist, dom := buildPAW(t)
	art := ASCII(l, hist, dom, 80, 24)
	lines := strings.Split(art, "\n")
	if len(lines) != 24 {
		t.Fatalf("grid has %d lines", len(lines))
	}
	for i, ln := range lines {
		if len(ln) != 80 {
			t.Fatalf("line %d has width %d", i, len(ln))
		}
	}
	if !strings.Contains(art, "+") {
		t.Error("no partition outlines drawn")
	}
	if !strings.Contains(art, "#") {
		t.Error("no query outlines drawn")
	}
}

func TestPartitionBoxes(t *testing.T) {
	r := layout.NewRect(geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{1, 1}})
	if got := PartitionBoxes(&layout.Partition{Desc: r}); len(got) != 1 {
		t.Errorf("rect yields %d boxes", len(got))
	}
	ir := layout.NewIrregular(
		geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{10, 10}},
		[]geom.Box{{Lo: geom.Point{4, 4}, Hi: geom.Point{6, 6}}},
	)
	if got := PartitionBoxes(&layout.Partition{Desc: ir}); len(got) < 2 {
		t.Errorf("irregular region yields %d boxes", len(got))
	}
}

func TestQueriesOutsideDomainClipped(t *testing.T) {
	l, _, dom := buildPAW(t)
	w := workload.Workload{{Box: geom.Box{Lo: geom.Point{5, 5}, Hi: geom.Point{6, 6}}}}
	// Must not panic or draw out-of-range coordinates.
	svg := SVG(l, w, dom, 100, 100)
	if strings.Count(svg, `stroke="red"`) != 0 {
		t.Error("fully out-of-domain query must be clipped away")
	}
	_ = ASCII(l, w, dom, 40, 12)
}
