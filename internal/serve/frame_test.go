package serve

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, 1000),
	}
	var buf []byte
	for i, p := range payloads {
		buf = AppendFrame(buf, byte(i+1), uint64(i*7+3), p)
	}
	r := bytes.NewReader(buf)
	var hdr [headerLen]byte
	var pbuf []byte
	for i, p := range payloads {
		typ, seq, payload, err := ReadFrame(r, &hdr, pbuf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		pbuf = payload[:0]
		if typ != byte(i+1) || seq != uint64(i*7+3) {
			t.Fatalf("frame %d: typ=%d seq=%d", i, typ, seq)
		}
		if !bytes.Equal(payload, p) {
			t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(payload), len(p))
		}
	}
	if _, _, _, err := ReadFrame(r, &hdr, pbuf); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: err=%v, want EOF", err)
	}
}

// TestFrameCorruptionDetected flips every byte of an encoded frame in turn;
// each flip must surface as ErrCorrupt (header or payload corruption) — the
// CRC covers the whole frame, so no flip may decode cleanly.
func TestFrameCorruptionDetected(t *testing.T) {
	frame := AppendFrame(nil, 7, 42, []byte("serving payload"))
	var hdr [headerLen]byte
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x01
		_, _, _, err := ReadFrame(bytes.NewReader(bad), &hdr, nil)
		if err == nil {
			t.Fatalf("flip at byte %d decoded cleanly", i)
		}
		// A corrupted length field may also surface as an unexpected EOF
		// (payload reads past the buffer); anything else must be ErrCorrupt.
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("flip at byte %d: err=%v, want ErrCorrupt or unexpected EOF", i, err)
		}
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	frame := AppendFrame(nil, 1, 1, []byte("p"))
	// Forge a payload length beyond MaxPayload (CRC no longer matters: the
	// length bound must reject before buffering).
	frame[9] = 0xFF
	frame[10] = 0xFF
	frame[11] = 0xFF
	frame[12] = 0xFF
	var hdr [headerLen]byte
	_, _, _, err := ReadFrame(bytes.NewReader(frame), &hdr, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err=%v, want ErrCorrupt", err)
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	frame := AppendFrame(nil, 1, 1, []byte("truncated"))
	var hdr [headerLen]byte
	_, _, _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-3]), &hdr, nil)
	if err == nil {
		t.Fatal("truncated frame decoded cleanly")
	}
}
