package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Marshaler is a message that can append its binary encoding to a buffer,
// returning the extended slice (the append-style idiom keeps encoding
// allocation-free once the buffer has grown to steady state).
type Marshaler interface {
	AppendWire(buf []byte) []byte
}

// NotSentError reports that a call failed before its request bytes reached
// the wire: the connection was never touched and remains safe to reuse.
// Callers use this to distinguish a clean deadline/cancellation expiry from
// a poisoned stream that must be redialed.
type NotSentError struct{ Err error }

func (e *NotSentError) Error() string { return fmt.Sprintf("serve: request not sent: %v", e.Err) }
func (e *NotSentError) Unwrap() error { return e.Err }

// IsNotSent reports whether err guarantees the request never reached the
// wire (the connection is still clean).
func IsNotSent(err error) bool {
	var ns *NotSentError
	return errors.As(err, &ns)
}

// ClosedError reports a call that failed because the multiplexed connection
// is down; Cause is the connection-level error that killed it.
type ClosedError struct{ Cause error }

func (e *ClosedError) Error() string { return fmt.Sprintf("serve: connection down: %v", e.Cause) }
func (e *ClosedError) Unwrap() error { return e.Cause }

// muxReply hands one response frame from the reader goroutine to a waiter.
// The payload buffer belongs to the mux pool; the waiter returns it after
// decoding.
type muxReply struct {
	typ     byte
	payload []byte
}

// Mux is the client side of one multiplexed binary-protocol connection:
// many goroutines issue Call concurrently and their requests pipeline over
// the single connection, with responses matched back by sequence number. A
// call abandoned by its context simply stops waiting — the late response is
// discarded by sequence on arrival — so deadlines and cancellations never
// poison the stream, unlike a shared codec pair.
type Mux struct {
	c    net.Conn
	seq  atomic.Uint64
	pool sync.Pool // payload buffers handed reader -> waiter

	wmu  sync.Mutex
	wbuf []byte // frame scratch, reused across calls
	pbuf []byte // payload scratch, reused across calls

	mu      sync.Mutex
	waiters map[uint64]chan muxReply
	err     error // set once the connection is down
	done    chan struct{}
}

// NewMux sends the protocol preamble over c and starts the response reader.
// The mux owns c from here on.
func NewMux(c net.Conn) (*Mux, error) {
	if _, err := c.Write(Magic[:]); err != nil {
		c.Close()
		return nil, fmt.Errorf("serve: sending preamble: %w", err)
	}
	m := &Mux{
		c:       c,
		waiters: make(map[uint64]chan muxReply),
		done:    make(chan struct{}),
	}
	m.pool.New = func() any { return []byte(nil) }
	go m.readLoop()
	return m, nil
}

// Dial connects to addr and opens a mux on the connection.
func DialMux(addr string) (*Mux, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewMux(c)
}

// readLoop delivers response frames to their waiters until the connection
// dies; any terminal error fails every in-flight and future call.
func (m *Mux) readLoop() {
	var hdr [headerLen]byte
	for {
		buf := m.pool.Get().([]byte)
		typ, seq, payload, err := ReadFrame(m.c, &hdr, buf)
		if err != nil {
			m.closeWith(err)
			return
		}
		m.mu.Lock()
		w, ok := m.waiters[seq]
		if ok {
			delete(m.waiters, seq)
		}
		m.mu.Unlock()
		if !ok {
			// A late response to an abandoned call: discard by sequence.
			m.pool.Put(payload[:0])
			continue
		}
		w <- muxReply{typ: typ, payload: payload} // buffered; never blocks
	}
}

// closeWith marks the mux down with cause, failing all waiters exactly once.
func (m *Mux) closeWith(cause error) {
	m.mu.Lock()
	if m.err != nil {
		m.mu.Unlock()
		return
	}
	m.err = cause
	waiters := m.waiters
	m.waiters = nil
	close(m.done)
	m.mu.Unlock()
	m.c.Close()
	for _, w := range waiters {
		close(w) // a closed reply channel means "connection down"
	}
}

// Close tears the connection down; in-flight calls fail with a ClosedError.
func (m *Mux) Close() error {
	m.closeWith(errors.New("serve: mux closed"))
	return nil
}

// send frames and writes one request. It returns a NotSentError when ctx
// expired (or the mux was already down) before any byte was written.
func (m *Mux) send(ctx context.Context, typ byte, seq uint64, req Marshaler) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	if err := ctx.Err(); err != nil {
		return &NotSentError{Err: err}
	}
	m.mu.Lock()
	down := m.err
	m.mu.Unlock()
	if down != nil {
		return &ClosedError{Cause: down}
	}
	m.pbuf = req.AppendWire(m.pbuf[:0])
	m.wbuf = AppendFrame(m.wbuf[:0], typ, seq, m.pbuf)
	// A blocked write (peer wedged, TCP buffer full) is bounded by the call
	// deadline; the write deadline is cleared before the next writer runs.
	if d, ok := ctx.Deadline(); ok {
		m.c.SetWriteDeadline(d)
	}
	_, err := m.c.Write(m.wbuf)
	m.c.SetWriteDeadline(time.Time{})
	if err != nil {
		// The frame may be partially written: the stream is unusable.
		err = fmt.Errorf("serve: writing request: %w", err)
		m.closeWith(err)
		return err
	}
	return nil
}

// Call performs one pipelined request/response exchange: encode req, send it
// tagged with a fresh sequence number, and wait for the matching response,
// which is handed to dec (typ is the response frame's type byte; the payload
// is only valid during the callback). Concurrent calls interleave freely.
//
// Error contract: a NotSentError means the connection was never touched; a
// ctx error after the send means the call was abandoned but the connection
// remains healthy (the response will be discarded on arrival); any other
// error means the connection is down and must be redialed.
func (m *Mux) Call(ctx context.Context, typ byte, req Marshaler, dec func(typ byte, payload []byte) error) error {
	seq := m.seq.Add(1)
	w := make(chan muxReply, 1)
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		return &ClosedError{Cause: err}
	}
	m.waiters[seq] = w
	m.mu.Unlock()

	if err := m.send(ctx, typ, seq, req); err != nil {
		m.mu.Lock()
		if m.waiters != nil {
			delete(m.waiters, seq)
		}
		m.mu.Unlock()
		return err
	}

	select {
	case reply, ok := <-w:
		if !ok {
			m.mu.Lock()
			cause := m.err
			m.mu.Unlock()
			return &ClosedError{Cause: cause}
		}
		err := dec(reply.typ, reply.payload)
		m.pool.Put(reply.payload[:0])
		if err != nil {
			// The peer sent a frame this caller cannot decode: framing is
			// intact but the session is broken. Kill it.
			m.closeWith(err)
			return err
		}
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		if m.waiters != nil {
			if _, still := m.waiters[seq]; still {
				delete(m.waiters, seq)
				m.mu.Unlock()
				return ctx.Err()
			}
		}
		m.mu.Unlock()
		// The response raced the cancellation in; prefer delivering it.
		if reply, ok := <-w; ok {
			err := dec(reply.typ, reply.payload)
			m.pool.Put(reply.payload[:0])
			if err != nil {
				m.closeWith(err)
				return err
			}
			return nil
		}
		m.mu.Lock()
		cause := m.err
		m.mu.Unlock()
		return &ClosedError{Cause: cause}
	case <-m.done:
		m.mu.Lock()
		cause := m.err
		m.mu.Unlock()
		return &ClosedError{Cause: cause}
	}
}
