package serve

import (
	"context"
	"errors"
	"sync"
)

// ErrOverloaded is the typed overload error: the serving tier is at its
// in-flight bound and the caller's queue is full. Clients should back off;
// the master maps it to a distinguishable wire code instead of a generic
// failure so load shedding is visible as such.
var ErrOverloaded = errors.New("serve: overloaded")

// Admission bounds the number of queries executing concurrently and fair-
// queues the excess per client: when a slot frees, waiting clients are
// served round-robin — one request per client per turn — so a flood from
// one client cannot starve the others. Beyond a bounded per-client queue,
// requests are rejected immediately with ErrOverloaded.
type Admission struct {
	mu          sync.Mutex
	maxInflight int
	maxQueued   int // per client
	inflight    int
	queues      map[string][]chan struct{}
	ring        []string // round-robin order of clients with waiters

	admitted int64
	rejected int64
	waited   int64
}

// NewAdmission returns a controller admitting at most maxInflight concurrent
// holders with at most maxQueuedPerClient waiters per client (minimums 1 and
// 0 respectively).
func NewAdmission(maxInflight, maxQueuedPerClient int) *Admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueuedPerClient < 0 {
		maxQueuedPerClient = 0
	}
	return &Admission{
		maxInflight: maxInflight,
		maxQueued:   maxQueuedPerClient,
		queues:      make(map[string][]chan struct{}),
	}
}

// grantNextLocked hands the caller's slot to the next waiter in round-robin
// client order; it reports whether the slot was transferred.
func (a *Admission) grantNextLocked() bool {
	for len(a.ring) > 0 {
		cl := a.ring[0]
		a.ring = a.ring[1:]
		q := a.queues[cl]
		if len(q) == 0 {
			delete(a.queues, cl) // stale ring entry (waiter cancelled)
			continue
		}
		ch := q[0]
		if len(q) == 1 {
			delete(a.queues, cl)
		} else {
			a.queues[cl] = q[1:]
			a.ring = append(a.ring, cl) // back of the ring: one per turn
		}
		close(ch)
		return true
	}
	return false
}

// release returns a slot: either transferring it to a queued waiter or
// decrementing the in-flight count.
func (a *Admission) release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.grantNextLocked() {
		a.inflight--
	}
}

// Acquire admits one request for client, blocking in the client's fair
// queue while the tier is saturated. It returns the release function the
// caller must invoke when the request finishes, or ErrOverloaded when the
// client's queue is full, or ctx's error when the wait is abandoned.
func (a *Admission) Acquire(ctx context.Context, client string) (release func(), err error) {
	a.mu.Lock()
	if a.inflight < a.maxInflight && len(a.queues) == 0 {
		a.inflight++
		a.admitted++
		a.mu.Unlock()
		return a.release, nil
	}
	if len(a.queues[client]) >= a.maxQueued {
		a.rejected++
		a.mu.Unlock()
		return nil, ErrOverloaded
	}
	ch := make(chan struct{})
	q := a.queues[client]
	a.queues[client] = append(q, ch)
	if len(q) == 0 {
		a.ring = append(a.ring, client)
	}
	a.waited++
	a.mu.Unlock()

	select {
	case <-ch:
		a.mu.Lock()
		a.admitted++
		a.mu.Unlock()
		return a.release, nil
	case <-ctx.Done():
		a.mu.Lock()
		q := a.queues[client]
		for i, w := range q {
			if w == ch {
				a.queues[client] = append(q[:i:i], q[i+1:]...)
				if len(a.queues[client]) == 0 {
					delete(a.queues, client)
				}
				a.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		a.mu.Unlock()
		// The grant raced the cancellation: the slot is ours and must be
		// handed back before reporting the abandonment.
		a.release()
		return nil, ctx.Err()
	}
}

// Stats returns cumulative admission counts: requests admitted, requests
// rejected with ErrOverloaded, and requests that waited in a queue.
func (a *Admission) Stats() (admitted, rejected, waited int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.admitted, a.rejected, a.waited
}

// Inflight returns the number of currently admitted holders.
func (a *Admission) Inflight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}
