// Package serve is the high-throughput serving substrate under the
// distributed path (DESIGN.md §12): a length-prefixed binary wire protocol
// with preallocated frame buffers, a connection multiplexer that pipelines
// many in-flight requests over one TCP connection with sequence-tagged
// responses, a frame server that executes requests concurrently per
// connection, and the serving-side building blocks the master and workers
// compose — singleflight scan sharing, a bounded LRU cache, and fair
// admission control.
//
// The package is payload-agnostic: messages are opaque byte slices plus a
// one-byte type tag. internal/dist supplies the binary codecs for its
// request/response structs and keeps the historical gob codec path alive as
// the differential oracle for this one.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic is the 4-byte connection preamble a binary-protocol dialer sends
// before its first frame. Servers that also speak the legacy gob protocol
// peek these bytes to pick the codec for the session: a gob stream's first
// bytes are a type-descriptor message that never matches.
var Magic = [4]byte{'P', 'A', 'W', '1'}

// Frame layout (all integers little-endian):
//
//	type    uint8   message kind (package-user defined)
//	seq     uint64  request sequence, echoed verbatim in the response
//	length  uint32  payload byte count
//	crc     uint32  IEEE CRC-32 over type|seq|length|payload
//	payload length bytes
//
// The CRC covers the header fields as well as the payload, so a corrupted
// length or sequence is detected instead of desynchronizing the stream.
const (
	headerLen = 1 + 8 + 4 + 4
	crcOffset = 1 + 8 + 4

	// MaxPayload bounds a frame's payload; longer lengths are treated as
	// stream corruption (the responses this protocol carries are small
	// aggregates, not row data).
	MaxPayload = 64 << 20
)

// ErrCorrupt reports a frame that failed validation: the stream's framing
// can no longer be trusted and the connection must be dropped.
var ErrCorrupt = errors.New("serve: corrupt frame")

// AppendFrame appends one encoded frame to buf and returns the extended
// slice. The caller owns buf; reusing it across calls makes framing
// allocation-free in steady state.
func AppendFrame(buf []byte, typ byte, seq uint64, payload []byte) []byte {
	off := len(buf)
	buf = append(buf, typ)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, 0) // crc placeholder
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[off : off+crcOffset])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(buf[off+crcOffset:], crc)
	return buf
}

// ReadFrame reads one frame from r, appending the payload into payloadBuf
// (grown as needed) and returning the possibly-reallocated buffer. A
// validation failure returns ErrCorrupt (wrapped); the stream must then be
// abandoned.
func ReadFrame(r io.Reader, hdr *[headerLen]byte, payloadBuf []byte) (typ byte, seq uint64, payload []byte, err error) {
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	typ = hdr[0]
	seq = binary.LittleEndian.Uint64(hdr[1:])
	n := binary.LittleEndian.Uint32(hdr[9:])
	want := binary.LittleEndian.Uint32(hdr[crcOffset:])
	if n > MaxPayload {
		return 0, 0, nil, fmt.Errorf("%w: payload length %d", ErrCorrupt, n)
	}
	if cap(payloadBuf) < int(n) {
		payloadBuf = make([]byte, n)
	}
	payload = payloadBuf[:n]
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, fmt.Errorf("serve: reading %d-byte payload: %w", n, err)
	}
	crc := crc32.ChecksumIEEE(hdr[:crcOffset])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if crc != want {
		return 0, 0, nil, fmt.Errorf("%w: checksum mismatch on seq %d", ErrCorrupt, seq)
	}
	return typ, seq, payload, nil
}
