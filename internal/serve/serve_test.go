package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	l := NewLRU[string, int](2)
	l.Put("a", 1)
	l.Put("b", 2)
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("a: %d %v", v, ok)
	}
	l.Put("c", 3) // evicts b: a was refreshed by the Get
	if _, ok := l.Get("b"); ok {
		t.Fatal("b must be evicted")
	}
	for k, want := range map[string]int{"a": 1, "c": 3} {
		if v, ok := l.Get(k); !ok || v != want {
			t.Fatalf("%s: %d %v", k, v, ok)
		}
	}
	if l.Len() != 2 {
		t.Fatalf("len=%d", l.Len())
	}
}

func TestLRUUpdateExistingKey(t *testing.T) {
	l := NewLRU[string, int](2)
	l.Put("a", 1)
	l.Put("a", 10)
	if l.Len() != 1 {
		t.Fatalf("len=%d, want 1 (update, not insert)", l.Len())
	}
	if v, _ := l.Get("a"); v != 10 {
		t.Fatalf("a=%d", v)
	}
}

func TestLRUInvalidateKeepsStats(t *testing.T) {
	l := NewLRU[string, int](4)
	l.Put("a", 1)
	l.Get("a")
	l.Get("miss")
	l.Invalidate()
	if l.Len() != 0 {
		t.Fatalf("len after invalidate = %d", l.Len())
	}
	if _, ok := l.Get("a"); ok {
		t.Fatal("a must be gone")
	}
	hits, misses := l.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = %d/%d, want 1/2", hits, misses)
	}
}

func TestFlightCoalescesConcurrentCalls(t *testing.T) {
	var f Flight[int]
	var execs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]int, waiters)
	sharedCount := atomic.Int64{}

	wg.Add(1)
	go func() {
		defer wg.Done()
		v, shared, err := f.Do("k", func() (int, error) {
			execs.Add(1)
			close(started)
			<-release
			return 42, nil
		})
		if err != nil || shared {
			t.Errorf("leader: v=%d shared=%v err=%v", v, shared, err)
		}
		results[0] = v
	}()
	<-started
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := f.Do("k", func() (int, error) {
				execs.Add(1)
				return -1, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = v
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the waiters attach
	close(release)
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Fatalf("executions = %d, want 1", n)
	}
	if n := sharedCount.Load(); n != waiters-1 {
		t.Fatalf("shared = %d, want %d", n, waiters-1)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("results[%d] = %d", i, v)
		}
	}
}

func TestFlightDistinctKeysRunIndependently(t *testing.T) {
	var f Flight[string]
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			v, shared, err := f.Do(key, func() (string, error) { return key, nil })
			if err != nil || shared || v != key {
				t.Errorf("key %s: v=%q shared=%v err=%v", key, v, shared, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestFlightErrorSharedWithWaiters(t *testing.T) {
	var f Flight[int]
	boom := errors.New("boom")
	_, _, err := f.Do("k", func() (int, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
	// Completed calls are dropped: a new Do re-executes.
	v, shared, err := f.Do("k", func() (int, error) { return 7, nil })
	if err != nil || shared || v != 7 {
		t.Fatalf("second call: v=%d shared=%v err=%v", v, shared, err)
	}
}

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(2, 1)
	r1, err := a.Acquire(context.Background(), "c1")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background(), "c2")
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Inflight(); got != 2 {
		t.Fatalf("inflight=%d", got)
	}
	r1()
	r2()
	if got := a.Inflight(); got != 0 {
		t.Fatalf("inflight after release=%d", got)
	}
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	a := NewAdmission(1, 1)
	release, err := a.Acquire(context.Background(), "hog")
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the hog's queue...
	waiterDone := make(chan error, 1)
	go func() {
		r, err := a.Acquire(context.Background(), "hog")
		if err == nil {
			r()
		}
		waiterDone <- err
	}()
	for {
		if _, _, waited := a.Stats(); waited == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// ...the second is shed with the typed overload error.
	if _, err := a.Acquire(context.Background(), "hog"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err=%v, want ErrOverloaded", err)
	}
	release()
	if err := <-waiterDone; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	_, rejected, _ := a.Stats()
	if rejected != 1 {
		t.Fatalf("rejected=%d", rejected)
	}
}

// TestAdmissionFairRoundRobin: with one slot and two clients queueing — one
// flooding, one sending a single request — the single request is granted
// within two turns, not after the flood drains.
func TestAdmissionFairRoundRobin(t *testing.T) {
	a := NewAdmission(1, 16)
	hold, err := a.Acquire(context.Background(), "warm")
	if err != nil {
		t.Fatal(err)
	}

	type grant struct {
		client string
		rel    func()
	}
	grants := make(chan grant, 16)
	enqueue := func(client string, n int) {
		for i := 0; i < n; i++ {
			go func() {
				r, err := a.Acquire(context.Background(), client)
				if err != nil {
					t.Errorf("%s: %v", client, err)
					return
				}
				grants <- grant{client, r}
			}()
			// Order the flood's arrival before moving on so the queue
			// state is deterministic.
			for {
				if _, _, waited := a.Stats(); int(waited) >= i+1 {
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	enqueue("flood", 8)
	// The single light client arrives last.
	light := make(chan func(), 1)
	go func() {
		r, err := a.Acquire(context.Background(), "light")
		if err != nil {
			t.Errorf("light: %v", err)
			return
		}
		light <- r
	}()
	for {
		if _, _, waited := a.Stats(); waited >= 9 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	hold() // start draining: grants alternate flood, light, flood, ...
	var order []string
	for len(order) < 3 {
		select {
		case g := <-grants:
			order = append(order, g.client)
			g.rel()
		case r := <-light:
			order = append(order, "light")
			r()
		case <-time.After(2 * time.Second):
			t.Fatalf("stalled after %v", order)
		}
	}
	// The light client must appear within the first two grants (round-robin),
	// not behind the 8-deep flood.
	if order[0] != "light" && order[1] != "light" {
		t.Fatalf("light client starved: grant order %v", order)
	}
	// Drain the rest: 9 waiters total, 3 granted above.
	for i := 0; i < 6; i++ {
		select {
		case g := <-grants:
			g.rel()
		case <-time.After(2 * time.Second):
			t.Fatal("flood did not drain")
		}
	}
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := NewAdmission(1, 4)
	release, err := a.Acquire(context.Background(), "hog")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, "other")
		errc <- err
	}()
	for {
		if _, _, waited := a.Stats(); waited == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want Canceled", err)
	}
	// The cancelled waiter must not leak its queue slot: a release must not
	// grant to it, and the tier must stay usable.
	release()
	r, err := a.Acquire(context.Background(), "next")
	if err != nil {
		t.Fatalf("after cancelled waiter: %v", err)
	}
	r()
	if got := a.Inflight(); got != 0 {
		t.Fatalf("inflight=%d", got)
	}
}
