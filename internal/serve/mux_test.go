package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// blob is the trivial test message: its encoding is itself.
type blob []byte

func (b blob) AppendWire(buf []byte) []byte { return append(buf, b...) }

// startServer runs a frame server for every accepted connection (consuming
// the protocol preamble first) and returns its address. The server shuts
// down via t.Cleanup.
func startServer(t *testing.T, maxInflight int, h Handler) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				var magic [4]byte
				if _, err := io.ReadFull(c, magic[:]); err != nil || magic != Magic {
					return
				}
				ServeConn(c, c, maxInflight, h)
			}()
		}
	}()
	t.Cleanup(func() {
		l.Close()
		wg.Wait()
	})
	return l.Addr().String()
}

// echoHandler replies with the request payload under typ+1.
func echoHandler(typ byte, payload []byte) (byte, Marshaler, error) {
	return typ + 1, blob(append([]byte(nil), payload...)), nil
}

func TestMuxConcurrentCallsPipeline(t *testing.T) {
	addr := startServer(t, 32, echoHandler)
	m, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	const goroutines, calls = 16, 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				want := []byte(fmt.Sprintf("g%d-call%d", g, i))
				var got []byte
				err := m.Call(context.Background(), 5, blob(want), func(typ byte, payload []byte) error {
					if typ != 6 {
						return fmt.Errorf("resp typ=%d", typ)
					}
					got = append(got[:0], payload...)
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("echo mismatch: %q != %q", got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMuxDeadlineDoesNotPoisonConnection: a call abandoned by its deadline
// leaves the mux healthy — the late response is discarded by sequence and a
// subsequent call on the same connection succeeds. This is the property the
// old one-codec-per-call transport lacked.
func TestMuxDeadlineDoesNotPoisonConnection(t *testing.T) {
	block := make(chan struct{})
	addr := startServer(t, 8, func(typ byte, payload []byte) (byte, Marshaler, error) {
		if bytes.Equal(payload, []byte("slow")) {
			<-block
		}
		return typ, blob(append([]byte(nil), payload...)), nil
	})
	m, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err = m.Call(ctx, 1, blob("slow"), func(byte, []byte) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow call: err=%v, want deadline exceeded", err)
	}
	if IsNotSent(err) {
		t.Fatal("the request was written; the expiry must not be reported as not-sent")
	}
	close(block) // unwedge the server; its late response must be discarded

	var got []byte
	err = m.Call(context.Background(), 2, blob("after"), func(_ byte, payload []byte) error {
		got = append(got[:0], payload...)
		return nil
	})
	if err != nil {
		t.Fatalf("call after abandoned call: %v", err)
	}
	if string(got) != "after" {
		t.Fatalf("got %q", got)
	}
}

// TestMuxNotSentOnExpiredContext: a context already done when the call
// starts must fail with NotSentError without touching the stream.
func TestMuxNotSentOnExpiredContext(t *testing.T) {
	addr := startServer(t, 8, echoHandler)
	m, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = m.Call(ctx, 1, blob("never"), func(byte, []byte) error { return nil })
	if !IsNotSent(err) {
		t.Fatalf("err=%v, want NotSentError", err)
	}
	// The connection must still work.
	if err := m.Call(context.Background(), 1, blob("ok"), func(byte, []byte) error { return nil }); err != nil {
		t.Fatalf("call after not-sent: %v", err)
	}
}

// TestMuxConnectionDownFailsInflight: killing the server connection fails
// in-flight and future calls with ClosedError (never NotSentError — the
// in-flight request did reach the wire).
func TestMuxConnectionDownFailsInflight(t *testing.T) {
	conns := make(chan net.Conn, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		var magic [4]byte
		io.ReadFull(c, magic[:])
		conns <- c // never answer; the test kills the conn mid-call
	}()
	m, err := DialMux(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	go func() {
		c := <-conns
		time.Sleep(20 * time.Millisecond)
		c.Close()
	}()
	err = m.Call(context.Background(), 1, blob("doomed"), func(byte, []byte) error { return nil })
	var ce *ClosedError
	if !errors.As(err, &ce) {
		t.Fatalf("err=%v, want ClosedError", err)
	}
	if IsNotSent(err) {
		t.Fatal("a sent request must not report not-sent")
	}
	// Future calls fail fast the same way.
	err = m.Call(context.Background(), 1, blob("late"), func(byte, []byte) error { return nil })
	if !errors.As(err, &ce) {
		t.Fatalf("post-close err=%v, want ClosedError", err)
	}
}

// TestMuxCorruptStreamKillsConnection: garbage on the wire fails the session
// rather than desynchronizing it.
func TestMuxCorruptStreamKillsConnection(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		var magic [4]byte
		io.ReadFull(c, magic[:])
		var hdr [headerLen]byte
		if _, _, _, err := ReadFrame(c, &hdr, nil); err != nil {
			return
		}
		// Answer with a frame whose CRC is wrong.
		frame := AppendFrame(nil, 2, 1, []byte("resp"))
		frame[len(frame)-1] ^= 0xFF
		c.Write(frame)
	}()
	m, err := DialMux(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Call(context.Background(), 1, blob("req"), func(byte, []byte) error { return nil })
	if err == nil {
		t.Fatal("corrupt response must fail the call")
	}
	var ce *ClosedError
	if !errors.As(err, &ce) {
		t.Fatalf("err=%v, want ClosedError (stream abandoned)", err)
	}
	if !errors.Is(ce.Cause, ErrCorrupt) {
		t.Fatalf("cause=%v, want ErrCorrupt", ce.Cause)
	}
}

// TestServeConnBoundsInflight: the server never runs more than maxInflight
// handlers at once, even when many more requests are pipelined.
func TestServeConnBoundsInflight(t *testing.T) {
	const bound = 4
	var mu sync.Mutex
	inflight, peak := 0, 0
	release := make(chan struct{})
	addr := startServer(t, bound, func(typ byte, payload []byte) (byte, Marshaler, error) {
		mu.Lock()
		inflight++
		if inflight > peak {
			peak = inflight
		}
		mu.Unlock()
		<-release
		mu.Lock()
		inflight--
		mu.Unlock()
		return typ, blob(nil), nil
	})
	m, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	const total = 16
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Call(context.Background(), 1, blob("x"), func(byte, []byte) error { return nil })
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the pipeline fill
	close(release)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if peak > bound {
		t.Fatalf("peak in-flight handlers = %d, want <= %d", peak, bound)
	}
	if peak == 0 {
		t.Fatal("no handler ever ran")
	}
}
