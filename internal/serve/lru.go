package serve

import "sync"

// lruEntry is one node of the cache's intrusive recency list.
type lruEntry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *lruEntry[K, V]
}

// LRU is a bounded, mutex-guarded least-recently-used cache with hit/miss
// accounting. The zero value is unusable; construct with NewLRU. It backs
// the master's result and descriptor caches (DESIGN.md §12): both need hard
// bounds (a serving tier must not grow with the query universe) and explicit
// generation-style invalidation on layout or placement change.
type LRU[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[K]*lruEntry[K, V]
	head     *lruEntry[K, V] // most recently used
	tail     *lruEntry[K, V] // eviction candidate
	hits     int64
	misses   int64
}

// NewLRU returns a cache bounded to capacity entries (capacity < 1 pins the
// bound to 1).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		capacity: capacity,
		entries:  make(map[K]*lruEntry[K, V], capacity),
	}
}

// unlink removes e from the recency list.
func (c *LRU[K, V]) unlink(e *lruEntry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (c *LRU[K, V]) pushFront(e *lruEntry[K, V]) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// Get returns the cached value for key, refreshing its recency.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	if c.head != e {
		c.unlink(e)
		c.pushFront(e)
	}
	return e.val, true
}

// Put inserts or refreshes key, evicting the least recently used entry when
// the cache is full.
func (c *LRU[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.val = val
		if c.head != e {
			c.unlink(e)
			c.pushFront(e)
		}
		return
	}
	if len(c.entries) >= c.capacity {
		ev := c.tail
		c.unlink(ev)
		delete(c.entries, ev.key)
	}
	e := &lruEntry[K, V]{key: key, val: val}
	c.entries[key] = e
	c.pushFront(e)
}

// Invalidate empties the cache (layout or placement changed: every cached
// result and descriptor is stale). Hit/miss counters survive.
func (c *LRU[K, V]) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[K]*lruEntry[K, V], c.capacity)
	c.head, c.tail = nil, nil
}

// Sweep visits every entry (in no particular order) and lets fn decide its
// fate: return (v, true) to keep the entry with value v (possibly rewritten
// in place), or (_, false) to drop it. Recency order and the hit/miss
// counters are preserved for the survivors. It backs the master's
// per-partition cache invalidation at migration cutover: entries touching
// only renamed partitions are rewritten, entries touching the rebuilt region
// are dropped, and everything else survives — wholesale Invalidate would
// throw the whole working set away for a localized layout change.
func (c *LRU[K, V]) Sweep(fn func(K, V) (V, bool)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for e := c.head; e != nil; {
		next := e.next
		if v, keep := fn(e.key, e.val); keep {
			e.val = v
		} else {
			c.unlink(e)
			delete(c.entries, e.key)
		}
		e = next
	}
}

// Len returns the current entry count.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the cumulative hit/miss counts.
func (c *LRU[K, V]) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
