package serve

import (
	"fmt"
	"testing"
)

func TestLRUSweepRewritesAndDrops(t *testing.T) {
	c := NewLRU[string, int](8)
	for i := 0; i < 6; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	// Rewrite even values in place, drop odd ones.
	c.Sweep(func(k string, v int) (int, bool) {
		if v%2 == 1 {
			return 0, false
		}
		return v * 10, true
	})
	if got := c.Len(); got != 3 {
		t.Fatalf("len after sweep = %d, want 3", got)
	}
	for i := 0; i < 6; i++ {
		v, ok := c.Get(fmt.Sprintf("k%d", i))
		if i%2 == 1 {
			if ok {
				t.Fatalf("dropped entry k%d still cached", i)
			}
			continue
		}
		if !ok || v != i*10 {
			t.Fatalf("k%d = %d,%v, want %d,true", i, v, ok, i*10)
		}
	}
}

func TestLRUSweepPreservesRecencyAndStats(t *testing.T) {
	c := NewLRU[int, int](3)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	c.Get(1) // recency now 1,3,2 (most→least)
	h0, m0 := c.Stats()

	c.Sweep(func(k, v int) (int, bool) { return v, true })

	if h, m := c.Stats(); h != h0 || m != m0 {
		t.Fatalf("sweep changed stats: %d/%d -> %d/%d", h0, m0, h, m)
	}
	// A new insert must evict the least recently used survivor (2).
	c.Put(4, 4)
	if _, ok := c.Get(2); ok {
		t.Fatal("sweep lost the recency order: 2 should have been evicted")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %d wrongly evicted", k)
		}
	}
}

func TestLRUSweepAll(t *testing.T) {
	c := NewLRU[int, int](4)
	for i := 0; i < 4; i++ {
		c.Put(i, i)
	}
	c.Sweep(func(k, v int) (int, bool) { return 0, false })
	if got := c.Len(); got != 0 {
		t.Fatalf("len after drop-all sweep = %d, want 0", got)
	}
	// The empty cache still works.
	c.Put(9, 9)
	if v, ok := c.Get(9); !ok || v != 9 {
		t.Fatal("cache broken after drop-all sweep")
	}
}
