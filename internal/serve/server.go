package serve

import (
	"fmt"
	"io"
	"net"
	"sync"
)

// Handler executes one request frame and returns the response message. It
// is called from per-request goroutines, so implementations must be safe
// for concurrent use. The payload is only valid for the duration of the
// call. A non-nil error is session-fatal: no response can be produced and
// the connection is dropped (per-request failures travel inside the
// response message instead).
type Handler func(typ byte, payload []byte) (respTyp byte, resp Marshaler, err error)

// ServeConn runs one binary-protocol session: frames are read from r
// (which wraps c and may hold peeked preamble bytes), each request is
// dispatched to h on its own goroutine — at most maxInflight concurrently —
// and responses are written back tagged with the request's sequence number,
// in completion order rather than arrival order. That is what lets a
// session pipeline: a cheap request is never stuck behind an expensive one.
//
// ServeConn returns when the connection dies or a handler reports a fatal
// error; it drains its request goroutines before returning. The caller
// still owns c and closes it.
func ServeConn(c net.Conn, r io.Reader, maxInflight int, h Handler) error {
	if maxInflight < 1 {
		maxInflight = 1
	}
	var (
		wmu  sync.Mutex
		wbuf []byte
		pbuf []byte
		wg   sync.WaitGroup
		pool = sync.Pool{New: func() any { return []byte(nil) }}

		emu  sync.Mutex
		ferr error // first fatal error (handler or response write)
	)
	fatal := func(err error) {
		emu.Lock()
		if ferr == nil {
			ferr = err
		}
		emu.Unlock()
		c.Close() // unblocks the read loop and any blocked writer
	}
	sem := make(chan struct{}, maxInflight)
	var hdr [headerLen]byte
	for {
		buf := pool.Get().([]byte)
		typ, seq, payload, err := ReadFrame(r, &hdr, buf)
		if err != nil {
			wg.Wait()
			emu.Lock()
			defer emu.Unlock()
			if ferr != nil {
				return ferr
			}
			return err
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(typ byte, seq uint64, payload []byte) {
			defer func() {
				pool.Put(payload[:0])
				<-sem
				wg.Done()
			}()
			respTyp, resp, herr := h(typ, payload)
			if herr != nil {
				fatal(fmt.Errorf("serve: handler for frame type %d: %w", typ, herr))
				return
			}
			wmu.Lock()
			pbuf = resp.AppendWire(pbuf[:0])
			wbuf = AppendFrame(wbuf[:0], respTyp, seq, pbuf)
			_, werr := c.Write(wbuf)
			wmu.Unlock()
			if werr != nil {
				fatal(werr)
			}
		}(typ, seq, payload)
	}
}
