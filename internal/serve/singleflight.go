package serve

import "sync"

// flightCall is one in-flight computation waiters coalesce onto.
type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Flight coalesces concurrent computations of the same key into a single
// execution whose result fans out to every waiter — the scan-sharing
// primitive: queries hitting the same (partition, predicate-class) while a
// scan is running share that one kernel pass instead of re-reading the data.
// Unlike a cache, a completed call's result is dropped immediately; only
// temporally-overlapping callers share (the result cache layer above decides
// what to keep).
type Flight[V any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[V]
}

// Do executes fn for key, unless an execution for key is already in flight,
// in which case it waits for and returns that execution's result. shared
// reports whether this caller piggybacked on another's execution.
func (f *Flight[V]) Do(key string, fn func() (V, error)) (v V, shared bool, err error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[string]*flightCall[V])
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	c.val, c.err = fn()

	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}
