// Package adaptive implements an online, query-driven repartitioner in the
// style of AQWA (Aly et al., PVLDB'15) and Amoeba (Shanbhag et al., SoCC'17)
// — the adaptive techniques the paper positions against in §II-A. Partitions
// are split incrementally as queries arrive: every query is charged its scan
// cost, each partition accumulates "waste" (bytes scanned that were not part
// of any result), and a partition whose waste exceeds a multiple of its size
// is split at the best recent-query boundary — paying the full rewrite cost
// of that partition, which is exactly the update overhead the paper argues
// PAW avoids when workloads vary only within a bounded scope.
package adaptive

import (
	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/qdtree"
)

// Params configures the online partitioner.
type Params struct {
	// MinRows is bmin in dataset rows: splits never create smaller pieces.
	MinRows int
	// SplitFactor triggers a split when a partition's accumulated waste
	// exceeds SplitFactor × its size. Lower = more eager repartitioning.
	// Defaults to 2.
	SplitFactor float64
	// HistoryLen is how many recent queries each partition remembers as
	// split candidates. Defaults to 16.
	HistoryLen int
}

func (p Params) withDefaults() Params {
	if p.MinRows < 1 {
		p.MinRows = 1
	}
	if p.SplitFactor <= 0 {
		p.SplitFactor = 2
	}
	if p.HistoryLen < 1 {
		p.HistoryLen = 16
	}
	return p
}

// Partitioner is the online state.
type Partitioner struct {
	data  *dataset.Dataset
	p     Params
	parts []*part

	// CumulativeScanBytes is the total scan I/O charged to queries so far.
	CumulativeScanBytes int64
	// CumulativeWriteBytes is the total repartitioning I/O (rewritten
	// partitions) paid so far.
	CumulativeWriteBytes int64
	// Splits counts repartitioning events.
	Splits int
}

type part struct {
	box    geom.Box
	rows   []int
	waste  int64
	recent []geom.Box
}

func (pt *part) bytes(rowBytes int64) int64 { return int64(len(pt.rows)) * rowBytes }

// New starts with a single partition holding the whole dataset — the
// adaptive methods' cold start (no workload knowledge).
func New(data *dataset.Dataset, p Params) *Partitioner {
	p = p.withDefaults()
	rows := make([]int, data.NumRows())
	for i := range rows {
		rows[i] = i
	}
	return &Partitioner{
		data:  data,
		p:     p,
		parts: []*part{{box: data.Domain(), rows: rows}},
	}
}

// NumPartitions returns the current partition count.
func (a *Partitioner) NumPartitions() int { return len(a.parts) }

// Query processes one arriving query: charges its scan cost, updates waste
// accounting, and performs any triggered repartitioning (whose write cost is
// charged separately). It returns the scan and repartition bytes of this
// step.
func (a *Partitioner) Query(q geom.Box) (scanBytes, writeBytes int64) {
	rowBytes := a.data.RowBytes()
	var touched []*part
	for _, pt := range a.parts {
		if !pt.box.Intersects(q) {
			continue
		}
		touched = append(touched, pt)
		scanBytes += pt.bytes(rowBytes)
		// Waste: scanned bytes minus the result bytes inside this part.
		matched := int64(a.data.CountInBox(q, pt.rows)) * rowBytes
		pt.waste += pt.bytes(rowBytes) - matched
		pt.recent = append(pt.recent, q.Clone())
		if len(pt.recent) > a.p.HistoryLen {
			pt.recent = pt.recent[1:]
		}
	}
	a.CumulativeScanBytes += scanBytes
	// Repartition the touched partitions whose waste crossed the threshold.
	for _, pt := range touched {
		if float64(pt.waste) <= a.p.SplitFactor*float64(pt.bytes(rowBytes)) {
			continue
		}
		if w := a.split(pt); w > 0 {
			writeBytes += w
		} else {
			pt.waste = 0 // unsplittable: stop re-triggering every query
		}
	}
	a.CumulativeWriteBytes += writeBytes
	return scanBytes, writeBytes
}

// split replaces pt with two children cut at the best recent-query boundary,
// returning the rewrite cost (the partition's full size) or 0 when no
// admissible cut exists.
func (a *Partitioner) split(pt *part) int64 {
	if len(pt.rows) < 2*a.p.MinRows || len(pt.recent) == 0 {
		return 0
	}
	queries := clipAll(pt.recent, pt.box)
	cc, ok := qdtree.BestCut(a.data, pt.box, pt.rows, queries, nil, a.p.MinRows, nil)
	if !ok {
		return 0
	}
	cut := cc.Cut
	left, right := qdtree.SplitRowsN(a.data, pt.rows, cut, cc.LeftRows)
	lbox, rbox := cut.Apply(pt.box)
	cost := pt.bytes(a.data.RowBytes())
	l := &part{box: lbox, rows: left, recent: clipAll(pt.recent, lbox)}
	r := &part{box: rbox, rows: right, recent: clipAll(pt.recent, rbox)}
	for i, existing := range a.parts {
		if existing == pt {
			a.parts[i] = l
			break
		}
	}
	a.parts = append(a.parts, r)
	a.Splits++
	return cost
}

func clipAll(queries []geom.Box, box geom.Box) []geom.Box {
	var out []geom.Box
	for _, q := range queries {
		if inter, ok := q.Intersection(box); ok {
			out = append(out, inter)
		}
	}
	return out
}

// Layout snapshots the current partitions as a flat, fully routed layout
// (for cost evaluation against the static methods).
func (a *Partitioner) Layout() *layout.Layout {
	root := &layout.Node{Desc: layout.NewRect(a.data.Domain())}
	for _, pt := range a.parts {
		d := layout.NewRect(pt.box)
		root.Children = append(root.Children, &layout.Node{
			Desc: d,
			Part: &layout.Partition{Desc: d, FullRows: int64(len(pt.rows))},
		})
	}
	l := layout.Seal("adaptive", root, a.data.RowBytes())
	l.TotalBytes = a.data.TotalBytes()
	return l
}
