package adaptive

import (
	"testing"

	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/workload"
)

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func TestColdStart(t *testing.T) {
	data := dataset.Uniform(2000, 2, 1)
	a := New(data, Params{MinRows: 50})
	if a.NumPartitions() != 1 {
		t.Fatalf("cold start has %d partitions", a.NumPartitions())
	}
	// The first query scans everything.
	w := workload.Uniform(data.Domain(), workload.Defaults(1, 2))
	scan, _ := a.Query(w[0].Box)
	if scan != data.TotalBytes() {
		t.Errorf("first query scanned %d, want the full dataset %d", scan, data.TotalBytes())
	}
}

func TestAdaptsToRepeatedQueries(t *testing.T) {
	data := dataset.Uniform(4000, 2, 3)
	a := New(data, Params{MinRows: 50, SplitFactor: 1})
	w := workload.Uniform(data.Domain(), workload.Defaults(10, 4))
	// Stream each query several times: the partitioner must split and the
	// per-query scan cost must drop substantially.
	var first, last int64
	for round := 0; round < 8; round++ {
		var total int64
		for _, q := range w {
			scan, _ := a.Query(q.Box)
			total += scan
		}
		if round == 0 {
			first = total
		}
		last = total
	}
	if a.NumPartitions() == 1 {
		t.Fatal("partitioner never split")
	}
	if last >= first/2 {
		t.Errorf("scan cost did not adapt: first round %d, last round %d", first, last)
	}
	if a.Splits == 0 || a.CumulativeWriteBytes == 0 {
		t.Error("splits must be accounted")
	}
}

func TestRespectsMinRows(t *testing.T) {
	data := dataset.Uniform(3000, 2, 5)
	a := New(data, Params{MinRows: 200, SplitFactor: 0.5})
	w := workload.Uniform(data.Domain(), workload.Defaults(30, 6))
	for round := 0; round < 5; round++ {
		for _, q := range w {
			a.Query(q.Box)
		}
	}
	l := a.Layout()
	for _, p := range l.Parts {
		if p.FullRows < 200 {
			t.Errorf("partition %d has %d rows, below bmin", p.ID, p.FullRows)
		}
	}
	var sum int64
	for _, p := range l.Parts {
		sum += p.FullRows
	}
	if sum != 3000 {
		t.Errorf("layout covers %d of 3000 rows", sum)
	}
}

// TestPAWCheaperOnBoundedVariance reproduces the paper's §II-A argument:
// when future workloads stay within a bounded distance of the history, a
// PAW layout built once beats the adaptive scheme's cumulative cost (scans
// plus repartitioning I/O).
func TestPAWCheaperOnBoundedVariance(t *testing.T) {
	data := dataset.Uniform(8000, 2, 7)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(25, 8))
	const delta = 0.01

	// PAW: built once from the history, then serves 10 future batches.
	l := core.Build(data, allRows(8000), dom, hist, core.Params{MinRows: 80, Delta: delta})
	l.Route(data)
	var pawCost int64
	for batch := int64(0); batch < 10; batch++ {
		fut := workload.Future(hist, delta, 1, 100+batch)
		pawCost += l.WorkloadCost(fut.Boxes(), nil)
	}

	// Adaptive: cold start, pays scans plus repartitioning for the same
	// stream (history first, then the future batches).
	a := New(data, Params{MinRows: 80})
	var adaptiveCost int64
	for _, q := range hist {
		s, w := a.Query(q.Box)
		adaptiveCost += s + w
	}
	for batch := int64(0); batch < 10; batch++ {
		fut := workload.Future(hist, delta, 1, 100+batch)
		for _, q := range fut {
			s, w := a.Query(q.Box)
			adaptiveCost += s + w
		}
	}
	if pawCost >= adaptiveCost {
		t.Errorf("PAW cumulative cost %d not below adaptive %d", pawCost, adaptiveCost)
	}
	t.Logf("cumulative bytes over the stream: PAW=%d adaptive=%d (%.1fx, %d splits)",
		pawCost, adaptiveCost, float64(adaptiveCost)/float64(pawCost), a.Splits)
}

func TestUnsplittablePartitionStopsRetrying(t *testing.T) {
	// bmin equal to the dataset: nothing can ever split; waste must reset
	// so the loop is not retriggered forever.
	data := dataset.Uniform(500, 2, 9)
	a := New(data, Params{MinRows: 500, SplitFactor: 0.1})
	w := workload.Uniform(data.Domain(), workload.Defaults(5, 10))
	for round := 0; round < 4; round++ {
		for _, q := range w {
			if _, write := a.Query(q.Box); write != 0 {
				t.Fatal("unsplittable partition must not pay write cost")
			}
		}
	}
	if a.NumPartitions() != 1 || a.Splits != 0 {
		t.Errorf("partitions=%d splits=%d", a.NumPartitions(), a.Splits)
	}
}
