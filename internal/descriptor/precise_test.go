package descriptor

import (
	"testing"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/kdtree"
	"paw/internal/layout"
	"paw/internal/workload"
)

func buildLayout(t *testing.T, rows int) (*layout.Layout, *dataset.Dataset) {
	t.Helper()
	data := dataset.Uniform(rows, 2, 1)
	l := kdtree.Build(data, AllRows(rows), data.Domain(), kdtree.Params{MinRows: rows / 16})
	l.Route(data)
	return l, data
}

func TestInstallBasics(t *testing.T) {
	l, data := buildLayout(t, 2000)
	mem, err := Install(l, data, AllRows(data.NumRows()), 3)
	if err != nil {
		t.Fatal(err)
	}
	wantMem := int64(0)
	for _, p := range l.Parts {
		if len(p.Precise) == 0 || len(p.Precise) > 3 {
			t.Errorf("partition %d has %d precise MBRs", p.ID, len(p.Precise))
		}
		wantMem += int64(len(p.Precise)) * 2 * BytesPerBound
	}
	if mem != wantMem {
		t.Errorf("memory accounting = %d, want %d", mem, wantMem)
	}
	if _, err := Install(l, data, AllRows(data.NumRows()), 0); err == nil {
		t.Error("Nmbr=0 must error")
	}
}

// TestPruningNeverDropsResults is the §V-A correctness invariant: with
// precise descriptors built from the full dataset, the pruned partition set
// still covers every query result row.
func TestPruningNeverDropsResults(t *testing.T) {
	l, data := buildLayout(t, 3000)
	if _, err := Install(l, data, AllRows(data.NumRows()), 4); err != nil {
		t.Fatal(err)
	}
	w := workload.Uniform(data.Domain(), workload.Defaults(60, 2))
	byPart := l.RouteIndices(data, AllRows(data.NumRows()))
	for _, q := range w.Boxes() {
		scanned := map[layout.ID]bool{}
		for _, id := range l.PartitionsFor(q) {
			scanned[id] = true
		}
		// Every result row's partition must be in the scanned set.
		for _, id := range resultPartitions(data, byPart, q) {
			if !scanned[id] {
				t.Fatalf("partition %d holds results of %v but was pruned", id, q)
			}
		}
	}
}

func resultPartitions(data *dataset.Dataset, byPart map[layout.ID][]int, q geom.Box) []layout.ID {
	var out []layout.ID
	for id, rows := range byPart {
		for _, r := range rows {
			if data.RowInBox(r, q) {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// TestPruningReducesCost: on clustered data, precise descriptors skip
// partitions whose coarse MBR intersects the query but whose records do not.
func TestPruningReducesCost(t *testing.T) {
	data := dataset.OSMLike(5000, 8, 3)
	l := kdtree.Build(data, AllRows(5000), data.Domain(), kdtree.Params{MinRows: 200})
	l.Route(data)
	w := workload.Uniform(data.Domain(), workload.Defaults(80, 4))
	before := l.WorkloadCost(w.Boxes(), nil)
	if _, err := Install(l, data, AllRows(5000), 6); err != nil {
		t.Fatal(err)
	}
	after := l.WorkloadCost(w.Boxes(), nil)
	if after > before {
		t.Errorf("cost rose with precise descriptors: %d -> %d", before, after)
	}
	if after == before {
		t.Log("precise descriptors pruned nothing on this workload (possible but unusual)")
	}
}

func TestUninstall(t *testing.T) {
	l, data := buildLayout(t, 1000)
	if _, err := Install(l, data, AllRows(1000), 3); err != nil {
		t.Fatal(err)
	}
	Uninstall(l)
	for _, p := range l.Parts {
		if p.Precise != nil {
			t.Fatal("Uninstall left precise descriptors behind")
		}
	}
}

func TestMoreMBRsNeverWorse(t *testing.T) {
	data := dataset.OSMLike(4000, 6, 5)
	l := kdtree.Build(data, AllRows(4000), data.Domain(), kdtree.Params{MinRows: 150})
	l.Route(data)
	w := workload.Uniform(data.Domain(), workload.Defaults(50, 6))
	prev := int64(1 << 62)
	for _, k := range []int{1, 3, 6, 10, 20} {
		if _, err := Install(l, data, AllRows(4000), k); err != nil {
			t.Fatal(err)
		}
		c := l.WorkloadCost(w.Boxes(), nil)
		// More MBRs give finer covers; cost should be non-increasing up to
		// STR tiling noise. Allow 5% slack.
		if float64(c) > float64(prev)*1.05 {
			t.Errorf("cost with %d MBRs = %d, above previous %d", k, c, prev)
		}
		if c < prev {
			prev = c
		}
	}
}
