// Package descriptor implements the precise-descriptor plugin module of
// §V-A: every partition is additionally described by a small set of Nmbr
// MBRs that collectively cover its records, extracted with the R-tree (STR)
// construction algorithm. During query processing the master skips a
// partition whose precise MBRs all miss the query even when its coarse
// descriptor intersects it.
package descriptor

import (
	"fmt"

	"paw/internal/dataset"
	"paw/internal/layout"
	"paw/internal/rtree"
)

// BytesPerBound is the per-dimension, per-bound footprint of a stored MBR:
// the paper accounts 16·dmax bytes per MBR (two float64 bounds per
// dimension).
const BytesPerBound = 16

// Install builds precise descriptors with nmbr MBRs per partition and
// attaches them to the layout's partitions. rows are the records used to
// derive the MBRs — pass all dataset rows for exact descriptors (the paper
// covers "all records in Pj"), or a sample for cheaper approximate ones
// (approximate descriptors may lose pruning power but never correctness for
// the rows they cover; with a sample, rows outside every MBR could be
// missed, so production use routes the full dataset).
//
// It returns the total master-memory overhead in bytes:
// 16 · dmax · Nmbr per partition.
func Install(l *layout.Layout, data *dataset.Dataset, rows []int, nmbr int) (int64, error) {
	if nmbr < 1 {
		return 0, fmt.Errorf("descriptor: Nmbr must be >= 1, got %d", nmbr)
	}
	byPart := l.RouteIndices(data, rows)
	var mem int64
	for _, p := range l.Parts {
		idx := byPart[p.ID]
		if len(idx) == 0 {
			p.Precise = nil
			continue
		}
		src := rtree.DatasetSource{Data: data, Rows: idx}
		p.Precise = rtree.ExtractMBRs(src, len(idx), nmbr)
		mem += int64(len(p.Precise)) * int64(data.Dims()) * BytesPerBound
	}
	return mem, nil
}

// Uninstall removes all precise descriptors from the layout.
func Uninstall(l *layout.Layout) {
	for _, p := range l.Parts {
		p.Precise = nil
	}
}

// AllRows is a convenience helper returning [0, n).
func AllRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}
