// Package membership implements elastic cluster membership for the
// distributed serving path: a heartbeat-driven failure detector with a
// configurable suspect→dead state machine, a consistent-hashing partition
// placement whose movement between any two member sets is bounded by the
// virtual-node construction, and a minimal-movement rebalance planner that
// generalises placement.Replicate's budget-greedy hottest-first cost
// function to membership changes.
//
// The package is deliberately pure: every transition takes the caller's
// clock as an argument and no goroutines or sockets live here, so the exact
// same state machine runs under the deterministic chaos/fuzz suites and
// under the real wall clock in internal/dist. The dist layer owns the wire
// protocol (join handshake, heartbeats, graceful leave) and the migration
// machinery that ships the planner's deltas.
package membership

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is one member's position in the failure-detector state machine.
//
//	Alive ──(no beat for SuspectAfter)──▶ Suspect
//	Suspect ──(no beat for DeadAfter)──▶ Dead
//	Suspect/Dead ──(beat or re-join)──▶ Alive
//	Alive ──(graceful leave)──▶ Draining ──(rebalanced away)──▶ Left
//
// Suspect members keep their placement (a flapping heartbeat must not
// thrash the rebalancer); only Dead, Draining and Left members are excluded
// from placement targets.
type State int

const (
	// Alive members heartbeat within SuspectAfter and serve scans.
	Alive State = iota
	// Suspect members missed heartbeats but may come back; they keep their
	// partitions and the scatter path merely deprioritises them.
	Suspect
	// Dead members missed heartbeats past DeadAfter; the rebalancer moves
	// their partitions to surviving members.
	Dead
	// Draining members asked to leave gracefully; they still serve scans
	// and payload fetches while the rebalancer moves their data away.
	Draining
	// Left members completed a graceful leave (or were administratively
	// removed). Their slot survives so indices stay stable, and a re-join
	// of the same address revives it.
	Left
)

// String names the state for logs and metrics labels.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Draining:
		return "draining"
	case Left:
		return "left"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config tunes the failure detector. The zero value is normalised to the
// defaults (2s suspect, 10s dead).
type Config struct {
	// SuspectAfter is how long without a heartbeat an Alive member becomes
	// Suspect.
	SuspectAfter time.Duration
	// DeadAfter is how long without a heartbeat a member becomes Dead
	// (measured from the last beat, not from the Suspect transition).
	DeadAfter time.Duration
}

// Normalized fills zero fields with the defaults and orders the thresholds.
func (c Config) Normalized() Config {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2 * time.Second
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = 5 * c.SuspectAfter
	}
	return c
}

// Member is one worker slot. Index is stable for the lifetime of the
// cluster: slots are never compacted, so partition placements can name
// workers by index across membership changes.
type Member struct {
	Index int
	Addr  string
	State State
	// LastBeat is the clock value of the member's most recent heartbeat
	// (or join).
	LastBeat time.Time
	// JoinedAt is the clock value of the member's most recent (re-)join —
	// the rebalance settle window is measured from it.
	JoinedAt time.Time
}

// Transition records one state change applied by Tick, Join, Beat or Leave,
// for the caller's metrics and logs.
type Transition struct {
	Index    int
	Addr     string
	From, To State
}

// View is an immutable membership snapshot. Version increases on every
// state change, so consumers can cheaply detect "something changed since I
// last rebalanced".
type View struct {
	Version uint64
	Members []Member
}

// Alive lists the indices currently in Alive state, ascending.
func (v View) Alive() []int { return v.inStates(Alive) }

// Placeable lists the indices that should hold data: Alive and Suspect
// members (a flapping member keeps its placement — hysteresis against
// rebalance thrash), ascending.
func (v View) Placeable() []int { return v.inStates(Alive, Suspect) }

// Reachable lists the indices worth sending scans or fetches to: everything
// except Dead and Left, ascending.
func (v View) Reachable() []int { return v.inStates(Alive, Suspect, Draining) }

func (v View) inStates(states ...State) []int {
	var out []int
	for _, m := range v.Members {
		for _, s := range states {
			if m.State == s {
				out = append(out, m.Index)
				break
			}
		}
	}
	return out
}

// Member returns the member at index, or false when the index is unknown.
func (v View) Member(index int) (Member, bool) {
	if index < 0 || index >= len(v.Members) {
		return Member{}, false
	}
	return v.Members[index], true
}

// Tracker is the membership state machine. All methods are safe for
// concurrent use; all transitions take the caller's clock so deterministic
// tests can drive time explicitly.
type Tracker struct {
	mu      sync.Mutex
	cfg     Config
	members []Member
	version uint64
}

// NewTracker builds a tracker with cfg (normalised) and one Alive member
// per seed address, all stamped with now. Seed members model the statically
// configured fleet the master booted with.
func NewTracker(cfg Config, seedAddrs []string, now time.Time) *Tracker {
	t := &Tracker{cfg: cfg.Normalized()}
	for i, addr := range seedAddrs {
		t.members = append(t.members, Member{
			Index: i, Addr: addr, State: Alive, LastBeat: now, JoinedAt: now,
		})
	}
	return t
}

// Config returns the normalised failure-detector configuration.
func (t *Tracker) Config() Config { return t.cfg }

// View snapshots the current membership.
func (t *Tracker) View() View {
	t.mu.Lock()
	defer t.mu.Unlock()
	return View{Version: t.version, Members: append([]Member(nil), t.members...)}
}

// Join registers a member. A known address (or a valid explicit index)
// revives its existing slot — whatever state it was in — and a new address
// with index < 0 appends a fresh slot. An explicit index that names a slot
// with a different address is an error: indices are identities, not hints.
// The returned transition reports the slot's state change (From == To for
// a brand-new slot joining Alive is reported as Left→Alive).
func (t *Tracker) Join(index int, addr string, now time.Time) (Member, Transition, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if index < 0 {
		for i := range t.members {
			if t.members[i].Addr == addr {
				index = i
				break
			}
		}
	}
	if index >= 0 {
		if index >= len(t.members) {
			return Member{}, Transition{}, fmt.Errorf("membership: join names unknown index %d (fleet has %d slots)", index, len(t.members))
		}
		m := &t.members[index]
		if m.Addr != addr && addr != "" {
			if m.State != Left && m.State != Dead {
				return Member{}, Transition{}, fmt.Errorf("membership: index %d is %s at %s, refusing join from %s", index, m.State, m.Addr, addr)
			}
			// A dead or departed slot may be revived from a new address
			// (the worker restarted elsewhere).
			m.Addr = addr
		}
		tr := Transition{Index: index, Addr: m.Addr, From: m.State, To: Alive}
		m.State = Alive
		m.LastBeat, m.JoinedAt = now, now
		t.version++
		return *m, tr, nil
	}
	m := Member{Index: len(t.members), Addr: addr, State: Alive, LastBeat: now, JoinedAt: now}
	t.members = append(t.members, m)
	t.version++
	return m, Transition{Index: m.Index, Addr: addr, From: Left, To: Alive}, nil
}

// Beat records a heartbeat from index. A beat revives Suspect and Dead
// members to Alive (reported in the transition); beats from Draining
// members refresh the clock but keep them Draining. Beats from Left slots
// are errors — the member must re-join.
func (t *Tracker) Beat(index int, now time.Time) (Transition, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if index < 0 || index >= len(t.members) {
		return Transition{}, fmt.Errorf("membership: heartbeat from unknown index %d", index)
	}
	m := &t.members[index]
	if m.State == Left {
		return Transition{}, fmt.Errorf("membership: heartbeat from departed index %d; re-join first", index)
	}
	tr := Transition{Index: index, Addr: m.Addr, From: m.State, To: m.State}
	m.LastBeat = now
	if m.State == Suspect || m.State == Dead {
		m.State = Alive
		tr.To = Alive
		t.version++
	}
	return tr, nil
}

// Leave moves index to Draining (graceful leave, phase one). The dist layer
// rebalances its data away and then calls Depart.
func (t *Tracker) Leave(index int, now time.Time) (Transition, error) {
	return t.setState(index, Draining, now)
}

// Depart moves index to Left (graceful leave, phase two — its data has been
// rebalanced away).
func (t *Tracker) Depart(index int, now time.Time) (Transition, error) {
	return t.setState(index, Left, now)
}

// Revive moves index back to Alive (a leave whose rebalance failed).
func (t *Tracker) Revive(index int, now time.Time) (Transition, error) {
	return t.setState(index, Alive, now)
}

func (t *Tracker) setState(index int, s State, now time.Time) (Transition, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if index < 0 || index >= len(t.members) {
		return Transition{}, fmt.Errorf("membership: unknown index %d", index)
	}
	m := &t.members[index]
	tr := Transition{Index: index, Addr: m.Addr, From: m.State, To: s}
	if m.State != s {
		m.State = s
		m.LastBeat = now
		t.version++
	}
	return tr, nil
}

// Tick advances the failure detector to now: Alive members whose last beat
// is older than SuspectAfter become Suspect, and members older than
// DeadAfter become Dead. It returns the transitions applied, ordered by
// index. Draining and Left members never transition on ticks.
func (t *Tracker) Tick(now time.Time) []Transition {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Transition
	for i := range t.members {
		m := &t.members[i]
		if m.State != Alive && m.State != Suspect {
			continue
		}
		age := now.Sub(m.LastBeat)
		var next State
		switch {
		case age >= t.cfg.DeadAfter:
			next = Dead
		case age >= t.cfg.SuspectAfter:
			next = Suspect
		default:
			next = Alive
		}
		if next != m.State {
			out = append(out, Transition{Index: i, Addr: m.Addr, From: m.State, To: next})
			m.State = next
		}
	}
	if len(out) > 0 {
		t.version++
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
