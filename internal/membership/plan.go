package membership

import (
	"sort"

	"paw/internal/layout"
	"paw/internal/placement"
)

// The rebalance planner: given the placement the cluster serves today and
// the ring placement the surviving member set wants, emit the minimal
// movement that reconciles them. The cost function generalises
// placement.Replicate's budget-greedy hottest-first shape (§V-B): moves are
// ordered by workload-weighted bytes, an optional byte budget defers the
// coldest moves to later rounds (incremental, serve-while-reorganizing),
// and moves forced by data safety — a partition whose only copies sit on
// dead or draining members — are exempt from the budget.

// Move is one partition whose replica set changes: the workers that must
// newly receive a copy and the workers that stop hosting one.
type Move struct {
	ID layout.ID
	// Gain are the members that must receive a copy (payload or alias).
	Gain []int
	// Drop are the members that stop hosting the partition at cutover.
	Drop []int
	// Bytes is the partition's encoded size times the copies shipped.
	Bytes int64
	// Forced marks a data-safety move: no placeable member holds a copy
	// today, so deferring it would leave the partition unreadable.
	Forced bool
}

// Plan is one rebalance round: the placement to migrate to (budget-deferred
// partitions keep their current sets), the moves it implies, and the
// movement accounting the acceptance tests assert on.
type Plan struct {
	// Target is the placement this round migrates to.
	Target placement.Replicated
	// Moves lists the partitions whose replica sets change, hottest first.
	Moves []Move
	// Deferred lists partitions whose desired move was pushed to a later
	// round by the byte budget.
	Deferred []layout.ID
	// MovedPartitions / MovedBytes total the copies that must ship.
	MovedPartitions int
	MovedBytes      int64
	// ReusedPartitions counts partitions whose sets are unchanged (or only
	// shrink onto copies that already exist) — zero bytes move for them.
	ReusedPartitions int
}

// PlanRebalance reconciles cur (the served placement) with want (the ring
// placement of the surviving member set). hosts reports whether a member
// still physically holds data and serves fetches (alive, suspect or
// draining — not dead); weight is the per-partition cost weight (encoded
// bytes, optionally workload-scaled; nil weights every partition 1); budget
// defers the coldest unforced moves once the shipped bytes would exceed it
// (<= 0: unlimited).
//
// The result is deterministic for fixed inputs: moves are ordered by
// descending weight, ties by ascending ID.
func PlanRebalance(ids []layout.ID, cur, want placement.Replicated, hosts func(w int) bool, weight func(id layout.ID) int64, budget int64) Plan {
	if hosts == nil {
		hosts = func(int) bool { return true }
	}
	if weight == nil {
		weight = func(layout.ID) int64 { return 1 }
	}
	plan := Plan{Target: make(placement.Replicated, len(ids))}
	var moves []Move
	for _, id := range ids {
		holding := make(map[int]bool)
		liveCopies := 0
		for _, w := range cur[id] {
			if hosts(w) {
				holding[w] = true
				liveCopies++
			}
		}
		var gain []int
		kept := 0
		for _, w := range want[id] {
			if holding[w] {
				kept++
			} else {
				gain = append(gain, w)
			}
		}
		var drop []int
		wantSet := make(map[int]bool, len(want[id]))
		for _, w := range want[id] {
			wantSet[w] = true
		}
		for _, w := range cur[id] {
			if !wantSet[w] {
				drop = append(drop, w)
			}
		}
		if len(gain) == 0 {
			// Every wanted copy already exists on a surviving member:
			// nothing ships, the entry merely renames/shrinks at cutover.
			plan.Target[id] = want[id]
			plan.ReusedPartitions++
			continue
		}
		moves = append(moves, Move{
			ID:     id,
			Gain:   gain,
			Drop:   drop,
			Bytes:  weight(id) * int64(len(gain)),
			Forced: liveCopies == 0,
		})
	}
	// Hottest first — the same greedy order Replicate spends its byte
	// budget in, so under a budget the copies that matter most ship first.
	sort.SliceStable(moves, func(i, j int) bool {
		wi, wj := weight(moves[i].ID), weight(moves[j].ID)
		if wi != wj {
			return wi > wj
		}
		return moves[i].ID < moves[j].ID
	})
	var spent int64
	for _, mv := range moves {
		if !mv.Forced && budget > 0 && spent+mv.Bytes > budget && len(plan.Moves) > 0 {
			// Over budget: the partition keeps its surviving copies this
			// round (dead members are still dropped from the set — an
			// install to them would fail) and a later round picks it up.
			var keep []int
			for _, w := range cur[mv.ID] {
				if hosts(w) {
					keep = append(keep, w)
				}
			}
			plan.Target[mv.ID] = keep
			plan.Deferred = append(plan.Deferred, mv.ID)
			continue
		}
		spent += mv.Bytes
		plan.Target[mv.ID] = want[mv.ID]
		plan.Moves = append(plan.Moves, mv)
		plan.MovedPartitions += len(mv.Gain)
		plan.MovedBytes += mv.Bytes
	}
	sort.Slice(plan.Deferred, func(i, j int) bool { return plan.Deferred[i] < plan.Deferred[j] })
	return plan
}
