package membership

import (
	"testing"
	"time"
)

var t0 = time.Unix(1_000_000, 0)

func at(d time.Duration) time.Time { return t0.Add(d) }

func newTestTracker(n int) *Tracker {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = addrString(i)
	}
	return NewTracker(Config{SuspectAfter: time.Second, DeadAfter: 3 * time.Second}, addrs, t0)
}

func addrString(i int) string { return "127.0.0.1:" + string(rune('a'+i)) }

func stateOf(t *testing.T, tr *Tracker, i int) State {
	t.Helper()
	m, ok := tr.View().Member(i)
	if !ok {
		t.Fatalf("member %d missing", i)
	}
	return m.State
}

func TestTrackerSuspectDeadStateMachine(t *testing.T) {
	tr := newTestTracker(2)
	// Worker 1 beats; worker 0 goes silent.
	if _, err := tr.Beat(1, at(900*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	trs := tr.Tick(at(1500 * time.Millisecond))
	if len(trs) != 1 || trs[0].Index != 0 || trs[0].To != Suspect {
		t.Fatalf("want worker 0 -> suspect, got %+v", trs)
	}
	if got := stateOf(t, tr, 1); got != Alive {
		t.Fatalf("worker 1 should stay alive, is %s", got)
	}
	// A beat revives the suspect.
	rev, err := tr.Beat(0, at(1600*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if rev.From != Suspect || rev.To != Alive {
		t.Fatalf("want suspect->alive revive, got %+v", rev)
	}
	// Silence past DeadAfter kills it (passing through suspect); worker 1
	// keeps beating and must stay alive.
	if _, err := tr.Beat(1, at(2900*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	tr.Tick(at(3 * time.Second))
	if _, err := tr.Beat(1, at(4900*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	trs = tr.Tick(at(5 * time.Second))
	if len(trs) != 1 || trs[0].To != Dead {
		t.Fatalf("want worker 0 -> dead, got %+v", trs)
	}
	if got := stateOf(t, tr, 0); got != Dead {
		t.Fatalf("worker 0 should be dead, is %s", got)
	}
	// Ticks are idempotent once settled.
	if _, err := tr.Beat(1, at(5900*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if trs := tr.Tick(at(6 * time.Second)); len(trs) != 0 {
		t.Fatalf("settled tick transitioned: %+v", trs)
	}
}

func TestTrackerJoinLeaveRejoin(t *testing.T) {
	tr := newTestTracker(2)
	m, trans, err := tr.Join(-1, "127.0.0.1:9999", at(0))
	if err != nil {
		t.Fatal(err)
	}
	if m.Index != 2 || trans.To != Alive {
		t.Fatalf("fresh join: got member %+v transition %+v", m, trans)
	}
	// Graceful leave: Draining, then Left. A beat while draining is legal.
	if _, err := tr.Leave(2, at(time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Beat(2, at(1100*time.Millisecond)); err != nil {
		t.Fatalf("beat while draining: %v", err)
	}
	if got := stateOf(t, tr, 2); got != Draining {
		t.Fatalf("beat must not revive draining, is %s", got)
	}
	if _, err := tr.Depart(2, at(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	// A departed slot rejects beats but accepts a re-join, even from a new
	// address.
	if _, err := tr.Beat(2, at(3*time.Second)); err == nil {
		t.Fatal("beat from departed member must fail")
	}
	m2, _, err := tr.Join(-1, "127.0.0.1:7777", at(4*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if m2.Index != 3 {
		t.Fatalf("unknown address joins a fresh slot, got index %d", m2.Index)
	}
	m3, _, err := tr.Join(2, "127.0.0.1:8888", at(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if m3.Index != 2 || m3.State != Alive || m3.Addr != "127.0.0.1:8888" {
		t.Fatalf("explicit re-join of departed slot: %+v", m3)
	}
	// Stealing a live slot from a different address is refused.
	if _, _, err := tr.Join(0, "127.0.0.1:6666", at(6*time.Second)); err == nil {
		t.Fatal("join must not steal a live slot")
	}
}

func TestTrackerViewVersionAndSets(t *testing.T) {
	tr := newTestTracker(3)
	v1 := tr.View()
	tr.Tick(at(1500 * time.Millisecond)) // everyone suspect
	v2 := tr.View()
	if v2.Version == v1.Version {
		t.Fatal("version must advance on transitions")
	}
	if got := v2.Placeable(); len(got) != 3 {
		t.Fatalf("suspect members stay placeable, got %v", got)
	}
	if got := v2.Alive(); len(got) != 0 {
		t.Fatalf("no member is alive, got %v", got)
	}
	tr.Tick(at(10 * time.Second)) // everyone dead
	v3 := tr.View()
	if got := v3.Placeable(); len(got) != 0 {
		t.Fatalf("dead members are not placeable, got %v", got)
	}
	if got := v3.Reachable(); len(got) != 0 {
		t.Fatalf("dead members are not reachable, got %v", got)
	}
}
