package membership

import (
	"encoding/binary"
	"sort"

	"paw/internal/layout"
	"paw/internal/placement"
)

// Consistent-hashing placement with virtual nodes: the movement-bounding
// baseline of the rebalancer. Placement is a pure function of (partition
// set, member set, replica count): every member owns VNodes points on a
// 64-bit hash ring and a partition's replica set is the first R distinct
// members walking clockwise from the partition's own hash. Because a
// joining member only claims the ring arcs its points land on — and a
// leaving member only releases its own arcs — the partitions that change
// owners between any two member sets differing by one worker is ≈ P·R/(N+1)
// in expectation, not the full P·R a modular rule reshuffles.

// DefaultVNodes is the default virtual-node count per member. 64 points
// keep the per-member load imbalance within a few percent for the fleet
// sizes this system targets while the ring stays tiny (N·64 points).
const DefaultVNodes = 64

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on 64 bits.
// The repo avoids external deps and the ring needs a fast, well-mixed,
// deterministic hash — plain FNV over short mostly-zero inputs clusters
// badly enough to skew arc lengths, so every ring key goes through this.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

const golden = 0x9e3779b97f4a7c15 // 2^64/phi, the usual odd mixing constant

func hashPoint(worker, vnode int) uint64 {
	return mix64(mix64(uint64(int64(worker))+1)*golden ^ mix64(uint64(int64(vnode))+golden))
}

func hashPartition(id layout.ID) uint64 {
	// Domain-separated from ring points by the extra constant.
	return mix64(uint64(int64(id))*golden + 0x6a09e667f3bcc909)
}

// ringPoint is one virtual node: its position and the member owning it.
type ringPoint struct {
	pos    uint64
	worker int
}

// Ring is a sealed consistent-hash ring over a member set.
type Ring struct {
	points  []ringPoint
	workers int // distinct members on the ring
}

// NewRing builds the ring for the given member indices with vnodes points
// each (<= 0 uses DefaultVNodes). Ties on ring position are broken by
// worker index so the ring is a pure function of its inputs.
func NewRing(workers []int, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{points: make([]ringPoint, 0, len(workers)*vnodes), workers: len(workers)}
	for _, w := range workers {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{pos: hashPoint(w, v), worker: w})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

// Owners returns the first n distinct members clockwise from id's hash —
// the partition's replica set, primary first. Fewer than n members on the
// ring returns them all.
func (r *Ring) Owners(id layout.ID, n int) []int {
	if len(r.points) == 0 {
		return nil
	}
	if n > r.workers {
		n = r.workers
	}
	h := hashPartition(id)
	i := sort.Search(len(r.points), func(j int) bool { return r.points[j].pos >= h })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, p.worker)
		}
	}
	return out
}

// RingPlacement places every partition on its ring owners: the canonical
// elastic placement, shared by pawmaster and pawworker so both sides derive
// the same assignment from the same member set without coordination. It is
// a pure function — the same (ids, workers, replicas, vnodes) always yields
// the same placement, and placements for member sets differing by one
// worker differ in ≈ len(ids)·replicas/(len(workers)+1) partitions.
func RingPlacement(ids []layout.ID, workers []int, replicas, vnodes int) placement.Replicated {
	if replicas < 1 {
		replicas = 1
	}
	r := NewRing(workers, vnodes)
	out := make(placement.Replicated, len(ids))
	for _, id := range ids {
		out[id] = r.Owners(id, replicas)
	}
	return out
}

// ModPlacement is the legacy static rule — replica r of partition p on
// worker (p+r) mod workers — kept as the single shared implementation for
// statically-configured clusters (pawmaster and pawworker previously each
// hard-coded it, which is how they could silently disagree).
func ModPlacement(ids []layout.ID, workers, replicas int) placement.Replicated {
	if workers < 1 {
		workers = 1
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > workers {
		replicas = workers
	}
	out := make(placement.Replicated, len(ids))
	for _, id := range ids {
		for r := 0; r < replicas; r++ {
			out[id] = append(out[id], (int(id)+r)%workers)
		}
	}
	return out
}

// HostedIDs inverts a placement: the partitions worker w must host (any
// position in the replica set), sorted ascending.
func HostedIDs(rep placement.Replicated, w int) []layout.ID {
	var out []layout.ID
	for id, ws := range rep {
		for _, h := range ws {
			if h == w {
				out = append(out, id)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Checksum is the placement checksum carried by the join handshake: an
// order-independent digest of the partition IDs a worker hosts. The master
// computes the same digest from its own placement and rejects a joining
// worker whose digest disagrees — the defence against the silent
// wrong-answer hazard of master and worker deriving different placements
// from mismatched flags.
func Checksum(ids []layout.ID) uint64 {
	sorted := append([]layout.ID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b [8]byte
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	h ^= uint64(len(sorted))
	h *= prime
	for _, id := range sorted {
		binary.LittleEndian.PutUint64(b[:], uint64(int64(id)))
		for _, c := range b {
			h ^= uint64(c)
			h *= prime
		}
	}
	return h
}
