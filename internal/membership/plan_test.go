package membership

import (
	"testing"

	"paw/internal/layout"
)

func TestPlanRebalanceNoChangeIsEmpty(t *testing.T) {
	ids := seqIDs(100)
	cur := RingPlacement(ids, seqWorkers(4), 2, 0)
	plan := PlanRebalance(ids, cur, cur, nil, nil, 0)
	if len(plan.Moves) != 0 || plan.MovedBytes != 0 || plan.MovedPartitions != 0 {
		t.Fatalf("identical placements must plan zero moves: %+v", plan)
	}
	if plan.ReusedPartitions != len(ids) {
		t.Fatalf("all partitions reused, got %d", plan.ReusedPartitions)
	}
}

func TestPlanRebalanceJoinMovesOnlyTheDelta(t *testing.T) {
	ids := seqIDs(600)
	cur := RingPlacement(ids, seqWorkers(3), 2, 0)
	want := RingPlacement(ids, seqWorkers(4), 2, 0)
	plan := PlanRebalance(ids, cur, want, nil, nil, 0)
	// Every move must gain only worker 3 or fill arcs it displaced; the
	// planner must never ship copies the target set already holds.
	wantMoves := movedCopies(ids, cur, want)
	if plan.MovedPartitions != wantMoves {
		t.Fatalf("planned %d copy ships, placement delta is %d", plan.MovedPartitions, wantMoves)
	}
	bound := int(2.5 * float64(len(ids)*2) / 4)
	if plan.MovedPartitions > bound {
		t.Fatalf("join moved %d copies, over the movement bound %d", plan.MovedPartitions, bound)
	}
	for _, id := range plan.Deferred {
		t.Fatalf("no budget, nothing may defer: %d", id)
	}
	// Target must equal want exactly when nothing defers.
	for _, id := range ids {
		if len(plan.Target[id]) != len(want[id]) {
			t.Fatalf("target diverges from want at %d", id)
		}
	}
}

func TestPlanRebalanceDeadWorkerForcesMoves(t *testing.T) {
	ids := seqIDs(200)
	cur := RingPlacement(ids, seqWorkers(3), 1, 0)
	// Worker 2 dies and worker 3 joins in the same round: moves off the
	// dead worker are forced (data safety beats the budget), moves onto
	// the fresh worker are deferrable.
	want := RingPlacement(ids, []int{0, 1, 3}, 1, 0)
	hosts := func(w int) bool { return w != 2 }
	plan := PlanRebalance(ids, cur, want, hosts, nil, 1) // budget of 1 byte
	// Every partition whose only copy was on worker 2 must ship despite
	// the budget.
	forced := 0
	for _, id := range ids {
		if cur[id][0] == 2 {
			forced++
		}
	}
	got := 0
	for _, mv := range plan.Moves {
		if mv.Forced {
			got++
		}
	}
	if got != forced {
		t.Fatalf("want %d forced moves, planned %d", forced, got)
	}
	if forced == 0 {
		t.Fatal("fixture broken: worker 2 held nothing")
	}
	// Unforced moves (onto the fresh worker 3 from live holders) defer
	// under the starved budget — except the round's first move, which
	// always ships so rounds make progress.
	if len(plan.Deferred) == 0 {
		t.Fatal("budget of 1 byte must defer some unforced moves")
	}
	for _, id := range plan.Deferred {
		for _, w := range plan.Target[id] {
			if w == 2 {
				t.Fatalf("deferred partition %d still targets the dead worker", id)
			}
		}
		if len(plan.Target[id]) == 0 {
			t.Fatalf("deferred partition %d lost all copies", id)
		}
	}
	// No planned entry may target the dead worker either.
	for _, id := range ids {
		for _, w := range plan.Target[id] {
			if w == 2 {
				t.Fatalf("partition %d targets the dead worker", id)
			}
		}
	}
}

func TestPlanRebalanceHottestFirstUnderBudget(t *testing.T) {
	ids := []layout.ID{0, 1, 2, 3}
	cur := map[layout.ID][]int{0: {0}, 1: {0}, 2: {0}, 3: {0}}
	want := map[layout.ID][]int{0: {1}, 1: {1}, 2: {1}, 3: {1}}
	weights := map[layout.ID]int64{0: 10, 1: 40, 2: 20, 3: 30}
	weight := func(id layout.ID) int64 { return weights[id] }
	plan := PlanRebalance(ids, cur, want, nil, weight, 70)
	// Hottest-first under a 70-byte budget: 40 (id 1) then 30 (id 3) ship,
	// 20 and 10 defer.
	if len(plan.Moves) != 2 || plan.Moves[0].ID != 1 || plan.Moves[1].ID != 3 {
		t.Fatalf("want moves [1 3], got %+v", plan.Moves)
	}
	if plan.MovedBytes != 70 {
		t.Fatalf("want 70 bytes moved, got %d", plan.MovedBytes)
	}
	if len(plan.Deferred) != 2 || plan.Deferred[0] != 0 || plan.Deferred[1] != 2 {
		t.Fatalf("want deferred [0 2], got %v", plan.Deferred)
	}
	// Deferred partitions keep their current copies.
	if len(plan.Target[0]) != 1 || plan.Target[0][0] != 0 {
		t.Fatalf("deferred partition 0 must keep worker 0: %v", plan.Target[0])
	}
}

func TestPlanRebalanceAlwaysMakesProgress(t *testing.T) {
	// A budget smaller than the smallest move still ships one move per
	// round, so rounds terminate.
	ids := []layout.ID{0, 1}
	cur := map[layout.ID][]int{0: {0}, 1: {0}}
	want := map[layout.ID][]int{0: {1}, 1: {1}}
	weight := func(layout.ID) int64 { return 100 }
	plan := PlanRebalance(ids, cur, want, nil, weight, 1)
	if len(plan.Moves) != 1 {
		t.Fatalf("a starved budget must still ship one move, got %d", len(plan.Moves))
	}
}
