package membership

import (
	"fmt"
	"testing"

	"paw/internal/layout"
)

func seqIDs(n int) []layout.ID {
	ids := make([]layout.ID, n)
	for i := range ids {
		ids[i] = layout.ID(i)
	}
	return ids
}

func seqWorkers(n int) []int {
	ws := make([]int, n)
	for i := range ws {
		ws[i] = i
	}
	return ws
}

// movedCopies counts the (partition, worker) copies present in b but not in
// a — the copies that must physically ship to go from placement a to b.
func movedCopies(ids []layout.ID, a, b map[layout.ID][]int) int {
	moved := 0
	for _, id := range ids {
		have := make(map[int]bool, len(a[id]))
		for _, w := range a[id] {
			have[w] = true
		}
		for _, w := range b[id] {
			if !have[w] {
				moved++
			}
		}
	}
	return moved
}

func TestRingPlacementIsPureAndValid(t *testing.T) {
	ids := seqIDs(500)
	for _, replicas := range []int{1, 2, 3} {
		p1 := RingPlacement(ids, seqWorkers(5), replicas, 0)
		p2 := RingPlacement(ids, seqWorkers(5), replicas, 0)
		for _, id := range ids {
			if len(p1[id]) != replicas {
				t.Fatalf("replicas=%d: partition %d has %d copies", replicas, id, len(p1[id]))
			}
			seen := map[int]bool{}
			for i, w := range p1[id] {
				if w < 0 || w >= 5 || seen[w] {
					t.Fatalf("partition %d invalid replica set %v", id, p1[id])
				}
				seen[w] = true
				if p2[id][i] != w {
					t.Fatalf("placement is not deterministic at partition %d", id)
				}
			}
		}
	}
}

// TestRingMovementBound asserts the minimal-movement property numerically:
// adding one worker to an N-worker ring moves at most ~P·R/(N+1) copies
// (within a 2.5x concentration slack — FNV arc lengths are not perfectly
// uniform at 64 vnodes), far below the P·R a modular rule reshuffles; and
// removing the worker again restores the original placement exactly.
func TestRingMovementBound(t *testing.T) {
	const P = 2000
	ids := seqIDs(P)
	for _, tc := range []struct{ n, replicas int }{
		{2, 1}, {2, 2}, {4, 1}, {4, 2}, {4, 3}, {8, 2}, {8, 3},
	} {
		t.Run(fmt.Sprintf("n=%d_r=%d", tc.n, tc.replicas), func(t *testing.T) {
			before := RingPlacement(ids, seqWorkers(tc.n), tc.replicas, 0)
			after := RingPlacement(ids, seqWorkers(tc.n+1), tc.replicas, 0)
			moved := movedCopies(ids, before, after)
			expect := float64(P*tc.replicas) / float64(tc.n+1)
			bound := int(2.5 * expect)
			if moved > bound {
				t.Fatalf("join moved %d copies, bound %d (expected ~%.0f of %d total)",
					moved, bound, expect, P*tc.replicas)
			}
			if moved == 0 {
				t.Fatal("a join must move something")
			}
			// The new worker must actually take on load.
			gained := 0
			for _, id := range ids {
				for _, w := range after[id] {
					if w == tc.n {
						gained++
					}
				}
			}
			if gained == 0 {
				t.Fatal("joined worker owns nothing")
			}
			// Leave = inverse join: removing the worker restores the
			// original placement bit for bit (placement is a pure function
			// of the member set).
			restored := RingPlacement(ids, seqWorkers(tc.n), tc.replicas, 0)
			for _, id := range ids {
				if len(restored[id]) != len(before[id]) {
					t.Fatalf("leave did not restore partition %d", id)
				}
				for i := range before[id] {
					if restored[id][i] != before[id][i] {
						t.Fatalf("leave did not restore partition %d: %v vs %v", id, restored[id], before[id])
					}
				}
			}
		})
	}
}

// TestRingLoadBalance sanity-checks the virtual-node smoothing: no worker
// owns more than ~2.2x its fair share of primaries at the default vnode
// count.
func TestRingLoadBalance(t *testing.T) {
	const P, N = 4000, 6
	place := RingPlacement(seqIDs(P), seqWorkers(N), 1, 0)
	counts := make([]int, N)
	for _, ws := range place {
		counts[ws[0]]++
	}
	fair := float64(P) / N
	for w, c := range counts {
		if float64(c) > 2.2*fair || float64(c) < fair/2.2 {
			t.Fatalf("worker %d owns %d primaries (fair share %.0f): ring too skewed", w, c, fair)
		}
	}
}

func TestModPlacementMatchesLegacyRule(t *testing.T) {
	ids := seqIDs(100)
	place := ModPlacement(ids, 4, 2)
	for _, id := range ids {
		want := []int{int(id) % 4, (int(id) + 1) % 4}
		got := place[id]
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("partition %d: got %v want %v", id, got, want)
		}
	}
}

func TestChecksumOrderIndependentAndDiscriminating(t *testing.T) {
	a := Checksum([]layout.ID{1, 2, 3})
	b := Checksum([]layout.ID{3, 1, 2})
	if a != b {
		t.Fatal("checksum must be order-independent")
	}
	if Checksum([]layout.ID{1, 2}) == a {
		t.Fatal("checksum must depend on the set")
	}
	if Checksum(nil) == a {
		t.Fatal("empty checksum must differ from non-empty")
	}
	if Checksum(nil) != Checksum([]layout.ID{}) {
		t.Fatal("nil and empty must agree")
	}
}

func TestHostedIDsInvertsPlacement(t *testing.T) {
	ids := seqIDs(50)
	place := ModPlacement(ids, 3, 2)
	for w := 0; w < 3; w++ {
		for _, id := range HostedIDs(place, w) {
			found := false
			for _, h := range place[id] {
				if h == w {
					found = true
				}
			}
			if !found {
				t.Fatalf("HostedIDs(%d) includes %d but placement does not", w, id)
			}
		}
	}
	if got := len(HostedIDs(place, 0)) + len(HostedIDs(place, 1)) + len(HostedIDs(place, 2)); got != 100 {
		t.Fatalf("copies double-counted or lost: %d", got)
	}
}
