package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, timers as
// _count/_ns_total pairs, histograms as cumulative _bucket series plus _sum
// and _count. Instruments appear in registration order; a literal label
// block in an instrument name (see Label) is passed through verbatim.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := append([]entry(nil), r.entries...)
	r.mu.Unlock()
	typed := map[string]bool{} // base names already TYPE-declared
	emitType := func(base, kind string) {
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		}
	}
	var err error
	track := func(e error) {
		if err == nil && e != nil {
			err = e
		}
	}
	for _, e := range entries {
		base, labels := splitLabels(e.name)
		switch e.kind {
		case kindCounter:
			emitType(base, "counter")
			_, werr := fmt.Fprintf(w, "%s%s %d\n", base, labels, e.c.Value())
			track(werr)
		case kindGauge:
			emitType(base, "gauge")
			_, werr := fmt.Fprintf(w, "%s%s %d\n", base, labels, e.g.Value())
			track(werr)
		case kindTimer:
			emitType(base+"_count", "counter")
			_, werr := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, e.t.Count())
			track(werr)
			emitType(base+"_ns_total", "counter")
			_, werr = fmt.Fprintf(w, "%s_ns_total%s %d\n", base, labels, e.t.TotalNs())
			track(werr)
		case kindHistogram:
			emitType(base, "histogram")
			bounds := e.h.Bounds()
			counts := e.h.BucketCounts()
			var cum int64
			for i, b := range bounds {
				cum += counts[i]
				_, werr := fmt.Fprintf(w, "%s_bucket%s %d\n", base,
					mergeLabel(labels, "le", formatBound(b)), cum)
				track(werr)
			}
			cum += counts[len(counts)-1]
			_, werr := fmt.Fprintf(w, "%s_bucket%s %d\n", base, mergeLabel(labels, "le", "+Inf"), cum)
			track(werr)
			_, werr = fmt.Fprintf(w, "%s_sum%s %g\n", base, labels, e.h.Sum())
			track(werr)
			_, werr = fmt.Fprintf(w, "%s_count%s %d\n", base, labels, cum)
			track(werr)
		}
	}
	return err
}

// splitLabels separates a name like `foo_total{worker="2"}` into the base
// name and its literal label block (empty when unlabelled).
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// mergeLabel adds one key="value" pair into an existing (possibly empty)
// label block.
func mergeLabel(labels, key, value string) string {
	pair := key + `="` + value + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// formatBound renders a histogram bound the way Prometheus clients expect.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Handler serves the registry over HTTP: Prometheus text by default, JSON
// snapshot with ?format=json (or an Accept: application/json header). A nil
// registry serves empty documents.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(sortedSnapshot(r.Snapshot()))
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// sortedSnapshot re-marshals a snapshot through ordered maps so the JSON
// document is deterministic (encoding/json already sorts map keys; this
// exists so the contract is explicit and future-proof).
func sortedSnapshot(s Snapshot) Snapshot {
	// encoding/json sorts map keys; nothing further needed today.
	return s
}

// Server is a running metrics/debug HTTP server (see Serve).
type Server struct {
	listener net.Listener
	srv      *http.Server
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the opt-in introspection endpoint on addr: /metrics (and /)
// exposes the registry in Prometheus text or JSON, and /debug/pprof/* serves
// the standard Go profiles. It returns immediately; the server runs until
// Close. Used by pawmaster/pawworker's -metrics flag.
func Serve(addr string, r *Registry) (*Server, error) {
	return ServeWith(addr, r, nil)
}

// ServeWith is Serve with additional handlers mounted on the same listener —
// the nodes' /traces, /healthz and /readyz surfaces ride the metrics server
// rather than their own port. Extra patterns must not collide with /metrics,
// / or /debug/pprof/ (http.ServeMux panics on duplicates, by design).
func ServeWith(addr string, r *Registry, extra map[string]http.Handler) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	h := Handler(r)
	mux.Handle("/metrics", h)
	mux.Handle("/", h)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, handler := range extra {
		mux.Handle(pattern, handler)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(l) }()
	return &Server{listener: l, srv: srv}, nil
}

// Healthz is the liveness handler: a flat 200 while the process serves HTTP
// at all. Readiness is the interesting signal; see Readyz.
func Healthz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// Readyz adapts a readiness check into a handler: 200 "ok" when check
// reports ready, 503 with the reason otherwise. Load balancers and the
// distributed example gate traffic on it (a master mid-cutover or a worker
// that has not installed its placement is alive but not ready).
func Readyz(check func() (ready bool, reason string)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		ready, reason := check()
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, reason)
			return
		}
		fmt.Fprintln(w, "ok")
	})
}

// SortedNames returns the registered instrument names in lexicographic
// order; handy for rendering snapshots.
func SortedNames[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
