// Package obs is the zero-dependency telemetry substrate of the PAW stack:
// atomic counters, gauges, duration timers and fixed-bucket histograms behind
// a Registry, plus lightweight phase spans with monotonic timings.
//
// Design constraints (see DESIGN.md §9):
//
//   - Allocation-free when disabled. Every instrument method is a no-op on a
//     nil receiver, and a nil *Registry hands out nil instruments, so a
//     component instrumented against a disabled registry compiles down to a
//     handful of nil checks on its hot paths — testing.AllocsPerRun == 0 on
//     the router hot path is asserted in internal/router.
//   - Deterministic-build-safe. Instruments only count and time; they never
//     feed back into construction or routing decisions, so sealed-layout
//     digests are byte-identical with telemetry on or off (asserted in
//     internal/sim).
//   - Zero dependencies. Standard library only; safe to import from every
//     layer, including parbuild and layout.
//
// Exposure is layered on top: WritePrometheus/Snapshot for the /metrics
// handler (http.go), and snapshot-driven build reports (layout.BuildReport).
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The nil Counter is a
// valid no-op instrument.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d. No-op on nil.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The nil Gauge is a valid no-op
// instrument.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on nil.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d (use negative d to decrement). No-op on nil.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// SetMax raises the gauge to v if v exceeds the current value (atomic
// compare-and-swap loop); used for high-water marks such as recursion depth.
// No-op on nil.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer accumulates a call count and total duration. The nil Timer is a
// valid no-op instrument.
type Timer struct {
	count atomic.Int64
	ns    atomic.Int64
}

// Observe records one call of duration d. No-op on nil.
func (t *Timer) Observe(d time.Duration) {
	if t != nil {
		t.count.Add(1)
		t.ns.Add(int64(d))
	}
}

// Count returns the recorded call count (0 on nil).
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// TotalNs returns the accumulated duration in nanoseconds (0 on nil).
func (t *Timer) TotalNs() int64 {
	if t == nil {
		return 0
	}
	return t.ns.Load()
}

// Span is an in-flight phase measurement: Start captures a monotonic
// timestamp, End records the elapsed duration into the owning Timer. The
// zero Span (from a nil Timer) is a no-op and never reads the clock.
type Span struct {
	t     *Timer
	start time.Time
}

// Start opens a span on the timer. On a nil Timer the returned span is a
// no-op that never touches the clock.
func (t *Timer) Start() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, start: time.Now()}
}

// End closes the span, accumulating its monotonic elapsed time.
func (s Span) End() {
	if s.t != nil {
		s.t.Observe(time.Since(s.start))
	}
}

// Histogram is a fixed-bucket histogram with atomic bucket counts. Bounds
// are ascending upper bounds; observations beyond the last bound land in an
// implicit +Inf bucket. The nil Histogram is a valid no-op instrument.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomicFloat
}

// atomicFloat is a float64 accumulated by compare-and-swap on its bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		cur := math.Float64frombits(old)
		if f.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// newHistogram copies and sorts the bounds. At least one bound is required;
// callers passing none get a single +Inf bucket.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; small bucket sets make this a
	// couple of comparisons.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.add(v)
}

// ObserveDuration records a duration in nanoseconds. No-op on nil.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(float64(d)) }

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Bounds returns the bucket upper bounds (nil on nil).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns the per-bucket counts, one per bound plus the final
// +Inf bucket (nil on nil).
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// LatencyBuckets are the default nanosecond bounds for latency histograms:
// roughly exponential from 1 µs to 10 s.
func LatencyBuckets() []float64 {
	return []float64{
		1e3, 2.5e3, 5e3, // ns: 1–5 µs
		1e4, 2.5e4, 5e4, // 10–50 µs
		1e5, 2.5e5, 5e5, // 100–500 µs
		1e6, 2.5e6, 5e6, // 1–5 ms
		1e7, 2.5e7, 5e7, // 10–50 ms
		1e8, 2.5e8, 5e8, // 100–500 ms
		1e9, 2.5e9, 5e9, 1e10, // 1–10 s
	}
}

// ByteBuckets are the default bounds for byte-volume histograms (per-request
// decoded or skipped payload): powers of four from 256 B to 1 GB.
func ByteBuckets() []float64 {
	return []float64{
		1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18,
		1 << 20, 1 << 22, 1 << 24, 1 << 26, 1 << 28, 1 << 30,
	}
}

// instrument kinds, for name-collision detection.
const (
	kindCounter = iota
	kindGauge
	kindTimer
	kindHistogram
)

type entry struct {
	name string
	kind int
	c    *Counter
	g    *Gauge
	t    *Timer
	h    *Histogram
}

// Registry owns a named set of instruments. The nil *Registry is the
// disabled registry: every constructor returns a nil instrument, whose
// methods are no-ops, so instrumented code runs allocation-free.
//
// Instrument names follow the Prometheus convention (snake_case, _total
// suffix on counters) and may carry a literal label set, e.g.
// `dist_worker_calls_total{worker="2"}` — the exposition formats pass the
// label block through verbatim.
type Registry struct {
	mu      sync.Mutex
	entries []entry // insertion order, for deterministic exposition
	byName  map[string]int
}

// New returns an enabled, empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// lookup returns the entry index for name, creating it with mk when absent.
// Creating a name that exists with a different kind panics: that is an
// instrumentation bug, not a runtime condition.
func (r *Registry) lookup(name string, kind int, mk func() entry) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		if r.entries[i].kind != kind {
			panic("obs: instrument " + name + " re-registered with a different kind")
		}
		return i
	}
	e := mk()
	e.name = name
	e.kind = kind
	r.entries = append(r.entries, e)
	r.byName[name] = len(r.entries) - 1
	return len(r.entries) - 1
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	i := r.lookup(name, kindCounter, func() entry { return entry{c: &Counter{}} })
	return r.entries[i].c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	i := r.lookup(name, kindGauge, func() entry { return entry{g: &Gauge{}} })
	return r.entries[i].g
}

// Timer returns the named timer, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	i := r.lookup(name, kindTimer, func() entry { return entry{t: &Timer{}} })
	return r.entries[i].t
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls reuse the first bounds). Returns nil on a
// nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	i := r.lookup(name, kindHistogram, func() entry { return entry{h: newHistogram(bounds)} })
	return r.entries[i].h
}

// TimerStat is a timer's snapshot value.
type TimerStat struct {
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
}

// HistogramStat is a histogram's snapshot value. Counts has one entry per
// bound plus a final +Inf bucket.
type HistogramStat struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every instrument, JSON-encodable and
// safe to read after the registry keeps mutating.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]int64         `json:"gauges,omitempty"`
	Timers     map[string]TimerStat     `json:"timers,omitempty"`
	Histograms map[string]HistogramStat `json:"histograms,omitempty"`
}

// Counter returns the snapshot value of a counter (0 when absent); tolerant
// of a zero-value Snapshot.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the snapshot value of a gauge (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Timer returns the snapshot value of a timer (zero when absent).
func (s Snapshot) Timer(name string) TimerStat { return s.Timers[name] }

// Snapshot captures every instrument. On a nil registry it returns an empty
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Timers:     map[string]TimerStat{},
		Histograms: map[string]HistogramStat{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	entries := append([]entry(nil), r.entries...)
	r.mu.Unlock()
	for _, e := range entries {
		switch e.kind {
		case kindCounter:
			snap.Counters[e.name] = e.c.Value()
		case kindGauge:
			snap.Gauges[e.name] = e.g.Value()
		case kindTimer:
			snap.Timers[e.name] = TimerStat{Count: e.t.Count(), TotalNs: e.t.TotalNs()}
		case kindHistogram:
			snap.Histograms[e.name] = HistogramStat{
				Bounds: e.h.Bounds(),
				Counts: e.h.BucketCounts(),
				Count:  e.h.Count(),
				Sum:    e.h.Sum(),
			}
		}
	}
	return snap
}

// Label appends a {key="value"} block to an instrument name, merging into an
// existing label block when the name already carries one. Used for small
// fixed cardinalities (per-worker counters); the exposition formats pass the
// block through verbatim.
func Label(name, key, value string) string {
	if n := len(name); n > 0 && name[n-1] == '}' {
		return name[:n-1] + `,` + key + `="` + value + `"}`
	}
	return name + `{` + key + `="` + value + `"}`
}
