package obs

import (
	"fmt"
	"log/slog"
	"os"
	"strings"
)

// ParseLevel maps a CLI -log-level string onto a slog.Level. Accepted:
// debug, info, warn, error (case-insensitive).
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (debug|info|warn|error)", s)
}

// SetupLogger installs a structured text logger on stderr at the given level
// as the process default and returns it. CLIs call this once from main so
// every layer logging through slog honours -log-level.
func SetupLogger(level string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	lg := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
	slog.SetDefault(lg)
	return lg, nil
}
