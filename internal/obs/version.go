package obs

import "runtime/debug"

// BuildVersion returns the binary's VCS identity as recorded by the Go
// toolchain — a `git describe`-style "commit[-dirty]" string — or the main
// module version when the build carries no VCS stamp (e.g. `go test`).
// Report writers (pawcli build, pawbench) stamp their JSON artifacts with it
// so a benchmark file can always be traced back to the code that produced it.
func BuildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + dirty
	}
	return bi.Main.Version
}
