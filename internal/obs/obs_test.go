package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentHammer exercises every instrument kind from many goroutines;
// run under -race (make race covers internal/obs) the test doubles as the
// data-race gate, and the final values pin down atomicity.
func TestConcurrentHammer(t *testing.T) {
	r := New()
	c := r.Counter("hammer_total")
	g := r.Gauge("hammer_gauge")
	hw := r.Gauge("hammer_highwater")
	tm := r.Timer("hammer_ns")
	h := r.Histogram("hammer_hist", []float64{10, 100, 1000})

	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				hw.SetMax(int64(i*perG + j))
				tm.Observe(time.Nanosecond)
				h.Observe(float64(j % 2000))
			}
		}(i)
	}
	wg.Wait()

	const n = goroutines * perG
	if got := c.Value(); got != n {
		t.Errorf("counter = %d, want %d", got, n)
	}
	if got := g.Value(); got != n {
		t.Errorf("gauge = %d, want %d", got, n)
	}
	if got := hw.Value(); got != n-1 {
		t.Errorf("high-water gauge = %d, want %d", got, n-1)
	}
	if got := tm.Count(); got != n {
		t.Errorf("timer count = %d, want %d", got, n)
	}
	if got, want := tm.TotalNs(), int64(n); got != want {
		t.Errorf("timer ns = %d, want %d", got, want)
	}
	if got := h.Count(); got != n {
		t.Errorf("histogram count = %d, want %d", got, n)
	}
	var bucketSum int64
	for _, b := range h.BucketCounts() {
		bucketSum += b
	}
	if bucketSum != n {
		t.Errorf("bucket counts sum to %d, want %d", bucketSum, n)
	}
}

// TestHistogramBucketBoundaries pins the boundary rule: an observation equal
// to a bound lands in that bound's bucket (cumulative le semantics), and
// anything beyond the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		name   string
		bounds []float64
		obs    []float64
		want   []int64 // per-bucket, last = +Inf
	}{
		{
			name:   "exact bounds are inclusive",
			bounds: []float64{1, 10, 100},
			obs:    []float64{1, 10, 100},
			want:   []int64{1, 1, 1, 0},
		},
		{
			name:   "just above a bound moves up",
			bounds: []float64{1, 10, 100},
			obs:    []float64{1.0000001, 10.5, 100.5},
			want:   []int64{0, 1, 1, 1},
		},
		{
			name:   "below first bound",
			bounds: []float64{1, 10},
			obs:    []float64{0, -5, 0.999},
			want:   []int64{3, 0, 0},
		},
		{
			name:   "overflow bucket",
			bounds: []float64{1},
			obs:    []float64{2, 3, math.Inf(1)},
			want:   []int64{0, 3},
		},
		{
			name:   "unsorted bounds are sorted at creation",
			bounds: []float64{100, 1, 10},
			obs:    []float64{0.5, 5, 50, 500},
			want:   []int64{1, 1, 1, 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram(tc.bounds)
			for _, v := range tc.obs {
				h.Observe(v)
			}
			got := h.BucketCounts()
			if len(got) != len(tc.want) {
				t.Fatalf("bucket count = %d, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("bucket[%d] = %d, want %d (buckets %v)", i, got[i], tc.want[i], got)
				}
			}
		})
	}
}

// TestDisabledRegistryZeroAlloc asserts the disabled path allocates nothing:
// a nil registry hands out nil instruments whose methods must not allocate
// (the same contract the router hot path relies on).
func TestDisabledRegistryZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	tm := r.Timer("x_ns")
	h := r.Histogram("x_hist", LatencyBuckets())
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.SetMax(9)
		tm.Observe(time.Microsecond)
		sp := tm.Start()
		sp.End()
		h.Observe(42)
	})
	if allocs != 0 {
		t.Fatalf("disabled instruments allocated %.1f/run, want 0", allocs)
	}
}

// TestEnabledHotPathZeroAlloc: even enabled, counters/gauges/histograms are
// allocation-free per observation.
func TestEnabledHotPathZeroAlloc(t *testing.T) {
	r := New()
	c := r.Counter("x_total")
	h := r.Histogram("x_hist", LatencyBuckets())
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(1e6)
	})
	if allocs != 0 {
		t.Fatalf("enabled hot-path instruments allocated %.1f/run, want 0", allocs)
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := New()
	r.Counter("same_name")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a name with a different kind must panic")
		}
	}()
	r.Gauge("same_name")
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	r := New()
	a := r.Counter("c_total")
	b := r.Counter("c_total")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliased counter does not share state")
	}
}

func TestSpanRecordsElapsed(t *testing.T) {
	r := New()
	tm := r.Timer("phase_ns")
	sp := tm.Start()
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if tm.Count() != 1 {
		t.Fatalf("span count = %d, want 1", tm.Count())
	}
	if tm.TotalNs() < int64(time.Millisecond) {
		t.Fatalf("span recorded %dns, want >= 1ms", tm.TotalNs())
	}
}

func TestLabel(t *testing.T) {
	if got := Label("dist_worker_calls_total", "worker", "2"); got != `dist_worker_calls_total{worker="2"}` {
		t.Errorf("Label = %q", got)
	}
	if got := Label(`x{a="1"}`, "b", "2"); got != `x{a="1",b="2"}` {
		t.Errorf("Label merge = %q", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("q_total").Add(3)
	r.Gauge("inflight").Set(2)
	tm := r.Timer("phase_ns")
	tm.Observe(5 * time.Millisecond)
	h := r.Histogram("lat_ns", []float64{100, 1000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)
	r.Counter(Label("per_worker_total", "worker", "0")).Add(7)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE q_total counter",
		"q_total 3",
		"inflight 2",
		"phase_ns_count 1",
		`lat_ns_bucket{le="100"} 1`,
		`lat_ns_bucket{le="1000"} 2`,
		`lat_ns_bucket{le="+Inf"} 3`,
		"lat_ns_count 3",
		`per_worker_total{worker="0"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerJSONAndText(t *testing.T) {
	r := New()
	r.Counter("j_total").Add(11)
	h := Handler(r)

	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/metrics?format=json", nil))
	var snap Snapshot
	if err := json.Unmarshal(rw.Body.Bytes(), &snap); err != nil {
		t.Fatalf("JSON decode: %v\n%s", err, rw.Body.String())
	}
	if snap.Counter("j_total") != 11 {
		t.Fatalf("JSON snapshot counter = %d, want 11", snap.Counter("j_total"))
	}

	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rw.Body.String(), "j_total 11") {
		t.Fatalf("text exposition missing counter:\n%s", rw.Body.String())
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	r := New()
	r.Counter("served_total").Add(1)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), "served_total 1") {
		t.Fatalf("metrics endpoint missing counter:\n%s", body[:n])
	}

	resp, err = http.Get("http://" + srv.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint status %d", resp.StatusCode)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "warn": "WARN", "error": "ERROR", "": "INFO",
	} {
		lv, err := ParseLevel(in)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", in, err)
		}
		if lv.String() != want {
			t.Errorf("ParseLevel(%q) = %s, want %s", in, lv, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("invalid level must error")
	}
}

func TestServeWithHealthEndpoints(t *testing.T) {
	ready := false
	reason := "placement not installed"
	srv, err := ServeWith("127.0.0.1:0", New(), map[string]http.Handler{
		"/healthz": Healthz(),
		"/readyz":  Readyz(func() (bool, string) { return ready, reason }),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 256)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		return resp.StatusCode, strings.TrimSpace(string(body[:n]))
	}

	if code, body := get("/healthz"); code != http.StatusOK || body != "ok" {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body != reason {
		t.Fatalf("not-ready /readyz: %d %q, want 503 with the reason", code, body)
	}
	ready = true
	if code, body := get("/readyz"); code != http.StatusOK || body != "ok" {
		t.Fatalf("ready /readyz: %d %q", code, body)
	}
	// The metrics surface still rides the same listener.
	if code, _ := get("/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics alongside extras: %d", code)
	}
}
