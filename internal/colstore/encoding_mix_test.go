package colstore

import (
	"testing"

	"paw/internal/dataset"
)

// TestScanStatsEncodingMix: a table with one column per physical encoding —
// long runs (RLE), few distinct fractions (dictionary), high-cardinality
// integers (FOR), incompressible fractions (raw) — scanned with a predicate
// that keeps every group and every column active must tally exactly one
// decoded chunk per encoding per group. These tallies feed the enc_* span
// attributes of the distributed scan traces.
func TestScanStatsEncodingMix(t *testing.T) {
	const n, groupRows = 8000, 1000
	cols := [][]float64{
		make([]float64, n), // runs of 400: RLE in every group
		make([]float64, n), // 7 distinct fractions: dictionary
		make([]float64, n), // 5000 distinct integers: frame-of-reference
		make([]float64, n), // ~1000 distinct fractions per group: raw
	}
	for i := 0; i < n; i++ {
		cols[0][i] = float64(i / 400)
		cols[1][i] = float64(i%7) / 7
		cols[2][i] = float64(i % 5000)
		cols[3][i] = float64((i*2654435761)%100003)/100003 + float64(i)*1e-9
	}
	data := dataset.MustNew([]string{"a", "b", "c", "d"}, cols)
	tab := FromDataset(data, nil, groupRows)

	counts := tab.EncodingCounts()
	groups := n / groupRows
	for _, enc := range []string{"rle", "dict", "for", "raw"} {
		if counts[enc] != groups {
			t.Fatalf("table must hold one %s chunk per group: %v", enc, counts)
		}
	}

	// Trim every dimension slightly below its domain: no group is pruned, no
	// group empties, and every column is either an active predicate or
	// decoded at materialization — each tallied exactly once per group.
	q := data.Domain()
	for d := range q.Lo {
		q.Lo[d] += 1e-4
	}
	sc := NewScanner()
	_, st := sc.Scan(tab, q)
	if st.GroupsRead != groups || st.GroupsSkipped != 0 {
		t.Fatalf("scan pruned groups the query covers: %+v", st)
	}
	if st.ColsRLE != groups || st.ColsDict != groups || st.ColsFOR != groups || st.ColsRaw != groups {
		t.Fatalf("encoding mix miscounted: rle=%d dict=%d for=%d raw=%d, want %d each",
			st.ColsRLE, st.ColsDict, st.ColsFOR, st.ColsRaw, groups)
	}

	// A count-only pass over a query that zone-prunes nothing but matches no
	// rows on the most selective dimension stops after that one column: the
	// tallies must reflect chunks actually decoded, not columns in the table.
	empty := data.Domain()
	empty.Lo[1], empty.Hi[1] = 0.30, 0.40 // between 2/7 and 3/7: no dictionary value
	st2 := sc.Count(tab, empty)
	if st2.Matched != 0 {
		t.Fatalf("probe between dictionary values matched %d rows", st2.Matched)
	}
	if got := st2.ColsRaw + st2.ColsDict + st2.ColsRLE + st2.ColsFOR; got >= st2.GroupsRead*len(cols) {
		t.Fatalf("empty-match scan decoded every column (%d chunks over %d groups) — selection must short-circuit",
			got, st2.GroupsRead)
	}

	// Accumulation across partitions (the worker batch path) is additive.
	var agg ScanStats
	agg.Add(st)
	agg.Add(st)
	if agg.ColsRLE != 2*st.ColsRLE || agg.ColsRaw != 2*st.ColsRaw {
		t.Fatalf("ScanStats.Add must accumulate encoding tallies: %+v", agg)
	}
}
