package colstore

import (
	"bytes"
	"testing"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/workload"
)

func TestFromDatasetShape(t *testing.T) {
	data := dataset.Uniform(1000, 3, 1)
	tab := FromDataset(data, nil, 128)
	if tab.NumRows() != 1000 || tab.Dims() != 3 {
		t.Fatalf("rows=%d dims=%d", tab.NumRows(), tab.Dims())
	}
	if got := tab.NumGroups(); got != 8 { // ceil(1000/128)
		t.Errorf("groups = %d, want 8", got)
	}
	if tab.Bytes() != 1000*3*dataset.BytesPerAttribute {
		t.Errorf("Bytes = %d", tab.Bytes())
	}
	// Default group size kicks in for invalid input.
	tab = FromDataset(data, nil, 0)
	if tab.NumGroups() != 1 {
		t.Errorf("default group size should hold all 1000 rows in one group, got %d", tab.NumGroups())
	}
}

func TestScanMatchesBruteForce(t *testing.T) {
	data := dataset.Uniform(5000, 2, 2)
	tab := FromDataset(data, nil, 256)
	w := workload.Uniform(data.Domain(), workload.Defaults(40, 3))
	for _, q := range w.Boxes() {
		pts, st := tab.Scan(q)
		want := data.CountInBox(q, nil)
		if st.Matched != want || len(pts) != want {
			t.Fatalf("Scan(%v) matched %d, want %d", q, st.Matched, want)
		}
		for _, p := range pts {
			if !q.Contains(p) {
				t.Fatalf("returned point %v outside query %v", p, q)
			}
		}
		cst := tab.Count(q)
		if cst.Matched != want {
			t.Fatalf("Count disagrees with Scan: %+v vs %+v", cst, st)
		}
		// Scan materialises covered columns that Count never decodes, so its
		// BytesRead may only exceed Count's.
		if cst.BytesRead > st.BytesRead {
			t.Fatalf("Count read %d bytes > Scan's %d", cst.BytesRead, st.BytesRead)
		}
	}
}

func TestRowGroupPruning(t *testing.T) {
	// Sorted data gives perfectly clustered row groups, so narrow queries
	// prune most groups.
	n := 10000
	col := make([]float64, n)
	for i := range col {
		col[i] = float64(i)
	}
	data := dataset.MustNew([]string{"x"}, [][]float64{col})
	tab := FromDataset(data, nil, 500) // 20 groups
	q := geom.Box{Lo: geom.Point{1000}, Hi: geom.Point{1499}}
	_, st := tab.Scan(q)
	if st.Matched != 500 {
		t.Errorf("matched %d, want 500", st.Matched)
	}
	if st.GroupsRead > 2 {
		t.Errorf("read %d groups, want <= 2 (pruning broken)", st.GroupsRead)
	}
	if st.GroupsSkipped < 18 {
		t.Errorf("skipped only %d groups", st.GroupsSkipped)
	}
	// Byte accounting: every encoded byte is either decoded or proven
	// skippable, and pruning plus encoding must beat a full decode.
	if st.BytesRead+st.BytesSkipped != tab.EncodedBytes() {
		t.Errorf("BytesRead %d + BytesSkipped %d != EncodedBytes %d",
			st.BytesRead, st.BytesSkipped, tab.EncodedBytes())
	}
	nst := tab.CountNaive(q)
	if st.BytesRead > nst.BytesRead {
		t.Errorf("vectorized scan read %d bytes, naive read %d", st.BytesRead, nst.BytesRead)
	}
	if nst.Matched != st.Matched {
		t.Errorf("naive matched %d, vectorized %d", nst.Matched, st.Matched)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data := dataset.TPCHLike(800, 4)
	tab := FromDataset(data, nil, 100)
	var buf bytes.Buffer
	if err := tab.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tab.NumRows() || got.NumGroups() != tab.NumGroups() || got.Dims() != tab.Dims() {
		t.Fatalf("shape mismatch after round trip: %d/%d/%d", got.NumRows(), got.NumGroups(), got.Dims())
	}
	for i, n := range tab.Names() {
		if got.Names()[i] != n {
			t.Errorf("name %d = %q", i, got.Names()[i])
		}
	}
	// Scans must agree exactly.
	w := workload.Uniform(data.Domain(), workload.Defaults(20, 5))
	for _, q := range w.Boxes() {
		_, s1 := tab.Scan(q)
		_, s2 := got.Scan(q)
		if s1 != s2 {
			t.Fatalf("scan stats diverge after round trip: %+v vs %+v", s1, s2)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte{0, 1, 2, 3, 4, 5, 6, 7})); err == nil {
		t.Error("bad magic must error")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must error")
	}
	data := dataset.Uniform(100, 2, 6)
	tab := FromDataset(data, nil, 10)
	var buf bytes.Buffer
	if err := tab.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(buf.Bytes()[:buf.Len()/3])); err == nil {
		t.Error("truncated input must error")
	}
}

func TestFromDatasetSubset(t *testing.T) {
	data := dataset.Uniform(100, 2, 7)
	tab := FromDataset(data, []int{1, 3, 5, 7}, 2)
	if tab.NumRows() != 4 || tab.NumGroups() != 2 {
		t.Errorf("rows=%d groups=%d", tab.NumRows(), tab.NumGroups())
	}
	_, st := tab.Scan(data.Domain())
	if st.Matched != 4 {
		t.Errorf("matched %d", st.Matched)
	}
}
