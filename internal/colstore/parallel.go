package colstore

import (
	"sync"

	"paw/internal/geom"
	"paw/internal/parbuild"
)

// ScannerPool hands out reusable Scanners. It is safe for concurrent use
// and allocation-free in steady state: a scanner returned with Put is
// reused with its grown buffers intact.
type ScannerPool struct {
	p sync.Pool
}

// Get returns a scanner, creating one when the pool is empty.
func (sp *ScannerPool) Get() *Scanner {
	if s, ok := sp.p.Get().(*Scanner); ok {
		return s
	}
	return NewScanner()
}

// Put returns a scanner for reuse.
func (sp *ScannerPool) Put(s *Scanner) { sp.p.Put(s) }

// defaultScanners backs the convenience Table.Scan/Count entry points.
var defaultScanners ScannerPool

// parallelMinGroups is the minimum row-group count per fan-out chunk: below
// this the per-task overhead outweighs the scan work.
const parallelMinGroups = 4

// CountParallel evaluates q across the table's row groups in parallel on
// the given bounded pool, merging per-chunk statistics in chunk order so
// the totals are deterministic at any worker count. sp supplies per-task
// scanner scratch (nil uses the package pool). A nil/serial pool or a small
// table degrades to the serial kernel.
func (t *Table) CountParallel(q geom.Box, pool *parbuild.Pool, sp *ScannerPool) ScanStats {
	if sp == nil {
		sp = &defaultScanners
	}
	groups := len(t.groups)
	if pool.Workers() <= 1 || groups < 2*parallelMinGroups {
		s := sp.Get()
		defer sp.Put(s)
		return s.Count(t, q)
	}
	zi := t.zoneIndex(q)
	lead := sp.Get()
	defer sp.Put(lead)
	if cap(lead.chunks) < pool.Workers() {
		lead.chunks = make([]ScanStats, pool.Workers())
	}
	chunkStats := lead.chunks[:pool.Workers()]
	n := pool.FanChunks(pool.RootSlot(), groups, parallelMinGroups, func(c, lo, hi, slot int) {
		s := sp.Get()
		defer sp.Put(s)
		var st ScanStats
		s.scanGroups(t, q, lo, hi, zi, false, &st)
		chunkStats[c] = st
	})
	var total ScanStats
	for c := 0; c < n; c++ {
		total.Add(chunkStats[c])
	}
	return total
}
