package colstore

import (
	"testing"

	"paw/internal/dataset"
)

func TestGroupAccessors(t *testing.T) {
	data := dataset.Uniform(1000, 3, 20)
	tab := FromDataset(data, nil, 250) // 4 groups
	if tab.NumGroups() != 4 {
		t.Fatalf("groups = %d", tab.NumGroups())
	}
	var totalRows int
	var totalBytes int64
	for g := 0; g < tab.NumGroups(); g++ {
		rows := tab.GroupRows(g)
		totalRows += rows
		totalBytes += tab.GroupBytes(g)
		if tab.GroupBytes(g) != int64(rows)*3*dataset.BytesPerAttribute {
			t.Errorf("group %d bytes = %d for %d rows", g, tab.GroupBytes(g), rows)
		}
		st := tab.GroupStats(g)
		if st.Count != int64(rows) {
			t.Errorf("group %d stats count %d vs rows %d", g, st.Count, rows)
		}
		pts := tab.GroupPoints(g)
		if len(pts) != rows {
			t.Fatalf("group %d materialised %d of %d points", g, len(pts), rows)
		}
		// Every materialised point lies inside the group's SMA envelope.
		env := st.MBR()
		for _, p := range pts {
			if !env.Contains(p) {
				t.Fatalf("group %d point %v escapes envelope %v", g, p, env)
			}
		}
	}
	if totalRows != 1000 {
		t.Errorf("groups cover %d rows", totalRows)
	}
	if totalBytes != tab.Bytes() {
		t.Errorf("group bytes sum %d vs table %d", totalBytes, tab.Bytes())
	}
}

func TestGroupPointsMatchSource(t *testing.T) {
	data := dataset.Uniform(100, 2, 21)
	tab := FromDataset(data, nil, 30)
	// Concatenated group points reproduce the source rows in order.
	i := 0
	for g := 0; g < tab.NumGroups(); g++ {
		for _, p := range tab.GroupPoints(g) {
			if p[0] != data.At(i, 0) || p[1] != data.At(i, 1) {
				t.Fatalf("row %d mismatch: %v vs (%v,%v)", i, p, data.At(i, 0), data.At(i, 1))
			}
			i++
		}
	}
	if i != 100 {
		t.Errorf("iterated %d rows", i)
	}
}

// failWriter errors after n bytes, driving Encode's error paths.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errFail
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, errFail
	}
	return n, nil
}

type failErr struct{}

func (failErr) Error() string { return "simulated write failure" }

var errFail = failErr{}

func TestEncodeWriteFailures(t *testing.T) {
	data := dataset.Uniform(200, 2, 22)
	tab := FromDataset(data, nil, 50)
	// Failing at a spread of offsets exercises every Encode stage. bufio
	// may defer the error to Flush, but Encode must always surface it.
	for _, cut := range []int{0, 3, 6, 10, 20, 100, 1000, 3000} {
		if err := tab.Encode(&failWriter{left: cut}); err == nil {
			t.Errorf("Encode with %d-byte budget must fail", cut)
		}
	}
}
