// Package colstore is the repository's Parquet stand-in: a columnar table
// format with fixed-size row groups, per-group min/max statistics (SMAs) and
// a binary encoding. Scans prune whole row groups whose statistics miss the
// query — the "row group based pruning" the paper credits for the
// sub-linear end-to-end times of Fig. 15b.
package colstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/sma"
)

// DefaultGroupRows is the default row-group size. Parquet's default row
// group is large (tens of MB); scaled to this repository's 1/1000 world a
// few thousand rows per group gives comparable pruning granularity.
const DefaultGroupRows = 4096

// Table is an immutable columnar table split into row groups.
type Table struct {
	names  []string
	groups []rowGroup
	rows   int
}

type rowGroup struct {
	cols  [][]float64
	stats sma.Aggregates
}

// FromDataset materialises the given rows of data (all rows when rows is
// nil) into a columnar table with groupRows rows per row group.
func FromDataset(data *dataset.Dataset, rows []int, groupRows int) *Table {
	if groupRows < 1 {
		groupRows = DefaultGroupRows
	}
	if rows == nil {
		rows = make([]int, data.NumRows())
		for i := range rows {
			rows[i] = i
		}
	}
	t := &Table{names: append([]string(nil), data.Names()...), rows: len(rows)}
	dims := data.Dims()
	for s := 0; s < len(rows); s += groupRows {
		e := s + groupRows
		if e > len(rows) {
			e = len(rows)
		}
		chunk := rows[s:e]
		g := rowGroup{cols: make([][]float64, dims)}
		for d := 0; d < dims; d++ {
			col := make([]float64, len(chunk))
			for j, r := range chunk {
				col[j] = data.At(r, d)
			}
			g.cols[d] = col
		}
		g.stats = sma.Compute(data, chunk)
		t.groups = append(t.groups, g)
	}
	return t
}

// NumRows returns the total row count.
func (t *Table) NumRows() int { return t.rows }

// NumGroups returns the row-group count.
func (t *Table) NumGroups() int { return len(t.groups) }

// Dims returns the column count.
func (t *Table) Dims() int { return len(t.names) }

// Names returns the column names.
func (t *Table) Names() []string { return t.names }

// Bytes returns the simulated physical size of the table.
func (t *Table) Bytes() int64 {
	return int64(t.rows) * int64(t.Dims()) * dataset.BytesPerAttribute
}

// ScanStats reports what a scan did: rows matched, bytes actually read after
// row-group pruning, and groups skipped.
type ScanStats struct {
	Matched       int
	BytesRead     int64
	GroupsRead    int
	GroupsSkipped int
}

// Scan evaluates the range query q, pruning row groups via their SMAs, and
// returns the matched row values (materialised as points) plus scan
// statistics.
func (t *Table) Scan(q geom.Box) ([]geom.Point, ScanStats) {
	var out []geom.Point
	var st ScanStats
	dims := t.Dims()
	for _, g := range t.groups {
		if g.stats.CanPrune(q) {
			st.GroupsSkipped++
			continue
		}
		st.GroupsRead++
		n := len(g.cols[0])
		st.BytesRead += int64(n) * int64(dims) * dataset.BytesPerAttribute
	rowLoop:
		for i := 0; i < n; i++ {
			for d := 0; d < dims; d++ {
				v := g.cols[d][i]
				if v < q.Lo[d] || v > q.Hi[d] {
					continue rowLoop
				}
			}
			p := make(geom.Point, dims)
			for d := 0; d < dims; d++ {
				p[d] = g.cols[d][i]
			}
			out = append(out, p)
			st.Matched++
		}
	}
	return out, st
}

// Count is Scan without materialising rows.
func (t *Table) Count(q geom.Box) ScanStats {
	var st ScanStats
	dims := t.Dims()
	for _, g := range t.groups {
		if g.stats.CanPrune(q) {
			st.GroupsSkipped++
			continue
		}
		st.GroupsRead++
		n := len(g.cols[0])
		st.BytesRead += int64(n) * int64(dims) * dataset.BytesPerAttribute
	rowLoop:
		for i := 0; i < n; i++ {
			for d := 0; d < dims; d++ {
				v := g.cols[d][i]
				if v < q.Lo[d] || v > q.Hi[d] {
					continue rowLoop
				}
			}
			st.Matched++
		}
	}
	return st
}

// GroupStats returns the SMA aggregates of row group i.
func (t *Table) GroupStats(i int) sma.Aggregates { return t.groups[i].stats }

// GroupRows returns the row count of row group i.
func (t *Table) GroupRows(i int) int { return len(t.groups[i].cols[0]) }

// GroupBytes returns the simulated physical size of row group i.
func (t *Table) GroupBytes(i int) int64 {
	return int64(t.GroupRows(i)) * int64(t.Dims()) * dataset.BytesPerAttribute
}

// GroupPoints materialises row group i as points (reading the whole group,
// as a scan would).
func (t *Table) GroupPoints(i int) []geom.Point {
	g := t.groups[i]
	n := len(g.cols[0])
	dims := t.Dims()
	out := make([]geom.Point, n)
	for r := 0; r < n; r++ {
		p := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			p[d] = g.cols[d][r]
		}
		out[r] = p
	}
	return out
}

// Binary format:
//
//	magic    uint32 'PAWC'
//	version  uint16 1
//	dims     uint16
//	groups   uint32
//	names    (uint16 len + bytes) per column
//	per group: rows uint32, then dims columns of rows float64,
//	           then SMA: count int64, min/max/sum per dim
const (
	colMagic   = 0x50415743 // "PAWC"
	colVersion = 1
)

// Encode writes the table in the PAWC binary format.
func (t *Table) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	write := func(v any) error { return binary.Write(bw, le, v) }
	if err := write(uint32(colMagic)); err != nil {
		return err
	}
	if err := write(uint16(colVersion)); err != nil {
		return err
	}
	if err := write(uint16(t.Dims())); err != nil {
		return err
	}
	if err := write(uint32(len(t.groups))); err != nil {
		return err
	}
	for _, n := range t.names {
		if err := write(uint16(len(n))); err != nil {
			return err
		}
		if _, err := bw.WriteString(n); err != nil {
			return err
		}
	}
	for _, g := range t.groups {
		if err := write(uint32(len(g.cols[0]))); err != nil {
			return err
		}
		for _, col := range g.cols {
			for _, v := range col {
				if err := write(math.Float64bits(v)); err != nil {
					return err
				}
			}
		}
		if err := write(g.stats.Count); err != nil {
			return err
		}
		for d := 0; d < t.Dims(); d++ {
			if err := write(g.stats.Min[d]); err != nil {
				return err
			}
			if err := write(g.stats.Max[d]); err != nil {
				return err
			}
			if err := write(g.stats.Sum[d]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Decode reads a table in the PAWC binary format.
func Decode(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var magic uint32
	if err := binary.Read(br, le, &magic); err != nil {
		return nil, fmt.Errorf("colstore: reading magic: %w", err)
	}
	if magic != colMagic {
		return nil, fmt.Errorf("colstore: bad magic %#x", magic)
	}
	var version, dims uint16
	if err := binary.Read(br, le, &version); err != nil {
		return nil, err
	}
	if version != colVersion {
		return nil, fmt.Errorf("colstore: unsupported version %d", version)
	}
	if err := binary.Read(br, le, &dims); err != nil {
		return nil, err
	}
	if dims == 0 {
		return nil, fmt.Errorf("colstore: zero columns")
	}
	var groups uint32
	if err := binary.Read(br, le, &groups); err != nil {
		return nil, err
	}
	t := &Table{names: make([]string, dims)}
	for i := range t.names {
		var n uint16
		if err := binary.Read(br, le, &n); err != nil {
			return nil, err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, err
		}
		t.names[i] = string(b)
	}
	for gi := uint32(0); gi < groups; gi++ {
		var rows uint32
		if err := binary.Read(br, le, &rows); err != nil {
			return nil, err
		}
		g := rowGroup{cols: make([][]float64, dims)}
		for d := range g.cols {
			col := make([]float64, rows)
			for j := range col {
				var bits uint64
				if err := binary.Read(br, le, &bits); err != nil {
					return nil, fmt.Errorf("colstore: group %d col %d: %w", gi, d, err)
				}
				col[j] = math.Float64frombits(bits)
			}
			g.cols[d] = col
		}
		g.stats = sma.Aggregates{
			Min: make([]float64, dims),
			Max: make([]float64, dims),
			Sum: make([]float64, dims),
		}
		if err := binary.Read(br, le, &g.stats.Count); err != nil {
			return nil, err
		}
		for d := 0; d < int(dims); d++ {
			if err := binary.Read(br, le, &g.stats.Min[d]); err != nil {
				return nil, err
			}
			if err := binary.Read(br, le, &g.stats.Max[d]); err != nil {
				return nil, err
			}
			if err := binary.Read(br, le, &g.stats.Sum[d]); err != nil {
				return nil, err
			}
		}
		t.rows += int(rows)
		t.groups = append(t.groups, g)
	}
	return t, nil
}
