// Package colstore is the repository's Parquet stand-in: a columnar table
// format with fixed-size row groups, per-group min/max statistics (SMAs),
// per-column lightweight compression and a binary encoding. Scans prune
// whole row groups whose statistics miss the query — the "row group based
// pruning" the paper credits for the sub-linear end-to-end times of
// Fig. 15b — and evaluate the surviving groups with vectorized kernels:
// predicates run directly on the encoded columns (dictionary codes, RLE
// runs, bit-packed deltas), a reusable selection vector carries survivors
// between columns, and only the rows that pass every predicate are decoded
// (late materialization). See DESIGN.md §11.
package colstore

import (
	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/sma"
)

// DefaultGroupRows is the default row-group size. Parquet's default row
// group is large (tens of MB); scaled to this repository's 1/1000 world a
// few thousand rows per group gives comparable pruning granularity.
const DefaultGroupRows = 4096

// Table is an immutable columnar table split into row groups. Every column
// chunk is stored under the cheapest exact encoding for its values
// (dictionary, run-length, frame-of-reference bit-packing, or raw), chosen
// independently per row group at build time.
type Table struct {
	names  []string
	groups []rowGroup
	rows   int
	zones  *zoneMaps
}

type rowGroup struct {
	cols  []column
	rows  int
	stats sma.Aggregates
}

// encodedBytes is the group's physical payload size under its encodings.
func (g *rowGroup) encodedBytes() int64 {
	var b int64
	for i := range g.cols {
		b += g.cols[i].payloadBytes()
	}
	return b
}

// FromDataset materialises the given rows of data (all rows when rows is
// nil) into a columnar table with groupRows rows per row group, choosing
// the cheapest exact encoding per column chunk.
func FromDataset(data *dataset.Dataset, rows []int, groupRows int) *Table {
	if groupRows < 1 {
		groupRows = DefaultGroupRows
	}
	if rows == nil {
		rows = make([]int, data.NumRows())
		for i := range rows {
			rows[i] = i
		}
	}
	t := &Table{names: append([]string(nil), data.Names()...), rows: len(rows)}
	dims := data.Dims()
	var vals, sortScratch []float64
	for s := 0; s < len(rows); s += groupRows {
		e := s + groupRows
		if e > len(rows) {
			e = len(rows)
		}
		chunk := rows[s:e]
		g := rowGroup{cols: make([]column, dims), rows: len(chunk)}
		for d := 0; d < dims; d++ {
			vals = vals[:0]
			for _, r := range chunk {
				vals = append(vals, data.At(r, d))
			}
			g.cols[d], sortScratch = encodeColumn(vals, sortScratch)
		}
		g.stats = sma.Compute(data, chunk)
		t.groups = append(t.groups, g)
	}
	return t
}

// fromColumns rebuilds a table from fully decoded row groups (the PAWC v1
// decode path), re-encoding every column chunk with the same chooser the
// build path uses so v1 and v2 tables are indistinguishable in memory.
func fromColumns(names []string, groups [][][]float64, stats []sma.Aggregates) *Table {
	t := &Table{names: names}
	var sortScratch []float64
	for gi, cols := range groups {
		n := len(cols[0])
		g := rowGroup{cols: make([]column, len(cols)), rows: n, stats: stats[gi]}
		for d, vals := range cols {
			g.cols[d], sortScratch = encodeColumn(vals, sortScratch)
		}
		t.rows += n
		t.groups = append(t.groups, g)
	}
	return t
}

// NumRows returns the total row count.
func (t *Table) NumRows() int { return t.rows }

// NumGroups returns the row-group count.
func (t *Table) NumGroups() int { return len(t.groups) }

// Dims returns the column count.
func (t *Table) Dims() int { return len(t.names) }

// Names returns the column names.
func (t *Table) Names() []string { return t.names }

// Bytes returns the simulated physical size of the table (the layout cost
// model's 16 bytes/attribute; see dataset.BytesPerAttribute). Compression
// is accounted separately via EncodedBytes.
func (t *Table) Bytes() int64 {
	return int64(t.rows) * int64(t.Dims()) * dataset.BytesPerAttribute
}

// EncodedBytes returns the physical payload size of the table under its
// chosen per-column encodings — the denominator of the scan kernels' byte
// accounting (ScanStats.BytesRead + ScanStats.BytesSkipped sums to this for
// a full-table scan).
func (t *Table) EncodedBytes() int64 {
	var b int64
	for i := range t.groups {
		b += t.groups[i].encodedBytes()
	}
	return b
}

// EncodingCounts tallies the physical encodings chosen across all row
// groups and columns, keyed by encoding name ("raw", "dict", "rle", "for").
func (t *Table) EncodingCounts() map[string]int {
	out := make(map[string]int)
	for gi := range t.groups {
		for d := range t.groups[gi].cols {
			out[t.groups[gi].cols[d].kind.String()]++
		}
	}
	return out
}

// ScanStats reports what a scan did. Byte accounting follows the encoded
// representation and late materialization: BytesRead counts only the
// encoded payload actually decoded (predicate columns touched plus
// materialized survivor values), never whole-group sizes; BytesSkipped is
// the encoded payload a naive decode-everything scan would have read but
// this scan proved it could skip. For any scan, BytesRead + BytesSkipped
// equals the table's EncodedBytes.
type ScanStats struct {
	// Matched is the number of rows satisfying the query.
	Matched int
	// BytesRead is the encoded payload actually decoded.
	BytesRead int64
	// BytesSkipped is the encoded payload proven skippable (pruned groups,
	// zone-map hits, covered columns, rows rejected before materialization).
	BytesSkipped int64
	// RowsDecoded is the number of rows materialized (0 for Count scans).
	RowsDecoded int64
	// GroupsRead / GroupsSkipped count row groups evaluated vs pruned.
	GroupsRead    int
	GroupsSkipped int
	// GroupsZoneSkipped is the subset of GroupsSkipped rejected by the
	// feature-vector zone maps rather than the min/max envelope.
	GroupsZoneSkipped int
	// ColsRaw..ColsFOR count the column chunks actually decoded, by
	// physical encoding — the encoding mix of the scan's real work
	// (predicate columns touched plus covered columns materialized). The
	// naive oracle decodes every column of every surviving group, so its
	// mix is the table's encoding census, not the kernel's.
	ColsRaw  int
	ColsDict int
	ColsRLE  int
	ColsFOR  int
}

// Add accumulates other into st (used when merging per-partition or
// per-chunk statistics).
func (st *ScanStats) Add(other ScanStats) {
	st.Matched += other.Matched
	st.BytesRead += other.BytesRead
	st.BytesSkipped += other.BytesSkipped
	st.RowsDecoded += other.RowsDecoded
	st.GroupsRead += other.GroupsRead
	st.GroupsSkipped += other.GroupsSkipped
	st.GroupsZoneSkipped += other.GroupsZoneSkipped
	st.ColsRaw += other.ColsRaw
	st.ColsDict += other.ColsDict
	st.ColsRLE += other.ColsRLE
	st.ColsFOR += other.ColsFOR
}

// Scan evaluates the range query q with the vectorized kernels and returns
// the matched row values materialised as points (all sharing one flat
// backing array) plus scan statistics. Callers on a hot path should hold a
// Scanner and use Scanner.Scan, which reuses its buffers across calls.
func (t *Table) Scan(q geom.Box) ([]geom.Point, ScanStats) {
	s := defaultScanners.Get()
	defer defaultScanners.Put(s)
	flat, st := s.Scan(t, q)
	if len(flat) == 0 {
		return nil, st
	}
	dims := t.Dims()
	backing := append([]float64(nil), flat...)
	out := make([]geom.Point, st.Matched)
	for r := range out {
		out[r] = backing[r*dims : (r+1)*dims : (r+1)*dims]
	}
	return out, st
}

// Count is Scan without materialising rows: the selection vector is
// evaluated but no values are decoded.
func (t *Table) Count(q geom.Box) ScanStats {
	s := defaultScanners.Get()
	defer defaultScanners.Put(s)
	return s.Count(t, q)
}

// GroupStats returns the SMA aggregates of row group i.
func (t *Table) GroupStats(i int) sma.Aggregates { return t.groups[i].stats }

// GroupRows returns the row count of row group i.
func (t *Table) GroupRows(i int) int { return t.groups[i].rows }

// GroupBytes returns the simulated physical size of row group i.
func (t *Table) GroupBytes(i int) int64 {
	return int64(t.GroupRows(i)) * int64(t.Dims()) * dataset.BytesPerAttribute
}

// GroupEncodedBytes returns the encoded payload size of row group i.
func (t *Table) GroupEncodedBytes(i int) int64 { return t.groups[i].encodedBytes() }

// GroupPoints materialises row group i as points (reading the whole group,
// as a scan would). All returned points share one flat backing array — the
// call allocates twice regardless of the row count.
func (t *Table) GroupPoints(i int) []geom.Point {
	g := &t.groups[i]
	n := g.rows
	dims := t.Dims()
	backing := make([]float64, n*dims)
	col := make([]float64, n)
	for d := 0; d < dims; d++ {
		g.cols[d].decodeInto(col)
		for r := 0; r < n; r++ {
			backing[r*dims+d] = col[r]
		}
	}
	out := make([]geom.Point, n)
	for r := range out {
		out[r] = backing[r*dims : (r+1)*dims : (r+1)*dims]
	}
	return out
}
