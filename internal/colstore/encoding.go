package colstore

import (
	"math"
	"math/bits"
	"sort"
)

// colKind identifies the physical encoding of one column chunk. The values
// are part of the PAWC v2 on-disk format and must not be renumbered.
type colKind uint8

const (
	// colRaw stores every value as a float64 (8 bytes/value).
	colRaw colKind = iota
	// colDict stores a sorted dictionary of the distinct values plus one
	// small fixed-width code per row. Range predicates are evaluated once
	// against the dictionary and then compared against codes.
	colDict
	// colRLE stores (value, run length) pairs. Predicates accept or reject
	// whole runs with a single comparison.
	colRLE
	// colFOR is frame-of-reference bit-packing: every value is base plus a
	// non-negative integral delta packed at the minimal bit width.
	colFOR
)

// dictMaxCard caps dictionary cardinality at what a 2-byte code addresses.
const dictMaxCard = 1 << 16

// String names the encoding for introspection and benchmark reports.
func (k colKind) String() string {
	switch k {
	case colDict:
		return "dict"
	case colRLE:
		return "rle"
	case colFOR:
		return "for"
	default:
		return "raw"
	}
}

// column is one encoded column chunk of a row group. Exactly the fields of
// the active kind are populated; the rest stay nil/zero.
type column struct {
	kind colKind
	n    int

	// colRaw
	raw []float64

	// colDict: dict is sorted ascending; codes index into it. codes16 is
	// used when len(dict) > 256, codes8 otherwise.
	dict    []float64
	codes8  []uint8
	codes16 []uint16

	// colRLE
	runVals []float64
	runLens []uint32

	// colFOR: value(i) = base + float64(delta_i), delta packed at forBits
	// bits per value (0 bits: every value equals base).
	base    float64
	forBits uint8
	packed  []uint64
}

// payloadBytes returns the encoded physical size of the column chunk — the
// byte count its PAWC v2 payload occupies (excluding the 1-byte kind tag).
func (c *column) payloadBytes() int64 {
	switch c.kind {
	case colDict:
		b := int64(4) + int64(len(c.dict))*8
		if c.codes8 != nil {
			return b + int64(len(c.codes8))
		}
		return b + int64(len(c.codes16))*2
	case colRLE:
		return 4 + int64(len(c.runVals))*12
	case colFOR:
		return 9 + int64(len(c.packed))*8
	default:
		return int64(c.n) * 8
	}
}

// valueBytes returns the bytes decoded when k individual values of the
// column are touched (selection-vector refinement or late materialization).
func (c *column) valueBytes(k int) int64 {
	switch c.kind {
	case colDict:
		if c.codes8 != nil {
			return int64(k)
		}
		return int64(k) * 2
	case colFOR:
		return (int64(k)*int64(c.forBits) + 7) / 8
	default:
		// Raw values are 8 bytes; RLE refinement accounts per run touched
		// (12 bytes each) at the call site, not here.
		return int64(k) * 8
	}
}

// forWords returns the packed-word count for n values at w bits each.
func forWords(n int, w uint8) int {
	return (n*int(w) + 63) / 64
}

// forAt extracts delta i from the packed words at w bits per value. w must
// be in (0, 32].
func forAt(packed []uint64, i int, w uint8) uint64 {
	bitPos := i * int(w)
	word, off := bitPos>>6, uint(bitPos&63)
	v := packed[word] >> off
	if off+uint(w) > 64 {
		v |= packed[word+1] << (64 - off)
	}
	return v & (1<<uint(w) - 1)
}

// encodeColumn picks the cheapest exact encoding for vals and returns the
// encoded column. The choice is a pure function of the values, so encoding
// is deterministic. sortScratch is reused across calls to stage the
// dictionary probe; it is grown as needed and returned.
func encodeColumn(vals []float64, sortScratch []float64) (column, []float64) {
	n := len(vals)
	c := column{kind: colRaw, n: n}
	if n == 0 {
		return c, sortScratch
	}

	// Pass 1: min and run structure.
	min := vals[0]
	runs := 1
	for i := 1; i < n; i++ {
		v := vals[i]
		if v < min {
			min = v
		}
		if v != vals[i-1] {
			runs++
		}
	}

	// Pass 2: frame-of-reference applicability. Deltas must be exactly
	// reconstructible (base + float64(delta) == value) and fit 32 bits.
	forOK := true
	var maxDelta uint64
	for _, v := range vals {
		d := v - min
		if !(d >= 0) || d != math.Trunc(d) || d >= 1<<32 {
			forOK = false
			break
		}
		u := uint64(d)
		if min+float64(u) != v {
			forOK = false
			break
		}
		if u > maxDelta {
			maxDelta = u
		}
	}
	var forBitsN uint8
	if forOK {
		forBitsN = uint8(bits.Len64(maxDelta))
	}

	// Dictionary probe: sorted distinct values.
	sortScratch = append(sortScratch[:0], vals...)
	sort.Float64s(sortScratch)
	card := 1
	for i := 1; i < n; i++ {
		if sortScratch[i] != sortScratch[i-1] {
			card++
		}
	}

	// Candidate payload sizes; pick the smallest, preferring RLE, then
	// dictionary, then FOR on ties (whole-run rejection beats per-code
	// comparison beats bit extraction).
	rawB := int64(n) * 8
	best, bestB := colRaw, rawB
	if rleB := int64(4 + runs*12); rleB < bestB {
		best, bestB = colRLE, rleB
	}
	if card <= dictMaxCard {
		w := int64(2)
		if card <= 256 {
			w = 1
		}
		if dictB := 4 + int64(card)*8 + w*int64(n); dictB < bestB {
			best, bestB = colDict, dictB
		}
	}
	if forOK {
		if forB := 9 + int64(forWords(n, forBitsN))*8; forB < bestB {
			best, bestB = colFOR, forB
		}
	}

	switch best {
	case colRLE:
		c.kind = colRLE
		c.runVals = make([]float64, 0, runs)
		c.runLens = make([]uint32, 0, runs)
		cur, length := vals[0], uint32(1)
		for i := 1; i < n; i++ {
			if vals[i] == cur {
				length++
				continue
			}
			c.runVals = append(c.runVals, cur)
			c.runLens = append(c.runLens, length)
			cur, length = vals[i], 1
		}
		c.runVals = append(c.runVals, cur)
		c.runLens = append(c.runLens, length)
	case colDict:
		c.kind = colDict
		c.dict = make([]float64, 0, card)
		for i := 0; i < n; i++ {
			if i == 0 || sortScratch[i] != sortScratch[i-1] {
				c.dict = append(c.dict, sortScratch[i])
			}
		}
		if card <= 256 {
			c.codes8 = make([]uint8, n)
			for i, v := range vals {
				c.codes8[i] = uint8(dictCode(c.dict, v))
			}
		} else {
			c.codes16 = make([]uint16, n)
			for i, v := range vals {
				c.codes16[i] = uint16(dictCode(c.dict, v))
			}
		}
	case colFOR:
		c.kind = colFOR
		c.base = min
		c.forBits = forBitsN
		c.packed = make([]uint64, forWords(n, forBitsN))
		if forBitsN > 0 {
			w := uint(forBitsN)
			for i, v := range vals {
				d := uint64(v - min)
				bitPos := i * int(w)
				word, off := bitPos>>6, uint(bitPos&63)
				c.packed[word] |= d << off
				if off+w > 64 {
					c.packed[word+1] |= d >> (64 - off)
				}
			}
		}
	default:
		c.raw = append([]float64(nil), vals...)
	}
	return c, sortScratch
}

// dictCode returns the code of v in the sorted dictionary.
func dictCode(dict []float64, v float64) int {
	lo, hi := 0, len(dict)
	for lo < hi {
		mid := (lo + hi) / 2
		if dict[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// dictCodeRange returns the half-open code interval [cLo, cHi) whose
// dictionary values fall inside [lo, hi].
func (c *column) dictCodeRange(lo, hi float64) (int, int) {
	cLo := dictCode(c.dict, lo) // first value >= lo
	cHi := sort.Search(len(c.dict), func(i int) bool { return c.dict[i] > hi })
	return cLo, cHi
}

// decodeInto decodes the whole column into dst[:n].
func (c *column) decodeInto(dst []float64) {
	switch c.kind {
	case colDict:
		if c.codes8 != nil {
			for i, code := range c.codes8 {
				dst[i] = c.dict[code]
			}
		} else {
			for i, code := range c.codes16 {
				dst[i] = c.dict[code]
			}
		}
	case colRLE:
		p := 0
		for r, v := range c.runVals {
			for k := uint32(0); k < c.runLens[r]; k++ {
				dst[p] = v
				p++
			}
		}
	case colFOR:
		if c.forBits == 0 {
			for i := 0; i < c.n; i++ {
				dst[i] = c.base
			}
			return
		}
		for i := 0; i < c.n; i++ {
			dst[i] = c.base + float64(forAt(c.packed, i, c.forBits))
		}
	default:
		copy(dst, c.raw)
	}
}

// forDeltaRange maps the value interval [lo, hi] onto the packed delta
// domain. ok is false when no delta can satisfy the predicate.
func (c *column) forDeltaRange(lo, hi float64) (dLo, dHi uint64, ok bool) {
	maxDelta := uint64(1)<<uint(c.forBits) - 1
	if c.forBits == 0 {
		maxDelta = 0
	}
	fLo := math.Ceil(lo - c.base)
	fHi := math.Floor(hi - c.base)
	if fHi < 0 || fLo > float64(maxDelta) {
		return 0, 0, false
	}
	if fLo < 0 {
		fLo = 0
	}
	dLo = uint64(fLo)
	if fHi >= float64(maxDelta) {
		dHi = maxDelta
	} else {
		dHi = uint64(fHi)
	}
	return dLo, dHi, dLo <= dHi
}

// filterAll appends to sel the indices in [0, n) whose value lies in
// [lo, hi], in ascending order, and returns the encoded bytes it decoded
// (the dictionary probe alone when the code range is empty or total; the
// whole payload when every position is tested).
func (c *column) filterAll(lo, hi float64, sel []int32) ([]int32, int64) {
	switch c.kind {
	case colDict:
		cLo, cHi := c.dictCodeRange(lo, hi)
		probe := int64(4) + int64(len(c.dict))*8
		if cLo >= cHi {
			return sel, probe
		}
		if cLo == 0 && cHi == len(c.dict) {
			for i := 0; i < c.n; i++ {
				sel = append(sel, int32(i))
			}
			return sel, probe
		}
		if c.codes8 != nil {
			lo8, hi8 := uint8(cLo), uint8(cHi-1)
			for i, code := range c.codes8 {
				if code >= lo8 && code <= hi8 {
					sel = append(sel, int32(i))
				}
			}
		} else {
			lo16, hi16 := uint16(cLo), uint16(cHi-1)
			for i, code := range c.codes16 {
				if code >= lo16 && code <= hi16 {
					sel = append(sel, int32(i))
				}
			}
		}
		return sel, c.payloadBytes()
	case colRLE:
		start := int32(0)
		for r, v := range c.runVals {
			length := int32(c.runLens[r])
			if v >= lo && v <= hi {
				for i := start; i < start+length; i++ {
					sel = append(sel, i)
				}
			}
			start += length
		}
		return sel, c.payloadBytes()
	case colFOR:
		dLo, dHi, ok := c.forDeltaRange(lo, hi)
		if !ok {
			return sel, 9 // header only: base + bit width
		}
		if c.forBits == 0 {
			for i := 0; i < c.n; i++ {
				sel = append(sel, int32(i))
			}
			return sel, 9
		}
		for i := 0; i < c.n; i++ {
			if d := forAt(c.packed, i, c.forBits); d >= dLo && d <= dHi {
				sel = append(sel, int32(i))
			}
		}
		return sel, c.payloadBytes()
	default:
		for i, v := range c.raw {
			if v >= lo && v <= hi {
				sel = append(sel, int32(i))
			}
		}
		return sel, c.payloadBytes()
	}
}

// refine filters sel in place, keeping indices whose value lies in [lo, hi],
// and returns the surviving prefix plus the encoded bytes it touched.
func (c *column) refine(lo, hi float64, sel []int32) ([]int32, int64) {
	out := sel[:0]
	switch c.kind {
	case colDict:
		cLo, cHi := c.dictCodeRange(lo, hi)
		touched := int64(4) + int64(len(c.dict))*8 // dictionary probe
		if cLo >= cHi {
			return out, touched
		}
		if cLo == 0 && cHi == len(c.dict) {
			return sel, touched
		}
		if c.codes8 != nil {
			lo8, hi8 := uint8(cLo), uint8(cHi-1)
			for _, i := range sel {
				if code := c.codes8[i]; code >= lo8 && code <= hi8 {
					out = append(out, i)
				}
			}
		} else {
			lo16, hi16 := uint16(cLo), uint16(cHi-1)
			for _, i := range sel {
				if code := c.codes16[i]; code >= lo16 && code <= hi16 {
					out = append(out, i)
				}
			}
		}
		return out, touched + c.valueBytes(len(sel))
	case colRLE:
		ri, runEnd := 0, int32(c.runLens[0])
		runsTouched := 0
		lastRun := -1
		for _, i := range sel {
			for i >= runEnd {
				ri++
				runEnd += int32(c.runLens[ri])
			}
			if ri != lastRun {
				runsTouched++
				lastRun = ri
			}
			if v := c.runVals[ri]; v >= lo && v <= hi {
				out = append(out, i)
			}
		}
		return out, int64(runsTouched) * 12
	case colFOR:
		dLo, dHi, ok := c.forDeltaRange(lo, hi)
		if !ok {
			return out, 0
		}
		if c.forBits == 0 {
			return sel, 0
		}
		for _, i := range sel {
			if d := forAt(c.packed, int(i), c.forBits); d >= dLo && d <= dHi {
				out = append(out, i)
			}
		}
		return out, c.valueBytes(len(sel))
	default:
		for _, i := range sel {
			if v := c.raw[i]; v >= lo && v <= hi {
				out = append(out, i)
			}
		}
		return out, c.valueBytes(len(sel))
	}
}

// gather materializes value(sel[k]) into dst[k*stride+off] for every k.
// sel must be ascending (selection vectors always are).
func (c *column) gather(sel []int32, dst []float64, stride, off int) {
	switch c.kind {
	case colDict:
		if c.codes8 != nil {
			for k, i := range sel {
				dst[k*stride+off] = c.dict[c.codes8[i]]
			}
		} else {
			for k, i := range sel {
				dst[k*stride+off] = c.dict[c.codes16[i]]
			}
		}
	case colRLE:
		if len(sel) == 0 {
			return
		}
		ri, runEnd := 0, int32(c.runLens[0])
		for k, i := range sel {
			for i >= runEnd {
				ri++
				runEnd += int32(c.runLens[ri])
			}
			dst[k*stride+off] = c.runVals[ri]
		}
	case colFOR:
		if c.forBits == 0 {
			for k := range sel {
				dst[k*stride+off] = c.base
			}
			return
		}
		for k, i := range sel {
			dst[k*stride+off] = c.base + float64(forAt(c.packed, int(i), c.forBits))
		}
	default:
		for k, i := range sel {
			dst[k*stride+off] = c.raw[i]
		}
	}
}
