package colstore

import (
	"paw/internal/geom"
)

// Scanner holds the reusable scratch of the vectorized scan kernels: the
// selection vector, the flat materialization buffer, and the per-group
// dimension-ordering scratch. A Scanner amortizes to zero allocations per
// row group once its buffers have grown to the table's group size. Scanners
// are not safe for concurrent use; use a ScannerPool to share them.
type Scanner struct {
	sel     []int32
	flat    []float64
	order   []int
	estSel  []float64
	touched []bool
	chunks  []ScanStats
}

// NewScanner returns an empty scanner; buffers grow on first use.
func NewScanner() *Scanner { return &Scanner{} }

// Count evaluates q over the whole table without materialising rows.
func (s *Scanner) Count(t *Table, q geom.Box) ScanStats {
	var st ScanStats
	s.scanGroups(t, q, 0, len(t.groups), t.zoneIndex(q), false, &st)
	return st
}

// Scan evaluates q and materialises the surviving rows, row-major, into the
// scanner's flat buffer: row r occupies flat[r*dims : (r+1)*dims]. The
// returned slice is owned by the scanner and valid until its next call —
// the caller-reusable buffer of the late-materialization contract.
func (s *Scanner) Scan(t *Table, q geom.Box) ([]float64, ScanStats) {
	var st ScanStats
	s.flat = s.flat[:0]
	s.scanGroups(t, q, 0, len(t.groups), t.zoneIndex(q), true, &st)
	return s.flat, st
}

// scanGroups runs the kernel over row groups [lo, hi), accumulating into st.
// zi is the feature-zone index of q (-1 when q is not a training query).
func (s *Scanner) scanGroups(t *Table, q geom.Box, lo, hi, zi int, materialize bool, st *ScanStats) {
	for gi := lo; gi < hi; gi++ {
		g := &t.groups[gi]
		if zi >= 0 && !t.zones.bit(gi, zi) {
			st.GroupsSkipped++
			st.GroupsZoneSkipped++
			st.BytesSkipped += g.encodedBytes()
			continue
		}
		if g.stats.CanPrune(q) {
			st.GroupsSkipped++
			st.BytesSkipped += g.encodedBytes()
			continue
		}
		st.GroupsRead++
		enc := g.encodedBytes()
		read := s.scanGroup(g, q, materialize, st)
		if read > enc {
			read = enc // refinement estimates never exceed, but stay safe
		}
		st.BytesRead += read
		st.BytesSkipped += enc - read
	}
}

// scanGroup evaluates one row group column-at-a-time and returns the
// encoded bytes it decoded.
//
// The kernel shape: dimensions whose SMA envelope lies entirely inside the
// query are covered — every row passes, so their predicate is skipped and
// no bytes are decoded for them until materialization. The remaining
// (active) dimensions are evaluated most-selective-first, estimated from
// the envelope overlap: the first fills the selection vector straight from
// the encoded column, later ones refine it in place, touching only the
// surviving positions. Materialization then decodes only surviving rows.
func (s *Scanner) scanGroup(g *rowGroup, q geom.Box, materialize bool, st *ScanStats) int64 {
	dims := len(g.cols)
	if cap(s.touched) < dims {
		s.touched = make([]bool, dims)
		s.estSel = make([]float64, dims)
	}
	s.touched = s.touched[:dims]
	s.order = s.order[:0]
	for d := 0; d < dims; d++ {
		s.touched[d] = false
		if g.stats.DimCovered(d, q) {
			continue // covered: every row in the group passes on d
		}
		min, max := g.stats.Min[d], g.stats.Max[d]
		// Estimated fraction of the envelope the query overlaps on d.
		est := 1.0
		if max > min {
			l, h := q.Lo[d], q.Hi[d]
			if l < min {
				l = min
			}
			if h > max {
				h = max
			}
			est = (h - l) / (max - min)
		}
		// Insertion sort: ascending estimated selectivity.
		s.order = append(s.order, d)
		s.estSel[d] = est
		for i := len(s.order) - 1; i > 0 && s.estSel[s.order[i]] < s.estSel[s.order[i-1]]; i-- {
			s.order[i], s.order[i-1] = s.order[i-1], s.order[i]
		}
	}

	var read int64
	sel := s.sel[:0]
	if len(s.order) == 0 {
		// Every dimension covered: the whole group matches.
		for i := 0; i < g.rows; i++ {
			sel = append(sel, int32(i))
		}
	} else {
		for oi, d := range s.order {
			c := &g.cols[d]
			var b int64
			if oi == 0 {
				sel, b = c.filterAll(q.Lo[d], q.Hi[d], sel)
			} else {
				sel, b = c.refine(q.Lo[d], q.Hi[d], sel)
			}
			s.touched[d] = true
			read += b
			st.tallyEncoding(c.kind)
			if len(sel) == 0 {
				break
			}
		}
	}
	st.Matched += len(sel)
	if materialize && len(sel) > 0 {
		base := len(s.flat)
		need := base + len(sel)*dims
		if cap(s.flat) < need {
			grown := make([]float64, need, need+need/2)
			copy(grown, s.flat)
			s.flat = grown
		} else {
			s.flat = s.flat[:need]
		}
		for d := 0; d < dims; d++ {
			c := &g.cols[d]
			c.gather(sel, s.flat[base:], dims, d)
			if !s.touched[d] {
				// Covered columns are decoded here for the first time;
				// predicate columns were already accounted above.
				read += c.valueBytes(len(sel))
				st.tallyEncoding(c.kind)
			}
		}
		st.RowsDecoded += int64(len(sel))
	}
	s.sel = sel[:0]
	return read
}

// tallyEncoding counts one decoded column chunk under its physical encoding.
func (st *ScanStats) tallyEncoding(k colKind) {
	switch k {
	case colDict:
		st.ColsDict++
	case colRLE:
		st.ColsRLE++
	case colFOR:
		st.ColsFOR++
	default:
		st.ColsRaw++
	}
}

// anyMatch reports whether any row of group gi satisfies q; used to build
// feature-vector zone maps.
func (s *Scanner) anyMatch(t *Table, gi int, q geom.Box) bool {
	g := &t.groups[gi]
	if g.stats.CanPrune(q) {
		return false
	}
	var st ScanStats
	s.scanGroup(g, q, false, &st)
	return st.Matched > 0
}

// ScanNaive is the retained reference scan: it decodes every non-pruned row
// group in full and evaluates the predicate row-at-a-time, exactly as the
// pre-vectorization store did. It exists as the differential-testing oracle
// and the benchmark baseline; BytesRead accounts whole-group encoded bytes
// because that is what it decodes. Feature-vector zone maps are ignored
// (min/max pruning only) — results are identical either way, the zone maps
// being exact.
func (t *Table) ScanNaive(q geom.Box) ([]geom.Point, ScanStats) {
	var out []geom.Point
	st := t.naiveScan(q, func(cols [][]float64, i, dims int) {
		p := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			p[d] = cols[d][i]
		}
		out = append(out, p)
	})
	return out, st
}

// CountNaive is ScanNaive without materialization.
func (t *Table) CountNaive(q geom.Box) ScanStats {
	return t.naiveScan(q, nil)
}

func (t *Table) naiveScan(q geom.Box, emit func(cols [][]float64, i, dims int)) ScanStats {
	var st ScanStats
	dims := t.Dims()
	cols := make([][]float64, dims)
	for gi := range t.groups {
		g := &t.groups[gi]
		if g.stats.CanPrune(q) {
			st.GroupsSkipped++
			st.BytesSkipped += g.encodedBytes()
			continue
		}
		st.GroupsRead++
		st.BytesRead += g.encodedBytes()
		for d := 0; d < dims; d++ {
			if cap(cols[d]) < g.rows {
				cols[d] = make([]float64, g.rows)
			}
			cols[d] = cols[d][:g.rows]
			g.cols[d].decodeInto(cols[d])
			st.tallyEncoding(g.cols[d].kind)
		}
	rowLoop:
		for i := 0; i < g.rows; i++ {
			for d := 0; d < dims; d++ {
				v := cols[d][i]
				if v < q.Lo[d] || v > q.Hi[d] {
					continue rowLoop
				}
			}
			if emit != nil {
				emit(cols, i, dims)
				st.RowsDecoded++
			}
			st.Matched++
		}
	}
	return st
}
