package colstore

import (
	"testing"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/parbuild"
	"paw/internal/workload"
)

// benchTable builds a moderately sized table with a mix of encodings
// (TPC-H stand-in: discrete + continuous columns).
func benchTable(rows int) (*dataset.Dataset, *Table) {
	data := dataset.TPCHLike(rows, 7).Project(4).Normalize()
	return data, FromDataset(data, nil, 1024)
}

func TestScannerSteadyStateAllocs(t *testing.T) {
	data, tab := benchTable(20000)
	q := data.Domain()
	q.Lo[0], q.Hi[0] = 0.2, 0.6
	q.Lo[1], q.Hi[1] = 0.1, 0.8
	sc := NewScanner()
	sc.Count(tab, q)
	sc.Scan(tab, q)
	if n := testing.AllocsPerRun(50, func() { sc.Count(tab, q) }); n != 0 {
		t.Errorf("Count allocates %v/op in steady state, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { sc.Scan(tab, q) }); n != 0 {
		t.Errorf("Scan allocates %v/op in steady state, want 0", n)
	}
}

func TestCountParallelMatchesSerial(t *testing.T) {
	data, tab := benchTable(30000)
	w := workload.Uniform(data.Domain(), workload.Defaults(30, 9))
	var sp ScannerPool
	sc := NewScanner()
	for _, workers := range []int{1, 2, 4, 8} {
		pool := parbuild.New(workers)
		for _, q := range w.Boxes() {
			serial := sc.Count(tab, q)
			par := tab.CountParallel(q, pool, &sp)
			if par != serial {
				t.Fatalf("workers=%d: parallel stats %+v != serial %+v", workers, par, serial)
			}
		}
	}
	// A nil pool and nil scanner pool must degrade cleanly.
	q := w.Boxes()[0]
	if got := tab.CountParallel(q, nil, nil); got != sc.Count(tab, q) {
		t.Fatal("nil pool must fall back to the serial kernel")
	}
}

func TestZoneMapsSkipBeyondMinMax(t *testing.T) {
	// Two interleaved clusters per group: the min/max envelope spans both, so
	// a query for absent values inside the envelope cannot be pruned by SMA —
	// but the feature-vector zone map proves it empty.
	n := 4000
	col := make([]float64, n)
	for i := range col {
		if i%2 == 0 {
			col[i] = 0.1
		} else {
			col[i] = 0.9
		}
	}
	data := dataset.MustNew([]string{"x"}, [][]float64{col})
	tab := FromDataset(data, nil, 500)
	gap := geom.Box{Lo: geom.Point{0.4}, Hi: geom.Point{0.6}}
	st := tab.Count(gap)
	if st.Matched != 0 || st.GroupsRead == 0 {
		t.Fatalf("pre-zones: %+v (SMA should NOT prune the gap query)", st)
	}
	tab.BuildZoneMaps([]geom.Box{gap})
	st = tab.Count(gap)
	if st.Matched != 0 {
		t.Fatalf("zones changed the result: %+v", st)
	}
	if st.GroupsZoneSkipped != tab.NumGroups() || st.GroupsRead != 0 {
		t.Fatalf("zone maps must skip every group on the training query: %+v", st)
	}
	if st.BytesRead != 0 || st.BytesSkipped != tab.EncodedBytes() {
		t.Fatalf("zone skip byte accounting: %+v vs encoded %d", st, tab.EncodedBytes())
	}
	// A non-training query is unaffected by the zone maps.
	probe := geom.Box{Lo: geom.Point{0.0}, Hi: geom.Point{0.5}}
	if got := tab.Count(probe).Matched; got != n/2 {
		t.Fatalf("non-training query matched %d, want %d", got, n/2)
	}
	// SetZoneMaps validates shapes.
	if err := tab.SetZoneMaps([]geom.Box{gap}, make([][]uint64, 1)); err == nil {
		t.Fatal("SetZoneMaps must reject a vector-count mismatch")
	}
	if err := tab.SetZoneMaps([]geom.Box{gap}, [][]uint64{{0}, {0}, {0}, {0}, {0}, {0}, {0}, {0}}); err != nil {
		t.Fatalf("SetZoneMaps rejected valid bits: %v", err)
	}
	if err := tab.SetZoneMaps(nil, nil); err != nil || tab.ZoneMapQueries() != nil {
		t.Fatal("empty workload must clear zone maps")
	}
}

func TestEncodingCountsAndCompression(t *testing.T) {
	// Sorted discrete data: the sort dim RLE-encodes; encoded size must beat
	// the raw representation.
	n := 8000
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		cols[0][i] = float64(i / 400) // 20 long runs
		cols[1][i] = float64(i%7) / 7 // 7 distinct values
	}
	data := dataset.MustNew([]string{"a", "b"}, cols)
	tab := FromDataset(data, nil, 1000)
	counts := tab.EncodingCounts()
	if counts["rle"] == 0 {
		t.Errorf("sorted runs must RLE-encode: %v", counts)
	}
	raw := int64(n) * 2 * 8
	if tab.EncodedBytes() >= raw {
		t.Errorf("encoded %d bytes >= raw %d", tab.EncodedBytes(), raw)
	}
}
