package colstore

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"paw/internal/dataset"
	"paw/internal/geom"
)

// fuzzDataset builds a dataset whose columns deliberately span every
// physical encoding: per column, style bits of the seed select constant
// (RLE/FOR degenerate), low-cardinality discrete (dict), sorted discrete
// (RLE), integral ramp (FOR) or continuous uniform (raw) data.
func fuzzDataset(seed int64, rows, dims int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, dims)
	cols := make([][]float64, dims)
	for d := 0; d < dims; d++ {
		names[d] = string(rune('a' + d))
		col := make([]float64, rows)
		switch style := (seed >> uint(3*d)) & 7 % 5; style {
		case 0: // constant
			v := rng.Float64() * 100
			for i := range col {
				col[i] = v
			}
		case 1: // low-cardinality discrete
			card := 2 + rng.Intn(7)
			vals := make([]float64, card)
			for i := range vals {
				vals[i] = rng.Float64() * 50
			}
			for i := range col {
				col[i] = vals[rng.Intn(card)]
			}
		case 2: // sorted discrete: long runs
			v := rng.Float64()
			for i := range col {
				if rng.Intn(20) == 0 {
					v += rng.Float64()
				}
				col[i] = v
			}
		case 3: // integral ramp with noise
			base := math.Floor(rng.Float64() * 1000)
			for i := range col {
				col[i] = base + float64(rng.Intn(1<<16))
			}
		default: // continuous
			for i := range col {
				col[i] = rng.NormFloat64() * 10
			}
		}
		cols[d] = col
	}
	return dataset.MustNew(names, cols)
}

// fuzzQuery derives one query box from the rng: mostly partial-domain
// ranges, sometimes empty, full-domain or degenerate (point) boxes.
func fuzzQuery(rng *rand.Rand, dom geom.Box) geom.Box {
	dims := len(dom.Lo)
	q := geom.Box{Lo: make(geom.Point, dims), Hi: make(geom.Point, dims)}
	for d := 0; d < dims; d++ {
		span := dom.Hi[d] - dom.Lo[d]
		switch rng.Intn(6) {
		case 0: // full on this dim
			q.Lo[d], q.Hi[d] = dom.Lo[d], dom.Hi[d]
		case 1: // empty on this dim
			q.Lo[d], q.Hi[d] = dom.Hi[d]+1, dom.Hi[d]+2
		case 2: // degenerate point
			v := dom.Lo[d] + rng.Float64()*span
			q.Lo[d], q.Hi[d] = v, v
		default:
			a := dom.Lo[d] + rng.Float64()*span
			b := dom.Lo[d] + rng.Float64()*span
			if a > b {
				a, b = b, a
			}
			q.Lo[d], q.Hi[d] = a, b
		}
	}
	return q
}

// FuzzScanDifferential proves the vectorized kernels are byte-identical to
// the retained naive scan across every encoding, and that both PAWC v2 and
// the legacy v1 layout round-trip to tables with identical scan results and
// statistics.
func FuzzScanDifferential(f *testing.F) {
	f.Add(int64(1), uint16(100), uint8(2), uint16(32), int64(2))
	f.Add(int64(42), uint16(1000), uint8(4), uint16(128), int64(7))
	f.Add(int64(-3), uint16(2500), uint8(5), uint16(512), int64(11))
	f.Add(int64(987654), uint16(1), uint8(1), uint16(1), int64(13))
	f.Add(int64(31), uint16(513), uint8(3), uint16(4096), int64(17))
	f.Fuzz(func(t *testing.T, seed int64, rowsRaw uint16, dimsRaw uint8, groupRaw uint16, qseed int64) {
		rows := 1 + int(rowsRaw)%3000
		dims := 1 + int(dimsRaw)%5
		groupRows := 1 + int(groupRaw)%1024
		data := fuzzDataset(seed, rows, dims)
		tab := FromDataset(data, nil, groupRows)
		dom := data.Domain()

		rng := rand.New(rand.NewSource(qseed))
		queries := make([]geom.Box, 4)
		for i := range queries {
			queries[i] = fuzzQuery(rng, dom)
		}

		sc := NewScanner()
		enc := tab.EncodedBytes()
		check := func(label string, tb *Table) {
			for qi, q := range queries {
				nPts, nst := tb.ScanNaive(q)
				cst := sc.Count(tb, q)
				if cst.Matched != nst.Matched {
					t.Fatalf("%s q%d: vectorized matched %d, naive %d", label, qi, cst.Matched, nst.Matched)
				}
				if cst.BytesRead+cst.BytesSkipped != enc {
					t.Fatalf("%s q%d: BytesRead %d + BytesSkipped %d != EncodedBytes %d",
						label, qi, cst.BytesRead, cst.BytesSkipped, enc)
				}
				if cst.BytesRead > nst.BytesRead {
					t.Fatalf("%s q%d: vectorized read %d > naive %d", label, qi, cst.BytesRead, nst.BytesRead)
				}
				flat, sst := sc.Scan(tb, q)
				if sst.Matched != nst.Matched || sst.RowsDecoded != int64(nst.Matched) {
					t.Fatalf("%s q%d: scan stats %+v vs naive matched %d", label, qi, sst, nst.Matched)
				}
				if len(flat) != nst.Matched*dims {
					t.Fatalf("%s q%d: flat length %d for %d rows", label, qi, len(flat), nst.Matched)
				}
				for r, p := range nPts {
					for d := 0; d < dims; d++ {
						if flat[r*dims+d] != p[d] {
							t.Fatalf("%s q%d row %d dim %d: vectorized %v, naive %v",
								label, qi, r, d, flat[r*dims+d], p[d])
						}
					}
				}
			}
		}
		check("direct", tab)

		// PAWC v2 round trip, including feature-vector zone maps built from
		// the fuzz queries (zone skipping must never change results).
		tab.BuildZoneMaps(queries)
		var v2 bytes.Buffer
		if err := tab.Encode(&v2); err != nil {
			t.Fatal(err)
		}
		got2, err := Decode(&v2)
		if err != nil {
			t.Fatal(err)
		}
		if got2.EncodedBytes() != enc {
			t.Fatalf("v2 round trip changed encoded size: %d vs %d", got2.EncodedBytes(), enc)
		}
		if len(got2.ZoneMapQueries()) != len(queries) {
			t.Fatalf("v2 round trip lost zone maps: %d queries", len(got2.ZoneMapQueries()))
		}
		check("v2", got2)

		// Legacy v1 layout: raw columns re-encode through the same chooser,
		// so the upgraded table is indistinguishable from the original.
		var v1 bytes.Buffer
		if err := encodeV1(tab, &v1); err != nil {
			t.Fatal(err)
		}
		got1, err := Decode(&v1)
		if err != nil {
			t.Fatal(err)
		}
		if got1.EncodedBytes() != enc {
			t.Fatalf("v1 upgrade changed encoded size: %d vs %d", got1.EncodedBytes(), enc)
		}
		check("v1", got1)
	})
}
