package colstore

import (
	"fmt"

	"paw/internal/geom"
)

// zoneMaps extends the per-group min/max SMAs with the feature-vector
// skipping index of Sun et al. (SIGMOD 2014, internal/maxskip), folded down
// to row-group granularity: bit j of a group's vector is set iff the group
// holds at least one row matching training query j. A scan whose query
// equals a training query skips every group with a clear bit — exact
// block-level skipping beyond what the min/max envelope can prove, because
// feature bits see the actual rows, not their bounding box.
type zoneMaps struct {
	queries []geom.Box
	words   int
	bits    [][]uint64 // one vector per row group
}

func (z *zoneMaps) bit(group, query int) bool {
	return z.bits[group][query/64]&(1<<uint(query%64)) != 0
}

// zoneIndex returns the training-query index of q, or -1 when q is not a
// training query (or the table has no zone maps).
func (t *Table) zoneIndex(q geom.Box) int {
	if t.zones == nil {
		return -1
	}
	for j, tq := range t.zones.queries {
		if q.Equal(tq) {
			return j
		}
	}
	return -1
}

// ZoneMapQueries returns the training workload the zone maps were built
// from (nil when the table has none).
func (t *Table) ZoneMapQueries() []geom.Box {
	if t.zones == nil {
		return nil
	}
	return t.zones.queries
}

// BuildZoneMaps computes feature-vector zone maps for the given training
// workload by probing every row group with every query through the scan
// kernel. Passing an empty workload clears the zone maps. The maps are
// exact for the training queries and persist through Encode/Decode (PAWC
// v2 carries them).
func (t *Table) BuildZoneMaps(queries []geom.Box) {
	if len(queries) == 0 {
		t.zones = nil
		return
	}
	z := &zoneMaps{
		queries: make([]geom.Box, len(queries)),
		words:   (len(queries) + 63) / 64,
	}
	for j, q := range queries {
		z.queries[j] = q.Clone()
	}
	s := defaultScanners.Get()
	defer defaultScanners.Put(s)
	z.bits = make([][]uint64, len(t.groups))
	for gi := range t.groups {
		vec := make([]uint64, z.words)
		for j, q := range z.queries {
			if s.anyMatch(t, gi, q) {
				vec[j/64] |= 1 << uint(j%64)
			}
		}
		z.bits[gi] = vec
	}
	t.zones = z
}

// SetZoneMaps installs externally computed feature-vector zone maps (one
// query-incidence bit vector per row group, as produced from the source
// rows via maxskip.RowVector). The caller is responsible for the bits being
// exact: a clear bit must prove the group holds no matching row.
func (t *Table) SetZoneMaps(queries []geom.Box, groupBits [][]uint64) error {
	if len(queries) == 0 {
		t.zones = nil
		return nil
	}
	if len(groupBits) != len(t.groups) {
		return fmt.Errorf("colstore: %d zone vectors for %d row groups", len(groupBits), len(t.groups))
	}
	words := (len(queries) + 63) / 64
	z := &zoneMaps{queries: make([]geom.Box, len(queries)), words: words}
	for j, q := range queries {
		z.queries[j] = q.Clone()
	}
	z.bits = make([][]uint64, len(groupBits))
	for gi, vec := range groupBits {
		if len(vec) != words {
			return fmt.Errorf("colstore: zone vector %d has %d words, want %d", gi, len(vec), words)
		}
		z.bits[gi] = append([]uint64(nil), vec...)
	}
	t.zones = z
	return nil
}
