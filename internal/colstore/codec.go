package colstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"paw/internal/geom"
	"paw/internal/sma"
)

// Binary format (little-endian):
//
//	magic    uint32 'PAWC'
//	version  uint16 (2; version 1 files remain decodable)
//	dims     uint16
//	groups   uint32
//	names    (uint16 len + bytes) per column
//	zones    uint32 query count, then per query dims × (lo, hi) float64
//	per group:
//	  rows   uint32
//	  per column: kind uint8, then the encoded payload:
//	    raw:  rows × float64
//	    dict: card uint32, card × float64, width uint8 (1|2), rows × width codes
//	    rle:  runs uint32, runs × float64 values, runs × uint32 lengths
//	    for:  base float64, bits uint8, ceil(rows·bits/64) × uint64
//	  SMA:   count int64, then per dim min/max/sum float64
//	  zone bits (only when zones > 0): ceil(queries/64) × uint64
//
// Version 1 stored every column as rows × float64 with no zone section;
// Decode re-encodes v1 columns through the same chooser the build path
// uses, so a decoded v1 table is indistinguishable from a v2 one.
const (
	colMagic     = 0x50415743 // "PAWC"
	colVersion   = 2
	colVersionV1 = 1

	// maxDecodeRows bounds per-group row counts on decode so corrupt or
	// hostile headers cannot drive huge allocations.
	maxDecodeRows = 1 << 28
)

// leWriter batches little-endian writes through one reusable scratch
// buffer, so bulk slices go to the underlying writer in single Write calls
// instead of one binary.Write per element.
type leWriter struct {
	bw      *bufio.Writer
	scratch []byte
}

func (w *leWriter) grow(n int) []byte {
	if cap(w.scratch) < n {
		w.scratch = make([]byte, n)
	}
	w.scratch = w.scratch[:n]
	return w.scratch
}

func (w *leWriter) u8(v uint8) error { return w.bw.WriteByte(v) }
func (w *leWriter) u16(v uint16) error {
	b := w.grow(2)
	binary.LittleEndian.PutUint16(b, v)
	_, err := w.bw.Write(b)
	return err
}
func (w *leWriter) u32(v uint32) error {
	b := w.grow(4)
	binary.LittleEndian.PutUint32(b, v)
	_, err := w.bw.Write(b)
	return err
}
func (w *leWriter) u64(v uint64) error {
	b := w.grow(8)
	binary.LittleEndian.PutUint64(b, v)
	_, err := w.bw.Write(b)
	return err
}
func (w *leWriter) i64(v int64) error   { return w.u64(uint64(v)) }
func (w *leWriter) f64(v float64) error { return w.u64(math.Float64bits(v)) }

func (w *leWriter) f64s(vals []float64) error {
	b := w.grow(len(vals) * 8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	_, err := w.bw.Write(b)
	return err
}

func (w *leWriter) u32s(vals []uint32) error {
	b := w.grow(len(vals) * 4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[i*4:], v)
	}
	_, err := w.bw.Write(b)
	return err
}

func (w *leWriter) u64s(vals []uint64) error {
	b := w.grow(len(vals) * 8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], v)
	}
	_, err := w.bw.Write(b)
	return err
}

func (w *leWriter) u16s(vals []uint16) error {
	b := w.grow(len(vals) * 2)
	for i, v := range vals {
		binary.LittleEndian.PutUint16(b[i*2:], v)
	}
	_, err := w.bw.Write(b)
	return err
}

// leReader mirrors leWriter: bulk slices are read with a single io.ReadFull
// into the scratch buffer and converted in place — the fix for the v1-era
// decoder that issued one binary.Read per float64.
type leReader struct {
	br      *bufio.Reader
	scratch []byte
}

func (r *leReader) fill(n int) ([]byte, error) {
	if cap(r.scratch) < n {
		r.scratch = make([]byte, n)
	}
	r.scratch = r.scratch[:n]
	if _, err := io.ReadFull(r.br, r.scratch); err != nil {
		return nil, err
	}
	return r.scratch, nil
}

func (r *leReader) u8() (uint8, error) { return r.br.ReadByte() }
func (r *leReader) u16() (uint16, error) {
	b, err := r.fill(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}
func (r *leReader) u32() (uint32, error) {
	b, err := r.fill(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}
func (r *leReader) u64() (uint64, error) {
	b, err := r.fill(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}
func (r *leReader) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}
func (r *leReader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *leReader) f64s(n int) ([]float64, error) {
	b, err := r.fill(n * 8)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

func (r *leReader) u32s(n int) ([]uint32, error) {
	b, err := r.fill(n * 4)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out, nil
}

func (r *leReader) u64s(n int) ([]uint64, error) {
	b, err := r.fill(n * 8)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out, nil
}

func (r *leReader) u16s(n int) ([]uint16, error) {
	b, err := r.fill(n * 2)
	if err != nil {
		return nil, err
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(b[i*2:])
	}
	return out, nil
}

// Encode writes the table in the PAWC v2 binary format, including its
// feature-vector zone maps when present.
func (t *Table) Encode(w io.Writer) error {
	lw := &leWriter{bw: bufio.NewWriter(w)}
	if err := lw.u32(colMagic); err != nil {
		return err
	}
	if err := lw.u16(colVersion); err != nil {
		return err
	}
	if err := lw.u16(uint16(t.Dims())); err != nil {
		return err
	}
	if err := lw.u32(uint32(len(t.groups))); err != nil {
		return err
	}
	for _, n := range t.names {
		if err := lw.u16(uint16(len(n))); err != nil {
			return err
		}
		if _, err := lw.bw.WriteString(n); err != nil {
			return err
		}
	}
	var zoneWords int
	if t.zones == nil {
		if err := lw.u32(0); err != nil {
			return err
		}
	} else {
		if err := lw.u32(uint32(len(t.zones.queries))); err != nil {
			return err
		}
		zoneWords = t.zones.words
		for _, q := range t.zones.queries {
			for d := 0; d < t.Dims(); d++ {
				if err := lw.f64(q.Lo[d]); err != nil {
					return err
				}
				if err := lw.f64(q.Hi[d]); err != nil {
					return err
				}
			}
		}
	}
	for gi := range t.groups {
		g := &t.groups[gi]
		if err := lw.u32(uint32(g.rows)); err != nil {
			return err
		}
		for d := range g.cols {
			if err := encodeColumnPayload(lw, &g.cols[d]); err != nil {
				return err
			}
		}
		if err := lw.i64(g.stats.Count); err != nil {
			return err
		}
		for d := 0; d < t.Dims(); d++ {
			if err := lw.f64(g.stats.Min[d]); err != nil {
				return err
			}
			if err := lw.f64(g.stats.Max[d]); err != nil {
				return err
			}
			if err := lw.f64(g.stats.Sum[d]); err != nil {
				return err
			}
		}
		if zoneWords > 0 {
			if err := lw.u64s(t.zones.bits[gi]); err != nil {
				return err
			}
		}
	}
	return lw.bw.Flush()
}

func encodeColumnPayload(lw *leWriter, c *column) error {
	if err := lw.u8(uint8(c.kind)); err != nil {
		return err
	}
	switch c.kind {
	case colDict:
		if err := lw.u32(uint32(len(c.dict))); err != nil {
			return err
		}
		if err := lw.f64s(c.dict); err != nil {
			return err
		}
		if c.codes8 != nil {
			if err := lw.u8(1); err != nil {
				return err
			}
			_, err := lw.bw.Write(c.codes8)
			return err
		}
		if err := lw.u8(2); err != nil {
			return err
		}
		return lw.u16s(c.codes16)
	case colRLE:
		if err := lw.u32(uint32(len(c.runVals))); err != nil {
			return err
		}
		if err := lw.f64s(c.runVals); err != nil {
			return err
		}
		return lw.u32s(c.runLens)
	case colFOR:
		if err := lw.f64(c.base); err != nil {
			return err
		}
		if err := lw.u8(c.forBits); err != nil {
			return err
		}
		return lw.u64s(c.packed)
	default:
		return lw.f64s(c.raw)
	}
}

func decodeColumnPayload(lr *leReader, rows int) (column, error) {
	kind, err := lr.u8()
	if err != nil {
		return column{}, err
	}
	c := column{kind: colKind(kind), n: rows}
	switch c.kind {
	case colDict:
		card, err := lr.u32()
		if err != nil {
			return c, err
		}
		if card == 0 || int(card) > dictMaxCard || int(card) > rows {
			return c, fmt.Errorf("colstore: dictionary cardinality %d out of range for %d rows", card, rows)
		}
		if c.dict, err = lr.f64s(int(card)); err != nil {
			return c, err
		}
		width, err := lr.u8()
		if err != nil {
			return c, err
		}
		switch width {
		case 1:
			if card > 256 {
				return c, fmt.Errorf("colstore: 1-byte codes for cardinality %d", card)
			}
			b, err := lr.fill(rows)
			if err != nil {
				return c, err
			}
			c.codes8 = append([]uint8(nil), b...)
			for _, code := range c.codes8 {
				if int(code) >= int(card) {
					return c, fmt.Errorf("colstore: dictionary code %d out of range", code)
				}
			}
		case 2:
			if c.codes16, err = lr.u16s(rows); err != nil {
				return c, err
			}
			for _, code := range c.codes16 {
				if int(code) >= int(card) {
					return c, fmt.Errorf("colstore: dictionary code %d out of range", code)
				}
			}
		default:
			return c, fmt.Errorf("colstore: unsupported dictionary code width %d", width)
		}
	case colRLE:
		runs, err := lr.u32()
		if err != nil {
			return c, err
		}
		if runs == 0 || int(runs) > rows {
			return c, fmt.Errorf("colstore: %d runs for %d rows", runs, rows)
		}
		if c.runVals, err = lr.f64s(int(runs)); err != nil {
			return c, err
		}
		if c.runLens, err = lr.u32s(int(runs)); err != nil {
			return c, err
		}
		var total int64
		for _, l := range c.runLens {
			total += int64(l)
		}
		if total != int64(rows) {
			return c, fmt.Errorf("colstore: run lengths sum to %d, want %d rows", total, rows)
		}
	case colFOR:
		if c.base, err = lr.f64(); err != nil {
			return c, err
		}
		if c.forBits, err = lr.u8(); err != nil {
			return c, err
		}
		if c.forBits > 32 {
			return c, fmt.Errorf("colstore: FOR bit width %d out of range", c.forBits)
		}
		if c.packed, err = lr.u64s(forWords(rows, c.forBits)); err != nil {
			return c, err
		}
	case colRaw:
		if c.raw, err = lr.f64s(rows); err != nil {
			return c, err
		}
	default:
		return c, fmt.Errorf("colstore: unknown column encoding %d", kind)
	}
	return c, nil
}

// Decode reads a table in the PAWC binary format, accepting both the
// current v2 layout and the legacy v1 (raw float64 columns) layout.
func Decode(r io.Reader) (*Table, error) {
	lr := &leReader{br: bufio.NewReader(r)}
	magic, err := lr.u32()
	if err != nil {
		return nil, fmt.Errorf("colstore: reading magic: %w", err)
	}
	if magic != colMagic {
		return nil, fmt.Errorf("colstore: bad magic %#x", magic)
	}
	version, err := lr.u16()
	if err != nil {
		return nil, err
	}
	switch version {
	case colVersionV1:
		return decodeV1(lr)
	case colVersion:
		return decodeV2(lr)
	default:
		return nil, fmt.Errorf("colstore: unsupported version %d", version)
	}
}

func decodeHeader(lr *leReader) (names []string, groups uint32, err error) {
	dims, err := lr.u16()
	if err != nil {
		return nil, 0, err
	}
	if dims == 0 {
		return nil, 0, fmt.Errorf("colstore: zero columns")
	}
	if groups, err = lr.u32(); err != nil {
		return nil, 0, err
	}
	names = make([]string, dims)
	for i := range names {
		n, err := lr.u16()
		if err != nil {
			return nil, 0, err
		}
		b, err := lr.fill(int(n))
		if err != nil {
			return nil, 0, err
		}
		names[i] = string(b)
	}
	return names, groups, nil
}

func decodeStats(lr *leReader, dims int) (sma.Aggregates, error) {
	st := sma.Aggregates{
		Min: make([]float64, dims),
		Max: make([]float64, dims),
		Sum: make([]float64, dims),
	}
	var err error
	if st.Count, err = lr.i64(); err != nil {
		return st, err
	}
	for d := 0; d < dims; d++ {
		if st.Min[d], err = lr.f64(); err != nil {
			return st, err
		}
		if st.Max[d], err = lr.f64(); err != nil {
			return st, err
		}
		if st.Sum[d], err = lr.f64(); err != nil {
			return st, err
		}
	}
	return st, nil
}

func decodeV2(lr *leReader) (*Table, error) {
	names, groups, err := decodeHeader(lr)
	if err != nil {
		return nil, err
	}
	dims := len(names)
	nq, err := lr.u32()
	if err != nil {
		return nil, err
	}
	var zones *zoneMaps
	if nq > 0 {
		if nq > 1<<20 {
			return nil, fmt.Errorf("colstore: %d zone queries out of range", nq)
		}
		zones = &zoneMaps{
			words:   (int(nq) + 63) / 64,
			queries: make([]geom.Box, 0, nq),
		}
		for j := uint32(0); j < nq; j++ {
			q := geom.Box{Lo: make(geom.Point, dims), Hi: make(geom.Point, dims)}
			for d := 0; d < dims; d++ {
				if q.Lo[d], err = lr.f64(); err != nil {
					return nil, err
				}
				if q.Hi[d], err = lr.f64(); err != nil {
					return nil, err
				}
			}
			zones.queries = append(zones.queries, q)
		}
		zones.bits = make([][]uint64, 0, groups)
	}
	t := &Table{names: names}
	for gi := uint32(0); gi < groups; gi++ {
		rows, err := lr.u32()
		if err != nil {
			return nil, err
		}
		if rows == 0 || rows > maxDecodeRows {
			return nil, fmt.Errorf("colstore: group %d row count %d out of range", gi, rows)
		}
		g := rowGroup{cols: make([]column, dims), rows: int(rows)}
		for d := 0; d < dims; d++ {
			c, err := decodeColumnPayload(lr, int(rows))
			if err != nil {
				return nil, fmt.Errorf("colstore: group %d col %d: %w", gi, d, err)
			}
			g.cols[d] = c
		}
		if g.stats, err = decodeStats(lr, dims); err != nil {
			return nil, err
		}
		if zones != nil {
			vec, err := lr.u64s(zones.words)
			if err != nil {
				return nil, err
			}
			zones.bits = append(zones.bits, vec)
		}
		t.rows += int(rows)
		t.groups = append(t.groups, g)
	}
	t.zones = zones
	return t, nil
}

// decodeV1 reads the legacy layout (raw float64 columns, no zone section)
// with bulk column reads, then re-encodes through the standard chooser.
func decodeV1(lr *leReader) (*Table, error) {
	names, groups, err := decodeHeader(lr)
	if err != nil {
		return nil, err
	}
	dims := len(names)
	allCols := make([][][]float64, 0, groups)
	allStats := make([]sma.Aggregates, 0, groups)
	for gi := uint32(0); gi < groups; gi++ {
		rows, err := lr.u32()
		if err != nil {
			return nil, err
		}
		if rows == 0 || rows > maxDecodeRows {
			return nil, fmt.Errorf("colstore: group %d row count %d out of range", gi, rows)
		}
		cols := make([][]float64, dims)
		for d := 0; d < dims; d++ {
			if cols[d], err = lr.f64s(int(rows)); err != nil {
				return nil, fmt.Errorf("colstore: group %d col %d: %w", gi, d, err)
			}
		}
		st, err := decodeStats(lr, dims)
		if err != nil {
			return nil, err
		}
		allCols = append(allCols, cols)
		allStats = append(allStats, st)
	}
	return fromColumns(names, allCols, allStats), nil
}

// encodeV1 writes the legacy v1 layout (raw float64 columns). Retained so
// the compatibility and fuzz suites can exercise the v1→v2 upgrade path.
func encodeV1(t *Table, w io.Writer) error {
	lw := &leWriter{bw: bufio.NewWriter(w)}
	if err := lw.u32(colMagic); err != nil {
		return err
	}
	if err := lw.u16(colVersionV1); err != nil {
		return err
	}
	if err := lw.u16(uint16(t.Dims())); err != nil {
		return err
	}
	if err := lw.u32(uint32(len(t.groups))); err != nil {
		return err
	}
	for _, n := range t.names {
		if err := lw.u16(uint16(len(n))); err != nil {
			return err
		}
		if _, err := lw.bw.WriteString(n); err != nil {
			return err
		}
	}
	col := make([]float64, 0, DefaultGroupRows)
	for gi := range t.groups {
		g := &t.groups[gi]
		if err := lw.u32(uint32(g.rows)); err != nil {
			return err
		}
		for d := range g.cols {
			col = col[:g.rows]
			g.cols[d].decodeInto(col)
			if err := lw.f64s(col); err != nil {
				return err
			}
		}
		if err := lw.i64(g.stats.Count); err != nil {
			return err
		}
		for d := 0; d < t.Dims(); d++ {
			if err := lw.f64(g.stats.Min[d]); err != nil {
				return err
			}
			if err := lw.f64(g.stats.Max[d]); err != nil {
				return err
			}
			if err := lw.f64(g.stats.Sum[d]); err != nil {
				return err
			}
		}
	}
	return lw.bw.Flush()
}
