package ingest

import (
	"math/rand"
	"testing"

	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/workload"
)

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// seed builds a PAW layout over uniform data and an ingestor holding its
// records.
func seed(t *testing.T, n int) (*Ingestor, *dataset.Dataset, *layout.Layout) {
	t.Helper()
	data := dataset.Uniform(n, 2, 1)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(12, 2))
	l := core.Build(data, allRows(n), dom, hist, core.Params{MinRows: 50, Delta: 0.01})
	l.Route(data)
	byPart := l.RouteIndices(data, allRows(n))
	perPart := make(map[layout.ID][]geom.Point, len(byPart))
	for id, rows := range byPart {
		for _, r := range rows {
			perPart[id] = append(perPart[id], data.Point(r))
		}
	}
	ing, err := New(l, perPart, Params{MinRows: 50, MaxRows: 150})
	if err != nil {
		t.Fatal(err)
	}
	return ing, data, l
}

func TestSeedPreservesRows(t *testing.T) {
	ing, data, _ := seed(t, 3000)
	if ing.Rows() != int64(data.NumRows()) {
		t.Fatalf("seeded %d of %d rows", ing.Rows(), data.NumRows())
	}
	snap := ing.Snapshot()
	var sum int64
	for _, p := range snap.Parts {
		sum += p.FullRows
	}
	if sum != 3000 {
		t.Errorf("snapshot covers %d rows", sum)
	}
}

func TestIngestGrowthSplits(t *testing.T) {
	ing, data, l := seed(t, 3000)
	before := len(ing.Snapshot().Parts)
	rng := rand.New(rand.NewSource(3))
	dom := data.Domain()
	// Pour in 6000 new records concentrated in one corner to force growth.
	for i := 0; i < 6000; i++ {
		p := geom.Point{
			dom.Lo[0] + rng.Float64()*0.3*(dom.Hi[0]-dom.Lo[0]),
			dom.Lo[1] + rng.Float64()*0.3*(dom.Hi[1]-dom.Lo[1]),
		}
		if !ing.Add(p) {
			t.Fatal("in-domain record rejected")
		}
	}
	if ing.Splits() == 0 {
		t.Fatal("growth never triggered a split")
	}
	// Per-Add triggers only touch leaves that received traffic; a Maintain
	// sweep normalises partitions seeded above MaxRows too.
	ing.Maintain()
	snap := ing.Snapshot()
	if len(snap.Parts) <= before {
		t.Errorf("partitions %d not above initial %d", len(snap.Parts), before)
	}
	for _, p := range snap.Parts {
		if p.FullRows > 150 {
			t.Errorf("partition %d has %d rows, above MaxRows", p.ID, p.FullRows)
		}
	}
	var sum int64
	for _, p := range snap.Parts {
		sum += p.FullRows
	}
	if sum != 9000 {
		t.Errorf("snapshot covers %d rows, want 9000", sum)
	}
	_ = l
}

func TestIngestRejectsOutOfDomain(t *testing.T) {
	ing, _, _ := seed(t, 2000)
	if ing.Add(geom.Point{5, 5}) {
		t.Error("out-of-domain record must be rejected")
	}
	if ing.Rejected() != 1 {
		t.Errorf("rejected = %d", ing.Rejected())
	}
}

// TestQueriesStayCorrectAfterGrowth: a snapshot layout taken mid-growth
// still answers queries exactly (no record lost or double counted).
func TestQueriesStayCorrectAfterGrowth(t *testing.T) {
	ing, data, _ := seed(t, 3000)
	rng := rand.New(rand.NewSource(5))
	var added []geom.Point
	for i := 0; i < 3000; i++ {
		p := geom.Point{rng.Float64(), rng.Float64()}
		if ing.Add(p) {
			added = append(added, p)
		}
	}
	snap := ing.Snapshot()
	// Count via partition ownership: sum of rows in selected partitions
	// must be >= brute-force matches (descriptor-level selection may pull
	// extra partitions but never miss one).
	q := geom.Box{Lo: geom.Point{0.2, 0.2}, Hi: geom.Point{0.6, 0.6}}
	want := data.CountInBox(q, nil)
	for _, p := range added {
		if q.Contains(p) {
			want++
		}
	}
	// Exact count by scanning the ingestor's buffered points of selected
	// partitions: rebuild per-partition totals through Points on probes.
	// Simpler exact check: every matching point's leaf must be among the
	// selected partitions.
	ids := map[layout.ID]bool{}
	for _, id := range snap.PartitionsFor(q) {
		ids[id] = true
	}
	if len(ids) == 0 && want > 0 {
		t.Fatalf("query with %d matches selected no partitions", want)
	}
	// The snapshot's total never changes.
	var sum int64
	for _, p := range snap.Parts {
		sum += p.FullRows
	}
	if sum != ing.Rows() {
		t.Errorf("snapshot rows %d vs ingestor rows %d", sum, ing.Rows())
	}
}

func TestIrregularLeafSplit(t *testing.T) {
	// Build a layout guaranteed to contain an irregular leaf, then flood it.
	data := dataset.Uniform(4000, 2, 7)
	dom := data.Domain()
	hist := workload.Workload{
		{Box: geom.Box{Lo: geom.Point{0.1, 0.1}, Hi: geom.Point{0.2, 0.2}}},
		{Box: geom.Box{Lo: geom.Point{0.7, 0.7}, Hi: geom.Point{0.8, 0.8}}},
	}
	l := core.Build(data, allRows(4000), dom, hist, core.Params{MinRows: 60, Delta: 0.01})
	l.Route(data)
	irr := 0
	for _, p := range l.Parts {
		if p.Desc.Kind() == layout.KindIrregular {
			irr++
		}
	}
	if irr == 0 {
		t.Skip("no irregular partition on this seed")
	}
	byPart := l.RouteIndices(data, allRows(4000))
	perPart := make(map[layout.ID][]geom.Point)
	for id, rows := range byPart {
		for _, r := range rows {
			perPart[id] = append(perPart[id], data.Point(r))
		}
	}
	ing, err := New(l, perPart, Params{MinRows: 60, MaxRows: 500})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20000; i++ {
		ing.Add(geom.Point{rng.Float64(), rng.Float64()})
	}
	if ing.Splits() == 0 {
		t.Fatal("no splits under heavy growth")
	}
	snap := ing.Snapshot()
	// Irregular children persist as irregular descriptors.
	irrAfter := 0
	for _, p := range snap.Parts {
		if p.Desc.Kind() == layout.KindIrregular {
			irrAfter++
		}
	}
	if irrAfter < irr {
		t.Errorf("irregular partitions vanished: %d -> %d", irr, irrAfter)
	}
	var sum int64
	for _, p := range snap.Parts {
		sum += p.FullRows
	}
	if sum != ing.Rows() {
		t.Errorf("snapshot rows %d vs %d", sum, ing.Rows())
	}
}

func TestParamDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.MinRows != 1 || p.MaxRows != 4 {
		t.Errorf("defaults: %+v", p)
	}
	p = Params{MinRows: 10, MaxRows: 15}.withDefaults()
	if p.MaxRows != 40 { // below 2×MinRows is normalised to 4×
		t.Errorf("MaxRows = %d", p.MaxRows)
	}
	p = Params{MinRows: 10, MaxRows: 30}.withDefaults()
	if p.MaxRows != 30 {
		t.Errorf("explicit MaxRows overridden: %d", p.MaxRows)
	}
}
