// Package ingest maintains a partition layout as new records arrive — the
// data-growth counterpart to the paper's workload-drift story. Block-based
// storage keeps partitions within [bmin, maxRows]; arriving records are
// routed to their leaf, and a leaf that outgrows the maximum is split at the
// median of its widest (normalized) dimension, preserving the layout's
// query-driven structure above it. Rectangular and irregular leaves both
// split; an irregular leaf's children inherit the holes that overlap them.
//
// The ingestor buffers partition contents in memory (a memtable, at this
// repository's 1/1000 scale); Snapshot seals the current tree into a fresh
// layout for the master to swap in.
package ingest

import (
	"fmt"
	"math"
	"sort"

	"paw/internal/geom"
	"paw/internal/layout"
)

// Params configures maintenance.
type Params struct {
	// MinRows is bmin: splits never create smaller children.
	MinRows int
	// MaxRows triggers a split when a leaf exceeds it. Defaults to
	// 4×MinRows (a partition may temporarily hold up to ~2 blocks of
	// records before the split lands).
	MaxRows int
}

func (p Params) withDefaults() Params {
	if p.MinRows < 1 {
		p.MinRows = 1
	}
	if p.MaxRows < 2*p.MinRows {
		p.MaxRows = 4 * p.MinRows
	}
	return p
}

// Ingestor is the mutable layout-maintenance state.
type Ingestor struct {
	p        Params
	rowBytes int64
	method   string
	root     *node
	splits   int
	rows     int64
	rejected int64
}

// node mirrors layout.Node but owns buffered points at the leaves.
type node struct {
	desc     layout.Descriptor
	children []*node
	points   []geom.Point // leaf payload
	leaf     bool
}

// New seeds the ingestor from an existing layout and the records currently
// stored in it (routed per partition with RouteIndices, typically).
func New(l *layout.Layout, perPartition map[layout.ID][]geom.Point, p Params) (*Ingestor, error) {
	p = p.withDefaults()
	ing := &Ingestor{p: p, rowBytes: l.RowBytes, method: l.Method + "+ingest"}
	var convert func(n *layout.Node) *node
	convert = func(n *layout.Node) *node {
		out := &node{desc: n.Desc}
		if n.IsLeaf() {
			out.leaf = true
			out.points = append(out.points, perPartition[n.Part.ID]...)
			ing.rows += int64(len(out.points))
			return out
		}
		for _, c := range n.Children {
			out.children = append(out.children, convert(c))
		}
		return out
	}
	ing.root = convert(l.Root)
	var total int64
	for _, pts := range perPartition {
		total += int64(len(pts))
	}
	if total != ing.rows {
		return nil, fmt.Errorf("ingest: %d of %d seeded points landed in leaves", ing.rows, total)
	}
	return ing, nil
}

// Rows returns the number of records currently held.
func (ing *Ingestor) Rows() int64 { return ing.rows }

// Splits returns the number of maintenance splits performed.
func (ing *Ingestor) Splits() int { return ing.splits }

// Rejected returns the number of records no leaf accepted (outside the
// domain descriptor; callers decide whether to widen the root).
func (ing *Ingestor) Rejected() int64 { return ing.rejected }

// Add routes one record, buffering it in its leaf and splitting the leaf if
// it outgrew MaxRows. Records outside every leaf's region are rejected.
func (ing *Ingestor) Add(pt geom.Point) bool {
	leaf := descend(ing.root, pt)
	if leaf == nil {
		ing.rejected++
		return false
	}
	leaf.points = append(leaf.points, pt.Clone())
	ing.rows++
	if len(leaf.points) > ing.p.MaxRows {
		ing.splitLeaf(leaf)
	}
	return true
}

func descend(n *node, pt geom.Point) *node {
	for !n.leaf {
		var next *node
		for _, c := range n.children {
			if c.desc.Contains(pt) {
				next = c
				break
			}
		}
		if next == nil {
			return nil
		}
		n = next
	}
	return n
}

// splitLeaf divides the leaf at the median of its widest normalized
// dimension (the k-d rule); the leaf becomes internal with two children.
func (ing *Ingestor) splitLeaf(n *node) {
	dims := len(n.points[0])
	mbr := n.desc.MBR()
	// Pick the dimension with the widest point spread relative to the
	// descriptor extent (degenerate extents are skipped).
	bestDim, bestSpread := -1, 0.0
	for d := 0; d < dims; d++ {
		lo, hi := n.points[0][d], n.points[0][d]
		for _, p := range n.points {
			if p[d] < lo {
				lo = p[d]
			}
			if p[d] > hi {
				hi = p[d]
			}
		}
		ext := mbr.Hi[d] - mbr.Lo[d]
		if ext <= 0 {
			continue
		}
		if spread := (hi - lo) / ext; spread > bestSpread {
			bestSpread, bestDim = spread, d
		}
	}
	if bestDim < 0 {
		return // all points identical: nothing to split
	}
	vals := make([]float64, len(n.points))
	for i, p := range n.points {
		vals[i] = p[bestDim]
	}
	sort.Float64s(vals)
	cut := vals[len(vals)/2]
	if cut == vals[len(vals)-1] {
		i := sort.SearchFloat64s(vals, cut) - 1
		if i < 0 {
			return
		}
		cut = vals[i]
	}
	var leftPts, rightPts []geom.Point
	for _, p := range n.points {
		if p[bestDim] <= cut {
			leftPts = append(leftPts, p)
		} else {
			rightPts = append(rightPts, p)
		}
	}
	if len(leftPts) < ing.p.MinRows || len(rightPts) < ing.p.MinRows {
		return // duplicates skewed the median: stay whole until more data arrives
	}
	left, right := childDescriptors(n.desc, bestDim, cut)
	n.children = []*node{
		{desc: left, leaf: true, points: leftPts},
		{desc: right, leaf: true, points: rightPts},
	}
	n.points = nil
	n.leaf = false
	ing.splits++
}

// childDescriptors cuts a descriptor at value `cut` on dimension dim; the
// boundary value belongs to the left child. Irregular descriptors keep the
// holes overlapping each side.
func childDescriptors(d layout.Descriptor, dim int, cut float64) (layout.Descriptor, layout.Descriptor) {
	mbr := d.MBR()
	lbox := mbr.Clone()
	lbox.Hi[dim] = cut
	rbox := mbr.Clone()
	rbox.Lo[dim] = nextUp(cut)
	if ir, ok := d.(layout.Irregular); ok {
		return layout.NewIrregular(lbox, clipHoles(ir.Holes, lbox)),
			layout.NewIrregular(rbox, clipHoles(ir.Holes, rbox))
	}
	return layout.NewRect(lbox), layout.NewRect(rbox)
}

func nextUp(x float64) float64 { return math.Nextafter(x, math.Inf(1)) }

func clipHoles(holes []geom.Box, box geom.Box) []geom.Box {
	var out []geom.Box
	for _, h := range holes {
		if inter, ok := h.Intersection(box); ok {
			out = append(out, inter)
		}
	}
	return out
}

// Maintain sweeps the whole tree and splits every leaf above MaxRows,
// repeating until no leaf is oversized or no further split is admissible.
// Use it after seeding from a layout built under different size rules, or
// periodically instead of relying on per-Add triggers.
func (ing *Ingestor) Maintain() int {
	before := ing.splits
	for {
		split := false
		var walk func(n *node)
		walk = func(n *node) {
			if n.leaf {
				if len(n.points) > ing.p.MaxRows {
					s := ing.splits
					ing.splitLeaf(n)
					if ing.splits > s {
						split = true
					}
				}
				return
			}
			for _, c := range n.children {
				walk(c)
			}
		}
		walk(ing.root)
		if !split {
			break
		}
	}
	return ing.splits - before
}

// Snapshot seals the current tree into a fresh layout with up-to-date
// partition sizes. Partition IDs are renumbered; masters must swap metadata
// atomically.
func (ing *Ingestor) Snapshot() *layout.Layout {
	var convert func(n *node) *layout.Node
	convert = func(n *node) *layout.Node {
		out := &layout.Node{Desc: n.desc}
		if n.leaf {
			out.Part = &layout.Partition{Desc: n.desc, FullRows: int64(len(n.points))}
			return out
		}
		for _, c := range n.children {
			out.Children = append(out.Children, convert(c))
		}
		return out
	}
	l := layout.Seal(ing.method, convert(ing.root), ing.rowBytes)
	l.TotalBytes = ing.rows * ing.rowBytes
	return l
}

// Points returns the buffered records of the partition that currently holds
// pt's location (for scans/tests).
func (ing *Ingestor) Points(pt geom.Point) []geom.Point {
	leaf := descend(ing.root, pt)
	if leaf == nil {
		return nil
	}
	return leaf.points
}
