package invariant

import (
	"paw/internal/layout"
	"paw/internal/placement"
)

// OracleReplication tags violations of the replicated-placement contract.
const OracleReplication = "replication"

// CheckReplication verifies a replicated placement (the failure-aware
// partition → replica-set extension of the §VII placement direction) against
// its layout and worker fleet:
//
//   - every partition of the layout has at least one copy;
//   - every worker index is in [0, workers) and no set lists a worker twice
//     (a replica on the primary's worker is no failover at all);
//   - when primary is non-nil, the first entry of each set matches it — the
//     replication step must not silently move primaries the placement
//     optimizer chose;
//   - when budgetBytes >= 0, the spare storage spent on non-primary copies
//     stays within it, mirroring the storage tuner's budget contract (§V-B).
func CheckReplication(l *layout.Layout, rep placement.Replicated, workers int, primary placement.Assignment, budgetBytes int64) error {
	var extra int64
	for _, p := range l.Parts {
		ws := rep[p.ID]
		if len(ws) == 0 {
			return violationf(OracleReplication, "partition %d has no replica set", p.ID)
		}
		seen := make(map[int]bool, len(ws))
		for _, w := range ws {
			if w < 0 || w >= workers {
				return violationf(OracleReplication,
					"partition %d placed on invalid worker %d (fleet size %d)", p.ID, w, workers)
			}
			if seen[w] {
				return violationf(OracleReplication,
					"partition %d lists worker %d twice", p.ID, w)
			}
			seen[w] = true
		}
		if primary != nil {
			if want, ok := primary[p.ID]; ok && ws[0] != want {
				return violationf(OracleReplication,
					"partition %d primary moved: placement says worker %d, replica set leads with %d",
					p.ID, want, ws[0])
			}
		}
		extra += p.Bytes() * int64(len(ws)-1)
	}
	if budgetBytes >= 0 && extra > budgetBytes {
		return violationf(OracleReplication,
			"replica copies occupy %d bytes, budget is %d", extra, budgetBytes)
	}
	return nil
}
