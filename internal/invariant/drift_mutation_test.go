package invariant_test

import (
	"testing"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/invariant"
	"paw/internal/layout"
)

// Mutation smoke-tests for the drift and cutover oracles, in the style of
// the original suite: build a clean subtree patch with a known-correct diff
// and migration plan, assert both oracles pass, then corrupt one violation
// class at a time and assert the right oracle fires. The fixture is
// hand-assembled (not built by the drift controller) so the corruptions are
// surgical: a 2x2 quadrant layout over uniform data whose right half is
// patched from a vertical to a horizontal split.

type patchFixture struct {
	data  *dataset.Dataset
	old   *layout.Layout
	next  *layout.Layout
	d     layout.Diff
	steps []invariant.MigrationStep
}

const driftFixtureSeed = 99

func rectLeaf(b geom.Box, rows int64) *layout.Node {
	return &layout.Node{
		Desc: layout.NewRect(b),
		Part: &layout.Partition{Desc: layout.NewRect(b), FullRows: rows},
	}
}

func buildPatchFixture(t *testing.T) *patchFixture {
	t.Helper()
	data := dataset.Uniform(4000, 2, 17)
	dom := data.Domain()
	midX := (dom.Lo[0] + dom.Hi[0]) / 2
	midY := (dom.Lo[1] + dom.Hi[1]) / 2

	box := func(lo0, lo1, hi0, hi1 float64) geom.Box {
		return geom.Box{Lo: geom.Point{lo0, lo1}, Hi: geom.Point{hi0, hi1}}
	}
	leftBox := box(dom.Lo[0], dom.Lo[1], midX, dom.Hi[1])
	rightBox := box(midX, dom.Lo[1], dom.Hi[0], dom.Hi[1])
	midRX := (midX + dom.Hi[0]) / 2

	// Old layout: left half split horizontally, right half split vertically.
	left := &layout.Node{Desc: layout.NewRect(leftBox), Children: []*layout.Node{
		rectLeaf(box(dom.Lo[0], dom.Lo[1], midX, midY), 0),
		rectLeaf(box(dom.Lo[0], midY, midX, dom.Hi[1]), 0),
	}}
	right := &layout.Node{Desc: layout.NewRect(rightBox), Children: []*layout.Node{
		rectLeaf(box(midX, dom.Lo[1], midRX, dom.Hi[1]), 0),
		rectLeaf(box(midRX, dom.Lo[1], dom.Hi[0], dom.Hi[1]), 0),
	}}
	root := &layout.Node{Desc: layout.NewRect(dom), Children: []*layout.Node{left, right}}
	old := layout.Seal("manual", root, 48)
	old.Route(data)
	if old.Unrouted != 0 {
		t.Fatalf("%d rows unrouted in the fixture layout", old.Unrouted)
	}

	// Replacement for the right half: split horizontally instead. FullRows
	// come from counting the dataset directly — the oracle must agree.
	rbBox := box(midX, dom.Lo[1], dom.Hi[0], midY)
	rtBox := box(midX, midY, dom.Hi[0], dom.Hi[1])
	rbRows := int64(data.CountInBox(rbBox, nil))
	rtRows := int64(data.CountInBox(rtBox, nil))
	var removedRows int64
	for _, leaf := range right.Leaves() {
		removedRows += leaf.Part.FullRows
	}
	if rbRows+rtRows != removedRows {
		t.Fatalf("fixture is not row-conserving: %d+%d replacing %d", rbRows, rtRows, removedRows)
	}
	repl := &layout.Node{Desc: layout.NewRect(rightBox), Children: []*layout.Node{
		rectLeaf(rbBox, rbRows),
		rectLeaf(rtBox, rtRows),
	}}

	next, d, err := layout.PatchSubtree(old, right, repl)
	if err != nil {
		t.Fatalf("patch: %v", err)
	}

	// The migration plan the cutover oracle expects: aliases for survivors,
	// payloads for the rebuilt partitions.
	renamedTo := make(map[layout.ID]layout.ID, len(d.Renamed)) // new -> old
	for oldID, newID := range d.Renamed {
		renamedTo[newID] = oldID
	}
	var steps []invariant.MigrationStep
	for _, p := range next.Parts {
		s := invariant.MigrationStep{ID: p.ID, Rows: p.FullRows}
		if oldID, ok := renamedTo[p.ID]; ok {
			s.Reused, s.OldID = true, oldID
		} else {
			s.Bytes = p.Bytes()
		}
		steps = append(steps, s)
	}
	return &patchFixture{data: data, old: old, next: next, d: d, steps: steps}
}

func (f *patchFixture) checkDrift() error {
	return invariant.CheckDrift(f.old, f.next, f.d, driftFixtureSeed)
}

func (f *patchFixture) checkCutover(steps []invariant.MigrationStep) error {
	return invariant.CheckCutover(f.next, f.d, steps)
}

// findLeafByID returns the leaf node of l whose partition has the given ID.
func findLeafByID(t *testing.T, l *layout.Layout, id layout.ID) *layout.Node {
	t.Helper()
	var leaf *layout.Node
	l.Root.Walk(func(n *layout.Node) {
		if leaf == nil && n.IsLeaf() && n.Part.ID == id {
			leaf = n
		}
	})
	if leaf == nil {
		t.Fatalf("no leaf with partition %d", id)
	}
	return leaf
}

// anyRenamed returns one (oldID, newID) pair of the diff.
func anyRenamed(t *testing.T, d layout.Diff) (layout.ID, layout.ID) {
	t.Helper()
	for oldID, newID := range d.Renamed {
		return oldID, newID
	}
	t.Fatal("diff renames nothing")
	return 0, 0
}

func TestMutationDriftClean(t *testing.T) {
	f := buildPatchFixture(t)
	expectClean(t, f.checkDrift())
	expectClean(t, f.checkCutover(f.steps))
	if len(f.d.Added) != 2 || len(f.d.Removed) != 2 || len(f.d.Renamed) != 2 {
		t.Fatalf("fixture diff has unexpected shape: %+v", f.d)
	}
}

func TestMutationDriftAccounting(t *testing.T) {
	t.Run("duplicate-removed", func(t *testing.T) {
		f := buildPatchFixture(t)
		f.d.Removed = append(f.d.Removed, f.d.Removed[0])
		expectOracle(t, f.checkDrift(), invariant.OracleDrift)
	})
	t.Run("renamed-and-removed", func(t *testing.T) {
		f := buildPatchFixture(t)
		oldID, _ := anyRenamed(t, f.d)
		f.d.Removed = append(f.d.Removed, oldID)
		expectOracle(t, f.checkDrift(), invariant.OracleDrift)
	})
	t.Run("unknown-added", func(t *testing.T) {
		f := buildPatchFixture(t)
		f.d.Added = append(f.d.Added, layout.ID(len(f.next.Parts)))
		expectOracle(t, f.checkDrift(), invariant.OracleDrift)
	})
	t.Run("unaccounted-old", func(t *testing.T) {
		f := buildPatchFixture(t)
		oldID, _ := anyRenamed(t, f.d)
		delete(f.d.Renamed, oldID)
		expectOracle(t, f.checkDrift(), invariant.OracleDrift)
	})
}

func TestMutationDriftRenamedFidelity(t *testing.T) {
	t.Run("rows-changed", func(t *testing.T) {
		// A survivor silently gaining rows means the migration aliased a
		// partition whose physical content no longer matches the layout.
		f := buildPatchFixture(t)
		_, newID := anyRenamed(t, f.d)
		f.next.Parts[newID].FullRows += 7
		expectOracle(t, f.checkDrift(), invariant.OracleDrift)
	})
	t.Run("descriptor-changed", func(t *testing.T) {
		f := buildPatchFixture(t)
		_, newID := anyRenamed(t, f.d)
		b := f.next.Parts[newID].Desc.MBR().Clone()
		b.Hi[0] += b.Hi[0] - b.Lo[0]
		f.next.Parts[newID].Desc = layout.NewRect(b)
		expectOracle(t, f.checkDrift(), invariant.OracleDrift)
	})
}

func TestMutationDriftRenameOrder(t *testing.T) {
	// Swap the two renamed images: the mapping is no longer strictly
	// increasing, which would silently break the master's sorted per-
	// partition cache sweep.
	f := buildPatchFixture(t)
	ids := make([]layout.ID, 0, 2)
	for oldID := range f.d.Renamed {
		ids = append(ids, oldID)
	}
	if len(ids) != 2 {
		t.Fatalf("fixture renames %d partitions, want 2", len(ids))
	}
	f.d.Renamed[ids[0]], f.d.Renamed[ids[1]] = f.d.Renamed[ids[1]], f.d.Renamed[ids[0]]
	expectOracle(t, f.checkDrift(), invariant.OracleDrift)
}

func TestMutationDriftRowConservation(t *testing.T) {
	// The rebuilt region claims more rows than the partitions it replaced —
	// the patch would be inventing records.
	f := buildPatchFixture(t)
	f.next.Parts[f.d.Added[0]].FullRows += 3
	expectOracle(t, f.checkDrift(), invariant.OracleDrift)
}

func TestMutationDriftRegionEscape(t *testing.T) {
	// An added partition whose descriptor reaches outside the replaced
	// region: the patch no longer tiles the same space.
	f := buildPatchFixture(t)
	p := f.next.Parts[f.d.Added[0]]
	b := p.Desc.MBR().Clone()
	b.Lo[0] -= b.Hi[0] - b.Lo[0]
	p.Desc = layout.NewRect(b)
	expectOracle(t, f.checkDrift(), invariant.OracleDrift)
}

func TestMutationDriftRoutingProbes(t *testing.T) {
	// Shrink an added leaf's routing descriptor (the tree node, not the
	// partition): points in the shaved-off band still route in the old
	// layout but fall through the patched tree — only the seeded probes can
	// see this.
	f := buildPatchFixture(t)
	leaf := findLeafByID(t, f.next, f.d.Added[0])
	b := leaf.Desc.MBR().Clone()
	b.Hi[1] = (b.Lo[1] + b.Hi[1]) / 2
	leaf.Desc = layout.NewRect(b)
	expectOracle(t, f.checkDrift(), invariant.OracleDrift)
}

func TestMutationCutover(t *testing.T) {
	f := buildPatchFixture(t)
	expectClean(t, f.checkCutover(f.steps))

	mutate := func(m func(steps []invariant.MigrationStep) []invariant.MigrationStep) []invariant.MigrationStep {
		cp := make([]invariant.MigrationStep, len(f.steps))
		copy(cp, f.steps)
		return m(cp)
	}
	stepFor := func(steps []invariant.MigrationStep, id layout.ID) *invariant.MigrationStep {
		for i := range steps {
			if steps[i].ID == id {
				return &steps[i]
			}
		}
		t.Fatalf("no step for partition %d", id)
		return nil
	}

	t.Run("missing-step", func(t *testing.T) {
		steps := mutate(func(s []invariant.MigrationStep) []invariant.MigrationStep {
			return s[1:]
		})
		expectOracle(t, f.checkCutover(steps), invariant.OracleCutover)
	})
	t.Run("duplicate-step", func(t *testing.T) {
		steps := mutate(func(s []invariant.MigrationStep) []invariant.MigrationStep {
			return append(s, s[0])
		})
		expectOracle(t, f.checkCutover(steps), invariant.OracleCutover)
	})
	t.Run("wrong-rows", func(t *testing.T) {
		steps := mutate(func(s []invariant.MigrationStep) []invariant.MigrationStep {
			stepFor(s, f.d.Added[0]).Rows++
			return s
		})
		expectOracle(t, f.checkCutover(steps), invariant.OracleCutover)
	})
	t.Run("reshipped-survivor", func(t *testing.T) {
		// Shipping a payload for a renamed partition breaks the incremental
		// contract even though the bytes would be correct.
		_, newID := anyRenamed(t, f.d)
		steps := mutate(func(s []invariant.MigrationStep) []invariant.MigrationStep {
			st := stepFor(s, newID)
			st.Reused = false
			st.Bytes = f.next.Parts[newID].Bytes()
			return s
		})
		expectOracle(t, f.checkCutover(steps), invariant.OracleCutover)
	})
	t.Run("aliased-added", func(t *testing.T) {
		steps := mutate(func(s []invariant.MigrationStep) []invariant.MigrationStep {
			st := stepFor(s, f.d.Added[0])
			st.Reused, st.OldID, st.Bytes = true, f.d.Removed[0], 0
			return s
		})
		expectOracle(t, f.checkCutover(steps), invariant.OracleCutover)
	})
	t.Run("wrong-alias-source", func(t *testing.T) {
		oldID, newID := anyRenamed(t, f.d)
		steps := mutate(func(s []invariant.MigrationStep) []invariant.MigrationStep {
			stepFor(s, newID).OldID = oldID + 1
			return s
		})
		expectOracle(t, f.checkCutover(steps), invariant.OracleCutover)
	})
	t.Run("empty-payload", func(t *testing.T) {
		steps := mutate(func(s []invariant.MigrationStep) []invariant.MigrationStep {
			stepFor(s, f.d.Added[0]).Bytes = 0
			return s
		})
		expectOracle(t, f.checkCutover(steps), invariant.OracleCutover)
	})
}
