package invariant

import (
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/workload"
)

// CheckMonotonicity verifies the split-acceptance contract of Algorithms 2–3
// at every internal node, using the construction cost model (CostRows over
// sample rows) and independently re-derived per-node state: the node's
// extended queries (Q*F clipped down the path) and its sample-row count
// (sum over descendant leaves).
//
// Universal bound: replacing a node by its children never increases the
// node's Q*F cost — true for any split into covering interior-disjoint
// pieces, so it must hold for every builder (k-d and beam included).
//
// Greedy bound (Inputs.Greedy): PAW and the greedy Qd-tree accept a split
// only when it strictly decreases the cost, so every internal rectangular
// node with a positive own-cost must be strictly improved by its children.
// Irregular-descriptor nodes are refinement subtrees (their extended-query
// cost is 0 on both sides) and are exempt from the strict form.
func CheckMonotonicity(l *layout.Layout, in Inputs) error {
	in = in.withDefaults()
	if l.Root == nil {
		return violationf(OracleMonotonicity, "layout has no root")
	}
	if totalSampleRows(l) == 0 {
		return nil // reloaded layout: sample state is gone, nothing to check
	}
	queries := clipAll(in.Hist.Extend(in.Delta).Boxes(), in.Domain)
	_, err := checkMonoNode(l.Root, queries, in.Greedy)
	return err
}

func checkMonoNode(n *layout.Node, queries []geom.Box, greedy bool) (int, error) {
	if n.IsLeaf() {
		return len(n.Part.SampleRows), nil
	}
	rows := 0
	pieces := make([]layout.Piece, len(n.Children))
	for i, c := range n.Children {
		r, err := checkMonoNode(c, clipAll(queries, c.Desc.MBR()), greedy)
		if err != nil {
			return 0, err
		}
		rows += r
		pieces[i] = layout.Piece{Desc: c.Desc, Rows: r}
	}
	parentCost := layout.CostRows([]layout.Piece{{Desc: n.Desc, Rows: rows}}, queries)
	childCost := layout.CostRows(pieces, queries)
	if childCost > parentCost {
		return 0, violationf(OracleMonotonicity,
			"split of %v increases Q*F cost: %d rows scanned as one piece, %d after the split",
			n.Desc.MBR(), parentCost, childCost)
	}
	if greedy && n.Desc.Kind() == layout.KindRect && parentCost > 0 && childCost >= parentCost {
		return 0, violationf(OracleMonotonicity,
			"greedy builder kept a non-improving split of %v: cost %d before, %d after",
			n.Desc.MBR(), parentCost, childCost)
	}
	return rows, nil
}

func totalSampleRows(l *layout.Layout) int {
	n := 0
	for _, p := range l.Parts {
		n += len(p.SampleRows)
	}
	return n
}

// CheckLemma1 verifies the robustness guarantee of Lemma 1 (§IV-A)
// empirically: the layout's byte cost on the worst-case extended workload
// Q*F upper-bounds its cost on seeded δ-similar future workloads, per
// matched query pair and in aggregate. Each future workload is sampled with
// drift Inputs.DriftDelta (default δ); a drift above the declared δ models a
// broken workload-variance contract, which the oracle flags either through
// the δ-similarity re-check (bottleneck matching, Definition 2) or through a
// future query escaping its extended ancestor's cost bound.
func CheckLemma1(l *layout.Layout, in Inputs) error {
	in = in.withDefaults()
	if len(in.Hist) == 0 {
		return nil
	}
	// Cost accounting must be sane for any bound to mean anything.
	for _, p := range l.Parts {
		if p.FullRows < 0 || p.RowBytes < 0 {
			return violationf(OracleLemma1,
				"partition %d has negative size (%d rows × %d bytes): cost bounds are meaningless",
				p.ID, p.FullRows, p.RowBytes)
		}
	}
	ext := in.Hist.Extend(in.Delta)
	extCost := make([]int64, len(ext))
	var extTotal int64
	for i, q := range ext {
		extCost[i] = l.QueryCost(q.Box, nil)
		extTotal += extCost[i]
	}
	simTol := in.Delta * (1 + 1e-9)
	for k := 0; k < in.Futures; k++ {
		fut := workload.Future(in.Hist, in.DriftDelta, 1, in.Seed+31*int64(k)+1)
		var futTotal int64
		for i, q := range fut {
			c := l.QueryCost(q.Box, nil)
			futTotal += c
			if c > extCost[i] {
				return violationf(OracleLemma1,
					"future %d query %d %v costs %d bytes, above its Q*F bound %d (source %v, δ=%g, drift=%g)",
					k, i, q.Box, c, extCost[i], in.Hist[i].Box, in.Delta, in.DriftDelta)
			}
		}
		if futTotal > extTotal {
			return violationf(OracleLemma1,
				"future workload %d costs %d bytes, above the Q*F total %d", k, futTotal, extTotal)
		}
		if len(in.Hist) <= 64 {
			ok, err := workload.AreSimilar(in.Hist, fut, simTol)
			if err == nil && !ok {
				dp, derr := workload.MinimalDelta(in.Hist, fut)
				if derr != nil {
					dp = -1
				}
				return violationf(OracleLemma1,
					"future workload %d is not δ-similar to the history for δ=%g (minimal δ′=%g): the variance contract is broken",
					k, in.Delta, dp)
			}
		}
	}
	return nil
}
