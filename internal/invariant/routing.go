package invariant

import (
	"math/rand"

	"paw/internal/descriptor"
	"paw/internal/geom"
	"paw/internal/layout"
)

// CheckRouting verifies descriptor and index soundness (§V-A, Fig. 4): the
// sealed routing structures never change an answer relative to the linear
// descriptor predicates, and precise descriptors never disown a record that
// was routed to their partition.
//
//   - Parts wiring: Parts[i].ID == i, Parts matches the leaves in pre-order,
//     and every leaf's partition carries the leaf's descriptor.
//   - Differential range routing: PartitionsFor and QueryCost answer exactly
//     like their *Linear references over a seeded probe set (random ranges,
//     every partition MBR, shrunk copies, and degenerate point boxes).
//   - Differential point routing: Locate agrees with LocateLinear over
//     sampled points, and a located partition's descriptor contains the
//     point.
//   - Precise descriptors (when Data is given): routing the full dataset,
//     every record that lands in a partition with a precise descriptor is
//     covered by one of its MBRs — otherwise the master would skip a
//     partition that holds matching records.
func CheckRouting(l *layout.Layout, in Inputs) error {
	in = in.withDefaults()
	if l.Root == nil {
		return violationf(OracleRouting, "layout has no root")
	}
	if err := checkWiring(l); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(in.Seed + 7))
	for _, q := range probeBoxes(rng, l, in) {
		fast := l.PartitionsFor(q)
		slow := l.PartitionsForLinear(q)
		if !equalIDs(fast, slow) {
			return violationf(OracleRouting,
				"index routes query %v to partitions %v, linear scan says %v", q, fast, slow)
		}
		if fc, sc := l.QueryCost(q, nil), l.QueryCostLinear(q, nil); fc != sc {
			return violationf(OracleRouting,
				"indexed cost of %v is %d bytes, linear cost is %d", q, fc, sc)
		}
	}
	for _, p := range probePoints(rng, l, in) {
		fast := l.Locate(p)
		slow := l.LocateLinear(p)
		switch {
		case (fast == nil) != (slow == nil):
			return violationf(OracleRouting,
				"point %v: indexed routing found=%v, linear found=%v", p, fast != nil, slow != nil)
		case fast != nil && fast.ID != slow.ID:
			return violationf(OracleRouting,
				"point %v routes to partition %d via the index, %d linearly", p, fast.ID, slow.ID)
		case fast != nil && !fast.Desc.Contains(p):
			return violationf(OracleRouting,
				"point %v was routed to partition %d whose region does not contain it", p, fast.ID)
		}
	}
	if in.Data != nil {
		byPart := l.RouteIndices(in.Data, descriptor.AllRows(in.Data.NumRows()))
		pt := make(geom.Point, in.Data.Dims())
		routed := 0
		for id, rows := range byPart {
			routed += len(rows)
			p := l.Parts[id]
			if len(p.Precise) == 0 {
				continue
			}
			for _, r := range rows {
				for d := 0; d < in.Data.Dims(); d++ {
					pt[d] = in.Data.At(r, d)
				}
				covered := false
				for _, m := range p.Precise {
					if m.Contains(pt) {
						covered = true
						break
					}
				}
				if !covered {
					return violationf(OracleRouting,
						"precise descriptor of partition %d disowns record %d at %v: queries matching it would be pruned",
						id, r, pt)
				}
			}
		}
		// Records inside the root region must all route somewhere.
		root := l.Root.Desc.MBR()
		inside := 0
		for r := 0; r < in.Data.NumRows(); r++ {
			for d := 0; d < in.Data.Dims(); d++ {
				pt[d] = in.Data.At(r, d)
			}
			if root.Contains(pt) {
				inside++
			}
		}
		if routed < inside {
			return violationf(OracleRouting,
				"%d records lie inside the root region but only %d were routed to a partition", inside, routed)
		}
	}
	return nil
}

func checkWiring(l *layout.Layout) error {
	leaves := l.Root.Leaves()
	if len(leaves) != len(l.Parts) {
		return violationf(OracleRouting,
			"layout has %d leaves but %d partitions", len(leaves), len(l.Parts))
	}
	for i, leaf := range leaves {
		if l.Parts[i] != leaf.Part {
			return violationf(OracleRouting,
				"Parts[%d] is not the %d-th pre-order leaf's partition", i, i)
		}
		if leaf.Part.ID != layout.ID(i) {
			return violationf(OracleRouting,
				"partition at pre-order position %d carries ID %d", i, leaf.Part.ID)
		}
		if leaf.Part.Desc == nil || leaf.Desc == nil {
			return violationf(OracleRouting, "leaf %d is missing a descriptor", i)
		}
		if leaf.Part.Desc.Kind() != leaf.Desc.Kind() || !leaf.Part.Desc.MBR().Equal(leaf.Desc.MBR()) {
			return violationf(OracleRouting,
				"partition %d descriptor diverges from its leaf node descriptor", i)
		}
	}
	return nil
}

// probeBoxes builds the range-routing probe set: seeded random sub-boxes of
// the root MBR at mixed scales, every partition's MBR, a shrunk copy of
// each (strictly interior, exercising first-match ties), and degenerate
// point boxes at partition centers.
func probeBoxes(rng *rand.Rand, l *layout.Layout, in Inputs) []geom.Box {
	root := l.Root.Desc.MBR()
	dims := root.Dims()
	out := make([]geom.Box, 0, in.Queries+2*len(l.Parts))
	for i := 0; i < in.Queries; i++ {
		lo := make(geom.Point, dims)
		hi := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			length := root.Hi[d] - root.Lo[d]
			a := root.Lo[d] + rng.Float64()*length
			b := a + rng.Float64()*length*0.3
			if b > root.Hi[d] {
				b = root.Hi[d]
			}
			lo[d], hi[d] = a, b
		}
		out = append(out, geom.Box{Lo: lo, Hi: hi})
	}
	for _, p := range l.Parts {
		m := p.Desc.MBR()
		out = append(out, m)
		shrunk := geom.Box{Lo: make(geom.Point, dims), Hi: make(geom.Point, dims)}
		center := m.Center()
		for d := 0; d < dims; d++ {
			shrunk.Lo[d] = (m.Lo[d] + center[d]) / 2
			shrunk.Hi[d] = (m.Hi[d] + center[d]) / 2
		}
		out = append(out, shrunk)
		out = append(out, geom.Box{Lo: center, Hi: center.Clone()})
	}
	return out
}

// probePoints builds the point-routing probe set: seeded uniform points in
// the root MBR, every partition's center, and a spread of dataset records.
func probePoints(rng *rand.Rand, l *layout.Layout, in Inputs) []geom.Point {
	root := l.Root.Desc.MBR()
	dims := root.Dims()
	out := make([]geom.Point, 0, in.Points+len(l.Parts))
	for i := 0; i < in.Points; i++ {
		p := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			p[d] = root.Lo[d] + rng.Float64()*(root.Hi[d]-root.Lo[d])
		}
		out = append(out, p)
	}
	for _, part := range l.Parts {
		out = append(out, part.Desc.MBR().Center())
	}
	if in.Data != nil && in.Data.NumRows() > 0 {
		stride := in.Data.NumRows()/in.Points + 1
		for r := 0; r < in.Data.NumRows(); r += stride {
			p := make(geom.Point, in.Data.Dims())
			for d := 0; d < in.Data.Dims(); d++ {
				p[d] = in.Data.At(r, d)
			}
			out = append(out, p)
		}
	}
	return out
}

func equalIDs(a, b []layout.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
