package invariant

import (
	"errors"
	"math/rand"
	"sort"

	"paw/internal/geom"
	"paw/internal/layout"
)

// Drift/cutover oracles (DESIGN.md §13): when the drift re-partitioner
// patches a layout and migrates the distributed path onto it, two contracts
// must hold. The drift oracle checks the patch itself — the diff accounts
// for every partition exactly once, renamed partitions are physically
// identical, rows are conserved, the rebuilt region tiles the same space,
// and point routing agrees across the patch. The cutover oracle checks the
// migration plan against the diff — every new partition is installed exactly
// once, unchanged partitions move zero bytes (the incremental contract), and
// shipped payload sizes match the partitions they claim to carry. Like every
// oracle here they derive expected values independently of the code under
// test, so a re-partitioner bug cannot hide by breaking the checker the same
// way.

// Additional oracle names (see the package comment for the original six).
const (
	OracleDrift   = "drift"
	OracleCutover = "cutover"
)

// driftProbes is the number of seeded routing probes CheckDrift throws at
// the rebuilt region.
const driftProbes = 256

// CheckDrift validates a subtree patch: old is the layout that was serving,
// next is the patched layout, d the diff PatchSubtree reported. seed drives
// the routing probes.
func CheckDrift(old, next *layout.Layout, d layout.Diff, seed int64) error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, violationf(OracleDrift, format, args...))
	}
	if old == nil || next == nil {
		return violationf(OracleDrift, "nil layout")
	}

	// Accounting: {Renamed keys} ⊎ {Removed} = old IDs, {Renamed values} ⊎
	// {Added} = new IDs, each side without duplicates.
	removed := make(map[layout.ID]bool, len(d.Removed))
	for _, id := range d.Removed {
		if int(id) < 0 || int(id) >= len(old.Parts) {
			fail("removed ID %d outside old layout (%d partitions)", id, len(old.Parts))
			continue
		}
		if removed[id] {
			fail("removed ID %d listed twice", id)
		}
		removed[id] = true
	}
	added := make(map[layout.ID]bool, len(d.Added))
	for _, id := range d.Added {
		if int(id) < 0 || int(id) >= len(next.Parts) {
			fail("added ID %d outside new layout (%d partitions)", id, len(next.Parts))
			continue
		}
		if added[id] {
			fail("added ID %d listed twice", id)
		}
		added[id] = true
	}
	newTaken := make(map[layout.ID]layout.ID, len(d.Renamed))
	for oldID, newID := range d.Renamed {
		if int(oldID) < 0 || int(oldID) >= len(old.Parts) {
			fail("renamed old ID %d outside old layout", oldID)
			continue
		}
		if int(newID) < 0 || int(newID) >= len(next.Parts) {
			fail("renamed new ID %d outside new layout", newID)
			continue
		}
		if removed[oldID] {
			fail("old ID %d both renamed and removed", oldID)
		}
		if added[newID] {
			fail("new ID %d both renamed-to and added", newID)
		}
		if prev, dup := newTaken[newID]; dup {
			fail("old IDs %d and %d both rename to %d", prev, oldID, newID)
		}
		newTaken[newID] = oldID
	}
	if got, want := len(d.Renamed)+len(removed), len(old.Parts); got != want {
		fail("diff accounts for %d of %d old partitions", got, want)
	}
	if got, want := len(newTaken)+len(added), len(next.Parts); got != want {
		fail("diff accounts for %d of %d new partitions", got, want)
	}
	if len(errs) > 0 {
		// The structural checks below index through the maps; with broken
		// accounting they would only cascade.
		return errors.Join(errs...)
	}

	// Renamed fidelity: an unchanged partition must be physically identical
	// — same region, same kind, same rows, same record size.
	for oldID, newID := range d.Renamed {
		op, np := old.Parts[oldID], next.Parts[newID]
		if !op.Desc.MBR().Equal(np.Desc.MBR()) || op.Desc.Kind() != np.Desc.Kind() {
			fail("renamed %d→%d changed descriptor (%v to %v)", oldID, newID, op.Desc.MBR(), np.Desc.MBR())
		}
		if op.FullRows != np.FullRows {
			fail("renamed %d→%d changed rows (%d to %d)", oldID, newID, op.FullRows, np.FullRows)
		}
		if op.RowBytes != np.RowBytes {
			fail("renamed %d→%d changed row size (%d to %d)", oldID, newID, op.RowBytes, np.RowBytes)
		}
	}

	// Monotonicity of the rename mapping: both layouts number leaves in
	// pre-order, so surviving partitions must keep their relative order —
	// the cache sweep translates sorted ID lists in place relying on it.
	oldIDs := make([]layout.ID, 0, len(d.Renamed))
	for id := range d.Renamed {
		oldIDs = append(oldIDs, id)
	}
	sort.Slice(oldIDs, func(i, j int) bool { return oldIDs[i] < oldIDs[j] })
	for i := 1; i < len(oldIDs); i++ {
		if d.Renamed[oldIDs[i-1]] >= d.Renamed[oldIDs[i]] {
			fail("rename mapping not strictly increasing: %d→%d but %d→%d",
				oldIDs[i-1], d.Renamed[oldIDs[i-1]], oldIDs[i], d.Renamed[oldIDs[i]])
		}
	}

	// Row conservation: the patch reorganises records, it never creates or
	// destroys them.
	var removedRows, addedRows int64
	region := geom.Box{}
	for id := range removed {
		removedRows += old.Parts[id].FullRows
		if region.Dims() == 0 {
			region = old.Parts[id].Desc.MBR().Clone()
		} else {
			region = geom.MBR(region, old.Parts[id].Desc.MBR())
		}
	}
	for id := range added {
		addedRows += next.Parts[id].FullRows
	}
	if removedRows != addedRows {
		fail("rebuilt region changed row count: removed %d rows, added %d", removedRows, addedRows)
	}

	// Region conservation: every added partition must live inside the MBR
	// of the partitions it replaced.
	for id := range added {
		if region.Dims() == 0 || !region.ContainsBox(next.Parts[id].Desc.MBR()) {
			fail("added partition %d (%v) escapes the rebuilt region %v", id, next.Parts[id].Desc.MBR(), region)
		}
	}

	// Routing agreement: seeded point probes in the rebuilt region must
	// route consistently across the patch — to the renamed image of their
	// old partition, or from a removed partition into an added one.
	if region.Dims() > 0 {
		rng := rand.New(rand.NewSource(seed))
		pt := make(geom.Point, region.Dims())
		for i := 0; i < driftProbes; i++ {
			for dim := range pt {
				pt[dim] = region.Lo[dim] + rng.Float64()*(region.Hi[dim]-region.Lo[dim])
			}
			op := old.Locate(pt)
			np := next.Locate(pt)
			switch {
			case op == nil:
				if np != nil {
					fail("probe %v unrouted in old layout but reaches %d in new", pt, np.ID)
				}
			case np == nil:
				fail("probe %v reaches %d in old layout but is unrouted in new", pt, op.ID)
			case removed[op.ID]:
				if !added[np.ID] {
					fail("probe %v left removed partition %d but landed outside the rebuilt region (new %d)", pt, op.ID, np.ID)
				}
			default:
				if d.Renamed[op.ID] != np.ID {
					fail("probe %v routes to %d (old) but %d (new); rename says %d", pt, op.ID, np.ID, d.Renamed[op.ID])
				}
			}
		}
	}
	return errors.Join(errs...)
}

// MigrationStep is the oracle's view of one partition install of a
// migration plan — what moved (or deliberately did not) for one new-layout
// partition.
type MigrationStep struct {
	// ID is the partition in the new layout's numbering.
	ID layout.ID
	// Reused marks an alias install: the partition survived the patch and
	// the workers only learn its new name.
	Reused bool
	// OldID is the alias source (Reused only).
	OldID layout.ID
	// Bytes is the shipped payload size (payload installs only).
	Bytes int64
	// Rows is the row count the plan claims for the partition.
	Rows int64
}

// CheckCutover validates a migration plan against the patch diff it claims
// to implement: every new partition installed exactly once, renamed
// partitions installed as zero-byte aliases of their old selves (the
// budgeted-incremental contract — re-shipping an unchanged partition is a
// violation, not an inefficiency), rebuilt partitions shipped with the exact
// row counts the new layout carries.
func CheckCutover(next *layout.Layout, d layout.Diff, steps []MigrationStep) error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, violationf(OracleCutover, format, args...))
	}
	if next == nil {
		return violationf(OracleCutover, "nil layout")
	}
	renamedTo := make(map[layout.ID]layout.ID, len(d.Renamed)) // new -> old
	for oldID, newID := range d.Renamed {
		renamedTo[newID] = oldID
	}
	added := make(map[layout.ID]bool, len(d.Added))
	for _, id := range d.Added {
		added[id] = true
	}
	byID := make(map[layout.ID]MigrationStep, len(steps))
	for _, s := range steps {
		if int(s.ID) < 0 || int(s.ID) >= len(next.Parts) {
			fail("step installs unknown partition %d (layout has %d)", s.ID, len(next.Parts))
			continue
		}
		if _, dup := byID[s.ID]; dup {
			fail("partition %d installed twice", s.ID)
			continue
		}
		byID[s.ID] = s
	}
	for _, p := range next.Parts {
		s, ok := byID[p.ID]
		if !ok {
			fail("partition %d has no install step — cutover would serve a partition no worker holds", p.ID)
			continue
		}
		if s.Rows != p.FullRows {
			fail("partition %d step claims %d rows, layout has %d", p.ID, s.Rows, p.FullRows)
		}
		oldID, isRenamed := renamedTo[p.ID]
		switch {
		case isRenamed && !s.Reused:
			fail("partition %d survived the patch (was %d) but the plan ships %d bytes instead of aliasing", p.ID, oldID, s.Bytes)
		case isRenamed && s.OldID != oldID:
			fail("partition %d aliases old %d, diff renames %d", p.ID, s.OldID, oldID)
		case !isRenamed && s.Reused:
			fail("partition %d is new (rebuilt region) but the plan aliases old %d", p.ID, s.OldID)
		case !isRenamed && !added[p.ID]:
			fail("partition %d is neither renamed nor added in the diff", p.ID)
		case !isRenamed && s.Bytes <= 0 && p.FullRows > 0:
			fail("partition %d ships no payload for %d rows", p.ID, p.FullRows)
		}
	}
	return errors.Join(errs...)
}
