// Package invariant is the paper-contract oracle layer: a reusable set of
// machine-checked invariants that any sealed layout — whatever builder
// produced it — must satisfy together with its construction inputs. Every
// oracle corresponds to a guarantee the paper states or relies on:
//
//	geometry       §IV-B/Fig. 8/Fig. 10 — children of every split are
//	               interior-disjoint, their union covers the parent, the
//	               irregular partition is exactly the parent minus the
//	               grouped partitions, and every partition holds ≥ bmin rows.
//	grouped-split  Alg. 1 — each grouped partition contains every extended
//	               query of its group, and the irregular remainder intersects
//	               none of the node's extended queries (its cost is 0, §IV-D).
//	lemma1         Lemma 1 / §IV-A — the layout's cost on the worst-case
//	               workload Q*F upper-bounds its cost on seeded δ-similar
//	               sampled future workloads, per matched query pair and in
//	               aggregate.
//	monotonicity   Alg. 2–3 — no split in the tree increases the Q*F cost,
//	               and greedy builders (PAW, Qd-tree) only contain splits
//	               that strictly decrease it.
//	routing        §V-A/Fig. 4 — the sealed routing index and the precise
//	               descriptors never prune a partition or a record that the
//	               linear descriptor predicates accept.
//	tuner          §V-B/Eq. 5 — selected extra partitions respect the space
//	               budget, carry exact sizes, and each has positive gain.
//
// The oracles are pure checks: they never mutate the layout and they derive
// every expected value independently of the builders (their own query
// clipping, their own union-find grouping, their own row aggregation), so a
// builder bug cannot hide by breaking the checker the same way.
//
// Two entry points cover the two operational situations:
//
//   - Check(l, in) runs every applicable oracle against a layout plus its
//     construction inputs (internal/sim drives it across all builders).
//   - CheckSealed(l, seed) runs the input-free subset (tree wiring, geometry
//     sampling, routing differential) against a bare sealed layout, e.g. one
//     reloaded from disk by `pawcli check`.
package invariant

import (
	"errors"
	"fmt"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/workload"
)

// Oracle names, used to tag violations. The mutation smoke-test asserts each
// of these fires on at least one seeded corruption.
const (
	OracleGeometry     = "geometry"
	OracleGroupedSplit = "grouped-split"
	OracleLemma1       = "lemma1"
	OracleMonotonicity = "monotonicity"
	OracleRouting      = "routing"
	OracleTuner        = "tuner"
)

// Violation is a failed invariant, tagged with the oracle that detected it.
type Violation struct {
	Oracle string
	Detail string
}

// Error implements error.
func (v *Violation) Error() string { return v.Oracle + ": " + v.Detail }

func violationf(oracle, format string, args ...any) error {
	return &Violation{Oracle: oracle, Detail: fmt.Sprintf(format, args...)}
}

// ViolatedOracles returns the set of oracle names tagged in err (which may
// wrap multiple violations via errors.Join).
func ViolatedOracles(err error) map[string]bool {
	out := make(map[string]bool)
	collect(err, out)
	return out
}

func collect(err error, out map[string]bool) {
	if err == nil {
		return
	}
	var v *Violation
	if errors.As(err, &v) {
		out[v.Oracle] = true
	}
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		for _, e := range joined.Unwrap() {
			collect(e, out)
		}
	}
}

// Inputs are the construction-time facts the oracles verify a layout
// against. Data-dependent checks are skipped when Data is nil.
type Inputs struct {
	// Data is the dataset the layout was built over (nil: skip data checks).
	Data *dataset.Dataset
	// Rows are the construction sample rows (nil: skip sample-row checks,
	// e.g. for layouts reloaded from disk, which drop sample state).
	Rows []int
	// Domain is the construction domain (the box handed to the builder).
	Domain geom.Box
	// Hist is the historical workload QH the layout was built for.
	Hist workload.Workload
	// Delta is the declared workload-variance threshold δ.
	Delta float64
	// DriftDelta is the drift used to sample future workloads for the
	// Lemma 1 oracle. Zero defaults to Delta; setting it above Delta
	// simulates futures that violate the δ-similarity contract, which the
	// oracle is expected to flag.
	DriftDelta float64
	// MinRows is bmin in sample rows (0: skip the bmin check).
	MinRows int
	// Greedy marks builders that accept only strictly cost-decreasing
	// splits (PAW's Algorithm 3, the greedy Qd-tree). Beam search and the
	// k-d tree keep it false: their splits still must never increase cost,
	// but need not strictly decrease it.
	Greedy bool
	// Seed drives all sampled probes (points, queries, future workloads).
	Seed int64
	// Futures is the number of δ-similar future workloads sampled by the
	// Lemma 1 oracle (default 4).
	Futures int
	// Points is the number of sampled domain points for the geometric
	// disjointness/coverage probe (default 256).
	Points int
	// Queries is the number of sampled probe queries for the routing
	// differential (default 64).
	Queries int
}

func (in Inputs) withDefaults() Inputs {
	if in.Futures <= 0 {
		in.Futures = 4
	}
	if in.Points <= 0 {
		in.Points = 256
	}
	if in.Queries <= 0 {
		in.Queries = 64
	}
	if in.DriftDelta == 0 {
		in.DriftDelta = in.Delta
	}
	return in
}

// Check runs every applicable oracle and returns all violations joined (nil
// when the layout satisfies every contract).
func Check(l *layout.Layout, in Inputs) error {
	in = in.withDefaults()
	return errors.Join(
		CheckGeometry(l, in),
		CheckGroupedSplit(l, in),
		CheckMonotonicity(l, in),
		CheckLemma1(l, in),
		CheckRouting(l, in),
	)
}

// CheckSealed runs the input-free subset against a bare sealed layout (tree
// wiring, sampled geometry, routing differential): everything that can be
// verified for a layout reloaded from disk, where construction inputs are
// gone. The domain is taken to be the root descriptor's MBR.
func CheckSealed(l *layout.Layout, seed int64) error {
	if l.Root == nil {
		return violationf(OracleGeometry, "layout has no root")
	}
	in := Inputs{Domain: l.Root.Desc.MBR(), Seed: seed}.withDefaults()
	return errors.Join(
		CheckGeometry(l, in),
		CheckGroupedSplit(l, in),
		CheckRouting(l, in),
	)
}
