package invariant

import (
	"math/rand"
	"sort"

	"paw/internal/geom"
	"paw/internal/layout"
)

// volumeRelTol bounds the relative error tolerated by volume-conservation
// checks. Split planes are placed at adjacent floats (LeftHi < RightLo with
// no representable value between), so the "gap" between siblings is a few
// ulps of slab volume — far below this tolerance on any real layout.
const volumeRelTol = 1e-6

// CheckGeometry verifies the partition geometry contracts of §IV-B/Fig. 10:
//
//   - every child's MBR lies inside its parent's MBR;
//   - sibling regions are interior-disjoint (exact box algebra between
//     rectangular and between irregular siblings, seeded interior point
//     sampling across all leaves);
//   - the children of every node cover it: leaf volumes sum to the root
//     volume, rectangular splits conserve volume node-by-node, and every
//     sampled domain point is contained in at least one leaf;
//   - the leaves' sample rows are exactly a partition of the construction
//     rows (no row lost, duplicated, or invented), and each leaf's
//     descriptor contains the rows assigned to it;
//   - every partition holds at least bmin sample rows (Ψ feasibility),
//     except a root that was too small to split at all.
func CheckGeometry(l *layout.Layout, in Inputs) error {
	in = in.withDefaults()
	if l.Root == nil {
		return violationf(OracleGeometry, "layout has no root")
	}

	// Per-node structural checks.
	var walkErr error
	l.Root.Walk(func(n *layout.Node) {
		if walkErr != nil || n.IsLeaf() {
			return
		}
		if len(n.Children) < 2 {
			walkErr = violationf(OracleGeometry, "internal node %v has %d children (splits produce >= 2)",
				n.Desc.MBR(), len(n.Children))
			return
		}
		parent := n.Desc.MBR()
		for i, c := range n.Children {
			if !parent.ContainsBox(c.Desc.MBR()) {
				walkErr = violationf(OracleGeometry, "child %d MBR %v escapes parent %v",
					i, c.Desc.MBR(), parent)
				return
			}
		}
		// Pairwise interior disjointness of rect/rect and irregular/irregular
		// siblings. Rect/irregular pairs are covered by the hole-equality
		// check of the grouped-split oracle and the interior point sampling
		// below (the irregular's MBR legitimately overlaps every sibling).
		for i := range n.Children {
			for j := i + 1; j < len(n.Children); j++ {
				a, b := n.Children[i].Desc, n.Children[j].Desc
				if a.Kind() != b.Kind() {
					continue
				}
				var boxA, boxB geom.Box
				if a.Kind() == layout.KindRect {
					boxA, boxB = a.MBR(), b.MBR()
				} else {
					boxA, boxB = a.(layout.Irregular).Outer, b.(layout.Irregular).Outer
				}
				if inter, ok := boxA.Intersection(boxB); ok && inter.Volume() > 0 {
					walkErr = violationf(OracleGeometry,
						"siblings %d and %d overlap with volume %g (boxes %v, %v)",
						i, j, inter.Volume(), boxA, boxB)
					return
				}
			}
		}
		// Rect-only splits conserve volume exactly (axis-parallel cuts).
		if allRect(n.Children) && parent.Volume() > 0 {
			sum := 0.0
			for _, c := range n.Children {
				sum += c.Desc.MBR().Volume()
			}
			if !approxEqual(sum, parent.Volume()) {
				walkErr = violationf(OracleGeometry,
					"children of %v cover volume %g of parent volume %g", parent, sum, parent.Volume())
				return
			}
		}
	})
	if walkErr != nil {
		return walkErr
	}

	// Global volume conservation: the leaves tile the root.
	rootVol := l.Root.Desc.MBR().Volume()
	if rootVol > 0 {
		sum := 0.0
		for _, p := range l.Parts {
			sum += leafVolume(p.Desc)
		}
		if !approxEqual(sum, rootVol) {
			return violationf(OracleGeometry,
				"leaf volumes sum to %g, root volume is %g (gap or overlap)", sum, rootVol)
		}
	}

	// Seeded point probe: coverage (>= 1 containing leaf) and interior
	// disjointness (<= 1 leaf containing the point strictly inside).
	rng := rand.New(rand.NewSource(in.Seed))
	for _, p := range samplePoints(rng, l, in) {
		contained, interior := 0, 0
		var first, second layout.ID
		for _, part := range l.Parts {
			if part.Desc.Contains(p) {
				contained++
			}
			if interiorContains(part.Desc, p) {
				if interior == 0 {
					first = part.ID
				} else {
					second = part.ID
				}
				interior++
			}
		}
		if contained == 0 {
			return violationf(OracleGeometry, "point %v is covered by no partition", p)
		}
		if interior > 1 {
			return violationf(OracleGeometry,
				"point %v lies strictly inside %d partitions (e.g. %d and %d)", p, interior, first, second)
		}
	}

	// Sample-row conservation: leaves partition the construction rows.
	if in.Rows != nil {
		var got []int
		for _, p := range l.Parts {
			got = append(got, p.SampleRows...)
		}
		if err := equalRowMultiset(in.Rows, got); err != nil {
			return err
		}
		if in.Data != nil {
			pt := make(geom.Point, in.Data.Dims())
			for _, p := range l.Parts {
				for _, r := range p.SampleRows {
					for d := 0; d < in.Data.Dims(); d++ {
						pt[d] = in.Data.At(r, d)
					}
					if !p.Desc.Contains(pt) {
						return violationf(OracleGeometry,
							"partition %d was assigned row %d at %v outside its region", p.ID, r, pt)
					}
				}
			}
		}
	}

	// bmin feasibility (Ψ): every partition must reach the minimum size. A
	// layout of one partition is exempt — the whole input may be below 2·bmin,
	// in which case no split function is admissible and the root stays whole.
	if in.MinRows > 0 && in.Rows != nil && l.NumPartitions() > 1 {
		for _, p := range l.Parts {
			if len(p.SampleRows) < in.MinRows {
				return violationf(OracleGeometry,
					"partition %d holds %d sample rows, below bmin=%d", p.ID, len(p.SampleRows), in.MinRows)
			}
		}
	}
	return nil
}

// CheckGroupedSplit verifies the Multi-Group Split semantics of Algorithm 1
// at every node that carries an irregular child:
//
//   - exactly one irregular child exists and it is the last one (builders
//     place the remainder after the grouped partitions so boundary routing
//     resolves to the groups, layout.Node.routeDown);
//   - the irregular's outer box is the parent box and its holes are exactly
//     the grouped siblings' boxes (IP = parent minus GPs);
//   - every extended query of the node is fully contained in a grouped
//     partition, and each intersection group (recomputed here by
//     union-find) fits inside a single GP;
//   - the irregular remainder intersects no extended query of the node, the
//     property that makes its cost 0 (§IV-D).
//
// The per-node extended query sets are derived independently of the
// builders: Q*F clipped to the domain, then re-clipped at every descent.
func CheckGroupedSplit(l *layout.Layout, in Inputs) error {
	in = in.withDefaults()
	if l.Root == nil {
		return violationf(OracleGroupedSplit, "layout has no root")
	}
	root := clipAll(in.Hist.Extend(in.Delta).Boxes(), in.Domain)
	return checkGroupedNode(l.Root, root)
}

func checkGroupedNode(n *layout.Node, queries []geom.Box) error {
	if n.IsLeaf() {
		return nil
	}
	if n.Desc.Kind() == layout.KindRect {
		var irregular []int
		for i, c := range n.Children {
			if c.Desc.Kind() == layout.KindIrregular {
				irregular = append(irregular, i)
			}
		}
		if len(irregular) > 0 {
			if len(irregular) != 1 || irregular[0] != len(n.Children)-1 {
				return violationf(OracleGroupedSplit,
					"node %v has irregular children at positions %v, want exactly one, last",
					n.Desc.MBR(), irregular)
			}
			ir, ok := n.Children[len(n.Children)-1].Desc.(layout.Irregular)
			if !ok {
				return violationf(OracleGroupedSplit, "irregular child carries descriptor %T", n.Children[len(n.Children)-1].Desc)
			}
			if !ir.Outer.Equal(n.Desc.MBR()) {
				return violationf(OracleGroupedSplit,
					"irregular outer %v differs from parent box %v", ir.Outer, n.Desc.MBR())
			}
			ng := len(n.Children) - 1
			if len(ir.Holes) != ng {
				return violationf(OracleGroupedSplit,
					"irregular has %d holes for %d grouped siblings", len(ir.Holes), ng)
			}
			for i := 0; i < ng; i++ {
				if !ir.Holes[i].Equal(n.Children[i].Desc.MBR()) {
					return violationf(OracleGroupedSplit,
						"hole %d is %v but grouped sibling box is %v (IP != parent minus GPs)",
						i, ir.Holes[i], n.Children[i].Desc.MBR())
				}
			}
			for _, q := range queries {
				if gp := containingGroup(n, ng, q); gp < 0 {
					return violationf(OracleGroupedSplit,
						"extended query %v escapes every grouped partition of node %v", q, n.Desc.MBR())
				}
				if ir.Intersects(q) {
					return violationf(OracleGroupedSplit,
						"irregular remainder of %v intersects extended query %v (cost not 0)", n.Desc.MBR(), q)
				}
			}
			for gi, g := range groupTransitive(queries) {
				if !groupFitsOneGP(n, ng, queries, g) {
					return violationf(OracleGroupedSplit,
						"query group %d (%d queries) spans multiple grouped partitions of node %v",
						gi, len(g), n.Desc.MBR())
				}
			}
		}
	}
	for _, c := range n.Children {
		if err := checkGroupedNode(c, clipAll(queries, c.Desc.MBR())); err != nil {
			return err
		}
	}
	return nil
}

// containingGroup returns the index of a grouped (rect) child whose box
// fully contains q, or -1.
func containingGroup(n *layout.Node, ng int, q geom.Box) int {
	for i := 0; i < ng; i++ {
		if n.Children[i].Desc.MBR().ContainsBox(q) {
			return i
		}
	}
	return -1
}

// groupFitsOneGP reports whether some single grouped child contains every
// query of the group.
func groupFitsOneGP(n *layout.Node, ng int, queries []geom.Box, group []int) bool {
	for i := 0; i < ng; i++ {
		box := n.Children[i].Desc.MBR()
		all := true
		for _, qi := range group {
			if !box.ContainsBox(queries[qi]) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// groupTransitive unions queries into groups of transitively intersecting
// queries — an independent reimplementation of the builders' grouping so a
// shared bug cannot mask itself.
func groupTransitive(queries []geom.Box) [][]int {
	parent := make([]int, len(queries))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := range queries {
		for j := i + 1; j < len(queries); j++ {
			if queries[i].Intersects(queries[j]) {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	groups := make(map[int][]int)
	for i := range queries {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var roots []int
	for r := range groups {
		roots = append(roots, groups[r][0])
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, first := range roots {
		out = append(out, groups[find(first)])
	}
	return out
}

// interiorContains reports whether p lies strictly inside the descriptor's
// region: inside a rect with no boundary contact, or inside an irregular's
// region strictly within its outer box. Sibling regions may legitimately
// share boundary planes (measure zero), so disjointness is asserted on
// interiors only.
func interiorContains(d layout.Descriptor, p geom.Point) bool {
	switch dd := d.(type) {
	case layout.Rect:
		return strictlyInside(dd.Box, p)
	case layout.Irregular:
		return strictlyInside(dd.Outer, p) && dd.Contains(p)
	default:
		return d.Contains(p)
	}
}

func strictlyInside(b geom.Box, p geom.Point) bool {
	for d := range b.Lo {
		if p[d] <= b.Lo[d] || p[d] >= b.Hi[d] {
			return false
		}
	}
	return true
}

// samplePoints produces the deterministic geometric probe set: uniform
// points in the root MBR plus (when available) a spread of dataset records.
func samplePoints(rng *rand.Rand, l *layout.Layout, in Inputs) []geom.Point {
	box := l.Root.Desc.MBR()
	dims := box.Dims()
	pts := make([]geom.Point, 0, in.Points*2)
	for i := 0; i < in.Points; i++ {
		p := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			p[d] = box.Lo[d] + rng.Float64()*(box.Hi[d]-box.Lo[d])
		}
		pts = append(pts, p)
	}
	if in.Data != nil && in.Data.NumRows() > 0 {
		stride := in.Data.NumRows()/in.Points + 1
		for r := 0; r < in.Data.NumRows(); r += stride {
			p := make(geom.Point, in.Data.Dims())
			for d := 0; d < in.Data.Dims(); d++ {
				p[d] = in.Data.At(r, d)
			}
			pts = append(pts, p)
		}
	}
	return pts
}

func leafVolume(d layout.Descriptor) float64 {
	if ir, ok := d.(layout.Irregular); ok {
		return ir.Region().Volume()
	}
	return d.MBR().Volume()
}

func allRect(children []*layout.Node) bool {
	for _, c := range children {
		if c.Desc.Kind() != layout.KindRect {
			return false
		}
	}
	return true
}

func approxEqual(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	if s := a; s < 0 {
		s = -s
	} else if s > scale {
		scale = s
	}
	return diff <= volumeRelTol*scale
}

func equalRowMultiset(want, got []int) error {
	if len(want) != len(got) {
		return violationf(OracleGeometry,
			"leaves hold %d sample rows, construction supplied %d", len(got), len(want))
	}
	ws := append([]int(nil), want...)
	gs := append([]int(nil), got...)
	sort.Ints(ws)
	sort.Ints(gs)
	for i := range ws {
		if ws[i] != gs[i] {
			return violationf(OracleGeometry,
				"sample rows diverge at sorted position %d: layout has %d, construction supplied %d",
				i, gs[i], ws[i])
		}
	}
	return nil
}

func clipAll(queries []geom.Box, box geom.Box) []geom.Box {
	var out []geom.Box
	for _, q := range queries {
		if inter, ok := q.Intersection(box); ok {
			out = append(out, inter)
		}
	}
	return out
}
