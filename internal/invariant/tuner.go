package invariant

import (
	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/layout"
)

// CheckTuner verifies the storage-tuner contract of §V-B/Eq. 5 for a set of
// selected extra partitions:
//
//   - budget: the extras' total physical size never exceeds the space budget;
//   - exact sizes: every extra's FullRows is the true number of records in
//     its box and its RowBytes matches the dataset's record size (a wrong
//     size corrupts both the budget and the cost model);
//   - positive gain: every extra is the cheapest answer for at least one
//     workload query it fully contains — Select only admits candidates whose
//     marginal gain is positive (Eq. 5), so a gainless extra is wasted space;
//   - never harmful: with extras attached, no query costs more than without
//     them, and the workload total never increases.
func CheckTuner(l *layout.Layout, data *dataset.Dataset, queries []geom.Box, extras layout.Extras, budgetBytes int64) error {
	var total int64
	for _, e := range extras {
		total += e.Bytes()
	}
	if total > budgetBytes {
		return violationf(OracleTuner,
			"extras occupy %d bytes, above the budget of %d", total, budgetBytes)
	}
	for i, e := range extras {
		if data != nil {
			if want := int64(data.CountInBox(e.Box, nil)); e.FullRows != want {
				return violationf(OracleTuner,
					"extra %d claims %d rows in %v, the dataset holds %d", i, e.FullRows, e.Box, want)
			}
			if e.RowBytes != data.RowBytes() {
				return violationf(OracleTuner,
					"extra %d claims %d bytes per row, the dataset uses %d", i, e.RowBytes, data.RowBytes())
			}
		}
		gain := false
		for _, q := range queries {
			if e.Box.ContainsBox(q) && e.Bytes() < l.QueryCost(q, nil) {
				gain = true
				break
			}
		}
		if !gain {
			return violationf(OracleTuner,
				"extra %d (%v, %d bytes) improves no workload query: zero gain", i, e.Box, e.Bytes())
		}
	}
	var withE, withoutE int64
	for _, q := range queries {
		cw, cwo := l.QueryCost(q, extras), l.QueryCost(q, nil)
		if cw > cwo {
			return violationf(OracleTuner,
				"query %v costs %d bytes with extras, %d without: extras made it worse", q, cw, cwo)
		}
		withE += cw
		withoutE += cwo
	}
	if withE > withoutE {
		return violationf(OracleTuner,
			"workload costs %d bytes with extras, %d without", withE, withoutE)
	}
	return nil
}
