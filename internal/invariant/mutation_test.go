package invariant_test

import (
	"testing"

	"paw/internal/geom"
	"paw/internal/invariant"
	"paw/internal/layout"
	"paw/internal/placement"
	"paw/internal/sim"
)

// The mutation smoke-test is the oracle suite's own verification: every
// oracle must detect at least one seeded corruption of a real layout. Each
// case builds a clean PAW layout from the deterministic scenario set,
// asserts the targeted oracle passes, applies a known corruption and
// asserts the oracle fires with its own tag. A mutation that goes
// undetected means the oracle silently lost its teeth.

func expectOracle(t *testing.T, err error, oracle string) {
	t.Helper()
	if err == nil {
		t.Fatalf("corruption went undetected: want a %q violation", oracle)
	}
	if !invariant.ViolatedOracles(err)[oracle] {
		t.Fatalf("want a %q violation, got: %v", oracle, err)
	}
}

func expectClean(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("oracle fired on an uncorrupted layout: %v", err)
	}
}

// findLayout builds PAW layouts across the scenario set until pred accepts
// one.
func findLayout(t *testing.T, pred func(*layout.Layout) bool) (sim.Scenario, *layout.Layout) {
	t.Helper()
	for _, sc := range sim.Scenarios(24, 42) {
		l := sim.Build(sc, sim.MethodPAW, 2)
		if pred(l) {
			return sc, l
		}
	}
	t.Fatal("no scenario produced the required layout shape")
	return sim.Scenario{}, nil
}

func anyLayout(l *layout.Layout) bool { return l.NumPartitions() >= 2 }

// outsideBox returns a box strictly below the layout's domain on every
// dimension — guaranteed to contain no record.
func outsideBox(root geom.Box) geom.Box {
	lo := make(geom.Point, root.Dims())
	hi := make(geom.Point, root.Dims())
	for d := range lo {
		lo[d] = root.Lo[d] - 10
		hi[d] = root.Lo[d] - 5
	}
	return geom.Box{Lo: lo, Hi: hi}
}

func TestMutationGeometryOverlap(t *testing.T) {
	sc, l := findLayout(t, anyLayout)
	in := sim.Inputs(sc, sim.MethodPAW)
	expectClean(t, invariant.CheckGeometry(l, in))

	// Enlarge a non-root rectangular leaf past its parent: the child-in-
	// parent and volume-conservation contracts both break.
	var leaf *layout.Node
	l.Root.Walk(func(n *layout.Node) {
		if leaf == nil && n != l.Root && n.IsLeaf() && n.Desc.Kind() == layout.KindRect {
			leaf = n
		}
	})
	if leaf == nil {
		t.Fatal("layout has no rectangular leaf")
	}
	b := leaf.Desc.MBR().Clone()
	b.Hi[0] += b.Hi[0] - b.Lo[0] + 1
	leaf.Desc = layout.NewRect(b)
	leaf.Part.Desc = leaf.Desc
	expectOracle(t, invariant.CheckGeometry(l, in), invariant.OracleGeometry)
}

func TestMutationGeometryLostRows(t *testing.T) {
	sc, l := findLayout(t, anyLayout)
	in := sim.Inputs(sc, sim.MethodPAW)
	expectClean(t, invariant.CheckGeometry(l, in))

	// Drop half of a partition's sample rows: the leaves no longer
	// partition the construction sample.
	p := l.Parts[0]
	p.SampleRows = p.SampleRows[:len(p.SampleRows)/2]
	expectOracle(t, invariant.CheckGeometry(l, in), invariant.OracleGeometry)
}

func TestMutationGeometryBmin(t *testing.T) {
	sc, l := findLayout(t, anyLayout)
	in := sim.Inputs(sc, sim.MethodPAW)
	expectClean(t, invariant.CheckGeometry(l, in))

	// Move rows from one partition to another until the donor drops below
	// bmin. The sample multiset is preserved, so this exercises the bmin
	// and row-containment checks rather than row conservation.
	donor, rcpt := l.Parts[0], l.Parts[1]
	keep := in.MinRows - 1
	if keep < 0 {
		keep = 0
	}
	moved := donor.SampleRows[keep:]
	donor.SampleRows = donor.SampleRows[:keep]
	rcpt.SampleRows = append(rcpt.SampleRows, moved...)
	expectOracle(t, invariant.CheckGeometry(l, in), invariant.OracleGeometry)
}

func findMultiGroup(l *layout.Layout) *layout.Node {
	var mg *layout.Node
	l.Root.Walk(func(n *layout.Node) {
		if mg == nil && !n.IsLeaf() && n.Desc.Kind() == layout.KindRect &&
			n.Children[len(n.Children)-1].Desc.Kind() == layout.KindIrregular {
			mg = n
		}
	})
	return mg
}

func TestMutationGroupedSplitHole(t *testing.T) {
	sc, l := findLayout(t, func(l *layout.Layout) bool { return findMultiGroup(l) != nil })
	in := sim.Inputs(sc, sim.MethodPAW)
	expectClean(t, invariant.CheckGroupedSplit(l, in))

	// Drop one hole from the irregular remainder: IP no longer equals
	// parent minus GPs, so the remainder claims rows of a grouped sibling.
	mg := findMultiGroup(l)
	irNode := mg.Children[len(mg.Children)-1]
	ir := irNode.Desc.(layout.Irregular)
	irNode.Desc = layout.NewIrregular(ir.Outer, ir.Holes[:len(ir.Holes)-1])
	if irNode.IsLeaf() {
		irNode.Part.Desc = irNode.Desc
	}
	expectOracle(t, invariant.CheckGroupedSplit(l, in), invariant.OracleGroupedSplit)
}

func TestMutationGroupedSplitShrunkGP(t *testing.T) {
	sc, l := findLayout(t, func(l *layout.Layout) bool { return findMultiGroup(l) != nil })
	in := sim.Inputs(sc, sim.MethodPAW)
	expectClean(t, invariant.CheckGroupedSplit(l, in))

	// Shrink the first grouped partition towards its center: its group's
	// extended queries no longer fit inside it (and the stale hole no
	// longer matches the sibling's box).
	mg := findMultiGroup(l)
	gp := mg.Children[0]
	m := gp.Desc.MBR()
	c := m.Center()
	shrunk := geom.Box{Lo: make(geom.Point, m.Dims()), Hi: make(geom.Point, m.Dims())}
	for d := 0; d < m.Dims(); d++ {
		shrunk.Lo[d] = (m.Lo[d] + c[d]) / 2
		shrunk.Hi[d] = (m.Hi[d] + c[d]) / 2
	}
	gp.Desc = layout.NewRect(shrunk)
	if gp.IsLeaf() {
		gp.Part.Desc = gp.Desc
	}
	expectOracle(t, invariant.CheckGroupedSplit(l, in), invariant.OracleGroupedSplit)
}

func TestMutationMonotonicityStrict(t *testing.T) {
	sc, l := findLayout(t, func(l *layout.Layout) bool {
		return l.NumPartitions() >= 2 && len(l.Root.Children) >= 2
	})
	in := sim.Inputs(sc, sim.MethodPAW)
	expectClean(t, invariant.CheckMonotonicity(l, in))

	// Enlarge every root child to the whole domain: the root "split" now
	// saves nothing, which a greedy builder would never have accepted.
	rootBox := l.Root.Desc.MBR()
	for _, c := range l.Root.Children {
		c.Desc = layout.NewRect(rootBox)
	}
	expectOracle(t, invariant.CheckMonotonicity(l, in), invariant.OracleMonotonicity)
}

func TestMutationMonotonicityUniversal(t *testing.T) {
	// An irregular refinement node costs 0 on the node's extended queries
	// (they live in the holes); rectifying its children to the outer box
	// makes the children cost more than the parent — an increase even the
	// non-strict bound forbids.
	findIrr := func(l *layout.Layout) *layout.Node {
		var irr *layout.Node
		l.Root.Walk(func(n *layout.Node) {
			if irr == nil && !n.IsLeaf() && n.Desc.Kind() == layout.KindIrregular {
				irr = n
			}
		})
		return irr
	}
	sc, l := findLayout(t, func(l *layout.Layout) bool { return findIrr(l) != nil })
	in := sim.Inputs(sc, sim.MethodPAW)
	in.Greedy = false // target the universal bound only
	expectClean(t, invariant.CheckMonotonicity(l, in))

	irr := findIrr(l)
	for _, c := range irr.Children {
		c.Desc = layout.NewRect(c.Desc.MBR())
		if c.IsLeaf() {
			c.Part.Desc = c.Desc
		}
	}
	expectOracle(t, invariant.CheckMonotonicity(l, in), invariant.OracleMonotonicity)
}

func TestMutationLemma1NegativeSize(t *testing.T) {
	sc, l := findLayout(t, anyLayout)
	in := sim.Inputs(sc, sim.MethodPAW)
	expectClean(t, invariant.CheckLemma1(l, in))

	l.Parts[0].FullRows = -5
	expectOracle(t, invariant.CheckLemma1(l, in), invariant.OracleLemma1)
}

func TestMutationLemma1Drift(t *testing.T) {
	// The layout is untouched; the corruption is operational: future
	// workloads drift further than the declared δ, breaking the variance
	// contract Lemma 1 is conditioned on.
	sc, l := findLayout(t, anyLayout)
	in := sim.Inputs(sc, sim.MethodPAW)
	expectClean(t, invariant.CheckLemma1(l, in))

	root := l.Root.Desc.MBR()
	in.DriftDelta = in.Delta + 0.2*(root.Hi[0]-root.Lo[0])
	expectOracle(t, invariant.CheckLemma1(l, in), invariant.OracleLemma1)
}

func TestMutationRoutingWiring(t *testing.T) {
	sc, l := findLayout(t, anyLayout)
	in := sim.Inputs(sc, sim.MethodPAW)
	expectClean(t, invariant.CheckRouting(l, in))

	l.Parts[0], l.Parts[1] = l.Parts[1], l.Parts[0]
	expectOracle(t, invariant.CheckRouting(l, in), invariant.OracleRouting)
}

func TestMutationRoutingPrecise(t *testing.T) {
	sc, l := findLayout(t, func(l *layout.Layout) bool {
		return l.NumPartitions() >= 2 && l.Parts[0].FullRows > 0
	})
	in := sim.Inputs(sc, sim.MethodPAW)
	expectClean(t, invariant.CheckRouting(l, in))

	// A precise descriptor that covers none of the partition's records:
	// any query touching only those records would be wrongly pruned.
	l.Parts[0].Precise = []geom.Box{outsideBox(l.Root.Desc.MBR())}
	expectOracle(t, invariant.CheckRouting(l, in), invariant.OracleRouting)
}

func TestMutationTuner(t *testing.T) {
	sc, l := findLayout(t, anyLayout)
	queries := sc.Hist.Extend(sc.Delta).Boxes()
	domain := l.Root.Desc.MBR()
	full := layout.Extra{
		Box:      domain,
		FullRows: int64(sc.Data.NumRows()),
		RowBytes: sc.Data.RowBytes(),
	}
	expectClean(t, invariant.CheckTuner(l, sc.Data, queries, nil, 0))

	t.Run("over-budget", func(t *testing.T) {
		expectOracle(t,
			invariant.CheckTuner(l, sc.Data, queries, layout.Extras{full}, full.Bytes()-1),
			invariant.OracleTuner)
	})
	t.Run("wrong-size", func(t *testing.T) {
		lying := full
		lying.FullRows -= 7
		expectOracle(t,
			invariant.CheckTuner(l, sc.Data, queries, layout.Extras{lying}, full.Bytes()*2),
			invariant.OracleTuner)
	})
	t.Run("zero-gain", func(t *testing.T) {
		// A domain-sized copy can never beat scanning the base layout.
		expectOracle(t,
			invariant.CheckTuner(l, sc.Data, queries, layout.Extras{full}, full.Bytes()*2),
			invariant.OracleTuner)
	})
}

func TestMutationReplication(t *testing.T) {
	sc, l := findLayout(t, anyLayout)
	const workers = 3
	queries := sc.Hist.Extend(sc.Delta).Boxes()
	primary := placement.Optimize(l, queries, workers)
	var total int64
	for _, p := range l.Parts {
		total += p.Bytes()
	}
	budget := total / 2
	rep := placement.Replicate(l, queries, workers, primary, budget)
	expectClean(t, invariant.CheckReplication(l, rep, workers, primary, budget))

	t.Run("missing-partition", func(t *testing.T) {
		bad := make(placement.Replicated, len(rep))
		for id, ws := range rep {
			bad[id] = ws
		}
		delete(bad, l.Parts[0].ID)
		expectOracle(t, invariant.CheckReplication(l, bad, workers, primary, budget),
			invariant.OracleReplication)
	})
	t.Run("duplicate-worker", func(t *testing.T) {
		bad := make(placement.Replicated, len(rep))
		for id, ws := range rep {
			bad[id] = ws
		}
		id := l.Parts[0].ID
		bad[id] = []int{bad[id][0], bad[id][0]}
		expectOracle(t, invariant.CheckReplication(l, bad, workers, primary, budget),
			invariant.OracleReplication)
	})
	t.Run("moved-primary", func(t *testing.T) {
		bad := make(placement.Replicated, len(rep))
		for id, ws := range rep {
			bad[id] = ws
		}
		id := l.Parts[0].ID
		bad[id] = []int{(bad[id][0] + 1) % workers}
		expectOracle(t, invariant.CheckReplication(l, bad, workers, primary, budget),
			invariant.OracleReplication)
	})
	t.Run("over-budget", func(t *testing.T) {
		// Shrinking the declared budget below what the copies occupy must
		// fire — unless the greedy loop spent nothing, in which case force a
		// copy in by replicating with an unlimited budget.
		full := placement.Replicate(l, queries, workers, primary, total*int64(workers))
		if full.ReplicaBytes(l) == 0 {
			t.Skip("no partition worth replicating in this scenario")
		}
		expectOracle(t,
			invariant.CheckReplication(l, full, workers, primary, full.ReplicaBytes(l)-1),
			invariant.OracleReplication)
	})
}
