// Package knn answers k-nearest-neighbour queries on top of a partition
// layout — the paper's first future-work direction ("how to support more SQL
// and analytic query operations (e.g., KNN) that could benefit from
// partitioning?", §VII).
//
// The search is the classic best-first branch and bound (Roussopoulos et
// al., adapted from R-trees to partition layouts): partitions are visited in
// ascending MINDIST order between the query point and the partition's
// descriptor region, and the search stops when the next partition's MINDIST
// exceeds the current k-th best distance. Inside a partition, whole row
// groups are skipped by the same bound against their SMA envelopes, so the
// I/O accounting reflects what a real executor would read.
package knn

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"paw/internal/blockstore"
	"paw/internal/geom"
	"paw/internal/layout"
)

// Result is one neighbour.
type Result struct {
	Point geom.Point
	Dist  float64 // Euclidean distance to the query point
}

// Stats reports the work a search performed.
type Stats struct {
	PartitionsScanned int
	GroupsScanned     int
	GroupsSkipped     int
	BytesScanned      int64
}

// Search returns the k records nearest to q (Euclidean distance), in
// ascending distance order.
func Search(l *layout.Layout, store *blockstore.Store, q geom.Point, k int) ([]Result, Stats, error) {
	var st Stats
	if k < 1 {
		return nil, st, fmt.Errorf("knn: k must be >= 1, got %d", k)
	}
	// Partition frontier ordered by MINDIST to the descriptor.
	frontier := make(partHeap, 0, len(l.Parts))
	for _, p := range l.Parts {
		frontier = append(frontier, partEntry{part: p, minDist: descMinDist(p.Desc, q)})
	}
	heap.Init(&frontier)

	best := &resultHeap{} // max-heap on distance, capped at k
	for frontier.Len() > 0 {
		pe := heap.Pop(&frontier).(partEntry)
		if best.Len() == k && pe.minDist > best.worst() {
			break // no remaining partition can improve the result
		}
		sp, err := store.Partition(pe.part.ID)
		if err != nil {
			return nil, st, err
		}
		st.PartitionsScanned++
		tab := sp.Table
		for g := 0; g < tab.NumGroups(); g++ {
			stats := tab.GroupStats(g)
			if stats.Empty() {
				st.GroupsSkipped++
				continue
			}
			if best.Len() == k && minDistBox(stats.MBR(), q) > best.worst() {
				st.GroupsSkipped++
				continue
			}
			st.GroupsScanned++
			st.BytesScanned += tab.GroupBytes(g)
			for _, pt := range tab.GroupPoints(g) {
				d := euclid(pt, q)
				if best.Len() < k {
					heap.Push(best, Result{Point: pt, Dist: d})
				} else if d < best.worst() {
					heap.Pop(best)
					heap.Push(best, Result{Point: pt, Dist: d})
				}
			}
		}
	}
	out := make([]Result, best.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(best).(Result)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	return out, st, nil
}

// descMinDist is the minimal Euclidean distance from q to the descriptor's
// region.
func descMinDist(d layout.Descriptor, q geom.Point) float64 {
	switch v := d.(type) {
	case layout.Rect:
		return minDistBox(v.Box, q)
	case layout.Irregular:
		min := math.Inf(1)
		for _, hb := range v.Region().Boxes() {
			if m := minDistBox(hb.Box, q); m < min {
				min = m
			}
		}
		return min
	default:
		return minDistBox(d.MBR(), q)
	}
}

// minDistBox is the minimal Euclidean distance from point q to box b
// (0 when q is inside). Open faces are measure-zero and ignored: a bound
// computed on the closed box differs from the true infimum by nothing.
func minDistBox(b geom.Box, q geom.Point) float64 {
	var sum float64
	for d := range q {
		switch {
		case q[d] < b.Lo[d]:
			diff := b.Lo[d] - q[d]
			sum += diff * diff
		case q[d] > b.Hi[d]:
			diff := q[d] - b.Hi[d]
			sum += diff * diff
		}
	}
	return math.Sqrt(sum)
}

func euclid(a, b geom.Point) float64 {
	var sum float64
	for d := range a {
		diff := a[d] - b[d]
		sum += diff * diff
	}
	return math.Sqrt(sum)
}

// partEntry orders partitions by MINDIST.
type partEntry struct {
	part    *layout.Partition
	minDist float64
}

type partHeap []partEntry

func (h partHeap) Len() int           { return len(h) }
func (h partHeap) Less(i, j int) bool { return h[i].minDist < h[j].minDist }
func (h partHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *partHeap) Push(x any)        { *h = append(*h, x.(partEntry)) }
func (h *partHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// resultHeap is a max-heap on distance so the worst of the current k best
// is always on top.
type resultHeap []Result

func (h resultHeap) Len() int           { return len(h) }
func (h resultHeap) Less(i, j int) bool { return h[i].Dist > h[j].Dist }
func (h resultHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)        { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
func (h resultHeap) worst() float64     { return h[0].Dist }
