package knn

import (
	"math/rand"
	"sort"
	"testing"

	"paw/internal/blockstore"
	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/kdtree"
	"paw/internal/layout"
	"paw/internal/workload"
)

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func setupKd(t *testing.T, rows int) (*layout.Layout, *blockstore.Store, *dataset.Dataset) {
	t.Helper()
	data := dataset.Uniform(rows, 2, 1)
	l := kdtree.Build(data, allRows(rows), data.Domain(), kdtree.Params{MinRows: rows / 32})
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 64})
	return l, store, data
}

func bruteForce(data *dataset.Dataset, q geom.Point, k int) []Result {
	out := make([]Result, 0, data.NumRows())
	for i := 0; i < data.NumRows(); i++ {
		out = append(out, Result{Point: data.Point(i), Dist: euclid(data.Point(i), q)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestSearchMatchesBruteForce(t *testing.T) {
	l, store, data := setupKd(t, 3000)
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 30; iter++ {
		q := geom.Point{rng.Float64() * 1.2, rng.Float64() * 1.2} // sometimes outside the domain
		k := 1 + rng.Intn(20)
		got, _, err := Search(l, store, q, k)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(data, q, k)
		if len(got) != len(want) {
			t.Fatalf("got %d results, want %d", len(got), len(want))
		}
		for i := range got {
			// Distances must agree exactly (points may tie and swap).
			if diff := got[i].Dist - want[i].Dist; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("iter %d k=%d rank %d: dist %v, want %v", iter, k, i, got[i].Dist, want[i].Dist)
			}
		}
		// Results sorted ascending.
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatal("results not sorted")
			}
		}
	}
}

func TestSearchPrunes(t *testing.T) {
	l, store, data := setupKd(t, 5000)
	q := geom.Point{0.5, 0.5}
	_, st, err := Search(l, store, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.PartitionsScanned >= l.NumPartitions() {
		t.Errorf("scanned all %d partitions — no pruning", st.PartitionsScanned)
	}
	if st.BytesScanned >= data.TotalBytes() {
		t.Errorf("scanned %d of %d bytes — no pruning", st.BytesScanned, data.TotalBytes())
	}
	t.Logf("k=5: scanned %d/%d partitions, %d groups (+%d skipped), %d bytes",
		st.PartitionsScanned, l.NumPartitions(), st.GroupsScanned, st.GroupsSkipped, st.BytesScanned)
}

func TestSearchEdgeCases(t *testing.T) {
	l, store, data := setupKd(t, 500)
	// k larger than the dataset returns everything.
	got, _, err := Search(l, store, geom.Point{0.5, 0.5}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != data.NumRows() {
		t.Errorf("k>n returned %d of %d", len(got), data.NumRows())
	}
	// k < 1 errors.
	if _, _, err := Search(l, store, geom.Point{0.5, 0.5}, 0); err == nil {
		t.Error("k=0 must error")
	}
	// Exact hit: nearest distance 0.
	p := data.Point(123)
	got, _, err = Search(l, store, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Dist != 0 {
		t.Errorf("exact-hit distance = %v", got[0].Dist)
	}
}

// TestSearchOnPAWLayout exercises MINDIST on irregular descriptors.
func TestSearchOnPAWLayout(t *testing.T) {
	data := dataset.Uniform(4000, 2, 3)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(15, 4))
	l := core.Build(data, allRows(4000), dom, hist, core.Params{MinRows: 60, Delta: 0.01})
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 64})
	irr := 0
	for _, p := range l.Parts {
		if p.Desc.Kind() == layout.KindIrregular {
			irr++
		}
	}
	if irr == 0 {
		t.Skip("no irregular partitions on this seed")
	}
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 20; iter++ {
		q := geom.Point{rng.Float64(), rng.Float64()}
		got, _, err := Search(l, store, q, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(data, q, 8)
		for i := range got {
			if diff := got[i].Dist - want[i].Dist; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("iter %d rank %d: dist %v, want %v", iter, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestMinDistBox(t *testing.T) {
	b := geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{2, 2}}
	cases := []struct {
		p    geom.Point
		want float64
	}{
		{geom.Point{1, 1}, 0},   // inside
		{geom.Point{2, 2}, 0},   // corner
		{geom.Point{3, 1}, 1},   // right face
		{geom.Point{5, 6}, 5},   // 3-4-5 corner
		{geom.Point{-3, -4}, 5}, // other corner
	}
	for _, c := range cases {
		if got := minDistBox(b, c.p); got != c.want {
			t.Errorf("minDistBox(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}
