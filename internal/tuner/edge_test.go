package tuner

import (
	"testing"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/invariant"
	"paw/internal/kdtree"
	"paw/internal/layout"
)

// box2 builds a 2-d box.
func box2(x0, y0, x1, y1 float64) geom.Box {
	return geom.Box{Lo: geom.Point{x0, y0}, Hi: geom.Point{x1, y1}}
}

// singlePartitionLayout seals a layout whose tree is one leaf over the whole
// domain — the degenerate case where extras are the only possible pruning.
func singlePartitionLayout(data *dataset.Dataset) *layout.Layout {
	desc := layout.NewRect(data.Domain())
	root := &layout.Node{Desc: desc, Part: &layout.Partition{Desc: desc, SampleRows: allRows(data.NumRows())}}
	l := layout.Seal("single", root, data.RowBytes())
	l.Route(data)
	return l
}

// TestSelectEdgeCases is the table-driven sweep over the tuner's boundary
// behaviours: degenerate budgets, budgets larger than everything, exact
// gain ties and single-partition layouts.
func TestSelectEdgeCases(t *testing.T) {
	data := dataset.Uniform(3000, 2, 5)
	kd := kdtree.Build(data, allRows(3000), data.Domain(), kdtree.Params{MinRows: 120})
	kd.Route(data)
	single := singlePartitionLayout(data)
	queries := func(boxes ...geom.Box) []geom.Box { return boxes }

	dom := data.Domain()
	w := dom.Hi[0] - dom.Lo[0]
	h := dom.Hi[1] - dom.Lo[1]
	// Two disjoint congruent queries over uniform data: symmetric
	// candidates whose sizes — and, on the single-partition layout, whose
	// gains — tie almost exactly.
	qa := box2(dom.Lo[0]+0.1*w, dom.Lo[1]+0.1*h, dom.Lo[0]+0.3*w, dom.Lo[1]+0.3*h)
	qb := box2(dom.Lo[0]+0.6*w, dom.Lo[1]+0.6*h, dom.Lo[0]+0.8*w, dom.Lo[1]+0.8*h)

	cases := []struct {
		name    string
		layout  *layout.Layout
		queries []geom.Box
		budget  int64
		// wantMin/wantMax bound the number of selected extras.
		wantMin, wantMax int
	}{
		{name: "zero-budget", layout: kd, queries: queries(qa, qb), budget: 0, wantMin: 0, wantMax: 0},
		{name: "negative-budget", layout: kd, queries: queries(qa, qb), budget: -100, wantMin: 0, wantMax: 0},
		{name: "no-queries", layout: kd, queries: nil, budget: data.TotalBytes(), wantMin: 0, wantMax: 0},
		{name: "budget-exceeds-total", layout: kd, queries: queries(qa, qb),
			budget: 10 * data.TotalBytes(), wantMin: 1, wantMax: 2},
		{name: "gain-ties", layout: single, queries: queries(qa, qb),
			budget: 10 * data.TotalBytes(), wantMin: 2, wantMax: 2},
		{name: "single-partition", layout: single, queries: queries(qa),
			budget: data.TotalBytes(), wantMin: 1, wantMax: 1},
		{name: "budget-below-any-candidate", layout: kd, queries: queries(qa, qb), budget: 1,
			wantMin: 0, wantMax: 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			extras := Select(tc.layout, data, tc.queries, tc.budget)
			if n := len(extras); n < tc.wantMin || n > tc.wantMax {
				t.Fatalf("selected %d extras, want between %d and %d", n, tc.wantMin, tc.wantMax)
			}
			if got := TotalBytes(extras); tc.budget > 0 && got > tc.budget {
				t.Fatalf("extras occupy %d bytes, budget is %d", got, tc.budget)
			}
			// Whatever was selected must satisfy the tuner oracle.
			budget := tc.budget
			if budget < 0 {
				budget = 0
			}
			if err := invariant.CheckTuner(tc.layout, data, tc.queries, extras, budget); err != nil {
				t.Fatalf("tuner invariants violated: %v", err)
			}
		})
	}
}

// TestSelectTieDeterminism pins the tie-breaking order: with symmetric
// candidates the selection must be reproducible run to run (first maximal
// gain in candidate order wins).
func TestSelectTieDeterminism(t *testing.T) {
	data := dataset.Uniform(3000, 2, 5)
	single := singlePartitionLayout(data)
	dom := data.Domain()
	w := dom.Hi[0] - dom.Lo[0]
	h := dom.Hi[1] - dom.Lo[1]
	qs := []geom.Box{
		box2(dom.Lo[0]+0.1*w, dom.Lo[1]+0.1*h, dom.Lo[0]+0.3*w, dom.Lo[1]+0.3*h),
		box2(dom.Lo[0]+0.6*w, dom.Lo[1]+0.6*h, dom.Lo[0]+0.8*w, dom.Lo[1]+0.8*h),
	}
	first := Select(single, data, qs, data.TotalBytes())
	for i := 0; i < 5; i++ {
		again := Select(single, data, qs, data.TotalBytes())
		if len(again) != len(first) {
			t.Fatalf("run %d selected %d extras, first run %d", i, len(again), len(first))
		}
		for j := range first {
			if !again[j].Box.Equal(first[j].Box) || again[j].FullRows != first[j].FullRows {
				t.Fatalf("run %d extra %d diverges: %+v vs %+v", i, j, again[j], first[j])
			}
		}
	}
}
