// Package tuner implements the storage-tuner plugin module of §V-B: spare
// disk space is spent on redundant ("extra") partitions — one candidate per
// worst-case query q*j, holding exactly q*j's result — selected greedily in
// descending order of the gain function (Eq. 5) until the space budget is
// exhausted. A query fully contained in an extra partition is answered from
// that copy alone.
package tuner

import (
	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/obs"
)

// Tuner metric names. The gain histogram records Eq. 5's gain of every
// accepted replica (a dimensionless saved-bytes/spent-bytes ratio); the
// budget gauges expose consumption so an operator can see how much of the
// spare space the greedy loop actually spent.
const (
	MetricCandidates      = "tuner_candidates_total"
	MetricReplicas        = "tuner_replicas_selected_total"
	MetricReplicaBytes    = "tuner_replica_bytes_total"
	MetricBudgetBytes     = "tuner_budget_bytes"
	MetricBudgetRemaining = "tuner_budget_remaining_bytes"
	MetricGain            = "tuner_replica_gain"
)

// GainBuckets are the histogram bounds for Eq. 5 gain ratios: a gain below 1
// means the replica saves less than it costs (the greedy loop never accepts
// those), and focused workloads routinely reach gains in the hundreds.
func GainBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

// Select runs the greedy algorithm of §V-B: candidates are the extended
// queries' regions; gains follow Eq. 5 and are recomputed after every pick
// (earlier picks lower the residual cost of queries they cover). budgetBytes
// caps the total size of the selected extra partitions.
//
// The returned extras are ready to pass to Layout.QueryCost.
func Select(l *layout.Layout, data *dataset.Dataset, queries []geom.Box, budgetBytes int64) layout.Extras {
	return SelectObserved(l, data, queries, budgetBytes, nil)
}

// SelectObserved is Select with telemetry: per-replica gain observations,
// replica and byte counts, and budget consumption gauges. reg may be nil
// (equivalent to Select); the selection itself is identical either way.
func SelectObserved(l *layout.Layout, data *dataset.Dataset, queries []geom.Box, budgetBytes int64, reg *obs.Registry) layout.Extras {
	var (
		cReplicas, cBytes *obs.Counter
		gBudget, gRemain  *obs.Gauge
		hGain             *obs.Histogram
	)
	if reg != nil {
		reg.Counter(MetricCandidates).Add(int64(len(queries)))
		cReplicas = reg.Counter(MetricReplicas)
		cBytes = reg.Counter(MetricReplicaBytes)
		gBudget = reg.Gauge(MetricBudgetBytes)
		gRemain = reg.Gauge(MetricBudgetRemaining)
		hGain = reg.Histogram(MetricGain, GainBuckets())
		gBudget.Set(budgetBytes)
		gRemain.Set(budgetBytes)
	}
	if budgetBytes <= 0 || len(queries) == 0 {
		return nil
	}
	type cand struct {
		box   geom.Box
		bytes int64
		taken bool
	}
	cands := make([]cand, len(queries))
	for i, q := range queries {
		rows := int64(data.CountInBox(q, nil))
		cands[i] = cand{box: q.Clone(), bytes: rows * data.RowBytes()}
	}
	// Residual cost of answering each query with the current layout plus
	// the extras selected so far. Batched, index-accelerated costing: this
	// sweep was the slowest part of storage-tuner gain evaluation on large
	// layouts.
	residual := l.QueryCosts(queries, nil, 0)
	// covers[j] lists the queries contained in candidate j (q*i ⊆ RPj).
	covers := make([][]int, len(queries))
	for j := range cands {
		for i, q := range queries {
			if cands[j].box.ContainsBox(q) {
				covers[j] = append(covers[j], i)
			}
		}
	}
	gain := func(j int) float64 {
		if cands[j].bytes <= 0 {
			return -1
		}
		var saved int64
		for _, i := range covers[j] {
			if d := residual[i] - cands[j].bytes; d > 0 {
				saved += d
			}
		}
		if saved == 0 {
			return -1
		}
		return float64(saved) / float64(cands[j].bytes)
	}
	var out layout.Extras
	remaining := budgetBytes
	for {
		bestJ, bestG := -1, 0.0
		for j := range cands {
			if cands[j].taken || cands[j].bytes > remaining || cands[j].bytes == 0 {
				continue
			}
			if g := gain(j); g > bestG {
				bestG, bestJ = g, j
			}
		}
		if bestJ < 0 {
			return out
		}
		cands[bestJ].taken = true
		remaining -= cands[bestJ].bytes
		cReplicas.Inc()
		cBytes.Add(cands[bestJ].bytes)
		gRemain.Set(remaining)
		hGain.Observe(bestG)
		out = append(out, layout.Extra{
			Box:      cands[bestJ].box,
			FullRows: cands[bestJ].bytes / data.RowBytes(),
			RowBytes: data.RowBytes(),
		})
		// Update residual costs: covered queries can now be answered from
		// the new copy.
		for _, i := range covers[bestJ] {
			if cands[bestJ].bytes < residual[i] {
				residual[i] = cands[bestJ].bytes
			}
		}
	}
}

// TotalBytes returns the storage the extras occupy.
func TotalBytes(extras layout.Extras) int64 {
	var t int64
	for _, e := range extras {
		t += e.Bytes()
	}
	return t
}
