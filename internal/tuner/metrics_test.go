package tuner

import (
	"testing"

	"paw/internal/obs"
)

// TestSelectObservedTelemetry: the counters/gauges mirror the greedy loop's
// actual decisions, and the selection is identical with telemetry attached.
func TestSelectObservedTelemetry(t *testing.T) {
	l, data, w := setup(t)
	budget := data.TotalBytes() / 5
	plain := Select(l, data, w.Boxes(), budget)

	reg := obs.New()
	extras := SelectObserved(l, data, w.Boxes(), budget, reg)
	if len(extras) != len(plain) {
		t.Fatalf("telemetry changed selection: %d vs %d extras", len(extras), len(plain))
	}
	snap := reg.Snapshot()
	if got := snap.Counter(MetricCandidates); got != int64(len(w)) {
		t.Errorf("candidates = %d, want %d", got, len(w))
	}
	if got := snap.Counter(MetricReplicas); got != int64(len(extras)) {
		t.Errorf("replicas = %d, want %d", got, len(extras))
	}
	if got := snap.Counter(MetricReplicaBytes); got != TotalBytes(extras) {
		t.Errorf("replica bytes = %d, want %d", got, TotalBytes(extras))
	}
	if got := snap.Gauge(MetricBudgetBytes); got != budget {
		t.Errorf("budget gauge = %d, want %d", got, budget)
	}
	if got := snap.Gauge(MetricBudgetRemaining); got != budget-TotalBytes(extras) {
		t.Errorf("budget remaining = %d, want %d", got, budget-TotalBytes(extras))
	}
	h := snap.Histograms[MetricGain]
	if h.Count != int64(len(extras)) {
		t.Errorf("gain observations = %d, want %d", h.Count, len(extras))
	}
}
