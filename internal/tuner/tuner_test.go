package tuner

import (
	"testing"

	"paw/internal/dataset"
	"paw/internal/kdtree"
	"paw/internal/layout"
	"paw/internal/workload"
)

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func setup(t *testing.T) (*layout.Layout, *dataset.Dataset, workload.Workload) {
	t.Helper()
	data := dataset.Uniform(4000, 2, 1)
	l := kdtree.Build(data, allRows(4000), data.Domain(), kdtree.Params{MinRows: 150})
	l.Route(data)
	w := workload.Uniform(data.Domain(), workload.Defaults(40, 2))
	return l, data, w
}

func TestSelectRespectsBudget(t *testing.T) {
	l, data, w := setup(t)
	for _, frac := range []float64{0.01, 0.05, 0.1, 0.2} {
		budget := int64(float64(data.TotalBytes()) * frac)
		extras := Select(l, data, w.Boxes(), budget)
		if got := TotalBytes(extras); got > budget {
			t.Errorf("budget %d exceeded: %d", budget, got)
		}
	}
}

func TestSelectReducesCost(t *testing.T) {
	l, data, w := setup(t)
	before := l.WorkloadCost(w.Boxes(), nil)
	extras := Select(l, data, w.Boxes(), data.TotalBytes()/5) // 20% spare space
	after := l.WorkloadCost(w.Boxes(), extras)
	if after >= before {
		t.Errorf("storage tuner did not reduce cost: %d -> %d (%d extras)", before, after, len(extras))
	}
	t.Logf("cost %d -> %d with %d extras (%.1f%% space)",
		before, after, len(extras), 100*float64(TotalBytes(extras))/float64(data.TotalBytes()))
}

func TestSelectZeroBudget(t *testing.T) {
	l, data, w := setup(t)
	if extras := Select(l, data, w.Boxes(), 0); extras != nil {
		t.Error("zero budget must select nothing")
	}
	if extras := Select(l, data, nil, 1<<40); extras != nil {
		t.Error("no queries, no extras")
	}
}

func TestSelectPrefersHighGain(t *testing.T) {
	l, data, w := setup(t)
	// With budget for roughly one candidate, the pick must strictly reduce
	// the cost of at least its own query.
	extras := Select(l, data, w.Boxes(), data.TotalBytes()/100)
	if len(extras) == 0 {
		t.Skip("budget too small for any candidate on this data")
	}
	for _, e := range extras {
		direct := l.QueryCost(e.Box, nil)
		if e.Bytes() >= direct {
			t.Errorf("selected extra of %d bytes does not beat direct cost %d", e.Bytes(), direct)
		}
	}
}

// TestMonotoneBudget reproduces the Fig. 23b behaviour: more spare space
// never increases the workload cost.
func TestMonotoneBudget(t *testing.T) {
	l, data, w := setup(t)
	prev := l.WorkloadCost(w.Boxes(), nil)
	for _, frac := range []float64{0.01, 0.02, 0.05, 0.1, 0.2} {
		extras := Select(l, data, w.Boxes(), int64(float64(data.TotalBytes())*frac))
		c := l.WorkloadCost(w.Boxes(), extras)
		if c > prev {
			t.Errorf("cost increased with budget %.0f%%: %d -> %d", frac*100, prev, c)
		}
		prev = c
	}
}

// TestExtrasNeverBelowLB: answering from a copy still reads at least the
// result size.
func TestExtrasNeverBelowLB(t *testing.T) {
	l, data, w := setup(t)
	extras := Select(l, data, w.Boxes(), data.TotalBytes()/5)
	for _, q := range w.Boxes() {
		cost := l.QueryCost(q, extras)
		lb := layout.LowerBoundBytes(data, q)
		if cost < lb {
			t.Fatalf("query cost %d below lower bound %d", cost, lb)
		}
	}
}
