package router

import (
	"testing"

	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/obs"
)

// TestMetricsObserveRouting pins the routing telemetry contract: one query
// counted per routed range, partitions touched and considered accumulate,
// and selected + skipped bytes cover the whole layout.
func TestMetricsObserveRouting(t *testing.T) {
	m, _, l := setup(t)
	reg := obs.New()
	m.SetMetrics(reg)

	q := geom.Box{Lo: geom.Point{0.2, 0.2}, Hi: geom.Point{0.4, 0.4}}
	plan, err := m.RouteRange(q)
	if err != nil {
		t.Fatal(err)
	}
	touched := len(plan.PartitionIDs())

	snap := reg.Snapshot()
	if got := snap.Counter(MetricQueries); got != 1 {
		t.Errorf("queries = %d, want 1", got)
	}
	if got := snap.Counter(MetricPartsTouched); got != int64(touched) {
		t.Errorf("partitions touched = %d, want %d", got, touched)
	}
	if got := snap.Counter(MetricPartsTotal); got != int64(l.NumPartitions()) {
		t.Errorf("partitions considered = %d, want %d", got, l.NumPartitions())
	}
	var wantSel int64
	for _, id := range plan.PartitionIDs() {
		wantSel += l.Parts[id].Bytes()
	}
	if got := snap.Counter(MetricBytesSelected); got != wantSel {
		t.Errorf("bytes selected = %d, want %d", got, wantSel)
	}
	if got := snap.Counter(MetricBytesSkipped); got != l.TotalBytes-wantSel {
		t.Errorf("bytes skipped = %d, want %d", got, l.TotalBytes-wantSel)
	}
	h := snap.Histograms[MetricLatency]
	if h.Count != 1 {
		t.Errorf("latency observations = %d, want 1", h.Count)
	}

	// An extra-served range counts the extra's bytes, not base partitions.
	extra := layout.Extra{Box: geom.UnitBox(2), FullRows: 100, RowBytes: l.RowBytes}
	m.SetExtras(layout.Extras{extra})
	if _, err := m.RouteRange(q); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap.Counter(MetricExtraHits); got != 1 {
		t.Errorf("extra hits = %d, want 1", got)
	}
	if got := snap.Counter(MetricBytesSelected); got != wantSel+extra.Bytes() {
		t.Errorf("bytes selected after extra = %d, want %d", got, wantSel+extra.Bytes())
	}

	// SetMetrics(nil) detaches: no further observations.
	m.SetMetrics(nil)
	if _, err := m.RouteRange(q); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counter(MetricQueries); got != 2 {
		t.Errorf("queries after detach = %d, want 2", got)
	}
}

// TestRoutePartitionsDisabledZeroAlloc asserts the acceptance bar: with
// telemetry detached the routing hot path allocates nothing per query when
// the destination slice has capacity.
func TestRoutePartitionsDisabledZeroAlloc(t *testing.T) {
	m, _, _ := setup(t)
	q := geom.Box{Lo: geom.Point{0.2, 0.2}, Hi: geom.Point{0.4, 0.4}}
	dst := make([]layout.ID, 0, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		dst, _ = m.RoutePartitions(dst[:0], q)
	})
	if allocs != 0 {
		t.Fatalf("disabled routing hot path allocated %.1f/run, want 0", allocs)
	}
}

// TestRoutePartitionsEnabledZeroAlloc: the instruments themselves are
// allocation-free, so enabling telemetry must not add allocations either.
func TestRoutePartitionsEnabledZeroAlloc(t *testing.T) {
	m, _, _ := setup(t)
	m.SetMetrics(obs.New())
	q := geom.Box{Lo: geom.Point{0.2, 0.2}, Hi: geom.Point{0.4, 0.4}}
	dst := make([]layout.ID, 0, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		dst, _ = m.RoutePartitions(dst[:0], q)
	})
	if allocs != 0 {
		t.Fatalf("enabled routing hot path allocated %.1f/run, want 0", allocs)
	}
}

// TestMetricsDoNotChangePlans: telemetry only observes — identical plans
// with metrics attached and detached.
func TestMetricsDoNotChangePlans(t *testing.T) {
	m, _, _ := setup(t)
	q := geom.Box{Lo: geom.Point{0.1, 0.3}, Hi: geom.Point{0.7, 0.8}}
	before, err := m.RouteRange(q)
	if err != nil {
		t.Fatal(err)
	}
	m.SetMetrics(obs.New())
	after, err := m.RouteRange(q)
	if err != nil {
		t.Fatal(err)
	}
	b, a := before.PartitionIDs(), after.PartitionIDs()
	if len(b) != len(a) {
		t.Fatalf("plan changed under telemetry: %v vs %v", b, a)
	}
	for i := range b {
		if b[i] != a[i] {
			t.Fatalf("plan changed under telemetry: %v vs %v", b, a)
		}
	}
}
