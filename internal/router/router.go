// Package router implements the master node of the PAW query framework
// (Fig. 4): it keeps the partition layout's descriptors (plus optional
// precise descriptors and storage-tuner extras) in memory, rewrites incoming
// SQL queries into range queries, and computes the union list of partition
// IDs the storage layer must scan.
package router

import (
	"fmt"
	"sort"
	"time"

	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/sqlrew"
)

// Master is the in-memory query-routing state of the cluster's master node.
type Master struct {
	layout   *layout.Layout
	extras   layout.Extras
	rewriter *sqlrew.Rewriter
	recorder func(geom.Box)
	// m is the optional routing telemetry (SetMetrics); the zero value is
	// fully disabled and keeps the hot path allocation-free.
	m metrics
}

// SetRecorder installs a callback invoked with every routed range query —
// typically (*workload.Log).Record, so the history that future layout
// rebuilds and δ′ estimation need accumulates as a side effect of serving
// queries. Pass nil to stop recording.
func (m *Master) SetRecorder(rec func(geom.Box)) { m.recorder = rec }

// NewMaster wires a routed layout with a SQL schema. columns maps query
// dimensions to SQL column names, in dimension order.
func NewMaster(l *layout.Layout, columns []string) (*Master, error) {
	rw, err := sqlrew.New(columns)
	if err != nil {
		return nil, err
	}
	return &Master{layout: l, rewriter: rw}, nil
}

// SetExtras installs (or clears) the storage tuner's redundant partitions.
func (m *Master) SetExtras(extras layout.Extras) { m.extras = extras }

// Layout exposes the routed layout.
func (m *Master) Layout() *layout.Layout { return m.layout }

// RangePlan is the routing decision for one rewritten range query.
type RangePlan struct {
	// Range is the rewritten range query.
	Range geom.Box
	// Extra is the index of the extra partition answering this range, or
	// -1 when the base layout serves it.
	Extra int
	// Parts lists the base partitions to scan (empty when Extra >= 0).
	Parts []layout.ID
}

// Plan is the full routing decision for one SQL query.
type Plan struct {
	Ranges []RangePlan
}

// PartitionIDs returns the deduplicated, sorted union of base partitions
// over all sub-queries — the ID list the master ships to the storage layer.
// Single-range plans (the common case) return the range's already-sorted
// list directly; multi-range plans sort-and-compact without a hash set.
func (p Plan) PartitionIDs() []layout.ID {
	n := 0
	for _, r := range p.Ranges {
		n += len(r.Parts)
	}
	if n == 0 {
		return nil
	}
	if len(p.Ranges) == 1 {
		return p.Ranges[0].Parts
	}
	out := make([]layout.ID, 0, n)
	for _, r := range p.Ranges {
		out = append(out, r.Parts...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// NumScans counts the per-range partition scans the plan schedules — the
// scatter work, without materialising the deduplicated union. A partition
// named by two ranges counts twice, because it is scanned twice. Used as a
// routing-span attribute and cost-record feature without PartitionIDs'
// allocation on multi-range plans.
func (p Plan) NumScans() int {
	n := 0
	for _, r := range p.Ranges {
		n += len(r.Parts)
	}
	return n
}

// CostBytes returns the plan's total I/O cost: extra partitions for ranges
// they serve, base partitions (deduplicated) for the rest.
func (p Plan) CostBytes(l *layout.Layout, extras layout.Extras) int64 {
	var total int64
	for _, r := range p.Ranges {
		if r.Extra >= 0 {
			total += extras[r.Extra].Bytes()
		}
	}
	for _, id := range p.PartitionIDs() {
		total += l.Parts[id].Bytes()
	}
	return total
}

// RouteSQL rewrites a SQL statement and routes every resulting range.
func (m *Master) RouteSQL(stmt string) (Plan, error) {
	ranges, err := m.rewriter.RewriteSQL(stmt)
	if err != nil {
		return Plan{}, err
	}
	return m.routeRanges(ranges)
}

// RouteWhere rewrites a bare WHERE clause and routes every resulting range.
func (m *Master) RouteWhere(where string) (Plan, error) {
	ranges, err := m.rewriter.Rewrite(where)
	if err != nil {
		return Plan{}, err
	}
	return m.routeRanges(ranges)
}

// RouteRange routes a single pre-built range query.
func (m *Master) RouteRange(q geom.Box) (Plan, error) {
	return m.routeRanges([]geom.Box{q})
}

func (m *Master) routeRanges(ranges []geom.Box) (Plan, error) {
	var plan Plan
	for _, q := range ranges {
		if q.Dims() != m.rewriter.Dims() {
			return Plan{}, fmt.Errorf("router: query has %d dims, schema has %d", q.Dims(), m.rewriter.Dims())
		}
		rp := RangePlan{Range: q}
		rp.Parts, rp.Extra = m.RoutePartitions(nil, q)
		plan.Ranges = append(plan.Ranges, rp)
	}
	return plan, nil
}

// RoutePartitions routes one range query without materialising a Plan: the
// base partitions to scan are appended to dst (allocation-free when dst has
// capacity — the hot path for callers streaming many ranges), and extra is
// the index of the extra partition answering the range, or -1 when the base
// layout serves it (in which case the appended list is what the storage
// layer must scan). The recorder and extras are applied exactly as in
// RouteRange.
func (m *Master) RoutePartitions(dst []layout.ID, q geom.Box) (parts []layout.ID, extra int) {
	var start time.Time
	if m.m.enabled {
		start = time.Now()
	}
	if m.recorder != nil {
		m.recorder(q)
	}
	// Extra partitions first (§V-B): a range fully inside an extra is
	// answered from the cheapest covering copy.
	extra = -1
	best := int64(-1)
	for i, e := range m.extras {
		if e.Box.ContainsBox(q) {
			if b := e.Bytes(); best < 0 || b < best {
				best = b
				extra = i
			}
		}
	}
	if extra >= 0 {
		if m.m.enabled {
			m.observeRoute(start, nil, extra)
		}
		return dst, extra
	}
	pre := len(dst)
	parts = m.layout.AppendPartitionsFor(dst, q)
	if m.m.enabled {
		m.observeRoute(start, parts[pre:], -1)
	}
	return parts, -1
}

// MemoryFootprint returns the master's in-memory metadata size in bytes:
// 16·dmax per rectangular descriptor bound pair, the same per irregular
// region box, per precise-descriptor MBR and per extra partition. This is
// the quantity §V-A argues is negligible next to partition sizes.
func (m *Master) MemoryFootprint() int64 {
	perBox := int64(m.rewriter.Dims()) * 16
	var total int64
	for _, p := range m.layout.Parts {
		switch d := p.Desc.(type) {
		case layout.Rect:
			total += perBox
		case layout.Irregular:
			total += perBox * int64(1+len(d.Holes))
		default:
			total += perBox
		}
		total += perBox * int64(len(p.Precise))
	}
	total += perBox * int64(len(m.extras))
	return total
}
