package router

import (
	"time"

	"paw/internal/layout"
	"paw/internal/obs"
)

// Routing metric names. The per-query latency histogram uses
// obs.LatencyBuckets (nanosecond bounds); the touched/total counter pair and
// the selected/skipped byte counters give the fraction of the layout each
// query actually reads — the quantity Table I of the paper reports.
const (
	MetricQueries       = "router_queries_total"
	MetricLatency       = "router_query_latency_ns"
	MetricPartsTouched  = "router_partitions_touched_total"
	MetricPartsTotal    = "router_partitions_considered_total"
	MetricBytesSelected = "router_bytes_selected_total"
	MetricBytesSkipped  = "router_bytes_skipped_total"
	MetricExtraHits     = "router_extra_hits_total"
)

// metrics is the optional routing telemetry. enabled gates the clock reads
// and the per-query byte accounting so the disabled hot path stays exactly as
// cheap (and allocation-free) as an un-instrumented master.
type metrics struct {
	enabled       bool
	queries       *obs.Counter
	latency       *obs.Histogram
	partsTouched  *obs.Counter
	partsTotal    *obs.Counter
	bytesSelected *obs.Counter
	bytesSkipped  *obs.Counter
	extraHits     *obs.Counter
}

// SetMetrics attaches (or, with nil, detaches) routing telemetry. Metrics
// only observe routing decisions — plans are identical with telemetry on or
// off.
func (m *Master) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		m.m = metrics{}
		return
	}
	m.m = metrics{
		enabled:       true,
		queries:       reg.Counter(MetricQueries),
		latency:       reg.Histogram(MetricLatency, obs.LatencyBuckets()),
		partsTouched:  reg.Counter(MetricPartsTouched),
		partsTotal:    reg.Counter(MetricPartsTotal),
		bytesSelected: reg.Counter(MetricBytesSelected),
		bytesSkipped:  reg.Counter(MetricBytesSkipped),
		extraHits:     reg.Counter(MetricExtraHits),
	}
}

// observeRoute records one routed range: latency, partitions touched vs the
// layout total, and bytes selected vs skipped. touched is the slice of base
// partition IDs this range appended (empty when an extra answered it).
func (m *Master) observeRoute(start time.Time, touched []layout.ID, extra int) {
	mm := &m.m
	mm.queries.Inc()
	mm.latency.Observe(float64(time.Since(start)))
	mm.partsTotal.Add(int64(m.layout.NumPartitions()))
	var sel int64
	if extra >= 0 {
		mm.extraHits.Inc()
		sel = m.extras[extra].Bytes()
	} else {
		mm.partsTouched.Add(int64(len(touched)))
		for _, id := range touched {
			sel += m.layout.Parts[id].Bytes()
		}
	}
	mm.bytesSelected.Add(sel)
	if skip := m.layout.TotalBytes - sel; skip > 0 {
		mm.bytesSkipped.Add(skip)
	}
}
