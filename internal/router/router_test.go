package router

import (
	"testing"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/kdtree"
	"paw/internal/layout"
)

func setup(t *testing.T) (*Master, *dataset.Dataset, *layout.Layout) {
	t.Helper()
	data := dataset.Uniform(4000, 2, 1)
	rows := make([]int, 4000)
	for i := range rows {
		rows[i] = i
	}
	l := kdtree.Build(data, rows, data.Domain(), kdtree.Params{MinRows: 250})
	l.Route(data)
	m, err := NewMaster(l, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	return m, data, l
}

func TestRouteWhere(t *testing.T) {
	m, data, l := setup(t)
	plan, err := m.RouteWhere("x >= 0.2 AND x <= 0.4 AND y >= 0.2 AND y <= 0.4")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Ranges) != 1 {
		t.Fatalf("ranges = %d", len(plan.Ranges))
	}
	ids := plan.PartitionIDs()
	if len(ids) == 0 {
		t.Fatal("no partitions routed")
	}
	// The routed set must equal the layout's own answer.
	q := geom.Box{Lo: geom.Point{0.2, 0.2}, Hi: geom.Point{0.4, 0.4}}
	want := l.PartitionsFor(q)
	if len(ids) != len(want) {
		t.Fatalf("routed %v, want %v", ids, want)
	}
	for i := range ids {
		if ids[i] != want[i] {
			t.Fatalf("routed %v, want %v", ids, want)
		}
	}
	_ = data
}

func TestRouteSQLUnionOfSubqueries(t *testing.T) {
	m, _, l := setup(t)
	plan, err := m.RouteSQL("SELECT * FROM t WHERE x <= 0.1 OR x >= 0.9")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Ranges) != 2 {
		t.Fatalf("expected 2 disjoint sub-queries, got %d", len(plan.Ranges))
	}
	ids := plan.PartitionIDs()
	// Union must be deduplicated and sorted.
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("partition IDs not sorted/deduplicated")
		}
	}
	// Every partition in each sub-plan must be in the union.
	seen := map[layout.ID]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	for _, rp := range plan.Ranges {
		for _, id := range rp.Parts {
			if !seen[id] {
				t.Fatalf("partition %d missing from union", id)
			}
		}
	}
	_ = l
}

func TestRouteWithExtras(t *testing.T) {
	m, data, l := setup(t)
	q := geom.Box{Lo: geom.Point{0.3, 0.3}, Hi: geom.Point{0.35, 0.35}}
	extra := layout.Extra{
		Box:      geom.Box{Lo: geom.Point{0.25, 0.25}, Hi: geom.Point{0.4, 0.4}},
		FullRows: int64(data.CountInBox(geom.Box{Lo: geom.Point{0.25, 0.25}, Hi: geom.Point{0.4, 0.4}}, nil)),
		RowBytes: data.RowBytes(),
	}
	m.SetExtras(layout.Extras{extra})
	plan, err := m.RouteRange(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Ranges[0].Extra != 0 {
		t.Fatal("query inside the extra partition must be served by it")
	}
	if len(plan.PartitionIDs()) != 0 {
		t.Fatal("extra-served range must not scan base partitions")
	}
	if got := plan.CostBytes(l, m.extras); got != extra.Bytes() {
		t.Errorf("plan cost %d, want %d", got, extra.Bytes())
	}
	// A range escaping the extra goes to the base layout.
	plan, err = m.RouteRange(geom.Box{Lo: geom.Point{0.3, 0.3}, Hi: geom.Point{0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Ranges[0].Extra != -1 || len(plan.PartitionIDs()) == 0 {
		t.Error("escaping range must use the base layout")
	}
}

func TestRouteSQLNoWhere(t *testing.T) {
	m, _, l := setup(t)
	plan, err := m.RouteSQL("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(plan.PartitionIDs()); got != l.NumPartitions() {
		t.Errorf("full scan routes %d of %d partitions", got, l.NumPartitions())
	}
}

func TestRouteErrors(t *testing.T) {
	m, _, _ := setup(t)
	if _, err := m.RouteWhere("zz >= 1"); err == nil {
		t.Error("unknown column must error")
	}
	if _, err := m.RouteRange(geom.UnitBox(3)); err == nil {
		t.Error("dimension mismatch must error")
	}
	if _, err := NewMaster(nil, nil); err == nil {
		t.Error("empty schema must error")
	}
}

func TestRecorder(t *testing.T) {
	m, _, _ := setup(t)
	var recorded []geom.Box
	m.SetRecorder(func(q geom.Box) { recorded = append(recorded, q.Clone()) })
	if _, err := m.RouteWhere("x >= 0.2 AND x <= 0.4"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RouteWhere("x <= 0.1 OR x >= 0.9"); err != nil {
		t.Fatal(err)
	}
	if len(recorded) != 3 { // 1 range + 2 disjoint ranges
		t.Fatalf("recorded %d ranges, want 3", len(recorded))
	}
	m.SetRecorder(nil)
	if _, err := m.RouteWhere("x >= 0.5"); err != nil {
		t.Fatal(err)
	}
	if len(recorded) != 3 {
		t.Error("recording continued after SetRecorder(nil)")
	}
}

func TestMemoryFootprint(t *testing.T) {
	m, data, l := setup(t)
	base := m.MemoryFootprint()
	if base <= 0 {
		t.Fatal("footprint must be positive")
	}
	if base >= data.TotalBytes() {
		t.Errorf("metadata %d not small next to data %d", base, data.TotalBytes())
	}
	// Installing precise descriptors grows the footprint by 16·dmax·Nmbr
	// per partition.
	for _, p := range l.Parts {
		p.Precise = []geom.Box{p.Desc.MBR(), p.Desc.MBR(), p.Desc.MBR()}
	}
	withPrecise := m.MemoryFootprint()
	wantDelta := int64(l.NumPartitions()) * 3 * 2 * 16
	if withPrecise-base != wantDelta {
		t.Errorf("precise descriptors added %d bytes, want %d", withPrecise-base, wantDelta)
	}
}
