package dist

import (
	"context"
	"testing"

	"paw/internal/blockstore"
	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/layout"
	"paw/internal/obs"
	"paw/internal/placement"
	"paw/internal/router"
	"paw/internal/workload"
)

// TestMasterRetriesAfterWorkerRestart is the regression test for the bounded
// retry in Master.Query: a worker is killed mid-session — after the master
// has established connections — and a replacement is started on the same
// address. The master's stale connection fails on the next call; the single
// redial must recover the query transparently, and the telemetry must show
// the redial happened.
func TestMasterRetriesAfterWorkerRestart(t *testing.T) {
	data := dataset.TPCHLike(20000, 1)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(25, 2))
	l := core.Build(data, data.Sample(2000, 3), dom, hist, core.Params{MinRows: 5})
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 512})

	const nWorkers = 2
	place := placement.RoundRobin(l, nWorkers)
	perWorker := make([][]layout.ID, nWorkers)
	for id, w := range place {
		perWorker[w] = append(perWorker[w], id)
	}
	workers := make([]*Worker, nWorkers)
	addrs := make([]string, nWorkers)
	for w := range workers {
		workers[w] = NewWorker(store, perWorker[w])
		addr, err := workers[w].Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[w] = addr
	}
	rm, err := router.NewMaster(l, data.Names())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaster(rm, addrs, place)
	if err != nil {
		t.Fatal(err)
	}
	// The test re-issues one SQL statement to drive the stale-connection call
	// path; a result-cache hit would answer without touching the wire and
	// skip the redial under test.
	cfg := DefaultConfig()
	cfg.ResultCacheSize = 0
	m.Configure(cfg)
	reg := obs.New()
	m.SetMetrics(reg)
	defer m.Close()
	defer func() {
		for _, wk := range workers {
			wk.Close()
		}
	}()

	const sql = "SELECT * FROM t WHERE l_quantity >= 10 AND l_quantity <= 40"
	first, err := m.Query(sql) // establishes connections to both workers
	if err != nil {
		t.Fatal(err)
	}

	// Kill worker 0 mid-session. Close must terminate the parked session —
	// this would deadlock before workers tracked their connections — and the
	// master must NOT notice until its next call on the stale connection.
	if err := workers[0].Close(); err != nil {
		t.Fatalf("closing worker with a parked master connection: %v", err)
	}
	replacement := NewWorker(store, perWorker[0])
	if _, err := replacement.Start(addrs[0]); err != nil {
		t.Fatalf("restarting worker on %s: %v", addrs[0], err)
	}
	workers[0] = replacement

	second, err := m.Query(sql)
	if err != nil {
		t.Fatalf("query after worker restart must succeed via redial: %v", err)
	}
	if second.Rows != first.Rows {
		t.Errorf("rows after restart = %d, want %d", second.Rows, first.Rows)
	}

	snap := reg.Snapshot()
	if got := snap.Counter(MetricRedials); got < 1 {
		t.Errorf("redials = %d, want >= 1", got)
	}
	if got := snap.Counter(MetricCallFailures); got != 0 {
		t.Errorf("call failures = %d, want 0 (redial recovered)", got)
	}
	if got := snap.Counter(MetricQueries); got != 2 {
		t.Errorf("queries = %d, want 2", got)
	}

	// A permanently dead worker still fails: the redial cannot connect.
	workers[0].Close()
	if _, err := m.Query(sql); err == nil {
		t.Fatal("query over a dead worker must still error after one retry")
	}
	if got := reg.Snapshot().Counter(MetricCallFailures); got < 1 {
		t.Errorf("call failures after dead worker = %d, want >= 1", got)
	}
}

// TestWorkerMetricsCountScans: the worker-side counters reflect served scans
// and the active-connection gauge tracks session lifecycle.
func TestWorkerMetricsCountScans(t *testing.T) {
	data := dataset.Uniform(2000, 2, 9)
	rows := make([]int, 2000)
	for i := range rows {
		rows[i] = i
	}
	hist := workload.Uniform(data.Domain(), workload.Defaults(10, 11))
	l := core.Build(data, rows, data.Domain(), hist, core.Params{MinRows: 100})
	store := blockstore.Materialize(l, data, blockstore.Config{})

	ids := make([]layout.ID, 0, l.NumPartitions())
	for _, p := range l.Parts {
		ids = append(ids, p.ID)
	}
	wk := NewWorker(store, ids)
	reg := obs.New()
	wk.SetMetrics(reg)
	addr, err := wk.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer wk.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp ScanResponse
	if err := c.conn.call(context.Background(), ScanRequest{Query: data.Domain(), IDs: ids}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}

	snap := reg.Snapshot()
	if got := snap.Counter(MetricWorkerScans); got != 1 {
		t.Errorf("scans = %d, want 1", got)
	}
	if got := snap.Counter(MetricWorkerRows); got != int64(resp.Rows) {
		t.Errorf("rows = %d, want %d", got, resp.Rows)
	}
	if got := snap.Counter(MetricWorkerBytesRead); got != resp.BytesRead {
		t.Errorf("bytes read = %d, want %d", got, resp.BytesRead)
	}
	if got := snap.Gauge(MetricWorkerConns); got != 1 {
		t.Errorf("active connections = %d, want 1", got)
	}
}
