package dist

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"paw/internal/blockstore"
	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/membership"
	"paw/internal/obs"
	"paw/internal/placement"
	"paw/internal/router"
	"paw/internal/workload"
)

// Elastic membership tests: a cluster seeded with the consistent-hash ring
// placement (so a later join's movement is the ring's minimal delta, not a
// full reshuffle), a master with membership enabled, and helpers to join
// fresh empty workers and assert query exactness against the dataset oracle
// at every step.

type elasticCluster struct {
	data   *dataset.Dataset
	layout *layout.Layout
	store  *blockstore.Store
	rep    placement.Replicated

	workers  map[int]*Worker
	replicas int
	master   *Master
	reg      *obs.Registry
	addr     string // master client port
}

// startElasticCluster builds a ring-placed cluster of nWorkers with
// membership enabled on the master and its client port listening.
func startElasticCluster(t *testing.T, nWorkers, replicas, rows int, mcfg MembershipConfig, cfg Config) *elasticCluster {
	t.Helper()
	data := dataset.Uniform(rows, 2, 11)
	rowIdx := make([]int, data.NumRows())
	for i := range rowIdx {
		rowIdx[i] = i
	}
	hist := workload.Uniform(data.Domain(), workload.Defaults(10, 5))
	l := core.Build(data, rowIdx, data.Domain(), hist, core.Params{MinRows: rows / 16})
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 512})

	ids := make([]layout.ID, len(l.Parts))
	workerIdx := make([]int, nWorkers)
	for i, p := range l.Parts {
		ids[i] = p.ID
	}
	for w := range workerIdx {
		workerIdx[w] = w
	}
	rep := membership.RingPlacement(ids, workerIdx, replicas, membership.DefaultVNodes)

	tc := &elasticCluster{data: data, layout: l, store: store, rep: rep,
		workers: make(map[int]*Worker), replicas: replicas}
	hosted := perWorkerIDs(rep, nWorkers)
	addrs := make([]string, nWorkers)
	for w := 0; w < nWorkers; w++ {
		wk := NewWorker(store, hosted[w])
		a, err := wk.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[w] = a
		tc.workers[w] = wk
	}
	rm, err := router.NewMaster(l, data.Names())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMasterReplicated(rm, addrs, rep)
	if err != nil {
		t.Fatal(err)
	}
	m.Configure(cfg)
	tc.reg = obs.New()
	m.SetMetrics(tc.reg)
	if err := m.EnableMembership(mcfg); err != nil {
		t.Fatal(err)
	}
	maddr, err := m.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tc.addr = maddr
	tc.master = m
	t.Cleanup(func() {
		m.Close()
		for _, wk := range tc.workers {
			wk.Close()
		}
	})
	return tc
}

// joinFreshWorker starts an empty worker (no store, no assignment — exactly
// what a scale-out node looks like before its first rebalance) and registers
// it through the in-process membership handler. Returns the assigned slot.
func (tc *elasticCluster) joinFreshWorker(t *testing.T) (int, *Worker) {
	t.Helper()
	wk := NewWorker(nil, nil)
	a, err := wk.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp := tc.master.handleMember(&MemberRequest{
		Op: MemberJoin, Index: -1, Addr: a, Sum: membership.Checksum(nil),
	})
	if resp.Err != "" {
		wk.Close()
		t.Fatalf("fresh join: %s", resp.Err)
	}
	tc.workers[resp.Index] = wk
	return resp.Index, wk
}

// checkExact asserts three probe queries return exactly the dataset oracle's
// counts.
func (tc *elasticCluster) checkExact(t *testing.T) {
	t.Helper()
	for _, b := range tc.probes() {
		sql := migSQL(tc.data.Names(), b)
		resp, err := tc.master.Query(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if want := tc.data.CountInBox(b, nil); resp.Rows != want {
			t.Fatalf("%q: %d rows, want %d", sql, resp.Rows, want)
		}
	}
}

func (tc *elasticCluster) probes() []geom.Box {
	dom := tc.data.Domain()
	w0, h0 := dom.Hi[0]-dom.Lo[0], dom.Hi[1]-dom.Lo[1]
	return []geom.Box{
		dom,
		{Lo: geom.Point{dom.Lo[0], dom.Lo[1]}, Hi: geom.Point{dom.Lo[0] + 0.4*w0, dom.Lo[1] + 0.6*h0}},
		{Lo: geom.Point{dom.Lo[0] + 0.5*w0, dom.Lo[1] + 0.3*h0}, Hi: geom.Point{dom.Lo[0] + 0.9*w0, dom.Lo[1] + 0.8*h0}},
	}
}

func elasticMemberConfig() MembershipConfig {
	return MembershipConfig{
		Detector: membership.Config{SuspectAfter: 5 * time.Second, DeadAfter: 10 * time.Second},
	}
}

// TestMembershipJoinBeatLeaveTransports drives the full worker lifecycle —
// join handshake, heartbeats, graceful leave with drain — through the
// Heartbeater over both client transports.
func TestMembershipJoinBeatLeaveTransports(t *testing.T) {
	for _, tr := range []Transport{TransportBinary, TransportGob} {
		t.Run(tr.String(), func(t *testing.T) {
			tc := startElasticCluster(t, 3, 2, 4000, elasticMemberConfig(), fastMigConfig())
			tc.checkExact(t)
			before := tc.master.NumWorkers()

			wk := NewWorker(nil, nil)
			waddr, err := wk.Start("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer wk.Close()
			hb := NewHeartbeater(tc.addr, tr)
			defer hb.Close()
			ctx := context.Background()
			jresp, err := hb.Join(ctx, -1, waddr, membership.Checksum(nil))
			if err != nil {
				t.Fatalf("join over %v: %v", tr, err)
			}
			if jresp.Index != before {
				t.Fatalf("fresh join got slot %d, want %d", jresp.Index, before)
			}
			if got := tc.master.NumWorkers(); got != before+1 {
				t.Fatalf("fleet size = %d after join, want %d", got, before+1)
			}
			tc.workers[jresp.Index] = wk
			if _, err := hb.Beat(ctx); err != nil {
				t.Fatalf("beat over %v: %v", tr, err)
			}
			view, ok := tc.master.MembershipView()
			if !ok {
				t.Fatal("membership must be enabled")
			}
			if mem, ok := view.Member(jresp.Index); !ok || mem.State != membership.Alive {
				t.Fatalf("joined worker state = %v, want Alive", mem.State)
			}

			// Move data onto the joiner, then leave gracefully: the drain must
			// pull everything back off before the call returns.
			if _, err := tc.master.Rebalance(ctx, false); err != nil {
				t.Fatalf("rebalance after join: %v", err)
			}
			if got := len(membership.HostedIDs(tc.master.Placement(), jresp.Index)); got == 0 {
				t.Fatal("rebalance must place partitions on the joiner")
			}
			tc.checkExact(t)
			if _, err := hb.Leave(ctx); err != nil {
				t.Fatalf("leave over %v: %v", tr, err)
			}
			if got := len(membership.HostedIDs(tc.master.Placement(), jresp.Index)); got != 0 {
				t.Fatalf("left worker still hosts %d partitions", got)
			}
			wk.Close() // safe now: nothing routes to it
			tc.checkExact(t)

			snap := tc.reg.Snapshot()
			if got := snap.Counter(MetricMemberJoins); got < 1 {
				t.Errorf("member joins = %d, want >= 1", got)
			}
			if got := snap.Counter(MetricMemberLeaves); got < 1 {
				t.Errorf("member leaves = %d, want >= 1", got)
			}
		})
	}
}

// TestMembershipJoinChecksumMismatch: a worker whose hosted-partition digest
// disagrees with the master's placement must be rejected with an error that
// names both digests — not silently admitted to drop rows on every scan.
func TestMembershipJoinChecksumMismatch(t *testing.T) {
	tc := startElasticCluster(t, 3, 2, 3000, elasticMemberConfig(), fastMigConfig())
	f := tc.master.fleet.Load()
	resp := tc.master.handleMember(&MemberRequest{
		Op: MemberJoin, Index: 0, Addr: f.addrs[0], Sum: 0xdeadbeef,
	})
	if resp.Err == "" {
		t.Fatal("mismatched checksum must reject the join")
	}
	if !strings.Contains(resp.Err, "digest") || !strings.Contains(resp.Err, fmt.Sprintf("%016x", uint64(0xdeadbeef))) {
		t.Errorf("rejection must name the digests, got: %s", resp.Err)
	}
	if got := tc.reg.Snapshot().Counter(MetricMemberJoinRejects); got != 1 {
		t.Errorf("join rejects = %d, want 1", got)
	}
	// The correct digest for the same slot is accepted.
	sum := membership.Checksum(membership.HostedIDs(tc.master.Placement(), 0))
	if resp := tc.master.handleMember(&MemberRequest{Op: MemberJoin, Index: 0, Addr: f.addrs[0], Sum: sum}); resp.Err != "" {
		t.Fatalf("matching checksum rejected: %s", resp.Err)
	}
	tc.checkExact(t)
}

// TestMembershipSuspectDeadTick drives the failure detector with an explicit
// clock: a silent worker goes Suspect (still placeable, still queried) and
// then Dead (deprioritised on the scatter path), and a beat revives it.
func TestMembershipSuspectDeadTick(t *testing.T) {
	tc := startElasticCluster(t, 3, 2, 3000, elasticMemberConfig(), fastMigConfig())
	m := tc.master
	ms := m.member.Load()
	now := time.Now()

	// Keep workers 0 and 1 beating; worker 2 goes silent.
	beatAll := func(at time.Time, except int) {
		for w := 0; w < 3; w++ {
			if w == except {
				continue
			}
			if _, err := ms.tracker.Beat(w, at); err != nil {
				t.Fatal(err)
			}
		}
	}
	beatAll(now.Add(4*time.Second), 2)
	m.MembershipTick(now.Add(6 * time.Second))
	view, _ := m.MembershipView()
	if mem, _ := view.Member(2); mem.State != membership.Suspect {
		t.Fatalf("silent worker state = %v at 6s, want Suspect", mem.State)
	}
	if m.fleet.Load().down[2].Load() {
		t.Fatal("a Suspect worker must not be marked down (hysteresis)")
	}
	tc.checkExact(t) // suspect worker still serves

	beatAll(now.Add(9*time.Second), 2)
	m.MembershipTick(now.Add(11 * time.Second))
	view, _ = m.MembershipView()
	if mem, _ := view.Member(2); mem.State != membership.Dead {
		t.Fatalf("silent worker state = %v at 11s, want Dead", mem.State)
	}
	if !m.fleet.Load().down[2].Load() {
		t.Fatal("a Dead worker must be marked down")
	}
	// Replication degree 2: every partition still has a live replica, so
	// queries stay exact with the dead mark steering the scatter away.
	tc.checkExact(t)

	snap := tc.reg.Snapshot()
	if got := snap.Gauge(MetricMembersDead); got != 1 {
		t.Errorf("dead gauge = %d, want 1", got)
	}
	if got := snap.Gauge(MetricMembersAlive); got != 2 {
		t.Errorf("alive gauge = %d, want 2", got)
	}

	// A heartbeat through the real handler revives the worker and clears
	// the down mark.
	if resp := m.handleMember(&MemberRequest{Op: MemberBeat, Index: 2}); resp.Err != "" {
		t.Fatalf("revival beat: %s", resp.Err)
	}
	view, _ = m.MembershipView()
	if mem, _ := view.Member(2); mem.State != membership.Alive {
		t.Fatalf("revived worker state = %v, want Alive", mem.State)
	}
	if m.fleet.Load().down[2].Load() {
		t.Fatal("a revived worker must not stay down")
	}
	tc.checkExact(t)
}

// TestMembershipNotEnabled: member ops against a plain master fail with a
// clear error instead of panicking or hanging.
func TestMembershipNotEnabled(t *testing.T) {
	tc := startChaosCluster(t, 1, 1, nil, fastChaosConfig(1))
	resp := tc.master.handleMember(&MemberRequest{Op: MemberBeat, Index: 0})
	if !strings.Contains(resp.Err, "not enabled") {
		t.Fatalf("want a membership-not-enabled error, got %q", resp.Err)
	}
	if _, ok := tc.master.MembershipView(); ok {
		t.Fatal("MembershipView must report disabled")
	}
	if _, err := tc.master.Rebalance(context.Background(), false); err == nil {
		t.Fatal("Rebalance without membership must error")
	}
}

// TestMembershipLoopsNoGoroutineLeak: the master's tick loop and the
// worker's heartbeat loop must both shut down cleanly — membership adds no
// background goroutines that outlive Close.
func TestMembershipLoopsNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	mcfg := elasticMemberConfig()
	mcfg.TickEvery = 2 * time.Millisecond
	data := dataset.Uniform(1000, 2, 11)
	rowIdx := make([]int, data.NumRows())
	for i := range rowIdx {
		rowIdx[i] = i
	}
	hist := workload.Uniform(data.Domain(), workload.Defaults(4, 3))
	l := core.Build(data, rowIdx, data.Domain(), hist, core.Params{MinRows: 200})
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 512})
	ids := make([]layout.ID, len(l.Parts))
	for i, p := range l.Parts {
		ids[i] = p.ID
	}
	rep := membership.RingPlacement(ids, []int{0}, 1, membership.DefaultVNodes)
	wk := NewWorker(store, membership.HostedIDs(rep, 0))
	waddr, err := wk.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rm, err := router.NewMaster(l, data.Names())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMasterReplicated(rm, []string{waddr}, rep)
	if err != nil {
		t.Fatal(err)
	}
	m.Configure(fastMigConfig())
	if err := m.EnableMembership(mcfg); err != nil {
		t.Fatal(err)
	}
	maddr, err := m.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hb := NewHeartbeater(maddr, TransportBinary)
	if _, err := hb.Join(context.Background(), 0, waddr,
		membership.Checksum(membership.HostedIDs(rep, 0))); err != nil {
		t.Fatal(err)
	}
	hb.Start(2 * time.Millisecond)
	time.Sleep(30 * time.Millisecond) // let both loops run a few periods

	hb.Close()
	m.Close()
	wk.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMembershipGobQueriesUnaffected: on the gob transport the member
// envelope rides inside the query exchange — plain queries (Member == nil)
// must be untouched by membership being enabled on the same session.
func TestMembershipGobQueriesUnaffected(t *testing.T) {
	tc := startElasticCluster(t, 2, 1, 2000, elasticMemberConfig(), fastMigConfig())
	c, err := Dial(tc.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dom := tc.data.Domain()
	resp, err := c.Query(migSQL(tc.data.Names(), dom))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rows != tc.data.NumRows() {
		t.Fatalf("rows = %d, want %d", resp.Rows, tc.data.NumRows())
	}
	if resp.Member != nil {
		t.Fatal("a plain query response must not carry a member payload")
	}
	// And a member exchange on the same session works too.
	hb := NewHeartbeater(tc.addr, TransportGob)
	defer hb.Close()
	if _, err := hb.Join(context.Background(), -1, "127.0.0.1:1", membership.Checksum(nil)); err != nil {
		t.Fatalf("gob join: %v", err)
	}
}
