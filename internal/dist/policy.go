package dist

import (
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy governs how the master treats worker-call failures: bounded
// per-call attempts with exponential backoff and deterministic (seeded)
// jitter, a per-query retry budget shared by all of a query's scatter RPCs,
// and a per-worker consecutive-failure breaker that short-circuits dials to
// a worker that keeps failing until a cooldown probe succeeds.
type RetryPolicy struct {
	// MaxAttempts bounds the attempts of one scan RPC, including the first
	// (minimum 1; the default 2 preserves the historical dial-once/redial-once
	// behavior).
	MaxAttempts int
	// QueryRetryBudget caps the total retries (attempts beyond the first) a
	// single query may spend across all its scatter RPCs. <= 0 means
	// unlimited within MaxAttempts.
	QueryRetryBudget int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it (Multiplier) up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// Multiplier is the backoff growth factor (default 2).
	Multiplier float64
	// Seed feeds the jitter source, making backoff sequences reproducible;
	// the same seed and failure order yield the same delays.
	Seed int64
	// BreakerThreshold is the number of consecutive failures that trips a
	// worker's breaker (0 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker short-circuits calls
	// before allowing a single probe through.
	BreakerCooldown time.Duration
}

// DefaultRetryPolicy returns the production defaults: 2 attempts per call,
// a 16-retry query budget, 5ms..500ms exponential backoff, and a 3-failure
// breaker with a 500ms probe cooldown.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:      2,
		QueryRetryBudget: 16,
		BaseBackoff:      5 * time.Millisecond,
		MaxBackoff:       500 * time.Millisecond,
		Multiplier:       2,
		Seed:             1,
		BreakerThreshold: 3,
		BreakerCooldown:  500 * time.Millisecond,
	}
}

// normalized fills zero fields with their defaults so a partially-specified
// policy behaves sanely.
func (p RetryPolicy) normalized() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.MaxAttempts < 1 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = def.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = def.MaxBackoff
	}
	if p.Multiplier < 1 {
		p.Multiplier = def.Multiplier
	}
	if p.Seed == 0 {
		p.Seed = def.Seed
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = def.BreakerCooldown
	}
	return p
}

// jitter is the master's seeded backoff-jitter source; a mutex serialises
// the rand.Rand (scatter goroutines back off concurrently).
type jitter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newJitter(seed int64) *jitter {
	return &jitter{rng: rand.New(rand.NewSource(seed))}
}

// backoff returns the delay before retry number retry (0-based): the policy's
// exponential curve scaled into [50%, 100%] by the seeded jitter source.
func (j *jitter) backoff(p RetryPolicy, retry int) time.Duration {
	d := float64(p.BaseBackoff)
	for i := 0; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxBackoff) {
			d = float64(p.MaxBackoff)
			break
		}
	}
	j.mu.Lock()
	f := 0.5 + 0.5*j.rng.Float64()
	j.mu.Unlock()
	return time.Duration(d * f)
}

// breaker states. closed admits calls; open short-circuits them; half-open
// admits exactly one probe whose outcome decides the next state.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-worker consecutive-failure circuit breaker.
type breaker struct {
	mu          sync.Mutex
	state       int
	consecutive int
	openedAt    time.Time
}

// allow reports whether a call to the worker may proceed. An open breaker
// past its cooldown transitions to half-open and admits the caller as the
// probe; probe reports whether this call is that probe.
func (b *breaker) allow(p RetryPolicy, now time.Time) (ok, probe bool) {
	if p.BreakerThreshold <= 0 {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Sub(b.openedAt) >= p.BreakerCooldown {
			b.state = breakerHalfOpen
			return true, true
		}
		return false, false
	default: // half-open: a probe is already in flight
		return false, false
	}
}

// healthy is a side-effect-free peek used for replica selection: a worker is
// healthy when its breaker would admit a call right now.
func (b *breaker) healthy(p RetryPolicy, now time.Time) bool {
	if p.BreakerThreshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerClosed ||
		(b.state == breakerOpen && now.Sub(b.openedAt) >= p.BreakerCooldown)
}

// success records a successful call: the breaker closes and the failure run
// resets.
func (b *breaker) success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.consecutive = 0
	b.mu.Unlock()
}

// failure records a failed call and reports whether this failure tripped the
// breaker (closed past the threshold, or a failed half-open probe).
func (b *breaker) failure(p RetryPolicy, now time.Time) (tripped bool) {
	if p.BreakerThreshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.state == breakerHalfOpen ||
		(b.state == breakerClosed && b.consecutive >= p.BreakerThreshold) {
		b.state = breakerOpen
		b.openedAt = now
		return true
	}
	if b.state == breakerOpen {
		// Concurrent failures while open keep it open; refresh the window.
		b.openedAt = now
	}
	return false
}
