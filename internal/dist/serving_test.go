package dist

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"paw/internal/blockstore"
	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/layout"
	"paw/internal/obs"
	"paw/internal/placement"
	"paw/internal/router"
	"paw/internal/serve"
	"paw/internal/workload"
)

// servingFixture is a worker fleet shared by one or more masters, so the
// differential tests can point a binary-transport master and a gob-transport
// master at the exact same data.
type servingFixture struct {
	data    *dataset.Dataset
	layout  *layout.Layout
	store   *blockstore.Store
	place   map[layout.ID]int
	addrs   []string
	workers []*Worker
}

func startServingWorkers(t *testing.T, nWorkers int) *servingFixture {
	t.Helper()
	data := dataset.TPCHLike(12000, 1)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(25, 2))
	l := core.Build(data, data.Sample(1500, 3), dom, hist, core.Params{MinRows: 5})
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 512})
	place := placement.RoundRobin(l, nWorkers)
	perWorker := make([][]layout.ID, nWorkers)
	for id, w := range place {
		perWorker[w] = append(perWorker[w], id)
	}
	f := &servingFixture{data: data, layout: l, store: store, place: place}
	for w := 0; w < nWorkers; w++ {
		wk := NewWorker(store, perWorker[w])
		addr, err := wk.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		f.workers = append(f.workers, wk)
		f.addrs = append(f.addrs, addr)
	}
	t.Cleanup(func() {
		for _, wk := range f.workers {
			wk.Close()
		}
	})
	return f
}

// startServingMaster wires a master over the fixture's workers with the
// given transport and serving config, starts its client listener, and
// registers cleanup.
func (f *servingFixture) startServingMaster(t *testing.T, cfg Config) (*Master, string) {
	t.Helper()
	rm, err := router.NewMaster(f.layout, f.data.Names())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaster(rm, f.addrs, f.place)
	if err != nil {
		t.Fatal(err)
	}
	m.Configure(cfg)
	addr, err := m.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m, addr
}

// servingTestConfig is fastChaosConfig plus explicit serving knobs; caches
// stay off so every query exercises the full scatter path.
func servingTestConfig(transport Transport) Config {
	cfg := fastChaosConfig(1)
	cfg.Transport = transport
	return cfg
}

func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

var servingStatements = []string{
	"SELECT * FROM t WHERE l_quantity >= 10 AND l_quantity <= 20",
	"SELECT * FROM t WHERE l_shipdate BETWEEN 100 AND 800",
	"SELECT * FROM t WHERE l_quantity <= 5 OR l_quantity >= 45",
	"SELECT * FROM t",
}

// TestDifferentialBinaryVsGob is the acceptance oracle for the binary
// protocol: a binary-transport master serving a MuxClient and a gob-
// transport master serving a legacy Client — over the very same workers and
// data — must return byte-identical query results for clean queries, SQL
// failures, and partial results with a dead worker.
func TestDifferentialBinaryVsGob(t *testing.T) {
	f := startServingWorkers(t, 3)
	_, binAddr := f.startServingMaster(t, servingTestConfig(TransportBinary))
	_, gobAddr := f.startServingMaster(t, servingTestConfig(TransportGob))

	binCl, err := DialMux(binAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer binCl.Close()
	gobCl, err := Dial(gobAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer gobCl.Close()

	for _, sql := range servingStatements {
		bresp, berr := binCl.Query(sql)
		gresp, gerr := gobCl.Query(sql)
		if berr != nil || gerr != nil {
			t.Fatalf("%q: binary err=%v, gob err=%v", sql, berr, gerr)
		}
		if !bytes.Equal(gobBytes(t, bresp), gobBytes(t, gresp)) {
			t.Errorf("%q: responses differ:\n  binary: %+v\n  gob:    %+v", sql, bresp, gresp)
		}
		if bresp.Rows == 0 && sql == "SELECT * FROM t" {
			t.Errorf("%q: zero rows", sql)
		}
	}

	// Failure case: an invalid statement must produce the identical error
	// text through both protocol stacks.
	const badSQL = "SELECT * FROM t WHERE nosuchcol >= 1"
	_, berr := binCl.Query(badSQL)
	_, gerr := gobCl.Query(badSQL)
	if berr == nil || gerr == nil {
		t.Fatalf("bad SQL: binary err=%v, gob err=%v", berr, gerr)
	}
	if berr.Error() != gerr.Error() {
		t.Errorf("error text differs:\n  binary: %v\n  gob:    %v", berr, gerr)
	}

	// Partial-results case: kill one worker (no replicas); both stacks must
	// report the identical surviving aggregate and failed-partition list.
	f.workers[1].Close()
	binCl.SetAllowPartial(true)
	gobCl.SetAllowPartial(true)
	const sql = "SELECT * FROM t"
	bresp, berr := binCl.Query(sql)
	gresp, gerr := gobCl.Query(sql)
	if berr != nil || gerr != nil {
		t.Fatalf("partial: binary err=%v, gob err=%v", berr, gerr)
	}
	if !bresp.Partial || len(bresp.FailedPartitions) == 0 {
		t.Fatalf("partial: binary response not partial: %+v", bresp)
	}
	if !bytes.Equal(gobBytes(t, bresp), gobBytes(t, gresp)) {
		t.Errorf("partial responses differ:\n  binary: %+v\n  gob:    %+v", bresp, gresp)
	}
}

// TestGobCleanExpiryKeepsConnection is the regression test for the legacy
// transport's connection churn: a call whose deadline expires while queued
// behind another exchange on the connection mutex never touched the stream,
// so the master must keep the connection — no redial — and the next query
// must reuse it.
func TestGobCleanExpiryKeepsConnection(t *testing.T) {
	f := startServingWorkers(t, 1)
	cfg := servingTestConfig(TransportGob)
	cfg.QueryTimeout = 0
	m, _ := f.startServingMaster(t, cfg)
	reg := obs.New()
	m.SetMetrics(reg)

	if _, err := m.Query(servingStatements[0]); err != nil {
		t.Fatal(err) // establishes the worker connection
	}
	m.mu.Lock()
	link := m.links[0].(*gobLink)
	m.mu.Unlock()

	// Simulate an exchange in flight: hold the connection mutex so the next
	// call queues on it past its deadline.
	link.c.mu.Lock()
	errc := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		_, err := m.QueryContext(ctx, servingStatements[1])
		errc <- err
	}()
	time.Sleep(150 * time.Millisecond) // deadline passes while queued
	link.c.mu.Unlock()
	if err := <-errc; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued query: err=%v, want deadline exceeded", err)
	}

	snap := reg.Snapshot()
	if got := snap.Counter(MetricRedials); got != 0 {
		t.Errorf("redials = %d, want 0 (clean expiry must keep the connection)", got)
	}
	if got := snap.Counter(MetricCleanExpiries); got < 1 {
		t.Errorf("clean expiries = %d, want >= 1", got)
	}

	// The kept connection serves the next query.
	if _, err := m.Query(servingStatements[2]); err != nil {
		t.Fatalf("query after clean expiry: %v", err)
	}
	m.mu.Lock()
	same := m.links[0] == workerLink(link)
	m.mu.Unlock()
	if !same {
		t.Error("connection was replaced despite the clean expiry")
	}
	if got := reg.Snapshot().Counter(MetricRedials); got != 0 {
		t.Errorf("redials after reuse = %d, want 0", got)
	}
}

// TestMuxClientConcurrentCorrectness: N goroutine clients multiplexing mixed
// queries over binary connections must each get responses byte-identical to
// serial execution, and tearing everything down must return the process to
// its goroutine baseline.
func TestMuxClientConcurrentCorrectness(t *testing.T) {
	base := runtime.NumGoroutine()
	f := startServingWorkers(t, 3)
	m, addr := f.startServingMaster(t, servingTestConfig(TransportBinary))

	// Serial ground truth, computed on the master directly.
	want := make(map[string][]byte, len(servingStatements))
	for _, sql := range servingStatements {
		resp, err := m.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		want[sql] = gobBytes(t, resp)
	}

	const clients, rounds = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	closers := make([]*MuxClient, clients)
	for i := range closers {
		cl, err := DialMux(addr)
		if err != nil {
			t.Fatal(err)
		}
		closers[i] = cl
	}
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := closers[g]
			for i := 0; i < rounds; i++ {
				sql := servingStatements[(g+i)%len(servingStatements)]
				resp, err := cl.Query(sql)
				if err != nil {
					errs <- fmt.Errorf("client %d: %w", g, err)
					return
				}
				if !bytes.Equal(gobBytes(t, resp), want[sql]) {
					errs <- fmt.Errorf("client %d: %q diverged from serial execution: %+v", g, sql, resp)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Leak check: clients, master and workers down -> goroutine baseline.
	for _, cl := range closers {
		cl.Close()
	}
	m.Close()
	for _, wk := range f.workers {
		wk.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestResultCacheHitMissInvalidate: repeated SQL hits the result cache, an
// invalidation empties it, and the cached response is identical to the
// recomputed one.
func TestResultCacheHitMissInvalidate(t *testing.T) {
	f := startServingWorkers(t, 2)
	cfg := servingTestConfig(TransportBinary)
	cfg.PlanCacheSize = 64
	cfg.ResultCacheSize = 64
	m, _ := f.startServingMaster(t, cfg)
	reg := obs.New()
	m.SetMetrics(reg)

	sql := servingStatements[0]
	first, err := m.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	second, err := m.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached response differs: %+v vs %+v", first, second)
	}
	snap := reg.Snapshot()
	if got := snap.Counter(MetricResultCacheHits); got != 1 {
		t.Errorf("result hits = %d, want 1", got)
	}
	if got := snap.Counter(MetricResultCacheMisses); got != 1 {
		t.Errorf("result misses = %d, want 1", got)
	}

	m.InvalidateCaches()
	third, err := m.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, third) {
		t.Fatalf("response after invalidation differs: %+v vs %+v", first, third)
	}
	snap = reg.Snapshot()
	if got := snap.Counter(MetricResultCacheHits); got != 1 {
		t.Errorf("result hits after invalidation = %d, want 1 (must recompute)", got)
	}
	if got := snap.Counter(MetricCacheInvalidations); got != 1 {
		t.Errorf("invalidations = %d, want 1", got)
	}
}

// TestPlanCacheServesRepeatedSQL: with the result cache off, repeated SQL
// still routes once — the descriptor cache serves the plan.
func TestPlanCacheServesRepeatedSQL(t *testing.T) {
	f := startServingWorkers(t, 2)
	cfg := servingTestConfig(TransportBinary)
	cfg.PlanCacheSize = 64
	cfg.ResultCacheSize = 0
	m, _ := f.startServingMaster(t, cfg)
	reg := obs.New()
	m.SetMetrics(reg)

	sql := servingStatements[1]
	for i := 0; i < 3; i++ {
		if _, err := m.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counter(MetricPlanCacheMisses); got != 1 {
		t.Errorf("plan misses = %d, want 1", got)
	}
	if got := snap.Counter(MetricPlanCacheHits); got != 2 {
		t.Errorf("plan hits = %d, want 2", got)
	}
}

// TestPartialResultsNotCached: a partial response (dead worker, AllowPartial)
// must never be served from the result cache — each query re-scatters so a
// recovered worker is observed immediately.
func TestPartialResultsNotCached(t *testing.T) {
	f := startServingWorkers(t, 2)
	cfg := servingTestConfig(TransportBinary)
	cfg.ResultCacheSize = 64
	cfg.AllowPartial = true
	m, _ := f.startServingMaster(t, cfg)
	reg := obs.New()
	m.SetMetrics(reg)

	f.workers[0].Close()
	sql := "SELECT * FROM t"
	for i := 0; i < 2; i++ {
		resp, err := m.Query(sql)
		if err != nil {
			t.Fatalf("partial query %d: %v", i, err)
		}
		if !resp.Partial {
			t.Fatalf("query %d not partial: %+v", i, resp)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counter(MetricResultCacheHits); got != 0 {
		t.Errorf("result hits = %d, want 0 (partials are uncacheable)", got)
	}
	if got := snap.Counter(MetricResultCacheMisses); got != 2 {
		t.Errorf("result misses = %d, want 2", got)
	}
}

// TestWorkerScanSharing: concurrent identical scans on one worker coalesce
// into a single kernel pass whose stats fan out to every waiter.
func TestWorkerScanSharing(t *testing.T) {
	data := dataset.Uniform(6000, 2, 3)
	rows := make([]int, data.NumRows())
	for i := range rows {
		rows[i] = i
	}
	hist := workload.Uniform(data.Domain(), workload.Defaults(10, 5))
	l := core.Build(data, rows, data.Domain(), hist, core.Params{MinRows: 300})
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 512})
	ids := make([]layout.ID, 0, len(l.Parts))
	for _, p := range l.Parts {
		ids = append(ids, p.ID)
	}

	wk := NewWorker(store, ids)
	var kernelScans atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	wk.scanHook = func(layout.ID) {
		if kernelScans.Add(1) == 1 {
			close(started)
			<-release
		}
	}
	reg := obs.New()
	wk.SetMetrics(reg)
	addr, err := wk.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer wk.Close()

	link, err := dialMuxLink(context.Background(), addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer link.close()

	req := ScanRequest{Query: data.Domain(), IDs: ids[:1]}
	const concurrent = 8
	var wg sync.WaitGroup
	resps := make([]ScanResponse, concurrent)
	errs := make([]error, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := req
			errs[i] = link.scan(context.Background(), &r, &resps[i])
		}(i)
	}
	<-started
	// Give the remaining requests time to attach to the in-flight scan.
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("scan %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(resps[i], resps[0]) {
			t.Fatalf("scan %d diverged: %+v vs %+v", i, resps[i], resps[0])
		}
	}
	if resps[0].Rows == 0 {
		t.Fatal("shared scan returned no rows")
	}
	if got := kernelScans.Load(); got != 1 {
		t.Fatalf("kernel scans = %d, want 1 (the rest must share)", got)
	}
	if got := reg.Snapshot().Counter(MetricWorkerSharedScans); got != concurrent-1 {
		t.Errorf("shared-scan counter = %d, want %d", got, concurrent-1)
	}
}

// TestAdmissionShedsOverWire: with the tier saturated and no queue space,
// a networked client's query is shed with the typed overload error, which
// survives the wire round trip as serve.ErrOverloaded.
func TestAdmissionShedsOverWire(t *testing.T) {
	data := dataset.Uniform(6000, 2, 3)
	rows := make([]int, data.NumRows())
	for i := range rows {
		rows[i] = i
	}
	hist := workload.Uniform(data.Domain(), workload.Defaults(10, 5))
	l := core.Build(data, rows, data.Domain(), hist, core.Params{MinRows: 300})
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 512})
	ids := make([]layout.ID, 0, len(l.Parts))
	for _, p := range l.Parts {
		ids = append(ids, p.ID)
	}
	wk := NewWorker(store, ids)
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	wk.scanHook = func(layout.ID) {
		once.Do(func() { close(started) })
		<-release
	}
	waddr, err := wk.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer wk.Close()

	place := make(map[layout.ID]int, len(ids))
	for _, id := range ids {
		place[id] = 0
	}
	rm, err := router.NewMaster(l, data.Names())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaster(rm, []string{waddr}, place)
	if err != nil {
		t.Fatal(err)
	}
	cfg := servingTestConfig(TransportBinary)
	cfg.MaxInflightQueries = 1
	m.Configure(cfg)
	m.admission = serve.NewAdmission(1, 0) // no queue: saturate -> shed
	reg := obs.New()
	m.SetMetrics(reg)
	maddr, err := m.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	hogDone := make(chan error, 1)
	go func() {
		_, err := m.Query("SELECT * FROM t")
		hogDone <- err
	}()
	<-started // the hog holds the only slot, blocked in its scan

	cl, err := DialMux(maddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Query("SELECT * FROM t WHERE a0 >= 0")
	if !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("saturated query: err=%v, want serve.ErrOverloaded", err)
	}
	if got := reg.Snapshot().Counter(MetricQueriesShed); got < 1 {
		t.Errorf("sheds = %d, want >= 1", got)
	}

	close(release)
	if err := <-hogDone; err != nil {
		t.Fatalf("hog query: %v", err)
	}
	// With the slot free the client is admitted again.
	if _, err := cl.Query("SELECT * FROM t"); err != nil {
		t.Fatalf("query after release: %v", err)
	}
}
