package dist

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"paw/internal/layout"
	"paw/internal/router"
)

// Master is the networked master node: it owns the routing metadata (via
// router.Master), knows which worker hosts which partition, and scatters
// scan work over persistent worker connections.
type Master struct {
	router    *router.Master
	placement map[layout.ID]int // partition -> worker index

	mu       sync.Mutex
	workers  []*conn
	addrs    []string
	listener net.Listener
	wg       sync.WaitGroup
	// m is the optional distributed-path telemetry (SetMetrics); the zero
	// value is fully disabled.
	m masterMetrics
}

// NewMaster wires the router with worker addresses and a placement map.
// Every partition of the layout must be placed on a valid worker.
func NewMaster(r *router.Master, workerAddrs []string, placement map[layout.ID]int) (*Master, error) {
	for id, w := range placement {
		if w < 0 || w >= len(workerAddrs) {
			return nil, fmt.Errorf("dist: partition %d placed on invalid worker %d", id, w)
		}
	}
	for _, p := range r.Layout().Parts {
		if _, ok := placement[p.ID]; !ok {
			return nil, fmt.Errorf("dist: partition %d has no placement", p.ID)
		}
	}
	m := &Master{
		router:    r,
		placement: placement,
		workers:   make([]*conn, len(workerAddrs)),
		addrs:     append([]string(nil), workerAddrs...),
	}
	return m, nil
}

// workerConn returns (dialing lazily) the persistent connection to worker i.
func (m *Master) workerConn(i int) (*conn, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.workers[i] != nil {
		return m.workers[i], nil
	}
	c, err := net.Dial("tcp", m.addrs[i])
	if err != nil {
		return nil, fmt.Errorf("dist: dialing worker %d (%s): %w", i, m.addrs[i], err)
	}
	m.workers[i] = newConn(c)
	return m.workers[i], nil
}

// dropWorkerConn discards a broken connection so the next call redials.
func (m *Master) dropWorkerConn(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.workers[i] != nil {
		m.workers[i].Close()
		m.workers[i] = nil
	}
}

// callWorker performs one scan RPC against worker w with a bounded retry: a
// call that fails on an established connection drops it, redials once and
// resends. Scans are read-only and idempotent, so the resend is safe; the
// single retry covers the common mid-query failure — a worker restarted (or
// replaced at the same address) while the master held a stale connection —
// without masking a genuinely dead worker, whose redial fails immediately.
// A dial failure on a fresh connection is not retried.
func (m *Master) callWorker(w int, req ScanRequest, resp *ScanResponse) error {
	c, err := m.workerConn(w)
	if err != nil {
		m.m.failures.Inc()
		return err
	}
	sp := m.m.workerTimer(w).Start()
	err = c.call(req, resp)
	sp.End()
	if err == nil {
		return nil
	}
	m.dropWorkerConn(w)
	m.m.redials.Inc()
	c, derr := m.workerConn(w)
	if derr != nil {
		m.m.failures.Inc()
		return derr
	}
	*resp = ScanResponse{} // the failed call may have partially decoded
	sp = m.m.workerTimer(w).Start()
	err = c.call(req, resp)
	sp.End()
	if err != nil {
		m.m.failures.Inc()
		m.dropWorkerConn(w)
	}
	return err
}

// Query executes one SQL statement: rewrite → route → scatter per worker →
// gather.
func (m *Master) Query(sql string) (QueryResponse, error) {
	var start time.Time
	if m.m.queries != nil {
		start = time.Now()
		m.m.inflight.Add(1)
		defer m.m.inflight.Add(-1)
		defer func() { m.m.latency.Observe(float64(time.Since(start))) }()
		m.m.queries.Inc()
	}
	plan, err := m.router.RouteSQL(sql)
	if err != nil {
		return QueryResponse{}, err
	}
	var total QueryResponse
	total.SubQueries = len(plan.Ranges)
	for _, rp := range plan.Ranges {
		// Group this range's partitions by worker.
		byWorker := make(map[int][]layout.ID)
		for _, id := range rp.Parts {
			w := m.placement[id]
			byWorker[w] = append(byWorker[w], id)
		}
		m.m.fanout.Observe(float64(len(byWorker)))
		type result struct {
			resp ScanResponse
			err  error
		}
		results := make(chan result, len(byWorker))
		for w, ids := range byWorker {
			go func(w int, ids []layout.ID) {
				var r result
				r.err = m.callWorker(w, ScanRequest{Query: rp.Range, IDs: ids}, &r.resp)
				results <- r
			}(w, ids)
		}
		for range byWorker {
			r := <-results
			if r.err != nil {
				return QueryResponse{}, r.err
			}
			if r.resp.Err != "" {
				return QueryResponse{}, errors.New(r.resp.Err)
			}
			total.Rows += r.resp.Rows
			total.BytesScanned += r.resp.BytesRead
		}
		total.PartitionsScanned += len(rp.Parts)
	}
	return total, nil
}

// Start serves the client protocol on addr and returns the bound address.
func (m *Master) Start(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	m.mu.Lock()
	m.listener = l
	m.mu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				m.serveClient(c)
			}()
		}
	}()
	return l.Addr().String(), nil
}

func (m *Master) serveClient(c net.Conn) {
	defer c.Close()
	dec := gob.NewDecoder(c)
	enc := gob.NewEncoder(c)
	for {
		var req QueryRequest
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) {
				return
			}
			return
		}
		resp, err := m.Query(req.SQL)
		if err != nil {
			resp = QueryResponse{Err: err.Error()}
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Close shuts down the client listener and worker connections.
func (m *Master) Close() error {
	m.mu.Lock()
	l := m.listener
	for i, w := range m.workers {
		if w != nil {
			w.Close()
			m.workers[i] = nil
		}
	}
	m.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	m.wg.Wait()
	return err
}

// Client speaks SQL to a master over TCP.
type Client struct {
	conn *conn
}

// Dial connects to a master.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: newConn(c)}, nil
}

// Query runs one SQL statement.
func (c *Client) Query(sql string) (QueryResponse, error) {
	var resp QueryResponse
	if err := c.conn.call(QueryRequest{SQL: sql}, &resp); err != nil {
		return QueryResponse{}, err
	}
	if resp.Err != "" {
		return QueryResponse{}, errors.New(resp.Err)
	}
	return resp, nil
}

// Close closes the client connection.
func (c *Client) Close() error { return c.conn.Close() }
