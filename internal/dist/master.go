package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/obs"
	"paw/internal/placement"
	"paw/internal/router"
	"paw/internal/serve"
	"paw/internal/trace"
)

// Config tunes the master's failure handling and serving front-end. The
// zero value means "use the defaults" (DefaultConfig); Configure must be
// called before Start.
type Config struct {
	// Retry is the worker-call retry/backoff/breaker policy.
	Retry RetryPolicy
	// CallTimeout bounds one scan RPC, including the dial (0: no per-call
	// bound beyond the query deadline).
	CallTimeout time.Duration
	// QueryTimeout bounds a whole query when the caller's context carries no
	// deadline of its own (0: unbounded).
	QueryTimeout time.Duration
	// AllowPartial makes partial results the default for queries issued
	// directly on the master; networked clients opt in per request
	// (QueryRequest.AllowPartial).
	AllowPartial bool
	// SlowQuery emits a structured slog record for any query whose
	// end-to-end latency reaches the threshold (trace ID when sampled, stage
	// breakdown, partitions touched). 0 disables the slow-query log.
	SlowQuery time.Duration

	// Transport selects the worker wire protocol: TransportBinary (the
	// multiplexed frame protocol, default) or TransportGob (the legacy
	// codec-per-connection path, kept as the differential oracle).
	Transport Transport
	// ConnsPerWorker is the fixed pool size of multiplexed connections per
	// worker under TransportBinary (default 2). All in-flight scans pipeline
	// over this pool; it spreads write contention, not concurrency.
	ConnsPerWorker int
	// ClientPipeline bounds the requests one binary client session may have
	// executing concurrently on the master (default 32).
	ClientPipeline int

	// PlanCacheSize bounds the descriptor cache (SQL → routing plan); 0
	// disables it. Plans are immutable once routed, so hits skip the SQL
	// rewrite and partition routing entirely.
	PlanCacheSize int
	// ResultCacheSize bounds the result cache (SQL → clean, complete
	// QueryResponse); 0 disables it. Partial and failed responses are never
	// cached. Both caches are emptied by InvalidateCaches on layout or
	// placement change.
	ResultCacheSize int

	// MaxInflightQueries bounds the queries executing concurrently; the
	// excess fair-queues per client and overflow is shed with a typed
	// overload error (serve.ErrOverloaded on clients). 0 disables admission
	// control.
	MaxInflightQueries int
	// MaxQueuedPerClient bounds each client's admission queue (default 32;
	// only meaningful with MaxInflightQueries > 0).
	MaxQueuedPerClient int

	// DrainTimeout bounds the post-cutover wait for in-flight old-epoch
	// queries before the old epoch is retired on the workers (default 30s).
	// Queries still running after it fail with an unknown-epoch error and
	// retry-route against the new layout; the bound only exists so a wedged
	// query cannot pin an epoch forever. Expiries with queries still in
	// flight are counted (MetricDrainTimeouts).
	DrainTimeout time.Duration
}

// DefaultConfig returns the production defaults: the default retry policy,
// a 5s per-call timeout, a 30s query timeout, the multiplexed binary
// transport over 2 conns/worker, a 1024-plan descriptor cache, a 256-entry
// result cache, and admission control at 256 in-flight queries.
func DefaultConfig() Config {
	return Config{
		Retry:              DefaultRetryPolicy(),
		CallTimeout:        5 * time.Second,
		QueryTimeout:       30 * time.Second,
		Transport:          TransportBinary,
		ConnsPerWorker:     2,
		ClientPipeline:     32,
		PlanCacheSize:      1024,
		ResultCacheSize:    256,
		MaxInflightQueries: 256,
		MaxQueuedPerClient: 32,
		DrainTimeout:       30 * time.Second,
	}
}

// normalized fills the zero serving fields with their defaults.
func (c Config) normalized() Config {
	c.Retry = c.Retry.normalized()
	if c.ConnsPerWorker < 1 {
		c.ConnsPerWorker = 2
	}
	if c.ClientPipeline < 1 {
		c.ClientPipeline = 32
	}
	if c.MaxInflightQueries > 0 && c.MaxQueuedPerClient < 1 {
		c.MaxQueuedPerClient = 32
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// Master is the networked master node: it owns the routing metadata (via
// router.Master), knows which workers host each partition (primary plus
// failover replicas), and scatters scan work over persistent multiplexed
// worker connections with deadlines, bounded retries and breaker-guarded
// failover. Above the scatter path sits the serving front-end (DESIGN.md
// §12): a descriptor cache, a result cache and fair admission control.
type Master struct {
	// view is the current routing state (router + placement + layout
	// epoch), swapped atomically at migration cutover so the query path
	// reads one consistent snapshot without locks. mig, when non-nil, is an
	// in-progress migration: the query path double-routes between view and
	// mig's next view (see planFor).
	view atomic.Pointer[routeView]
	mig  atomic.Pointer[activeMigration]
	// observer, when set, sees every served query (SetQueryObserver) — the
	// drift monitor's feed.
	observer atomic.Pointer[func(QueryObservation)]
	// tracer/costLog are the optional observability sinks (SetTracer,
	// SetCostLog): sampled query traces and the JSONL cost-record log
	// (DESIGN.md §14). Both default to nil, which costs the query path two
	// atomic loads and nothing else.
	tracer  atomic.Pointer[trace.Tracer]
	costLog atomic.Pointer[trace.CostLog]

	cfg Config
	jit *jitter
	seq atomic.Uint64 // request-ID source

	// fleet is the elastic worker-set snapshot (addresses, breakers, down
	// flags, call timers), swapped atomically when a worker joins or moves
	// so the scatter path reads it lock-free (DESIGN.md §15). The lazily
	// dialed transports (links) stay under mu and grow with the fleet.
	fleet atomic.Pointer[fleet]
	// member, when non-nil, is the membership subsystem: the heartbeat
	// failure detector plus the rebalancer (EnableMembership).
	member atomic.Pointer[membershipState]

	// planCache/resultCache are nil when disabled; admission likewise.
	planCache   *serve.LRU[string, cachedPlan]
	resultCache *serve.LRU[string, QueryResponse]
	admission   *serve.Admission

	mu         sync.Mutex
	links      []workerLink
	metricsReg *obs.Registry
	listener   net.Listener
	closed     bool
	wg         sync.WaitGroup
	// m is the optional distributed-path telemetry (SetMetrics); the zero
	// value is fully disabled.
	m masterMetrics
}

// fleet is one immutable snapshot of the worker set: addresses, breakers,
// liveness flags and call timers, indexed by worker slot. Mutations (join,
// address change, metrics attach) clone the slice headers under the master
// mutex and swap the snapshot; the per-worker state itself — breakers, down
// flags — is carried by pointer, so it survives snapshot swaps and a breaker
// keeps its failure history across a fleet growth.
type fleet struct {
	addrs    []string
	breakers []*breaker
	// down marks workers the failure detector declared Dead: the scatter
	// path deprioritises them exactly like an open breaker, but the flag
	// flips on membership transitions rather than call outcomes.
	down   []*atomic.Bool
	timers []*obs.Timer
}

func newFleet(addrs []string) *fleet {
	f := &fleet{
		addrs:    append([]string(nil), addrs...),
		breakers: make([]*breaker, len(addrs)),
		down:     make([]*atomic.Bool, len(addrs)),
	}
	for i := range f.breakers {
		f.breakers[i] = &breaker{}
		f.down[i] = new(atomic.Bool)
	}
	return f
}

// clone copies the slice headers, sharing the per-worker state pointers.
func (f *fleet) clone() *fleet {
	return &fleet{
		addrs:    append([]string(nil), f.addrs...),
		breakers: append([]*breaker(nil), f.breakers...),
		down:     append([]*atomic.Bool(nil), f.down...),
		timers:   append([]*obs.Timer(nil), f.timers...),
	}
}

// timer returns worker i's call timer (nil when metrics are disabled — nil
// timers no-op).
func (f *fleet) timer(i int) *obs.Timer {
	if i >= len(f.timers) {
		return nil
	}
	return f.timers[i]
}

// isDown reports whether the failure detector has declared worker i dead.
func (f *fleet) isDown(i int) bool {
	return i < len(f.down) && f.down[i].Load()
}

// NewMaster wires the router with worker addresses and a single-copy
// placement map. Every partition of the layout must be placed on a valid
// worker. For replica-aware placement use NewMasterReplicated.
func NewMaster(r *router.Master, workerAddrs []string, place map[layout.ID]int) (*Master, error) {
	return NewMasterReplicated(r, workerAddrs, placement.Assignment(place).Replicated())
}

// NewMasterReplicated wires the router with a replicated placement: each
// partition's scan goes to the first (primary) worker of its set and fails
// over down the list when the primary is down or its breaker is open.
func NewMasterReplicated(r *router.Master, workerAddrs []string, rep placement.Replicated) (*Master, error) {
	if err := rep.Validate(r.Layout(), len(workerAddrs)); err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	m := &Master{
		links: make([]workerLink, len(workerAddrs)),
	}
	m.fleet.Store(newFleet(workerAddrs))
	m.view.Store(&routeView{router: r, replicas: rep})
	m.Configure(DefaultConfig())
	return m, nil
}

// routeView is one immutable routing snapshot: the router over one sealed
// layout, the placement of that layout's partitions, and the layout epoch
// the workers know those partition IDs under. inflight counts the queries
// currently served from the snapshot, so a cutover can wait for the old
// epoch to drain before retiring it on the workers.
type routeView struct {
	router   *router.Master
	replicas placement.Replicated // partition -> replica set, primary first
	epoch    uint64
	inflight atomic.Int64
}

// Epoch returns the layout epoch the master currently serves.
func (m *Master) Epoch() uint64 { return m.view.Load().epoch }

// Router returns the router of the currently served layout epoch.
func (m *Master) Router() *router.Master { return m.view.Load().router }

// NumWorkers returns the current worker-slot count. Slots are stable for
// the master's lifetime: the fleet grows on joins and never compacts, so
// partition placements can name workers by index across membership changes.
func (m *Master) NumWorkers() int { return len(m.fleet.Load().addrs) }

// addWorker appends a fresh worker slot and returns its index. Callers must
// serialise slot growth (the membership join path holds its own mutex) so
// the fleet index always matches the tracker index.
func (m *Master) addWorker(addr string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.fleet.Load().clone()
	idx := len(f.addrs)
	f.addrs = append(f.addrs, addr)
	f.breakers = append(f.breakers, &breaker{})
	f.down = append(f.down, new(atomic.Bool))
	if m.metricsReg != nil {
		f.timers = append(f.timers, m.metricsReg.Timer(obs.Label(MetricWorkerCallNs, "worker", strconv.Itoa(idx))))
	}
	m.links = append(m.links, nil)
	m.fleet.Store(f)
	return idx
}

// setWorkerAddr rebinds worker i to addr — a rejoin from a new host — and
// drops its stale link so the next call redials the new address.
func (m *Master) setWorkerAddr(i int, addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.fleet.Load()
	if i < 0 || i >= len(f.addrs) || f.addrs[i] == addr {
		return
	}
	nf := f.clone()
	nf.addrs[i] = addr
	m.fleet.Store(nf)
	if i < len(m.links) && m.links[i] != nil {
		m.links[i].close()
		m.links[i] = nil
	}
}

// Placement returns the current partition placement (shared, do not mutate).
func (m *Master) Placement() placement.Replicated { return m.view.Load().replicas }

// QueryObservation is what a drift monitor sees per served query
// (SetQueryObserver): the routed ranges with their partition lists, the scan
// cost the response reported, and the epoch it was served under. Cached
// marks result-cache hits — they represent real demand (the monitor should
// weigh them) but did no new I/O.
type QueryObservation struct {
	Ranges       []geom.Box
	IDs          []layout.ID
	BytesScanned int64
	Epoch        uint64
	Cached       bool
}

// SetQueryObserver installs (or, with nil, removes) the per-query
// observation hook. The hook runs synchronously on the serving path — it
// must be cheap and must not call back into the master.
func (m *Master) SetQueryObserver(f func(QueryObservation)) {
	if f == nil {
		m.observer.Store(nil)
		return
	}
	m.observer.Store(&f)
}

func (m *Master) observe(plan router.Plan, resp *QueryResponse, epoch uint64, cached bool) {
	f := m.observer.Load()
	if f == nil {
		return
	}
	ob := QueryObservation{
		IDs:          plan.PartitionIDs(),
		BytesScanned: resp.BytesScanned,
		Epoch:        epoch,
		Cached:       cached,
	}
	ob.Ranges = make([]geom.Box, len(plan.Ranges))
	for i, rp := range plan.Ranges {
		ob.Ranges[i] = rp.Range
	}
	(*f)(ob)
}

// SetTracer installs (or, with nil, removes) the query tracer. Sampled
// queries record a full span tree — admission, routing, per-range scatter,
// per-attempt RPCs and the workers' per-partition scan spans — retained in
// the tracer's ring buffer and exposed over /traces.
func (m *Master) SetTracer(tr *trace.Tracer) { m.tracer.Store(tr) }

// SetCostLog installs (or, with nil, removes) the JSONL cost-record log:
// one schema-versioned record per query (layout features, query shape,
// measured stage costs) — training data for a learned cost model.
func (m *Master) SetCostLog(l *trace.CostLog) { m.costLog.Store(l) }

// traceFor starts a trace for one query: the tracer's sampling decision,
// forced for EXPLAIN. A forced trace on a master with tracing disabled is
// recorded locally (never retained) so EXPLAIN always works.
func (m *Master) traceFor(force bool) *trace.T {
	tr := m.tracer.Load()
	if t := tr.Sample(force); t != nil {
		return t
	}
	if force && tr == nil {
		return trace.NewLocal()
	}
	return nil
}

// Configure replaces the failure-handling and serving configuration. Zero
// fields of the retry policy and the serving knobs fall back to their
// defaults; caches and admission control stay off when their sizes are 0.
// Call before Start; the master does not support reconfiguration while
// queries are in flight.
func (m *Master) Configure(cfg Config) {
	cfg = cfg.normalized()
	m.cfg = cfg
	m.jit = newJitter(cfg.Retry.Seed)
	m.planCache, m.resultCache, m.admission = nil, nil, nil
	if cfg.PlanCacheSize > 0 {
		m.planCache = serve.NewLRU[string, cachedPlan](cfg.PlanCacheSize)
	}
	if cfg.ResultCacheSize > 0 {
		m.resultCache = serve.NewLRU[string, QueryResponse](cfg.ResultCacheSize)
	}
	if cfg.MaxInflightQueries > 0 {
		m.admission = serve.NewAdmission(cfg.MaxInflightQueries, cfg.MaxQueuedPerClient)
	}
}

// InvalidateCaches empties the descriptor and result caches. It must be
// called whenever the layout or the partition placement changes (partition
// migration, rebalance, layout rebuild): every cached plan and result is
// derived from both.
func (m *Master) InvalidateCaches() {
	if m.planCache != nil {
		m.planCache.Invalidate()
	}
	if m.resultCache != nil {
		m.resultCache.Invalidate()
	}
	m.m.cacheInvalidations.Inc()
}

// workerLink returns (dialing lazily) the persistent link to worker i. The
// dial respects ctx's deadline.
func (m *Master) workerLink(ctx context.Context, i int) (workerLink, error) {
	m.mu.Lock()
	if i < len(m.links) && m.links[i] != nil {
		l := m.links[i]
		m.mu.Unlock()
		return l, nil
	}
	m.mu.Unlock()
	addr := m.fleet.Load().addrs[i]
	if addr == "" {
		return nil, fmt.Errorf("dist: worker %d has no address (not joined yet)", i)
	}
	var l workerLink
	switch m.cfg.Transport {
	case TransportGob:
		var d net.Dialer
		nc, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("dist: dialing worker %d (%s): %w", i, addr, ctxErr(ctx, err))
		}
		l = &gobLink{c: newConn(nc)}
	default:
		ml, err := dialMuxLink(ctx, addr, m.cfg.ConnsPerWorker)
		if err != nil {
			return nil, fmt.Errorf("dist: dialing worker %d (%s): %w", i, addr, ctxErr(ctx, err))
		}
		l = ml
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i >= len(m.links) {
		m.links = append(m.links, nil)
	}
	if m.links[i] != nil {
		// A concurrent caller won the dial race; keep theirs.
		l.close()
		return m.links[i], nil
	}
	if m.closed {
		l.close()
		return nil, errors.New("dist: master is closed")
	}
	m.links[i] = l
	return l, nil
}

// dropWorkerLink discards a broken link so the next call redials.
func (m *Master) dropWorkerLink(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i < len(m.links) && m.links[i] != nil {
		m.links[i].close()
		m.links[i] = nil
	}
}

// errWorkerUnhealthy is returned when a worker's breaker short-circuits the
// call without touching the network.
type errWorkerUnhealthy struct{ w int }

func (e errWorkerUnhealthy) Error() string {
	return fmt.Sprintf("dist: worker %d unhealthy (breaker open)", e.w)
}

// callWorker performs one scan RPC against worker w under the retry policy:
// per-call deadlines, breaker admission, exponential backoff with seeded
// jitter between attempts, and a per-query retry budget. Scans are read-only
// and idempotent, so resends are safe. budget may be nil (no query budget).
//
// A failure whose request never reached the wire (serve.NotSentError — a
// deadline that expired while queued) leaves the link in place; any other
// failure drops it for a redial, because the stream state is unknown.
//
// When the query is traced (tq non-nil), every attempt records an "rpc" span
// under parent — so retries and failovers are visible as sibling spans — and
// the worker's trace fragment attaches under the succeeding attempt's span.
func (m *Master) callWorker(ctx context.Context, w int, req ScanRequest, resp *ScanResponse, budget *atomic.Int64, tq *trace.T, parent trace.SpanRef, round int) error {
	req.Seq = m.seq.Add(1)
	req.TraceID = tq.ID()
	f := m.fleet.Load()
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		ok, probe := f.breakers[w].allow(m.cfg.Retry, time.Now())
		if !ok {
			m.m.breakerShorts.Inc()
			return errWorkerUnhealthy{w}
		}
		if probe {
			m.m.breakerProbes.Inc()
		}
		rpc := tq.Start("rpc", parent)
		rpc.Int(trace.KeyWorker, int64(w))
		rpc.Int(trace.KeyPartitions, int64(len(req.IDs)))
		if attempt > 0 {
			rpc.Int(trace.KeyAttempt, int64(attempt))
		}
		if round > 0 {
			rpc.Int(trace.KeyFailoverRound, int64(round))
		}
		cctx := ctx
		cancel := func() {}
		if m.cfg.CallTimeout > 0 {
			cctx, cancel = context.WithTimeout(ctx, m.cfg.CallTimeout)
		}
		if d, ok := cctx.Deadline(); ok {
			req.Deadline = d.UnixNano()
		}
		l, err := m.workerLink(cctx, w)
		if err == nil {
			*resp = ScanResponse{} // a failed prior attempt may have partially decoded
			sp := f.timer(w).Start()
			err = l.scan(cctx, &req, resp)
			sp.End()
		}
		cancel()
		if err == nil {
			if tq != nil && len(resp.Spans) > 0 {
				tq.Attach(rpc, resp.Spans)
			}
			rpc.End()
			f.breakers[w].success()
			return nil
		}
		rpc.Int(trace.KeyError, 1)
		rpc.End()
		if serve.IsNotSent(err) {
			// The link was never touched (clean expiry while queued): keep
			// it — redialing would churn a healthy connection and poison the
			// other callers pipelined on it.
			m.m.cleanExpiries.Inc()
		} else {
			m.dropWorkerLink(w)
			m.m.redials.Inc()
		}
		if ctx.Err() != nil {
			// The query itself is done (deadline or sibling cancellation):
			// the worker is not to blame, and retrying is pointless.
			m.m.failures.Inc()
			return err
		}
		if f.breakers[w].failure(m.cfg.Retry, time.Now()) {
			m.m.breakerTrips.Inc()
		}
		if attempt+1 >= m.cfg.Retry.MaxAttempts {
			m.m.failures.Inc()
			return err
		}
		if budget != nil && budget.Add(-1) < 0 {
			m.m.failures.Inc()
			return fmt.Errorf("dist: query retry budget exhausted: %w", err)
		}
		m.m.retries.Inc()
		if serr := sleepCtx(ctx, m.jit.backoff(m.cfg.Retry, attempt)); serr != nil {
			m.m.failures.Inc()
			return serr
		}
	}
}

// sleepCtx sleeps for d or until ctx is done, returning ctx's error in the
// latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Query executes one SQL statement with the background context (the
// configured QueryTimeout still applies): admission → caches → rewrite →
// route → scatter per worker → gather, with retry, failover and the
// configured partial-results default.
func (m *Master) Query(sql string) (QueryResponse, error) {
	return m.QueryContext(context.Background(), sql)
}

// QueryContext is Query under a caller-supplied context: the deadline (or
// the configured QueryTimeout when the context has none) is threaded through
// every scatter RPC down to the workers' scan loops, and a cancellation
// interrupts in-flight calls.
func (m *Master) QueryContext(ctx context.Context, sql string) (QueryResponse, error) {
	return m.query(ctx, localClient, sql, m.cfg.AllowPartial, false)
}

// Explain runs one SQL statement with a forced trace (EXPLAIN ANALYZE): the
// response carries the full span tree — admission, routing, per-range
// scatter, per-attempt RPCs, and per-partition scan spans from every touched
// worker. Works whether or not a tracer is installed.
func (m *Master) Explain(sql string) (QueryResponse, error) {
	return m.ExplainContext(context.Background(), sql)
}

// ExplainContext is Explain under a caller-supplied context.
func (m *Master) ExplainContext(ctx context.Context, sql string) (QueryResponse, error) {
	return m.query(ctx, localClient, sql, m.cfg.AllowPartial, true)
}

// Ready reports whether the master can serve queries at full fidelity:
// started, not closed, and not mid-migration (a cutover in progress means
// routing is double-resolving while placements change underneath — load
// balancers should prefer settled masters). The string explains a false.
func (m *Master) Ready() (bool, string) {
	m.mu.Lock()
	started, closed := m.listener != nil, m.closed
	m.mu.Unlock()
	if closed {
		return false, "master is closed"
	}
	if !started {
		return false, "master is not serving yet"
	}
	if m.mig.Load() != nil {
		return false, "layout migration in progress"
	}
	return true, "ok"
}

// localClient is the admission fair-queue key for queries issued directly
// on the master rather than through a network session.
const localClient = "local"

// cachedPlan is one descriptor-cache entry: the routed plan plus the layout
// epoch it was routed against. The epoch guards the cache across migration
// cutovers: a query racing the cutover can neither serve a not-yet-swept
// old-epoch plan against the new placement nor re-install a stale plan after
// the sweep ran — an epoch mismatch is simply a miss, and the re-route
// overwrites the entry under the view's own epoch.
type cachedPlan struct {
	plan  router.Plan
	epoch uint64
}

// route resolves sql to a routing plan for view v through the descriptor
// cache, reporting whether the cache answered. Plans are immutable after
// routing, so cached plans are shared across queries. Entries are keyed to
// v's epoch — the cutover sweep translates or drops them when the layout
// changes, and entries from any other epoch read as misses.
func (m *Master) route(v *routeView, sql string) (router.Plan, bool, error) {
	if m.planCache == nil {
		plan, err := v.router.RouteSQL(sql)
		return plan, false, err
	}
	if e, ok := m.planCache.Get(sql); ok && e.epoch == v.epoch {
		m.m.planHits.Inc()
		return e.plan, true, nil
	}
	m.m.planMisses.Inc()
	plan, err := v.router.RouteSQL(sql)
	if err != nil {
		return plan, false, err
	}
	m.planCache.Put(sql, cachedPlan{plan: plan, epoch: v.epoch})
	return plan, false, nil
}

// planFor resolves sql under double-routing (DESIGN.md §13). With a
// migration in progress, the query is routed against the next layout and
// served from it iff every partition the plan touches has already been
// installed on its workers; otherwise — and always outside migrations — the
// current view serves it. next reports which side was chosen (next-view
// results must not populate the caches: their keys belong to the epoch that
// has not cut over yet); hit reports a descriptor-cache hit.
func (m *Master) planFor(sql string) (v *routeView, plan router.Plan, next, hit bool, err error) {
	if mg := m.mig.Load(); mg != nil {
		plan, err := mg.view.router.RouteSQL(sql)
		if err == nil && mg.planReady(plan) {
			return mg.view, plan, true, false, nil
		}
	}
	v = m.view.Load()
	plan, hit, err = m.route(v, sql)
	return v, plan, false, hit, err
}

// queryStats carries routing facts and coarse stage timings out of the
// serving body for the observability epilogue (trace annotations, slow-query
// log, cost record). A nil *queryStats — the fully untraced fast path —
// disables the clock reads.
type queryStats struct {
	routeNs     int64
	scatterNs   int64
	epoch       uint64
	cached      bool
	next        bool
	layoutParts int
	dims        int
}

// query is the serving path shared by direct calls and network sessions. It
// wraps serveQuery (cache → admission → route → scatter) with the
// observability epilogue of DESIGN.md §14: the sampled trace's root span and
// Finish, the slow-query log, the cost record, and — for explain — the
// assembled span tree on the response. explain forces a trace even when
// sampling is off.
func (m *Master) query(ctx context.Context, client, sql string, allowPartial, explain bool) (QueryResponse, error) {
	var start time.Time
	if m.m.queries != nil {
		start = time.Now()
		m.m.inflight.Add(1)
		defer m.m.inflight.Add(-1)
		defer func() { m.m.latency.Observe(float64(time.Since(start))) }()
		m.m.queries.Inc()
	}
	if _, ok := ctx.Deadline(); !ok && m.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.cfg.QueryTimeout)
		defer cancel()
	}
	tq := m.traceFor(explain)
	costLog := m.costLog.Load()
	slow := m.cfg.SlowQuery
	if tq == nil && costLog == nil && slow <= 0 {
		// The fully untraced fast path: beyond two atomic loads it pays only
		// the nil checks compiled into the instrumentation points.
		return m.serveQuery(ctx, client, sql, allowPartial, nil, trace.SpanRef{}, nil)
	}
	qstart := time.Now()
	root := tq.Start("query", trace.SpanRef{})
	var st queryStats
	resp, err := m.serveQuery(ctx, client, sql, allowPartial, tq, root, &st)
	elapsed := time.Since(qstart)
	if tq != nil {
		root.Int(trace.KeyRows, int64(resp.Rows))
		root.Int(trace.KeyBytesRead, resp.BytesScanned)
		root.Int(trace.KeyBytesSkipped, resp.BytesSkipped)
		root.Int(trace.KeyPartitions, int64(resp.PartitionsScanned))
		root.Int(trace.KeyEpoch, int64(st.epoch))
		if st.cached {
			root.Int(trace.KeyCacheHit, 1)
		}
		if st.next {
			root.Int(trace.KeyNextView, 1)
		}
		if resp.Partial {
			root.Int(trace.KeyPartial, 1)
		}
		if err != nil {
			root.Int(trace.KeyError, 1)
		}
		root.End()
		m.tracer.Load().Finish(tq)
		m.m.tracesSampled.Inc()
	}
	if slow > 0 && elapsed >= slow {
		m.m.slowQueries.Inc()
		traceID := "untraced"
		if tq != nil {
			traceID = fmt.Sprintf("%016x", tq.ID())
		}
		errStr := ""
		if err != nil {
			errStr = err.Error()
		}
		slog.Warn("paw: slow query",
			"client", client,
			"sql", sql,
			"elapsed", elapsed,
			"trace_id", traceID,
			"route_ns", st.routeNs,
			"scatter_ns", st.scatterNs,
			"ranges", resp.SubQueries,
			"partitions", resp.PartitionsScanned,
			"rows", resp.Rows,
			"bytes_read", resp.BytesScanned,
			"bytes_skipped", resp.BytesSkipped,
			"epoch", st.epoch,
			"cached", st.cached,
			"partial", resp.Partial,
			"err", errStr,
		)
	}
	if costLog != nil && err == nil {
		costLog.Record(trace.CostRecord{
			TraceID:           tq.ID(),
			UnixNs:            qstart.UnixNano(),
			SQL:               sql,
			Epoch:             st.epoch,
			LayoutPartitions:  st.layoutParts,
			Dims:              st.dims,
			Ranges:            resp.SubQueries,
			PartitionsTouched: resp.PartitionsScanned,
			Workers:           m.NumWorkers(),
			Rows:              resp.Rows,
			BytesRead:         resp.BytesScanned,
			BytesSkipped:      resp.BytesSkipped,
			Cached:            st.cached,
			Partial:           resp.Partial,
			NextView:          st.next,
			TotalNs:           int64(elapsed),
			RouteNs:           st.routeNs,
			ScatterNs:         st.scatterNs,
		})
	}
	if explain && err == nil && tq != nil {
		// Spans ride the response only when the request forced the trace —
		// and only on this return value, never on the cached copy (serveQuery
		// stored `total` before we got here), so untraced responses stay
		// byte-identical whether tracing is on or off.
		resp.TraceID = tq.ID()
		resp.Spans = tq.Spans()
	}
	return resp, err
}

// serveQuery is the serving body: result-cache lookup, admission (keyed by
// client for fair queueing), then route and scatter, caching clean complete
// results on the way out. tq and st may be nil (untraced fast path) — all
// instrumentation points degrade to nil checks.
func (m *Master) serveQuery(ctx context.Context, client, sql string, allowPartial bool, tq *trace.T, root trace.SpanRef, st *queryStats) (QueryResponse, error) {
	// A cached clean result answers without a slot: serving memory beats
	// re-scattering, and the cache can only hold results that are still
	// valid (InvalidateCaches empties it on layout/placement change).
	if m.resultCache != nil {
		if resp, ok := m.resultCache.Get(sql); ok {
			m.m.resultHits.Inc()
			if st != nil {
				st.cached = true
				st.epoch = m.view.Load().epoch
			}
			if m.observer.Load() != nil {
				// The monitor needs the query's routed shape even for a
				// cache hit (it is real demand); the plan comes from the
				// descriptor cache, so this stays cheap.
				if plan, _, err := m.route(m.view.Load(), sql); err == nil {
					m.observe(plan, &resp, m.view.Load().epoch, true)
				}
			}
			return resp, nil
		}
		m.m.resultMisses.Inc()
	}
	if m.admission != nil {
		asp := tq.Start("admission", root)
		release, err := m.admission.Acquire(ctx, client)
		if err != nil {
			asp.Int(trace.KeyError, 1)
			asp.End()
			if errors.Is(err, serve.ErrOverloaded) {
				m.m.overloads.Inc()
				return QueryResponse{}, fmt.Errorf("dist: query shed: %w", err)
			}
			return QueryResponse{}, err
		}
		asp.End()
		defer release()
	}
	var routeStart time.Time
	if st != nil {
		routeStart = time.Now()
	}
	rsp := tq.Start("route", root)
	view, plan, next, hit, err := m.planFor(sql)
	if st != nil {
		st.routeNs = int64(time.Since(routeStart))
	}
	if err != nil {
		rsp.Int(trace.KeyError, 1)
		rsp.End()
		return QueryResponse{}, err
	}
	if st != nil {
		st.epoch = view.epoch
		st.next = next
		st.layoutParts = len(view.router.Layout().Parts)
		if len(plan.Ranges) > 0 {
			st.dims = plan.Ranges[0].Range.Dims()
		}
	}
	rsp.Int(trace.KeyRanges, int64(len(plan.Ranges)))
	rsp.Int(trace.KeyPartitions, int64(plan.NumScans()))
	if hit {
		rsp.Int(trace.KeyPlanCacheHit, 1)
	}
	if next {
		rsp.Int(trace.KeyNextView, 1)
	}
	rsp.End()
	view.inflight.Add(1)
	defer view.inflight.Add(-1)
	var total QueryResponse
	total.SubQueries = len(plan.Ranges)
	var budget *atomic.Int64
	if n := m.cfg.Retry.QueryRetryBudget; n > 0 {
		budget = new(atomic.Int64)
		budget.Store(int64(n))
	}
	var scatterStart time.Time
	if st != nil {
		scatterStart = time.Now()
	}
	for i, rp := range plan.Ranges {
		ssp := tq.Start("scatter", root)
		ssp.Int(trace.KeyRange, int64(i))
		ssp.Int(trace.KeyPartitions, int64(len(rp.Parts)))
		failed, cause, err := m.scatterRange(ctx, view, rp.Range, rp.Parts, budget, allowPartial, &total, tq, ssp)
		if err != nil {
			ssp.Int(trace.KeyError, 1)
			ssp.End()
			if errors.Is(err, context.DeadlineExceeded) {
				m.m.deadlines.Inc()
			}
			if st != nil {
				st.scatterNs = int64(time.Since(scatterStart))
			}
			return QueryResponse{}, err
		}
		if len(failed) > 0 {
			if !allowPartial {
				if cause == nil {
					// No worker ever failed — the plan names partitions the
					// placement does not hold (a stale plan racing a layout
					// change). Silent empty success would be a wrong answer.
					cause = fmt.Errorf("dist: partition(s) %v have no placed replica under epoch %d", failed, view.epoch)
				}
				ssp.Int(trace.KeyError, 1)
				ssp.End()
				if st != nil {
					st.scatterNs = int64(time.Since(scatterStart))
				}
				return QueryResponse{}, cause
			}
			total.FailedPartitions = append(total.FailedPartitions, failed...)
		}
		total.PartitionsScanned += len(rp.Parts) - len(failed)
		ssp.End()
	}
	if st != nil {
		st.scatterNs = int64(time.Since(scatterStart))
	}
	if len(total.FailedPartitions) > 0 {
		sort.Slice(total.FailedPartitions, func(i, j int) bool {
			return total.FailedPartitions[i] < total.FailedPartitions[j]
		})
		total.Partial = true
		m.m.partials.Inc()
	}
	if m.resultCache != nil && !total.Partial && !next && m.view.Load() == view {
		// Next-view results and results that raced a cutover are not
		// cached: their telemetry belongs to an epoch that is not (or no
		// longer) the served one, and the cutover sweep has already run.
		m.resultCache.Put(sql, total)
	}
	m.observe(plan, &total, view.epoch, false)
	return total, nil
}

// pickWorker chooses the next worker to scan partition id on: the first
// untried replica that is not membership-dead and whose breaker admits
// calls, then the first untried non-dead replica (it will consume the
// breaker probe or fail fast), then the first untried replica at all — a
// dead mark is a strong hint, not a verdict, so a replica set whose every
// member is marked dead is still tried rather than silently failed. -1 when
// the replica set is exhausted.
func (m *Master) pickWorker(v *routeView, id layout.ID, tried map[int]bool) int {
	f := m.fleet.Load()
	now := time.Now()
	first, firstUp := -1, -1
	for _, w := range v.replicas[id] {
		if tried[w] {
			continue
		}
		if first < 0 {
			first = w
		}
		if f.isDown(w) {
			continue
		}
		if firstUp < 0 {
			firstUp = w
		}
		if f.breakers[w].healthy(m.cfg.Retry, now) {
			return w
		}
	}
	if firstUp >= 0 {
		return firstUp
	}
	return first
}

// scatterRange fans one range query out to the workers covering its
// partitions and gathers the results, failing partitions over to their
// replicas in rounds. It returns the partitions no replica could serve
// together with the first underlying failure; err is non-nil only for a hard
// abort (context done). In-flight sibling RPCs are cancelled as soon as the
// range is known to fail, and the scatter always drains its goroutines
// before returning.
func (m *Master) scatterRange(ctx context.Context, v *routeView, q geom.Box, ids []layout.ID, budget *atomic.Int64, allowPartial bool, total *QueryResponse, tq *trace.T, span trace.SpanRef) (failed []layout.ID, cause, err error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	pending := ids
	var tried map[layout.ID]map[int]bool // lazily allocated: only on failure
	for round := 0; len(pending) > 0; round++ {
		byWorker := make(map[int][]layout.ID)
		for _, id := range pending {
			w := m.pickWorker(v, id, tried[id])
			if w < 0 {
				failed = append(failed, id)
				continue
			}
			if round > 0 {
				m.m.failovers.Inc()
			}
			byWorker[w] = append(byWorker[w], id)
		}
		if len(failed) > 0 && !allowPartial {
			// Some partition's replicas are exhausted (only possible after a
			// failure round, so cause is set) and the query cannot go
			// partial: don't spend another scatter on a lost range.
			for _, bids := range byWorker {
				failed = append(failed, bids...)
			}
			return failed, cause, nil
		}
		if len(byWorker) == 0 {
			break
		}
		if round == 0 {
			m.m.fanout.Observe(float64(len(byWorker)))
		}
		type result struct {
			w    int
			ids  []layout.ID
			resp ScanResponse
			err  error
		}
		results := make(chan result, len(byWorker))
		for w, bids := range byWorker {
			go func(w int, bids []layout.ID, round int) {
				var r result
				r.w, r.ids = w, bids
				r.err = m.callWorker(sctx, w, ScanRequest{Query: q, IDs: bids, Epoch: v.epoch}, &r.resp, budget, tq, span, round)
				results <- r
			}(w, bids, round)
		}
		var next []layout.ID
		fatal := false
		for range byWorker {
			r := <-results
			if r.err == nil && r.resp.Err == "" {
				total.Rows += r.resp.Rows
				total.BytesScanned += r.resp.BytesRead
				total.BytesSkipped += r.resp.BytesSkipped
				continue
			}
			ferr := r.err
			if ferr == nil {
				ferr = errors.New(r.resp.Err)
			}
			if cause == nil {
				cause = fmt.Errorf("dist: worker %d scanning %d partition(s): %w", r.w, len(r.ids), ferr)
			}
			retryable := false
			for _, id := range r.ids {
				if tried == nil {
					tried = make(map[layout.ID]map[int]bool)
				}
				if tried[id] == nil {
					tried[id] = make(map[int]bool)
				}
				tried[id][r.w] = true
				next = append(next, id)
				if m.pickWorker(v, id, tried[id]) >= 0 {
					retryable = true
				}
			}
			if !retryable && !allowPartial {
				// No replica left for at least one partition and the query
				// cannot go partial: cancel the in-flight siblings; keep
				// draining.
				fatal = true
				cancel()
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if fatal {
			return append(failed, next...), cause, nil
		}
		pending = next
	}
	return failed, cause, nil
}

// Start serves the client protocol on addr and returns the bound address.
// Sessions speak either the binary frame protocol (preamble-detected) or
// the legacy gob protocol; both run the same serving path.
func (m *Master) Start(addr string) (string, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", errors.New("dist: master is closed")
	}
	if m.listener != nil {
		m.mu.Unlock()
		return "", errors.New("dist: master already started")
	}
	m.mu.Unlock()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		l.Close()
		return "", errors.New("dist: master is closed")
	}
	m.listener = l
	m.mu.Unlock()
	if ms := m.member.Load(); ms != nil && ms.cfg.TickEvery > 0 {
		m.wg.Add(1)
		go m.memberTickLoop(ms)
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				m.serveClient(c)
			}()
		}
	}()
	return l.Addr().String(), nil
}

// serveClient detects the session protocol by its first bytes and runs the
// matching codec loop.
func (m *Master) serveClient(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	peek, err := br.Peek(len(serve.Magic))
	if err != nil {
		if !errors.Is(err, io.EOF) {
			m.m.clientsDropped.Inc()
		}
		return
	}
	if bytes.Equal(peek, serve.Magic[:]) {
		br.Discard(len(serve.Magic))
		m.serveBinaryClient(c, br)
		return
	}
	m.serveGobClient(c, br)
}

// handleQueryRequest runs one client query on the serving path; failures
// become response-carried errors with their typed code.
func (m *Master) handleQueryRequest(client string, req QueryRequest) QueryResponse {
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if req.TimeoutMillis > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMillis)*time.Millisecond)
	}
	resp, err := m.query(ctx, client, req.SQL, req.AllowPartial || m.cfg.AllowPartial, req.Trace)
	cancel()
	if err != nil {
		resp = QueryResponse{Err: err.Error(), ErrCode: errCodeFor(err)}
	}
	return resp
}

// serveBinaryClient pipelines query frames: each request executes on its
// own goroutine (bounded by ClientPipeline) and responses return in
// completion order, so one expensive query never blocks the cheap ones
// behind it on the same connection.
func (m *Master) serveBinaryClient(c net.Conn, br *bufio.Reader) {
	client := c.RemoteAddr().String()
	err := serve.ServeConn(c, br, m.cfg.ClientPipeline, func(typ byte, payload []byte) (byte, serve.Marshaler, error) {
		switch typ {
		case msgQueryReq:
			var req QueryRequest
			if err := req.UnmarshalWire(payload); err != nil {
				return 0, nil, err
			}
			resp := m.handleQueryRequest(client, req)
			return msgQueryResp, &resp, nil
		case msgMemberReq:
			var req MemberRequest
			if err := req.UnmarshalWire(payload); err != nil {
				return 0, nil, err
			}
			resp := m.handleMember(&req)
			return msgMemberResp, &resp, nil
		default:
			return 0, nil, fmt.Errorf("dist: unexpected client frame type %d", typ)
		}
	})
	if err != nil && !errors.Is(err, io.EOF) && !m.isClosed() {
		m.m.clientsDropped.Inc()
	}
}

// serveGobClient is the legacy session loop: one request/response exchange
// at a time over a gob codec pair.
func (m *Master) serveGobClient(c net.Conn, br *bufio.Reader) {
	client := c.RemoteAddr().String()
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(c)
	for {
		var req QueryRequest
		if err := dec.Decode(&req); err != nil {
			// EOF is the client hanging up cleanly; anything else is a
			// dropped session worth counting.
			if !errors.Is(err, io.EOF) && !m.isClosed() {
				m.m.clientsDropped.Inc()
			}
			return
		}
		var resp QueryResponse
		if req.Member != nil {
			// The member envelope: the homogeneous gob stream cannot carry
			// a second message type, so membership traffic rides inside the
			// query exchange (QueryRequest.Member / QueryResponse.Member).
			mresp := m.handleMember(req.Member)
			resp = QueryResponse{Member: &mresp}
		} else {
			resp = m.handleQueryRequest(client, req)
		}
		if err := enc.Encode(&resp); err != nil {
			m.m.clientsDropped.Inc()
			return
		}
	}
}

func (m *Master) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Close shuts down the client listener and worker links. Close is
// idempotent; it waits for in-flight client sessions to finish.
func (m *Master) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	l := m.listener
	for i, w := range m.links {
		if w != nil {
			w.close()
			m.links[i] = nil
		}
	}
	m.mu.Unlock()
	if ms := m.member.Load(); ms != nil {
		ms.shutdown()
	}
	var err error
	if l != nil {
		err = l.Close()
	}
	m.wg.Wait()
	return err
}

// Client speaks SQL to a master over TCP with the legacy gob protocol. Its
// connection mutex serialises exchanges; for pipelined concurrent queries
// over one connection use MuxClient.
type Client struct {
	conn *conn
	// allowPartial opts future queries into partial results (SetAllowPartial).
	allowPartial bool
}

// Dial connects to a master with the legacy gob protocol.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: newConn(c)}, nil
}

// SetAllowPartial opts this client's queries into partial results: when no
// replica of a partition survives, the master answers from the rest and
// reports the failures in QueryResponse.FailedPartitions instead of erroring.
// Call before issuing queries; not safe concurrently with Query.
func (c *Client) SetAllowPartial(v bool) { c.allowPartial = v }

// Query runs one SQL statement with no client-side deadline (the master's
// configured QueryTimeout still applies).
func (c *Client) Query(sql string) (QueryResponse, error) {
	return c.QueryContext(context.Background(), sql)
}

// QueryContext runs one SQL statement under ctx. A context deadline is both
// enforced locally (the read/write deadlines on the connection) and shipped
// to the master, which threads it through every worker scan. After a
// deadline or cancellation error the connection is poisoned mid-message;
// the client must be re-dialed.
func (c *Client) QueryContext(ctx context.Context, sql string) (QueryResponse, error) {
	return c.call(ctx, sql, false)
}

// Explain runs one SQL statement with a forced trace (EXPLAIN ANALYZE); the
// response carries the assembled span tree. Mirrors MuxClient.Explain so the
// differential oracle can compare both transports' traced behaviour.
func (c *Client) Explain(ctx context.Context, sql string) (QueryResponse, error) {
	return c.call(ctx, sql, true)
}

func (c *Client) call(ctx context.Context, sql string, explain bool) (QueryResponse, error) {
	req := QueryRequest{SQL: sql, AllowPartial: c.allowPartial, Trace: explain}
	if d, ok := ctx.Deadline(); ok {
		ms := time.Until(d).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.TimeoutMillis = ms
	}
	var resp QueryResponse
	if err := c.conn.call(ctx, req, &resp); err != nil {
		return QueryResponse{}, err
	}
	if resp.Err != "" {
		return QueryResponse{}, respError(resp)
	}
	return resp, nil
}

// Close closes the client connection.
func (c *Client) Close() error { return c.conn.Close() }
