package dist

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"testing"

	"paw/internal/blockstore"
	"paw/internal/colstore"
	"paw/internal/dataset"
	"paw/internal/faultnet"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/obs"
	"paw/internal/placement"
	"paw/internal/router"
)

// Migration unit tests: a hand-assembled quadrant layout whose right half is
// patched from a vertical to a horizontal split, so the diff (2 renamed, 2
// removed, 2 added) and every payload are fully controlled. The chaos
// migration scenarios at the bottom reuse the same fixture behind faultnet
// scripts.

// migClusterFixture is a live cluster plus a ready-to-apply migration.
type migClusterFixture struct {
	data    *dataset.Dataset
	old     *layout.Layout
	next    *layout.Layout
	diff    layout.Diff
	mig     *Migration
	rep     placement.Replicated
	workers []*Worker
	master  *Master
	reg     *obs.Registry
}

func migLeaf(b geom.Box, rows int64) *layout.Node {
	return &layout.Node{
		Desc: layout.NewRect(b),
		Part: &layout.Partition{Desc: layout.NewRect(b), FullRows: rows},
	}
}

// buildMigFixture starts nWorkers workers (each optionally behind a faultnet
// script) and a master serving the quadrant layout, and constructs the patch
// migration without applying it.
func buildMigFixture(t *testing.T, nWorkers int, scripts map[int]faultnet.Script, cfg Config) *migClusterFixture {
	t.Helper()
	data := dataset.Uniform(6000, 2, 19)
	dom := data.Domain()
	midX := (dom.Lo[0] + dom.Hi[0]) / 2
	midY := (dom.Lo[1] + dom.Hi[1]) / 2
	midRX := (midX + dom.Hi[0]) / 2
	box := func(lo0, lo1, hi0, hi1 float64) geom.Box {
		return geom.Box{Lo: geom.Point{lo0, lo1}, Hi: geom.Point{hi0, hi1}}
	}

	left := &layout.Node{Desc: layout.NewRect(box(dom.Lo[0], dom.Lo[1], midX, dom.Hi[1])), Children: []*layout.Node{
		migLeaf(box(dom.Lo[0], dom.Lo[1], midX, midY), 0),
		migLeaf(box(dom.Lo[0], midY, midX, dom.Hi[1]), 0),
	}}
	right := &layout.Node{Desc: layout.NewRect(box(midX, dom.Lo[1], dom.Hi[0], dom.Hi[1])), Children: []*layout.Node{
		migLeaf(box(midX, dom.Lo[1], midRX, dom.Hi[1]), 0),
		migLeaf(box(midRX, dom.Lo[1], dom.Hi[0], dom.Hi[1]), 0),
	}}
	root := &layout.Node{Desc: layout.NewRect(dom), Children: []*layout.Node{left, right}}
	old := layout.Seal("manual", root, data.RowBytes())
	old.Route(data)
	if old.Unrouted != 0 {
		t.Fatalf("%d rows unrouted", old.Unrouted)
	}
	store := blockstore.Materialize(old, data, blockstore.Config{GroupRows: 256})

	// Replacement: right half split horizontally. Row lists follow the same
	// first-containing-child order the router uses, so counts line up
	// exactly.
	rbBox := box(midX, dom.Lo[1], dom.Hi[0], midY)
	rtBox := box(midX, midY, dom.Hi[0], dom.Hi[1])
	var rbRows, rtRows []int
	for i := 0; i < data.NumRows(); i++ {
		p := data.Point(i)
		switch {
		case rbBox.Contains(p):
			rbRows = append(rbRows, i)
		case rtBox.Contains(p):
			rtRows = append(rtRows, i)
		}
	}
	repl := &layout.Node{Desc: layout.NewRect(box(midX, dom.Lo[1], dom.Hi[0], dom.Hi[1])), Children: []*layout.Node{
		migLeaf(rbBox, int64(len(rbRows))),
		migLeaf(rtBox, int64(len(rtRows))),
	}}
	next, diff, err := layout.PatchSubtree(old, right, repl)
	if err != nil {
		t.Fatal(err)
	}
	rowsFor := map[layout.ID][]int{diff.Added[0]: rbRows, diff.Added[1]: rtRows}

	// Cluster: every old partition on worker id%n.
	rep := make(placement.Replicated, len(old.Parts))
	for _, p := range old.Parts {
		rep[p.ID] = []int{int(p.ID) % nWorkers}
	}
	tc := &migClusterFixture{data: data, old: old, next: next, diff: diff, rep: rep}
	hosted := perWorkerIDs(rep, nWorkers)
	addrs := make([]string, nWorkers)
	for w := 0; w < nWorkers; w++ {
		wk := NewWorker(store, hosted[w])
		inner, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var ln net.Listener = inner
		if s, ok := scripts[w]; ok {
			ln = faultnet.Wrap(inner, s)
		}
		if err := wk.Serve(ln); err != nil {
			t.Fatal(err)
		}
		addrs[w] = inner.Addr().String()
		tc.workers = append(tc.workers, wk)
	}
	rm, err := router.NewMaster(old, data.Names())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMasterReplicated(rm, addrs, rep)
	if err != nil {
		t.Fatal(err)
	}
	m.Configure(cfg)
	tc.reg = obs.New()
	m.SetMetrics(tc.reg)
	tc.master = m
	t.Cleanup(func() {
		m.Close()
		for _, wk := range tc.workers {
			wk.Close()
		}
	})

	// The migration: aliases for the surviving left half, payloads for the
	// rebuilt right half.
	nextRouter, err := router.NewMaster(next, data.Names())
	if err != nil {
		t.Fatal(err)
	}
	nextRep := make(placement.Replicated, len(next.Parts))
	var entries []MigrationEntry
	for oldID, newID := range diff.Renamed {
		nextRep[newID] = rep[oldID]
		entries = append(entries, MigrationEntry{
			ID:      newID,
			Workers: rep[oldID],
			ReuseID: oldID,
			Rows:    next.Parts[newID].FullRows,
		})
	}
	for _, id := range diff.Added {
		var buf bytes.Buffer
		if err := colstore.FromDataset(data, rowsFor[id], 256).Encode(&buf); err != nil {
			t.Fatal(err)
		}
		ws := []int{int(id) % nWorkers}
		nextRep[id] = ws
		entries = append(entries, MigrationEntry{
			ID:      id,
			Workers: ws,
			ReuseID: -1,
			Payload: buf.Bytes(),
			Rows:    int64(len(rowsFor[id])),
		})
	}
	tc.mig = &Migration{
		Epoch:    1,
		Router:   nextRouter,
		Replicas: nextRep,
		Entries:  entries,
		Renamed:  diff.Renamed,
	}
	return tc
}

// migSQL renders a range query over the fixture's two columns.
func migSQL(names []string, b geom.Box) string {
	return fmt.Sprintf("SELECT * FROM t WHERE %s >= %v AND %s <= %v AND %s >= %v AND %s <= %v",
		names[0], b.Lo[0], names[0], b.Hi[0], names[1], b.Lo[1], names[1], b.Hi[1])
}

// checkQueries runs one query per quadrant-ish region and asserts exact row
// counts against the dataset.
func (tc *migClusterFixture) checkQueries(t *testing.T) {
	t.Helper()
	dom := tc.data.Domain()
	names := tc.data.Names()
	w0, h0 := dom.Hi[0]-dom.Lo[0], dom.Hi[1]-dom.Lo[1]
	probes := []geom.Box{
		{Lo: geom.Point{dom.Lo[0], dom.Lo[1]}, Hi: geom.Point{dom.Lo[0] + 0.3*w0, dom.Lo[1] + 0.7*h0}},
		{Lo: geom.Point{dom.Lo[0] + 0.6*w0, dom.Lo[1] + 0.1*h0}, Hi: geom.Point{dom.Lo[0] + 0.9*w0, dom.Lo[1] + 0.4*h0}},
		{Lo: geom.Point{dom.Lo[0] + 0.4*w0, dom.Lo[1] + 0.4*h0}, Hi: geom.Point{dom.Lo[0] + 0.8*w0, dom.Lo[1] + 0.9*h0}},
	}
	for _, b := range probes {
		sql := migSQL(names, b)
		resp, err := tc.master.Query(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if want := tc.data.CountInBox(b, nil); resp.Rows != want {
			t.Fatalf("%q: %d rows, want %d", sql, resp.Rows, want)
		}
	}
}

func fastMigConfig() Config {
	cfg := fastChaosConfig(7)
	cfg.PlanCacheSize = 64
	cfg.ResultCacheSize = 64
	return cfg
}

func TestMigrationAppliesAliasesAndPayloads(t *testing.T) {
	tc := buildMigFixture(t, 3, nil, fastMigConfig())
	tc.checkQueries(t)
	if err := tc.master.ApplyMigration(context.Background(), tc.mig); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if got := tc.master.Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
	tc.checkQueries(t)

	snap := tc.reg.Snapshot()
	if got := snap.Counter(MetricMigrations); got != 1 {
		t.Errorf("migrations = %d, want 1", got)
	}
	if got := snap.Counter(MetricReusedPartitions); got != int64(len(tc.diff.Renamed)) {
		t.Errorf("reused partitions = %d, want %d", got, len(tc.diff.Renamed))
	}
	if got := snap.Counter(MetricMigratedPartitions); got != int64(len(tc.diff.Added)) {
		t.Errorf("migrated partitions = %d, want %d", got, len(tc.diff.Added))
	}
	if got := snap.Counter(MetricMigratedBytes); got <= 0 {
		t.Error("migration must account shipped bytes")
	}
	// The old epoch is retired: every worker serves only epoch 1.
	for w, wk := range tc.workers {
		for _, e := range wk.Epochs() {
			if e != 1 {
				t.Errorf("worker %d still holds epoch %d", w, e)
			}
		}
	}
}

func TestMigrationValidationRejects(t *testing.T) {
	tc := buildMigFixture(t, 2, nil, fastMigConfig())
	base := tc.mig

	cases := []struct {
		name   string
		mutate func(m *Migration)
	}{
		{"wrong-epoch", func(m *Migration) { m.Epoch = 2 }},
		{"nil-router", func(m *Migration) { m.Router = nil }},
		{"duplicate-entry", func(m *Migration) { m.Entries = append(m.Entries, m.Entries[0]) }},
		{"missing-entry", func(m *Migration) { m.Entries = m.Entries[1:] }},
		{"unknown-partition", func(m *Migration) {
			m.Entries = append([]MigrationEntry(nil), m.Entries...)
			m.Entries[0].ID = layout.ID(len(tc.next.Parts))
			// Keep the accounting otherwise plausible: drop the collision.
		}},
		{"no-workers", func(m *Migration) {
			m.Entries = append([]MigrationEntry(nil), m.Entries...)
			m.Entries[0].Workers = nil
		}},
		{"worker-out-of-range", func(m *Migration) {
			m.Entries = append([]MigrationEntry(nil), m.Entries...)
			m.Entries[0].Workers = []int{99}
		}},
		{"alias-disagrees-with-renamed", func(m *Migration) {
			m.Entries = append([]MigrationEntry(nil), m.Entries...)
			for i := range m.Entries {
				if m.Entries[i].ReuseID >= 0 {
					m.Entries[i].ReuseID++
					return
				}
			}
			t.Fatal("no alias entry in fixture")
		}},
		{"bad-placement", func(m *Migration) { m.Replicas = placement.Replicated{} }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := *base
			m.Entries = base.Entries
			m.Replicas = base.Replicas
			c.mutate(&m)
			if err := tc.master.ApplyMigration(context.Background(), &m); err == nil {
				t.Fatal("invalid migration must be rejected")
			}
			if got := tc.master.Epoch(); got != 0 {
				t.Fatalf("rejected migration moved the epoch to %d", got)
			}
		})
	}
	// The untouched plan still applies after all those rejections.
	if err := tc.master.ApplyMigration(context.Background(), base); err != nil {
		t.Fatalf("valid migration after rejections: %v", err)
	}
	tc.checkQueries(t)
}

func TestMigrationSweepsCachesPerPartition(t *testing.T) {
	tc := buildMigFixture(t, 2, nil, fastMigConfig())
	dom := tc.data.Domain()
	names := tc.data.Names()
	w0, h0 := dom.Hi[0]-dom.Lo[0], dom.Hi[1]-dom.Lo[1]
	// leftSQL touches only surviving partitions; rightSQL the rebuilt region.
	leftB := geom.Box{Lo: geom.Point{dom.Lo[0], dom.Lo[1]}, Hi: geom.Point{dom.Lo[0] + 0.2*w0, dom.Lo[1] + 0.8*h0}}
	rightB := geom.Box{Lo: geom.Point{dom.Lo[0] + 0.7*w0, dom.Lo[1] + 0.1*h0}, Hi: geom.Point{dom.Lo[0] + 0.95*w0, dom.Lo[1] + 0.9*h0}}
	leftSQL, rightSQL := migSQL(names, leftB), migSQL(names, rightB)

	for _, sql := range []string{leftSQL, rightSQL} {
		if _, err := tc.master.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	if err := tc.master.ApplyMigration(context.Background(), tc.mig); err != nil {
		t.Fatal(err)
	}
	snap := tc.reg.Snapshot()
	if got := snap.Counter(MetricCacheRemapped); got < 1 {
		t.Errorf("cache entries remapped = %d, want >= 1 (left query survives)", got)
	}
	if got := snap.Counter(MetricCacheSwept); got < 1 {
		t.Errorf("cache entries swept = %d, want >= 1 (right query dropped)", got)
	}

	// The remapped plan must serve a result-cache hit with exact rows; the
	// rebuilt region re-routes and stays exact.
	before := snap.Counter(MetricResultCacheHits)
	for _, sql := range []string{leftSQL, rightSQL} {
		resp, err := tc.master.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		b := leftB
		if sql == rightSQL {
			b = rightB
		}
		if want := tc.data.CountInBox(b, nil); resp.Rows != want {
			t.Fatalf("%q after cutover: %d rows, want %d", sql, resp.Rows, want)
		}
	}
	if got := tc.reg.Snapshot().Counter(MetricResultCacheHits); got != before+1 {
		t.Errorf("result cache hits after cutover = %d, want %d (translated entry only)", got, before+1)
	}
}

func TestMigrationAbortsOnWorkerRefusal(t *testing.T) {
	tc := buildMigFixture(t, 2, nil, fastMigConfig())
	// Corrupt one payload's row claim: the worker decodes, refuses, and the
	// refusal is not retried.
	bad := *tc.mig
	bad.Entries = append([]MigrationEntry(nil), tc.mig.Entries...)
	for i := range bad.Entries {
		if bad.Entries[i].ReuseID < 0 {
			bad.Entries[i].Rows++
			break
		}
	}
	if err := tc.master.ApplyMigration(context.Background(), &bad); err == nil {
		t.Fatal("migration with a lying payload must abort")
	}
	if got := tc.master.Epoch(); got != 0 {
		t.Fatalf("aborted migration moved the epoch to %d", got)
	}
	if got := tc.reg.Snapshot().Counter(MetricMigrationsAborted); got != 1 {
		t.Errorf("aborted migrations = %d, want 1", got)
	}
	// No partial cutover: no worker retains any trace of epoch 1.
	for w, wk := range tc.workers {
		for _, e := range wk.Epochs() {
			if e == 1 {
				t.Errorf("worker %d leaked the aborted epoch", w)
			}
		}
	}
	tc.checkQueries(t)

	// The fixed plan still applies afterwards.
	if err := tc.master.ApplyMigration(context.Background(), tc.mig); err != nil {
		t.Fatalf("apply after abort: %v", err)
	}
	tc.checkQueries(t)
}

func TestMigrationRejectsConcurrentMigration(t *testing.T) {
	tc := buildMigFixture(t, 2, nil, fastMigConfig())
	tc.master.mig.Store(&activeMigration{view: &routeView{epoch: 1}})
	if err := tc.master.ApplyMigration(context.Background(), tc.mig); err == nil {
		t.Fatal("second concurrent migration must be rejected")
	}
	tc.master.mig.Store(nil)
	if err := tc.master.ApplyMigration(context.Background(), tc.mig); err != nil {
		t.Fatalf("apply after the stale migration cleared: %v", err)
	}
}

// TestChaosMigrationWorkerDown: a worker that must receive a payload dies
// before the install. The migration aborts after bounded retries, the old
// placement keeps serving exactly, and no worker holds a partial next epoch.
func TestChaosMigrationWorkerDown(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tc := buildMigFixture(t, 2, nil, fastChaosConfig(seed))
			// Kill the worker hosting the first payload partition.
			var victim int
			for _, e := range tc.mig.Entries {
				if e.ReuseID < 0 {
					victim = e.Workers[0]
					break
				}
			}
			tc.workers[victim].Close()
			if err := tc.master.ApplyMigration(context.Background(), tc.mig); err == nil {
				t.Fatal("migration must abort when an install target is down")
			}
			if got := tc.master.Epoch(); got != 0 {
				t.Fatalf("epoch = %d after abort, want 0", got)
			}
			if got := tc.reg.Snapshot().Counter(MetricMigrationsAborted); got != 1 {
				t.Errorf("aborted migrations = %d, want 1", got)
			}
			for w, wk := range tc.workers {
				if w == victim {
					continue
				}
				for _, e := range wk.Epochs() {
					if e == 1 {
						t.Errorf("worker %d holds the aborted epoch", w)
					}
				}
			}
			// The surviving worker keeps serving its share of the old
			// placement: a query strictly inside one of its partitions (so no
			// shared boundary routes to the dead worker) stays exact.
			names := tc.data.Names()
			for _, p := range tc.old.Parts {
				if tc.rep[p.ID][0] == victim {
					continue
				}
				m := p.Desc.MBR()
				b := geom.Box{Lo: geom.Point{}, Hi: geom.Point{}}
				for d := 0; d < m.Dims(); d++ {
					eps := (m.Hi[d] - m.Lo[d]) / 100
					b.Lo = append(b.Lo, m.Lo[d]+eps)
					b.Hi = append(b.Hi, m.Hi[d]-eps)
				}
				sql := migSQL(names, b)
				resp, err := tc.master.Query(sql)
				if err != nil {
					t.Fatalf("query on surviving worker: %v", err)
				}
				if want := tc.data.CountInBox(b, nil); resp.Rows != want {
					t.Fatalf("partition %d query: %d rows, want %d", p.ID, resp.Rows, want)
				}
			}
		})
	}
}

// TestChaosMigrationCorruptedStream: the install stream to one worker is
// corrupted by faultnet on the first connection. Depending on where the
// corruption lands the admin call either recovers on retry (migration
// completes) or exhausts its attempts (migration aborts) — both outcomes
// must leave the cluster consistent: served queries stay exact and the
// epoch is either fully cut over or fully rolled back.
func TestChaosMigrationCorruptedStream(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// With 2 workers both rebuilt partitions ship payloads, one per
			// worker — corrupting worker 0's stream always hits an install.
			tc := buildMigFixture(t, 2, map[int]faultnet.Script{
				0: {Seed: seed, Rules: []faultnet.Rule{
					{Conn: 0, Op: faultnet.OnWrite, Call: 0, Action: faultnet.Corrupt, Bytes: 4},
				}},
			}, fastChaosConfig(seed))
			err := tc.master.ApplyMigration(context.Background(), tc.mig)
			snap := tc.reg.Snapshot()
			if err != nil {
				// Aborted: full rollback, old epoch serving.
				if got := tc.master.Epoch(); got != 0 {
					t.Fatalf("epoch = %d after abort, want 0", got)
				}
				if got := snap.Counter(MetricMigrationsAborted); got != 1 {
					t.Errorf("aborted migrations = %d, want 1", got)
				}
				for w, wk := range tc.workers {
					for _, e := range wk.Epochs() {
						if e == 1 {
							t.Errorf("worker %d holds the aborted epoch", w)
						}
					}
				}
			} else {
				// Recovered: full cutover.
				if got := tc.master.Epoch(); got != 1 {
					t.Fatalf("epoch = %d after recovery, want 1", got)
				}
				if got := snap.Counter(MetricMigrations); got != 1 {
					t.Errorf("migrations = %d, want 1", got)
				}
			}
			tc.checkQueries(t)
		})
	}
}
