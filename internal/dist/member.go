package dist

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"paw/internal/layout"
	"paw/internal/membership"
)

// Elastic cluster membership (DESIGN.md §15): workers join a running master
// with a checksum-validated handshake, heartbeat through a suspect→dead
// failure detector, and leave gracefully after their data is drained away.
// The state machine itself lives in internal/membership (pure, clock-as-
// argument); this file owns the wire protocol and the glue to the fleet.
//
// Member traffic rides the client port on both transports: the binary frame
// protocol carries dedicated msgMemberReq/msgMemberResp frames, and the
// legacy gob session loop carries the same messages inside the query
// exchange (QueryRequest.Member / QueryResponse.Member) because its
// homogeneous stream cannot introduce a second message type.

// Member operations carried by MemberRequest.
const (
	// MemberJoin registers a worker: a fresh address gets a new slot, a
	// known address (or explicit index) revives its slot. The request's
	// checksum of hosted partition IDs must match what the master's
	// placement expects for that slot, or the join is rejected — the
	// defence against master and worker deriving different placements.
	MemberJoin = 1
	// MemberBeat is a heartbeat; it revives Suspect/Dead members.
	MemberBeat = 2
	// MemberLeave starts a graceful leave: the master drains the worker's
	// partitions onto the remaining members (ignoring the move budget) and
	// answers only when the worker holds nothing the placement needs.
	MemberLeave = 3
)

// MemberRequest is the worker-to-master membership message.
type MemberRequest struct {
	Op int
	// Index is the worker's slot, or -1 to resolve by address (fresh join).
	Index int
	// Addr is the worker's advertised scan-serving address (join only).
	Addr string
	// Sum is the order-independent digest of the partition IDs the worker
	// hosts (membership.Checksum; join only).
	Sum uint64
}

// MemberResponse answers a membership operation. Err "" means success.
type MemberResponse struct {
	// Index is the slot assigned to (or confirmed for) the worker.
	Index int
	// Epoch is the master's current layout epoch.
	Epoch uint64
	// Version is the membership view version after the operation.
	Version uint64
	Err     string
}

// MembershipConfig tunes the master's membership subsystem.
type MembershipConfig struct {
	// Detector is the heartbeat failure detector's thresholds
	// (suspect/dead); zero fields use membership defaults.
	Detector membership.Config
	// TickEvery is the failure-detector tick period once the master starts
	// (0: no background ticking — tests drive MembershipTick explicitly).
	TickEvery time.Duration
	// Replicas is the copy count the ring placement maintains (default:
	// the replication degree of the placement the master booted with).
	Replicas int
	// VNodes is the virtual-node count per member on the consistent-hash
	// ring (0: membership.DefaultVNodes).
	VNodes int
	// AutoRebalance lets ticks trigger rebalances when the placement
	// references a dead worker or a live member hosts nothing. Flapping
	// Alive↔Suspect members never trigger one: Suspect members keep their
	// placement, so the trigger condition is unchanged by a flap.
	AutoRebalance bool
	// RebalanceCooldown is the minimum spacing between automatic
	// rebalances (default 5s).
	RebalanceCooldown time.Duration
	// MaxMoveBytes bounds the payload bytes one rebalance round ships
	// (0: unbounded). Moves beyond the budget defer to later rounds,
	// hottest partitions first; moves that restore a partition's last
	// live copy are exempt. Graceful-leave drains ignore the budget.
	MaxMoveBytes int64
	// PayloadSource, when set, rebuilds a partition's encoded payload from
	// the master's own copy of the dataset — the fallback when no reachable
	// worker holds the partition (e.g. every replica crashed).
	PayloadSource func(layout.ID) ([]byte, int64, error)
}

func (c MembershipConfig) normalized(curReplicas int) MembershipConfig {
	c.Detector = c.Detector.Normalized()
	if c.Replicas <= 0 {
		c.Replicas = curReplicas
	}
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.VNodes <= 0 {
		c.VNodes = membership.DefaultVNodes
	}
	if c.RebalanceCooldown <= 0 {
		c.RebalanceCooldown = 5 * time.Second
	}
	return c
}

// membershipState is the master-side membership subsystem.
type membershipState struct {
	cfg     MembershipConfig
	tracker *membership.Tracker

	// joinMu serialises join handshakes so the tracker's slot indices and
	// the fleet's slots grow in lockstep.
	joinMu sync.Mutex
	// rebalanceMu serialises rebalances; the auto path TryLocks and skips.
	rebalanceMu sync.Mutex

	mu            sync.Mutex
	lastRebalance time.Time
	// deferredWork marks that the last rebalance left budget-deferred
	// moves, so the auto path keeps going even though the trigger
	// conditions look satisfied.
	deferredWork bool

	ctx      context.Context
	cancel   context.CancelFunc
	stop     chan struct{}
	stopOnce sync.Once
}

func (ms *membershipState) shutdown() {
	ms.stopOnce.Do(func() {
		close(ms.stop)
		ms.cancel()
	})
}

// EnableMembership switches the master to elastic membership: the current
// fleet seeds the tracker as Alive members, and from here on workers may
// join, leave and be declared dead. Must be called before Start; the
// background tick loop (cfg.TickEvery > 0) launches with Start and stops
// with Close.
func (m *Master) EnableMembership(cfg MembershipConfig) error {
	curReplicas := 1
	for _, ws := range m.Placement() {
		if len(ws) > curReplicas {
			curReplicas = len(ws)
		}
	}
	cfg = cfg.normalized(curReplicas)
	ctx, cancel := context.WithCancel(context.Background())
	ms := &membershipState{
		cfg:     cfg,
		tracker: membership.NewTracker(cfg.Detector, m.fleet.Load().addrs, time.Now()),
		ctx:     ctx,
		cancel:  cancel,
		stop:    make(chan struct{}),
	}
	if !m.member.CompareAndSwap(nil, ms) {
		cancel()
		return fmt.Errorf("dist: membership is already enabled")
	}
	return nil
}

// MembershipView snapshots the current membership (ok=false when membership
// is not enabled). Diagnostic/test surface.
func (m *Master) MembershipView() (membership.View, bool) {
	ms := m.member.Load()
	if ms == nil {
		return membership.View{}, false
	}
	return ms.tracker.View(), true
}

// MembershipTick advances the failure detector to now: silent members go
// Suspect then Dead, dead workers are deprioritised on the scatter path, and
// — with AutoRebalance — a rebalance is kicked off when the placement needs
// one. Exported so deterministic tests drive the clock explicitly; the
// background loop calls it with the wall clock.
func (m *Master) MembershipTick(now time.Time) []membership.Transition {
	ms := m.member.Load()
	if ms == nil {
		return nil
	}
	trs := ms.tracker.Tick(now)
	f := m.fleet.Load()
	for _, tr := range trs {
		if tr.Index >= len(f.down) {
			continue
		}
		switch tr.To {
		case membership.Dead:
			f.down[tr.Index].Store(true)
			slog.Warn("worker declared dead", "worker", tr.Index, "addr", tr.Addr)
		case membership.Alive:
			f.down[tr.Index].Store(false)
		}
	}
	if len(trs) > 0 {
		m.updateMemberGauges(ms)
	}
	if ms.cfg.AutoRebalance {
		m.maybeAutoRebalance(ms, now)
	}
	return trs
}

func (m *Master) memberTickLoop(ms *membershipState) {
	defer m.wg.Done()
	t := time.NewTicker(ms.cfg.TickEvery)
	defer t.Stop()
	for {
		select {
		case <-ms.stop:
			return
		case now := <-t.C:
			m.MembershipTick(now)
		}
	}
}

func (m *Master) updateMemberGauges(ms *membershipState) {
	var alive, suspect, dead int64
	for _, mem := range ms.tracker.View().Members {
		switch mem.State {
		case membership.Alive:
			alive++
		case membership.Suspect:
			suspect++
		case membership.Dead:
			dead++
		}
	}
	m.m.membersAlive.Set(alive)
	m.m.membersSuspect.Set(suspect)
	m.m.membersDead.Set(dead)
}

// needsRebalance reports whether the placement and the membership view
// disagree: a partition is placed on a non-placeable (dead/left/draining)
// worker, or a placeable member hosts nothing. Both conditions are stable
// under Alive↔Suspect flapping, which is the no-thrash property.
func (m *Master) needsRebalance(ms *membershipState) bool {
	view := ms.tracker.View()
	placeable := make(map[int]bool)
	for _, w := range view.Placeable() {
		placeable[w] = true
	}
	if len(placeable) == 0 {
		return false // nothing to rebalance onto
	}
	hosted := make(map[int]bool)
	for _, ws := range m.Placement() {
		for _, w := range ws {
			if !placeable[w] {
				return true
			}
			hosted[w] = true
		}
	}
	for w := range placeable {
		if !hosted[w] {
			return true
		}
	}
	return false
}

func (m *Master) maybeAutoRebalance(ms *membershipState, now time.Time) {
	ms.mu.Lock()
	cooling := now.Sub(ms.lastRebalance) < ms.cfg.RebalanceCooldown
	pending := ms.deferredWork
	ms.mu.Unlock()
	if cooling {
		return
	}
	if !pending && !m.needsRebalance(ms) {
		return
	}
	if !ms.rebalanceMu.TryLock() {
		return // one is already running
	}
	ms.rebalanceMu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		if _, err := m.Rebalance(ms.ctx, false); err != nil {
			slog.Warn("auto-rebalance failed", "err", err)
		}
	}()
}

// handleMember executes one membership operation from either transport.
func (m *Master) handleMember(req *MemberRequest) MemberResponse {
	ms := m.member.Load()
	if ms == nil {
		return MemberResponse{Index: -1, Err: "dist: membership is not enabled on this master"}
	}
	now := time.Now()
	switch req.Op {
	case MemberJoin:
		return m.handleJoin(ms, req, now)
	case MemberBeat:
		tr, err := ms.tracker.Beat(req.Index, now)
		if err != nil {
			return MemberResponse{Index: req.Index, Err: err.Error()}
		}
		if tr.From != tr.To && tr.To == membership.Alive {
			f := m.fleet.Load()
			if req.Index < len(f.down) {
				f.down[req.Index].Store(false)
			}
			m.updateMemberGauges(ms)
		}
		return MemberResponse{Index: req.Index, Epoch: m.Epoch(), Version: ms.tracker.View().Version}
	case MemberLeave:
		return m.handleLeave(ms, req, now)
	default:
		return MemberResponse{Index: -1, Err: fmt.Sprintf("dist: unknown member op %d", req.Op)}
	}
}

func (m *Master) handleJoin(ms *membershipState, req *MemberRequest, now time.Time) MemberResponse {
	if req.Addr == "" && req.Index < 0 {
		m.m.joinRejects.Inc()
		return MemberResponse{Index: -1, Err: "dist: join needs an advertised address or an explicit index"}
	}
	ms.joinMu.Lock()
	defer ms.joinMu.Unlock()
	// Resolve the slot this join lands on so the hosted-partition checksum
	// can be validated BEFORE membership mutates: a worker whose partition
	// set disagrees with the master's placement would silently miss rows on
	// every scan, which is exactly the failure mode the handshake exists to
	// catch.
	idx := req.Index
	if idx < 0 {
		for _, mem := range ms.tracker.View().Members {
			if mem.Addr == req.Addr {
				idx = mem.Index
				break
			}
		}
	}
	expected := membership.Checksum(nil)
	if idx >= 0 {
		expected = membership.Checksum(membership.HostedIDs(m.Placement(), idx))
	}
	if req.Sum != expected {
		m.m.joinRejects.Inc()
		slot := "a fresh slot"
		if idx >= 0 {
			slot = fmt.Sprintf("slot %d", idx)
		}
		return MemberResponse{Index: -1, Err: fmt.Sprintf(
			"dist: join rejected for %s: worker's hosted-partition digest %016x does not match the %016x the master's placement expects — master and worker derived different placements (check that -placement, -workers, -replicas and the layout flags agree on both sides)",
			slot, req.Sum, expected)}
	}
	mem, tr, err := ms.tracker.Join(idx, req.Addr, now)
	if err != nil {
		m.m.joinRejects.Inc()
		return MemberResponse{Index: -1, Err: err.Error()}
	}
	if mem.Index >= m.NumWorkers() {
		m.addWorker(mem.Addr)
	} else if req.Addr != "" {
		m.setWorkerAddr(mem.Index, req.Addr)
	}
	f := m.fleet.Load()
	if mem.Index < len(f.down) {
		f.down[mem.Index].Store(false)
	}
	m.m.memberJoins.Inc()
	m.updateMemberGauges(ms)
	slog.Info("worker joined", "worker", mem.Index, "addr", mem.Addr, "from", tr.From.String())
	return MemberResponse{Index: mem.Index, Epoch: m.Epoch(), Version: ms.tracker.View().Version}
}

func (m *Master) handleLeave(ms *membershipState, req *MemberRequest, now time.Time) MemberResponse {
	if _, err := ms.tracker.Leave(req.Index, now); err != nil {
		return MemberResponse{Index: req.Index, Err: err.Error()}
	}
	m.m.memberLeaves.Inc()
	m.updateMemberGauges(ms)
	// Drain synchronously, ignoring the move budget: a deferred move would
	// strand data on the departing worker. The leave RPC answers only when
	// the worker holds nothing the placement needs — the worker can then
	// shut down without any query ever missing rows.
	if _, err := m.Rebalance(ms.ctx, true); err != nil {
		// The worker must NOT exit; revive it so it keeps serving.
		ms.tracker.Revive(req.Index, time.Now())
		m.updateMemberGauges(ms)
		return MemberResponse{Index: req.Index, Err: fmt.Sprintf("dist: drain failed, leave aborted: %v", err)}
	}
	ms.tracker.Depart(req.Index, time.Now())
	f := m.fleet.Load()
	if req.Index < len(f.down) {
		f.down[req.Index].Store(true)
	}
	m.updateMemberGauges(ms)
	slog.Info("worker left gracefully", "worker", req.Index)
	return MemberResponse{Index: req.Index, Epoch: m.Epoch(), Version: ms.tracker.View().Version}
}
