package dist

import (
	"encoding/binary"
	"fmt"
	"math"

	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/trace"
)

// Binary codecs for the wire messages carried by the serve frame protocol
// (DESIGN.md §12). The format is positional little-endian — no field tags,
// no reflection — because both ends are always the same build of this
// repository; cross-version compatibility is the gob oracle path's job.
//
// The methods are deliberately named AppendWire/UnmarshalWire, NOT
// AppendBinary/UnmarshalBinary: the standard encoding.BinaryUnmarshaler
// method names would hijack gob's encoding of the same structs on the
// legacy path and break its wire format.
//
// Frame type bytes. Requests and responses use distinct types so a
// mismatched reply is detected at the protocol layer, not by misdecoding.
const (
	msgScanReq byte = iota + 1
	msgScanResp
	msgQueryReq
	msgQueryResp
	msgAdminReq
	msgAdminResp
	msgMemberReq
	msgMemberResp
)

// Error codes carried in QueryResponse.ErrCode alongside Err. Code 0 with a
// non-empty Err is a generic failure; typed codes let clients react without
// string matching.
const (
	// ErrCodeNone marks a clean response.
	ErrCodeNone = 0
	// ErrCodeOverloaded marks an admission-control rejection: the master shed
	// the query because the tier is saturated and the client's fair-queue
	// slot count is exhausted. Clients map it to serve.ErrOverloaded.
	ErrCodeOverloaded = 1
)

// appendString appends a uint32-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// appendBox appends a query box: uint16 dims then lo and hi coordinates.
func appendBox(buf []byte, b geom.Box) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(b.Lo)))
	for _, v := range b.Lo {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range b.Hi {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// reader is a bounds-checked little-endian cursor over one frame payload.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("dist: truncated message (offset %d of %d)", r.off, len(r.buf))
	}
}

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) box() geom.Box {
	d := int(r.u16())
	if r.err != nil || r.off+16*d > len(r.buf) {
		r.fail()
		return geom.Box{}
	}
	b := geom.Box{Lo: make(geom.Point, d), Hi: make(geom.Point, d)}
	for i := 0; i < d; i++ {
		b.Lo[i] = r.f64()
	}
	for i := 0; i < d; i++ {
		b.Hi[i] = r.f64()
	}
	return b
}

func (r *reader) ids() []layout.ID {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+8*n > len(r.buf) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]layout.ID, n)
	for i := range out {
		out[i] = layout.ID(r.i64())
	}
	return out
}

// appendSpans appends a trace-span list: uint32 count, then per span the
// IDs, name, clock fields and a uint16-counted attr list of (key byte,
// int64 value) pairs.
func appendSpans(buf []byte, spans []trace.Span) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(spans)))
	for i := range spans {
		sp := &spans[i]
		buf = binary.LittleEndian.AppendUint32(buf, sp.ID)
		buf = binary.LittleEndian.AppendUint32(buf, sp.Parent)
		buf = appendString(buf, sp.Name)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(sp.Start))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(sp.Dur))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(sp.Attrs)))
		for _, a := range sp.Attrs {
			buf = append(buf, byte(a.K))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(a.V))
		}
	}
	return buf
}

// spans decodes a trace-span list appended by appendSpans.
func (r *reader) spans() []trace.Span {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.buf)-r.off {
		// Each span costs ≥ 26 bytes; the count bound rejects hostile
		// lengths before allocating.
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]trace.Span, 0, n)
	for i := 0; i < n; i++ {
		var sp trace.Span
		sp.ID = r.u32()
		sp.Parent = r.u32()
		sp.Name = r.str()
		sp.Start = r.i64()
		sp.Dur = r.i64()
		na := int(r.u16())
		if r.err != nil || na*9 > len(r.buf)-r.off {
			r.fail()
			return nil
		}
		if na > 0 {
			sp.Attrs = make([]trace.Attr, na)
			for j := range sp.Attrs {
				sp.Attrs[j].K = trace.Key(r.u8())
				sp.Attrs[j].V = r.i64()
			}
		}
		out = append(out, sp)
	}
	if r.err != nil {
		return nil
	}
	return out
}

// AppendWire encodes the request for the frame protocol.
func (q *ScanRequest) AppendWire(buf []byte) []byte {
	buf = appendBox(buf, q.Query)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(q.IDs)))
	for _, id := range q.IDs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(id)))
	}
	buf = binary.LittleEndian.AppendUint64(buf, q.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(q.Deadline))
	buf = binary.LittleEndian.AppendUint64(buf, q.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, q.TraceID)
	return buf
}

// UnmarshalWire decodes an encoded ScanRequest.
func (q *ScanRequest) UnmarshalWire(data []byte) error {
	r := reader{buf: data}
	q.Query = r.box()
	q.IDs = r.ids()
	q.Seq = r.u64()
	q.Deadline = r.i64()
	q.Epoch = r.u64()
	q.TraceID = r.u64()
	return r.err
}

// AppendWire encodes the admin request for the frame protocol.
func (q *AdminRequest) AppendWire(buf []byte) []byte {
	buf = append(buf, byte(q.Op))
	buf = binary.LittleEndian.AppendUint64(buf, q.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(q.ID)))
	buf = binary.LittleEndian.AppendUint64(buf, q.ReuseEpoch)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(q.ReuseID)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(q.Payload)))
	buf = append(buf, q.Payload...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(q.Rows))
	buf = binary.LittleEndian.AppendUint64(buf, q.Seq)
	return buf
}

// UnmarshalWire decodes an encoded AdminRequest.
func (q *AdminRequest) UnmarshalWire(data []byte) error {
	r := reader{buf: data}
	q.Op = int(r.u8())
	q.Epoch = r.u64()
	q.ID = layout.ID(r.i64())
	q.ReuseEpoch = r.u64()
	q.ReuseID = layout.ID(r.i64())
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return r.err
	}
	q.Payload = append([]byte(nil), r.buf[r.off:r.off+n]...)
	r.off += n
	q.Rows = r.i64()
	q.Seq = r.u64()
	return r.err
}

// AppendWire encodes the admin response for the frame protocol.
func (s *AdminResponse) AppendWire(buf []byte) []byte {
	buf = appendString(buf, s.Err)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Payload)))
	buf = append(buf, s.Payload...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Rows))
	return buf
}

// UnmarshalWire decodes an encoded AdminResponse.
func (s *AdminResponse) UnmarshalWire(data []byte) error {
	r := reader{buf: data}
	s.Err = r.str()
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return r.err
	}
	s.Payload = nil
	if n > 0 {
		s.Payload = append([]byte(nil), r.buf[r.off:r.off+n]...)
	}
	r.off += n
	s.Rows = r.i64()
	return r.err
}

// AppendWire encodes the membership request for the frame protocol.
func (q *MemberRequest) AppendWire(buf []byte) []byte {
	buf = append(buf, byte(q.Op))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(q.Index)))
	buf = appendString(buf, q.Addr)
	buf = binary.LittleEndian.AppendUint64(buf, q.Sum)
	return buf
}

// UnmarshalWire decodes an encoded MemberRequest.
func (q *MemberRequest) UnmarshalWire(data []byte) error {
	r := reader{buf: data}
	q.Op = int(r.u8())
	q.Index = int(r.i64())
	q.Addr = r.str()
	q.Sum = r.u64()
	return r.err
}

// AppendWire encodes the membership response for the frame protocol.
func (s *MemberResponse) AppendWire(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(s.Index)))
	buf = binary.LittleEndian.AppendUint64(buf, s.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, s.Version)
	return appendString(buf, s.Err)
}

// UnmarshalWire decodes an encoded MemberResponse.
func (s *MemberResponse) UnmarshalWire(data []byte) error {
	r := reader{buf: data}
	s.Index = int(r.i64())
	s.Epoch = r.u64()
	s.Version = r.u64()
	s.Err = r.str()
	return r.err
}

// AppendWire encodes the response for the frame protocol.
func (s *ScanResponse) AppendWire(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(s.Rows)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.BytesRead))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.BytesSkipped))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(s.GroupsRead)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(s.GroupsSkipped)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(s.GroupsZoneSkipped)))
	buf = appendString(buf, s.Err)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.FailedPartition))
	buf = appendSpans(buf, s.Spans)
	return buf
}

// UnmarshalWire decodes an encoded ScanResponse.
func (s *ScanResponse) UnmarshalWire(data []byte) error {
	r := reader{buf: data}
	s.Rows = int(r.i64())
	s.BytesRead = r.i64()
	s.BytesSkipped = r.i64()
	s.GroupsRead = int(r.i64())
	s.GroupsSkipped = int(r.i64())
	s.GroupsZoneSkipped = int(r.i64())
	s.Err = r.str()
	s.FailedPartition = r.i64()
	s.Spans = r.spans()
	return r.err
}

// AppendWire encodes the request for the frame protocol.
func (q *QueryRequest) AppendWire(buf []byte) []byte {
	buf = appendString(buf, q.SQL)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(q.TimeoutMillis))
	var flags byte
	if q.AllowPartial {
		flags |= 1
	}
	if q.Trace {
		flags |= 2
	}
	return append(buf, flags)
}

// UnmarshalWire decodes an encoded QueryRequest.
func (q *QueryRequest) UnmarshalWire(data []byte) error {
	r := reader{buf: data}
	q.SQL = r.str()
	q.TimeoutMillis = r.i64()
	flags := r.u8()
	q.AllowPartial = flags&1 != 0
	q.Trace = flags&2 != 0
	return r.err
}

// AppendWire encodes the response for the frame protocol.
func (q *QueryResponse) AppendWire(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(q.Rows)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(q.BytesScanned))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(q.BytesSkipped))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(q.PartitionsScanned)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(q.SubQueries)))
	buf = appendString(buf, q.Err)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(q.ErrCode))
	var flags byte
	if q.Partial {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(q.FailedPartitions)))
	for _, id := range q.FailedPartitions {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(id)))
	}
	buf = binary.LittleEndian.AppendUint64(buf, q.TraceID)
	buf = appendSpans(buf, q.Spans)
	return buf
}

// UnmarshalWire decodes an encoded QueryResponse.
func (q *QueryResponse) UnmarshalWire(data []byte) error {
	r := reader{buf: data}
	q.Rows = int(r.i64())
	q.BytesScanned = r.i64()
	q.BytesSkipped = r.i64()
	q.PartitionsScanned = int(r.i64())
	q.SubQueries = int(r.i64())
	q.Err = r.str()
	q.ErrCode = int(r.u32())
	q.Partial = r.u8()&1 != 0
	q.FailedPartitions = r.ids()
	q.TraceID = r.u64()
	q.Spans = r.spans()
	return r.err
}
