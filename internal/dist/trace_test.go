package dist

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"paw/internal/blockstore"
	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/faultnet"
	"paw/internal/layout"
	"paw/internal/placement"
	"paw/internal/router"
	"paw/internal/trace"
	"paw/internal/workload"
)

// tracedConfig is the default test policy for the tracing suite: the result
// cache is disabled so repeated statements re-execute — the differential
// test compares computed responses, not cached copies.
func tracedConfig() Config {
	cfg := DefaultConfig()
	cfg.ResultCacheSize = 0
	return cfg
}

// startTracedCluster is startCluster with a master configuration and an
// optional tracer installed before the master starts serving.
func startTracedCluster(t *testing.T, nWorkers int, cfg Config, tracer *trace.Tracer) *testCluster {
	t.Helper()
	data := dataset.TPCHLike(20000, 1)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(25, 2))
	sample := data.Sample(2000, 3)
	l := core.Build(data, sample, dom, hist, core.Params{MinRows: 5, Delta: 0})
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 512})

	place := placement.RoundRobin(l, nWorkers)
	perWorker := make([][]layout.ID, nWorkers)
	for id, w := range place {
		perWorker[w] = append(perWorker[w], id)
	}
	tc := &testCluster{data: data, layout: l}
	addrs := make([]string, nWorkers)
	for w := 0; w < nWorkers; w++ {
		wk := NewWorker(store, perWorker[w])
		addr, err := wk.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[w] = addr
		tc.workers = append(tc.workers, wk)
	}
	rm, err := router.NewMaster(l, data.Names())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaster(rm, addrs, place)
	if err != nil {
		t.Fatal(err)
	}
	m.Configure(cfg)
	m.SetTracer(tracer)
	maddr, err := m.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tc.master = m
	tc.maddr = maddr
	cl, err := Dial(maddr)
	if err != nil {
		t.Fatal(err)
	}
	tc.client = cl
	t.Cleanup(func() {
		cl.Close()
		m.Close()
		for _, wk := range tc.workers {
			wk.Close()
		}
	})
	return tc
}

var tracedStatements = []string{
	"SELECT * FROM t WHERE l_quantity >= 10 AND l_quantity <= 20",
	"SELECT * FROM t WHERE l_shipdate BETWEEN 100 AND 800",
	"SELECT * FROM t WHERE l_quantity <= 5 OR l_quantity >= 45",
	"SELECT * FROM t",
}

// TestTracedVsUntracedIdentical is the differential oracle for the tracing
// layer: two identically-built clusters, one tracing every query, must
// produce deeply equal responses over both transports — spans never leak
// into untraced responses, and instrumentation never perturbs results.
func TestTracedVsUntracedIdentical(t *testing.T) {
	plain := startTracedCluster(t, 3, tracedConfig(), nil)
	tracer := trace.New(trace.Config{SampleEvery: 1})
	traced := startTracedCluster(t, 3, tracedConfig(), tracer)

	for _, sql := range tracedStatements {
		want, err := plain.client.Query(sql)
		if err != nil {
			t.Fatalf("%q untraced: %v", sql, err)
		}
		got, err := traced.client.Query(sql)
		if err != nil {
			t.Fatalf("%q traced: %v", sql, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q: traced response diverges\n traced: %+v\nuntraced: %+v", sql, got, want)
		}
		if got.TraceID != 0 || got.Spans != nil {
			t.Errorf("%q: untraced request carried trace payload: id=%d spans=%d", sql, got.TraceID, len(got.Spans))
		}
	}
	// The traced master really did sample: the test is not vacuous.
	if n := len(tracer.Traces()); n != len(tracedStatements) {
		t.Fatalf("tracer retained %d traces, want %d", n, len(tracedStatements))
	}

	// Same property over the multiplexed binary transport.
	mp, err := DialMux(plain.maddr)
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	mt, err := DialMux(traced.maddr)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	for _, sql := range tracedStatements {
		want, err := mp.Query(sql)
		if err != nil {
			t.Fatalf("%q untraced mux: %v", sql, err)
		}
		got, err := mt.Query(sql)
		if err != nil {
			t.Fatalf("%q traced mux: %v", sql, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q: traced mux response diverges\n traced: %+v\nuntraced: %+v", sql, got, want)
		}
	}
}

// sumScanSpans sums rows/bytes attributes over the per-partition scan spans.
func sumScanSpans(spans []trace.Span) (scans int, rows, bytesRead, bytesSkipped int64) {
	for _, sp := range spans {
		if sp.Name != "scan" {
			continue
		}
		scans++
		for _, a := range sp.Attrs {
			switch a.K {
			case trace.KeyRows:
				rows += a.V
			case trace.KeyBytesRead:
				bytesRead += a.V
			case trace.KeyBytesSkipped:
				bytesSkipped += a.V
			}
		}
	}
	return
}

// TestExplainEndToEnd drives EXPLAIN ANALYZE over the wire and checks the
// assembled tree against the response's own accounting: the root span is a
// "query" timed within the client-measured wall clock, and the per-partition
// scan spans sum back to the response's rows and byte counters.
func TestExplainEndToEnd(t *testing.T) {
	tracer := trace.New(trace.Config{SampleEvery: 0}) // forced traces only
	tc := startTracedCluster(t, 3, tracedConfig(), tracer)
	sql := "SELECT * FROM t WHERE l_quantity >= 15 AND l_quantity <= 35"

	start := time.Now()
	resp, err := tc.client.Explain(context.Background(), sql)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID == 0 || len(resp.Spans) == 0 {
		t.Fatalf("explain returned no trace: id=%d spans=%d", resp.TraceID, len(resp.Spans))
	}
	root := resp.Spans[0]
	if root.Name != "query" || root.Parent != 0 {
		t.Fatalf("first span is %q (parent %d), want root \"query\"", root.Name, root.Parent)
	}
	if root.Dur <= 0 || root.Dur > int64(wall) {
		t.Fatalf("root span duration %v outside (0, wall=%v]", time.Duration(root.Dur), wall)
	}
	for _, name := range []string{"route", "scatter", "rpc", "worker_batch", "scan"} {
		found := false
		for _, sp := range resp.Spans {
			if sp.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("trace has no %q span", name)
		}
	}
	scans, rows, bytesRead, bytesSkipped := sumScanSpans(resp.Spans)
	if scans != resp.PartitionsScanned {
		t.Errorf("%d scan spans, response scanned %d partitions", scans, resp.PartitionsScanned)
	}
	if rows != int64(resp.Rows) {
		t.Errorf("scan spans sum to %d rows, response has %d", rows, resp.Rows)
	}
	if bytesRead != resp.BytesScanned {
		t.Errorf("scan spans sum to %d bytes read, response has %d", bytesRead, resp.BytesScanned)
	}
	if bytesSkipped != resp.BytesSkipped {
		t.Errorf("scan spans sum to %d bytes skipped, response has %d", bytesSkipped, resp.BytesSkipped)
	}

	// The forced trace was also retained server-side for /traces.
	if _, ok := tracer.Get(resp.TraceID); !ok {
		t.Error("explain trace not retained by the tracer")
	}

	// The tree renders without panicking and names the trace.
	var buf bytes.Buffer
	trace.WriteTree(&buf, resp.TraceID, resp.Spans)
	if !strings.Contains(buf.String(), fmt.Sprintf("%016x", resp.TraceID)) {
		t.Errorf("rendered tree does not name the trace:\n%s", buf.String())
	}
}

// TestExplainWithoutTracer: EXPLAIN must work on a master with tracing
// disabled entirely — the forced trace is assembled locally and returned,
// just never retained.
func TestExplainWithoutTracer(t *testing.T) {
	tc := startCluster(t, 2)
	resp, err := tc.client.Explain(context.Background(), "SELECT * FROM t WHERE l_quantity >= 40")
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID == 0 || len(resp.Spans) == 0 {
		t.Fatalf("explain without a tracer returned no trace: id=%d spans=%d", resp.TraceID, len(resp.Spans))
	}
	// Mux transport explain too.
	mc, err := DialMux(tc.maddr)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	mresp, err := mc.Explain(context.Background(), "SELECT * FROM t WHERE l_quantity >= 40")
	if err != nil {
		t.Fatal(err)
	}
	if mresp.TraceID == 0 || len(mresp.Spans) == 0 {
		t.Fatal("mux explain returned no trace")
	}
	if mresp.Rows != resp.Rows {
		t.Fatalf("transports disagree: %d vs %d rows", mresp.Rows, resp.Rows)
	}
}

// TestSlowQueryLog: queries over the threshold emit one structured log line
// carrying the trace ID and the stage breakdown.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	prev := slog.Default()
	slog.SetDefault(slog.New(slog.NewTextHandler(&buf, nil)))
	defer slog.SetDefault(prev)

	tracer := trace.New(trace.Config{SampleEvery: 1})
	cfg := tracedConfig()
	cfg.SlowQuery = time.Nanosecond // everything is slow
	tc := startTracedCluster(t, 2, cfg, tracer)

	if _, err := tc.client.Query("SELECT * FROM t WHERE l_quantity >= 30"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "slow query") {
		t.Fatalf("no slow-query line logged:\n%s", out)
	}
	for _, field := range []string{"trace_id=", "elapsed=", "route_ns=", "scatter_ns=", "partitions=", "rows=", "sql="} {
		if !strings.Contains(out, field) {
			t.Errorf("slow-query line missing %s:\n%s", field, out)
		}
	}
	if strings.Contains(out, "trace_id=untraced") {
		t.Error("sampled slow query logged as untraced")
	}

	// With the tracer removed the line still logs, marked untraced.
	buf.Reset()
	tc.master.SetTracer(nil)
	if _, err := tc.client.Query("SELECT * FROM t WHERE l_quantity >= 35"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trace_id=untraced") {
		t.Fatalf("unsampled slow query must log trace_id=untraced:\n%s", buf.String())
	}
}

// TestChaosTracingFailover: with tracing forced on, a query surviving a
// dead primary must carry the failure in its trace — an errored rpc span
// plus a failover-round rpc span — and the traced cluster must tear down
// without leaking goroutines.
func TestChaosTracingFailover(t *testing.T) {
	base := runtime.NumGoroutine()
	tc := startChaosCluster(t, 2, 2, nil, fastChaosConfig(5))
	tracer := trace.New(trace.Config{SampleEvery: 1})
	tc.master.SetTracer(tracer)

	tc.workers[0].Close()
	resp, err := tc.master.ExplainContext(context.Background(), chaosSQL)
	if err != nil {
		t.Fatalf("replicated query must survive a dead primary: %v", err)
	}
	if resp.Rows != tc.data.NumRows() {
		t.Fatalf("rows = %d, want %d", resp.Rows, tc.data.NumRows())
	}
	var errored, failover bool
	for _, sp := range resp.Spans {
		if sp.Name != "rpc" {
			continue
		}
		for _, a := range sp.Attrs {
			if a.K == trace.KeyError && a.V == 1 {
				errored = true
			}
			if a.K == trace.KeyFailoverRound && a.V > 0 {
				failover = true
			}
		}
	}
	if !errored {
		t.Error("trace has no errored rpc span for the dead primary")
	}
	if !failover {
		t.Error("trace has no failover-round rpc span for the replica retry")
	}

	// Retry visibility: reset the survivor's next connection and confirm the
	// retried attempt is numbered in its rpc span.
	tc2 := startChaosCluster(t, 1, 1, map[int]faultnet.Script{
		0: {Seed: 5, Rules: []faultnet.Rule{
			{Conn: 0, Op: faultnet.OnRead, Call: 0, Action: faultnet.Reset},
		}},
	}, fastChaosConfig(5))
	tc2.master.SetTracer(tracer)
	r2, err := tc2.master.ExplainContext(context.Background(), chaosSQL)
	if err != nil {
		t.Fatalf("query must survive a connection reset: %v", err)
	}
	var retried bool
	for _, sp := range r2.Spans {
		if sp.Name != "rpc" {
			continue
		}
		for _, a := range sp.Attrs {
			if a.K == trace.KeyAttempt && a.V > 0 {
				retried = true
			}
		}
	}
	if !retried {
		t.Error("trace has no retried rpc span after a connection reset")
	}

	tc.master.Close()
	tc2.master.Close()
	for _, wk := range append(tc.workers, tc2.workers...) {
		wk.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked with tracing on: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMasterReadiness: /readyz truth table — not started, serving, mid-
// migration (observed through a worker slowed by faultnet), closed.
func TestMasterReadiness(t *testing.T) {
	tc := buildMigFixture(t, 2, map[int]faultnet.Script{
		0: {Seed: 1, Rules: []faultnet.Rule{
			{Conn: -1, Op: faultnet.OnRead, Call: 0, Action: faultnet.Delay, Duration: 300 * time.Millisecond},
		}},
	}, fastMigConfig())

	if ok, reason := tc.master.Ready(); ok || !strings.Contains(reason, "not serving") {
		t.Fatalf("unstarted master: ready=%v reason=%q", ok, reason)
	}
	if _, err := tc.master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if ok, reason := tc.master.Ready(); !ok {
		t.Fatalf("serving master not ready: %q", reason)
	}

	applied := make(chan error, 1)
	go func() { applied <- tc.master.ApplyMigration(context.Background(), tc.mig) }()
	sawMigration := false
	for !sawMigration {
		select {
		case err := <-applied:
			if err != nil {
				t.Fatalf("apply: %v", err)
			}
			// Migration finished before a poll caught it mid-flight; the
			// delayed worker makes this practically impossible, but don't
			// hang if timings change.
			t.Log("migration completed before readiness poll observed it")
			sawMigration = true
		default:
			if ok, reason := tc.master.Ready(); !ok && strings.Contains(reason, "migration") {
				sawMigration = true
			} else {
				time.Sleep(time.Millisecond)
			}
		}
	}
	if err := <-applied; err != nil {
		t.Fatalf("apply: %v", err)
	}
	if ok, reason := tc.master.Ready(); !ok {
		t.Fatalf("master not ready after migration settled: %q", reason)
	}
	tc.master.Close()
	if ok, reason := tc.master.Ready(); ok || !strings.Contains(reason, "closed") {
		t.Fatalf("closed master: ready=%v reason=%q", ok, reason)
	}
}

// TestWorkerReadiness: a serving worker is ready, a closed one is not.
func TestWorkerReadiness(t *testing.T) {
	tc := startCluster(t, 1)
	if ok, reason := tc.workers[0].Ready(); !ok {
		t.Fatalf("serving worker not ready: %q", reason)
	}
	tc.workers[0].Close()
	if ok, _ := tc.workers[0].Ready(); ok {
		t.Fatal("closed worker reports ready")
	}

	wk := NewWorker(nil, nil)
	if ok, _ := wk.Ready(); ok {
		t.Fatal("never-started worker reports ready")
	}
}
