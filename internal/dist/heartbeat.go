package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"paw/internal/serve"
)

// Heartbeater is the worker side of the membership protocol: it performs the
// join handshake against the master's client port, then beats on a fixed
// period so the failure detector keeps the worker Alive, and finally asks
// for a graceful leave (the master drains the worker's partitions before
// answering). It speaks either transport — the binary frame protocol or the
// legacy gob envelope — matching whatever the master serves.
//
// A Heartbeater survives connection loss: each failed call drops the cached
// connection and the next call redials, so a master restart shows up as a
// few missed beats, not a dead worker process.
type Heartbeater struct {
	addr      string
	transport Transport

	mu  sync.Mutex
	mux *serve.Mux
	gob *conn

	index atomic.Int64

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewHeartbeater targets a master's client port over the given transport.
func NewHeartbeater(masterAddr string, t Transport) *Heartbeater {
	h := &Heartbeater{
		addr:      masterAddr,
		transport: t,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	h.index.Store(-1)
	return h
}

// Index returns the slot the master assigned at join time (-1 before Join).
func (h *Heartbeater) Index() int { return int(h.index.Load()) }

// call performs one membership exchange, redialing lazily and dropping the
// cached connection on any transport error so the next call starts clean.
func (h *Heartbeater) call(ctx context.Context, req MemberRequest) (MemberResponse, error) {
	var resp MemberResponse
	var err error
	if h.transport == TransportGob {
		resp, err = h.callGob(ctx, req)
	} else {
		resp, err = h.callMux(ctx, req)
	}
	if err != nil {
		if !serve.IsNotSent(err) {
			h.dropConn()
		}
		return MemberResponse{}, err
	}
	if resp.Err != "" {
		// The master executed and refused (checksum mismatch, unknown op):
		// the connection is healthy, the request is not.
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

func (h *Heartbeater) callMux(ctx context.Context, req MemberRequest) (MemberResponse, error) {
	h.mu.Lock()
	mx := h.mux
	if mx == nil {
		var err error
		mx, err = serve.DialMux(h.addr)
		if err != nil {
			h.mu.Unlock()
			return MemberResponse{}, fmt.Errorf("dist: dialing master %s: %w", h.addr, err)
		}
		h.mux = mx
	}
	h.mu.Unlock()
	var resp MemberResponse
	err := mx.Call(ctx, msgMemberReq, &req, func(typ byte, payload []byte) error {
		if typ != msgMemberResp {
			return fmt.Errorf("dist: unexpected frame type %d for member response", typ)
		}
		return resp.UnmarshalWire(payload)
	})
	return resp, err
}

func (h *Heartbeater) callGob(ctx context.Context, req MemberRequest) (MemberResponse, error) {
	h.mu.Lock()
	c := h.gob
	if c == nil {
		nc, err := net.Dial("tcp", h.addr)
		if err != nil {
			h.mu.Unlock()
			return MemberResponse{}, fmt.Errorf("dist: dialing master %s: %w", h.addr, err)
		}
		c = newConn(nc)
		h.gob = c
	}
	h.mu.Unlock()
	// The gob session loop carries membership inside the query exchange.
	qreq := QueryRequest{Member: &req}
	var qresp QueryResponse
	if err := c.call(ctx, &qreq, &qresp); err != nil {
		return MemberResponse{}, err
	}
	if qresp.Member == nil {
		return MemberResponse{}, errors.New("dist: master answered a member request without a member response")
	}
	return *qresp.Member, nil
}

func (h *Heartbeater) dropConn() {
	h.mu.Lock()
	mx, c := h.mux, h.gob
	h.mux, h.gob = nil, nil
	h.mu.Unlock()
	if mx != nil {
		mx.Close()
	}
	if c != nil {
		c.Close()
	}
}

// Join registers with the master: index -1 resolves by the advertised
// address (a fresh join gets a new slot; a known address revives its slot),
// sum is the membership.Checksum of the partition IDs this worker hosts. On
// success the assigned slot is remembered for subsequent beats.
func (h *Heartbeater) Join(ctx context.Context, index int, advertise string, sum uint64) (MemberResponse, error) {
	resp, err := h.call(ctx, MemberRequest{Op: MemberJoin, Index: index, Addr: advertise, Sum: sum})
	if err != nil {
		return resp, err
	}
	h.index.Store(int64(resp.Index))
	return resp, nil
}

// Beat sends one heartbeat for the joined slot.
func (h *Heartbeater) Beat(ctx context.Context) (MemberResponse, error) {
	idx := h.index.Load()
	if idx < 0 {
		return MemberResponse{}, errors.New("dist: heartbeat before join")
	}
	return h.call(ctx, MemberRequest{Op: MemberBeat, Index: int(idx)})
}

// Leave asks the master for a graceful leave. The call returns only after
// the master has drained this worker's partitions onto the remaining
// members (or refused), so the caller may shut down on success without any
// query ever missing rows.
func (h *Heartbeater) Leave(ctx context.Context) (MemberResponse, error) {
	idx := h.index.Load()
	if idx < 0 {
		return MemberResponse{}, errors.New("dist: leave before join")
	}
	return h.call(ctx, MemberRequest{Op: MemberLeave, Index: int(idx)})
}

// Start launches the background beat loop (default period 500ms). Each beat
// runs under its own deadline so a wedged master delays, never wedges, the
// loop. Start may be called once; Close stops the loop.
func (h *Heartbeater) Start(every time.Duration) {
	if every <= 0 {
		every = 500 * time.Millisecond
	}
	if !h.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(h.done)
		t := time.NewTicker(every)
		defer t.Stop()
		timeout := every
		if timeout < time.Second {
			timeout = time.Second
		}
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				_, err := h.Beat(ctx)
				cancel()
				if err != nil {
					// Transient: the connection was dropped above and the
					// next tick redials. The master's failure detector is
					// the authority on how many misses matter.
					continue
				}
			}
		}
	}()
}

// Close stops the beat loop and drops any cached connection. It does not
// send a leave — call Leave first for a graceful departure.
func (h *Heartbeater) Close() {
	h.stopOnce.Do(func() { close(h.stop) })
	if h.started.Load() {
		<-h.done
	}
	h.dropConn()
}
