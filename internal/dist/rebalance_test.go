package dist

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"paw/internal/membership"
)

// Rebalance tests: the minimal-movement property (a join moves roughly
// 1/(N+1) of the copies, never a reshuffle), exactness of every query served
// during and after the move, budget-deferred rounds, and the drain-timeout
// accounting. The cluster is ring-placed from the start so the ring delta is
// the true minimum.

// TestRebalanceJoinMovementBound: joining one fresh worker must ship close
// to the consistent-hash ideal — P·R/(N+1) copies — and stay exact
// throughout, with queries hammering the master concurrently with the move.
func TestRebalanceJoinMovementBound(t *testing.T) {
	const nWorkers, replicas = 3, 2
	tc := startElasticCluster(t, nWorkers, replicas, 6000, elasticMemberConfig(), fastMigConfig())
	tc.checkExact(t)

	// Query load concurrent with the whole join+rebalance: every response
	// must be exact regardless of where the cutover lands.
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			for _, b := range tc.probes() {
				resp, err := tc.master.Query(migSQL(tc.data.Names(), b))
				if err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
				if want := tc.data.CountInBox(b, nil); resp.Rows != want {
					select {
					case errc <- context.DeadlineExceeded:
					default:
					}
					t.Errorf("concurrent query: %d rows, want %d", resp.Rows, want)
					return
				}
			}
		}
	}()

	idx, _ := tc.joinFreshWorker(t)
	report, err := tc.master.Rebalance(context.Background(), false)
	stop.Store(true)
	wg.Wait()
	select {
	case qerr := <-errc:
		t.Fatalf("concurrent query failed: %v", qerr)
	default:
	}
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if report.Epoch != 1 {
		t.Fatalf("epoch = %d after rebalance, want 1", report.Epoch)
	}
	if got := len(membership.HostedIDs(tc.master.Placement(), idx)); got == 0 {
		t.Fatal("joiner hosts nothing after rebalance")
	}
	tc.checkExact(t)

	// The movement bound, asserted numerically: the ring moves about
	// total/(N+1) copies to the joiner; 2.5x covers vnode skew on small
	// partition counts.
	total := len(tc.layout.Parts) * replicas
	ideal := float64(total) / float64(nWorkers+1)
	bound := int(ideal*2.5) + 1
	if report.MovedPartitions > bound {
		t.Errorf("join moved %d copies, want <= %d (ideal %.1f of %d total, slack 2.5x)",
			report.MovedPartitions, bound, ideal, total)
	}
	if report.MovedPartitions == 0 {
		t.Error("a join must move something")
	}
	if report.MovedBytes <= 0 {
		t.Error("moved bytes must be accounted")
	}
	snap := tc.reg.Snapshot()
	if got := snap.Counter(MetricRebalances); got != 1 {
		t.Errorf("rebalances = %d, want 1", got)
	}
	if got := snap.Counter(MetricRebalanceParts); got != int64(report.MovedPartitions) {
		t.Errorf("moved-partitions counter = %d, want %d", got, report.MovedPartitions)
	}
	if got := snap.Counter(MetricRebalanceBytes); got != report.MovedBytes {
		t.Errorf("moved-bytes counter = %d, want %d", got, report.MovedBytes)
	}

	// A second round is a no-op: the placement already matches the ring, so
	// nothing moves and no epoch burns (no-thrash).
	again, err := tc.master.Rebalance(context.Background(), false)
	if err != nil {
		t.Fatalf("idempotent rebalance: %v", err)
	}
	if again.MovedPartitions != 0 || again.Epoch != 1 {
		t.Errorf("second rebalance moved %d copies to epoch %d, want 0 moves at epoch 1",
			again.MovedPartitions, again.Epoch)
	}
}

// TestRebalanceLeaveDrainsEverything: a graceful leave must pull every copy
// off the departing worker in one round regardless of the byte budget, so
// the worker can exit without stranding data.
func TestRebalanceLeaveDrainsEverything(t *testing.T) {
	mcfg := elasticMemberConfig()
	mcfg.MaxMoveBytes = 1 // absurdly small: a leave must ignore it
	tc := startElasticCluster(t, 3, 2, 4000, mcfg, fastMigConfig())
	tc.checkExact(t)
	hostedBefore := len(membership.HostedIDs(tc.master.Placement(), 0))
	if hostedBefore == 0 {
		t.Fatal("fixture: worker 0 must host partitions")
	}

	resp := tc.master.handleMember(&MemberRequest{Op: MemberLeave, Index: 0})
	if resp.Err != "" {
		t.Fatalf("leave: %s", resp.Err)
	}
	if got := len(membership.HostedIDs(tc.master.Placement(), 0)); got != 0 {
		t.Fatalf("left worker still hosts %d partitions (budget must not defer a drain)", got)
	}
	view, _ := tc.master.MembershipView()
	if mem, _ := view.Member(0); mem.State != membership.Left {
		t.Fatalf("worker 0 state = %v, want Left", mem.State)
	}
	tc.workers[0].Close()
	tc.checkExact(t)
	if got := tc.reg.Snapshot().Counter(MetricMemberLeaves); got != 1 {
		t.Errorf("member leaves = %d, want 1", got)
	}
}

// TestRebalanceBudgetDefersColdMoves: a small byte budget ships the hottest
// moves now and defers the rest; queries stay exact on the partial target,
// and a follow-up unbudgeted round finishes the job.
func TestRebalanceBudgetDefersColdMoves(t *testing.T) {
	mcfg := elasticMemberConfig()
	mcfg.MaxMoveBytes = 1 // first move always ships; everything else defers
	tc := startElasticCluster(t, 3, 2, 6000, mcfg, fastMigConfig())
	tc.joinFreshWorker(t)

	first, err := tc.master.Rebalance(context.Background(), false)
	if err != nil {
		t.Fatalf("budgeted rebalance: %v", err)
	}
	if first.Deferred == 0 {
		t.Fatal("a 1-byte budget must defer moves")
	}
	if first.MovedPartitions == 0 {
		t.Fatal("a budgeted round must still make progress")
	}
	tc.checkExact(t)
	if got := tc.reg.Snapshot().Counter(MetricRebalanceDeferred); got != int64(first.Deferred) {
		t.Errorf("deferred counter = %d, want %d", got, first.Deferred)
	}

	second, err := tc.master.Rebalance(context.Background(), true)
	if err != nil {
		t.Fatalf("full rebalance: %v", err)
	}
	if second.Deferred != 0 {
		t.Errorf("unbudgeted round deferred %d moves, want 0", second.Deferred)
	}
	tc.checkExact(t)
	// Converged: one more round moves nothing.
	final, err := tc.master.Rebalance(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if final.MovedPartitions != 0 {
		t.Errorf("converged cluster moved %d copies", final.MovedPartitions)
	}
}

// TestRebalanceDrainTimeoutCounted: when in-flight old-epoch queries outlast
// DrainTimeout, the cutover proceeds anyway and the expiry is counted.
func TestRebalanceDrainTimeoutCounted(t *testing.T) {
	cfg := fastMigConfig()
	cfg.DrainTimeout = 5 * time.Millisecond
	tc := startElasticCluster(t, 2, 1, 2000, elasticMemberConfig(), cfg)
	tc.joinFreshWorker(t)
	// Pin a phantom in-flight query on the serving view so the drain cannot
	// complete.
	tc.master.view.Load().inflight.Add(1)
	if _, err := tc.master.Rebalance(context.Background(), false); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if got := tc.reg.Snapshot().Counter(MetricDrainTimeouts); got != 1 {
		t.Errorf("drain timeouts = %d, want 1", got)
	}
	tc.checkExact(t)
}

// TestRebalanceAutoTriggersOnTick: with AutoRebalance on, a tick after a
// join (placeable member hosting nothing) kicks off the rebalance without
// anyone calling Rebalance, and a converged cluster stops triggering.
func TestRebalanceAutoTriggersOnTick(t *testing.T) {
	mcfg := elasticMemberConfig()
	mcfg.AutoRebalance = true
	mcfg.RebalanceCooldown = time.Nanosecond
	tc := startElasticCluster(t, 2, 1, 2000, mcfg, fastMigConfig())
	idx, _ := tc.joinFreshWorker(t)

	tc.master.MembershipTick(time.Now())
	deadline := time.Now().Add(5 * time.Second)
	for len(membership.HostedIDs(tc.master.Placement(), idx)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("auto-rebalance did not run within 5s of the trigger tick")
		}
		time.Sleep(5 * time.Millisecond)
	}
	tc.checkExact(t)

	// Converged: further ticks must not burn epochs.
	epoch := tc.master.Epoch()
	for i := 0; i < 5; i++ {
		tc.master.MembershipTick(time.Now())
	}
	time.Sleep(50 * time.Millisecond)
	if got := tc.master.Epoch(); got != epoch {
		t.Errorf("ticks on a converged cluster moved the epoch %d -> %d", epoch, got)
	}
}
