package dist

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"time"

	"paw/internal/layout"
	"paw/internal/membership"
)

// Live rebalancing (DESIGN.md §15): when the member set changes, the master
// recomputes the consistent-hash target placement and ships only the delta
// through the epoch-versioned migration machinery. The layout does not
// change — every partition keeps its ID (identity rename) — so the whole
// rebalance is one epoch bump in which unmoved partitions alias for free and
// moved partitions ship their encoded payload to the new holders. Queries
// double-route throughout and any install failure aborts with the old
// placement untouched, exactly like a drift migration.

// RebalanceReport summarises one rebalance round.
type RebalanceReport struct {
	// Epoch is the layout epoch serving after the round.
	Epoch uint64
	// Workers is the placeable member count the target was computed for.
	Workers int
	// Partitions is the total partition count of the layout.
	Partitions int
	// MovedPartitions / MovedBytes is the data this round actually shipped.
	MovedPartitions int
	MovedBytes      int64
	// ReusedPartitions stayed put (alias-only installs).
	ReusedPartitions int
	// Deferred counts moves pushed past the byte budget into later rounds.
	Deferred int
	// Forced counts moves exempted from the budget because they restored a
	// partition's last live copy.
	Forced int
}

// Rebalance computes the minimal-movement delta between the current
// placement and the consistent-hash target over the placeable members, and
// applies it as one migration. With full=true the per-round byte budget is
// ignored — the graceful-leave drain uses this, since a deferred move would
// strand data on the departing worker. A no-op delta returns immediately
// without burning an epoch. Requires EnableMembership.
func (m *Master) Rebalance(ctx context.Context, full bool) (RebalanceReport, error) {
	ms := m.member.Load()
	if ms == nil {
		return RebalanceReport{}, fmt.Errorf("dist: membership is not enabled on this master")
	}
	ms.rebalanceMu.Lock()
	defer ms.rebalanceMu.Unlock()
	ms.mu.Lock()
	ms.lastRebalance = time.Now()
	ms.mu.Unlock()

	view := ms.tracker.View()
	placeable := view.Placeable()
	if len(placeable) == 0 {
		return RebalanceReport{}, fmt.Errorf("dist: no placeable members to rebalance onto")
	}
	reachable := make(map[int]bool)
	for _, w := range view.Reachable() {
		reachable[w] = true
	}

	curView := m.view.Load()
	l := curView.router.Layout()
	ids := make([]layout.ID, len(l.Parts))
	for i, p := range l.Parts {
		ids[i] = p.ID
	}
	replicas := ms.cfg.Replicas
	if replicas > len(placeable) {
		replicas = len(placeable)
	}
	want := membership.RingPlacement(ids, placeable, replicas, ms.cfg.VNodes)
	weight := func(id layout.ID) int64 {
		if b := l.Parts[id].Bytes(); b > 0 {
			return b
		}
		return 1
	}
	budget := ms.cfg.MaxMoveBytes
	if full {
		budget = 0
	}
	plan := membership.PlanRebalance(ids, curView.replicas, want,
		func(w int) bool { return reachable[w] }, weight, budget)

	ms.mu.Lock()
	ms.deferredWork = len(plan.Deferred) > 0
	ms.mu.Unlock()

	report := RebalanceReport{
		Epoch:            curView.epoch,
		Workers:          len(placeable),
		Partitions:       len(ids),
		MovedPartitions:  plan.MovedPartitions,
		MovedBytes:       plan.MovedBytes,
		ReusedPartitions: plan.ReusedPartitions,
		Deferred:         len(plan.Deferred),
	}
	for _, mv := range plan.Moves {
		if mv.Forced {
			report.Forced++
		}
	}
	if len(plan.Moves) == 0 && placementsEqual(curView.replicas, plan.Target) {
		return report, nil // already balanced: no epoch bump, no thrash
	}

	// Fetch every moved partition's payload before any install goes out, so
	// a missing source aborts the round with zero cutover risk.
	moved := make(map[layout.ID][]byte, len(plan.Moves))
	for _, mv := range plan.Moves {
		payload, rows, err := m.fetchPartition(ctx, curView, mv.ID, reachable, ms.cfg.PayloadSource)
		if err != nil {
			return report, fmt.Errorf("dist: rebalance aborted before any cutover: %w", err)
		}
		if want := l.Parts[mv.ID].FullRows; rows != want {
			return report, fmt.Errorf("dist: rebalance aborted before any cutover: partition %d fetched %d rows, layout says %d", mv.ID, rows, want)
		}
		moved[mv.ID] = payload
	}

	renamed := make(map[layout.ID]layout.ID, len(ids))
	entries := make([]MigrationEntry, 0, len(ids))
	for _, id := range ids {
		renamed[id] = id
		entries = append(entries, MigrationEntry{
			ID:      id,
			Workers: plan.Target[id],
			ReuseID: id,
			Payload: moved[id], // nil for unmoved partitions
			Rows:    l.Parts[id].FullRows,
		})
	}
	mig := &Migration{
		Epoch:    curView.epoch + 1,
		Router:   curView.router,
		Replicas: plan.Target,
		Entries:  entries,
		Renamed:  renamed,
	}
	if err := m.ApplyMigration(ctx, mig); err != nil {
		return report, err
	}
	report.Epoch = mig.Epoch
	m.m.rebalances.Inc()
	m.m.rebalanceMovedParts.Add(int64(plan.MovedPartitions))
	m.m.rebalanceMovedBytes.Add(plan.MovedBytes)
	m.m.rebalanceDeferred.Add(int64(len(plan.Deferred)))
	slog.Info("rebalance complete",
		"epoch", mig.Epoch, "workers", len(placeable),
		"moved_partitions", plan.MovedPartitions, "moved_bytes", plan.MovedBytes,
		"reused", plan.ReusedPartitions, "deferred", len(plan.Deferred), "forced", report.Forced)
	return report, nil
}

// fetchPartition retrieves a partition's colstore-encoded payload from a
// reachable current holder, falling back to the configured PayloadSource
// (the master's own dataset copy) when every replica is gone.
func (m *Master) fetchPartition(ctx context.Context, v *routeView, id layout.ID, reachable map[int]bool, fallback func(layout.ID) ([]byte, int64, error)) ([]byte, int64, error) {
	var lastErr error
	for _, w := range v.replicas[id] {
		if !reachable[w] {
			continue
		}
		resp, err := m.adminCallResp(ctx, w, AdminRequest{Op: AdminFetch, Epoch: v.epoch, ID: id})
		if err != nil {
			lastErr = err
			continue
		}
		return resp.Payload, resp.Rows, nil
	}
	if fallback != nil {
		payload, rows, err := fallback(id)
		if err == nil {
			return payload, rows, nil
		}
		lastErr = err
	}
	if lastErr != nil {
		return nil, 0, fmt.Errorf("partition %d has no reachable holder: %w", id, lastErr)
	}
	return nil, 0, fmt.Errorf("partition %d has no reachable holder", id)
}

// placementsEqual reports whether two placements assign identical replica
// sets (order-insensitive) to every partition.
func placementsEqual(a, b map[layout.ID][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for id, ws := range a {
		vs, ok := b[id]
		if !ok || len(ws) != len(vs) {
			return false
		}
		x := append([]int(nil), ws...)
		y := append([]int(nil), vs...)
		sort.Ints(x)
		sort.Ints(y)
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
	}
	return true
}
