package dist

import (
	"strconv"

	"paw/internal/obs"
)

// Distributed-path metric names. Per-worker call timers carry a
// worker="<index>" label (one series per worker; the fleet is small and
// fixed at master construction).
const (
	MetricQueries      = "dist_queries_total"
	MetricQueryLatency = "dist_query_latency_ns"
	MetricFanoutWidth  = "dist_fanout_width"
	MetricWorkerCallNs = "dist_worker_call_ns"
	MetricRedials      = "dist_worker_redials_total"
	MetricCallFailures = "dist_worker_call_failures_total"
	MetricInflight     = "dist_inflight_queries"

	// Failure-model counters (DESIGN.md §10): every retry, failover and
	// breaker transition on the distributed path is counted, so the chaos
	// suite can assert each injected fault maps to its intended recovery.
	MetricRetries         = "dist_worker_call_retries_total"
	MetricFailovers       = "dist_partition_failovers_total"
	MetricBreakerTrips    = "dist_breaker_trips_total"
	MetricBreakerProbes   = "dist_breaker_probes_total"
	MetricBreakerShorts   = "dist_breaker_short_circuits_total"
	MetricDeadlineExpired = "dist_query_deadline_expired_total"
	MetricPartialResults  = "dist_partial_results_total"
	MetricClientsDropped  = "dist_client_sessions_dropped_total"

	// Serving front-end counters (DESIGN.md §12): descriptor/result cache
	// effectiveness, admission-control sheds, cache invalidations, and clean
	// deadline expiries that kept their connection (the churn fix).
	MetricPlanCacheHits      = "dist_plan_cache_hits_total"
	MetricPlanCacheMisses    = "dist_plan_cache_misses_total"
	MetricResultCacheHits    = "dist_result_cache_hits_total"
	MetricResultCacheMisses  = "dist_result_cache_misses_total"
	MetricCacheInvalidations = "dist_cache_invalidations_total"
	MetricQueriesShed        = "dist_queries_shed_total"
	MetricCleanExpiries      = "dist_call_clean_expiries_total"

	// Observability counters (DESIGN.md §14): traces actually sampled (forced
	// EXPLAIN traces included) and queries that crossed the slow-query
	// threshold.
	MetricTracesSampled = "dist_traces_sampled_total"
	MetricSlowQueries   = "dist_slow_queries_total"

	MetricWorkerScans         = "worker_scan_requests_total"
	MetricWorkerRows          = "worker_rows_matched_total"
	MetricWorkerBytesRead     = "worker_bytes_read_total"
	MetricWorkerBytesSkipped  = "worker_bytes_skipped_total"
	MetricWorkerGroupsRead    = "worker_groups_read_total"
	MetricWorkerGroupsSkip    = "worker_groups_skipped_total"
	MetricWorkerZoneSkip      = "worker_groups_zone_skipped_total"
	MetricWorkerConns         = "worker_active_connections"
	MetricWorkerErrors        = "worker_scan_errors_total"
	MetricWorkerConnDropped   = "worker_dropped_connections_total"
	MetricWorkerDeadlineDrops = "worker_deadline_dropped_scans_total"

	// Per-request byte-volume histograms: how much encoded payload each scan
	// batch actually decoded vs proved skippable (pruning + zone maps + late
	// materialization). Their ratio is the live skipping effectiveness.
	MetricWorkerScanBytesDecoded = "worker_scan_bytes_decoded"
	MetricWorkerScanBytesSkipped = "worker_scan_bytes_skipped"

	// MetricWorkerSharedScans counts kernel passes avoided by attaching to an
	// identical in-flight scan (same partitions, same predicate class)
	// instead of running them: one per partition of an attached batch, one
	// per attached single-partition scan.
	MetricWorkerSharedScans = "worker_shared_scans_total"

	// Migration counters (DESIGN.md §13): the drift re-partitioner's
	// footprint on the distributed path. Masters count whole migrations and
	// the per-partition install/reuse/byte volume; workers count the epoch
	// installs/retires they executed. The cache sweep counters split the
	// cutover's per-partition invalidation into entries rewritten in place
	// (renamed partitions) vs dropped (rebuilt region).
	MetricMigrations         = "dist_migrations_total"
	MetricMigrationsAborted  = "dist_migrations_aborted_total"
	MetricMigratedPartitions = "dist_migrated_partitions_total"
	MetricReusedPartitions   = "dist_reused_partitions_total"
	MetricMigratedBytes      = "dist_migrated_bytes_total"
	MetricCacheRemapped      = "dist_cache_entries_remapped_total"
	MetricCacheSwept         = "dist_cache_entries_swept_total"
	MetricLayoutEpoch        = "dist_layout_epoch"

	MetricWorkerInstalls       = "worker_partition_installs_total"
	MetricWorkerInstalledBytes = "worker_installed_bytes_total"
	MetricWorkerEpochRetires   = "worker_epoch_retires_total"

	// Membership and rebalance counters (DESIGN.md §15): the elastic
	// fleet's footprint. Joins/leaves/rejections count handshakes; the
	// state gauges snapshot the failure detector; the rebalance counters
	// accumulate the minimal-movement deltas actually shipped; drain
	// timeouts count epoch retirements that gave up waiting for in-flight
	// old-epoch queries.
	MetricMemberJoins       = "dist_member_joins_total"
	MetricMemberJoinRejects = "dist_member_join_rejects_total"
	MetricMemberLeaves      = "dist_member_leaves_total"
	MetricMembersAlive      = "dist_members_alive"
	MetricMembersSuspect    = "dist_members_suspect"
	MetricMembersDead       = "dist_members_dead"
	MetricRebalances        = "dist_rebalances_total"
	MetricRebalanceParts    = "dist_rebalance_moved_partitions_total"
	MetricRebalanceBytes    = "dist_rebalance_moved_bytes_total"
	MetricRebalanceDeferred = "dist_rebalance_deferred_total"
	MetricDrainTimeouts     = "dist_drain_timeouts_total"
)

// FanoutBuckets are the histogram bounds for scatter width (workers hit per
// range).
func FanoutBuckets() []float64 {
	return []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
}

// masterMetrics is the optional master-side telemetry; the zero value is
// fully disabled (nil instruments no-op).
type masterMetrics struct {
	queries        *obs.Counter
	latency        *obs.Histogram
	fanout         *obs.Histogram
	redials        *obs.Counter
	failures       *obs.Counter
	inflight       *obs.Gauge
	retries        *obs.Counter
	failovers      *obs.Counter
	breakerTrips   *obs.Counter
	breakerProbes  *obs.Counter
	breakerShorts  *obs.Counter
	deadlines      *obs.Counter
	partials       *obs.Counter
	clientsDropped *obs.Counter

	planHits           *obs.Counter
	planMisses         *obs.Counter
	resultHits         *obs.Counter
	resultMisses       *obs.Counter
	cacheInvalidations *obs.Counter
	overloads          *obs.Counter
	cleanExpiries      *obs.Counter
	tracesSampled      *obs.Counter
	slowQueries        *obs.Counter

	migrations         *obs.Counter
	migrationsAborted  *obs.Counter
	migratedPartitions *obs.Counter
	reusedPartitions   *obs.Counter
	migratedBytes      *obs.Counter
	cacheRemapped      *obs.Counter
	cacheSwept         *obs.Counter
	layoutEpoch        *obs.Gauge

	memberJoins         *obs.Counter
	joinRejects         *obs.Counter
	memberLeaves        *obs.Counter
	membersAlive        *obs.Gauge
	membersSuspect      *obs.Gauge
	membersDead         *obs.Gauge
	rebalances          *obs.Counter
	rebalanceMovedParts *obs.Counter
	rebalanceMovedBytes *obs.Counter
	rebalanceDeferred   *obs.Counter
	drainTimeouts       *obs.Counter
}

// SetMetrics attaches (or, with nil, detaches) master telemetry: query
// latency, per-range fan-out width, one call timer per worker, redial and
// failure counters, an in-flight query gauge, and the failure-model
// counters (retries, failovers, breaker transitions, deadline expiries,
// partial results, dropped client sessions).
func (m *Master) SetMetrics(reg *obs.Registry) {
	// Rebuild the fleet's per-worker call timers under mu so a concurrent
	// join sees either the old or the new timer set, never a torn one. The
	// registry is remembered so workers that join later get their own timer.
	m.mu.Lock()
	m.metricsReg = reg
	f := m.fleet.Load().clone()
	if reg == nil {
		f.timers = nil
	} else {
		f.timers = make([]*obs.Timer, len(f.addrs))
		for i := range f.timers {
			f.timers[i] = reg.Timer(obs.Label(MetricWorkerCallNs, "worker", strconv.Itoa(i)))
		}
	}
	m.fleet.Store(f)
	m.mu.Unlock()
	if reg == nil {
		m.m = masterMetrics{}
		return
	}
	mm := masterMetrics{
		queries:        reg.Counter(MetricQueries),
		latency:        reg.Histogram(MetricQueryLatency, obs.LatencyBuckets()),
		fanout:         reg.Histogram(MetricFanoutWidth, FanoutBuckets()),
		redials:        reg.Counter(MetricRedials),
		failures:       reg.Counter(MetricCallFailures),
		inflight:       reg.Gauge(MetricInflight),
		retries:        reg.Counter(MetricRetries),
		failovers:      reg.Counter(MetricFailovers),
		breakerTrips:   reg.Counter(MetricBreakerTrips),
		breakerProbes:  reg.Counter(MetricBreakerProbes),
		breakerShorts:  reg.Counter(MetricBreakerShorts),
		deadlines:      reg.Counter(MetricDeadlineExpired),
		partials:       reg.Counter(MetricPartialResults),
		clientsDropped: reg.Counter(MetricClientsDropped),

		planHits:           reg.Counter(MetricPlanCacheHits),
		planMisses:         reg.Counter(MetricPlanCacheMisses),
		resultHits:         reg.Counter(MetricResultCacheHits),
		resultMisses:       reg.Counter(MetricResultCacheMisses),
		cacheInvalidations: reg.Counter(MetricCacheInvalidations),
		overloads:          reg.Counter(MetricQueriesShed),
		cleanExpiries:      reg.Counter(MetricCleanExpiries),
		tracesSampled:      reg.Counter(MetricTracesSampled),
		slowQueries:        reg.Counter(MetricSlowQueries),

		migrations:         reg.Counter(MetricMigrations),
		migrationsAborted:  reg.Counter(MetricMigrationsAborted),
		migratedPartitions: reg.Counter(MetricMigratedPartitions),
		reusedPartitions:   reg.Counter(MetricReusedPartitions),
		migratedBytes:      reg.Counter(MetricMigratedBytes),
		cacheRemapped:      reg.Counter(MetricCacheRemapped),
		cacheSwept:         reg.Counter(MetricCacheSwept),
		layoutEpoch:        reg.Gauge(MetricLayoutEpoch),

		memberJoins:         reg.Counter(MetricMemberJoins),
		joinRejects:         reg.Counter(MetricMemberJoinRejects),
		memberLeaves:        reg.Counter(MetricMemberLeaves),
		membersAlive:        reg.Gauge(MetricMembersAlive),
		membersSuspect:      reg.Gauge(MetricMembersSuspect),
		membersDead:         reg.Gauge(MetricMembersDead),
		rebalances:          reg.Counter(MetricRebalances),
		rebalanceMovedParts: reg.Counter(MetricRebalanceParts),
		rebalanceMovedBytes: reg.Counter(MetricRebalanceBytes),
		rebalanceDeferred:   reg.Counter(MetricRebalanceDeferred),
		drainTimeouts:       reg.Counter(MetricDrainTimeouts),
	}
	m.m = mm
}

// workerMetrics is the optional worker-side telemetry.
type workerMetrics struct {
	scans         *obs.Counter
	rows          *obs.Counter
	bytesRead     *obs.Counter
	bytesSkipped  *obs.Counter
	groupsRead    *obs.Counter
	groupsSkip    *obs.Counter
	zoneSkip      *obs.Counter
	errors        *obs.Counter
	activeConns   *obs.Gauge
	dropped       *obs.Counter
	deadlineDrops *obs.Counter
	decodedHist   *obs.Histogram
	skippedHist   *obs.Histogram
	sharedScans   *obs.Counter

	installs       *obs.Counter
	installedBytes *obs.Counter
	epochRetires   *obs.Counter
}

// SetMetrics attaches (or, with nil, detaches) worker telemetry: scan and
// row/byte counters, active-connection gauge and dropped-connection counter.
func (w *Worker) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		w.m = workerMetrics{}
		return
	}
	w.m = workerMetrics{
		scans:         reg.Counter(MetricWorkerScans),
		rows:          reg.Counter(MetricWorkerRows),
		bytesRead:     reg.Counter(MetricWorkerBytesRead),
		bytesSkipped:  reg.Counter(MetricWorkerBytesSkipped),
		groupsRead:    reg.Counter(MetricWorkerGroupsRead),
		groupsSkip:    reg.Counter(MetricWorkerGroupsSkip),
		zoneSkip:      reg.Counter(MetricWorkerZoneSkip),
		errors:        reg.Counter(MetricWorkerErrors),
		activeConns:   reg.Gauge(MetricWorkerConns),
		dropped:       reg.Counter(MetricWorkerConnDropped),
		deadlineDrops: reg.Counter(MetricWorkerDeadlineDrops),
		decodedHist:   reg.Histogram(MetricWorkerScanBytesDecoded, obs.ByteBuckets()),
		skippedHist:   reg.Histogram(MetricWorkerScanBytesSkipped, obs.ByteBuckets()),
		sharedScans:   reg.Counter(MetricWorkerSharedScans),

		installs:       reg.Counter(MetricWorkerInstalls),
		installedBytes: reg.Counter(MetricWorkerInstalledBytes),
		epochRetires:   reg.Counter(MetricWorkerEpochRetires),
	}
}
