package dist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"paw/internal/blockstore"
	"paw/internal/colstore"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/parbuild"
	"paw/internal/serve"
	"paw/internal/trace"
)

// workerMaxInflight bounds the scan requests one binary session may have
// executing concurrently. The scan pool bounds actual kernel parallelism;
// this only caps per-session queue build-up.
const workerMaxInflight = 64

// Worker hosts a subset of a store's partitions and serves ScanRequests.
// A worker only answers for the partitions assigned to it; requests for
// foreign partitions are errors (they indicate a master/placement bug).
//
// Sessions speak either the multiplexed binary frame protocol (detected by
// the serve.Magic preamble) or the legacy gob codec pair. Binary sessions
// pipeline: every request runs on its own goroutine and responses return in
// completion order.
type Worker struct {
	store    *blockstore.Store
	assigned map[layout.ID]bool
	// scanPool parallelises row-group scans within a partition. Fan is safe
	// for concurrent drivers, so all connections share the one bounded pool —
	// total scan parallelism stays bounded regardless of session count.
	scanPool *parbuild.Pool
	// flight coalesces concurrent identical scans (same partition, same
	// predicate class): one kernel pass runs and every waiter shares its
	// stats. Keys are partition ID + query-box bytes.
	flight serve.Flight[colstore.ScanStats]
	// batchFlight coalesces whole identical scan batches (same partition
	// list, same predicate class). Per-partition sharing alone rarely fires
	// in the serving path: identical concurrent batches walk the same ID
	// list in the same order, so they stay one partition out of phase and
	// never overlap inside any single short kernel pass. Batch-level keys
	// make the whole multi-partition execution the sharing window.
	batchFlight serve.Flight[ScanResponse]
	// scanHook, when set, observes every kernel scan actually executed (not
	// the shared attachments). Test-only.
	scanHook func(layout.ID)
	// tabScanners recycles scanner state for epoch-view tables (the store
	// has its own pool for the base epoch's partitions).
	tabScanners colstore.ScannerPool

	mu sync.Mutex
	// views maps layout epochs to the partitions servable under them
	// (DESIGN.md §13). Epoch 0 is the materialised store the worker started
	// with; migrations install later epochs partition by partition — as
	// aliases of tables the worker already holds (renamed partitions move
	// zero bytes) or from shipped payloads — and the master retires an epoch
	// once no in-flight query can still reference it.
	views    map[uint64]*epochView
	listener net.Listener
	wg       sync.WaitGroup
	closed   bool
	// conns tracks live sessions so Close can terminate connections parked
	// in Decode (a master holds its connections open between queries;
	// without this, Close would block on wg.Wait forever).
	conns map[net.Conn]bool
	// m is the optional worker telemetry (SetMetrics).
	m workerMetrics
}

// NewWorker builds a worker serving the assigned partitions of store.
func NewWorker(store *blockstore.Store, assigned []layout.ID) *Worker {
	m := make(map[layout.ID]bool, len(assigned))
	for _, id := range assigned {
		m[id] = true
	}
	return &Worker{
		store:    store,
		assigned: m,
		scanPool: parbuild.New(0),
		conns:    make(map[net.Conn]bool),
		views:    map[uint64]*epochView{0: {base: true}},
	}
}

// epochView is one layout epoch's servable partition set. The base view
// (epoch 0) answers from the worker's materialised store and assignment set;
// installed views answer from their table map, whose entries either alias
// tables of earlier epochs (renamed partitions) or were decoded from
// migration payloads (rebuilt partitions).
type epochView struct {
	base   bool
	tables map[layout.ID]*colstore.Table
}

// lookup resolves (epoch, id) to the table to scan. useStore reports that
// the base store should scan the partition instead (its scanner pool and
// block accounting are partition-aware).
func (w *Worker) lookup(epoch uint64, id layout.ID) (tab *colstore.Table, useStore bool, err error) {
	w.mu.Lock()
	v := w.views[epoch]
	if v != nil && !v.base {
		tab = v.tables[id]
	}
	w.mu.Unlock()
	switch {
	case v == nil:
		return nil, false, fmt.Errorf("worker has no layout epoch %d", epoch)
	case v.base:
		if !w.assigned[id] {
			return nil, false, fmt.Errorf("worker does not host partition %d", id)
		}
		return nil, true, nil
	case tab == nil:
		return nil, false, fmt.Errorf("worker does not host partition %d in epoch %d", id, epoch)
	default:
		return tab, false, nil
	}
}

// handleAdmin executes one migration-control request under the worker mutex
// (payload decoding happens outside it: decodes are the expensive part and
// touch no shared state).
func (w *Worker) handleAdmin(req AdminRequest) AdminResponse {
	switch req.Op {
	case AdminRetire:
		w.mu.Lock()
		delete(w.views, req.Epoch)
		w.mu.Unlock()
		w.m.epochRetires.Inc()
		return AdminResponse{}
	case AdminFetch:
		tab, useStore, err := w.lookup(req.Epoch, req.ID)
		if err != nil {
			return AdminResponse{Err: fmt.Sprintf("fetching partition %d: %v", req.ID, err)}
		}
		if useStore {
			sp, err := w.store.Partition(req.ID)
			if err != nil {
				return AdminResponse{Err: fmt.Sprintf("fetching partition %d: %v", req.ID, err)}
			}
			tab = sp.Table
		}
		var buf bytes.Buffer
		if err := tab.Encode(&buf); err != nil {
			return AdminResponse{Err: fmt.Sprintf("encoding partition %d: %v", req.ID, err)}
		}
		return AdminResponse{Payload: buf.Bytes(), Rows: int64(tab.NumRows())}
	case AdminInstall:
		var tab *colstore.Table
		if req.ReuseID < 0 {
			t, err := colstore.Decode(bytes.NewReader(req.Payload))
			if err != nil {
				return AdminResponse{Err: fmt.Sprintf("decoding partition %d payload (req %d): %v", req.ID, req.Seq, err)}
			}
			if int64(t.NumRows()) != req.Rows {
				return AdminResponse{Err: fmt.Sprintf("partition %d payload has %d rows, expected %d", req.ID, t.NumRows(), req.Rows)}
			}
			tab = t
			w.m.installedBytes.Add(int64(len(req.Payload)))
		} else {
			t, useStore, err := w.lookup(req.ReuseEpoch, req.ReuseID)
			if err != nil {
				return AdminResponse{Err: fmt.Sprintf("aliasing partition %d: %v", req.ID, err)}
			}
			if useStore {
				sp, err := w.store.Partition(req.ReuseID)
				if err != nil {
					return AdminResponse{Err: fmt.Sprintf("aliasing partition %d: %v", req.ID, err)}
				}
				t = sp.Table
			}
			if int64(t.NumRows()) != req.Rows {
				return AdminResponse{Err: fmt.Sprintf("alias source %d has %d rows, expected %d", req.ReuseID, t.NumRows(), req.Rows)}
			}
			tab = t
		}
		w.mu.Lock()
		if w.views[req.Epoch] == nil {
			w.views[req.Epoch] = &epochView{tables: make(map[layout.ID]*colstore.Table)}
		}
		v := w.views[req.Epoch]
		if v.base {
			w.mu.Unlock()
			return AdminResponse{Err: "cannot install into the base epoch"}
		}
		v.tables[req.ID] = tab
		w.mu.Unlock()
		w.m.installs.Inc()
		return AdminResponse{}
	default:
		return AdminResponse{Err: fmt.Sprintf("unknown admin op %d", req.Op)}
	}
}

// Epochs lists the layout epochs the worker currently serves, ascending.
// Test/diagnostic surface.
func (w *Worker) Epochs() []uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]uint64, 0, len(w.views))
	for e := range w.views {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Start begins serving on addr (use "127.0.0.1:0" for tests) and returns
// the bound address.
func (w *Worker) Start(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	if err := w.Serve(l); err != nil {
		l.Close()
		return "", err
	}
	return l.Addr().String(), nil
}

// Serve begins serving scan sessions on an existing listener — the
// fault-injection suites wrap a loopback listener in faultnet before handing
// it over. The worker owns l from here on and closes it on Close. Serving on
// a closed or already-started worker is an error.
func (w *Worker) Serve(l net.Listener) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("dist: worker is closed")
	}
	if w.listener != nil {
		return errors.New("dist: worker already started")
	}
	w.listener = l
	w.wg.Add(1)
	go w.acceptLoop(l)
	return nil
}

func (w *Worker) acceptLoop(l net.Listener) {
	defer w.wg.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.serveConn(c)
		}()
	}
}

// trackConn registers a live session; it reports false when the worker is
// already closed (the connection must be rejected).
func (w *Worker) trackConn(c net.Conn) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	w.conns[c] = true
	w.m.activeConns.Add(1)
	return true
}

func (w *Worker) untrackConn(c net.Conn) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.conns[c] {
		delete(w.conns, c)
		w.m.activeConns.Add(-1)
	}
}

// serveConn detects the session protocol by its first bytes: the binary
// frame protocol announces itself with the serve.Magic preamble, anything
// else is a legacy gob codec pair.
func (w *Worker) serveConn(c net.Conn) {
	if !w.trackConn(c) {
		c.Close()
		return
	}
	defer w.untrackConn(c)
	defer c.Close()
	br := bufio.NewReader(c)
	peek, err := br.Peek(len(serve.Magic))
	if err != nil {
		if !errors.Is(err, io.EOF) && !w.isClosed() {
			w.m.dropped.Inc()
		}
		return
	}
	if bytes.Equal(peek, serve.Magic[:]) {
		br.Discard(len(serve.Magic))
		w.serveBinaryConn(c, br)
		return
	}
	w.serveGobConn(c, br)
}

// serveBinaryConn pipelines scan frames over one multiplexed session.
func (w *Worker) serveBinaryConn(c net.Conn, br *bufio.Reader) {
	err := serve.ServeConn(c, br, workerMaxInflight, func(typ byte, payload []byte) (byte, serve.Marshaler, error) {
		switch typ {
		case msgScanReq:
			var req ScanRequest
			if err := req.UnmarshalWire(payload); err != nil {
				return 0, nil, err
			}
			resp := w.handle(req)
			return msgScanResp, &resp, nil
		case msgAdminReq:
			var req AdminRequest
			if err := req.UnmarshalWire(payload); err != nil {
				return 0, nil, err
			}
			resp := w.handleAdmin(req)
			return msgAdminResp, &resp, nil
		default:
			return 0, nil, fmt.Errorf("dist: unexpected worker frame type %d", typ)
		}
	})
	if err != nil && !errors.Is(err, io.EOF) && !w.isClosed() {
		w.m.dropped.Inc()
	}
}

// serveGobConn is the legacy session loop: one exchange at a time.
func (w *Worker) serveGobConn(c net.Conn, br *bufio.Reader) {
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(c)
	for {
		var req ScanRequest
		if err := dec.Decode(&req); err != nil {
			// Connection-level failures end the session; the master will
			// redial. A clean EOF or our own Close is not a drop.
			if !errors.Is(err, io.EOF) && !w.isClosed() {
				w.m.dropped.Inc()
			}
			return
		}
		resp := w.handle(req)
		if err := enc.Encode(&resp); err != nil {
			w.m.dropped.Inc()
			return
		}
	}
}

// scanKey is the scan-sharing key: one partition under one predicate class
// in one layout epoch. The box bytes identify the predicate — two requests
// share a kernel pass only when their rewritten range is bit-identical, so
// sharing can never change a result. The epoch participates because the same
// ID names different physical partitions in different epochs; renamed
// partitions that alias one table could legally share across epochs, but the
// key cannot know which IDs alias without racing the install path.
func scanKey(epoch uint64, id layout.ID, q geom.Box) string {
	b := make([]byte, 0, 16+16*len(q.Lo))
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(id)))
	for _, v := range q.Lo {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	for _, v := range q.Hi {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return string(b)
}

// scanPartition runs (or attaches to) the kernel scan of one partition under
// one layout epoch. shared reports an attachment: the stats describe a
// kernel pass another request ran.
func (w *Worker) scanPartition(epoch uint64, id layout.ID, q geom.Box) (colstore.ScanStats, bool, error) {
	st, shared, err := w.flight.Do(scanKey(epoch, id, q), func() (colstore.ScanStats, error) {
		tab, useStore, err := w.lookup(epoch, id)
		if err != nil {
			return colstore.ScanStats{}, err
		}
		if w.scanHook != nil {
			w.scanHook(id)
		}
		if useStore {
			return w.store.ScanPartitionParallel(id, q, w.scanPool)
		}
		return tab.CountParallel(q, w.scanPool, &w.tabScanners), nil
	})
	if shared {
		w.m.sharedScans.Inc()
	}
	return st, shared, err
}

// batchKey is the whole-batch sharing key: the layout epoch, the ordered
// partition list, the predicate box and whether the request is traced. Seq
// and Deadline are deliberately excluded — they vary per request but do not
// change what a clean scan returns. Traced requests only coalesce with
// traced requests: an untraced leader records no spans, and a traced waiter
// inheriting its spanless response would lose the per-partition story the
// trace exists for. Sampling keeps traced requests rare, so the split costs
// the sharing window nearly nothing.
func batchKey(req ScanRequest) string {
	b := make([]byte, 0, 9+8*len(req.IDs)+16*len(req.Query.Lo))
	if req.TraceID != 0 {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint64(b, req.Epoch)
	for _, id := range req.IDs {
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(id)))
	}
	for _, v := range req.Query.Lo {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	for _, v := range req.Query.Hi {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return string(b)
}

// handle executes one scan batch, coalescing onto an identical in-flight
// batch when one exists. A shared result is only reused when it is clean: an
// errored leader batch (deadline drop, partition failure) reflects the
// leader's deadline and abort point, so a waiter that inherits one re-runs
// the batch under its own request instead.
func (w *Worker) handle(req ScanRequest) ScanResponse {
	w.m.scans.Inc()
	resp, shared, _ := w.batchFlight.Do(batchKey(req), func() (ScanResponse, error) {
		// Coalescing point (group-commit style): the leader gives every
		// already-decoded sibling request one scheduling turn to attach
		// before the kernel passes start. Without it a non-blocking batch
		// runs to completion before equal requests ever enter the flight —
		// on a single-P runtime they would serialise and never share.
		runtime.Gosched()
		return w.execBatch(req), nil
	})
	if shared {
		if resp.Err != "" {
			return w.execBatch(req)
		}
		w.m.sharedScans.Add(int64(len(req.IDs)))
		if req.TraceID != 0 {
			// The spans describe the leader's kernel passes; this request
			// merely attached. Copy the fragment (the shared slice is
			// read-only) and flag its batch root so the master's trace shows
			// the coalescing.
			resp.Spans = markSharedSpans(resp.Spans)
		}
	}
	return resp
}

// markSharedSpans copies a shared batch's span fragment, annotating its root
// (Parent 0) with KeyShared. Only the mutated root's attrs are deep-copied.
func markSharedSpans(spans []trace.Span) []trace.Span {
	out := append([]trace.Span(nil), spans...)
	for i := range out {
		if out[i].Parent == 0 {
			attrs := make([]trace.Attr, 0, len(out[i].Attrs)+1)
			attrs = append(attrs, out[i].Attrs...)
			out[i].Attrs = append(attrs, trace.Attr{K: trace.KeyShared, V: 1})
		}
	}
	return out
}

// execBatch runs one scan batch for real. A per-partition failure stops the
// batch and names the failing partition, but the telemetry for the
// partitions already scanned is flushed regardless — a partial batch still
// did real I/O. The wire deadline is honored between partitions: work the
// master has already abandoned is dropped instead of scanned.
func (w *Worker) execBatch(req ScanRequest) ScanResponse {
	resp := ScanResponse{FailedPartition: -1}
	var deadline time.Time
	if req.Deadline > 0 {
		deadline = time.Unix(0, req.Deadline)
	}
	// Traced requests (TraceID != 0) record a local span fragment: a batch
	// root plus one scan span per partition, annotated with the kernel's
	// byte/group accounting and encoding mix. Untraced requests keep tq nil —
	// every span call below compiles down to a nil check.
	var tq *trace.T
	var root trace.SpanRef
	if req.TraceID != 0 {
		tq = trace.NewLocal()
		root = tq.Start("worker_batch", trace.SpanRef{})
		root.Int(trace.KeyEpoch, int64(req.Epoch))
		root.Int(trace.KeyPartitions, int64(len(req.IDs)))
	}
	for _, id := range req.IDs {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			resp.Err = fmt.Sprintf("scan deadline exceeded at partition %d (req %d)", id, req.Seq)
			resp.FailedPartition = int64(id)
			w.m.deadlineDrops.Inc()
			if tq != nil {
				root.Int(trace.KeyError, 1)
			}
			break
		}
		sp := tq.Start("scan", root)
		st, sharedScan, err := w.scanPartition(req.Epoch, id, req.Query)
		if err != nil {
			if tq != nil {
				sp.Int(trace.KeyPartition, int64(id))
				sp.Int(trace.KeyError, 1)
				sp.End()
			}
			resp.Err = err.Error()
			resp.FailedPartition = int64(id)
			w.m.errors.Inc()
			break
		}
		if tq != nil {
			sp.Int(trace.KeyPartition, int64(id))
			sp.Int(trace.KeyRows, int64(st.Matched))
			sp.Int(trace.KeyBytesRead, st.BytesRead)
			sp.Int(trace.KeyBytesSkipped, st.BytesSkipped)
			sp.Int(trace.KeyGroupsRead, int64(st.GroupsRead))
			sp.Int(trace.KeyGroupsSkipped, int64(st.GroupsSkipped))
			sp.Int(trace.KeyGroupsZoneSkipped, int64(st.GroupsZoneSkipped))
			sp.Int(trace.KeyEncRaw, int64(st.ColsRaw))
			sp.Int(trace.KeyEncDict, int64(st.ColsDict))
			sp.Int(trace.KeyEncRLE, int64(st.ColsRLE))
			sp.Int(trace.KeyEncFOR, int64(st.ColsFOR))
			if sharedScan {
				sp.Int(trace.KeyShared, 1)
			}
			sp.End()
		}
		resp.Rows += st.Matched
		resp.BytesRead += st.BytesRead
		resp.BytesSkipped += st.BytesSkipped
		resp.GroupsRead += st.GroupsRead
		resp.GroupsSkipped += st.GroupsSkipped
		resp.GroupsZoneSkipped += st.GroupsZoneSkipped
	}
	if tq != nil {
		root.End()
		resp.Spans = tq.Spans()
	}
	w.m.rows.Add(int64(resp.Rows))
	w.m.bytesRead.Add(resp.BytesRead)
	w.m.bytesSkipped.Add(resp.BytesSkipped)
	w.m.groupsRead.Add(int64(resp.GroupsRead))
	w.m.groupsSkip.Add(int64(resp.GroupsSkipped))
	w.m.zoneSkip.Add(int64(resp.GroupsZoneSkipped))
	w.m.decodedHist.Observe(float64(resp.BytesRead))
	w.m.skippedHist.Observe(float64(resp.BytesSkipped))
	return resp
}

func (w *Worker) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

// Ready reports whether the worker can serve scans — it is listening and not
// closed. The /readyz endpoint of pawworker is built on it.
func (w *Worker) Ready() (bool, string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch {
	case w.closed:
		return false, "worker is closed"
	case w.listener == nil:
		return false, "worker is not serving yet"
	}
	return true, "ok"
}

// Close stops the listener, terminates live sessions (masters park
// connections in Decode between queries — they observe the reset and redial)
// and waits for the serving goroutines to finish. Close is idempotent.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	l := w.listener
	for c := range w.conns {
		c.Close()
	}
	w.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	w.wg.Wait()
	return err
}
