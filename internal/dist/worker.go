package dist

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"paw/internal/blockstore"
	"paw/internal/layout"
	"paw/internal/parbuild"
)

// Worker hosts a subset of a store's partitions and serves ScanRequests.
// A worker only answers for the partitions assigned to it; requests for
// foreign partitions are errors (they indicate a master/placement bug).
type Worker struct {
	store    *blockstore.Store
	assigned map[layout.ID]bool
	// scanPool parallelises row-group scans within a partition. Fan is safe
	// for concurrent drivers, so all connections share the one bounded pool —
	// total scan parallelism stays bounded regardless of session count.
	scanPool *parbuild.Pool

	mu       sync.Mutex
	listener net.Listener
	wg       sync.WaitGroup
	closed   bool
	// conns tracks live sessions so Close can terminate connections parked
	// in Decode (a master holds its connections open between queries;
	// without this, Close would block on wg.Wait forever).
	conns map[net.Conn]bool
	// m is the optional worker telemetry (SetMetrics).
	m workerMetrics
}

// NewWorker builds a worker serving the assigned partitions of store.
func NewWorker(store *blockstore.Store, assigned []layout.ID) *Worker {
	m := make(map[layout.ID]bool, len(assigned))
	for _, id := range assigned {
		m[id] = true
	}
	return &Worker{
		store:    store,
		assigned: m,
		scanPool: parbuild.New(0),
		conns:    make(map[net.Conn]bool),
	}
}

// Start begins serving on addr (use "127.0.0.1:0" for tests) and returns
// the bound address.
func (w *Worker) Start(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	if err := w.Serve(l); err != nil {
		l.Close()
		return "", err
	}
	return l.Addr().String(), nil
}

// Serve begins serving scan sessions on an existing listener — the
// fault-injection suites wrap a loopback listener in faultnet before handing
// it over. The worker owns l from here on and closes it on Close. Serving on
// a closed or already-started worker is an error.
func (w *Worker) Serve(l net.Listener) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("dist: worker is closed")
	}
	if w.listener != nil {
		return errors.New("dist: worker already started")
	}
	w.listener = l
	w.wg.Add(1)
	go w.acceptLoop(l)
	return nil
}

func (w *Worker) acceptLoop(l net.Listener) {
	defer w.wg.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.serveConn(c)
		}()
	}
}

// trackConn registers a live session; it reports false when the worker is
// already closed (the connection must be rejected).
func (w *Worker) trackConn(c net.Conn) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	w.conns[c] = true
	w.m.activeConns.Add(1)
	return true
}

func (w *Worker) untrackConn(c net.Conn) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.conns[c] {
		delete(w.conns, c)
		w.m.activeConns.Add(-1)
	}
}

func (w *Worker) serveConn(c net.Conn) {
	if !w.trackConn(c) {
		c.Close()
		return
	}
	defer w.untrackConn(c)
	defer c.Close()
	dec := gob.NewDecoder(c)
	enc := gob.NewEncoder(c)
	for {
		var req ScanRequest
		if err := dec.Decode(&req); err != nil {
			// Connection-level failures end the session; the master will
			// redial. A clean EOF or our own Close is not a drop.
			if !errors.Is(err, io.EOF) && !w.isClosed() {
				w.m.dropped.Inc()
			}
			return
		}
		resp := w.handle(req)
		if err := enc.Encode(&resp); err != nil {
			w.m.dropped.Inc()
			return
		}
	}
}

// handle executes one scan batch. A per-partition failure stops the batch
// and names the failing partition, but the telemetry for the partitions
// already scanned is flushed regardless — a partial batch still did real
// I/O. The wire deadline is honored between partitions: work the master has
// already abandoned is dropped instead of scanned.
func (w *Worker) handle(req ScanRequest) ScanResponse {
	w.m.scans.Inc()
	resp := ScanResponse{FailedPartition: -1}
	var deadline time.Time
	if req.Deadline > 0 {
		deadline = time.Unix(0, req.Deadline)
	}
	for _, id := range req.IDs {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			resp.Err = fmt.Sprintf("scan deadline exceeded at partition %d (req %d)", id, req.Seq)
			resp.FailedPartition = int64(id)
			w.m.deadlineDrops.Inc()
			break
		}
		if !w.assigned[id] {
			resp.Err = fmt.Sprintf("worker does not host partition %d", id)
			resp.FailedPartition = int64(id)
			w.m.errors.Inc()
			break
		}
		st, err := w.store.ScanPartitionParallel(id, req.Query, w.scanPool)
		if err != nil {
			resp.Err = err.Error()
			resp.FailedPartition = int64(id)
			w.m.errors.Inc()
			break
		}
		resp.Rows += st.Matched
		resp.BytesRead += st.BytesRead
		resp.BytesSkipped += st.BytesSkipped
		resp.GroupsRead += st.GroupsRead
		resp.GroupsSkipped += st.GroupsSkipped
		resp.GroupsZoneSkipped += st.GroupsZoneSkipped
	}
	w.m.rows.Add(int64(resp.Rows))
	w.m.bytesRead.Add(resp.BytesRead)
	w.m.bytesSkipped.Add(resp.BytesSkipped)
	w.m.groupsRead.Add(int64(resp.GroupsRead))
	w.m.groupsSkip.Add(int64(resp.GroupsSkipped))
	w.m.zoneSkip.Add(int64(resp.GroupsZoneSkipped))
	w.m.decodedHist.Observe(float64(resp.BytesRead))
	w.m.skippedHist.Observe(float64(resp.BytesSkipped))
	return resp
}

func (w *Worker) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

// Close stops the listener, terminates live sessions (masters park
// connections in Decode between queries — they observe the reset and redial)
// and waits for the serving goroutines to finish. Close is idempotent.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	l := w.listener
	for c := range w.conns {
		c.Close()
	}
	w.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	w.wg.Wait()
	return err
}
