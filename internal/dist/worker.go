package dist

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"paw/internal/blockstore"
	"paw/internal/layout"
)

// Worker hosts a subset of a store's partitions and serves ScanRequests.
// A worker only answers for the partitions assigned to it; requests for
// foreign partitions are errors (they indicate a master/placement bug).
type Worker struct {
	store    *blockstore.Store
	assigned map[layout.ID]bool

	mu       sync.Mutex
	listener net.Listener
	wg       sync.WaitGroup
	closed   bool
	// conns tracks live sessions so Close can terminate connections parked
	// in Decode (a master holds its connections open between queries;
	// without this, Close would block on wg.Wait forever).
	conns map[net.Conn]bool
	// m is the optional worker telemetry (SetMetrics).
	m workerMetrics
}

// NewWorker builds a worker serving the assigned partitions of store.
func NewWorker(store *blockstore.Store, assigned []layout.ID) *Worker {
	m := make(map[layout.ID]bool, len(assigned))
	for _, id := range assigned {
		m[id] = true
	}
	return &Worker{store: store, assigned: m, conns: make(map[net.Conn]bool)}
}

// Start begins serving on addr (use "127.0.0.1:0" for tests) and returns
// the bound address.
func (w *Worker) Start(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	w.mu.Lock()
	w.listener = l
	w.mu.Unlock()
	w.wg.Add(1)
	go w.acceptLoop(l)
	return l.Addr().String(), nil
}

func (w *Worker) acceptLoop(l net.Listener) {
	defer w.wg.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.serveConn(c)
		}()
	}
}

// trackConn registers a live session; it reports false when the worker is
// already closed (the connection must be rejected).
func (w *Worker) trackConn(c net.Conn) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	w.conns[c] = true
	w.m.activeConns.Add(1)
	return true
}

func (w *Worker) untrackConn(c net.Conn) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.conns[c] {
		delete(w.conns, c)
		w.m.activeConns.Add(-1)
	}
}

func (w *Worker) serveConn(c net.Conn) {
	if !w.trackConn(c) {
		c.Close()
		return
	}
	defer w.untrackConn(c)
	defer c.Close()
	dec := gob.NewDecoder(c)
	enc := gob.NewEncoder(c)
	for {
		var req ScanRequest
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !w.isClosed() {
				// Connection-level failures end the session; the master
				// will redial.
				w.m.dropped.Inc()
				return
			}
			return
		}
		resp := w.handle(req)
		if err := enc.Encode(&resp); err != nil {
			w.m.dropped.Inc()
			return
		}
	}
}

func (w *Worker) handle(req ScanRequest) ScanResponse {
	w.m.scans.Inc()
	var resp ScanResponse
	for _, id := range req.IDs {
		if !w.assigned[id] {
			resp.Err = fmt.Sprintf("worker does not host partition %d", id)
			w.m.errors.Inc()
			return resp
		}
		st, err := w.store.ScanPartition(id, req.Query)
		if err != nil {
			resp.Err = err.Error()
			w.m.errors.Inc()
			return resp
		}
		resp.Rows += st.Matched
		resp.BytesRead += st.BytesRead
		resp.GroupsRead += st.GroupsRead
		resp.GroupsSkipped += st.GroupsSkipped
	}
	w.m.rows.Add(int64(resp.Rows))
	w.m.bytesRead.Add(resp.BytesRead)
	w.m.groupsRead.Add(int64(resp.GroupsRead))
	w.m.groupsSkip.Add(int64(resp.GroupsSkipped))
	return resp
}

func (w *Worker) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

// Close stops the listener, terminates live sessions (masters park
// connections in Decode between queries — they observe the reset and redial)
// and waits for the serving goroutines to finish.
func (w *Worker) Close() error {
	w.mu.Lock()
	w.closed = true
	l := w.listener
	for c := range w.conns {
		c.Close()
	}
	w.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	w.wg.Wait()
	return err
}
