package dist

import (
	"context"
	"strings"
	"sync"
	"testing"

	"paw/internal/blockstore"
	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/layout"
	"paw/internal/placement"
	"paw/internal/router"
	"paw/internal/workload"
)

// testCluster spins up workers + master + client over loopback TCP.
type testCluster struct {
	data    *dataset.Dataset
	layout  *layout.Layout
	workers []*Worker
	master  *Master
	maddr   string
	client  *Client
}

func startCluster(t *testing.T, nWorkers int) *testCluster {
	t.Helper()
	data := dataset.TPCHLike(20000, 1)
	dom := data.Domain()
	hist := workload.Uniform(dom, workload.Defaults(25, 2))
	sample := data.Sample(2000, 3)
	l := core.Build(data, sample, dom, hist, core.Params{MinRows: 5, Delta: 0})
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 512})

	place := placement.RoundRobin(l, nWorkers)
	perWorker := make([][]layout.ID, nWorkers)
	for id, w := range place {
		perWorker[w] = append(perWorker[w], id)
	}
	tc := &testCluster{data: data, layout: l}
	addrs := make([]string, nWorkers)
	for w := 0; w < nWorkers; w++ {
		wk := NewWorker(store, perWorker[w])
		addr, err := wk.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[w] = addr
		tc.workers = append(tc.workers, wk)
	}
	rm, err := router.NewMaster(l, data.Names())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaster(rm, addrs, place)
	if err != nil {
		t.Fatal(err)
	}
	maddr, err := m.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tc.master = m
	tc.maddr = maddr
	cl, err := Dial(maddr)
	if err != nil {
		t.Fatal(err)
	}
	tc.client = cl
	t.Cleanup(func() {
		cl.Close()
		m.Close()
		for _, wk := range tc.workers {
			wk.Close()
		}
	})
	return tc
}

func TestDistributedQueryCorrectness(t *testing.T) {
	tc := startCluster(t, 4)
	statements := []struct {
		sql   string
		where string
	}{
		{"SELECT * FROM t WHERE l_quantity >= 10 AND l_quantity <= 20", ""},
		{"SELECT * FROM t WHERE l_shipdate BETWEEN 100 AND 800", ""},
		{"SELECT * FROM t WHERE l_quantity <= 5 OR l_quantity >= 45", ""},
	}
	rw, err := router.NewMaster(tc.layout, tc.data.Names())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range statements {
		resp, err := tc.client.Query(s.sql)
		if err != nil {
			t.Fatalf("%q: %v", s.sql, err)
		}
		plan, err := rw.RouteSQL(s.sql)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, rp := range plan.Ranges {
			want += tc.data.CountInBox(rp.Range, nil)
		}
		if resp.Rows != want {
			t.Errorf("%q: %d rows over the wire, want %d", s.sql, resp.Rows, want)
		}
		if resp.PartitionsScanned == 0 || resp.BytesScanned == 0 {
			t.Errorf("%q: empty stats %+v", s.sql, resp)
		}
	}
}

func TestDistributedConcurrentClients(t *testing.T) {
	tc := startCluster(t, 3)
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := tc.client.Query("SELECT * FROM t WHERE l_quantity >= 25 AND l_quantity <= 30"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestDistributedSQLErrorPropagates(t *testing.T) {
	tc := startCluster(t, 2)
	if _, err := tc.client.Query("SELECT * FROM t WHERE nosuchcol >= 1"); err == nil {
		t.Fatal("unknown column must error over the wire")
	} else if !strings.Contains(err.Error(), "unknown column") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The connection stays usable after an error.
	if _, err := tc.client.Query("SELECT * FROM t WHERE l_quantity >= 49"); err != nil {
		t.Fatalf("connection broken after error: %v", err)
	}
}

func TestWorkerRejectsForeignPartition(t *testing.T) {
	data := dataset.Uniform(1000, 2, 4)
	rows := make([]int, 1000)
	for i := range rows {
		rows[i] = i
	}
	hist := workload.Uniform(data.Domain(), workload.Defaults(5, 5))
	l := core.Build(data, rows, data.Domain(), hist, core.Params{MinRows: 100})
	store := blockstore.Materialize(l, data, blockstore.Config{})
	if l.NumPartitions() < 2 {
		t.Skip("need at least 2 partitions")
	}
	wk := NewWorker(store, []layout.ID{l.Parts[0].ID})
	addr, err := wk.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer wk.Close()
	c, err := Dial(addr) // same framing; talk ScanRequest directly
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp ScanResponse
	if err := c.conn.call(context.Background(), ScanRequest{Query: data.Domain(), IDs: []layout.ID{l.Parts[1].ID}}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Fatal("foreign partition must be rejected")
	}
}

func TestMasterValidatesPlacement(t *testing.T) {
	data := dataset.Uniform(500, 2, 6)
	rows := make([]int, 500)
	for i := range rows {
		rows[i] = i
	}
	hist := workload.Uniform(data.Domain(), workload.Defaults(5, 7))
	l := core.Build(data, rows, data.Domain(), hist, core.Params{MinRows: 50})
	rm, err := router.NewMaster(l, data.Names())
	if err != nil {
		t.Fatal(err)
	}
	// Missing placement.
	if _, err := NewMaster(rm, []string{"x"}, map[layout.ID]int{}); err == nil {
		t.Error("missing placement must error")
	}
	// Invalid worker index.
	bad := map[layout.ID]int{}
	for _, p := range l.Parts {
		bad[p.ID] = 5
	}
	if _, err := NewMaster(rm, []string{"x"}, bad); err == nil {
		t.Error("invalid worker index must error")
	}
}

func TestMasterWorkerDown(t *testing.T) {
	tc := startCluster(t, 2)
	// Kill one worker; queries touching its partitions must fail cleanly.
	tc.workers[0].Close()
	_, err := tc.client.Query("SELECT * FROM t") // full scan touches everything
	if err == nil {
		t.Fatal("query over a dead worker must error")
	}
}
