package dist

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"paw/internal/membership"
)

// Membership chaos scenarios (`make chaos`): worker crashes at the worst
// moments of the elastic lifecycle — mid-rebalance, right after a join —
// plus the flapping scenario. The invariant everywhere: the master answers
// every successful query exactly, and a failed rebalance leaves the old
// placement fully serving with no partial cutover.

// TestChaosRebalanceWorkerCrash: the joiner dies after registering but
// before its payload installs land. The rebalance must abort cleanly — old
// epoch serving, no worker holding any piece of the next epoch — and a later
// round (after the detector declares the joiner dead) converges without it.
func TestChaosRebalanceWorkerCrash(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tc := startElasticCluster(t, 3, 1, 3000, elasticMemberConfig(), fastChaosConfig(seed))
			tc.checkExact(t)
			idx, wk := tc.joinFreshWorker(t)
			wk.Close() // crash between the handshake and the first install

			if _, err := tc.master.Rebalance(context.Background(), false); err == nil {
				t.Fatal("rebalance must abort when an install target is down")
			}
			if got := tc.master.Epoch(); got != 0 {
				t.Fatalf("epoch = %d after abort, want 0 (no partial cutover)", got)
			}
			if got := tc.reg.Snapshot().Counter(MetricMigrationsAborted); got != 1 {
				t.Errorf("aborted migrations = %d, want 1", got)
			}
			for w, worker := range tc.workers {
				if w == idx {
					continue
				}
				for _, e := range worker.Epochs() {
					if e != 0 {
						t.Errorf("worker %d holds epoch %d after the abort", w, e)
					}
				}
			}
			tc.checkExact(t)

			// The detector declares the joiner dead; the next round excludes
			// it and converges back to the surviving set — a no-op here, since
			// nothing ever moved.
			ms := tc.master.member.Load()
			now := time.Now()
			for w := 0; w < 3; w++ {
				if _, err := ms.tracker.Beat(w, now.Add(11*time.Second)); err != nil {
					t.Fatal(err)
				}
			}
			tc.master.MembershipTick(now.Add(12 * time.Second))
			view, _ := tc.master.MembershipView()
			if mem, _ := view.Member(idx); mem.State != membership.Dead {
				t.Fatalf("crashed joiner state = %v, want Dead", mem.State)
			}
			report, err := tc.master.Rebalance(context.Background(), false)
			if err != nil {
				t.Fatalf("rebalance after the joiner died: %v", err)
			}
			if report.MovedPartitions != 0 || report.Epoch != 0 {
				t.Errorf("post-death round moved %d copies to epoch %d, want a no-op at epoch 0",
					report.MovedPartitions, report.Epoch)
			}
			tc.checkExact(t)
		})
	}
}

// TestChaosJoinWorkerCrash: a worker crashes immediately after its join
// handshake, before any data moved. Queries must never notice; the failure
// detector buries the slot and the cluster stays converged.
func TestChaosJoinWorkerCrash(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tc := startElasticCluster(t, 2, 2, 3000, elasticMemberConfig(), fastChaosConfig(seed))
			idx, wk := tc.joinFreshWorker(t)
			wk.Close()
			tc.checkExact(t) // the dead joiner hosts nothing; nothing routes to it

			ms := tc.master.member.Load()
			now := time.Now()
			for w := 0; w < 2; w++ {
				if _, err := ms.tracker.Beat(w, now.Add(11*time.Second)); err != nil {
					t.Fatal(err)
				}
			}
			tc.master.MembershipTick(now.Add(12 * time.Second))
			view, _ := tc.master.MembershipView()
			if mem, _ := view.Member(idx); mem.State != membership.Dead {
				t.Fatalf("crashed joiner state = %v, want Dead", mem.State)
			}
			if got := tc.master.Epoch(); got != 0 {
				t.Fatalf("epoch = %d, want 0 (nothing should have migrated)", got)
			}
			tc.checkExact(t)
		})
	}
}

// TestChaosMembershipFlappingNoThrash: a worker flapping between Alive and
// Suspect (beats arriving just past the suspect threshold, never the dead
// one) must trigger zero rebalances and zero epoch bumps — Suspect members
// keep their placement, so the trigger condition never fires.
func TestChaosMembershipFlappingNoThrash(t *testing.T) {
	mcfg := elasticMemberConfig()
	mcfg.AutoRebalance = true
	mcfg.RebalanceCooldown = time.Nanosecond
	tc := startElasticCluster(t, 3, 2, 3000, mcfg, fastMigConfig())
	ms := tc.master.member.Load()
	now := time.Now()

	vt := now
	for round := 0; round < 5; round++ {
		// Workers 0 and 1 beat on time; worker 2's beat lands after the
		// suspect threshold but well before the dead one.
		vt = vt.Add(6 * time.Second)
		for w := 0; w < 2; w++ {
			if _, err := ms.tracker.Beat(w, vt); err != nil {
				t.Fatal(err)
			}
		}
		tc.master.MembershipTick(vt)
		view, _ := tc.master.MembershipView()
		if mem, _ := view.Member(2); mem.State != membership.Suspect {
			t.Fatalf("round %d: flapper state = %v, want Suspect", round, mem.State)
		}
		if _, err := ms.tracker.Beat(2, vt); err != nil { // ...and it comes back
			t.Fatal(err)
		}
		tc.master.MembershipTick(vt)
		tc.checkExact(t)
	}
	time.Sleep(20 * time.Millisecond) // absorb any stray auto-rebalance goroutine
	if got := tc.reg.Snapshot().Counter(MetricRebalances); got != 0 {
		t.Errorf("flapping triggered %d rebalances, want 0", got)
	}
	if got := tc.master.Epoch(); got != 0 {
		t.Errorf("flapping moved the epoch to %d, want 0", got)
	}
}

// FuzzMembershipDifferential fuzzes the elastic lifecycle itself: a seeded
// sequence of joins, graceful leaves, crashes, detector ticks and rebalances
// against a live ring-placed cluster, with a probe query after every op.
// Individual membership ops may legitimately fail (a drain with a dead
// target, a rebalance onto a crashed joiner) — the differential invariant is
// that every query the master ANSWERS is byte-identical to the static
// dataset oracle, no matter where in the churn it landed.
func FuzzMembershipDifferential(f *testing.F) {
	f.Add(int64(1), []byte{0, 4, 5, 1, 4})
	f.Add(int64(2), []byte{0, 4, 2, 3, 4, 5})
	f.Add(int64(3), []byte{0, 0, 4, 2, 3, 4, 1, 4})
	f.Add(int64(7), []byte{2, 3, 4, 0, 4, 5, 5})

	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) == 0 || len(ops) > 12 {
			t.Skip("op budget")
		}
		mcfg := elasticMemberConfig()
		tc := startElasticCluster(t, 2, 2, 1500, mcfg, fastChaosConfig(seed))
		ms := tc.master.member.Load()
		rng := rand.New(rand.NewSource(seed))
		vt := time.Now()
		crashed := map[int]bool{}

		liveMembers := func() []int {
			view, _ := tc.master.MembershipView()
			var out []int
			for _, w := range view.Placeable() {
				if !crashed[w] {
					out = append(out, w)
				}
			}
			return out
		}
		probe := func() {
			b := tc.probes()[rng.Intn(3)]
			resp, err := tc.master.Query(migSQL(tc.data.Names(), b))
			if err != nil || resp.Partial {
				return // a failure is allowed mid-churn; a wrong answer is not
			}
			if want := tc.data.CountInBox(b, nil); resp.Rows != want {
				t.Fatalf("query answered %d rows, oracle says %d", resp.Rows, want)
			}
		}

		for _, op := range ops {
			switch op % 6 {
			case 0: // join a fresh worker (bounded fleet)
				if tc.master.NumWorkers() >= 6 {
					break
				}
				wk := NewWorker(nil, nil)
				a, err := wk.Start("127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				resp := tc.master.handleMember(&MemberRequest{Op: MemberJoin, Index: -1, Addr: a, Sum: membership.Checksum(nil)})
				if resp.Err != "" {
					wk.Close()
					break
				}
				tc.workers[resp.Index] = wk
			case 1: // graceful leave of a random live member (may fail; that's fine)
				live := liveMembers()
				if len(live) < 2 {
					break
				}
				tc.master.handleMember(&MemberRequest{Op: MemberLeave, Index: live[rng.Intn(len(live))]})
			case 2: // crash a random live worker
				live := liveMembers()
				if len(live) < 2 {
					break
				}
				v := live[rng.Intn(len(live))]
				crashed[v] = true
				tc.workers[v].Close()
			case 3: // detector tick: live members beat, crashed ones go Dead
				vt = vt.Add(mcfg.Detector.DeadAfter + time.Second)
				for _, w := range liveMembers() {
					ms.tracker.Beat(w, vt)
				}
				tc.master.MembershipTick(vt)
			case 4: // rebalance (full or budgeted); failures must not corrupt
				tc.master.Rebalance(context.Background(), op&0x80 != 0)
			case 5: // extra probe pressure
				probe()
			}
			probe()
		}
		// Settle: declare crashed workers dead and converge, then the whole
		// probe set must answer exactly.
		vt = vt.Add(mcfg.Detector.DeadAfter + time.Second)
		for _, w := range liveMembers() {
			ms.tracker.Beat(w, vt)
		}
		tc.master.MembershipTick(vt)
		if _, err := tc.master.Rebalance(context.Background(), true); err == nil {
			tc.checkExact(t)
		}
	})
}
