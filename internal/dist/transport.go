package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"paw/internal/serve"
)

// Transport selects the master↔worker wire protocol.
type Transport int

const (
	// TransportBinary is the production path: the length-prefixed binary
	// frame protocol of internal/serve, with requests from many concurrent
	// queries pipelined over a small fixed pool of connections per worker and
	// responses matched back by sequence number.
	TransportBinary Transport = iota
	// TransportGob is the legacy one-gob-codec-per-connection protocol,
	// retained as the differential oracle for the binary path: both must
	// return byte-identical query results, including failures and partial
	// results.
	TransportGob
)

// String names the transport for logs and benchmark reports.
func (t Transport) String() string {
	if t == TransportGob {
		return "gob"
	}
	return "binary"
}

// workerLink is one master→worker transport endpoint. Implementations
// must be safe for concurrent scan calls.
type workerLink interface {
	// scan performs one ScanRequest round trip. The error contract follows
	// serve.Mux.Call: a serve.NotSentError means the link was never touched
	// and remains healthy; any other failure means the caller should drop
	// the link and redial.
	scan(ctx context.Context, req *ScanRequest, resp *ScanResponse) error
	// admin performs one migration-control round trip (same error contract
	// as scan). Only the binary transport carries admin frames.
	admin(ctx context.Context, req *AdminRequest, resp *AdminResponse) error
	close()
}

// gobLink adapts the legacy codec-pair connection to the link interface.
type gobLink struct{ c *conn }

func (l *gobLink) scan(ctx context.Context, req *ScanRequest, resp *ScanResponse) error {
	return l.c.call(ctx, req, resp)
}

// admin fails: the gob worker loop decodes a homogeneous ScanRequest stream,
// so migration control cannot ride it. Migrations require TransportBinary;
// the gob path remains the query-time differential oracle.
func (l *gobLink) admin(context.Context, *AdminRequest, *AdminResponse) error {
	return errors.New("dist: partition migration requires the binary transport (gob is the query-path oracle only)")
}

func (l *gobLink) close() { l.c.Close() }

// muxLink fans scan calls over a fixed pool of multiplexed binary
// connections round-robin. Any number of requests may be in flight on each
// connection; the pool exists to spread framing/write contention, not to
// bound concurrency.
type muxLink struct {
	muxes []*serve.Mux
	next  atomic.Uint32
}

// dialMuxLink opens n multiplexed connections to addr under ctx's deadline.
func dialMuxLink(ctx context.Context, addr string, n int) (*muxLink, error) {
	if n < 1 {
		n = 1
	}
	l := &muxLink{muxes: make([]*serve.Mux, 0, n)}
	var d net.Dialer
	for i := 0; i < n; i++ {
		nc, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			l.close()
			return nil, err
		}
		mx, err := serve.NewMux(nc)
		if err != nil {
			l.close()
			return nil, err
		}
		l.muxes = append(l.muxes, mx)
	}
	return l, nil
}

func (l *muxLink) scan(ctx context.Context, req *ScanRequest, resp *ScanResponse) error {
	mx := l.muxes[int(l.next.Add(1)-1)%len(l.muxes)]
	return mx.Call(ctx, msgScanReq, req, func(typ byte, payload []byte) error {
		if typ != msgScanResp {
			return fmt.Errorf("dist: unexpected frame type %d for scan response", typ)
		}
		return resp.UnmarshalWire(payload)
	})
}

func (l *muxLink) admin(ctx context.Context, req *AdminRequest, resp *AdminResponse) error {
	mx := l.muxes[int(l.next.Add(1)-1)%len(l.muxes)]
	return mx.Call(ctx, msgAdminReq, req, func(typ byte, payload []byte) error {
		if typ != msgAdminResp {
			return fmt.Errorf("dist: unexpected frame type %d for admin response", typ)
		}
		return resp.UnmarshalWire(payload)
	})
}

func (l *muxLink) close() {
	for _, mx := range l.muxes {
		if mx != nil {
			mx.Close()
		}
	}
}

// MuxClient speaks SQL to a master over the multiplexed binary protocol.
// Unlike the gob Client — whose connection mutex serialises exchanges — a
// MuxClient is safe for concurrent use and pipelines every in-flight query
// over its one connection; a deadline or cancellation abandons only the one
// call, never the connection.
type MuxClient struct {
	mux          *serve.Mux
	allowPartial atomic.Bool
}

// DialMux connects to a master's client port with the binary protocol.
func DialMux(addr string) (*MuxClient, error) {
	mx, err := serve.DialMux(addr)
	if err != nil {
		return nil, err
	}
	return &MuxClient{mux: mx}, nil
}

// SetAllowPartial opts this client's future queries into partial results.
// Safe to call concurrently with queries.
func (c *MuxClient) SetAllowPartial(v bool) { c.allowPartial.Store(v) }

// Query runs one SQL statement with no client-side deadline.
func (c *MuxClient) Query(sql string) (QueryResponse, error) {
	return c.QueryContext(context.Background(), sql)
}

// QueryContext runs one SQL statement under ctx. The deadline ships to the
// master (threaded through every worker scan) and bounds the local wait; an
// expiry abandons the call but leaves the connection healthy — the late
// response is discarded by sequence number.
func (c *MuxClient) QueryContext(ctx context.Context, sql string) (QueryResponse, error) {
	return c.call(ctx, sql, false)
}

// Explain runs one SQL statement with a forced trace (EXPLAIN ANALYZE): the
// master samples it regardless of its tracing configuration and the response
// carries the assembled span tree (QueryResponse.Spans), per-partition
// worker scans included.
func (c *MuxClient) Explain(ctx context.Context, sql string) (QueryResponse, error) {
	return c.call(ctx, sql, true)
}

func (c *MuxClient) call(ctx context.Context, sql string, explain bool) (QueryResponse, error) {
	req := QueryRequest{SQL: sql, AllowPartial: c.allowPartial.Load(), Trace: explain}
	if d, ok := ctx.Deadline(); ok {
		ms := time.Until(d).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.TimeoutMillis = ms
	}
	var resp QueryResponse
	err := c.mux.Call(ctx, msgQueryReq, &req, func(typ byte, payload []byte) error {
		if typ != msgQueryResp {
			return fmt.Errorf("dist: unexpected frame type %d for query response", typ)
		}
		return resp.UnmarshalWire(payload)
	})
	if err != nil {
		return QueryResponse{}, err
	}
	if resp.Err != "" {
		return QueryResponse{}, respError(resp)
	}
	return resp, nil
}

// Close closes the client connection; in-flight queries fail.
func (c *MuxClient) Close() error { return c.mux.Close() }

// respError converts a response-carried failure into a client-side error,
// mapping typed codes onto their sentinel errors so callers can errors.Is.
func respError(resp QueryResponse) error {
	if resp.ErrCode == ErrCodeOverloaded {
		return fmt.Errorf("%s: %w", resp.Err, serve.ErrOverloaded)
	}
	return errors.New(resp.Err)
}

// errCodeFor maps a master-side failure to its wire code.
func errCodeFor(err error) int {
	if errors.Is(err, serve.ErrOverloaded) {
		return ErrCodeOverloaded
	}
	return ErrCodeNone
}
