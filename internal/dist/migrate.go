package dist

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync/atomic"
	"time"

	"paw/internal/layout"
	"paw/internal/placement"
	"paw/internal/router"
	"paw/internal/serve"
)

// Partition migration (DESIGN.md §13): the drift re-partitioner hands the
// master a Migration — the next layout's router and placement plus one
// install step per partition — and ApplyMigration executes it without
// stopping service. Install steps land one by one; the query path
// double-routes the whole time (planFor) and serves a query from the next
// epoch only once every partition its plan touches is installed. When all
// steps have landed the master cuts over atomically, sweeps the plan/result
// caches per partition (renamed entries are translated, entries touching the
// rebuilt region are dropped), waits for in-flight old-epoch queries to
// drain, and retires the old epoch on the workers. Any install failure
// aborts: the next epoch is torn down best-effort and the old placement
// keeps serving — a migration either cuts over completely or not at all.

// MigrationEntry installs one partition of the next layout on its replica
// set.
type MigrationEntry struct {
	// ID is the partition in the next layout's numbering.
	ID layout.ID
	// Workers is the replica set to install on (placement of the next
	// layout; must match Replicas[ID]).
	Workers []int
	// ReuseID, when >= 0, aliases the current epoch's partition ReuseID:
	// the partition survived the patch unchanged, so every worker that
	// holds it just learns the new name — zero bytes move. When < 0 the
	// Payload carries the encoded column-store table.
	ReuseID layout.ID
	// Payload is the colstore-encoded table for a rebuilt partition
	// (ReuseID < 0).
	Payload []byte
	// Rows is the partition's row count, cross-checked on the worker.
	Rows int64
}

// Migration is one epoch transition: the next layout (as a router), its
// placement, and the per-partition install plan.
type Migration struct {
	// Epoch is the target layout epoch; must be exactly the served epoch+1.
	Epoch uint64
	// Router routes over the next layout.
	Router *router.Master
	// Replicas places every next-layout partition on the fixed worker
	// fleet.
	Replicas placement.Replicated
	// Entries is the install plan, one entry per next-layout partition.
	Entries []MigrationEntry
	// Renamed maps current-epoch partition IDs to next-epoch IDs for the
	// partitions that survived unchanged — the cutover cache sweep's
	// translation table.
	Renamed map[layout.ID]layout.ID
}

// activeMigration is the master's in-progress migration state: the next
// routing view plus per-partition readiness, consulted by planFor on every
// query while the migration runs.
type activeMigration struct {
	mig   *Migration
	view  *routeView
	ready map[layout.ID]*atomic.Bool
}

// planReady reports whether every partition the plan touches has been
// installed on its replica set.
func (am *activeMigration) planReady(plan router.Plan) bool {
	for _, rp := range plan.Ranges {
		if rp.Extra >= 0 {
			return false
		}
		for _, id := range rp.Parts {
			f := am.ready[id]
			if f == nil || !f.Load() {
				return false
			}
		}
	}
	return true
}

// validate cross-checks the migration against the master's fleet and the
// served epoch before any install goes out.
func (m *Master) validateMigration(mig *Migration) error {
	cur := m.view.Load()
	if mig == nil || mig.Router == nil {
		return errors.New("dist: nil migration")
	}
	if mig.Epoch != cur.epoch+1 {
		return fmt.Errorf("dist: migration targets epoch %d, master serves %d", mig.Epoch, cur.epoch)
	}
	nl := mig.Router.Layout()
	workers := m.NumWorkers()
	if err := mig.Replicas.Validate(nl, workers); err != nil {
		return fmt.Errorf("dist: migration placement: %w", err)
	}
	seen := make(map[layout.ID]bool, len(mig.Entries))
	for _, e := range mig.Entries {
		if int(e.ID) < 0 || int(e.ID) >= len(nl.Parts) {
			return fmt.Errorf("dist: migration entry for unknown partition %d", e.ID)
		}
		if seen[e.ID] {
			return fmt.Errorf("dist: duplicate migration entry for partition %d", e.ID)
		}
		seen[e.ID] = true
		if len(e.Workers) == 0 {
			return fmt.Errorf("dist: migration entry %d has no workers", e.ID)
		}
		for _, w := range e.Workers {
			if w < 0 || w >= workers {
				return fmt.Errorf("dist: migration entry %d names worker %d of %d", e.ID, w, workers)
			}
		}
		if e.ReuseID >= 0 && mig.Renamed[e.ReuseID] != e.ID {
			return fmt.Errorf("dist: migration entry %d reuses %d but Renamed maps it to %d", e.ID, e.ReuseID, mig.Renamed[e.ReuseID])
		}
	}
	for _, p := range nl.Parts {
		if !seen[p.ID] {
			return fmt.Errorf("dist: migration has no entry for partition %d", p.ID)
		}
	}
	return nil
}

// ApplyMigration executes one epoch transition (see the package comment
// above for the protocol). Only one migration may run at a time; the master
// keeps serving throughout. On error the old placement is untouched and
// still serving — there is no partial cutover.
func (m *Master) ApplyMigration(ctx context.Context, mig *Migration) error {
	if err := m.validateMigration(mig); err != nil {
		return err
	}
	cur := m.view.Load()
	am := &activeMigration{
		mig: mig,
		view: &routeView{
			router:   mig.Router,
			replicas: mig.Replicas,
			epoch:    mig.Epoch,
		},
		ready: make(map[layout.ID]*atomic.Bool, len(mig.Entries)),
	}
	for _, e := range mig.Entries {
		am.ready[e.ID] = new(atomic.Bool)
	}
	if !m.mig.CompareAndSwap(nil, am) {
		return errors.New("dist: a migration is already in progress")
	}

	// Install deterministically in ID order: renamed partitions become
	// servable first at near-zero cost, so double-routing starts paying off
	// while the rebuilt region's payloads are still shipping.
	entries := append([]MigrationEntry(nil), mig.Entries...)
	sort.Slice(entries, func(i, j int) bool {
		if (entries[i].ReuseID >= 0) != (entries[j].ReuseID >= 0) {
			return entries[i].ReuseID >= 0
		}
		return entries[i].ID < entries[j].ID
	})
	for i := range entries {
		e := &entries[i]
		req := AdminRequest{
			Op:         AdminInstall,
			Epoch:      mig.Epoch,
			ID:         e.ID,
			ReuseEpoch: cur.epoch,
			ReuseID:    e.ReuseID,
			Rows:       e.Rows,
		}
		if e.ReuseID < 0 {
			req.Payload = e.Payload
			m.m.migratedPartitions.Inc()
			m.m.migratedBytes.Add(int64(len(e.Payload)))
		} else {
			m.m.reusedPartitions.Inc()
		}
		for _, w := range e.Workers {
			wreq := req
			if e.ReuseID >= 0 && len(e.Payload) > 0 && !workerHolds(cur.replicas[e.ReuseID], w) {
				// Hybrid entry (a rebalance move): this worker does not hold
				// the source partition under the current epoch, so it gets
				// the payload; workers that already hold it alias for free.
				wreq.ReuseID = -1
				wreq.Payload = e.Payload
				m.m.migratedBytes.Add(int64(len(e.Payload)))
			}
			if err := m.adminCall(ctx, w, wreq); err != nil {
				m.abortMigration(am)
				return fmt.Errorf("dist: installing partition %d (epoch %d) on worker %d: %w", e.ID, mig.Epoch, w, err)
			}
		}
		am.ready[e.ID].Store(true)
	}

	// Cutover: swap the served view, then translate the caches. The order
	// matters — a query that routed against the old view concurrently with
	// the swap may still Put into the caches, which is why the serving path
	// re-checks the current view before caching.
	m.view.Store(am.view)
	m.mig.Store(nil)
	m.sweepCaches(mig)
	m.m.migrations.Inc()
	m.m.layoutEpoch.Set(int64(mig.Epoch))

	// Retire the old epoch once no in-flight query can still reference it.
	// Best-effort: a worker that is down redials on the next admin call or
	// drops the stale view when it restarts.
	drainCtx, cancel := context.WithTimeout(context.Background(), m.cfg.DrainTimeout)
	for cur.inflight.Load() > 0 && drainCtx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if n := cur.inflight.Load(); n > 0 {
		m.m.drainTimeouts.Inc()
		slog.Warn("epoch drain timed out, retiring anyway",
			"epoch", cur.epoch, "inflight", n, "timeout", m.cfg.DrainTimeout)
	}
	m.retireEpoch(cur.epoch)
	return nil
}

// workerHolds reports whether w appears in the replica set ws.
func workerHolds(ws []int, w int) bool {
	for _, h := range ws {
		if h == w {
			return true
		}
	}
	return false
}

// abortMigration tears down a failed migration: double-routing stops, the
// old placement keeps serving, and the half-installed next epoch is retired
// best-effort so workers do not leak tables.
func (m *Master) abortMigration(am *activeMigration) {
	m.mig.Store(nil)
	m.m.migrationsAborted.Inc()
	m.retireEpoch(am.view.epoch)
	slog.Warn("migration aborted, old placement keeps serving",
		"epoch", am.view.epoch)
}

// retireEpoch asks every worker to drop a layout epoch, best-effort.
func (m *Master) retireEpoch(epoch uint64) {
	for w, n := 0, m.NumWorkers(); w < n; w++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		err := m.adminCall(ctx, w, AdminRequest{Op: AdminRetire, Epoch: epoch})
		cancel()
		if err != nil {
			slog.Debug("epoch retire failed", "worker", w, "epoch", epoch, "err", err)
		}
	}
}

// adminCall performs one admin RPC against worker w, discarding the
// response body.
func (m *Master) adminCall(ctx context.Context, w int, req AdminRequest) error {
	_, err := m.adminCallResp(ctx, w, req)
	return err
}

// adminCallResp performs one admin RPC against worker w with bounded retries
// under the configured backoff, returning the worker's response (AdminFetch
// answers carry the encoded partition). It deliberately bypasses the
// breakers — a migration install is not query serving, and its failure
// handling is "abort the migration", not "fail over".
func (m *Master) adminCallResp(ctx context.Context, w int, req AdminRequest) (AdminResponse, error) {
	req.Seq = m.seq.Add(1)
	var lastErr error
	for attempt := 0; attempt < m.cfg.Retry.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return AdminResponse{}, err
		}
		cctx := ctx
		cancel := func() {}
		if m.cfg.CallTimeout > 0 {
			cctx, cancel = context.WithTimeout(ctx, m.cfg.CallTimeout)
		}
		var resp AdminResponse
		l, err := m.workerLink(cctx, w)
		if err == nil {
			err = l.admin(cctx, &req, &resp)
		}
		cancel()
		if err == nil && resp.Err != "" {
			// The worker executed and refused (bad payload, unknown alias):
			// retrying cannot help.
			return resp, errors.New(resp.Err)
		}
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !serve.IsNotSent(err) {
			m.dropWorkerLink(w)
			m.m.redials.Inc()
		}
		if ctx.Err() != nil {
			return AdminResponse{}, lastErr
		}
		if serr := sleepCtx(ctx, m.jit.backoff(m.cfg.Retry, attempt)); serr != nil {
			return AdminResponse{}, lastErr
		}
	}
	return AdminResponse{}, lastErr
}

// sweepCaches runs the per-partition cache invalidation at cutover. Plan
// entries whose partitions all survived the patch are translated through the
// rename map in place (the mapping is strictly increasing, so sorted
// partition lists stay sorted); entries touching the rebuilt region — or
// carrying tuner extras, which are layout-scoped — are dropped. A result
// entry survives iff its plan entry did: renamed partitions hold identical
// rows and bytes, so the cached response is still exact.
func (m *Master) sweepCaches(mig *Migration) {
	if m.planCache == nil {
		if m.resultCache != nil {
			m.resultCache.Invalidate()
			m.m.cacheInvalidations.Inc()
		}
		return
	}
	kept := make(map[string]bool)
	m.planCache.Sweep(func(sql string, e cachedPlan) (cachedPlan, bool) {
		if e.epoch+1 != mig.Epoch {
			// Routed under some other epoch (a racing query already dropped
			// or refreshed it); the rename map does not apply.
			m.m.cacheSwept.Inc()
			return e, false
		}
		translated, ok := translatePlan(e.plan, mig.Renamed)
		if !ok {
			m.m.cacheSwept.Inc()
			return e, false
		}
		m.m.cacheRemapped.Inc()
		kept[sql] = true
		return cachedPlan{plan: translated, epoch: mig.Epoch}, true
	})
	if m.resultCache != nil {
		m.resultCache.Sweep(func(sql string, resp QueryResponse) (QueryResponse, bool) {
			if kept[sql] {
				return resp, true
			}
			m.m.cacheSwept.Inc()
			return resp, false
		})
	}
}

// translatePlan rewrites a routed plan's partition IDs into the next
// layout's numbering. It fails (ok=false) when any range touches a partition
// that did not survive the patch, or is served by a tuner extra (extras are
// rebuilt per layout).
func translatePlan(plan router.Plan, renamed map[layout.ID]layout.ID) (router.Plan, bool) {
	out := router.Plan{Ranges: make([]router.RangePlan, len(plan.Ranges))}
	for i, rp := range plan.Ranges {
		if rp.Extra >= 0 {
			return router.Plan{}, false
		}
		nr := router.RangePlan{Range: rp.Range, Extra: rp.Extra, Parts: make([]layout.ID, len(rp.Parts))}
		for j, id := range rp.Parts {
			nid, ok := renamed[id]
			if !ok {
				return router.Plan{}, false
			}
			nr.Parts[j] = nid
		}
		out.Ranges[i] = nr
	}
	return out, true
}
