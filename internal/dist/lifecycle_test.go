package dist

import (
	"fmt"
	"net"
	"sync"
	"testing"
)

// Lifecycle edge cases: Close is idempotent on both node types, a closed
// node cannot be restarted, and one client connection safely multiplexes
// concurrent queries (the conn mutex serialises the gob exchange).

func TestWorkerCloseIdempotent(t *testing.T) {
	tc := startChaosCluster(t, 1, 1, nil, fastChaosConfig(1))
	w := tc.workers[0]
	if err := w.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close must be a no-op, got %v", err)
	}
}

func TestWorkerStartAfterClose(t *testing.T) {
	tc := startChaosCluster(t, 1, 1, nil, fastChaosConfig(1))
	w := tc.workers[0]
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Start("127.0.0.1:0"); err == nil {
		t.Fatal("Start on a closed worker must error")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := w.Serve(l); err == nil {
		t.Fatal("Serve on a closed worker must error")
	}
}

func TestWorkerDoubleStart(t *testing.T) {
	tc := startChaosCluster(t, 1, 1, nil, fastChaosConfig(1))
	if _, err := tc.workers[0].Start("127.0.0.1:0"); err == nil {
		t.Fatal("second Start must error while the first listener serves")
	}
}

func TestMasterCloseIdempotent(t *testing.T) {
	tc := startChaosCluster(t, 1, 1, nil, fastChaosConfig(1))
	if _, err := tc.master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := tc.master.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := tc.master.Close(); err != nil {
		t.Fatalf("second Close must be a no-op, got %v", err)
	}
}

func TestMasterStartAfterClose(t *testing.T) {
	tc := startChaosCluster(t, 1, 1, nil, fastChaosConfig(1))
	if err := tc.master.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.master.Start("127.0.0.1:0"); err == nil {
		t.Fatal("Start on a closed master must error")
	}
}

func TestMasterDoubleStart(t *testing.T) {
	tc := startChaosCluster(t, 1, 1, nil, fastChaosConfig(1))
	if _, err := tc.master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.master.Start("127.0.0.1:0"); err == nil {
		t.Fatal("second Start must error while the first listener serves")
	}
}

// TestClientConcurrentQueries hammers one client connection from many
// goroutines: the per-connection mutex must serialise the request/response
// pairs so no goroutine sees another's answer (run under -race).
func TestClientConcurrentQueries(t *testing.T) {
	tc := startChaosCluster(t, 2, 1, nil, fastChaosConfig(1))
	maddr, err := tc.master.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	want, err := tc.master.Query(chaosSQL)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(maddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				resp, err := cl.Query(chaosSQL)
				if err != nil {
					errs <- err
					return
				}
				if resp.Rows != want.Rows {
					errs <- fmt.Errorf("concurrent query returned %d rows, want %d", resp.Rows, want.Rows)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
