// Package dist implements the query framework of Fig. 4 as a real networked
// system: a master node that owns the partition-layout metadata and rewrites
// SQL into partition-ID lists, worker nodes that host materialised
// partitions and execute scans, and a client speaking SQL to the master.
// Messages are gob-encoded over TCP with one encoder/decoder pair per
// connection.
//
// The package complements internal/cluster: the simulator predicts
// end-to-end times under a disk model, while dist actually moves the scan
// work across processes/sockets — the same separation the paper has between
// its cost model (Eq. 1–2) and its Spark deployment.
//
// The path is failure-hardened end to end (DESIGN.md §10): every call
// carries a deadline over the wire, the master retries with seeded
// exponential backoff under a per-query budget, per-worker breakers
// short-circuit dials to unhealthy workers, scans fail over to partition
// replicas, and clients may opt into partial results when no replica of a
// partition survives.
package dist

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/serve"
	"paw/internal/trace"
)

// ScanRequest asks a worker to scan a set of its partitions with one range
// query.
type ScanRequest struct {
	Query geom.Box
	IDs   []layout.ID
	// Seq is the master-assigned request ID, echoed in logs/errors so a
	// retried call is attributable across hosts.
	Seq uint64
	// Deadline is the absolute call deadline in Unix nanoseconds (0: none).
	// A worker drops partitions it cannot start before the deadline instead
	// of doing work the master has already given up on.
	Deadline int64
	// Epoch selects the layout version the IDs are meant under (DESIGN.md
	// §13). 0 is the initial epoch (the worker's materialised store), so
	// pre-epoch masters stay wire-compatible; during a migration the master
	// double-routes and a late scan under the previous epoch still resolves
	// against the old partition set.
	Epoch uint64
	// TraceID, when non-zero, asks the worker to record per-partition scan
	// spans and return them in ScanResponse.Spans (DESIGN.md §14). Zero —
	// the untraced common case — keeps the worker's span path entirely off.
	TraceID uint64
}

// Admin operations carried by AdminRequest (binary transport only).
const (
	// AdminInstall publishes one partition into a layout epoch on the
	// worker, either by aliasing a partition it already holds (ReuseID >= 0)
	// or from an encoded column-store payload.
	AdminInstall = 1
	// AdminRetire drops a whole layout epoch and the partitions only it
	// references.
	AdminRetire = 2
	// AdminFetch asks the worker to encode and return one partition it hosts
	// — the rebalancer's data source: a joining worker receives payloads
	// fetched from the current holders, so the master never needs the raw
	// dataset to move partitions (DESIGN.md §15).
	AdminFetch = 3
)

// AdminRequest is the master-to-worker migration control message: install a
// partition into a layout epoch, or retire an epoch. Admin frames ride the
// multiplexed binary transport only — the legacy gob worker loop decodes a
// homogeneous ScanRequest stream and cannot carry them, which is why
// migrations require TransportBinary (the gob path stays the query-time
// differential oracle).
type AdminRequest struct {
	Op    int
	Epoch uint64
	// ID is the partition being installed (AdminInstall only).
	ID layout.ID
	// ReuseEpoch/ReuseID alias an already-installed partition: the new
	// (Epoch, ID) serves the same physical table as (ReuseEpoch, ReuseID).
	// ReuseID < 0 means Payload carries the data instead.
	ReuseEpoch uint64
	ReuseID    layout.ID
	// Payload is the colstore-encoded table for a new partition.
	Payload []byte
	// Rows is the expected row count, cross-checked after decode.
	Rows int64
	// Seq is the master-assigned request ID, echoed in logs/errors.
	Seq uint64
}

// AdminResponse reports the admin outcome ("" = success). For AdminFetch,
// Payload carries the colstore-encoded partition and Rows its row count.
type AdminResponse struct {
	Err     string
	Payload []byte
	Rows    int64
}

// ScanResponse reports the scan outcome. On a per-partition failure the
// telemetry fields keep the totals accumulated before the failing partition
// (they are informational; the master never aggregates a failed response).
type ScanResponse struct {
	Rows          int
	BytesRead     int64
	BytesSkipped  int64
	GroupsRead    int
	GroupsSkipped int
	// GroupsZoneSkipped counts the subset of GroupsSkipped proven empty by
	// feature-vector zone maps rather than the min/max envelope.
	GroupsZoneSkipped int
	Err               string
	// FailedPartition is the partition that produced Err, or -1 when the
	// response is clean (or the failure was not partition-specific).
	FailedPartition int64
	// Spans carries the worker's trace fragment when the request was traced
	// (ScanRequest.TraceID != 0): span IDs are worker-local starting at 1,
	// Parent 0 meaning "attach to the master's requesting span" — the master
	// remaps them into the query trace (trace.T.Attach). Both transports
	// carry the field, so gob and binary stay byte-identical per payload.
	Spans []trace.Span
}

// QueryRequest is the client-to-master message: one SQL statement plus the
// client's failure-handling preferences.
type QueryRequest struct {
	SQL string
	// TimeoutMillis bounds the whole query on the master (0: master default).
	TimeoutMillis int64
	// AllowPartial opts into partial results: when every replica of a
	// partition is down the master answers from the surviving partitions and
	// reports the failed ones instead of failing the query.
	AllowPartial bool
	// Trace forces a full trace of this query (EXPLAIN ANALYZE): the master
	// samples it regardless of the tracing configuration and returns the
	// assembled span tree in QueryResponse.Spans.
	Trace bool
	// Member, when non-nil, makes this exchange a membership operation (join
	// handshake, heartbeat, graceful leave) instead of a query — the envelope
	// that lets member traffic ride the legacy gob session loop, whose
	// homogeneous QueryRequest stream cannot carry a second message type.
	// The binary transport uses dedicated member frames instead. SQL is
	// ignored when Member is set; nil (the overwhelmingly common case) gob-
	// encodes to nothing.
	Member *MemberRequest
}

// QueryResponse is the master's reply after scattering the scan work.
type QueryResponse struct {
	Rows              int
	BytesScanned      int64
	BytesSkipped      int64
	PartitionsScanned int
	SubQueries        int
	Err               string
	// ErrCode is the typed code for Err (ErrCodeNone for generic failures;
	// ErrCodeOverloaded when admission control shed the query). The field is
	// a late, gob-compatible addition: old decoders ignore it.
	ErrCode int
	// Partial reports that some partitions were unreachable and the result
	// covers only the rest (only when the request allowed partial results).
	Partial bool
	// FailedPartitions lists the partitions no replica could serve.
	FailedPartitions []layout.ID
	// TraceID/Spans carry the assembled query trace, set only when the
	// request forced one (QueryRequest.Trace); untraced responses stay
	// byte-identical whether master-side tracing is on or off.
	TraceID uint64
	Spans   []trace.Span
	// Member answers a membership operation (QueryRequest.Member); nil on
	// every query response.
	Member *MemberResponse
}

// conn wraps a TCP connection with its gob codec pair and a mutex so
// concurrent callers serialise request/response exchanges.
type conn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
}

func newConn(c net.Conn) *conn {
	return &conn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

// call performs one request/response round trip under ctx: the context
// deadline maps to SetReadDeadline/SetWriteDeadline on the connection, and a
// cancellation mid-call interrupts the blocked I/O the same way, so a hung
// peer can never wedge the caller.
//
// A call that fails mid-exchange poisons the gob stream and the caller must
// drop the connection; but a call whose context was already done when it
// reached the stream — a clean deadline expiry, typically while queued
// behind another exchange on the connection mutex — never touched the codec
// pair and returns a serve.NotSentError so the caller can keep the
// connection (the redial-on-clean-expiry churn this avoids is a regression
// test).
func (c *conn) call(ctx context.Context, req, resp any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return &serve.NotSentError{Err: fmt.Errorf("dist: call aborted: %w", err)}
	}
	if d, ok := ctx.Deadline(); ok {
		c.c.SetDeadline(d)
	} else {
		c.c.SetDeadline(time.Time{})
	}
	// A cancellation (sibling failure, client gone) interrupts in-flight
	// reads/writes by expiring the connection deadline.
	stop := context.AfterFunc(ctx, func() {
		c.c.SetDeadline(time.Unix(1, 0))
	})
	defer stop()
	if err := c.enc.Encode(req); err != nil {
		return fmt.Errorf("dist: sending request: %w", ctxErr(ctx, err))
	}
	if err := c.dec.Decode(resp); err != nil {
		return fmt.Errorf("dist: reading response: %w", ctxErr(ctx, err))
	}
	return nil
}

// ctxErr substitutes the context's error for an I/O error caused by the
// deadline interrupt, so callers can distinguish "deadline expired" from a
// genuinely broken peer with errors.Is.
func ctxErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

func (c *conn) Close() error { return c.c.Close() }
