// Package dist implements the query framework of Fig. 4 as a real networked
// system: a master node that owns the partition-layout metadata and rewrites
// SQL into partition-ID lists, worker nodes that host materialised
// partitions and execute scans, and a client speaking SQL to the master.
// Messages are gob-encoded over TCP with one encoder/decoder pair per
// connection.
//
// The package complements internal/cluster: the simulator predicts
// end-to-end times under a disk model, while dist actually moves the scan
// work across processes/sockets — the same separation the paper has between
// its cost model (Eq. 1–2) and its Spark deployment.
package dist

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"paw/internal/geom"
	"paw/internal/layout"
)

// ScanRequest asks a worker to scan a set of its partitions with one range
// query.
type ScanRequest struct {
	Query geom.Box
	IDs   []layout.ID
}

// ScanResponse reports the scan outcome.
type ScanResponse struct {
	Rows          int
	BytesRead     int64
	GroupsRead    int
	GroupsSkipped int
	Err           string
}

// QueryRequest is the client-to-master message: one SQL statement.
type QueryRequest struct {
	SQL string
}

// QueryResponse is the master's reply after scattering the scan work.
type QueryResponse struct {
	Rows              int
	BytesScanned      int64
	PartitionsScanned int
	SubQueries        int
	Err               string
}

// conn wraps a TCP connection with its gob codec pair and a mutex so
// concurrent callers serialise request/response exchanges.
type conn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
}

func newConn(c net.Conn) *conn {
	return &conn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

// call performs one request/response round trip.
func (c *conn) call(req, resp any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return fmt.Errorf("dist: sending request: %w", err)
	}
	if err := c.dec.Decode(resp); err != nil {
		return fmt.Errorf("dist: reading response: %w", err)
	}
	return nil
}

func (c *conn) Close() error { return c.c.Close() }
