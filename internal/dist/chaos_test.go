package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"paw/internal/blockstore"
	"paw/internal/core"
	"paw/internal/dataset"
	"paw/internal/faultnet"
	"paw/internal/layout"
	"paw/internal/obs"
	"paw/internal/placement"
	"paw/internal/router"
	"paw/internal/workload"
)

// The chaos suite drives the distributed path through the faultnet
// fault-injection layer under a fixed seed matrix and proves each failure
// mode maps to its intended recovery:
//
//	reset / corrupt / slow call  -> bounded retry with backoff
//	dead primary, live replica   -> failover
//	dead worker, repeated calls  -> breaker trip, then recovery probe
//	black-holed worker           -> deadline expiry, no goroutine leak
//	dead worker, no replica      -> partial results (opt-in)
//
// Every script is counter-driven, so a given seed reproduces the same fault
// sequence on every run.

// chaosSeeds is the fixed seed matrix shared by `make chaos` scenarios: the
// seeds feed both the faultnet scripts (corruption positions) and the
// master's backoff jitter.
var chaosSeeds = []int64{1, 2, 3}

type chaosCluster struct {
	data    *dataset.Dataset
	layout  *layout.Layout
	store   *blockstore.Store
	rep     placement.Replicated
	workers []*Worker
	// workerRegs holds one registry per worker, attached before Serve
	// (SetMetrics is not safe on a serving node).
	workerRegs []*obs.Registry
	addrs      []string
	master     *Master
	reg        *obs.Registry
}

// perWorkerIDs inverts a replicated placement: the partitions each worker
// must host (any position in the replica set).
func perWorkerIDs(rep placement.Replicated, workers int) [][]layout.ID {
	out := make([][]layout.ID, workers)
	for id, ws := range rep {
		for _, w := range ws {
			out[w] = append(out[w], id)
		}
	}
	return out
}

// startChaosCluster builds a small layout, replicates every partition across
// `replicas` workers (replica r of partition p on worker (p+r) mod W), and
// serves each worker behind the faultnet script given for its index (absent:
// clean listener). The master is configured with cfg and an obs registry.
func startChaosCluster(t *testing.T, nWorkers, replicas int, scripts map[int]faultnet.Script, cfg Config) *chaosCluster {
	t.Helper()
	data := dataset.Uniform(6000, 2, 3)
	rows := make([]int, data.NumRows())
	for i := range rows {
		rows[i] = i
	}
	hist := workload.Uniform(data.Domain(), workload.Defaults(10, 5))
	l := core.Build(data, rows, data.Domain(), hist, core.Params{MinRows: 300})
	store := blockstore.Materialize(l, data, blockstore.Config{GroupRows: 512})

	rep := make(placement.Replicated, len(l.Parts))
	for _, p := range l.Parts {
		for r := 0; r < replicas && r < nWorkers; r++ {
			rep[p.ID] = append(rep[p.ID], (int(p.ID)+r)%nWorkers)
		}
	}
	tc := &chaosCluster{data: data, layout: l, store: store, rep: rep}
	hosted := perWorkerIDs(rep, nWorkers)
	for w := 0; w < nWorkers; w++ {
		wk := NewWorker(store, hosted[w])
		wreg := obs.New()
		wk.SetMetrics(wreg)
		tc.workerRegs = append(tc.workerRegs, wreg)
		inner, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var ln net.Listener = inner
		if s, ok := scripts[w]; ok {
			ln = faultnet.Wrap(inner, s)
		}
		if err := wk.Serve(ln); err != nil {
			t.Fatal(err)
		}
		tc.workers = append(tc.workers, wk)
		tc.addrs = append(tc.addrs, inner.Addr().String())
	}
	rm, err := router.NewMaster(l, data.Names())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMasterReplicated(rm, tc.addrs, rep)
	if err != nil {
		t.Fatal(err)
	}
	m.Configure(cfg)
	tc.reg = obs.New()
	m.SetMetrics(tc.reg)
	tc.master = m
	t.Cleanup(func() {
		m.Close()
		for _, wk := range tc.workers {
			wk.Close()
		}
	})
	return tc
}

// fastChaosConfig is the test policy: quick backoff, tight budgets, seeded
// jitter.
func fastChaosConfig(seed int64) Config {
	return Config{
		Retry: RetryPolicy{
			MaxAttempts:      2,
			QueryRetryBudget: 16,
			BaseBackoff:      2 * time.Millisecond,
			MaxBackoff:       20 * time.Millisecond,
			Multiplier:       2,
			Seed:             seed,
			BreakerThreshold: 3,
			BreakerCooldown:  150 * time.Millisecond,
		},
		CallTimeout:  2 * time.Second,
		QueryTimeout: 10 * time.Second,
	}
}

const chaosSQL = "SELECT * FROM t" // full scan: touches every partition

// TestChaosRetryRecoversFromReset: the first connection to the worker is
// reset mid-exchange; the bounded retry must redial and recover the query
// with no user-visible failure, under every seed of the matrix.
func TestChaosRetryRecoversFromReset(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tc := startChaosCluster(t, 1, 1, map[int]faultnet.Script{
				0: {Seed: seed, Rules: []faultnet.Rule{
					{Conn: 0, Op: faultnet.OnRead, Call: 0, Action: faultnet.Reset},
				}},
			}, fastChaosConfig(seed))
			resp, err := tc.master.Query(chaosSQL)
			if err != nil {
				t.Fatalf("seed %d: query must survive a connection reset: %v", seed, err)
			}
			if resp.Rows != tc.data.NumRows() {
				t.Errorf("seed %d: rows = %d, want %d", seed, resp.Rows, tc.data.NumRows())
			}
			if resp.Partial {
				t.Error("recovered query must not be partial")
			}
			snap := tc.reg.Snapshot()
			if got := snap.Counter(MetricRetries); got < 1 {
				t.Errorf("seed %d: retries = %d, want >= 1", seed, got)
			}
			if got := snap.Counter(MetricCallFailures); got != 0 {
				t.Errorf("seed %d: call failures = %d, want 0 (retry recovered)", seed, got)
			}
		})
	}
}

// TestChaosCorruptResponseTriggersRetry: the worker's first response is
// byte-corrupted on the wire (seeded positions); the master's decode error
// must be treated like any transport failure — drop, redial, resend.
func TestChaosCorruptResponseTriggersRetry(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tc := startChaosCluster(t, 1, 1, map[int]faultnet.Script{
				0: {Seed: seed, Rules: []faultnet.Rule{
					{Conn: 0, Op: faultnet.OnWrite, Call: 0, Action: faultnet.Corrupt, Bytes: 16},
				}},
			}, fastChaosConfig(seed))
			resp, err := tc.master.Query(chaosSQL)
			if err != nil {
				t.Fatalf("seed %d: query must survive a corrupted response: %v", seed, err)
			}
			if resp.Rows != tc.data.NumRows() {
				t.Errorf("seed %d: rows = %d, want %d", seed, resp.Rows, tc.data.NumRows())
			}
			if got := tc.reg.Snapshot().Counter(MetricRetries); got < 1 {
				t.Errorf("seed %d: retries = %d, want >= 1", seed, got)
			}
		})
	}
}

// TestChaosSlowCallRetried: the worker sits on the first request longer than
// the per-call timeout; the call must expire (SetReadDeadline over the gob
// exchange), be retried on a fresh connection, and succeed — while the
// second, clean query proves the path is healthy again.
func TestChaosSlowCallRetried(t *testing.T) {
	cfg := fastChaosConfig(1)
	cfg.CallTimeout = 150 * time.Millisecond
	tc := startChaosCluster(t, 1, 1, map[int]faultnet.Script{
		0: {Seed: 1, Rules: []faultnet.Rule{
			{Conn: 0, Op: faultnet.OnRead, Call: 0, Action: faultnet.Delay, Duration: 2 * time.Second},
		}},
	}, cfg)
	start := time.Now()
	resp, err := tc.master.Query(chaosSQL)
	if err != nil {
		t.Fatalf("query must survive one slow connection: %v", err)
	}
	if resp.Rows != tc.data.NumRows() {
		t.Errorf("rows = %d, want %d", resp.Rows, tc.data.NumRows())
	}
	if d := time.Since(start); d < cfg.CallTimeout {
		t.Errorf("query finished in %v, before the %v call timeout could have fired", d, cfg.CallTimeout)
	}
	if got := tc.reg.Snapshot().Counter(MetricRetries); got < 1 {
		t.Errorf("retries = %d, want >= 1", got)
	}
	if _, err := tc.master.Query(chaosSQL); err != nil {
		t.Fatalf("second query on the recovered connection: %v", err)
	}
}

// TestChaosFailoverToReplica: every partition is replicated on both workers;
// killing the primary of half the partitions must redirect their scans to
// the surviving replica with the full row count intact.
func TestChaosFailoverToReplica(t *testing.T) {
	tc := startChaosCluster(t, 2, 2, nil, fastChaosConfig(1))
	healthy, err := tc.master.Query(chaosSQL)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.workers[0].Close(); err != nil {
		t.Fatal(err)
	}
	resp, err := tc.master.Query(chaosSQL)
	if err != nil {
		t.Fatalf("query must fail over to the live replica: %v", err)
	}
	if resp.Rows != healthy.Rows {
		t.Errorf("rows after failover = %d, want %d", resp.Rows, healthy.Rows)
	}
	if resp.Partial || len(resp.FailedPartitions) != 0 {
		t.Errorf("failover must be complete, got partial=%v failed=%v", resp.Partial, resp.FailedPartitions)
	}
	snap := tc.reg.Snapshot()
	if got := snap.Counter(MetricFailovers); got < 1 {
		t.Errorf("failovers = %d, want >= 1", got)
	}
}

// TestChaosBreakerTripAndProbe: repeated failures against a dead worker trip
// its breaker (short-circuiting further dials); after the cooldown, a probe
// against the restarted worker closes it again.
func TestChaosBreakerTripAndProbe(t *testing.T) {
	cfg := fastChaosConfig(1)
	cfg.Retry.MaxAttempts = 1 // one failure per query makes the trip point exact
	cfg.Retry.BreakerThreshold = 2
	cfg.Retry.BreakerCooldown = 100 * time.Millisecond
	tc := startChaosCluster(t, 1, 1, nil, cfg)
	if _, err := tc.master.Query(chaosSQL); err != nil {
		t.Fatal(err)
	}
	hosted := perWorkerIDs(tc.rep, 1)[0]
	tc.workers[0].Close()

	// Two consecutive failures trip the breaker...
	for i := 0; i < cfg.Retry.BreakerThreshold; i++ {
		if _, err := tc.master.Query(chaosSQL); err == nil {
			t.Fatal("query over a dead worker must error")
		}
	}
	snap := tc.reg.Snapshot()
	if got := snap.Counter(MetricBreakerTrips); got < 1 {
		t.Fatalf("breaker trips = %d, want >= 1", got)
	}
	// ...and the next query short-circuits without touching the network.
	if _, err := tc.master.Query(chaosSQL); err == nil {
		t.Fatal("short-circuited query must error")
	}
	if got := tc.reg.Snapshot().Counter(MetricBreakerShorts); got < 1 {
		t.Fatalf("breaker short-circuits = %d, want >= 1", got)
	}

	// Restart the worker on the same address, wait out the cooldown: the
	// probe must succeed and close the breaker.
	replacement := NewWorker(tc.store, hosted)
	var started bool
	for i := 0; i < 50; i++ { // the freed port can take a moment to rebind
		if _, err := replacement.Start(tc.addrs[0]); err == nil {
			started = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !started {
		t.Fatalf("could not restart worker on %s", tc.addrs[0])
	}
	defer replacement.Close()
	tc.workers[0] = replacement
	time.Sleep(cfg.Retry.BreakerCooldown + 20*time.Millisecond)
	resp, err := tc.master.Query(chaosSQL)
	if err != nil {
		t.Fatalf("probe after cooldown must recover the worker: %v", err)
	}
	if resp.Rows != tc.data.NumRows() {
		t.Errorf("rows after recovery = %d, want %d", resp.Rows, tc.data.NumRows())
	}
	snap = tc.reg.Snapshot()
	if got := snap.Counter(MetricBreakerProbes); got < 1 {
		t.Errorf("breaker probes = %d, want >= 1", got)
	}
	// The breaker is closed again: another query goes straight through.
	if _, err := tc.master.Query(chaosSQL); err != nil {
		t.Fatalf("query after breaker recovery: %v", err)
	}
}

// TestChaosDeadlineExpiryNoLeak: a black-holed worker accepts requests and
// never answers; the query deadline must expire cleanly, the error must be
// context.DeadlineExceeded, and tearing the cluster down must return the
// process to its goroutine baseline — a hung worker can neither wedge a
// query nor strand its scatter goroutines.
func TestChaosDeadlineExpiryNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	cfg := fastChaosConfig(1)
	cfg.QueryTimeout = 0 // the caller's context is the only bound
	tc := startChaosCluster(t, 1, 1, map[int]faultnet.Script{
		0: {Seed: 1, Rules: []faultnet.Rule{
			{Conn: -1, Op: faultnet.OnRead, Call: 0, Action: faultnet.Blackhole},
		}},
	}, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := tc.master.QueryContext(ctx, chaosSQL)
	if err == nil {
		t.Fatal("query against a black-holed worker must fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("deadline expiry took %v — the hung worker wedged the query", d)
	}
	if got := tc.reg.Snapshot().Counter(MetricDeadlineExpired); got < 1 {
		t.Errorf("deadline expiries = %d, want >= 1", got)
	}
	// Full teardown must release every goroutine the query and the cluster
	// spawned (the worker's parked sessions included).
	tc.master.Close()
	for _, wk := range tc.workers {
		wk.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosPartialResults: no replicas, one worker dead. A client that opted
// into partial results gets the surviving partitions plus the failed-ID
// list; a default client gets an error.
func TestChaosPartialResults(t *testing.T) {
	tc := startChaosCluster(t, 2, 1, nil, fastChaosConfig(1))
	maddr, err := tc.master.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := tc.master.Query(chaosSQL)
	if err != nil {
		t.Fatal(err)
	}
	tc.workers[1].Close()

	strict, err := Dial(maddr)
	if err != nil {
		t.Fatal(err)
	}
	defer strict.Close()
	if _, err := strict.Query(chaosSQL); err == nil {
		t.Fatal("default client must see the failure")
	}

	partial, err := Dial(maddr)
	if err != nil {
		t.Fatal(err)
	}
	defer partial.Close()
	partial.SetAllowPartial(true)
	resp, err := partial.Query(chaosSQL)
	if err != nil {
		t.Fatalf("partial-mode query must succeed: %v", err)
	}
	if !resp.Partial {
		t.Fatal("response must be marked partial")
	}
	if len(resp.FailedPartitions) == 0 {
		t.Fatal("failed partitions must be reported")
	}
	for _, id := range resp.FailedPartitions {
		if tc.rep[id][0] != 1 {
			t.Errorf("partition %d reported failed but lives on the surviving worker", id)
		}
	}
	if resp.Rows <= 0 || resp.Rows >= healthy.Rows {
		t.Errorf("partial rows = %d, want in (0, %d)", resp.Rows, healthy.Rows)
	}
	if got := resp.PartitionsScanned + len(resp.FailedPartitions); got != healthy.PartitionsScanned {
		t.Errorf("scanned %d + failed %d != total %d",
			resp.PartitionsScanned, len(resp.FailedPartitions), healthy.PartitionsScanned)
	}
	if got := tc.reg.Snapshot().Counter(MetricPartialResults); got < 1 {
		t.Errorf("partial results counter = %d, want >= 1", got)
	}
}

// TestChaosWorkerDeadlineDrop: a request shipped with an already-expired
// wire deadline must be dropped by the worker (counted, partition named)
// rather than scanned.
func TestChaosWorkerDeadlineDrop(t *testing.T) {
	tc := startChaosCluster(t, 1, 1, nil, fastChaosConfig(1))
	reg := tc.workerRegs[0]
	c, err := Dial(tc.addrs[0]) // same framing; talk ScanRequest directly
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids := perWorkerIDs(tc.rep, 1)[0]
	var resp ScanResponse
	req := ScanRequest{
		Query:    tc.data.Domain(),
		IDs:      ids,
		Deadline: time.Now().Add(-time.Second).UnixNano(),
	}
	if err := c.conn.call(context.Background(), req, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Fatal("expired deadline must fail the scan")
	}
	if resp.FailedPartition != int64(ids[0]) {
		t.Errorf("failed partition = %d, want %d", resp.FailedPartition, ids[0])
	}
	if resp.Rows != 0 {
		t.Errorf("rows = %d, want 0 (nothing scanned)", resp.Rows)
	}
	if got := reg.Snapshot().Counter(MetricWorkerDeadlineDrops); got < 1 {
		t.Errorf("deadline drops = %d, want >= 1", got)
	}
}

// TestChaosPartialBatchStatsFlushed: a batch that fails on a foreign
// partition after scanning real ones must still flush the earlier
// partitions' telemetry and name the failing partition.
func TestChaosPartialBatchStatsFlushed(t *testing.T) {
	tc := startChaosCluster(t, 2, 1, nil, fastChaosConfig(1))
	reg := tc.workerRegs[0]
	mine := perWorkerIDs(tc.rep, 2)[0]
	var foreign layout.ID = -1
	for _, p := range tc.layout.Parts {
		if tc.rep[p.ID][0] != 0 {
			foreign = p.ID
			break
		}
	}
	if foreign < 0 || len(mine) == 0 {
		t.Skip("need both hosted and foreign partitions")
	}
	c, err := Dial(tc.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	batch := append(append([]layout.ID(nil), mine...), foreign)
	var resp ScanResponse
	if err := c.conn.call(context.Background(), ScanRequest{Query: tc.data.Domain(), IDs: batch}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Fatal("foreign partition must fail the batch")
	}
	if resp.FailedPartition != int64(foreign) {
		t.Errorf("failed partition = %d, want %d", resp.FailedPartition, foreign)
	}
	if resp.Rows == 0 {
		t.Error("partial-batch response must keep the rows scanned before the failure")
	}
	snap := reg.Snapshot()
	if got := snap.Counter(MetricWorkerRows); got != int64(resp.Rows) {
		t.Errorf("flushed rows = %d, want %d", got, resp.Rows)
	}
	if got := snap.Counter(MetricWorkerBytesRead); got != resp.BytesRead {
		t.Errorf("flushed bytes = %d, want %d", got, resp.BytesRead)
	}
}
