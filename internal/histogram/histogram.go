// Package histogram provides per-dimension equi-depth histograms with the
// classic attribute-independence selectivity model — the estimation
// machinery a master node uses to predict result sizes without scanning
// (result-size estimates drive the storage tuner's candidate sizing and give
// query planners cardinality estimates; pawcli surfaces them next to the
// true counts).
package histogram

import (
	"fmt"
	"sort"

	"paw/internal/dataset"
	"paw/internal/geom"
)

// Histogram holds one equi-depth histogram per dimension.
type Histogram struct {
	rows    int
	bounds  [][]float64 // per dim: buckets+1 ascending boundaries
	buckets int
}

// Build constructs equi-depth histograms with the given bucket count per
// dimension over rows of data (all rows when rows is nil).
func Build(data *dataset.Dataset, rows []int, buckets int) (*Histogram, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("histogram: buckets must be >= 1, got %d", buckets)
	}
	n := data.NumRows()
	if rows != nil {
		n = len(rows)
	}
	if n == 0 {
		return nil, fmt.Errorf("histogram: empty input")
	}
	h := &Histogram{rows: n, buckets: buckets, bounds: make([][]float64, data.Dims())}
	vals := make([]float64, n)
	for d := 0; d < data.Dims(); d++ {
		if rows == nil {
			for i := 0; i < n; i++ {
				vals[i] = data.At(i, d)
			}
		} else {
			for i, r := range rows {
				vals[i] = data.At(r, d)
			}
		}
		sort.Float64s(vals)
		b := make([]float64, buckets+1)
		b[0] = vals[0]
		for k := 1; k < buckets; k++ {
			b[k] = vals[k*n/buckets]
		}
		b[buckets] = vals[n-1]
		h.bounds[d] = b
	}
	return h, nil
}

// Selectivity estimates the fraction of rows inside the closed box q,
// multiplying per-dimension estimates (attribute independence).
func (h *Histogram) Selectivity(q geom.Box) float64 {
	s := 1.0
	for d := range h.bounds {
		s *= h.dimSelectivity(d, q.Lo[d], q.Hi[d])
		if s == 0 {
			return 0
		}
	}
	return s
}

// EstimateRows estimates the result size of q in rows.
func (h *Histogram) EstimateRows(q geom.Box) float64 {
	return h.Selectivity(q) * float64(h.rows)
}

// dimSelectivity estimates P(lo <= X_d <= hi) by linear interpolation within
// equi-depth buckets (each bucket holds mass 1/buckets).
func (h *Histogram) dimSelectivity(d int, lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	return h.cdf(d, hi) - h.cdf(d, lo)
}

// cdf estimates P(X_d < x) — using the open bound keeps degenerate buckets
// (repeated values) from double counting; the closed-interval error is at
// most one bucket of mass, which matches histogram precision anyway.
func (h *Histogram) cdf(d int, x float64) float64 {
	b := h.bounds[d]
	buckets := len(b) - 1
	if x <= b[0] {
		return 0
	}
	if x >= b[buckets] {
		return 1
	}
	// Find the bucket containing x.
	k := sort.SearchFloat64s(b, x)
	if k > 0 && b[k] != x {
		k--
	}
	if k >= buckets {
		k = buckets - 1
	}
	frac := 0.0
	if span := b[k+1] - b[k]; span > 0 {
		frac = (x - b[k]) / span
	}
	return (float64(k) + frac) / float64(buckets)
}

// Buckets returns the configured per-dimension bucket count.
func (h *Histogram) Buckets() int { return h.buckets }

// MemoryBytes returns the in-memory footprint of the histogram: 8 bytes per
// boundary per dimension.
func (h *Histogram) MemoryBytes() int64 {
	var t int64
	for _, b := range h.bounds {
		t += int64(len(b)) * 8
	}
	return t
}
