package histogram

import (
	"math"
	"testing"

	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/workload"
)

func TestBuildValidation(t *testing.T) {
	data := dataset.Uniform(100, 2, 1)
	if _, err := Build(data, nil, 0); err == nil {
		t.Error("0 buckets must error")
	}
	if _, err := Build(data, []int{}, 8); err == nil {
		t.Error("empty input must error")
	}
	h, err := Build(data, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 16 {
		t.Errorf("buckets = %d", h.Buckets())
	}
	if h.MemoryBytes() != 2*17*8 {
		t.Errorf("memory = %d", h.MemoryBytes())
	}
}

func TestUniformSelectivity(t *testing.T) {
	data := dataset.Uniform(50000, 2, 2)
	h, err := Build(data, nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		q    geom.Box
		want float64
	}{
		{geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{1, 1}}, 1},
		{geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{0.5, 1}}, 0.5},
		{geom.Box{Lo: geom.Point{0.25, 0.25}, Hi: geom.Point{0.75, 0.75}}, 0.25},
		{geom.Box{Lo: geom.Point{0.9, 0.9}, Hi: geom.Point{1, 1}}, 0.01},
	}
	for _, c := range cases {
		got := h.Selectivity(c.q)
		if math.Abs(got-c.want) > 0.02+c.want*0.2 {
			t.Errorf("Selectivity(%v) = %v, want ≈%v", c.q, got, c.want)
		}
	}
	// Inverted and disjoint queries estimate zero.
	if h.Selectivity(geom.Box{Lo: geom.Point{0.8, 0}, Hi: geom.Point{0.2, 1}}) != 0 {
		t.Error("inverted box must estimate 0")
	}
	if h.Selectivity(geom.Box{Lo: geom.Point{5, 5}, Hi: geom.Point{6, 6}}) != 0 {
		t.Error("out-of-domain box must estimate 0")
	}
}

// TestEquiDepthBeatsAssumingUniform: on skewed data, equi-depth histograms
// must estimate far better than assuming a uniform distribution over the
// domain.
func TestEquiDepthBeatsAssumingUniform(t *testing.T) {
	data := dataset.OSMLike(40000, 6, 3)
	h, err := Build(data, nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	dom := data.Domain()
	w := workload.Uniform(dom, workload.Defaults(200, 4))
	var histErr, uniErr float64
	for _, q := range w.Boxes() {
		truth := float64(data.CountInBox(q, nil))
		est := h.EstimateRows(q)
		uni := q.Clip(dom).Volume() / dom.Volume() * float64(data.NumRows())
		histErr += math.Abs(est - truth)
		uniErr += math.Abs(uni - truth)
	}
	if histErr >= uniErr {
		t.Errorf("equi-depth error %v not below uniform-assumption error %v", histErr, uniErr)
	}
	t.Logf("mean abs error: histogram %.1f rows, uniform assumption %.1f rows",
		histErr/200, uniErr/200)
}

// TestIndependenceAccuracyOnIndependentData: with independent attributes the
// product model should be accurate for moderate selectivities.
func TestIndependenceAccuracyOnIndependentData(t *testing.T) {
	data := dataset.Uniform(80000, 3, 5)
	h, err := Build(data, nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.Uniform(data.Domain(), workload.GenParams{
		NumQueries: 100, MaxRangeFrac: 0.5, Centers: 1, SigmaFrac: 0.1, Seed: 6,
	})
	for _, q := range w.Boxes() {
		truth := float64(data.CountInBox(q, nil))
		est := h.EstimateRows(q)
		if truth > 500 { // only judge where relative error is meaningful
			rel := math.Abs(est-truth) / truth
			if rel > 0.30 {
				t.Errorf("query %v: est %.0f vs truth %.0f (rel %.2f)", q, est, truth, rel)
			}
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	data := dataset.OSMLike(5000, 4, 7)
	h, err := Build(data, nil, 32)
	if err != nil {
		t.Fatal(err)
	}
	dom := data.Domain()
	for d := 0; d < 2; d++ {
		prev := -1.0
		for i := 0; i <= 100; i++ {
			x := dom.Lo[d] + float64(i)/100*(dom.Hi[d]-dom.Lo[d])
			c := h.cdf(d, x)
			if c < prev-1e-12 {
				t.Fatalf("cdf not monotone at dim %d x=%v: %v < %v", d, x, c, prev)
			}
			if c < 0 || c > 1 {
				t.Fatalf("cdf out of range: %v", c)
			}
			prev = c
		}
	}
}

func TestBuildOnSubset(t *testing.T) {
	data := dataset.Uniform(10000, 2, 8)
	sample := data.Sample(1000, 9)
	h, err := Build(data, sample, 32)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{0.5, 0.5}}
	if got := h.Selectivity(q); math.Abs(got-0.25) > 0.05 {
		t.Errorf("sampled selectivity = %v, want ≈0.25", got)
	}
}
