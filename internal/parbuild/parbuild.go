// Package parbuild is the shared concurrent-build substrate for the
// recursive layout builders (PAW, Qd-tree, k-d tree, beam search).
//
// The recursive split structure of every builder is embarrassingly parallel
// across sibling subtrees: once a node's split is chosen, each child's
// subtree depends only on that child's box, rows and clipped queries. Pool
// exploits this with a bounded set of worker slots: a fan-out point tries to
// hand all but one sibling to free workers and recurses inline on the rest,
// so a saturated pool degrades to plain single-threaded recursion with no
// queueing, no blocking and no goroutine pile-up.
//
// # Determinism
//
// Parallel builds must produce byte-identical sealed layouts to serial
// builds. Pool guarantees the scheduling half of that contract:
//
//   - Fan writes task results into caller-indexed positions, so children are
//     assembled in declaration order regardless of completion order.
//   - FanChunks derives chunk boundaries from the task size and the fixed
//     pool width only — never from which workers happen to be free — so a
//     chunked sweep merges into the same output on every run.
//
// The builders supply the other half: per-task state is confined to the
// task, and shared scratch memory is keyed by worker slot (see below), which
// a task holds exclusively while it runs.
//
// # Worker slots and scratch
//
// Hot-path buffers (sort scratch, dedup sets, assignment sweeps) must be
// reused across recursion levels without cross-goroutine sharing. Pool
// identifies every executing goroutine by a small integer slot: workers own
// slots [0, Workers()) while running a task, and the goroutine that drives
// the build owns RootSlot(). A builder allocates Slots() scratch structures
// and indexes them by the slot passed to its task — at most one goroutine
// holds a given slot at any instant, so slot-indexed scratch needs no locks
// and, unlike sync.Pool, is never dropped between recursion levels.
package parbuild

import (
	"runtime"
	"strconv"
	"sync"

	"paw/internal/obs"
)

// Pool metric names (see Instrument). Per-slot task counters carry a
// worker="<slot>" label; slot Workers() is the goroutine driving the build.
const (
	MetricFanouts      = "parbuild_fanouts_total"
	MetricSpawnedTasks = "parbuild_tasks_spawned_total"
	MetricInlineTasks  = "parbuild_tasks_inline_total"
	MetricActive       = "parbuild_active_workers"
	MetricSlotTasks    = "parbuild_worker_tasks_total"
)

// poolMetrics is the optional instrumentation of a Pool. The zero value
// (all-nil instruments) is fully disabled: every call no-ops on nil
// receivers, so un-instrumented builds stay allocation-free.
type poolMetrics struct {
	fanouts   *obs.Counter // Fan invocations
	spawned   *obs.Counter // tasks handed to a free worker goroutine
	inline    *obs.Counter // tasks run inline on the caller
	active    *obs.Gauge   // worker goroutines currently running a task
	slotTasks []*obs.Counter
}

func (m *poolMetrics) slotTask(slot int) {
	if m.slotTasks != nil && slot < len(m.slotTasks) {
		m.slotTasks[slot].Inc()
	}
}

// Pool is a bounded worker pool for recursive builds. The zero value and nil
// are valid serial pools (every task runs inline on the caller).
type Pool struct {
	// slots holds the free worker slot IDs; nil for a serial pool.
	slots   chan int
	workers int
	m       poolMetrics
}

// Instrument attaches pool telemetry to reg: fan-out and task counters, the
// active-worker gauge (the pool's live queue-depth signal — tasks that find
// no free worker run inline rather than queueing), and one task counter per
// worker slot. A nil registry (or nil pool) is a no-op; instrumentation
// never changes scheduling, so builds stay deterministic.
func (p *Pool) Instrument(reg *obs.Registry) {
	if p == nil || reg == nil {
		return
	}
	p.m = poolMetrics{
		fanouts: reg.Counter(MetricFanouts),
		spawned: reg.Counter(MetricSpawnedTasks),
		inline:  reg.Counter(MetricInlineTasks),
		active:  reg.Gauge(MetricActive),
	}
	p.m.slotTasks = make([]*obs.Counter, p.Slots())
	for i := range p.m.slotTasks {
		p.m.slotTasks[i] = reg.Counter(obs.Label(MetricSlotTasks, "worker", strconv.Itoa(i)))
	}
}

// New returns a pool with the given number of workers. workers <= 0 selects
// runtime.GOMAXPROCS(0); workers == 1 yields a serial pool that never spawns
// a goroutine.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.slots = make(chan int, workers)
		for i := 0; i < workers; i++ {
			p.slots <- i
		}
	}
	return p
}

// Workers returns the pool width (1 for a nil/serial pool).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Slots returns the number of distinct scratch identities tasks can observe:
// one per worker plus the root slot of the driving goroutine.
func (p *Pool) Slots() int { return p.Workers() + 1 }

// RootSlot returns the scratch identity of the goroutine driving the build
// (the one calling Fan from outside any task).
func (p *Pool) RootSlot() int { return p.Workers() }

// Fan runs tasks 0..n-1, farming as many as possible out to free workers and
// running the remainder inline on the calling goroutine. callerSlot is the
// slot identity the caller currently holds (RootSlot() at the top of a
// build, or the slot a surrounding Fan task received); inline tasks inherit
// it. The last task always runs inline — the caller would otherwise only
// block — and Fan returns after every task has completed.
//
// Fan never blocks waiting for a worker: when the pool is saturated the task
// simply runs inline, which is what bounds the goroutine count and makes
// deep recursions safe.
func (p *Pool) Fan(callerSlot, n int, task func(i, slot int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.slots == nil || n == 1 {
		for i := 0; i < n; i++ {
			task(i, callerSlot)
		}
		return
	}
	p.m.fanouts.Inc()
	var wg sync.WaitGroup
	for i := 0; i < n-1; i++ {
		select {
		case slot := <-p.slots:
			p.m.spawned.Inc()
			p.m.slotTask(slot)
			p.m.active.Add(1)
			wg.Add(1)
			go func(i, slot int) {
				defer wg.Done()
				defer func() {
					p.m.active.Add(-1)
					p.slots <- slot
				}()
				task(i, slot)
			}(i, slot)
		default:
			p.m.inline.Inc()
			p.m.slotTask(callerSlot)
			task(i, callerSlot)
		}
	}
	p.m.inline.Inc()
	p.m.slotTask(callerSlot)
	task(n-1, callerSlot)
	wg.Wait()
}

// FanChunks splits [0, n) into contiguous chunks of at least minChunk
// elements (at most Workers() chunks) and fans task over them. Chunk
// boundaries depend only on n, minChunk and the pool width — not on runtime
// scheduling — so chunk-indexed results merge deterministically. Returns the
// number of chunks (0 when n <= 0).
func (p *Pool) FanChunks(callerSlot, n, minChunk int, task func(chunk, lo, hi, slot int)) int {
	if n <= 0 {
		return 0
	}
	if minChunk < 1 {
		minChunk = 1
	}
	chunks := p.Workers()
	if max := n / minChunk; chunks > max {
		chunks = max
	}
	if chunks < 1 {
		chunks = 1
	}
	size := (n + chunks - 1) / chunks
	chunks = (n + size - 1) / size
	p.Fan(callerSlot, chunks, func(c, slot int) {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		task(c, lo, hi, slot)
	})
	return chunks
}
