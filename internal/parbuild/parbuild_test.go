package parbuild

import (
	"sync/atomic"
	"testing"
)

func TestSerialPoolRunsInline(t *testing.T) {
	for _, p := range []*Pool{nil, New(1), {}} {
		if got := p.Workers(); got != 1 {
			t.Fatalf("Workers() = %d, want 1", got)
		}
		ran := make([]int, 4)
		p.Fan(p.RootSlot(), 4, func(i, slot int) {
			if slot != p.RootSlot() {
				t.Errorf("serial task %d got slot %d, want root slot %d", i, slot, p.RootSlot())
			}
			ran[i]++
		})
		for i, n := range ran {
			if n != 1 {
				t.Fatalf("task %d ran %d times", i, n)
			}
		}
	}
}

func TestFanRunsEveryTaskOnce(t *testing.T) {
	p := New(4)
	const n = 257
	var ran [n]int32
	p.Fan(p.RootSlot(), n, func(i, slot int) {
		atomic.AddInt32(&ran[i], 1)
		if slot < 0 || slot >= p.Slots() {
			t.Errorf("task %d got out-of-range slot %d", i, slot)
		}
	})
	for i := range ran {
		if ran[i] != 1 {
			t.Fatalf("task %d ran %d times, want 1", i, ran[i])
		}
	}
}

func TestFanNestedRecursionBounded(t *testing.T) {
	// A deep recursive fan must not exceed the worker bound: count
	// concurrent holders of non-root slots.
	p := New(3)
	var inflight, peak int32
	var recurse func(depth, slot int)
	recurse = func(depth, slot int) {
		if depth == 0 {
			return
		}
		p.Fan(slot, 2, func(i, s int) {
			if s != slot { // ran on a freshly acquired worker
				cur := atomic.AddInt32(&inflight, 1)
				for {
					old := atomic.LoadInt32(&peak)
					if cur <= old || atomic.CompareAndSwapInt32(&peak, old, cur) {
						break
					}
				}
				defer atomic.AddInt32(&inflight, -1)
			}
			recurse(depth-1, s)
		})
	}
	recurse(12, p.RootSlot())
	if peak > 3 {
		t.Fatalf("observed %d concurrent workers, pool width is 3", peak)
	}
}

func TestFanChunksCoversRange(t *testing.T) {
	p := New(4)
	for _, n := range []int{0, 1, 5, 100, 4097} {
		covered := make([]int32, n)
		chunks := p.FanChunks(p.RootSlot(), n, 8, func(c, lo, hi, slot int) {
			if lo >= hi {
				t.Errorf("n=%d: empty chunk %d [%d,%d)", n, c, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		if n == 0 {
			if chunks != 0 {
				t.Fatalf("n=0 produced %d chunks", chunks)
			}
			continue
		}
		if chunks < 1 || chunks > p.Workers() {
			t.Fatalf("n=%d: %d chunks outside [1,%d]", n, chunks, p.Workers())
		}
		for i := range covered {
			if covered[i] != 1 {
				t.Fatalf("n=%d: element %d covered %d times", n, i, covered[i])
			}
		}
	}
}

func TestFanChunksBoundariesDeterministic(t *testing.T) {
	p := New(8)
	record := func() [][2]int {
		var out [][2]int
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		p.FanChunks(p.RootSlot(), 1000, 16, func(c, lo, hi, slot int) {
			<-mu
			out = append(out, [2]int{lo, hi})
			mu <- struct{}{}
		})
		return out
	}
	a, b := record(), record()
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	seen := make(map[[2]int]bool, len(a))
	for _, ch := range a {
		seen[ch] = true
	}
	for _, ch := range b {
		if !seen[ch] {
			t.Fatalf("chunk %v present in run 2 but not run 1", ch)
		}
	}
}
