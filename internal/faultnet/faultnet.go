// Package faultnet is a deterministic fault-injection layer for net
// listeners: it wraps net.Listener/net.Conn and perturbs traffic according
// to a seeded Script — delays, connection rejects, resets mid-message,
// black-holed reads and bounded byte corruption on writes.
//
// Faults trigger on call counts (the Nth Read/Write of the Kth accepted
// connection), not on wall-clock time, so a given script produces the same
// fault sequence on every run; the only randomness — which bytes a Corrupt
// rule flips — comes from the script's seed. The chaos suite in
// internal/dist uses this to prove each failure mode maps to the intended
// recovery (retry, failover, breaker trip, deadline expiry, partial result)
// under a fixed seed matrix.
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Op selects which connection operation a rule triggers on.
type Op int

const (
	// OnRead triggers on a Read call (data arriving from the peer).
	OnRead Op = iota
	// OnWrite triggers on a Write call (data leaving for the peer).
	OnWrite
)

// Action is the fault a triggered rule injects.
type Action int

const (
	// Delay sleeps Rule.Duration before performing the operation.
	Delay Action = iota
	// Reset closes the connection mid-operation: a triggered read fails
	// immediately; a triggered write sends only a prefix of the message and
	// then closes, leaving the peer a truncated gob stream.
	Reset
	// Blackhole makes the connection permanently unresponsive: the
	// triggering read and every later one block until the connection is
	// closed. Writes from the peer still succeed — the classic hung worker.
	Blackhole
	// Corrupt flips up to Rule.Bytes bytes (seeded positions) of the written
	// payload and delivers it, exercising the peer's decode-error path.
	Corrupt
	// Reject closes the connection immediately on accept.
	Reject
)

// Rule injects one fault. All matching is by deterministic counters.
type Rule struct {
	// Conn is the accept-order index of the connection the rule applies to;
	// -1 matches every connection.
	Conn int
	// Op is the operation direction the rule triggers on (ignored by Reject).
	Op Op
	// Call is the 0-based index of the matching Read/Write call on that
	// connection (ignored by Reject).
	Call int
	// Action is the fault to inject.
	Action Action
	// Duration parameterises Delay.
	Duration time.Duration
	// Bytes parameterises Corrupt: how many bytes to flip (bounded by the
	// payload length; 0 means 1).
	Bytes int
}

// Script is a seeded fault plan applied to a listener.
type Script struct {
	// Seed drives the only random choice (corruption positions).
	Seed int64
	// Rules are checked in order; the first match fires.
	Rules []Rule
}

// ErrInjected is the error returned by operations a Reset rule killed.
var ErrInjected = errors.New("faultnet: injected connection reset")

// Listener wraps an inner listener and applies the script to every accepted
// connection.
type Listener struct {
	inner  net.Listener
	script Script

	mu       sync.Mutex
	accepted int
	rng      *rand.Rand
}

// Wrap applies a script to a listener. The wrapped listener is what a
// dist.Worker should Serve on.
func Wrap(l net.Listener, s Script) *Listener {
	return &Listener{inner: l, script: s, rng: rand.New(rand.NewSource(s.Seed))}
}

// Accept accepts the next connection, applying Reject rules and wiring the
// per-connection fault state.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.inner.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		idx := l.accepted
		l.accepted++
		l.mu.Unlock()
		if r := l.match(idx, func(r Rule) bool { return r.Action == Reject }); r != nil {
			c.Close()
			continue
		}
		return &Conn{Conn: c, l: l, idx: idx, done: make(chan struct{})}, nil
	}
}

// Close closes the inner listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr returns the inner listener's address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Accepted returns how many connections the listener has accepted so far
// (including rejected ones).
func (l *Listener) Accepted() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accepted
}

// match returns the first rule for connection idx satisfying pred.
func (l *Listener) match(idx int, pred func(Rule) bool) *Rule {
	for i := range l.script.Rules {
		r := &l.script.Rules[i]
		if (r.Conn == idx || r.Conn < 0) && pred(*r) {
			return r
		}
	}
	return nil
}

// corruptPositions picks n distinct byte offsets in [0, size) from the
// seeded source.
func (l *Listener) corruptPositions(n, size int) []int {
	if n < 1 {
		n = 1
	}
	if n > size {
		n = size
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	perm := l.rng.Perm(size)
	return perm[:n]
}

// Conn is a fault-injected connection.
type Conn struct {
	net.Conn
	l   *Listener
	idx int

	mu         sync.Mutex
	reads      int
	writes     int
	blackholed bool

	closeOnce sync.Once
	done      chan struct{}
}

// rule finds the first rule matching this connection, op and call index.
func (c *Conn) rule(op Op, call int) *Rule {
	return c.l.match(c.idx, func(r Rule) bool {
		return r.Action != Reject && r.Op == op && r.Call == call
	})
}

// sleep waits d, interruptible by Close.
func (c *Conn) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.done:
	}
}

// Read applies read-side faults, then delegates.
func (c *Conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	call := c.reads
	c.reads++
	bh := c.blackholed
	c.mu.Unlock()
	if !bh {
		if r := c.rule(OnRead, call); r != nil {
			switch r.Action {
			case Delay:
				c.sleep(r.Duration)
			case Reset:
				c.Close()
				return 0, ErrInjected
			case Blackhole:
				c.mu.Lock()
				c.blackholed = true
				c.mu.Unlock()
				bh = true
			}
		}
	}
	if bh {
		// Block until the connection is torn down; the peer's deadline, not
		// ours, is what ends the exchange.
		<-c.done
		return 0, net.ErrClosed
	}
	return c.Conn.Read(b)
}

// Write applies write-side faults, then delegates.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	call := c.writes
	c.writes++
	c.mu.Unlock()
	if r := c.rule(OnWrite, call); r != nil {
		switch r.Action {
		case Delay:
			c.sleep(r.Duration)
		case Reset:
			// Reset mid-message: deliver a truncated prefix, then kill the
			// connection so the peer sees a broken stream.
			n := len(b) / 2
			if n > 0 {
				c.Conn.Write(b[:n])
			}
			c.Close()
			return n, ErrInjected
		case Blackhole:
			// The payload vanishes; the peer waits on a response that never
			// comes.
			return len(b), nil
		case Corrupt:
			buf := append([]byte(nil), b...)
			for _, p := range c.l.corruptPositions(r.Bytes, len(buf)) {
				buf[p] ^= 0xFF
			}
			if _, err := c.Conn.Write(buf); err != nil {
				return 0, err
			}
			return len(b), nil
		}
	}
	return c.Conn.Write(b)
}

// Close tears the connection down, releasing any black-holed or delayed
// operations.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	return c.Conn.Close()
}
