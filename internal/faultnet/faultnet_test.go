package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipeServer starts a loopback listener wrapped in the script and serves
// each accepted connection with echo (read a frame, write it back).
func pipeServer(t *testing.T, s Script) (addr string, l *Listener) {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l = Wrap(inner, s)
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				buf := make([]byte, 64)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
		}
	}()
	return l.Addr().String(), l
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCleanPassThrough(t *testing.T) {
	addr, _ := pipeServer(t, Script{Seed: 1})
	c := dial(t, addr)
	msg := []byte("hello, faultnet")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q, want %q", got, msg)
	}
}

func TestResetOnRead(t *testing.T) {
	addr, _ := pipeServer(t, Script{Seed: 1, Rules: []Rule{
		{Conn: 0, Op: OnRead, Call: 0, Action: Reset},
	}})
	c := dial(t, addr)
	c.Write([]byte("doomed"))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 8)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read from a reset connection must fail")
	}
}

func TestRejectConnection(t *testing.T) {
	addr, l := pipeServer(t, Script{Seed: 1, Rules: []Rule{
		{Conn: 0, Action: Reject},
	}})
	// First connection is rejected: reads fail fast.
	c := dial(t, addr)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	c.Write([]byte("x"))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("rejected connection must not serve")
	}
	// Second connection passes.
	c2 := dial(t, addr)
	c2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c2.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if _, err := io.ReadFull(c2, got); err != nil {
		t.Fatalf("second connection must echo: %v", err)
	}
	if l.Accepted() != 2 {
		t.Fatalf("accepted = %d, want 2", l.Accepted())
	}
}

func TestBlackholeBlocksUntilClose(t *testing.T) {
	addr, _ := pipeServer(t, Script{Seed: 1, Rules: []Rule{
		{Conn: 0, Op: OnRead, Call: 0, Action: Blackhole},
	}})
	c := dial(t, addr)
	c.Write([]byte("into the void"))
	c.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	start := time.Now()
	_, err := c.Read(make([]byte, 8))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("black-holed peer must time the client out, got %v", err)
	}
	if time.Since(start) < 100*time.Millisecond {
		t.Fatalf("client returned before its deadline: %v", time.Since(start))
	}
}

func TestCorruptIsDeterministic(t *testing.T) {
	// The same seed must corrupt the same byte positions on both runs.
	run := func(seed int64) []byte {
		addr, _ := pipeServer(t, Script{Seed: seed, Rules: []Rule{
			{Conn: 0, Op: OnWrite, Call: 0, Action: Corrupt, Bytes: 3},
		}})
		c := dial(t, addr)
		msg := bytes.Repeat([]byte{0x00}, 32)
		if _, err := c.Write(msg); err != nil {
			t.Fatal(err)
		}
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		got := make([]byte, 32)
		if _, err := io.ReadFull(c, got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(7), run(7)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different corruption:\n%x\n%x", a, b)
	}
	flipped := 0
	for _, x := range a {
		if x != 0 {
			flipped++
		}
	}
	if flipped != 3 {
		t.Fatalf("flipped %d bytes, want 3", flipped)
	}
	if c := run(8); bytes.Equal(a, c) {
		t.Fatal("different seeds should corrupt different positions")
	}
}

func TestDelayOnWrite(t *testing.T) {
	addr, _ := pipeServer(t, Script{Seed: 1, Rules: []Rule{
		{Conn: 0, Op: OnWrite, Call: 0, Action: Delay, Duration: 120 * time.Millisecond},
	}})
	c := dial(t, addr)
	c.Write([]byte("slow"))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	start := time.Now()
	got := make([]byte, 4)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("echo arrived in %v, want >= 100ms injected delay", d)
	}
}
