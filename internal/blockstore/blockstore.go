// Package blockstore simulates the block-based distributed storage layer
// (HDFS / S3 / Databricks in the paper): a routed partition layout is
// materialised into one columnar table per partition, occupying an integral
// number of fixed-size blocks. The store accounts bytes written and a
// simulated write time so the Table II construction-time breakdown (layout
// generation vs routing + I/O) can be reproduced.
package blockstore

import (
	"fmt"
	"runtime"
	"time"

	"paw/internal/colstore"
	"paw/internal/dataset"
	"paw/internal/geom"
	"paw/internal/layout"
	"paw/internal/maxskip"
	"paw/internal/parbuild"
)

// Config configures the store.
type Config struct {
	// BlockBytes is the block size (the paper's 128 MB HDFS block, scaled
	// to this repository's world). Partitions occupy ceil(size/BlockBytes)
	// blocks.
	BlockBytes int64
	// GroupRows is the row-group size of the per-partition columnar tables.
	GroupRows int
	// WriteMBps is the simulated sequential write throughput used to model
	// the "routing and I/O time" of Table II.
	WriteMBps float64
	// ZoneQueries, when non-empty, is the training workload used to build
	// per-row-group feature-vector zone maps (Sun et al., SIGMOD 2014) for
	// every partition table: scans whose query is in this workload skip row
	// groups with exact per-group incidence bits, beyond min/max pruning.
	ZoneQueries []geom.Box
}

func (c Config) withDefaults() Config {
	if c.BlockBytes <= 0 {
		c.BlockBytes = 128 << 10 // 128 KB: the paper's 128 MB scaled 1/1000
	}
	if c.GroupRows <= 0 {
		c.GroupRows = colstore.DefaultGroupRows
	}
	if c.WriteMBps <= 0 {
		c.WriteMBps = 120 // one HDD's sequential write speed
	}
	return c
}

// StoredPartition is a materialised partition.
type StoredPartition struct {
	ID     layout.ID
	Table  *colstore.Table
	Blocks int
}

// Bytes returns the partition's physical size.
func (p *StoredPartition) Bytes() int64 { return p.Table.Bytes() }

// Store holds the materialised partitions of one layout.
type Store struct {
	cfg      Config
	parts    map[layout.ID]*StoredPartition
	scanners colstore.ScannerPool

	// BytesWritten is the total payload written at materialisation.
	BytesWritten int64
	// RoutingTime is the measured wall-clock time spent routing records.
	RoutingTime time.Duration
	// SimWriteTime is the simulated disk time for writing the partitions.
	SimWriteTime time.Duration
}

// Materialize routes the full dataset through the layout and writes every
// partition as a columnar table. The layout must already be sealed; Route is
// (re)run here so partition sizes reflect the dataset.
func Materialize(l *layout.Layout, data *dataset.Dataset, cfg Config) *Store {
	cfg = cfg.withDefaults()
	start := time.Now()
	rows := make([]int, data.NumRows())
	for i := range rows {
		rows[i] = i
	}
	l.RouteParallel(data, runtime.NumCPU())
	byPart := l.RouteIndices(data, rows)
	routing := time.Since(start)

	s := &Store{cfg: cfg, parts: make(map[layout.ID]*StoredPartition, len(l.Parts)), RoutingTime: routing}
	for _, p := range l.Parts {
		tab := colstore.FromDataset(data, byPart[p.ID], cfg.GroupRows)
		if len(cfg.ZoneQueries) > 0 {
			if err := tab.SetZoneMaps(cfg.ZoneQueries, zoneMapBits(data, byPart[p.ID], tab, cfg.ZoneQueries)); err != nil {
				panic(err) // impossible: bits are built from this table's groups
			}
		}
		blocks := int((tab.Bytes() + cfg.BlockBytes - 1) / cfg.BlockBytes)
		if blocks == 0 {
			blocks = 1
		}
		s.parts[p.ID] = &StoredPartition{ID: p.ID, Table: tab, Blocks: blocks}
		s.BytesWritten += tab.Bytes()
	}
	s.SimWriteTime = time.Duration(float64(s.BytesWritten) / (cfg.WriteMBps * 1e6) * float64(time.Second))
	return s
}

// zoneMapBits computes per-row-group feature-vector incidence bits for a
// partition table directly from the source rows: one maxskip.RowVector per
// row, unioned across the rows of each group. rows lists the partition's
// source row indices in table order (nil meaning the whole dataset, matching
// colstore.FromDataset).
func zoneMapBits(data *dataset.Dataset, rows []int, tab *colstore.Table, queries []geom.Box) [][]uint64 {
	words := (len(queries) + 63) / 64
	bits := make([][]uint64, tab.NumGroups())
	vec := make([]uint64, words)
	next := 0
	for gi := range bits {
		g := make([]uint64, words)
		n := tab.GroupRows(gi)
		for i := 0; i < n; i++ {
			r := next + i
			if rows != nil {
				r = rows[next+i]
			}
			maxskip.RowVector(data, r, queries, vec)
			for w := 0; w < words; w++ {
				g[w] |= vec[w]
			}
		}
		next += n
		bits[gi] = g
	}
	return bits
}

// Partition returns the stored partition with the given ID.
func (s *Store) Partition(id layout.ID) (*StoredPartition, error) {
	p, ok := s.parts[id]
	if !ok {
		return nil, fmt.Errorf("blockstore: unknown partition %d", id)
	}
	return p, nil
}

// NumPartitions returns the number of stored partitions.
func (s *Store) NumPartitions() int { return len(s.parts) }

// TotalBlocks returns the number of storage blocks in use.
func (s *Store) TotalBlocks() int {
	t := 0
	for _, p := range s.parts {
		t += p.Blocks
	}
	return t
}

// BlockBytes returns the configured block size.
func (s *Store) BlockBytes() int64 { return s.cfg.BlockBytes }

// ScanPartition scans one partition with the query through the vectorized
// kernels, using row-group pruning and (when configured) feature-vector zone
// maps. Scanner scratch comes from the store's pool, so concurrent scans of
// different partitions are safe and allocation-free in steady state.
func (s *Store) ScanPartition(id layout.ID, q geom.Box) (colstore.ScanStats, error) {
	p, err := s.Partition(id)
	if err != nil {
		return colstore.ScanStats{}, err
	}
	sc := s.scanners.Get()
	defer s.scanners.Put(sc)
	return sc.Count(p.Table, q), nil
}

// ScanPartitionParallel scans one partition's row groups in parallel on the
// given bounded pool. Totals are deterministic at any worker count; a nil or
// serial pool degrades to ScanPartition.
func (s *Store) ScanPartitionParallel(id layout.ID, q geom.Box, pool *parbuild.Pool) (colstore.ScanStats, error) {
	if pool == nil || pool.Workers() <= 1 {
		return s.ScanPartition(id, q)
	}
	p, err := s.Partition(id)
	if err != nil {
		return colstore.ScanStats{}, err
	}
	return p.Table.CountParallel(q, pool, &s.scanners), nil
}

// ScanAll scans the listed partitions and sums the statistics — the storage
// side of Fig. 4's query flow.
func (s *Store) ScanAll(ids []layout.ID, q geom.Box) (colstore.ScanStats, error) {
	var total colstore.ScanStats
	for _, id := range ids {
		st, err := s.ScanPartition(id, q)
		if err != nil {
			return total, err
		}
		total.Add(st)
	}
	return total, nil
}
