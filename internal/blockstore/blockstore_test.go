package blockstore

import (
	"testing"

	"paw/internal/dataset"
	"paw/internal/kdtree"
	"paw/internal/workload"
)

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func TestMaterialize(t *testing.T) {
	data := dataset.Uniform(4000, 2, 1)
	l := kdtree.Build(data, allRows(4000), data.Domain(), kdtree.Params{MinRows: 200})
	s := Materialize(l, data, Config{BlockBytes: 1 << 12, GroupRows: 64})
	if s.NumPartitions() != l.NumPartitions() {
		t.Fatalf("stored %d partitions, layout has %d", s.NumPartitions(), l.NumPartitions())
	}
	if s.BytesWritten != data.TotalBytes() {
		t.Errorf("bytes written = %d, want %d", s.BytesWritten, data.TotalBytes())
	}
	if s.SimWriteTime <= 0 || s.RoutingTime <= 0 {
		t.Errorf("timings not recorded: write=%v route=%v", s.SimWriteTime, s.RoutingTime)
	}
	// Block accounting: every partition occupies >= 1 block, and total
	// blocks >= totalBytes/blockSize.
	minBlocks := int(data.TotalBytes() / (1 << 12))
	if got := s.TotalBlocks(); got < minBlocks {
		t.Errorf("total blocks = %d, want >= %d", got, minBlocks)
	}
	for _, p := range l.Parts {
		sp, err := s.Partition(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		if sp.Bytes() != p.Bytes() {
			t.Errorf("partition %d stored %d bytes, layout says %d", p.ID, sp.Bytes(), p.Bytes())
		}
	}
}

func TestUnknownPartition(t *testing.T) {
	data := dataset.Uniform(500, 2, 2)
	l := kdtree.Build(data, allRows(500), data.Domain(), kdtree.Params{MinRows: 100})
	s := Materialize(l, data, Config{})
	if _, err := s.Partition(9999); err == nil {
		t.Error("unknown partition must error")
	}
	if _, err := s.ScanPartition(9999, data.Domain()); err == nil {
		t.Error("scan of unknown partition must error")
	}
}

// TestScanAgainstRouter: scanning exactly the partitions the master selects
// returns exactly the query's result rows.
func TestScanAgainstRouter(t *testing.T) {
	data := dataset.Uniform(6000, 2, 3)
	l := kdtree.Build(data, allRows(6000), data.Domain(), kdtree.Params{MinRows: 200})
	s := Materialize(l, data, Config{GroupRows: 128})
	w := workload.Uniform(data.Domain(), workload.Defaults(30, 4))
	for _, q := range w.Boxes() {
		st, err := s.ScanAll(l.PartitionsFor(q), q)
		if err != nil {
			t.Fatal(err)
		}
		if want := data.CountInBox(q, nil); st.Matched != want {
			t.Fatalf("scan matched %d rows, dataset has %d in %v", st.Matched, want, q)
		}
		// Row-group pruning never reads more than the nominal I/O cost.
		if st.BytesRead > l.QueryCost(q, nil) {
			t.Fatalf("scan read %d bytes, above nominal cost %d", st.BytesRead, l.QueryCost(q, nil))
		}
	}
}

func TestRowGroupPruningReducesBytes(t *testing.T) {
	data := dataset.Uniform(8000, 2, 5)
	l := kdtree.Build(data, allRows(8000), data.Domain(), kdtree.Params{MinRows: 2000})
	s := Materialize(l, data, Config{GroupRows: 64})
	w := workload.Uniform(data.Domain(), workload.Defaults(25, 6))
	var nominal, read int64
	for _, q := range w.Boxes() {
		ids := l.PartitionsFor(q)
		for _, id := range ids {
			p, _ := s.Partition(id)
			nominal += p.Bytes()
		}
		st, err := s.ScanAll(ids, q)
		if err != nil {
			t.Fatal(err)
		}
		read += st.BytesRead
	}
	if read >= nominal {
		t.Errorf("row-group pruning read %d of %d nominal bytes — no pruning at all", read, nominal)
	}
	t.Logf("row-group pruning: read %d / nominal %d (%.0f%%)", read, nominal, 100*float64(read)/float64(nominal))
}
