package workload

import (
	"math"
	"math/rand"
	"testing"

	"paw/internal/geom"
)

// bruteMinimalDelta is the exhaustive reference for MinimalDelta: enumerate
// every matching in which each future query appears once and each
// historical query exactly |QF|/|QH| times (Definition 2), and return the
// smallest achievable maximum pair distance. Exponential — only usable on
// the tiny workloads the fuzzer generates.
func bruteMinimalDelta(hist, future Workload) float64 {
	ratio := len(future) / len(hist)
	used := make([]int, len(hist))
	best := math.Inf(1)
	var rec func(i int, curMax float64)
	rec = func(i int, curMax float64) {
		if curMax >= best {
			return
		}
		if i == len(future) {
			best = curMax
			return
		}
		for h := range hist {
			if used[h] == ratio {
				continue
			}
			used[h]++
			m := curMax
			if d := Dist(future[i], hist[h]); d > m {
				m = d
			}
			rec(i+1, m)
			used[h]--
		}
	}
	rec(0, 0)
	return best
}

func randomWorkload(rng *rand.Rand, n, dims int) Workload {
	out := make(Workload, n)
	for i := range out {
		lo := make(geom.Point, dims)
		hi := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			a := rng.Float64() * 100
			lo[d] = a
			hi[d] = a + rng.Float64()*20
		}
		out[i] = Query{Box: geom.Box{Lo: lo, Hi: hi}, Seq: int64(i)}
	}
	return out
}

// FuzzMinimalDelta differentially tests the bottleneck bipartite matching of
// §IV-E against brute force: on every fuzzed small instance the matcher's
// minimal δ′ must equal the exhaustively determined optimum, and the
// AreSimilar decision procedure must be consistent with it on both sides of
// the threshold.
func FuzzMinimalDelta(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(1), uint8(2))
	f.Add(int64(42), uint8(3), uint8(2), uint8(1))
	f.Add(int64(-7), uint8(4), uint8(1), uint8(3))
	f.Add(int64(99), uint8(1), uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, nHist, ratio, dims uint8) {
		n := 1 + int(nHist)%4   // 1..4 historical queries
		r := 1 + int(ratio)%2   // ratio 1..2
		dd := 1 + int(dims)%3   // 1..3 dimensions
		rng := rand.New(rand.NewSource(seed))
		hist := randomWorkload(rng, n, dd)
		future := randomWorkload(rng, n*r, dd)

		got, err := MinimalDelta(hist, future)
		if err != nil {
			t.Fatalf("MinimalDelta: %v", err)
		}
		want := bruteMinimalDelta(hist, future)
		if got != want {
			t.Fatalf("n=%d ratio=%d dims=%d: matcher found δ′=%g, brute force %g", n, r, dd, got, want)
		}
		if ok, err := AreSimilar(hist, future, got); err != nil || !ok {
			t.Fatalf("workloads not similar at their own minimal δ′=%g (err=%v)", got, err)
		}
		if below := math.Nextafter(got, 0); below < got {
			if ok, _ := AreSimilar(hist, future, below); ok && got > 0 {
				t.Fatalf("workloads similar below the minimal δ′=%g", got)
			}
		}
	})
}
