package workload

import (
	"math"
	"math/rand"
	"testing"

	"paw/internal/geom"
)

func q2(l0, l1, h0, h1 float64) Query {
	return Query{Box: geom.Box{Lo: geom.Point{l0, l1}, Hi: geom.Point{h0, h1}}}
}

func TestDist(t *testing.T) {
	a := q2(0, 0, 10, 10)
	cases := []struct {
		b    Query
		want float64
	}{
		{q2(0, 0, 10, 10), 0},
		{q2(1, 0, 10, 10), 1},
		{q2(0, 0, 10, 13), 3},
		{q2(-2, 1, 9, 11), 2},
	}
	for _, c := range cases {
		if got := Dist(a, c.b); got != c.want {
			t.Errorf("Dist = %v, want %v", got, c.want)
		}
		if got := Dist(c.b, a); got != c.want {
			t.Errorf("Dist not symmetric")
		}
	}
}

func TestExtend(t *testing.T) {
	w := Workload{q2(1, 1, 2, 2)}
	e := w.Extend(0.5)
	want := geom.Box{Lo: geom.Point{0.5, 0.5}, Hi: geom.Point{2.5, 2.5}}
	if !e[0].Box.Equal(want) {
		t.Errorf("Extend = %v, want %v", e[0].Box, want)
	}
	// Original untouched.
	if !w[0].Box.Equal(q2(1, 1, 2, 2).Box) {
		t.Error("Extend mutated the input workload")
	}
}

func TestClipAndIntersecting(t *testing.T) {
	w := Workload{q2(0, 0, 4, 4), q2(8, 8, 9, 9), q2(3, 3, 6, 6)}
	p := geom.Box{Lo: geom.Point{2, 2}, Hi: geom.Point{5, 5}}
	clipped := w.Clip(p)
	if len(clipped) != 2 {
		t.Fatalf("Clip kept %d queries, want 2", len(clipped))
	}
	if !clipped[0].Box.Equal(geom.Box{Lo: geom.Point{2, 2}, Hi: geom.Point{4, 4}}) {
		t.Errorf("clip wrong: %v", clipped[0].Box)
	}
	inter := w.Intersecting(p)
	if len(inter) != 2 {
		t.Fatalf("Intersecting kept %d, want 2", len(inter))
	}
	if !inter[0].Box.Equal(w[0].Box) {
		t.Error("Intersecting must not clip")
	}
}

func TestSplitHalves(t *testing.T) {
	w := Workload{
		{Box: q2(0, 0, 1, 1).Box, Seq: 3},
		{Box: q2(1, 1, 2, 2).Box, Seq: 1},
		{Box: q2(2, 2, 3, 3).Box, Seq: 2},
		{Box: q2(3, 3, 4, 4).Box, Seq: 0},
	}
	h1, h2 := w.SplitHalves()
	if len(h1) != 2 || len(h2) != 2 {
		t.Fatalf("halves: %d, %d", len(h1), len(h2))
	}
	if h1[0].Seq != 0 || h1[1].Seq != 1 || h2[0].Seq != 2 || h2[1].Seq != 3 {
		t.Errorf("halves not ordered by Seq: %v %v", h1, h2)
	}
	// Odd length: first half gets the extra query.
	h1, h2 = w[:3].SplitHalves()
	if len(h1) != 2 || len(h2) != 1 {
		t.Errorf("odd split: %d, %d", len(h1), len(h2))
	}
}

func TestUniformGenerator(t *testing.T) {
	dom := geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{100, 200}}
	p := Defaults(500, 42)
	w := Uniform(dom, p)
	if len(w) != 500 {
		t.Fatalf("generated %d queries", len(w))
	}
	for _, q := range w {
		if !dom.ContainsBox(q.Box) {
			t.Fatalf("query %v escapes the domain", q.Box)
		}
		for d := 0; d < 2; d++ {
			maxLen := p.MaxRangeFrac * (dom.Hi[d] - dom.Lo[d])
			if ext := q.Box.Hi[d] - q.Box.Lo[d]; ext > maxLen+1e-9 {
				t.Fatalf("query extent %v exceeds γ·len = %v", ext, maxLen)
			}
		}
	}
	// Determinism.
	w2 := Uniform(dom, p)
	for i := range w {
		if !w[i].Box.Equal(w2[i].Box) {
			t.Fatal("Uniform not deterministic")
		}
	}
}

func TestSkewedGenerator(t *testing.T) {
	dom := geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{100, 100}}
	p := Defaults(1000, 7)
	p.Centers = 1
	w := Skewed(dom, p)
	if len(w) != 1000 {
		t.Fatalf("generated %d queries", len(w))
	}
	for _, q := range w {
		if !dom.ContainsBox(q.Box) {
			t.Fatalf("query %v escapes the domain", q.Box)
		}
	}
	// Skewness: query centers should concentrate. Compare the variance of
	// skewed centers against uniform ones.
	varOf := func(w Workload) float64 {
		mean, n := 0.0, float64(len(w))
		for _, q := range w {
			mean += (q.Box.Lo[0] + q.Box.Hi[0]) / 2
		}
		mean /= n
		v := 0.0
		for _, q := range w {
			c := (q.Box.Lo[0] + q.Box.Hi[0]) / 2
			v += (c - mean) * (c - mean)
		}
		return v / n
	}
	u := Uniform(dom, p)
	if varOf(w) > varOf(u)*0.5 {
		t.Errorf("skewed workload variance %v not clearly below uniform %v", varOf(w), varOf(u))
	}
}

func TestFutureIsSimilar(t *testing.T) {
	dom := geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{100, 100}}
	hist := Uniform(dom, Defaults(40, 1))
	const delta = 2.0
	fut := Future(hist, delta, 1, 99)
	if len(fut) != len(hist) {
		t.Fatalf("future size %d", len(fut))
	}
	ok, err := AreSimilar(hist, fut, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Future output must be δ-similar to its source")
	}
	// With ratio 3.
	fut3 := Future(hist, delta, 3, 5)
	if len(fut3) != 3*len(hist) {
		t.Fatalf("ratio-3 future size %d", len(fut3))
	}
	ok, err = AreSimilar(hist, fut3, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("ratio-3 future must be δ-similar")
	}
}

func TestAreSimilarRejects(t *testing.T) {
	dom := geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{100, 100}}
	hist := Uniform(dom, Defaults(10, 1))
	// A faraway workload is not similar for small delta.
	far := hist.Clone()
	for i := range far {
		for d := range far[i].Box.Lo {
			far[i].Box.Lo[d] += 50
			far[i].Box.Hi[d] += 50
		}
	}
	ok, err := AreSimilar(hist, far, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("shifted workload must not be 1-similar")
	}
	// 50.001 rather than 50 exactly: (x+50)-x can round above 50 in float64.
	ok, err = AreSimilar(hist, far, 50.001)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("shifted workload must be 50.001-similar")
	}
	// Divisibility requirement.
	if _, err := AreSimilar(hist, hist[:7], 1); err == nil {
		t.Error("non-divisible sizes must error")
	}
	if _, err := AreSimilar(nil, hist, 1); err == nil {
		t.Error("empty QH must error")
	}
}

// TestAreSimilarCapacity verifies condition (iii): each historical query is
// used exactly |QF|/|QH| times. Two historical queries, four future queries
// all close to the first historical query only — must fail because the
// second historical query would be starved.
func TestAreSimilarCapacity(t *testing.T) {
	hist := Workload{q2(0, 0, 1, 1), q2(50, 50, 51, 51)}
	fut := Workload{q2(0, 0, 1, 1), q2(0.1, 0, 1, 1), q2(0, 0.1, 1, 1), q2(0.1, 0.1, 1.1, 1.1)}
	ok, err := AreSimilar(hist, fut, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("matching must respect per-historical-query capacity")
	}
	// With a threshold large enough to reach the far query it succeeds.
	ok, _ = AreSimilar(hist, fut, 51)
	if !ok {
		t.Error("large threshold must succeed")
	}
}

func TestMinimalDeltaExact(t *testing.T) {
	// Construct a case with a known bottleneck: identical workloads → 0.
	dom := geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{100, 100}}
	hist := Uniform(dom, Defaults(20, 3))
	d, err := MinimalDelta(hist, hist)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("MinimalDelta(w, w) = %v, want 0", d)
	}
	// Shift by exactly 5 in one dim: bottleneck must be 5.
	shifted := hist.Clone()
	for i := range shifted {
		shifted[i].Box.Lo[0] += 5
		shifted[i].Box.Hi[0] += 5
	}
	d, err = MinimalDelta(hist, shifted)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-5) > 1e-9 {
		// The bottleneck can be < 5 when some other historical query happens
		// to be closer than the shifted self. Verify minimality instead.
		t.Logf("bottleneck %v < 5: cross-matching found a shorter assignment", d)
	}
	verifyMinimality(t, hist, shifted, d)
}

func verifyMinimality(t *testing.T, hist, fut Workload, d float64) {
	t.Helper()
	ok, err := AreSimilar(hist, fut, d)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("workloads must be %v-similar", d)
	}
	if d > 0 {
		ok, err = AreSimilar(hist, fut, d*(1-1e-9)-1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("δ′=%v is not minimal", d)
		}
	}
}

// TestMinimalDeltaRandom cross-checks minimality on random instances.
func TestMinimalDeltaRandom(t *testing.T) {
	dom := geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{10, 10}}
	for seed := int64(0); seed < 10; seed++ {
		p := Defaults(16, seed)
		hist := Uniform(dom, p)
		p.Seed = seed + 100
		fut := Uniform(dom, p)
		d, err := MinimalDelta(hist, fut)
		if err != nil {
			t.Fatal(err)
		}
		verifyMinimality(t, hist, fut, d)
		// The greedy bound is an upper bound.
		g, err := GreedyMinimalDelta(hist, fut)
		if err != nil {
			t.Fatal(err)
		}
		if g < d-1e-12 {
			t.Errorf("greedy %v below exact bottleneck %v", g, d)
		}
	}
}

func TestEstimateDelta(t *testing.T) {
	dom := geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{100, 100}}
	hist := Uniform(dom, Defaults(30, 2))
	// Build a 60-query history whose second half is the first half moved by
	// at most 3: the estimate must be <= 3 and > 0.
	fut := Future(hist, 3, 1, 77)
	all := make(Workload, 0, 60)
	for i, q := range hist {
		all = append(all, Query{Box: q.Box, Seq: int64(i)})
	}
	for i, q := range fut {
		all = append(all, Query{Box: q.Box, Seq: int64(30 + i)})
	}
	d, err := EstimateDelta(all)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 3+1e-9 {
		t.Errorf("EstimateDelta = %v, want in (0, 3]", d)
	}
	if _, err := EstimateDelta(all[:1]); err == nil {
		t.Error("single-query history must error")
	}
	// The strict variant also recovers a bound here (halves match 1:1 by
	// construction) and can never be below the capacity-free estimate.
	ds, err := EstimateDeltaStrict(all)
	if err != nil {
		t.Fatal(err)
	}
	if ds < d-1e-12 {
		t.Errorf("strict estimate %v below capacity-free %v", ds, d)
	}
	if ds <= 0 || ds > 3+1e-9 {
		t.Errorf("EstimateDeltaStrict = %v, want in (0, 3]", ds)
	}
	if _, err := EstimateDeltaStrict(all[:1]); err == nil {
		t.Error("single-query history must error (strict)")
	}
}

// TestEstimateDeltaClustered demonstrates why the capacity-free estimator is
// the default: two history halves covering the same two clusters with
// *different* per-cluster counts. The capacity-free estimate stays at the
// intra-cluster scale; the strict one is forced across clusters.
func TestEstimateDeltaClustered(t *testing.T) {
	mk := func(cx float64, n int, seqBase int64) Workload {
		var w Workload
		for i := 0; i < n; i++ {
			off := float64(i) * 0.01
			w = append(w, Query{
				Box: geom.Box{Lo: geom.Point{cx + off, 0}, Hi: geom.Point{cx + off + 1, 1}},
				Seq: seqBase + int64(i),
			})
		}
		return w
	}
	// Older half: 3 queries at cluster A, 1 at cluster B (far away).
	// Newer half: 1 at A, 3 at B.
	old := append(mk(0, 3, 0), mk(100, 1, 3)...)
	newer := append(mk(0.5, 1, 4), mk(100.5, 3, 5)...)
	all := append(old, newer...)
	d, err := EstimateDelta(all)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1 {
		t.Errorf("capacity-free estimate %v should stay at the intra-cluster scale", d)
	}
	ds, err := EstimateDeltaStrict(all)
	if err != nil {
		t.Fatal(err)
	}
	if ds < 50 {
		t.Errorf("strict estimate %v should be forced across clusters (~100)", ds)
	}
}

func TestMixRandom(t *testing.T) {
	dom := geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{100, 100}}
	w := Uniform(dom, Defaults(100, 4))
	mixed := MixRandom(w, dom, 30, 0.1, 9)
	if len(mixed) != len(w) {
		t.Fatal("size changed")
	}
	changed := 0
	for i := range w {
		if !w[i].Box.Equal(mixed[i].Box) {
			changed++
		}
	}
	if changed != 30 {
		t.Errorf("changed %d queries, want 30", changed)
	}
	// 0%% and 100%% edges.
	if m := MixRandom(w, dom, 0, 0.1, 9); !m[0].Box.Equal(w[0].Box) {
		t.Error("0% mix must not change anything")
	}
	m := MixRandom(w, dom, 100, 0.1, 9)
	same := 0
	for i := range w {
		if w[i].Box.Equal(m[i].Box) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("100%% mix left %d queries unchanged", same)
	}
}

// Property: Lemma 1's geometric core — every query of a δ-similar future
// workload is contained in the extension of its matched historical query.
// Since Future matches q'_{i,r} to hist[i], check containment directly.
func TestExtendContainsFutureProperty(t *testing.T) {
	dom := geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{50, 50}}
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 50; iter++ {
		delta := rng.Float64() * 5
		hist := Uniform(dom, Defaults(20, rng.Int63()))
		ext := hist.Extend(delta)
		fut := Future(hist, delta, 2, rng.Int63())
		for i, q := range fut {
			if !ext[i/2].Box.ContainsBox(q.Box) {
				t.Fatalf("extended query %v does not contain future %v (δ=%v)", ext[i/2].Box, q.Box, delta)
			}
		}
	}
}
