package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"paw/internal/geom"
)

// Log is an append-only query log — the production source of historical
// workloads. The master records every routed range query here; partition
// (re)construction later replays the log as QH, and the δ′ estimator
// (§IV-E) consumes its timestamp order. Safe for concurrent recording.
type Log struct {
	mu      sync.Mutex
	entries Workload
	nextSeq int64
}

// Record appends one query, stamping it with the next sequence number.
func (l *Log) Record(q geom.Box) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, Query{Box: q.Clone(), Seq: l.nextSeq})
	l.nextSeq++
}

// Len returns the number of recorded queries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Workload snapshots the full log as a workload.
func (l *Log) Workload() Workload {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.entries.Clone()
}

// Tail snapshots the most recent n queries (all when n exceeds the length).
// Rebuilding a layout from the recent tail keeps stale query patterns from
// dominating the next layout.
func (l *Log) Tail(n int) Workload {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n >= len(l.entries) {
		return l.entries.Clone()
	}
	return l.entries[len(l.entries)-n:].Clone()
}

// Binary query-log format:
//
//	magic   uint32 'PAWQ'
//	version uint16 1
//	dims    uint16
//	count   uint64
//	per query: seq int64, dims lo float64, dims hi float64
const (
	logMagic   = 0x50415751 // "PAWQ"
	logVersion = 1
)

// Encode serialises the log.
func (l *Log) Encode(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	write := func(v any) error { return binary.Write(bw, le, v) }
	if err := write(uint32(logMagic)); err != nil {
		return err
	}
	if err := write(uint16(logVersion)); err != nil {
		return err
	}
	dims := 0
	if len(l.entries) > 0 {
		dims = l.entries[0].Box.Dims()
	}
	if err := write(uint16(dims)); err != nil {
		return err
	}
	if err := write(uint64(len(l.entries))); err != nil {
		return err
	}
	for _, q := range l.entries {
		if q.Box.Dims() != dims {
			return fmt.Errorf("workload: mixed dimensionality in log (%d vs %d)", q.Box.Dims(), dims)
		}
		if err := write(q.Seq); err != nil {
			return err
		}
		for _, v := range q.Box.Lo {
			if err := write(v); err != nil {
				return err
			}
		}
		for _, v := range q.Box.Hi {
			if err := write(v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DecodeLog reads a log serialised by Encode.
func DecodeLog(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var magic uint32
	if err := binary.Read(br, le, &magic); err != nil {
		return nil, fmt.Errorf("workload: reading log magic: %w", err)
	}
	if magic != logMagic {
		return nil, fmt.Errorf("workload: bad log magic %#x", magic)
	}
	var version, dims uint16
	if err := binary.Read(br, le, &version); err != nil {
		return nil, err
	}
	if version != logVersion {
		return nil, fmt.Errorf("workload: unsupported log version %d", version)
	}
	if err := binary.Read(br, le, &dims); err != nil {
		return nil, err
	}
	var count uint64
	if err := binary.Read(br, le, &count); err != nil {
		return nil, err
	}
	out := &Log{}
	for i := uint64(0); i < count; i++ {
		var seq int64
		if err := binary.Read(br, le, &seq); err != nil {
			return nil, fmt.Errorf("workload: log entry %d: %w", i, err)
		}
		lo := make(geom.Point, dims)
		hi := make(geom.Point, dims)
		for d := range lo {
			if err := binary.Read(br, le, &lo[d]); err != nil {
				return nil, err
			}
		}
		for d := range hi {
			if err := binary.Read(br, le, &hi[d]); err != nil {
				return nil, err
			}
		}
		out.entries = append(out.entries, Query{Box: geom.Box{Lo: lo, Hi: hi}, Seq: seq})
		if seq >= out.nextSeq {
			out.nextSeq = seq + 1
		}
	}
	return out, nil
}
