package workload

import "math"

// MinAvgDelta computes an alternative workload-similarity measure that the
// paper leaves as future work (§III-A remark after Definition 2): instead of
// the bottleneck (max) matched distance, it returns the minimal *average*
// matched distance between the future and historical workloads, under the
// same capacity rules as Definition 2 (every future query matched once,
// every historical query used exactly |QF|/|QH| times).
//
// The assignment is solved exactly with the Hungarian algorithm
// (Jonker–Volgenant potentials variant, O(n³)), so it is intended for
// workloads up to a few thousand queries. The returned slice maps every
// future query index to its matched historical query index.
func MinAvgDelta(hist, future Workload) (float64, []int, error) {
	if err := checkDivisible(hist, future); err != nil {
		return 0, nil, err
	}
	k := len(future) / len(hist)
	n := len(future)
	// Cost matrix over future × (historical replicated k times).
	cost := make([][]float64, n)
	for i, qf := range future {
		row := make([]float64, n)
		for j, qh := range hist {
			d := Dist(qf, qh)
			for c := 0; c < k; c++ {
				row[j*k+c] = d
			}
		}
		cost[i] = row
	}
	assign := hungarian(cost)
	total := 0.0
	match := make([]int, n)
	for i, j := range assign {
		match[i] = j / k
		total += cost[i][j]
	}
	return total / float64(n), match, nil
}

// hungarian solves the square assignment problem, returning for each row the
// assigned column, minimising the total cost. Implementation: the standard
// O(n³) shortest-augmenting-path algorithm with row/column potentials
// (Jonker–Volgenant style, 1-indexed internally to use column 0 as the
// virtual source).
func hungarian(cost [][]float64) []int {
	n := len(cost)
	const inf = math.MaxFloat64
	u := make([]float64, n+1) // row potentials
	v := make([]float64, n+1) // column potentials
	p := make([]int, n+1)     // p[j]: row assigned to column j (0 = none)
	way := make([]int, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	out := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] != 0 {
			out[p[j]-1] = j - 1
		}
	}
	return out
}
