package workload

import (
	"fmt"
	"math"
	"sort"
)

// AreSimilar decides Definition 2: whether hist (QH) and future (QF) are
// δ-similar, i.e. whether there is a matching M ⊂ QF×QH in which every
// future query appears exactly once, every historical query appears exactly
// |QF|/|QH| times, and every matched pair is within distance delta.
//
// It returns an error when |QF| is not divisible by |QH| (the definition
// requires divisibility).
func AreSimilar(hist, future Workload, delta float64) (bool, error) {
	m := newMatcher(hist, future)
	if m.err != nil {
		return false, m.err
	}
	return m.feasible(delta), nil
}

// MinimalDelta returns the smallest δ′ such that hist and future are
// δ′-similar (the bottleneck assignment value). It is the core of the §IV-E
// estimation heuristic.
func MinimalDelta(hist, future Workload) (float64, error) {
	m := newMatcher(hist, future)
	if m.err != nil {
		return 0, m.err
	}
	// Candidate thresholds are exactly the pairwise distances.
	cand := make([]float64, 0, len(m.dist)*len(m.dist[0]))
	for _, row := range m.dist {
		cand = append(cand, row...)
	}
	sort.Float64s(cand)
	cand = dedupFloats(cand)
	// Binary search the smallest feasible threshold. The largest candidate
	// is always feasible: with all edges present the graph is complete
	// bipartite and right capacities sum to exactly |QF|.
	lo, hi := 0, len(cand)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if m.feasible(cand[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return cand[lo], nil
}

// EstimateDelta implements the §IV-E heuristic for unknown δ: split the
// historical workload into two equal halves by timestamp ("past" and
// "future") and return the smallest δ′ under which the newer half looks like
// a drift of the older one.
//
// The estimate is the directed Hausdorff distance from the newer half to the
// older half: max over new queries of the distance to their nearest old
// query. This is Definition 2 without the capacity condition (iii). The
// strict capacity-constrained bottleneck (EstimateDeltaStrict) degenerates
// on clustered workloads: whenever the halves' per-cluster counts differ —
// which independent samples almost always do — some query is forced to match
// across clusters and δ′ jumps to the inter-cluster distance, grossly
// over-extending every query. The capacity-free variant reproduces the
// paper's Fig. 22a behaviour (PAW-unknown within a few × of PAW on uniform
// workloads and comparable on skewed ones).
func EstimateDelta(hist Workload) (float64, error) {
	if len(hist) < 2 {
		return 0, fmt.Errorf("workload: need at least 2 queries to estimate delta, have %d", len(hist))
	}
	h1, h2 := hist.SplitHalves()
	return DirectedDelta(h1, h2), nil
}

// DirectedDelta returns the directed Hausdorff distance from live to ref
// under the Definition 1 query metric: the largest distance any live query
// must travel to reach its nearest reference query. It is Definition 2's δ
// without the capacity condition — the same relaxation EstimateDelta applies
// to history halves — and is what the drift monitor evaluates online: a live
// window whose DirectedDelta against the historical workload exceeds the
// layout's δ contains queries no Q*F extension accounted for. Empty inputs
// yield 0 (an empty live window has drifted nowhere; an empty reference
// would make every distance infinite, which no finite δ comparison wants).
func DirectedDelta(ref, live Workload) float64 {
	if len(ref) == 0 || len(live) == 0 {
		return 0
	}
	est := 0.0
	for _, q := range live {
		nn := math.Inf(1)
		for _, p := range ref {
			if d := Dist(q, p); d < nn {
				nn = d
			}
		}
		if nn > est {
			est = nn
		}
	}
	return est
}

// EstimateDeltaStrict is the literal §IV-E procedure: the minimal δ′ making
// the two history halves δ′-similar under the full Definition 2, capacity
// condition included. See EstimateDelta for why this degenerates on
// clustered workloads. When the halves' sizes differ, the larger half is
// trimmed to the divisible prefix.
func EstimateDeltaStrict(hist Workload) (float64, error) {
	if len(hist) < 2 {
		return 0, fmt.Errorf("workload: need at least 2 queries to estimate delta, have %d", len(hist))
	}
	h1, h2 := hist.SplitHalves()
	// Definition 2 matches QF against QH with |QF| divisible by |QH|; here
	// QH=h1, QF=h2. SplitHalves gives |h1| >= |h2|; trim h1 to |h2| so the
	// ratio is exactly 1.
	if len(h1) > len(h2) {
		h1 = h1[:len(h2)]
	}
	return MinimalDelta(h1, h2)
}

// GreedyMinimalDelta is a fast approximation of MinimalDelta for very large
// workloads: it sorts all pairs by distance and greedily matches respecting
// capacities, returning the largest distance used. The result is an upper
// bound on the true bottleneck value.
func GreedyMinimalDelta(hist, future Workload) (float64, error) {
	if err := checkDivisible(hist, future); err != nil {
		return 0, err
	}
	k := len(future) / len(hist)
	type pair struct {
		d    float64
		f, h int
	}
	pairs := make([]pair, 0, len(hist)*len(future))
	for i, qf := range future {
		for j, qh := range hist {
			pairs = append(pairs, pair{Dist(qf, qh), i, j})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].d < pairs[b].d })
	matchedF := make([]bool, len(future))
	capH := make([]int, len(hist))
	for i := range capH {
		capH[i] = k
	}
	remaining := len(future)
	maxD := 0.0
	for _, p := range pairs {
		if remaining == 0 {
			break
		}
		if matchedF[p.f] || capH[p.h] == 0 {
			continue
		}
		matchedF[p.f] = true
		capH[p.h]--
		remaining--
		if p.d > maxD {
			maxD = p.d
		}
	}
	if remaining != 0 {
		return 0, fmt.Errorf("workload: greedy matching left %d queries unmatched", remaining)
	}
	return maxD, nil
}

func checkDivisible(hist, future Workload) error {
	if len(hist) == 0 || len(future) == 0 {
		return fmt.Errorf("workload: empty workload (|QH|=%d, |QF|=%d)", len(hist), len(future))
	}
	if len(future)%len(hist) != 0 {
		return fmt.Errorf("workload: |QF|=%d not divisible by |QH|=%d", len(future), len(hist))
	}
	return nil
}

// matcher holds the precomputed distance matrix and scratch state for
// repeated Hopcroft–Karp feasibility tests at different thresholds.
type matcher struct {
	dist [][]float64 // dist[f][h]
	k    int         // capacity of each historical query
	err  error

	// Hopcroft–Karp state over left = future queries, right = historical
	// queries replicated k times (right index = h*k + copy).
	matchL, matchR, layer, queue, iter []int
}

func newMatcher(hist, future Workload) *matcher {
	m := &matcher{}
	if err := checkDivisible(hist, future); err != nil {
		m.err = err
		return m
	}
	m.k = len(future) / len(hist)
	m.dist = make([][]float64, len(future))
	for i, qf := range future {
		row := make([]float64, len(hist))
		for j, qh := range hist {
			row[j] = Dist(qf, qh)
		}
		m.dist[i] = row
	}
	n := len(future)
	r := len(hist) * m.k
	m.matchL = make([]int, n)
	m.matchR = make([]int, r)
	m.layer = make([]int, n)
	m.queue = make([]int, 0, n)
	m.iter = make([]int, n)
	return m
}

const unmatched = -1

// feasible runs Hopcroft–Karp and reports whether a perfect matching of the
// left side exists using only edges with distance <= delta.
func (m *matcher) feasible(delta float64) bool {
	n := len(m.matchL)
	for i := range m.matchL {
		m.matchL[i] = unmatched
	}
	for i := range m.matchR {
		m.matchR[i] = unmatched
	}
	matched := 0
	for {
		if !m.bfs(delta) {
			break
		}
		for i := range m.iter {
			m.iter[i] = 0
		}
		for u := 0; u < n; u++ {
			if m.matchL[u] == unmatched && m.dfs(u, delta) {
				matched++
			}
		}
	}
	return matched == n
}

// bfs layers the left vertices by shortest alternating path from any free
// left vertex; returns false when no augmenting path exists.
func (m *matcher) bfs(delta float64) bool {
	const inf = int(^uint(0) >> 1)
	m.queue = m.queue[:0]
	for u := range m.layer {
		if m.matchL[u] == unmatched {
			m.layer[u] = 0
			m.queue = append(m.queue, u)
		} else {
			m.layer[u] = inf
		}
	}
	found := false
	for qi := 0; qi < len(m.queue); qi++ {
		u := m.queue[qi]
		row := m.dist[u]
		for h, d := range row {
			if d > delta {
				continue
			}
			for c := 0; c < m.k; c++ {
				v := h*m.k + c
				w := m.matchR[v]
				if w == unmatched {
					found = true
				} else if m.layer[w] == inf {
					m.layer[w] = m.layer[u] + 1
					m.queue = append(m.queue, w)
				}
			}
		}
	}
	return found
}

// dfs searches for an augmenting path from left vertex u along the BFS
// layers, advancing a per-vertex edge cursor so each edge is scanned once
// per phase.
func (m *matcher) dfs(u int, delta float64) bool {
	row := m.dist[u]
	nEdges := len(row) * m.k
	for ; m.iter[u] < nEdges; m.iter[u]++ {
		e := m.iter[u]
		h := e / m.k
		if row[h] > delta {
			// Skip the remaining copies of this historical query.
			m.iter[u] = (h+1)*m.k - 1
			continue
		}
		v := h*m.k + e%m.k
		w := m.matchR[v]
		if w == unmatched || (m.layer[w] == m.layer[u]+1 && m.dfs(w, delta)) {
			m.matchL[u] = v
			m.matchR[v] = u
			return true
		}
	}
	return false
}

func dedupFloats(a []float64) []float64 {
	if len(a) == 0 {
		return a
	}
	out := a[:1]
	for _, v := range a[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
