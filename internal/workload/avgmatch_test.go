package workload

import (
	"math"
	"math/rand"
	"testing"

	"paw/internal/geom"
)

func TestHungarianSmall(t *testing.T) {
	// Known instance: optimal assignment is the anti-diagonal, total 3.
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign := hungarian(cost)
	total := 0.0
	for i, j := range assign {
		total += cost[i][j]
	}
	if total != 5 { // 1 + 2 + 2
		t.Errorf("Hungarian total = %v, want 5 (assignment %v)", total, assign)
	}
	// The assignment must be a permutation.
	seen := map[int]bool{}
	for _, j := range assign {
		if seen[j] {
			t.Fatal("assignment is not a permutation")
		}
		seen[j] = true
	}
}

// TestHungarianMatchesBruteForce enumerates all permutations on small random
// instances and compares the optimum.
func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		n := 2 + rng.Intn(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64()*100) / 10
			}
		}
		assign := hungarian(cost)
		got := 0.0
		for i, j := range assign {
			got += cost[i][j]
		}
		want := bruteMin(cost)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("n=%d: Hungarian %v, brute force %v (cost %v)", n, got, want, cost)
		}
	}
}

func bruteMin(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			s := 0.0
			for i, j := range perm {
				s += cost[i][j]
			}
			if s < best {
				best = s
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func TestMinAvgDeltaIdentical(t *testing.T) {
	dom := geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{100, 100}}
	w := Uniform(dom, Defaults(20, 3))
	avg, match, err := MinAvgDelta(w, w)
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("identical workloads avg = %v, want 0", avg)
	}
	if len(match) != len(w) {
		t.Errorf("match length %d", len(match))
	}
}

// TestMinAvgBelowBottleneck: the min-average matched distance can never
// exceed the bottleneck value δ′ (under the bottleneck-optimal matching, the
// average is at most the max; the min-average matching is at least as good).
func TestMinAvgBelowBottleneck(t *testing.T) {
	dom := geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{10, 10}}
	for seed := int64(0); seed < 8; seed++ {
		a := Uniform(dom, Defaults(12, seed))
		b := Uniform(dom, Defaults(12, seed+100))
		avg, _, err := MinAvgDelta(a, b)
		if err != nil {
			t.Fatal(err)
		}
		bottleneck, err := MinimalDelta(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if avg > bottleneck+1e-9 {
			t.Errorf("seed %d: min-avg %v above bottleneck %v", seed, avg, bottleneck)
		}
	}
}

func TestMinAvgDeltaCapacities(t *testing.T) {
	// Ratio 2: every historical query must be used exactly twice.
	dom := geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{100, 100}}
	hist := Uniform(dom, Defaults(6, 5))
	fut := Future(hist, 1.0, 2, 6)
	avg, match, err := MinAvgDelta(hist, fut)
	if err != nil {
		t.Fatal(err)
	}
	if avg > 1.0+1e-9 {
		t.Errorf("avg %v above the generation bound 1.0", avg)
	}
	uses := make([]int, len(hist))
	for _, h := range match {
		uses[h]++
	}
	for i, u := range uses {
		if u != 2 {
			t.Errorf("historical query %d used %d times, want 2", i, u)
		}
	}
	// Divisibility errors.
	if _, _, err := MinAvgDelta(hist, fut[:7]); err == nil {
		t.Error("non-divisible sizes must error")
	}
}
