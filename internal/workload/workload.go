// Package workload models query workloads: range queries, the L∞ query
// distance of Definition 1, δ-similarity of workloads (Definition 2, decided
// by bipartite matching), the worst-case extended workload Q*F of §IV-A, the
// δ′ estimation heuristic of §IV-E, and the uniform/skewed workload
// generators used throughout the paper's evaluation (Table III).
package workload

import (
	"math"

	"paw/internal/geom"
)

// Query is a multi-dimensional range query. Seq is a logical timestamp used
// to order historical queries when simulating past/future halves (§IV-E).
type Query struct {
	Box geom.Box
	Seq int64
}

// Workload is an ordered collection of queries.
type Workload []Query

// Boxes returns the query boxes in order.
func (w Workload) Boxes() []geom.Box {
	out := make([]geom.Box, len(w))
	for i, q := range w {
		out[i] = q.Box
	}
	return out
}

// Clone deep-copies the workload.
func (w Workload) Clone() Workload {
	out := make(Workload, len(w))
	for i, q := range w {
		out[i] = Query{Box: q.Box.Clone(), Seq: q.Seq}
	}
	return out
}

// Dist is the distance between two queries from Definition 1: the maximal
// difference of any bound on any dimension (L∞ over the 2·dmax bound
// vector).
func Dist(a, b Query) float64 {
	d := 0.0
	for dim := range a.Box.Lo {
		if v := math.Abs(a.Box.Lo[dim] - b.Box.Lo[dim]); v > d {
			d = v
		}
		if v := math.Abs(a.Box.Hi[dim] - b.Box.Hi[dim]); v > d {
			d = v
		}
	}
	return d
}

// Extend builds the worst-case workload Q*F (§IV-A): every query is grown by
// delta in all directions. Lemma 1 shows that optimising a layout against
// this single workload optimises the worst case over all δ-similar future
// workloads.
func (w Workload) Extend(delta float64) Workload {
	out := make(Workload, len(w))
	for i, q := range w {
		out[i] = Query{Box: q.Box.Extend(delta), Seq: q.Seq}
	}
	return out
}

// Clip returns the sub-workload of queries intersecting box p, with each
// query clipped to p. This is Q*F(P) in Algorithms 1–3.
func (w Workload) Clip(p geom.Box) Workload {
	var out Workload
	for _, q := range w {
		if inter, ok := q.Box.Intersection(p); ok {
			out = append(out, Query{Box: inter, Seq: q.Seq})
		}
	}
	return out
}

// Intersecting returns the sub-workload of queries intersecting box p
// without clipping them.
func (w Workload) Intersecting(p geom.Box) Workload {
	var out Workload
	for _, q := range w {
		if q.Box.Intersects(p) {
			out = append(out, q)
		}
	}
	return out
}

// SplitHalves divides the workload into two equal halves by Seq order,
// simulating "past" and "future" for δ′ estimation (§IV-E). The workload
// length must be even; odd lengths put the extra query in the first half.
func (w Workload) SplitHalves() (Workload, Workload) {
	s := w.Clone()
	// Insertion sort by Seq; workloads are small and usually pre-sorted.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Seq < s[j-1].Seq; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	mid := (len(s) + 1) / 2
	return s[:mid], s[mid:]
}
