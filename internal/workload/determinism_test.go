package workload

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"paw/internal/geom"
)

func testDomain(dims int) geom.Box {
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for d := range hi {
		hi[d] = float64(100 * (d + 1))
	}
	return geom.Box{Lo: lo, Hi: hi}
}

func equalWorkloads(a, b Workload) error {
	if len(a) != len(b) {
		return fmt.Errorf("lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || !a[i].Box.Equal(b[i].Box) {
			return fmt.Errorf("query %d diverges: %v vs %v", i, a[i], b[i])
		}
	}
	return nil
}

// TestGenerateDeterministicAcrossGOMAXPROCS pins the reproducibility
// contract of seeded generation: the same spec yields the same workload at
// GOMAXPROCS=1 and at full parallelism, including when many generations run
// concurrently on other goroutines. Any ordering dependence (shared RNG,
// map iteration, goroutine fan-out) would break the byte-equality below.
func TestGenerateDeterministicAcrossGOMAXPROCS(t *testing.T) {
	domain := testDomain(3)
	specs := []Spec{
		{Kind: KindUniform, GenParams: Defaults(40, 7)},
		{Kind: KindSkewed, GenParams: Defaults(40, 7)},
		{Kind: KindUniform, GenParams: GenParams{NumQueries: 17, MaxRangeFrac: 0.25, Centers: 3, SigmaFrac: 0.4, Seed: -9}},
		{Kind: KindSkewed, GenParams: GenParams{NumQueries: 33, MaxRangeFrac: 0.05, Centers: 1, SigmaFrac: 0.01, Seed: 123}},
	}

	prev := runtime.GOMAXPROCS(1)
	serial := make([]Workload, len(specs))
	for i, s := range specs {
		serial[i] = Generate(domain, s)
	}
	runtime.GOMAXPROCS(prev)

	// Re-generate everything at full parallelism, many times concurrently.
	const rounds = 8
	results := make([][]Workload, rounds)
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		results[r] = make([]Workload, len(specs))
		for i, s := range specs {
			wg.Add(1)
			go func(r, i int, s Spec) {
				defer wg.Done()
				results[r][i] = Generate(domain, s)
			}(r, i, s)
		}
	}
	wg.Wait()
	for r := 0; r < rounds; r++ {
		for i := range specs {
			if err := equalWorkloads(serial[i], results[r][i]); err != nil {
				t.Fatalf("spec %d (kind %s) not reproducible at full parallelism: %v",
					i, specs[i].Kind, err)
			}
		}
	}
}

// TestDerivedGeneratorsDeterministic covers the derived generators (Future,
// MixRandom) the simulation harness depends on: same seed, same output,
// concurrently or not.
func TestDerivedGeneratorsDeterministic(t *testing.T) {
	domain := testDomain(2)
	hist := Generate(domain, Spec{Kind: KindSkewed, GenParams: Defaults(30, 11)})

	futA := Future(hist, 2.5, 2, 99)
	mixA := MixRandom(hist, domain, 25, 0.1, 99)
	var futB, mixB Workload
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); futB = Future(hist, 2.5, 2, 99) }()
	go func() { defer wg.Done(); mixB = MixRandom(hist, domain, 25, 0.1, 99) }()
	wg.Wait()
	if err := equalWorkloads(futA, futB); err != nil {
		t.Fatalf("Future not reproducible: %v", err)
	}
	if err := equalWorkloads(mixA, mixB); err != nil {
		t.Fatalf("MixRandom not reproducible: %v", err)
	}
}
