package workload

import "testing"

// DirectedDelta is the drift monitor's estimator: the directed Hausdorff
// distance from the live window to the reference workload under the corner
// metric Dist. Exact values are easy to state on hand-built queries.

func TestDirectedDeltaIdentical(t *testing.T) {
	ref := Workload{q2(0, 0, 1, 1), q2(2, 2, 3, 3)}
	if got := DirectedDelta(ref, ref); got != 0 {
		t.Fatalf("δ′ of a replayed workload = %g, want 0", got)
	}
}

func TestDirectedDeltaEmpty(t *testing.T) {
	ref := Workload{q2(0, 0, 1, 1)}
	if got := DirectedDelta(ref, nil); got != 0 {
		t.Fatalf("δ′ with empty live = %g, want 0", got)
	}
	if got := DirectedDelta(nil, ref); got != 0 {
		t.Fatalf("δ′ with empty ref = %g, want 0", got)
	}
}

func TestDirectedDeltaShiftedQuery(t *testing.T) {
	ref := Workload{q2(0, 0, 1, 1)}
	// Shift by 0.25 in x: the max corner displacement is 0.25.
	live := Workload{q2(0.25, 0, 1.25, 1)}
	if got := DirectedDelta(ref, live); got != 0.25 {
		t.Fatalf("δ′ = %g, want 0.25", got)
	}
}

func TestDirectedDeltaMaxOverLive(t *testing.T) {
	// The estimate is the worst live query, not the average: one far query
	// dominates many replays.
	ref := Workload{q2(0, 0, 1, 1)}
	live := Workload{q2(0, 0, 1, 1), q2(0, 0, 1, 1), q2(3, 0, 4, 1)}
	if got := DirectedDelta(ref, live); got != 3 {
		t.Fatalf("δ′ = %g, want 3", got)
	}
}

func TestDirectedDeltaNearestReferenceWins(t *testing.T) {
	// Each live query matches its nearest reference: a window replaying
	// either reference cluster stays at 0 even though the clusters are far
	// apart.
	ref := Workload{q2(0, 0, 1, 1), q2(10, 10, 11, 11)}
	live := Workload{q2(10, 10, 11, 11), q2(0, 0, 1, 1)}
	if got := DirectedDelta(ref, live); got != 0 {
		t.Fatalf("δ′ = %g, want 0", got)
	}
	// Moving one live query half-way between the clusters measures the
	// distance to the closer one.
	live = Workload{q2(4, 0, 5, 1)}
	if got := DirectedDelta(ref, live); got != 4 {
		t.Fatalf("δ′ = %g, want 4 (nearest is the origin cluster)", got)
	}
}
