package workload

import (
	"bytes"
	"sync"
	"testing"

	"paw/internal/geom"
)

func TestLogRecordAndSnapshot(t *testing.T) {
	var l Log
	if l.Len() != 0 {
		t.Fatal("fresh log not empty")
	}
	l.Record(q2(0, 0, 1, 1).Box)
	l.Record(q2(2, 2, 3, 3).Box)
	l.Record(q2(4, 4, 5, 5).Box)
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	w := l.Workload()
	for i, q := range w {
		if q.Seq != int64(i) {
			t.Errorf("entry %d has seq %d", i, q.Seq)
		}
	}
	// Snapshots are independent copies.
	w[0].Box.Lo[0] = 99
	if l.Workload()[0].Box.Lo[0] == 99 {
		t.Error("snapshot aliases the log")
	}
	tail := l.Tail(2)
	if len(tail) != 2 || tail[0].Seq != 1 {
		t.Errorf("Tail(2) = %v", tail)
	}
	if got := l.Tail(100); len(got) != 3 {
		t.Errorf("oversized tail = %d entries", len(got))
	}
}

func TestLogConcurrentRecord(t *testing.T) {
	var l Log
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Record(q2(0, 0, 1, 1).Box)
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("len = %d, want 800", l.Len())
	}
	// Sequence numbers are unique.
	seen := map[int64]bool{}
	for _, q := range l.Workload() {
		if seen[q.Seq] {
			t.Fatalf("duplicate seq %d", q.Seq)
		}
		seen[q.Seq] = true
	}
}

func TestLogRoundTrip(t *testing.T) {
	var l Log
	dom := geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{100, 100}}
	for _, q := range Uniform(dom, Defaults(50, 1)) {
		l.Record(q.Box)
	}
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != l.Len() {
		t.Fatalf("len %d vs %d", got.Len(), l.Len())
	}
	a, b := l.Workload(), got.Workload()
	for i := range a {
		if a[i].Seq != b[i].Seq || !a[i].Box.Equal(b[i].Box) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
	// Recording continues with the right next sequence.
	got.Record(dom)
	w := got.Workload()
	if w[len(w)-1].Seq != int64(l.Len()) {
		t.Errorf("resumed seq = %d, want %d", w[len(w)-1].Seq, l.Len())
	}
}

func TestLogRoundTripEmpty(t *testing.T) {
	var l Log
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("len = %d", got.Len())
	}
}

func TestDecodeLogRejectsGarbage(t *testing.T) {
	if _, err := DecodeLog(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6})); err == nil {
		t.Error("bad magic must error")
	}
	var l Log
	l.Record(q2(0, 0, 1, 1).Box)
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeLog(bytes.NewReader(buf.Bytes()[:buf.Len()-5])); err == nil {
		t.Error("truncation must error")
	}
}

// TestLogDrivesEstimation: a log of historical-then-drifted queries yields a
// sensible δ′ estimate (the production flow: record → estimate → rebuild).
func TestLogDrivesEstimation(t *testing.T) {
	dom := geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{100, 100}}
	hist := Uniform(dom, Defaults(30, 2))
	var l Log
	for _, q := range hist {
		l.Record(q.Box)
	}
	for _, q := range Future(hist, 2.5, 1, 3) {
		l.Record(q.Box)
	}
	d, err := EstimateDelta(l.Workload())
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 2.5+1e-9 {
		t.Errorf("estimated δ' = %v, want in (0, 2.5]", d)
	}
}
