package workload

import (
	"math/rand"

	"paw/internal/geom"
)

// GenParams collects the workload-generator knobs of Table III. Fractions
// are relative to the domain length of each dimension.
type GenParams struct {
	// NumQueries is #Q, the number of queries to generate.
	NumQueries int
	// MaxRangeFrac is γ, the maximal query range as a fraction of the
	// domain length (default 10%).
	MaxRangeFrac float64
	// Centers is #C, the number of query centers for the skewed generator
	// (default 10).
	Centers int
	// SigmaFrac is σ, the standard deviation of query centers around their
	// cluster center, as a fraction of the maximal query range γ·len
	// (default 10%).
	SigmaFrac float64
	// Seed drives all randomness; equal seeds give equal workloads.
	Seed int64
}

// Kind names a workload generator family.
type Kind string

// Generator kinds (Table III).
const (
	KindUniform Kind = "uniform"
	KindSkewed  Kind = "skewed"
)

// Spec is a declarative workload description: a generator kind plus its
// parameters. It exists so harnesses (internal/sim, benchmarks, CLIs) can
// enumerate workloads as data instead of hard-coding generator calls.
type Spec struct {
	Kind Kind
	GenParams
}

// Generate runs the generator selected by the spec. The result is a pure
// function of (domain, spec): generation is single-goroutine and seeded, so
// equal inputs yield equal workloads regardless of GOMAXPROCS or any
// concurrent generation on other goroutines — a contract the determinism
// tests pin down.
func Generate(domain geom.Box, s Spec) Workload {
	switch s.Kind {
	case KindSkewed:
		return Skewed(domain, s.GenParams)
	default:
		return Uniform(domain, s.GenParams)
	}
}

// Defaults returns the default properties of Table III (γ=10%, #C=10,
// σ=10% of γ) for the given query count.
func Defaults(numQueries int, seed int64) GenParams {
	return GenParams{
		NumQueries:   numQueries,
		MaxRangeFrac: 0.10,
		Centers:      10,
		SigmaFrac:    0.10,
		Seed:         seed,
	}
}

// Uniform generates queries whose centers are uniform over the domain and
// whose extents are uniform in (0, γ·len] per dimension ("the uniform
// generator generates historical queries according to the data domain").
func Uniform(domain geom.Box, p GenParams) Workload {
	rng := rand.New(rand.NewSource(p.Seed))
	out := make(Workload, p.NumQueries)
	for i := range out {
		out[i] = Query{Box: randomQuery(rng, domain, p.MaxRangeFrac), Seq: int64(i)}
	}
	return out
}

// Skewed generates queries from a Gaussian mixture: #C centers are drawn
// uniformly in the domain, every query picks a center uniformly and places
// its own center Gaussian-distributed around it with deviation σ·(γ·len)
// per dimension (Table III).
func Skewed(domain geom.Box, p GenParams) Workload {
	rng := rand.New(rand.NewSource(p.Seed))
	dims := domain.Dims()
	centers := make([]geom.Point, p.Centers)
	for i := range centers {
		c := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			c[d] = domain.Lo[d] + rng.Float64()*(domain.Hi[d]-domain.Lo[d])
		}
		centers[i] = c
	}
	out := make(Workload, p.NumQueries)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		lo := make(geom.Point, dims)
		hi := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			length := domain.Hi[d] - domain.Lo[d]
			maxRange := p.MaxRangeFrac * length
			center := c[d] + rng.NormFloat64()*p.SigmaFrac*maxRange
			extent := rng.Float64() * maxRange
			lo[d] = clampTo(center-extent/2, domain.Lo[d], domain.Hi[d])
			hi[d] = clampTo(center+extent/2, domain.Lo[d], domain.Hi[d])
			if lo[d] > hi[d] {
				lo[d], hi[d] = hi[d], lo[d]
			}
		}
		out[i] = Query{Box: geom.Box{Lo: lo, Hi: hi}, Seq: int64(i)}
	}
	return out
}

// Future generates a future workload QF that is δ-similar to hist: every
// historical query spawns ratio perturbed copies whose bounds each move by
// at most delta (absolute units). The result size is ratio·|hist|,
// satisfying Definition 2 by construction.
func Future(hist Workload, delta float64, ratio int, seed int64) Workload {
	if ratio < 1 {
		ratio = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make(Workload, 0, len(hist)*ratio)
	seq := int64(0)
	for _, q := range hist {
		for r := 0; r < ratio; r++ {
			b := q.Box.Clone()
			for d := range b.Lo {
				b.Lo[d] += (rng.Float64()*2 - 1) * delta
				b.Hi[d] += (rng.Float64()*2 - 1) * delta
				if b.Lo[d] > b.Hi[d] {
					b.Lo[d], b.Hi[d] = b.Hi[d], b.Lo[d]
				}
			}
			out = append(out, Query{Box: b, Seq: seq})
			seq++
		}
	}
	return out
}

// MixRandom replaces the given percentage of queries in w with fresh random
// queries drawn uniformly from the domain (Fig. 22b's "unpredictable"
// simulation). The replaced positions are chosen deterministically from the
// seed; the original workload is not modified.
func MixRandom(w Workload, domain geom.Box, percent float64, maxRangeFrac float64, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	out := w.Clone()
	n := int(float64(len(w))*percent/100 + 0.5)
	if n > len(w) {
		n = len(w)
	}
	perm := rng.Perm(len(w))
	for _, i := range perm[:n] {
		out[i].Box = randomQuery(rng, domain, maxRangeFrac)
	}
	return out
}

func randomQuery(rng *rand.Rand, domain geom.Box, maxRangeFrac float64) geom.Box {
	dims := domain.Dims()
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for d := 0; d < dims; d++ {
		length := domain.Hi[d] - domain.Lo[d]
		extent := rng.Float64() * maxRangeFrac * length
		center := domain.Lo[d] + rng.Float64()*length
		lo[d] = clampTo(center-extent/2, domain.Lo[d], domain.Hi[d])
		hi[d] = clampTo(center+extent/2, domain.Lo[d], domain.Hi[d])
	}
	return geom.Box{Lo: lo, Hi: hi}
}

func clampTo(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
