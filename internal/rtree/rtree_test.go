package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"paw/internal/dataset"
	"paw/internal/geom"
)

func src(n, dims int, seed int64) DatasetSource {
	data := dataset.Uniform(n, dims, seed)
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return DatasetSource{Data: data, Rows: rows}
}

func TestBulkLoadEmpty(t *testing.T) {
	s := src(0, 2, 1)
	tr := BulkLoad(s, 0, 16)
	if tr.Size() != 0 || tr.Height() != 0 {
		t.Errorf("empty tree: size=%d height=%d", tr.Size(), tr.Height())
	}
	if got := tr.Search(s, geom.UnitBox(2)); len(got) != 0 {
		t.Error("empty tree search must return nothing")
	}
}

func TestBulkLoadSmall(t *testing.T) {
	s := src(10, 2, 2)
	tr := BulkLoad(s, 10, 16)
	if tr.Height() != 1 {
		t.Errorf("10 points with cap 16 must be a single leaf, height=%d", tr.Height())
	}
	got := tr.Search(s, geom.UnitBox(2))
	if len(got) != 10 {
		t.Errorf("search all = %d points", len(got))
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	s := src(5000, 3, 3)
	tr := BulkLoad(s, s.Len(), 32)
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 50; iter++ {
		lo := geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		hi := geom.Point{lo[0] + rng.Float64()*0.3, lo[1] + rng.Float64()*0.3, lo[2] + rng.Float64()*0.3}
		q := geom.Box{Lo: lo, Hi: hi}
		got := tr.Search(s, q)
		var want []int
		for i := 0; i < s.Len(); i++ {
			in := true
			for d := 0; d < 3; d++ {
				v := s.Coord(i, d)
				if v < q.Lo[d] || v > q.Hi[d] {
					in = false
					break
				}
			}
			if in {
				want = append(want, i)
			}
		}
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("search returned %d, brute force %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("result mismatch at %d: %d vs %d", i, got[i], want[i])
			}
		}
	}
}

func TestTreeHeightGrows(t *testing.T) {
	s := src(10000, 2, 5)
	tr := BulkLoad(s, s.Len(), 16)
	if tr.Height() < 3 {
		t.Errorf("10000 points with cap 16: height=%d, want >= 3", tr.Height())
	}
	if !tr.MBR().ContainsBox(geom.Box{Lo: geom.Point{0.3, 0.3}, Hi: geom.Point{0.4, 0.4}}) {
		t.Error("root MBR looks wrong")
	}
}

func TestExtractMBRsCoverage(t *testing.T) {
	s := src(2000, 2, 6)
	for _, k := range []int{1, 3, 6, 10, 20, 50, 100} {
		mbrs := ExtractMBRs(s, s.Len(), k)
		if len(mbrs) == 0 || len(mbrs) > k {
			t.Fatalf("k=%d produced %d MBRs", k, len(mbrs))
		}
		// Every point must be covered by at least one MBR.
		for i := 0; i < s.Len(); i++ {
			p := geom.Point{s.Coord(i, 0), s.Coord(i, 1)}
			covered := false
			for _, m := range mbrs {
				if m.Contains(p) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("k=%d: point %d not covered by any MBR", k, i)
			}
		}
	}
}

func TestExtractMBRsTighterWithMoreK(t *testing.T) {
	s := src(3000, 2, 7)
	area := func(mbrs []geom.Box) float64 {
		a := 0.0
		for _, m := range mbrs {
			a += m.Volume()
		}
		return a
	}
	a1 := area(ExtractMBRs(s, s.Len(), 1))
	a10 := area(ExtractMBRs(s, s.Len(), 10))
	a50 := area(ExtractMBRs(s, s.Len(), 50))
	// With uniform data the gain is modest but total covered area must not
	// grow as k increases.
	if a10 > a1*1.001 || a50 > a10*1.001 {
		t.Errorf("areas not monotone: k1=%v k10=%v k50=%v", a1, a10, a50)
	}
	// On cleanly clustered data the reduction must be substantial: two
	// tight clusters far apart — 2 MBRs skip the void between them.
	n := 400
	xs := make([]float64, n)
	ys := make([]float64, n)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < n; i++ {
		base := 0.0
		if i >= n/2 {
			base = 100
		}
		xs[i] = base + rng.Float64()
		ys[i] = base + rng.Float64()
	}
	cl := dataset.MustNew([]string{"x", "y"}, [][]float64{xs, ys})
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	cs := DatasetSource{Data: cl, Rows: rows}
	c1 := area(ExtractMBRs(cs, cs.Len(), 1))
	c2 := area(ExtractMBRs(cs, cs.Len(), 2))
	if c2 > c1*0.01 {
		t.Errorf("bimodal data: 2 MBRs cover %v of single-MBR area %v", c2, c1)
	}
}

func TestExtractMBRsEdgeCases(t *testing.T) {
	if got := ExtractMBRs(src(0, 2, 9), 0, 5); got != nil {
		t.Error("no points must produce no MBRs")
	}
	// Single point.
	s := src(1, 2, 10)
	mbrs := ExtractMBRs(s, 1, 5)
	if len(mbrs) != 1 || mbrs[0].Volume() != 0 {
		t.Errorf("single point: %v", mbrs)
	}
	// k greater than n.
	s = src(5, 2, 11)
	mbrs = ExtractMBRs(s, 5, 100)
	if len(mbrs) > 5 {
		t.Errorf("more MBRs (%d) than points", len(mbrs))
	}
}

func TestBulkLoadDefaultCap(t *testing.T) {
	s := src(100, 2, 12)
	tr := BulkLoad(s, s.Len(), 0) // normalised to a sane default
	if got := len(tr.Search(s, geom.UnitBox(2))); got != 100 {
		t.Errorf("search all = %d", got)
	}
}
