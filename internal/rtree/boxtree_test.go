package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"paw/internal/geom"
)

func randBox(r *rand.Rand, dims int, maxExtent float64) geom.Box {
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for d := 0; d < dims; d++ {
		lo[d] = r.Float64() * 100
		hi[d] = lo[d] + r.Float64()*maxExtent
	}
	return geom.Box{Lo: lo, Hi: hi}
}

func bruteIntersecting(boxes []geom.Box, q geom.Box) []int {
	var out []int
	for i, b := range boxes {
		if b.Intersects(q) {
			out = append(out, i)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBoxIndexMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 2, 7, 64, 500} {
		for _, dims := range []int{1, 2, 4} {
			boxes := make([]geom.Box, n)
			for i := range boxes {
				boxes[i] = randBox(r, dims, 15)
			}
			packed := PackBoxes(boxes, 8)
			str := STRBoxes(boxes, 8)
			if packed.Len() != n || str.Len() != n {
				t.Fatalf("Len: packed %d str %d want %d", packed.Len(), str.Len(), n)
			}
			for trial := 0; trial < 50; trial++ {
				q := randBox(r, dims, 40)
				want := bruteIntersecting(boxes, q)
				got := packed.AppendIntersecting(nil, q)
				// PackBoxes results must already be in ascending index order.
				if !sort.IntsAreSorted(got) {
					t.Fatalf("PackBoxes result not sorted: %v", got)
				}
				if !equalInts(got, want) {
					t.Fatalf("n=%d dims=%d packed got %v want %v", n, dims, got, want)
				}
				gotSTR := str.AppendIntersecting(nil, q)
				sort.Ints(gotSTR)
				if !equalInts(gotSTR, want) {
					t.Fatalf("n=%d dims=%d STR got %v want %v", n, dims, gotSTR, want)
				}
			}
		}
	}
}

func TestBoxIndexEmptyQuery(t *testing.T) {
	boxes := []geom.Box{geom.UnitBox(2)}
	idx := PackBoxes(boxes, 4)
	empty := geom.Box{Lo: geom.Point{1, 1}, Hi: geom.Point{0, 0}}
	if got := idx.AppendIntersecting(nil, empty); got != nil {
		t.Fatalf("empty query returned %v", got)
	}
	dst := []int{7}
	if got := idx.AppendIntersecting(dst, geom.UnitBox(2)); !equalInts(got, []int{7, 0}) {
		t.Fatalf("append did not preserve dst prefix: %v", got)
	}
}

func TestBoxIndexEmptyMemberBoxes(t *testing.T) {
	// Inverted (empty) member boxes must never match, and must not shrink
	// the internal MBRs so that valid siblings are lost.
	boxes := []geom.Box{
		{Lo: geom.Point{5, 5}, Hi: geom.Point{0, 0}}, // empty
		geom.UnitBox(2),
	}
	idx := PackBoxes(boxes, 2)
	got := idx.AppendIntersecting(nil, geom.UnitBox(2))
	if !equalInts(got, []int{1}) {
		t.Fatalf("got %v, want [1]", got)
	}
}

type acceptAll struct{}

func (acceptAll) AcceptPoint(int, geom.Point) bool { return true }

type acceptOdd struct{}

func (acceptOdd) AcceptPoint(i int, _ geom.Point) bool { return i%2 == 1 }

func TestFirstContaining(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	boxes := make([]geom.Box, 200)
	for i := range boxes {
		boxes[i] = randBox(r, 2, 25) // heavy overlap
	}
	idx := PackBoxes(boxes, 8)
	for trial := 0; trial < 200; trial++ {
		p := geom.Point{r.Float64() * 110, r.Float64() * 110}
		// Brute-force first containing index.
		want := -1
		for i, b := range boxes {
			if b.Contains(p) {
				want = i
				break
			}
		}
		if got := idx.FirstContaining(p, acceptAll{}); got != want {
			t.Fatalf("FirstContaining(%v) = %d, want %d", p, got, want)
		}
		wantOdd := -1
		for i, b := range boxes {
			if i%2 == 1 && b.Contains(p) {
				wantOdd = i
				break
			}
		}
		if got := idx.FirstContaining(p, acceptOdd{}); got != wantOdd {
			t.Fatalf("FirstContaining odd(%v) = %d, want %d", p, got, wantOdd)
		}
	}
	var nilIdx *BoxIndex
	if got := nilIdx.FirstContaining(geom.Point{0, 0}, acceptAll{}); got != -1 {
		t.Fatalf("nil index FirstContaining = %d", got)
	}
}

func TestBoxIndexHeight(t *testing.T) {
	boxes := make([]geom.Box, 100)
	for i := range boxes {
		boxes[i] = geom.UnitBox(2)
	}
	idx := PackBoxes(boxes, 4)
	if h := idx.Height(); h < 3 {
		t.Fatalf("height %d, want >= 3 for 100 boxes at cap 4", h)
	}
	if h := PackBoxes(nil, 4).Height(); h != 0 {
		t.Fatalf("empty height %d", h)
	}
}
