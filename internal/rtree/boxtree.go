package rtree

import (
	"math"
	"sort"

	"paw/internal/geom"
)

// BoxIndex is an immutable, bulk-loaded R-tree over a set of boxes (MBRs).
// It is the routing-side counterpart of the point Tree: the master's layout
// keeps one over its partition descriptors so query routing visits only the
// partitions whose MBR can intersect the query, instead of scanning every
// descriptor linearly.
//
// The index retains the box slice passed at load time; callers must not
// mutate those boxes afterwards. Searches are read-only and safe for
// concurrent use.
type BoxIndex struct {
	root  *bnode
	boxes []geom.Box
	n     int
}

type bnode struct {
	mbr      geom.Box
	children []*bnode
	items    []int // leaf payload: indices into the source box slice
}

// PackBoxes bulk-loads an index over boxes preserving their given order:
// leaves hold consecutive runs of at most leafCap boxes and upper levels pack
// consecutive runs of nodes. Search results therefore come back in ascending
// index order, and FirstContaining returns the smallest matching index —
// exactly the semantics ordered routing needs. Packing is effective when the
// input order is already spatially coherent (partition IDs are assigned in
// partition-tree pre-order, so sibling runs share tight MBRs).
func PackBoxes(boxes []geom.Box, leafCap int) *BoxIndex {
	if leafCap < 2 {
		leafCap = 16
	}
	t := &BoxIndex{boxes: boxes, n: len(boxes)}
	if len(boxes) == 0 {
		return t
	}
	idx := make([]int, len(boxes))
	for i := range idx {
		idx[i] = i
	}
	t.root = packBoxNodes(leavesOf(boxes, idx, leafCap), leafCap)
	return t
}

// STRBoxes bulk-loads an index over boxes with Sort-Tile-Recursive packing on
// the box centers: boxes are sorted into spatially coherent tiles regardless
// of input order. Search results come back in tile order, not index order;
// use it where result order is irrelevant (e.g. cost summation over
// candidate pieces).
func STRBoxes(boxes []geom.Box, leafCap int) *BoxIndex {
	if leafCap < 2 {
		leafCap = 16
	}
	t := &BoxIndex{boxes: boxes, n: len(boxes)}
	if len(boxes) == 0 {
		return t
	}
	idx := make([]int, len(boxes))
	for i := range idx {
		idx[i] = i
	}
	tiles := strTileBoxes(boxes, idx, leafCap, 0)
	leaves := make([]*bnode, len(tiles))
	for i, tile := range tiles {
		leaves[i] = &bnode{mbr: mbrOfBoxes(boxes, tile), items: tile}
	}
	t.root = packBoxNodes(leaves, leafCap)
	return t
}

// leavesOf cuts idx (already in the desired order) into runs of leafCap.
func leavesOf(boxes []geom.Box, idx []int, leafCap int) []*bnode {
	var out []*bnode
	for s := 0; s < len(idx); s += leafCap {
		e := s + leafCap
		if e > len(idx) {
			e = len(idx)
		}
		run := idx[s:e]
		out = append(out, &bnode{mbr: mbrOfBoxes(boxes, run), items: run})
	}
	return out
}

// strTileBoxes recursively partitions idx into tiles of at most cap boxes,
// sorting by box center along dimension dim at this level (the STR recipe of
// strTile, applied to box centers).
func strTileBoxes(boxes []geom.Box, idx []int, cap, dim int) [][]int {
	if len(idx) <= cap {
		return [][]int{idx}
	}
	dims := boxes[idx[0]].Dims()
	nTiles := (len(idx) + cap - 1) / cap
	remaining := dims - dim
	var slabs int
	if remaining <= 1 {
		slabs = nTiles
	} else {
		slabs = int(math.Ceil(math.Pow(float64(nTiles), 1/float64(remaining))))
	}
	if slabs < 1 {
		slabs = 1
	}
	center := func(i int) float64 { b := boxes[i]; return (b.Lo[dim] + b.Hi[dim]) / 2 }
	sort.SliceStable(idx, func(a, b int) bool { return center(idx[a]) < center(idx[b]) })
	per := (len(idx) + slabs - 1) / slabs
	var out [][]int
	for s := 0; s < len(idx); s += per {
		e := s + per
		if e > len(idx) {
			e = len(idx)
		}
		slab := idx[s:e]
		if remaining <= 1 {
			out = append(out, slab)
		} else {
			out = append(out, strTileBoxes(boxes, slab, cap, dim+1)...)
		}
	}
	return out
}

// mbrOfBoxes returns the MBR of the indexed boxes. Empty (inverted) member
// boxes can only grow the MBR, so the result always covers every non-empty
// member.
func mbrOfBoxes(boxes []geom.Box, idx []int) geom.Box {
	dims := boxes[idx[0]].Dims()
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for d := 0; d < dims; d++ {
		lo[d] = math.Inf(1)
		hi[d] = math.Inf(-1)
	}
	for _, i := range idx {
		b := boxes[i]
		for d := 0; d < dims; d++ {
			if b.Lo[d] < lo[d] {
				lo[d] = b.Lo[d]
			}
			if b.Hi[d] > hi[d] {
				hi[d] = b.Hi[d]
			}
		}
	}
	return geom.Box{Lo: lo, Hi: hi}
}

// packBoxNodes groups nodes into parents of at most cap children until one
// root remains, preserving node order.
func packBoxNodes(nodes []*bnode, cap int) *bnode {
	for len(nodes) > 1 {
		parents := make([]*bnode, 0, (len(nodes)+cap-1)/cap)
		for s := 0; s < len(nodes); s += cap {
			e := s + cap
			if e > len(nodes) {
				e = len(nodes)
			}
			group := nodes[s:e]
			mbr := group[0].mbr.Clone()
			for _, g := range group[1:] {
				for d := range mbr.Lo {
					if g.mbr.Lo[d] < mbr.Lo[d] {
						mbr.Lo[d] = g.mbr.Lo[d]
					}
					if g.mbr.Hi[d] > mbr.Hi[d] {
						mbr.Hi[d] = g.mbr.Hi[d]
					}
				}
			}
			parents = append(parents, &bnode{mbr: mbr, children: append([]*bnode(nil), group...)})
		}
		nodes = parents
	}
	return nodes[0]
}

// Len returns the number of indexed boxes.
func (t *BoxIndex) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// AppendIntersecting appends to dst the indices of every indexed box that
// intersects the closed query box q, and returns the extended slice. For a
// PackBoxes index the appended indices are in ascending order; for an
// STRBoxes index the order is the tile order. The intersection test is exact
// at the box level — callers layering finer semantics (irregular regions,
// precise descriptors) confirm each candidate themselves.
func (t *BoxIndex) AppendIntersecting(dst []int, q geom.Box) []int {
	if t == nil || t.root == nil || q.IsEmpty() {
		return dst
	}
	return t.appendIntersecting(t.root, dst, q)
}

func (t *BoxIndex) appendIntersecting(n *bnode, dst []int, q geom.Box) []int {
	if !n.mbr.Intersects(q) {
		return dst
	}
	if n.children == nil {
		for _, i := range n.items {
			if t.boxes[i].Intersects(q) {
				dst = append(dst, i)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = t.appendIntersecting(c, dst, q)
	}
	return dst
}

// PointAccepter is the exact-membership check FirstContaining applies to a
// candidate whose box contains the probe point. Implementations typically
// test the candidate's true region (an irregular descriptor's box minus its
// holes); for plain rectangles, box containment is already exact and the
// accepter can return true unconditionally.
type PointAccepter interface {
	// AcceptPoint reports whether candidate i really contains p.
	AcceptPoint(i int, p geom.Point) bool
}

// FirstContaining returns the first indexed box (in tree order) that contains
// p and whose candidate the accepter confirms, or -1 when none does. For a
// PackBoxes index, tree order is index order, so the result is the smallest
// accepted index — the "first matching child wins" routing contract.
func (t *BoxIndex) FirstContaining(p geom.Point, acc PointAccepter) int {
	if t == nil || t.root == nil {
		return -1
	}
	return t.firstContaining(t.root, p, acc)
}

func (t *BoxIndex) firstContaining(n *bnode, p geom.Point, acc PointAccepter) int {
	if !n.mbr.Contains(p) {
		return -1
	}
	if n.children == nil {
		for _, i := range n.items {
			if t.boxes[i].Contains(p) && acc.AcceptPoint(i, p) {
				return i
			}
		}
		return -1
	}
	for _, c := range n.children {
		if r := t.firstContaining(c, p, acc); r >= 0 {
			return r
		}
	}
	return -1
}

// Height returns the tree height (1 for a single leaf, 0 for empty).
func (t *BoxIndex) Height() int {
	if t == nil {
		return 0
	}
	h := 0
	for n := t.root; n != nil; {
		h++
		if len(n.children) == 0 {
			break
		}
		n = n.children[0]
	}
	return h
}
