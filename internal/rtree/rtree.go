// Package rtree provides a Sort-Tile-Recursive (STR) bulk-loaded R-tree over
// points, plus the k-MBR extraction the precise-descriptor plugin (§V-A)
// uses: "we adopt the R-tree construction algorithm to extract a given
// number of MBRs from a partition".
package rtree

import (
	"math"
	"sort"

	"paw/internal/dataset"
	"paw/internal/geom"
)

// Tree is an immutable, bulk-loaded R-tree over a point set. Leaves store
// indices into the point set supplied at load time.
type Tree struct {
	root *node
	dims int
	size int
}

type node struct {
	mbr      geom.Box
	children []*node
	points   []int // leaf payload: indices into the source point accessor
}

// PointSource abstracts the point storage so trees can be built over
// dataset rows without materialising geom.Points.
type PointSource interface {
	Dims() int
	// Coord returns coordinate dim of item i.
	Coord(i, dim int) float64
}

// DatasetSource adapts dataset rows as a PointSource.
type DatasetSource struct {
	Data *dataset.Dataset
	Rows []int
}

// Dims implements PointSource.
func (s DatasetSource) Dims() int { return s.Data.Dims() }

// Coord implements PointSource.
func (s DatasetSource) Coord(i, dim int) float64 { return s.Data.At(s.Rows[i], dim) }

// Len returns the number of points.
func (s DatasetSource) Len() int { return len(s.Rows) }

// BulkLoad packs n points from src into an R-tree with the given leaf
// capacity using STR: sort by the first dimension, cut into vertical slabs,
// recursively tile the remaining dimensions inside each slab, and build the
// upper levels by re-packing node MBRs the same way.
func BulkLoad(src PointSource, n, leafCap int) *Tree {
	if leafCap < 1 {
		leafCap = 64
	}
	t := &Tree{dims: src.Dims(), size: n}
	if n == 0 {
		return t
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	tiles := strTile(src, idx, leafCap, 0)
	leaves := make([]*node, len(tiles))
	for i, tile := range tiles {
		leaves[i] = &node{mbr: mbrOf(src, tile), points: tile}
	}
	t.root = packUpward(leaves, leafCap)
	return t
}

// strTile recursively partitions idx into tiles of at most cap points, using
// dimension dim at this level.
func strTile(src PointSource, idx []int, cap, dim int) [][]int {
	if len(idx) <= cap {
		return [][]int{idx}
	}
	dims := src.Dims()
	nTiles := (len(idx) + cap - 1) / cap
	// Number of slabs along this dimension: the (dims-dim)-th root of the
	// tile count, so the tiling is balanced across remaining dimensions.
	remaining := dims - dim
	var slabs int
	if remaining <= 1 {
		slabs = nTiles
	} else {
		slabs = int(math.Ceil(math.Pow(float64(nTiles), 1/float64(remaining))))
	}
	if slabs < 1 {
		slabs = 1
	}
	sort.Slice(idx, func(a, b int) bool { return src.Coord(idx[a], dim) < src.Coord(idx[b], dim) })
	per := (len(idx) + slabs - 1) / slabs
	var out [][]int
	for s := 0; s < len(idx); s += per {
		e := s + per
		if e > len(idx) {
			e = len(idx)
		}
		slab := idx[s:e]
		if remaining <= 1 {
			out = append(out, slab)
		} else {
			out = append(out, strTile(src, slab, cap, dim+1)...)
		}
	}
	return out
}

func mbrOf(src PointSource, idx []int) geom.Box {
	dims := src.Dims()
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for d := 0; d < dims; d++ {
		lo[d] = math.Inf(1)
		hi[d] = math.Inf(-1)
	}
	for _, i := range idx {
		for d := 0; d < dims; d++ {
			v := src.Coord(i, d)
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	return geom.Box{Lo: lo, Hi: hi}
}

// packUpward groups nodes into parents of at most cap children until one
// root remains. Nodes are packed in their existing (tiled) order, which STR
// already made spatially coherent.
func packUpward(nodes []*node, cap int) *node {
	for len(nodes) > 1 {
		var parents []*node
		for s := 0; s < len(nodes); s += cap {
			e := s + cap
			if e > len(nodes) {
				e = len(nodes)
			}
			group := nodes[s:e]
			boxes := make([]geom.Box, len(group))
			for i, g := range group {
				boxes[i] = g.mbr
			}
			parents = append(parents, &node{mbr: geom.MBR(boxes...), children: append([]*node(nil), group...)})
		}
		nodes = parents
	}
	return nodes[0]
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return t.size }

// Height returns the tree height (1 for a single leaf, 0 for empty).
func (t *Tree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if len(n.children) == 0 {
			break
		}
		n = n.children[0]
	}
	return h
}

// Search returns the indices of all points inside the closed query box. The
// caller supplies the same PointSource used at load time.
func (t *Tree) Search(src PointSource, q geom.Box) []int {
	var out []int
	if t.root == nil {
		return out
	}
	dims := t.dims
	var rec func(n *node)
	rec = func(n *node) {
		if !n.mbr.Intersects(q) {
			return
		}
		if len(n.children) == 0 {
			for _, i := range n.points {
				inside := true
				for d := 0; d < dims; d++ {
					v := src.Coord(i, d)
					if v < q.Lo[d] || v > q.Hi[d] {
						inside = false
						break
					}
				}
				if inside {
					out = append(out, i)
				}
			}
			return
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
	return out
}

// MBR returns the root MBR; the zero Box for an empty tree.
func (t *Tree) MBR() geom.Box {
	if t.root == nil {
		return geom.Box{}
	}
	return t.root.mbr
}

// ExtractMBRs tiles the points into at most k spatially coherent groups and
// returns each group's MBR — the precise descriptor of §V-A. Every point is
// covered by exactly one MBR. k <= 1 returns the single overall MBR.
func ExtractMBRs(src PointSource, n, k int) []geom.Box {
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if k <= 1 {
		return []geom.Box{mbrOf(src, idx)}
	}
	cap := (n + k - 1) / k
	tiles := strTile(src, idx, cap, 0)
	// strTile can produce slightly more tiles than k due to ceiling
	// effects; merge the smallest trailing tiles to respect the budget
	// (the descriptor size is what the master's memory accounting uses).
	for len(tiles) > k {
		last := tiles[len(tiles)-1]
		tiles = tiles[:len(tiles)-1]
		tiles[len(tiles)-1] = append(tiles[len(tiles)-1], last...)
	}
	out := make([]geom.Box, len(tiles))
	for i, tile := range tiles {
		out[i] = mbrOf(src, tile)
	}
	return out
}
